// Package preexec_test holds the benchmark harness: one testing.B target
// per table and figure in the paper's evaluation (§4), plus the serial
// versus worker-pool suite comparison that tracks the concurrent runner's
// speedup. Each benchmark iteration regenerates the complete experiment
// across the ten-benchmark suite; run a single one with e.g.
//
//	go test -bench=BenchmarkTable2 -benchmem
//
// and print the actual rows with cmd/texp. The windows here are slightly
// smaller than texp's defaults so a full -bench=. sweep stays in the
// minutes range; EXPERIMENTS.md records full-size runs.
package preexec_test

import (
	"context"
	"testing"

	"preexec"
	"preexec/internal/advantage"
	"preexec/internal/experiments"
	"preexec/internal/selector"
	"preexec/internal/slice"
	"preexec/internal/timing"
	"preexec/internal/workload"
)

func benchOpts() experiments.Options {
	return experiments.Options{Warm: 20_000, Measure: 60_000}
}

// BenchmarkTable1 regenerates the benchmark characterization (paper Table 1).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates the primary results and model validation
// (paper Table 2): base, pre-execution, the three diagnostic modes, and the
// framework's predictions, per benchmark.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 regenerates the §3 worked example's end-to-end
// counterpart: the pharmacy program evaluated under the default framework
// (Figures 1-3 are exercised analytically in the unit tests and
// examples/pharmacy).
func BenchmarkFigure2(b *testing.B) {
	w, err := preexec.WorkloadByName("vpr.r")
	if err != nil {
		b.Fatal(err)
	}
	prog := w.Build(1)
	machine := preexec.DefaultMachine()
	machine.WarmInsts, machine.MeasureInsts = 20_000, 60_000
	eng := preexec.New(preexec.WithMachine(machine))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Evaluate(context.Background(), prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4 regenerates the slicing-scope x p-thread-length sweep.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5 regenerates the optimization & merging comparison.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6 regenerates the selection-granularity comparison.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7 regenerates the selection input data-set comparison
// (perfect / dynamic / static scenarios).
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure7(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8 regenerates the memory-latency cross-validation.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure8(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWidth regenerates the processor-width cross-validation (§4.5).
func BenchmarkWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Width(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSim measures one bare timing.Run (50k measured instructions, base
// mode) so the simulator hot loop is observable in isolation from profiling
// and selection. These are the benchmarks cmd/benchsnap snapshots into
// BENCH_baseline.json and that CI guards against allocation regressions.
func benchSim(b *testing.B, name string) {
	b.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	p := w.Build(1)
	cfg := timing.DefaultConfig()
	cfg.MaxInsts = 50_000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := timing.Run(p, nil, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimBzip2(b *testing.B)  { benchSim(b, "bzip2") }
func BenchmarkSimCrafty(b *testing.B) { benchSim(b, "crafty") }
func BenchmarkSimGap(b *testing.B)    { benchSim(b, "gap") }
func BenchmarkSimGcc(b *testing.B)    { benchSim(b, "gcc") }
func BenchmarkSimMcf(b *testing.B)    { benchSim(b, "mcf") }
func BenchmarkSimParser(b *testing.B) { benchSim(b, "parser") }
func BenchmarkSimTwolf(b *testing.B)  { benchSim(b, "twolf") }
func BenchmarkSimVortex(b *testing.B) { benchSim(b, "vortex") }
func BenchmarkSimVprP(b *testing.B)   { benchSim(b, "vpr.p") }
func BenchmarkSimVprR(b *testing.B)   { benchSim(b, "vpr.r") }

// BenchmarkSimVprPPreexec exercises the pre-execution paths of the hot loop
// (launch, burst injection, p-thread memory traffic) that the base-mode
// BenchmarkSim* benchmarks never reach.
func BenchmarkSimVprPPreexec(b *testing.B) {
	w, err := workload.ByName("vpr.p")
	if err != nil {
		b.Fatal(err)
	}
	p := w.Build(1)
	forest, err := slice.ProfileWhole(p, slice.ProfileOptions{MaxInsts: 50_000})
	if err != nil {
		b.Fatal(err)
	}
	res := selector.SelectForest(forest, selector.Options{Params: advantage.DefaultParams(1.5), Merge: true})
	cfg := timing.DefaultConfig()
	cfg.MaxInsts = 50_000
	cfg.Mode = timing.ModeNormal
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := timing.Run(p, res.PThreads, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecordTraceVprP measures recording the base-run event trace that
// the replay benchmarks consume — the one-time cost a sweep pays per base
// group before every selection cell replays for almost free.
func BenchmarkRecordTraceVprP(b *testing.B) {
	w, err := workload.ByName("vpr.p")
	if err != nil {
		b.Fatal(err)
	}
	p := w.Build(1)
	cfg := timing.DefaultConfig()
	cfg.MaxInsts = 50_000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := timing.RecordTrace(context.Background(), p, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplayVprP replays the same selection BenchmarkSimVprPPreexec
// simulates in full, against a recorded trace — the two benchmarks bracket
// the per-cell saving of the trace-replay fast path (results bit-identical).
func BenchmarkReplayVprP(b *testing.B) {
	w, err := workload.ByName("vpr.p")
	if err != nil {
		b.Fatal(err)
	}
	p := w.Build(1)
	forest, err := slice.ProfileWhole(p, slice.ProfileOptions{MaxInsts: 50_000})
	if err != nil {
		b.Fatal(err)
	}
	res := selector.SelectForest(forest, selector.Options{Params: advantage.DefaultParams(1.5), Merge: true})
	cfg := timing.DefaultConfig()
	cfg.MaxInsts = 50_000
	cfg.Mode = timing.ModeNormal
	tr, err := timing.RecordTrace(context.Background(), p, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := timing.Replay(context.Background(), tr, res.PThreads, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// replayGrid is the selection-only sweep the trace-replay benchmarks run: a
// Figure-5-style optimization x merging grid where every cell shares one
// base-run identity per benchmark, so the full-sim path re-simulates each
// selection while the replay path records once and replays.
func replayGrid(b *testing.B) ([]preexec.SweepBench, []preexec.ConfigPoint) {
	b.Helper()
	benches, err := preexec.SweepBenches([]string{"crafty", "gcc", "vpr.p"}, 1)
	if err != nil {
		b.Fatal(err)
	}
	var points []preexec.ConfigPoint
	for _, name := range []string{"none", "merge", "opt", "opt+merge"} {
		cfg := preexec.DefaultConfig()
		cfg.Machine.WarmInsts, cfg.Machine.MeasureInsts = 10_000, 30_000
		cfg.Selection.Optimize = name == "opt" || name == "opt+merge"
		cfg.Selection.Merge = name == "merge" || name == "opt+merge"
		points = append(points, preexec.ConfigPoint{Name: name, Config: cfg})
	}
	return benches, points
}

func benchSweepGrid(b *testing.B, replay bool) {
	benches, points := replayGrid(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := &preexec.Sweep{
			Engine:  preexec.New(preexec.WithReplay(replay)),
			Workers: 2,
		}
		if _, err := s.Run(context.Background(), benches, points); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepReplayGrid runs the selection-only grid with the
// trace-replay fast path on (the default); BenchmarkSweepFullSimGrid is the
// same grid forced through full simulation with WithReplay(false). Their
// ratio is the sweep-level speedup of trace replay; the README "Trace
// replay" section records measured numbers.
func BenchmarkSweepReplayGrid(b *testing.B)  { benchSweepGrid(b, true) }
func BenchmarkSweepFullSimGrid(b *testing.B) { benchSweepGrid(b, false) }

// suitePrograms builds the full ten-benchmark suite with small windows for
// the suite-runner benchmarks.
func suitePrograms(b *testing.B) (*preexec.Engine, []*preexec.Program) {
	b.Helper()
	machine := preexec.DefaultMachine()
	machine.WarmInsts, machine.MeasureInsts = 20_000, 60_000
	eng := preexec.New(preexec.WithMachine(machine))
	var progs []*preexec.Program
	for _, w := range preexec.Workloads() {
		progs = append(progs, w.Build(1))
	}
	return eng, progs
}

// BenchmarkSuiteSerial evaluates the ten-benchmark suite one workload at a
// time (Workers: 1) — the baseline for the worker-pool comparison.
func BenchmarkSuiteSerial(b *testing.B) {
	eng, progs := suitePrograms(b)
	s := &preexec.Suite{Engine: eng, Workers: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Evaluate(context.Background(), progs...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuiteParallel evaluates the same suite across the default
// worker pool (all cores). The wall-clock ratio to BenchmarkSuiteSerial is
// the concurrent runner's speedup and should approach min(cores, 10).
func BenchmarkSuiteParallel(b *testing.B) {
	eng, progs := suitePrograms(b)
	s := &preexec.Suite{Engine: eng}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Evaluate(context.Background(), progs...); err != nil {
			b.Fatal(err)
		}
	}
}
