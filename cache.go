package preexec

import (
	"context"
	"sync"
	"sync/atomic"

	"preexec/internal/timing"
)

// StageCache memoizes the expensive, selection-independent stages of the
// evaluation pipeline across engines that share it: base timing runs,
// functional profiles, and recorded base-run traces. The paper's framework
// explicitly decouples these stages — one profile and one base run can serve
// many selection variants (§4) — so a sweep whose cells differ only in
// selection or ablation knobs performs each per-benchmark stage once.
//
// Entries are keyed by program identity (pointer) plus only the
// configuration fields that feed the stage:
//
//   - base timing runs: the full normalized timing.Config — which an Engine
//     derives from MachineConfig alone — reduced to the base-run identity
//     (NoRSThrottle cleared, since the injection throttle only gates
//     p-thread bursts and a base run has no p-threads). Only nil-p-thread
//     ModeBase runs are cached; p-thread runs depend on the selection and
//     are never shared.
//   - profiles: the full ProfileOptions (warm-up, profile window, scope,
//     max slice length, region granularity) plus the profiled program —
//     which may be the selection target (SelectionConfig.ProfileOn), not
//     the evaluated program.
//   - traces: the same base-run identity (the recorded front-end stream is
//     selection- and mode-independent, see timing.RecordTrace) plus the
//     timing.TraceVersion simulator fingerprint, so a timing-core change
//     invalidates recorded traces cleanly.
//
// Cached profile regions are shared by pointer: selection only reads the
// slice forests (paths and bodies are copied out), so concurrent selections
// over one cached profile are safe and results stay bit-for-bit identical
// to uncached runs (pinned by TestSweepSelectionGridCacheCounts).
//
// A StageCache is safe for concurrent use. Concurrent requests for the same
// key are single-flighted: one computes, the rest wait for its result. A
// failed computation (typically cancellation) is not memoized — the entry
// is dropped and coalesced waiters retry with their own contexts, so one
// sweep's cancellation cannot poison another sweep sharing the cache.
//
// Keys do not include the stage backends: every engine sharing a cache
// must use the same Profiler and Simulator (see WithStageCache). Program
// identity is the *Program pointer — rebuilt programs never hit — and by
// default entries live as long as the cache does, so scope a cache to the
// sweeps that share its programs. For sweeps over generated corpora too
// large to retain whole, bound the cache with WithStageCacheLimit: the
// least-recently-used entries are evicted (and recomputed on re-request),
// trading recomputation for memory while keeping results bit-identical.
type StageCache struct {
	base    stageMap[baseKey, Stats]
	profile stageMap[profileKey, []ProfileRegion]
	trace   stageMap[traceKey, *Trace]
}

// StageCacheOption customizes a StageCache at construction.
type StageCacheOption func(*StageCache)

// WithStageCacheLimit bounds each stage of the cache to at most n entries
// (n <= 0 means unlimited, the default). When a stage exceeds its bound,
// the least-recently-used entry is evicted; evicted work is recomputed if
// requested again, so giant generated-corpus sweeps can cap the cache's
// footprint without changing any result.
func WithStageCacheLimit(n int) StageCacheOption {
	return func(c *StageCache) {
		c.base.limit = n
		c.profile.limit = n
		c.trace.limit = n
	}
}

// NewStageCache returns an empty stage cache ready for concurrent use.
func NewStageCache(opts ...StageCacheOption) *StageCache {
	c := &StageCache{}
	for _, o := range opts {
		o(c)
	}
	return c
}

// CacheStats counts a StageCache's activity: Runs are stage executions that
// actually happened (cache misses), Hits are requests served from (or
// coalesced onto) an existing entry. A selection-knob sweep (Figure 5's
// opt/merge grid) over N benchmarks reports exactly N BaseRuns and N
// ProfileRuns regardless of the grid size; a grid axis that feeds a stage
// (scope, region granularity, memory latency) adds runs only to that
// stage.
type CacheStats struct {
	BaseRuns    int64 `json:"base_runs"`
	BaseHits    int64 `json:"base_hits"`
	ProfileRuns int64 `json:"profile_runs"`
	ProfileHits int64 `json:"profile_hits"`
	// TraceRuns counts base-run trace recordings, TraceHits replays served
	// from an already-recorded trace. A selection-knob grid over N traceable
	// benchmarks records exactly N traces; cells whose runs are too large to
	// record (see timing.Traceable) simulate directly and count in neither.
	TraceRuns int64 `json:"trace_runs,omitempty"`
	TraceHits int64 `json:"trace_hits,omitempty"`
	// Evictions counts entries dropped by the WithStageCacheLimit LRU
	// bound (all stages); always zero for unlimited caches.
	Evictions int64 `json:"evictions,omitempty"`
}

// Stats returns a snapshot of the cache's cumulative hit/run counters.
func (c *StageCache) Stats() CacheStats {
	return CacheStats{
		BaseRuns:    c.base.runs.Load(),
		BaseHits:    c.base.hits.Load(),
		ProfileRuns: c.profile.runs.Load(),
		ProfileHits: c.profile.hits.Load(),
		TraceRuns:   c.trace.runs.Load(),
		TraceHits:   c.trace.hits.Load(),
		Evictions:   c.base.evictions.Load() + c.profile.evictions.Load() + c.trace.evictions.Load(),
	}
}

// Len returns the entry counts currently held by the three stages.
func (c *StageCache) Len() (baseEntries, profileEntries, traceEntries int) {
	return c.base.len(), c.profile.len(), c.trace.len()
}

// sub returns the counter deltas since an earlier snapshot.
func (s CacheStats) sub(prev CacheStats) CacheStats {
	return CacheStats{
		BaseRuns:    s.BaseRuns - prev.BaseRuns,
		BaseHits:    s.BaseHits - prev.BaseHits,
		ProfileRuns: s.ProfileRuns - prev.ProfileRuns,
		ProfileHits: s.ProfileHits - prev.ProfileHits,
		TraceRuns:   s.TraceRuns - prev.TraceRuns,
		TraceHits:   s.TraceHits - prev.TraceHits,
		Evictions:   s.Evictions - prev.Evictions,
	}
}

// FlightGroup coalesces concurrent computations of the same key: while one
// caller computes, every other caller asking for that key waits for — and
// shares — its result. Unlike the stage maps inside StageCache it does NOT
// memoize: the entry is dropped the moment the computation finishes, so a
// later request computes afresh (and, for the evaluation service, lands on
// the StageCache for the expensive stages). It is the request-level
// single-flight layer of the serve package: N concurrent identical
// /v1/evaluate requests run one full evaluation between them.
//
// Failed computations follow the StageCache contract: the failure (typically
// the computing caller's own cancellation) is returned only to the caller
// whose compute it was; coalesced waiters retry with their own contexts, so
// one client's disconnect cannot fail another's identical request.
//
// The zero FlightGroup is ready for concurrent use.
type FlightGroup[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*flight[V]

	// flights counts computations actually started; shared counts calls
	// served by coalescing onto another caller's flight.
	flights atomic.Int64
	shared  atomic.Int64
	// waiting gauges callers currently blocked on another flight (tests and
	// the /v1/stats in-flight accounting).
	waiting atomic.Int64
}

type flight[V any] struct {
	done chan struct{} // closed when val/ok are set
	val  V
	ok   bool // false: the flight failed, waiters retry
}

// Stats returns the group's cumulative counters: computations started and
// calls served by coalescing.
func (g *FlightGroup[K, V]) Stats() (flights, shared int64) {
	return g.flights.Load(), g.shared.Load()
}

// Waiting gauges the callers currently blocked on another caller's flight.
func (g *FlightGroup[K, V]) Waiting() int64 { return g.waiting.Load() }

// Do returns compute(key)'s result, coalescing concurrent calls for the same
// key onto a single computation. shared reports whether this call was served
// by another caller's flight. Cancelling ctx abandons waiting (the flight
// itself keeps running for its owner).
func (g *FlightGroup[K, V]) Do(ctx context.Context, key K, compute func() (V, error)) (v V, shared bool, err error) {
	var zero V
	for {
		if err := ctx.Err(); err != nil {
			return zero, false, err
		}
		g.mu.Lock()
		if f, ok := g.m[key]; ok {
			g.mu.Unlock()
			g.waiting.Add(1)
			select {
			case <-f.done:
				g.waiting.Add(-1)
				if !f.ok {
					// The flight failed; its entry is already gone. Retry
					// (and compute, if nobody else has started).
					continue
				}
				g.shared.Add(1)
				return f.val, true, nil
			case <-ctx.Done():
				g.waiting.Add(-1)
				return zero, false, ctx.Err()
			}
		}
		if g.m == nil {
			g.m = make(map[K]*flight[V])
		}
		f := &flight[V]{done: make(chan struct{})}
		g.m[key] = f
		g.mu.Unlock()
		g.flights.Add(1)

		// The flight must land even if compute panics (an http.Handler
		// recovers the panic and keeps serving, so a leaked entry would
		// wedge this key forever): treat a panicking compute as a failed
		// flight — waiters retry — and let the panic propagate.
		landed := false
		defer func() {
			if landed {
				return
			}
			g.mu.Lock()
			delete(g.m, key)
			g.mu.Unlock()
			close(f.done) // f.ok stays false: waiters retry
		}()
		v, err := compute()
		landed = true
		g.mu.Lock()
		delete(g.m, key) // no memoization: success and failure both drop
		g.mu.Unlock()
		f.val, f.ok = v, err == nil
		close(f.done)
		if err != nil {
			return zero, false, err
		}
		return v, false, nil
	}
}

type baseKey struct {
	prog *Program
	cfg  TimingConfig
}

type profileKey struct {
	prog *Program
	opts ProfileOptions
}

type traceKey struct {
	prog    *Program
	cfg     TimingConfig
	version string
}

// baseStats returns the memoized base timing run for (p, cfg), computing it
// on a miss. cfg must be a nil-p-thread ModeBase configuration.
func (c *StageCache) baseStats(ctx context.Context, p *Program, cfg TimingConfig, compute func() (Stats, error)) (Stats, error) {
	return c.base.getOrCompute(ctx, baseKey{prog: p, cfg: normalizeBaseTiming(cfg)}, compute)
}

// regions returns the memoized profile for (p, opts), computing it on a
// miss. Callers must treat the returned regions as immutable.
func (c *StageCache) regions(ctx context.Context, p *Program, opts ProfileOptions, compute func() ([]ProfileRegion, error)) ([]ProfileRegion, error) {
	return c.profile.getOrCompute(ctx, profileKey{prog: p, opts: opts}, compute)
}

// traceFor returns the memoized base-run trace for (p, cfg), recording it on
// a miss. cfg may carry any p-thread mode: the recorded front-end stream is
// mode- and selection-independent, so the entry is keyed by the same
// normalized base-run identity as baseStats, plus the simulator fingerprint
// (a timing-core change invalidates recorded traces cleanly). Traces are
// immutable after recording and shared by pointer across concurrent replays.
func (c *StageCache) traceFor(ctx context.Context, p *Program, cfg TimingConfig, compute func() (*Trace, error)) (*Trace, error) {
	key := traceKey{prog: p, cfg: normalizeBaseTiming(cfg), version: timing.TraceVersion}
	return c.trace.getOrCompute(ctx, key, compute)
}

// stageMap is one memoized stage: a keyed set of single-flight entries,
// optionally bounded by an LRU eviction policy (limit > 0). The LRU list is
// intrusive — most-recently-used at head — and eviction only unmaps an
// entry: a flight already handed out completes normally for the callers
// holding it, so eviction can never change a result, only force a later
// recomputation.
type stageMap[K comparable, V any] struct {
	mu         sync.Mutex
	m          map[K]*stageEntry[K, V]
	limit      int // max entries (0 = unlimited)
	head, tail *stageEntry[K, V]
	runs, hits atomic.Int64
	evictions  atomic.Int64
}

type stageEntry[K comparable, V any] struct {
	key    K
	done   chan struct{} // closed when val/failed are set
	val    V
	failed bool

	// LRU links, guarded by the stageMap mutex. linked distinguishes
	// "unmapped by eviction" from "in the list" so failure cleanup and
	// eviction stay idempotent.
	prev, next *stageEntry[K, V]
	linked     bool
}

// moveToFront marks e most recently used. Caller holds s.mu.
func (s *stageMap[K, V]) moveToFront(e *stageEntry[K, V]) {
	if !e.linked || s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

func (s *stageMap[K, V]) pushFront(e *stageEntry[K, V]) {
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
	e.linked = true
}

func (s *stageMap[K, V]) unlink(e *stageEntry[K, V]) {
	if !e.linked {
		return
	}
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
	e.linked = false
}

// drop removes e from the map and LRU list if still present. Caller holds
// s.mu.
func (s *stageMap[K, V]) drop(e *stageEntry[K, V]) {
	if cur, ok := s.m[e.key]; ok && cur == e {
		delete(s.m, e.key)
	}
	s.unlink(e)
}

func (s *stageMap[K, V]) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

func (s *stageMap[K, V]) getOrCompute(ctx context.Context, key K, compute func() (V, error)) (V, error) {
	var zero V
	for {
		if err := ctx.Err(); err != nil {
			return zero, err
		}
		s.mu.Lock()
		if e, ok := s.m[key]; ok {
			s.moveToFront(e)
			s.mu.Unlock()
			select {
			case <-e.done:
				if e.failed {
					// The flight failed — typically its own caller's
					// cancellation, which must not poison callers whose
					// contexts are alive. The entry is already dropped;
					// retry (and recompute if nobody else has).
					continue
				}
				// Count hits only for waits that served a value, so
				// hits+runs equals completed lookups even across failed,
				// retried flights.
				s.hits.Add(1)
				return e.val, nil
			case <-ctx.Done():
				return zero, ctx.Err()
			}
		}
		if s.m == nil {
			s.m = make(map[K]*stageEntry[K, V])
		}
		e := &stageEntry[K, V]{key: key, done: make(chan struct{})}
		s.m[key] = e
		s.pushFront(e)
		if s.limit > 0 && len(s.m) > s.limit {
			// Evict the least recently used entry (never the one just
			// inserted: limit >= 1 implies at least two entries here).
			s.drop(s.tail)
			s.evictions.Add(1)
		}
		s.mu.Unlock()
		s.runs.Add(1)

		v, err := compute()
		if err != nil {
			// Failures are not memoized: drop the entry so later requests
			// recompute, then release the waiters that coalesced onto this
			// flight. The failure is returned only to the caller whose
			// compute it was.
			s.mu.Lock()
			s.drop(e)
			s.mu.Unlock()
			e.failed = true
			close(e.done)
			return zero, err
		}
		e.val = v
		close(e.done)
		return v, nil
	}
}
