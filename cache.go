package preexec

import (
	"context"
	"sync"
	"sync/atomic"
)

// StageCache memoizes the expensive, selection-independent stages of the
// evaluation pipeline across engines that share it: base timing runs and
// functional profiles. The paper's framework explicitly decouples these
// stages — one profile and one base run can serve many selection variants
// (§4) — so a sweep whose cells differ only in selection or ablation knobs
// performs each per-benchmark stage once.
//
// Entries are keyed by program identity (pointer) plus only the
// configuration fields that feed the stage:
//
//   - base timing runs: the full normalized timing.Config — which an Engine
//     derives from MachineConfig alone — with NoRSThrottle cleared, since
//     the injection throttle only gates p-thread bursts and a base run has
//     no p-threads. Only nil-p-thread ModeBase runs are cached; p-thread
//     runs depend on the selection and are never shared.
//   - profiles: the full ProfileOptions (warm-up, profile window, scope,
//     max slice length, region granularity) plus the profiled program —
//     which may be the selection target (SelectionConfig.ProfileOn), not
//     the evaluated program.
//
// Cached profile regions are shared by pointer: selection only reads the
// slice forests (paths and bodies are copied out), so concurrent selections
// over one cached profile are safe and results stay bit-for-bit identical
// to uncached runs (pinned by TestSweepSelectionGridCacheCounts).
//
// A StageCache is safe for concurrent use. Concurrent requests for the same
// key are single-flighted: one computes, the rest wait for its result. A
// failed computation (typically cancellation) is not memoized — the entry
// is dropped and coalesced waiters retry with their own contexts, so one
// sweep's cancellation cannot poison another sweep sharing the cache.
//
// Keys do not include the stage backends: every engine sharing a cache
// must use the same Profiler and Simulator (see WithStageCache). Program
// identity is the *Program pointer — rebuilt programs never hit — and
// entries live as long as the cache does (no eviction), so scope a cache
// to the sweeps that share its programs.
type StageCache struct {
	base    stageMap[baseKey, Stats]
	profile stageMap[profileKey, []ProfileRegion]
}

// NewStageCache returns an empty stage cache ready for concurrent use.
func NewStageCache() *StageCache { return &StageCache{} }

// CacheStats counts a StageCache's activity: Runs are stage executions that
// actually happened (cache misses), Hits are requests served from (or
// coalesced onto) an existing entry. A selection-knob sweep (Figure 5's
// opt/merge grid) over N benchmarks reports exactly N BaseRuns and N
// ProfileRuns regardless of the grid size; a grid axis that feeds a stage
// (scope, region granularity, memory latency) adds runs only to that
// stage.
type CacheStats struct {
	BaseRuns    int64 `json:"base_runs"`
	BaseHits    int64 `json:"base_hits"`
	ProfileRuns int64 `json:"profile_runs"`
	ProfileHits int64 `json:"profile_hits"`
}

// Stats returns a snapshot of the cache's cumulative hit/run counters.
func (c *StageCache) Stats() CacheStats {
	return CacheStats{
		BaseRuns:    c.base.runs.Load(),
		BaseHits:    c.base.hits.Load(),
		ProfileRuns: c.profile.runs.Load(),
		ProfileHits: c.profile.hits.Load(),
	}
}

// sub returns the counter deltas since an earlier snapshot.
func (s CacheStats) sub(prev CacheStats) CacheStats {
	return CacheStats{
		BaseRuns:    s.BaseRuns - prev.BaseRuns,
		BaseHits:    s.BaseHits - prev.BaseHits,
		ProfileRuns: s.ProfileRuns - prev.ProfileRuns,
		ProfileHits: s.ProfileHits - prev.ProfileHits,
	}
}

type baseKey struct {
	prog *Program
	cfg  TimingConfig
}

type profileKey struct {
	prog *Program
	opts ProfileOptions
}

// baseStats returns the memoized base timing run for (p, cfg), computing it
// on a miss. cfg must be a nil-p-thread ModeBase configuration.
func (c *StageCache) baseStats(ctx context.Context, p *Program, cfg TimingConfig, compute func() (Stats, error)) (Stats, error) {
	key := baseKey{prog: p, cfg: cfg}
	// The injection throttle only gates p-thread bursts; with no p-threads
	// it cannot fire, so ablation cells share the base run.
	key.cfg.NoRSThrottle = false
	return c.base.getOrCompute(ctx, key, compute)
}

// regions returns the memoized profile for (p, opts), computing it on a
// miss. Callers must treat the returned regions as immutable.
func (c *StageCache) regions(ctx context.Context, p *Program, opts ProfileOptions, compute func() ([]ProfileRegion, error)) ([]ProfileRegion, error) {
	return c.profile.getOrCompute(ctx, profileKey{prog: p, opts: opts}, compute)
}

// stageMap is one memoized stage: a keyed set of single-flight entries.
type stageMap[K comparable, V any] struct {
	mu         sync.Mutex
	m          map[K]*stageEntry[V]
	runs, hits atomic.Int64
}

type stageEntry[V any] struct {
	done   chan struct{} // closed when val/failed are set
	val    V
	failed bool
}

func (s *stageMap[K, V]) getOrCompute(ctx context.Context, key K, compute func() (V, error)) (V, error) {
	var zero V
	for {
		if err := ctx.Err(); err != nil {
			return zero, err
		}
		s.mu.Lock()
		if e, ok := s.m[key]; ok {
			s.mu.Unlock()
			select {
			case <-e.done:
				if e.failed {
					// The flight failed — typically its own caller's
					// cancellation, which must not poison callers whose
					// contexts are alive. The entry is already dropped;
					// retry (and recompute if nobody else has).
					continue
				}
				// Count hits only for waits that served a value, so
				// hits+runs equals completed lookups even across failed,
				// retried flights.
				s.hits.Add(1)
				return e.val, nil
			case <-ctx.Done():
				return zero, ctx.Err()
			}
		}
		if s.m == nil {
			s.m = make(map[K]*stageEntry[V])
		}
		e := &stageEntry[V]{done: make(chan struct{})}
		s.m[key] = e
		s.mu.Unlock()
		s.runs.Add(1)

		v, err := compute()
		if err != nil {
			// Failures are not memoized: drop the entry so later requests
			// recompute, then release the waiters that coalesced onto this
			// flight. The failure is returned only to the caller whose
			// compute it was.
			s.mu.Lock()
			delete(s.m, key)
			s.mu.Unlock()
			e.failed = true
			close(e.done)
			return zero, err
		}
		e.val = v
		close(e.done)
		return v, nil
	}
}
