package preexec

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// fakeProgs returns n distinct program identities (the cache keys on
// pointer identity; the contents are irrelevant to the stage map).
func fakeProgs(n int) []*Program {
	ps := make([]*Program, n)
	for i := range ps {
		ps[i] = &Program{Name: fmt.Sprintf("p%d", i)}
	}
	return ps
}

func TestStageCacheLimitEvictsLRU(t *testing.T) {
	ctx := context.Background()
	c := NewStageCache(WithStageCacheLimit(2))
	cfg := TimingConfig{}
	computes := 0
	get := func(p *Program) {
		t.Helper()
		if _, err := c.baseStats(ctx, p, cfg, func() (Stats, error) {
			computes++
			return Stats{Retired: 1}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	ps := fakeProgs(3)
	get(ps[0])
	get(ps[1])
	get(ps[0]) // refresh p0: p1 becomes least recently used
	get(ps[2]) // exceeds the bound: evicts p1
	if base, _, _ := c.Len(); base != 2 {
		t.Fatalf("cache holds %d base entries, want 2", base)
	}
	if got := c.Stats().Evictions; got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if computes != 3 {
		t.Fatalf("computes = %d, want 3", computes)
	}
	get(ps[0]) // still cached
	if computes != 3 {
		t.Fatalf("p0 recomputed after refresh, computes = %d", computes)
	}
	get(ps[1]) // evicted: must recompute (and evict p2, the new LRU... p0 was just used)
	if computes != 4 {
		t.Fatalf("evicted p1 not recomputed, computes = %d", computes)
	}
	st := c.Stats()
	if st.BaseRuns != 4 || st.BaseHits != 2 {
		t.Fatalf("stats = %+v, want 4 runs / 2 hits", st)
	}
}

func TestStageCacheUnlimitedByDefault(t *testing.T) {
	ctx := context.Background()
	c := NewStageCache()
	cfg := TimingConfig{}
	for _, p := range fakeProgs(64) {
		if _, err := c.baseStats(ctx, p, cfg, func() (Stats, error) { return Stats{}, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if base, _, _ := c.Len(); base != 64 {
		t.Fatalf("unlimited cache holds %d entries, want 64", base)
	}
	if ev := c.Stats().Evictions; ev != 0 {
		t.Fatalf("unlimited cache evicted %d entries", ev)
	}
}

// TestStageCacheComputeRunsUnlocked observes dynamically what the lockscope
// analyzer asserts statically for getOrCompute: the stage mutex guards only
// map and LRU bookkeeping, never the compute itself, so a blocked
// computation for one key cannot stall lookups of other keys.
func TestStageCacheComputeRunsUnlocked(t *testing.T) {
	ctx := context.Background()
	c := NewStageCache()
	cfg := TimingConfig{}
	ps := fakeProgs(2)

	started := make(chan struct{})
	release := make(chan struct{})
	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		st, err := c.baseStats(ctx, ps[0], cfg, func() (Stats, error) {
			close(started)
			<-release
			return Stats{Retired: 10}, nil
		})
		if err != nil || st.Retired != 10 {
			t.Errorf("slow compute: (%+v, %v), want Retired 10", st, err)
		}
	}()
	<-started

	fastDone := make(chan struct{})
	go func() {
		defer close(fastDone)
		st, err := c.baseStats(ctx, ps[1], cfg, func() (Stats, error) {
			return Stats{Retired: 20}, nil
		})
		if err != nil || st.Retired != 20 {
			t.Errorf("fast compute: (%+v, %v), want Retired 20", st, err)
		}
	}()
	select {
	case <-fastDone:
	case <-time.After(5 * time.Second):
		t.Fatal("p1 lookup blocked behind p0's compute: the stage lock is held across compute")
	}
	close(release)
	<-slowDone
	if st := c.Stats(); st.BaseRuns != 2 || st.BaseHits != 0 {
		t.Errorf("stats = %+v, want 2 runs / 0 hits", st)
	}
}

// TestStageCacheEvictionOfInflightEntry pins the eviction-accounting
// contract while a compute is blocked in flight: the LRU bound may unmap an
// entry whose computation is still running; the evicted flight completes
// normally for its owner, a later request for the same key recomputes
// rather than coalescing onto the evicted entry (it would otherwise block
// behind a flight no longer reachable from the map), and eviction counters
// stay exact throughout.
func TestStageCacheEvictionOfInflightEntry(t *testing.T) {
	ctx := context.Background()
	c := NewStageCache(WithStageCacheLimit(1))
	cfg := TimingConfig{}
	ps := fakeProgs(2)

	started := make(chan struct{})
	release := make(chan struct{})
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		st, err := c.baseStats(ctx, ps[0], cfg, func() (Stats, error) {
			close(started)
			<-release
			return Stats{Retired: 10}, nil
		})
		if err != nil || st.Retired != 10 {
			t.Errorf("evicted in-flight compute: (%+v, %v), want Retired 10 for its owner", st, err)
		}
	}()
	<-started

	// p1 inserts while p0's compute is blocked: the bound evicts p0's
	// in-flight entry (the LRU tail).
	st1, err := c.baseStats(ctx, ps[1], cfg, func() (Stats, error) {
		return Stats{Retired: 20}, nil
	})
	if err != nil || st1.Retired != 20 {
		t.Fatalf("p1 compute: (%+v, %v), want Retired 20", st1, err)
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d after evicting the in-flight entry, want 1", ev)
	}

	// p0 was unmapped mid-flight, so a fresh request must start its own
	// computation instead of waiting on the evicted (still blocked) flight.
	recomputed := make(chan Stats, 1)
	go func() {
		st, err := c.baseStats(ctx, ps[0], cfg, func() (Stats, error) {
			return Stats{Retired: 11}, nil
		})
		if err != nil {
			t.Error(err)
		}
		recomputed <- st
	}()
	select {
	case st := <-recomputed:
		if st.Retired != 11 {
			t.Fatalf("re-request after eviction got Retired %d, want a fresh 11", st.Retired)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("re-request coalesced onto the evicted in-flight entry and blocked")
	}

	close(release)
	<-firstDone

	// The fresh p0 entry evicted p1 in turn; the evicted flight's late
	// completion must not resurrect its entry or disturb the counters.
	if base, _, _ := c.Len(); base != 1 {
		t.Fatalf("cache holds %d base entries, want 1", base)
	}
	st := c.Stats()
	if st.BaseRuns != 3 || st.BaseHits != 0 || st.Evictions != 2 {
		t.Fatalf("stats = %+v, want 3 runs / 0 hits / 2 evictions", st)
	}
	got, err := c.baseStats(ctx, ps[0], cfg, func() (Stats, error) {
		return Stats{Retired: 99}, nil
	})
	if err != nil || got.Retired != 11 {
		t.Fatalf("p0 after settle: (%+v, %v), want the cached Retired 11", got, err)
	}
	if hits := c.Stats().BaseHits; hits != 1 {
		t.Fatalf("hits = %d after cached re-read, want 1", hits)
	}
}

// TestSweepWithCacheLimitBitIdentical pins the LRU contract end to end: a
// sweep over a cache bounded to a single entry per stage — evicting on
// every benchmark switch — produces cells bit-identical to an uncached
// sweep.
func TestSweepWithCacheLimitBitIdentical(t *testing.T) {
	benches, err := SweepBenches([]string{"crafty", "gap"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Machine.WarmInsts, cfg.Machine.MeasureInsts = 5_000, 15_000
	cfgRaw := cfg
	cfgRaw.Selection.Optimize = false
	points := []ConfigPoint{{Name: "base", Config: cfg}, {Name: "raw", Config: cfgRaw}}

	limited := &Sweep{Cache: NewStageCache(WithStageCacheLimit(1)), Workers: 1}
	resLim, err := limited.Run(context.Background(), benches, points)
	if err != nil {
		t.Fatal(err)
	}
	plain := &Sweep{NoCache: true, Workers: 1}
	resPlain, err := plain.Run(context.Background(), benches, points)
	if err != nil {
		t.Fatal(err)
	}
	if len(resLim.Cells) != len(resPlain.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(resLim.Cells), len(resPlain.Cells))
	}
	for i := range resLim.Cells {
		a, b := resLim.Cells[i], resPlain.Cells[i]
		if a.Report.Base != b.Report.Base || a.Report.Pre != b.Report.Pre ||
			a.Report.BaseMisses != b.Report.BaseMisses {
			t.Errorf("cell %s/%s differs between limited cache and no cache", a.Bench, a.Point)
		}
	}
	if base, prof, trace := limited.Cache.Len(); base > 1 || prof > 1 || trace > 1 {
		t.Errorf("limited cache holds %d/%d/%d entries, want <= 1 each", base, prof, trace)
	}
}
