package preexec

import (
	"context"
	"fmt"
	"testing"
)

// fakeProgs returns n distinct program identities (the cache keys on
// pointer identity; the contents are irrelevant to the stage map).
func fakeProgs(n int) []*Program {
	ps := make([]*Program, n)
	for i := range ps {
		ps[i] = &Program{Name: fmt.Sprintf("p%d", i)}
	}
	return ps
}

func TestStageCacheLimitEvictsLRU(t *testing.T) {
	ctx := context.Background()
	c := NewStageCache(WithStageCacheLimit(2))
	cfg := TimingConfig{}
	computes := 0
	get := func(p *Program) {
		t.Helper()
		if _, err := c.baseStats(ctx, p, cfg, func() (Stats, error) {
			computes++
			return Stats{Retired: 1}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	ps := fakeProgs(3)
	get(ps[0])
	get(ps[1])
	get(ps[0]) // refresh p0: p1 becomes least recently used
	get(ps[2]) // exceeds the bound: evicts p1
	if base, _ := c.Len(); base != 2 {
		t.Fatalf("cache holds %d base entries, want 2", base)
	}
	if got := c.Stats().Evictions; got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if computes != 3 {
		t.Fatalf("computes = %d, want 3", computes)
	}
	get(ps[0]) // still cached
	if computes != 3 {
		t.Fatalf("p0 recomputed after refresh, computes = %d", computes)
	}
	get(ps[1]) // evicted: must recompute (and evict p2, the new LRU... p0 was just used)
	if computes != 4 {
		t.Fatalf("evicted p1 not recomputed, computes = %d", computes)
	}
	st := c.Stats()
	if st.BaseRuns != 4 || st.BaseHits != 2 {
		t.Fatalf("stats = %+v, want 4 runs / 2 hits", st)
	}
}

func TestStageCacheUnlimitedByDefault(t *testing.T) {
	ctx := context.Background()
	c := NewStageCache()
	cfg := TimingConfig{}
	for _, p := range fakeProgs(64) {
		if _, err := c.baseStats(ctx, p, cfg, func() (Stats, error) { return Stats{}, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if base, _ := c.Len(); base != 64 {
		t.Fatalf("unlimited cache holds %d entries, want 64", base)
	}
	if ev := c.Stats().Evictions; ev != 0 {
		t.Fatalf("unlimited cache evicted %d entries", ev)
	}
}

// TestSweepWithCacheLimitBitIdentical pins the LRU contract end to end: a
// sweep over a cache bounded to a single entry per stage — evicting on
// every benchmark switch — produces cells bit-identical to an uncached
// sweep.
func TestSweepWithCacheLimitBitIdentical(t *testing.T) {
	benches, err := SweepBenches([]string{"crafty", "gap"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Machine.WarmInsts, cfg.Machine.MeasureInsts = 5_000, 15_000
	cfgRaw := cfg
	cfgRaw.Selection.Optimize = false
	points := []ConfigPoint{{Name: "base", Config: cfg}, {Name: "raw", Config: cfgRaw}}

	limited := &Sweep{Cache: NewStageCache(WithStageCacheLimit(1)), Workers: 1}
	resLim, err := limited.Run(context.Background(), benches, points)
	if err != nil {
		t.Fatal(err)
	}
	plain := &Sweep{NoCache: true, Workers: 1}
	resPlain, err := plain.Run(context.Background(), benches, points)
	if err != nil {
		t.Fatal(err)
	}
	if len(resLim.Cells) != len(resPlain.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(resLim.Cells), len(resPlain.Cells))
	}
	for i := range resLim.Cells {
		a, b := resLim.Cells[i], resPlain.Cells[i]
		if a.Report.Base != b.Report.Base || a.Report.Pre != b.Report.Pre ||
			a.Report.BaseMisses != b.Report.BaseMisses {
			t.Errorf("cell %s/%s differs between limited cache and no cache", a.Bench, a.Point)
		}
	}
	if base, prof := limited.Cache.Len(); base > 1 || prof > 1 {
		t.Errorf("limited cache holds %d/%d entries, want <= 1 each", base, prof)
	}
}
