// Command benchsnap snapshots the simulator micro-benchmarks
// (BenchmarkSim<workload>: one bare timing.Run of 50k instructions each,
// mirroring the root bench_test.go targets), the sweep-memoization pair
// (BenchmarkSweepCached/BenchmarkSweepUncached: the same selection grid with
// and without the stage cache), the trace-replay benchmarks
// (BenchmarkRecordTraceVprP/BenchmarkReplayVprP bracket one cell's record
// and replay cost against BenchmarkSimVprPPreexec's full simulation;
// BenchmarkSweepReplayGrid/BenchmarkSweepFullSimGrid are the same selection
// grid with the replay fast path on and forced off), and the
// workload-synthesis pair (BenchmarkSynthGenerate/BenchmarkAssemble,
// mirroring synth/bench_test.go) into a JSON baseline, and checks a fresh
// run against a committed baseline.
//
//	benchsnap -o BENCH_baseline.json          # record a baseline
//	benchsnap -check BENCH_baseline.json      # fail on gross regressions
//
// Checking compares allocations per op — the machine-independent regression
// signal the zero-allocation core is defended by — against a tolerance
// (default 30%, plus a small absolute slack for map-growth noise). Time per
// op is printed for information but never fails the check: the baseline's
// nanoseconds were measured on whatever machine recorded it, not on the
// machine running the check.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"preexec"
	"preexec/internal/advantage"
	"preexec/internal/obs"
	"preexec/internal/selector"
	"preexec/internal/slice"
	"preexec/internal/timing"
	"preexec/internal/workload"
	"preexec/synth"
)

// Result is one benchmark measurement.
type Result struct {
	NsOp     float64 `json:"ns_op"`
	BOp      int64   `json:"b_op"`
	AllocsOp int64   `json:"allocs_op"`
}

// Snapshot is the file format: benchmark name -> measurement, plus the
// environment the times were recorded on.
type Snapshot struct {
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	RecordedAt string            `json:"recorded_at"`
	Note       string            `json:"note"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// simBench returns the closure benchmarking one bare base-mode timing.Run,
// identical in shape to the root package's BenchmarkSim<workload> targets.
func simBench(name string) (func(b *testing.B), error) {
	w, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	p := w.Build(1)
	cfg := timing.DefaultConfig()
	cfg.MaxInsts = 50_000
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := timing.Run(p, nil, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}, nil
}

// preexecBench returns the closure for the pre-execution-mode benchmark
// (BenchmarkSimVprPPreexec's shape): profile + select once, then measure
// timing.Run with the selected p-threads.
func preexecBench() (func(b *testing.B), error) {
	w, err := workload.ByName("vpr.p")
	if err != nil {
		return nil, err
	}
	p := w.Build(1)
	forest, err := slice.ProfileWhole(p, slice.ProfileOptions{MaxInsts: 50_000})
	if err != nil {
		return nil, err
	}
	res := selector.SelectForest(forest, selector.Options{Params: advantage.DefaultParams(1.5), Merge: true})
	cfg := timing.DefaultConfig()
	cfg.MaxInsts = 50_000
	cfg.Mode = timing.ModeNormal
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := timing.Run(p, res.PThreads, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}, nil
}

// recordBench returns the closure for BenchmarkRecordTraceVprP's shape: one
// base-run trace recording of the 50k-instruction vpr.p run.
func recordBench() (func(b *testing.B), error) {
	w, err := workload.ByName("vpr.p")
	if err != nil {
		return nil, err
	}
	p := w.Build(1)
	cfg := timing.DefaultConfig()
	cfg.MaxInsts = 50_000
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := timing.RecordTrace(context.Background(), p, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}, nil
}

// replayBench returns the closure for BenchmarkReplayVprP's shape: profile,
// select, and record once, then measure timing.Replay of the selection
// against the trace — the replay-side counterpart of preexecBench, so the
// baseline brackets the per-cell saving of the trace-replay fast path.
func replayBench() (func(b *testing.B), error) {
	w, err := workload.ByName("vpr.p")
	if err != nil {
		return nil, err
	}
	p := w.Build(1)
	forest, err := slice.ProfileWhole(p, slice.ProfileOptions{MaxInsts: 50_000})
	if err != nil {
		return nil, err
	}
	res := selector.SelectForest(forest, selector.Options{Params: advantage.DefaultParams(1.5), Merge: true})
	cfg := timing.DefaultConfig()
	cfg.MaxInsts = 50_000
	cfg.Mode = timing.ModeNormal
	tr, err := timing.RecordTrace(context.Background(), p, cfg)
	if err != nil {
		return nil, err
	}
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := timing.Replay(context.Background(), tr, res.PThreads, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}, nil
}

// replaySweepBench returns the closure for the
// BenchmarkSweepReplayGrid/BenchmarkSweepFullSimGrid pair: the sweepBench
// selection grid run through an engine with the trace-replay fast path on
// (the default) or forced off, so the sweep-level win of replay is recorded
// in the baseline alongside the memoization pair.
func replaySweepBench(replay bool) (func(b *testing.B), error) {
	benches, err := preexec.SweepBenches([]string{"crafty", "gcc", "vpr.p"}, 1)
	if err != nil {
		return nil, err
	}
	points := make([]preexec.ConfigPoint, 0, 4)
	for _, name := range []string{"none", "merge", "opt", "opt+merge"} {
		cfg := preexec.DefaultConfig()
		cfg.Machine.WarmInsts, cfg.Machine.MeasureInsts = 10_000, 30_000
		cfg.Selection.Optimize = name == "opt" || name == "opt+merge"
		cfg.Selection.Merge = name == "merge" || name == "opt+merge"
		points = append(points, preexec.ConfigPoint{Name: name, Config: cfg})
	}
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := &preexec.Sweep{Engine: preexec.New(preexec.WithReplay(replay)), Workers: 2}
			if _, err := s.Run(context.Background(), benches, points); err != nil {
				b.Fatal(err)
			}
		}
	}, nil
}

// sweepBench returns the closure benchmarking one memoized (cached) or
// independent (uncached) selection sweep — a Figure-5-style four-point
// opt/merge grid over three contrasting benchmarks — so the stage cache's
// win is recorded in the baseline as a cached-vs-uncached pair. Selection
// knobs feed neither the base timing run nor the profile, so the cached
// sweep performs 3 of each where the uncached one performs 12.
func sweepBench(cached bool) (func(b *testing.B), error) {
	benches, err := preexec.SweepBenches([]string{"crafty", "gcc", "vpr.p"}, 1)
	if err != nil {
		return nil, err
	}
	points := make([]preexec.ConfigPoint, 0, 4)
	for _, name := range []string{"none", "merge", "opt", "opt+merge"} {
		cfg := preexec.DefaultConfig()
		cfg.Machine.WarmInsts, cfg.Machine.MeasureInsts = 10_000, 30_000
		cfg.Selection.Optimize = name == "opt" || name == "opt+merge"
		cfg.Selection.Merge = name == "merge" || name == "opt+merge"
		points = append(points, preexec.ConfigPoint{Name: name, Config: cfg})
	}
	return func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := &preexec.Sweep{Workers: 2, NoCache: !cached}
			if _, err := s.Run(context.Background(), benches, points); err != nil {
				b.Fatal(err)
			}
		}
	}, nil
}

// synthBenches returns the workload-synthesis pair mirroring
// synth/bench_test.go: BenchmarkSynthGenerate compiles a mid-size clustered
// chase spec, BenchmarkAssemble re-assembles its disassembly.
func synthBenches() (gen, asm func(b *testing.B)) {
	spec := synth.Spec{Family: "chase", Seed: 1, FootprintWords: 1 << 16, Iters: 30_000, Clusters: 256}
	src := synth.Disassemble(synth.MustGenerate(spec))
	gen = func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := synth.Generate(spec); err != nil {
				b.Fatal(err)
			}
		}
	}
	asm = func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := synth.Assemble(src); err != nil {
				b.Fatal(err)
			}
		}
	}
	return gen, asm
}

// obsDisabledBench returns BenchmarkObsDisabledOverhead: the nil-receiver
// no-op path of every obs instrument plus a disabled StartSpan. The baseline
// pins it at zero allocs/op — the package's "disabled instrumentation is
// free" contract — so any accidental allocation on the disabled hot path
// fails the -check gate.
func obsDisabledBench() func(b *testing.B) {
	var (
		c  *obs.Counter
		g  *obs.Gauge
		h  *obs.Histogram
		tr *obs.Tracer
	)
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Add(1)
			g.Set(int64(i))
			h.Observe(time.Duration(i))
			sp := tr.StartSpan("", "", "x")
			sp.SetAttr("k", "v")
			sp.End()
		}
	}
}

// benchName converts a workload name to its benchmark identifier
// (vpr.p -> BenchmarkSimVprP).
func benchName(w string) string {
	out := []rune{}
	up := true
	for _, r := range w {
		if r == '.' {
			up = true
			continue
		}
		if up {
			if r >= 'a' && r <= 'z' {
				r -= 'a' - 'A'
			}
			up = false
		}
		out = append(out, r)
	}
	return "BenchmarkSim" + string(out)
}

func measure() (map[string]Result, error) {
	out := make(map[string]Result)
	for _, name := range workload.Names() {
		fn, err := simBench(name)
		if err != nil {
			return nil, err
		}
		r := testing.Benchmark(fn)
		out[benchName(name)] = Result{NsOp: float64(r.NsPerOp()), BOp: r.AllocedBytesPerOp(), AllocsOp: r.AllocsPerOp()}
		fmt.Fprintf(os.Stderr, "%-28s %12.0f ns/op %10d B/op %8d allocs/op\n",
			benchName(name), float64(r.NsPerOp()), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}
	fn, err := preexecBench()
	if err != nil {
		return nil, err
	}
	r := testing.Benchmark(fn)
	out["BenchmarkSimVprPPreexec"] = Result{NsOp: float64(r.NsPerOp()), BOp: r.AllocedBytesPerOp(), AllocsOp: r.AllocsPerOp()}
	fmt.Fprintf(os.Stderr, "%-28s %12.0f ns/op %10d B/op %8d allocs/op\n",
		"BenchmarkSimVprPPreexec", float64(r.NsPerOp()), r.AllocedBytesPerOp(), r.AllocsPerOp())
	for _, sw := range []struct {
		name string
		mk   func() (func(b *testing.B), error)
	}{
		{"BenchmarkRecordTraceVprP", recordBench},
		{"BenchmarkReplayVprP", replayBench},
		{"BenchmarkSweepCached", func() (func(b *testing.B), error) { return sweepBench(true) }},
		{"BenchmarkSweepUncached", func() (func(b *testing.B), error) { return sweepBench(false) }},
		{"BenchmarkSweepReplayGrid", func() (func(b *testing.B), error) { return replaySweepBench(true) }},
		{"BenchmarkSweepFullSimGrid", func() (func(b *testing.B), error) { return replaySweepBench(false) }},
	} {
		fn, err := sw.mk()
		if err != nil {
			return nil, err
		}
		r := testing.Benchmark(fn)
		out[sw.name] = Result{NsOp: float64(r.NsPerOp()), BOp: r.AllocedBytesPerOp(), AllocsOp: r.AllocsPerOp()}
		fmt.Fprintf(os.Stderr, "%-28s %12.0f ns/op %10d B/op %8d allocs/op\n",
			sw.name, float64(r.NsPerOp()), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}
	gen, asm := synthBenches()
	for _, sb := range []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"BenchmarkSynthGenerate", gen},
		{"BenchmarkAssemble", asm},
		{"BenchmarkObsDisabledOverhead", obsDisabledBench()},
	} {
		r := testing.Benchmark(sb.fn)
		out[sb.name] = Result{NsOp: float64(r.NsPerOp()), BOp: r.AllocedBytesPerOp(), AllocsOp: r.AllocsPerOp()}
		fmt.Fprintf(os.Stderr, "%-28s %12.0f ns/op %10d B/op %8d allocs/op\n",
			sb.name, float64(r.NsPerOp()), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}
	return out, nil
}

func main() {
	var (
		out       = flag.String("o", "", "record a baseline snapshot to this file")
		check     = flag.String("check", "", "compare a fresh run against this baseline, failing on gross allocation regressions")
		tolerance = flag.Float64("tolerance", 0.30, "fractional allocs/op regression tolerated by -check")
		slack     = flag.Int64("slack", 32, "absolute allocs/op regression always tolerated (map growth noise)")
	)
	flag.Parse()
	if (*out == "") == (*check == "") {
		fmt.Fprintln(os.Stderr, "usage: benchsnap -o FILE | -check FILE [-tolerance 0.30]")
		os.Exit(2)
	}

	got, err := measure()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}

	if *out != "" {
		snap := Snapshot{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			RecordedAt: time.Now().UTC().Format(time.RFC3339),
			Note:       "ns_op is informational (machine-dependent); -check gates on allocs_op only",
			Benchmarks: got,
		}
		buf, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d benchmarks to %s\n", len(got), *out)
		return
	}

	buf, err := os.ReadFile(*check)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	var base Snapshot
	if err := json.Unmarshal(buf, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %s: %v\n", *check, err)
		os.Exit(1)
	}
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		want := base.Benchmarks[name]
		have, ok := got[name]
		if !ok {
			fmt.Printf("MISSING %s: in baseline but not measured\n", name)
			failed = true
			continue
		}
		limit := int64(float64(want.AllocsOp)*(1+*tolerance)) + *slack
		status := "ok"
		if have.AllocsOp > limit {
			status = "ALLOC REGRESSION"
			failed = true
		}
		fmt.Printf("%-28s allocs/op %8d -> %8d (limit %d)  time %.1fms -> %.1fms [informational]  %s\n",
			name, want.AllocsOp, have.AllocsOp, limit, want.NsOp/1e6, have.NsOp/1e6, status)
	}
	// A benchmark measured but absent from the baseline has no allocation
	// gate at all — force the baseline to be regenerated alongside the new
	// benchmark rather than passing silently ungated.
	measured := make([]string, 0, len(got))
	for name := range got {
		measured = append(measured, name)
	}
	sort.Strings(measured)
	for _, name := range measured {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Printf("NEW %s: measured but not in baseline; regenerate with benchsnap -o\n", name)
			failed = true
		}
	}
	if failed {
		fmt.Println("benchsnap: gross regression against", *check)
		os.Exit(1)
	}
	fmt.Printf("benchsnap: %d benchmarks within tolerance of %s\n", len(names), *check)
}
