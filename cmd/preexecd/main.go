// Command preexecd runs the pre-execution evaluation service: the package
// serve HTTP/JSON API over one shared stage cache, one workload registry,
// and one bounded simulation worker pool.
//
// Usage:
//
//	preexecd [-addr host:port] [-workers N] [-cachelimit N]
//	         [-backends host1:port,host2:port,...]
//
// Endpoints (see the README "Serving" section for request formats):
//
//	GET  /v1/workloads   registry listing
//	POST /v1/workloads   upload a .prx source or synth.Spec
//	POST /v1/evaluate    one benchmark x one configuration
//	POST /v1/sweep       grid evaluation (JSON/CSV, optional progress stream)
//	GET  /v1/stats       cache / request / coalescing / fleet counters
//
// With -backends the process runs as a sweep coordinator: /v1/sweep cells
// are consistent-hashed across the listed backend preexecds, retried with
// backoff on failure, failed over away from ejected backends, and merged in
// deterministic grid order — byte-identical to a single-node sweep. All
// other endpoints still evaluate locally, which is also the sweep's
// graceful-degradation path when every backend is down. The fleet knobs
// (-probe-interval, -retries, -eject-after, -attempt-timeout) tune the
// health probe and per-cell retry policy; see the README "Distributed
// sweeps" section.
//
// SIGINT and SIGTERM drain in-flight requests (and cancel their
// simulations) before exiting.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"preexec/internal/fleet"
	"preexec/serve"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8321", "listen address")
		workers    = flag.Int("workers", 0, "server-wide simulation concurrency (0 = all cores)")
		cachelimit = flag.Int("cachelimit", 0, "stage cache LRU bound, entries per stage (0 = unlimited)")

		backends       = flag.String("backends", "", "comma-separated backend preexecd addresses; turns this process into a sweep coordinator")
		probeInterval  = flag.Duration("probe-interval", 0, "backend health-probe interval (0 = default 2s, negative = disabled)")
		retries        = flag.Int("retries", 0, "per-cell attempt budget across backends (0 = default)")
		ejectAfter     = flag.Int("eject-after", 0, "consecutive failures before a backend is ejected (0 = default)")
		attemptTimeout = flag.Duration("attempt-timeout", 0, "per-attempt deadline for one remote cell (0 = default 2m)")
	)
	flag.Parse()
	log.SetPrefix("preexecd: ")
	log.SetFlags(log.LstdFlags)

	opts := []serve.Option{serve.WithWorkers(*workers), serve.WithCacheLimit(*cachelimit)}
	if *backends != "" {
		var addrs []string
		for _, a := range strings.Split(*backends, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		opts = append(opts,
			serve.WithBackends(addrs...),
			serve.WithFleetConfig(serve.FleetConfig{
				ProbeInterval: *probeInterval,
				Fleet: fleet.Config{
					RetryBudget:    *retries,
					EjectAfter:     *ejectAfter,
					AttemptTimeout: *attemptTimeout,
				},
			}))
		log.Printf("coordinator mode over %d backends: %s", len(addrs), strings.Join(addrs, ", "))
	}
	srv := serve.New(opts...)
	defer srv.Close()
	// Request contexts derive from baseCtx so shutdown can actually cancel
	// in-flight simulations (http.Server.Shutdown alone only waits for
	// connections to go idle — a long sweep would burn CPU until the
	// deadline and then be cut off mid-response).
	baseCtx, cancelRequests := context.WithCancel(context.Background())
	defer cancelRequests()
	httpSrv := &http.Server{
		Addr:        *addr,
		Handler:     logRequests(srv),
		BaseContext: func(net.Listener) context.Context { return baseCtx },
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on http://%s (workers=%d, cachelimit=%d)", *addr, srv.Workers(), *cachelimit)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Print("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// Quick requests get a grace period to finish cleanly; whatever is
		// still simulating after it is cancelled through its own context.
		grace := time.AfterFunc(2*time.Second, cancelRequests)
		defer grace.Stop()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}
}

// statusWriter records the response status for the request log, forwarding
// Flush so streamed sweeps keep flushing per cell.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		log.Printf("%s %s %d %s", r.Method, r.URL.Path, status, time.Since(start).Round(time.Millisecond))
	})
}
