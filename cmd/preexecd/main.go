// Command preexecd runs the pre-execution evaluation service: the package
// serve HTTP/JSON API over one shared stage cache, one workload registry,
// and one bounded simulation worker pool.
//
// Usage:
//
//	preexecd [-addr host:port] [-workers N] [-cachelimit N]
//	         [-backends host1:port,host2:port,...]
//	         [-log text|json] [-pprof host:port]
//
// Endpoints (see the README "Serving" section for request formats):
//
//	GET  /v1/workloads   registry listing
//	POST /v1/workloads   upload a .prx source or synth.Spec
//	POST /v1/evaluate    one benchmark x one configuration
//	POST /v1/sweep       grid evaluation (JSON/CSV, optional progress stream)
//	GET  /v1/stats       cache / request / coalescing / fleet counters
//	GET  /v1/spans       one trace's recorded spans as NDJSON
//	GET  /metrics        Prometheus text exposition of the same counters
//
// -log=json switches the request log to one JSON object per line (method,
// path, status, duration, trace ID). -pprof mounts net/http/pprof on its own
// loopback-only listener, kept off the service address so profiling is never
// exposed where the API is.
//
// With -backends the process runs as a sweep coordinator: /v1/sweep cells
// are consistent-hashed across the listed backend preexecds, retried with
// backoff on failure, failed over away from ejected backends, and merged in
// deterministic grid order — byte-identical to a single-node sweep. All
// other endpoints still evaluate locally, which is also the sweep's
// graceful-degradation path when every backend is down. The fleet knobs
// (-probe-interval, -retries, -eject-after, -attempt-timeout) tune the
// health probe and per-cell retry policy; see the README "Distributed
// sweeps" section.
//
// SIGINT and SIGTERM drain in-flight requests (and cancel their
// simulations) before exiting.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"preexec/internal/fleet"
	"preexec/internal/obs"
	"preexec/serve"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8321", "listen address")
		workers    = flag.Int("workers", 0, "server-wide simulation concurrency (0 = all cores)")
		cachelimit = flag.Int("cachelimit", 0, "stage cache LRU bound, entries per stage (0 = unlimited)")

		logFormat = flag.String("log", "text", "request log format: text or json")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this loopback address (e.g. 127.0.0.1:6060); empty = disabled")

		backends       = flag.String("backends", "", "comma-separated backend preexecd addresses; turns this process into a sweep coordinator")
		probeInterval  = flag.Duration("probe-interval", 0, "backend health-probe interval (0 = default 2s, negative = disabled)")
		retries        = flag.Int("retries", 0, "per-cell attempt budget across backends (0 = default)")
		ejectAfter     = flag.Int("eject-after", 0, "consecutive failures before a backend is ejected (0 = default)")
		attemptTimeout = flag.Duration("attempt-timeout", 0, "per-attempt deadline for one remote cell (0 = default 2m)")
	)
	flag.Parse()
	log.SetPrefix("preexecd: ")
	log.SetFlags(log.LstdFlags)
	jsonLog := false
	switch *logFormat {
	case "text":
	case "json":
		jsonLog = true
	default:
		log.Fatalf("-log=%q, want text or json", *logFormat)
	}

	opts := []serve.Option{serve.WithWorkers(*workers), serve.WithCacheLimit(*cachelimit)}
	if *backends != "" {
		var addrs []string
		for _, a := range strings.Split(*backends, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		opts = append(opts,
			serve.WithBackends(addrs...),
			serve.WithFleetConfig(serve.FleetConfig{
				ProbeInterval: *probeInterval,
				Fleet: fleet.Config{
					RetryBudget:    *retries,
					EjectAfter:     *ejectAfter,
					AttemptTimeout: *attemptTimeout,
				},
			}))
		log.Printf("coordinator mode over %d backends: %s", len(addrs), strings.Join(addrs, ", "))
	}
	srv := serve.New(opts...)
	defer srv.Close()
	// Request contexts derive from baseCtx so shutdown can actually cancel
	// in-flight simulations (http.Server.Shutdown alone only waits for
	// connections to go idle — a long sweep would burn CPU until the
	// deadline and then be cut off mid-response).
	baseCtx, cancelRequests := context.WithCancel(context.Background())
	defer cancelRequests()
	httpSrv := &http.Server{
		Addr:        *addr,
		Handler:     logRequests(srv, jsonLog),
		BaseContext: func(net.Listener) context.Context { return baseCtx },
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 2)
	if *pprofAddr != "" {
		ln, err := pprofListener(*pprofAddr)
		if err != nil {
			log.Fatalf("-pprof: %v", err)
		}
		pprofSrv := &http.Server{Handler: pprofMux()}
		defer pprofSrv.Close()
		go func() {
			log.Printf("pprof on http://%s/debug/pprof/", ln.Addr())
			errc <- pprofSrv.Serve(ln)
		}()
	}
	go func() {
		log.Printf("listening on http://%s (workers=%d, cachelimit=%d)", *addr, srv.Workers(), *cachelimit)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Print("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// Quick requests get a grace period to finish cleanly; whatever is
		// still simulating after it is cancelled through its own context.
		grace := time.AfterFunc(2*time.Second, cancelRequests)
		defer grace.Stop()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}
}

// statusWriter records the response status for the request log, forwarding
// Flush so streamed sweeps keep flushing per cell.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func logRequests(next http.Handler, jsonLog bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		// The serve layer stamps every response with its trace ID, so the
		// log line links straight to GET /v1/spans?trace=<id>.
		trace := sw.Header().Get(obs.TraceHeader)
		if !jsonLog {
			log.Printf("%s %s %d %s trace=%s", r.Method, r.URL.Path, status, elapsed, trace)
			return
		}
		line, err := json.Marshal(struct {
			Method   string `json:"method"`
			Path     string `json:"path"`
			Status   int    `json:"status"`
			Duration string `json:"duration"`
			Trace    string `json:"trace,omitempty"`
		}{r.Method, r.URL.Path, status, elapsed.String(), trace})
		if err != nil {
			log.Printf("%s %s %d %s trace=%s (json log: %v)", r.Method, r.URL.Path, status, elapsed, trace, err)
			return
		}
		log.Printf("%s", line)
	})
}

// pprofListener opens the profiling listener, insisting on a loopback host:
// pprof exposes heap contents and CPU control, so it must never bind a
// routable interface by accident.
func pprofListener(addr string) (net.Listener, error) {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("address %q: %w", addr, err)
	}
	ip := net.ParseIP(host)
	if host != "localhost" && (ip == nil || !ip.IsLoopback()) {
		return nil, fmt.Errorf("address %q is not loopback; pprof serves process internals and stays local-only", addr)
	}
	return net.Listen("tcp", addr)
}

// pprofMux mounts the net/http/pprof handlers on a dedicated mux — the
// package's init-time registration targets http.DefaultServeMux, which the
// service handler never serves.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
