// Command preexecd runs the pre-execution evaluation service: the package
// serve HTTP/JSON API over one shared stage cache, one workload registry,
// and one bounded simulation worker pool.
//
// Usage:
//
//	preexecd [-addr host:port] [-workers N] [-cachelimit N]
//
// Endpoints (see the README "Serving" section for request formats):
//
//	GET  /v1/workloads   registry listing
//	POST /v1/workloads   upload a .prx source or synth.Spec
//	POST /v1/evaluate    one benchmark x one configuration
//	POST /v1/sweep       grid evaluation (JSON/CSV, optional progress stream)
//	GET  /v1/stats       cache / request / coalescing counters
//
// SIGINT and SIGTERM drain in-flight requests (and cancel their
// simulations) before exiting.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"preexec/serve"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8321", "listen address")
		workers    = flag.Int("workers", 0, "server-wide simulation concurrency (0 = all cores)")
		cachelimit = flag.Int("cachelimit", 0, "stage cache LRU bound, entries per stage (0 = unlimited)")
	)
	flag.Parse()
	log.SetPrefix("preexecd: ")
	log.SetFlags(log.LstdFlags)

	srv := serve.New(serve.WithWorkers(*workers), serve.WithCacheLimit(*cachelimit))
	// Request contexts derive from baseCtx so shutdown can actually cancel
	// in-flight simulations (http.Server.Shutdown alone only waits for
	// connections to go idle — a long sweep would burn CPU until the
	// deadline and then be cut off mid-response).
	baseCtx, cancelRequests := context.WithCancel(context.Background())
	defer cancelRequests()
	httpSrv := &http.Server{
		Addr:        *addr,
		Handler:     logRequests(srv),
		BaseContext: func(net.Listener) context.Context { return baseCtx },
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on http://%s (workers=%d, cachelimit=%d)", *addr, srv.Workers(), *cachelimit)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Print("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// Quick requests get a grace period to finish cleanly; whatever is
		// still simulating after it is cancelled through its own context.
		grace := time.AfterFunc(2*time.Second, cancelRequests)
		defer grace.Stop()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}
}

// statusWriter records the response status for the request log, forwarding
// Flush so streamed sweeps keep flushing per cell.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		log.Printf("%s %s %d %s", r.Method, r.URL.Path, status, time.Since(start).Round(time.Millisecond))
	})
}
