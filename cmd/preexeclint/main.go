// Command preexeclint runs the repo's custom analyzer suite (internal/lint)
// over the module: determinism, ctxloop, lockscope, errwrap, and configzero.
// It is the static half of the invariant enforcement whose dynamic half is
// the golden/race/fuzz test layer, and runs in CI alongside go vet.
//
// Usage:
//
//	go run ./cmd/preexeclint ./...          # analyze the whole module
//	go run ./cmd/preexeclint -list          # describe the analyzers
//
// Findings print as file:line:col: message (analyzer); the exit status is 1
// if any finding survives suppression filtering. A finding is suppressed by
// a //lint:ignore <analyzer> <justification> directive on the same line or
// the line above; the justification is mandatory.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"

	"preexec/internal/lint"
	"preexec/internal/lint/analysis"
	"preexec/internal/lint/load"
)

func main() {
	listOnly := flag.Bool("list", false, "describe the analyzers and exit")
	flag.Parse()

	if *listOnly {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, fset, err := load.Module(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "preexeclint:", err)
		os.Exit(2)
	}

	total := 0
	for _, pkg := range pkgs {
		var diags []analysis.Diagnostic
		sink := func(d analysis.Diagnostic) { diags = append(diags, d) }
		for _, a := range lint.Analyzers() {
			files := pkg.Files
			if a == lint.Determinism {
				scoped, ok := deterministicFiles(fset, pkg)
				if !ok {
					continue
				}
				files = scoped
			}
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report:    sink,
			}
			if _, err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "preexeclint: %s on %s: %v\n", a.Name, pkg.Path, err)
				os.Exit(2)
			}
		}
		sups := lint.Suppressions(fset, pkg.Files)
		for _, d := range lint.Filter(fset, sups, diags) {
			pos := fset.Position(d.Pos)
			fmt.Printf("%s: %s (%s)\n", pos, d.Message, d.Category)
			total++
		}
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "preexeclint: %d finding(s)\n", total)
		os.Exit(1)
	}
}

// deterministicFiles returns the subset of pkg's files the determinism
// analyzer applies to, per lint.DeterministicScope, and whether the package
// is in scope at all. A nil file list in the scope means the whole package.
func deterministicFiles(fset *token.FileSet, pkg *load.Package) ([]*ast.File, bool) {
	names, ok := lint.DeterministicScope[pkg.Path]
	if !ok {
		return nil, false
	}
	if names == nil {
		return pkg.Files, true
	}
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	var out []*ast.File
	for _, f := range pkg.Files {
		if want[filepath.Base(fset.Position(f.Pos()).Filename)] {
			out = append(out, f)
		}
	}
	return out, len(out) > 0
}
