// Command preexeclint runs the repo's custom analyzer suite (internal/lint)
// over the module: the per-package analyzers (determinism, ctxloop,
// lockscope, errwrap, configzero) and the whole-program analyzers (detflow,
// goroutine, allocbudget) built on the internal/lint/callgraph engine. It is
// the static half of the invariant enforcement whose dynamic half is the
// golden/race/fuzz test layer, and runs in CI alongside go vet.
//
// Usage:
//
//	go run ./cmd/preexeclint ./...                # analyze the whole module
//	go run ./cmd/preexeclint -json ./...          # machine-readable findings
//	go run ./cmd/preexeclint -list                # describe the analyzers
//	go run ./cmd/preexeclint -update-allocbudget  # regenerate the timing
//	                                              # allocation budget
//
// Findings print as file:line:col: message (analyzer) — the format the
// repo's GitHub Actions problem matcher annotates PR diffs with — or, with
// -json, as a JSON array of objects {file, line, col, message, analyzer}.
// The exit status is 1 if any finding survives suppression filtering. A
// finding is suppressed by a //lint:ignore <analyzer> <justification>
// directive on the same line or the line above; the justification is
// mandatory, and one directive can cover several analyzers
// (//lint:ignore a,b reason).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"

	"preexec/internal/lint"
	"preexec/internal/lint/analysis"
	"preexec/internal/lint/load"
)

func main() {
	listOnly := flag.Bool("list", false, "describe the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON instead of text")
	updateBudget := flag.Bool("update-allocbudget", false,
		"regenerate the recorded escapes in "+lint.AllocBudgetPath+" and exit")
	flag.Parse()

	if *listOnly {
		for _, a := range lint.Analyzers() {
			kind := "package"
			if a.RunModule != nil {
				kind = "module "
			}
			fmt.Printf("%-12s [%s] %s\n", a.Name, kind, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if *updateBudget {
		patterns = []string{"./internal/timing"}
	}

	pkgs, fset, err := load.Module(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "preexeclint:", err)
		os.Exit(2)
	}
	units := make([]*analysis.PackageUnit, len(pkgs))
	for i, p := range pkgs {
		units[i] = &analysis.PackageUnit{Path: p.Path, Dir: p.Dir, Files: p.Files, Pkg: p.Types, Info: p.Info}
	}

	if *updateBudget {
		if err := regenerateBudget(fset, units); err != nil {
			fmt.Fprintln(os.Stderr, "preexeclint:", err)
			os.Exit(2)
		}
		fmt.Println("preexeclint: regenerated", lint.AllocBudgetPath)
		return
	}

	var (
		diags []analysis.Diagnostic
		sups  []*lint.Suppression
	)
	sink := func(d analysis.Diagnostic) { diags = append(diags, d) }

	// Per-package analyzers.
	for i, pkg := range pkgs {
		for _, a := range lint.Analyzers() {
			if a.Run == nil {
				continue
			}
			files := pkg.Files
			if a == lint.Determinism {
				scoped, ok := deterministicFiles(fset, pkg)
				if !ok {
					continue
				}
				files = scoped
			}
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report:    sink,
			}
			if _, err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "preexeclint: %s on %s: %v\n", a.Name, pkg.Path, err)
				os.Exit(2)
			}
		}
		sups = append(sups, lint.Suppressions(fset, units[i].Files)...)
	}

	// Whole-program analyzers, sharing one artifact cache (the call graph is
	// built once).
	shared := analysis.NewShared()
	for _, a := range lint.Analyzers() {
		if a.RunModule == nil {
			continue
		}
		mp := (&analysis.ModulePass{
			Analyzer: a,
			Fset:     fset,
			Packages: units,
			Report:   sink,
		}).WithShared(shared)
		if _, err := a.RunModule(mp); err != nil {
			fmt.Fprintf(os.Stderr, "preexeclint: %s: %v\n", a.Name, err)
			os.Exit(2)
		}
	}

	surviving := lint.Filter(fset, sups, diags)
	if *jsonOut {
		writeJSON(fset, surviving)
	} else {
		for _, d := range surviving {
			fmt.Printf("%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Category)
		}
	}
	if len(surviving) > 0 {
		fmt.Fprintf(os.Stderr, "preexeclint: %d finding(s)\n", len(surviving))
		os.Exit(1)
	}
}

// jsonDiagnostic is the -json output shape, one object per finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	Analyzer string `json:"analyzer"`
}

func writeJSON(fset *token.FileSet, diags []analysis.Diagnostic) {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		out = append(out, jsonDiagnostic{
			File:     pos.Filename,
			Line:     pos.Line,
			Col:      pos.Column,
			Message:  d.Message,
			Analyzer: d.Category,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "preexeclint:", err)
		os.Exit(2)
	}
}

// regenerateBudget recomputes the allocation budget's recorded escapes from
// a fresh escape-analysis run, preserving the hot-function list.
func regenerateBudget(fset *token.FileSet, units []*analysis.PackageUnit) error {
	var unit *analysis.PackageUnit
	for _, u := range units {
		if u.Path == "preexec/internal/timing" {
			unit = u
			break
		}
	}
	if unit == nil {
		return fmt.Errorf("-update-allocbudget: preexec/internal/timing not loaded")
	}
	root, err := lint.ModuleRoot(unit.Dir)
	if err != nil {
		return err
	}
	path := filepath.Join(root, lint.AllocBudgetPath)
	budget, err := lint.LoadBudget(path)
	if err != nil {
		return fmt.Errorf("loading %s: %v (the hot-function list must exist; only recorded escapes are regenerated)", path, err)
	}
	escapes, err := lint.CollectEscapes(unit.Dir, fset, unit.Files)
	if err != nil {
		return err
	}
	return lint.UpdateBudget(path, budget, escapes)
}

// deterministicFiles returns the subset of pkg's files the determinism
// analyzer applies to, per lint.DeterministicScope, and whether the package
// is in scope at all. A nil file list in the scope means the whole package.
func deterministicFiles(fset *token.FileSet, pkg *load.Package) ([]*ast.File, bool) {
	names, ok := lint.DeterministicScope[pkg.Path]
	if !ok {
		return nil, false
	}
	if names == nil {
		return pkg.Files, true
	}
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	var out []*ast.File
	for _, f := range pkg.Files {
		if want[filepath.Base(fset.Position(f.Pos()).Filename)] {
			out = append(out, f)
		}
	}
	return out, len(out) > 0
}
