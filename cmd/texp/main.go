// Command texp regenerates the paper's tables and figures on the synthetic
// benchmark suite.
//
// Usage:
//
//	texp -exp table1|table2|fig4|fig5|fig6|fig7|fig8|width|all \
//	     [-bench name,name,...] [-scale N] [-warm N] [-measure N]
//
// Each experiment prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"preexec/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table1 table2 fig4 fig5 fig6 fig7 fig8 width ablate all")
		bench   = flag.String("bench", "", "comma-separated benchmark subset (default: all ten)")
		scale   = flag.Int("scale", 1, "workload scale multiplier")
		warm    = flag.Int64("warm", 30_000, "warm-up instructions")
		measure = flag.Int64("measure", 120_000, "measured instructions")
	)
	flag.Parse()

	opts := experiments.Options{Scale: *scale, Warm: *warm, Measure: *measure}
	if *bench != "" {
		opts.Benchmarks = strings.Split(*bench, ",")
	}
	if err := run(*exp, opts); err != nil {
		fmt.Fprintln(os.Stderr, "texp:", err)
		os.Exit(1)
	}
}

func run(exp string, opts experiments.Options) error {
	type figFn func(experiments.Options) ([]experiments.FigRow, error)
	figures := []struct {
		name  string
		title string
		fn    figFn
	}{
		{"fig4", "Figure 4: combined impact of slicing scope and p-thread length", experiments.Figure4},
		{"fig5", "Figure 5: impact of p-thread optimization and merging", experiments.Figure5},
		{"fig6", "Figure 6: impact of p-thread selection granularity", experiments.Figure6},
		{"fig7", "Figure 7: impact of p-thread selection input data-set", experiments.Figure7},
		{"fig8", "Figure 8: response to variations in memory latency", experiments.Figure8},
		{"width", "Width: response to variations in processor width (§4.5)", experiments.Width},
		{"ablate", "Ablation: this reproduction's model refinements (DESIGN.md)", experiments.Ablation},
	}

	ran := false
	if exp == "table1" || exp == "all" {
		ran = true
		rows, err := experiments.Table1(opts)
		if err != nil {
			return err
		}
		fmt.Println("Table 1: benchmark characterization")
		fmt.Println(experiments.FormatTable1(rows))
	}
	if exp == "table2" || exp == "all" {
		ran = true
		rows, err := experiments.Table2(opts)
		if err != nil {
			return err
		}
		fmt.Println("Table 2: basic results and performance model validation")
		fmt.Println(experiments.FormatTable2(rows))
	}
	for _, f := range figures {
		if exp != f.name && exp != "all" {
			continue
		}
		ran = true
		rows, err := f.fn(opts)
		if err != nil {
			return err
		}
		fmt.Println(f.title)
		fmt.Println(experiments.FormatFigRows(rows))
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
