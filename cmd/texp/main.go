// Command texp regenerates the paper's tables and figures on the synthetic
// benchmark suite.
//
// Usage:
//
//	texp -exp table1|table2|fig4|fig5|fig6|fig7|fig8|width|ablate|suite|all \
//	     [-bench name,name,...] [-scale N] [-warm N] [-measure N] \
//	     [-workers N] [-json] [-progress]
//
// Each experiment prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the paper-vs-measured comparison. The suite experiment
// emits the full public preexec.Report per benchmark. Cells are evaluated
// concurrently across -workers goroutines (default: all cores) with
// deterministic row ordering; -json switches to machine-readable output and
// Ctrl-C cancels mid-simulation.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"preexec"
	"preexec/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table1 table2 fig4 fig5 fig6 fig7 fig8 width ablate suite all")
		bench    = flag.String("bench", "", "comma-separated benchmark subset (default: all ten)")
		scale    = flag.Int("scale", 1, "workload scale multiplier")
		warm     = flag.Int64("warm", 30_000, "warm-up instructions")
		measure  = flag.Int64("measure", 120_000, "measured instructions")
		workers  = flag.Int("workers", 0, "concurrent evaluations (0 = all cores)")
		jsonOut  = flag.Bool("json", false, "emit machine-readable JSON instead of tables")
		progress = flag.Bool("progress", false, "stream per-cell completion to stderr")
		cacheArg = flag.String("cache", "on", "stage memoization for the figure sweeps: on or off")
	)
	flag.Parse()
	if *cacheArg != "on" && *cacheArg != "off" {
		fmt.Fprintf(os.Stderr, "texp: -cache=%q, want on or off\n", *cacheArg)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := experiments.Options{Scale: *scale, Warm: *warm, Measure: *measure, Workers: *workers, NoCache: *cacheArg == "off"}
	if *bench != "" {
		opts.Benchmarks = strings.Split(*bench, ",")
	}
	if *progress {
		opts.Progress = func(ev preexec.SuiteEvent) {
			status := "ok"
			if ev.Err != nil {
				status = ev.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "texp: [%d/%d] %s: %s\n", ev.Done, ev.Total, ev.Name, status)
		}
	}
	if err := run(ctx, *exp, opts, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "texp:", err)
		os.Exit(1)
	}
}

// emit prints one experiment's results: an aligned table normally, a JSON
// document {"experiment": name, "rows": rows} with -json.
func emit(name string, rows any, table string, jsonOut bool) error {
	if !jsonOut {
		fmt.Println(table)
		return nil
	}
	enc := json.NewEncoder(os.Stdout)
	return enc.Encode(struct {
		Experiment string `json:"experiment"`
		Rows       any    `json:"rows"`
	}{name, rows})
}

func run(ctx context.Context, exp string, opts experiments.Options, jsonOut bool) error {
	type figFn func(context.Context, experiments.Options) ([]experiments.FigRow, error)
	figures := []struct {
		name  string
		title string
		fn    figFn
	}{
		{"fig4", "Figure 4: combined impact of slicing scope and p-thread length", experiments.Figure4},
		{"fig5", "Figure 5: impact of p-thread optimization and merging", experiments.Figure5},
		{"fig6", "Figure 6: impact of p-thread selection granularity", experiments.Figure6},
		{"fig7", "Figure 7: impact of p-thread selection input data-set", experiments.Figure7},
		{"fig8", "Figure 8: response to variations in memory latency", experiments.Figure8},
		{"width", "Width: response to variations in processor width (§4.5)", experiments.Width},
		{"ablate", "Ablation: this reproduction's model refinements (DESIGN.md)", experiments.Ablation},
	}

	ran := false
	if exp == "table1" || exp == "all" {
		ran = true
		rows, err := experiments.Table1(ctx, opts)
		if err != nil {
			return err
		}
		if !jsonOut {
			fmt.Println("Table 1: benchmark characterization")
		}
		if err := emit("table1", rows, experiments.FormatTable1(rows), jsonOut); err != nil {
			return err
		}
	}
	if exp == "table2" || exp == "all" {
		ran = true
		rows, err := experiments.Table2(ctx, opts)
		if err != nil {
			return err
		}
		if !jsonOut {
			fmt.Println("Table 2: basic results and performance model validation")
		}
		if err := emit("table2", rows, experiments.FormatTable2(rows), jsonOut); err != nil {
			return err
		}
	}
	for _, f := range figures {
		if exp != f.name && exp != "all" {
			continue
		}
		ran = true
		rows, err := f.fn(ctx, opts)
		if err != nil {
			return err
		}
		if !jsonOut {
			fmt.Println(f.title)
		}
		if err := emit(f.name, rows, experiments.FormatFigRows(rows), jsonOut); err != nil {
			return err
		}
	}
	if exp == "suite" {
		ran = true
		reps, err := experiments.SuiteReports(ctx, opts)
		if err != nil {
			return err
		}
		if jsonOut {
			return json.NewEncoder(os.Stdout).Encode(reps)
		}
		for _, rep := range reps {
			fmt.Printf("%-8s base IPC %.3f  pre IPC %.3f  speedup %+6.1f%%  cover %5.1f%% (full %5.1f%%)  pthreads %d\n",
				rep.Program, rep.Base.IPC, rep.Pre.IPC, rep.SpeedupPct(),
				rep.CoveragePct(), rep.FullCoveragePct(), len(rep.PThreads))
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
