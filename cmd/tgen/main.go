// Command tgen expands a parameterized scenario grid into synthetic
// workloads (package synth) and either emits them as a .prx corpus, pipes
// them straight into the memoized sweep engine, or lists them.
//
// Usage:
//
//	tgen [-family list] [-seed list] [-footprint list] [-iters list]
//	     [-clusters list] [-stride list] [-alias list] [-depth list]
//	     [-degree list] [-compute list] [-scatter list]
//	     [-spec grid.json] [file.prx ...]
//	     [-o dir | -sweep] [-warm N] [-measure N] [-workers N]
//	     [-json|-csv] [-cache on|off] [-cachelimit N] [-progress]
//
// The grid is the cross product of every comma-separated axis flag over
// every family; knobs irrelevant to a family are ignored, and the expansion
// is deduplicated by canonical spec name, so
//
//	tgen -family chase,stride -seed 1,2 -footprint 65536 -iters 20000 \
//	     -clusters 0,256 -alias 0,8
//
// yields chase x {seed} x {clusters} plus stride x {seed} x {alias} — not
// the meaningless full product. -spec FILE appends explicit synth.Spec
// values (a JSON array) to the grid, and positional .prx files join the
// corpus as fixed programs.
//
// With -o DIR every generated program is disassembled into DIR/<name>.prx
// (hand-editable, reloadable by tgen and the synth API). With -sweep the
// corpus is evaluated through preexec.Sweep — one base config point sized
// by -warm/-measure — and reported like tsweep (-json, -csv, or a table);
// -cachelimit bounds the stage cache for corpora too large to memoize
// whole. Without either, tgen prints the expanded corpus (one line per
// scenario: name, family, static instructions, data words).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"

	"preexec"
	"preexec/internal/stats"
	"preexec/internal/sweepio"
	"preexec/synth"
)

func main() {
	var (
		families   = flag.String("family", "", "comma-separated pattern families (default: none; required unless -spec or .prx files are given)")
		seeds      = flag.String("seed", "1", "seeds")
		footprints = flag.String("footprint", "65536", "data footprints in 8-byte words (powers of two)")
		iters      = flag.String("iters", "20000", "main-loop iteration counts")
		clusters   = flag.String("clusters", "", "chase: cluster counts (0 = uniform)")
		strides    = flag.String("stride", "", "stride: strides in words")
		aliases    = flag.String("alias", "", "stride: same-set stream counts (0 = one stream)")
		depths     = flag.String("depth", "", "hash: probe-chain lengths; btree: walk-depth caps")
		degrees    = flag.String("degree", "", "graph: adjacency degrees")
		computes   = flag.String("compute", "", "extra ALU work per iteration (all families)")
		scatters   = flag.String("scatter", "", "gather: store back through gathered addresses (true,false)")
		specFile   = flag.String("spec", "", "JSON file holding an array of explicit specs, appended to the grid")

		outDir = flag.String("o", "", "write the corpus as <name>.prx files into this directory")
		sweep  = flag.Bool("sweep", false, "evaluate the corpus through the memoized sweep engine")

		warm       = flag.Int64("warm", 30_000, "sweep: warm-up instructions")
		measure    = flag.Int64("measure", 120_000, "sweep: measured instructions")
		workers    = flag.Int("workers", 0, "sweep: concurrent cell evaluations (0 = all cores)")
		jsonOut    = flag.Bool("json", false, "sweep: emit the full result as JSON")
		csvOut     = flag.Bool("csv", false, "sweep: emit per-cell rows as CSV")
		cacheArg   = flag.String("cache", "on", "sweep: stage memoization, on or off")
		cacheLimit = flag.Int("cachelimit", 0, "sweep: LRU entry bound per cache stage (0 = unlimited)")
		progress   = flag.Bool("progress", false, "sweep: stream per-cell completion to stderr")
	)
	flag.Parse()
	if *jsonOut && *csvOut {
		fatal(errors.New("-json and -csv are mutually exclusive"))
	}
	if *outDir != "" && *sweep {
		fatal(errors.New("-o and -sweep are mutually exclusive (emit the corpus, then sweep it in a second run)"))
	}
	noCache := false
	switch *cacheArg {
	case "on":
	case "off":
		noCache = true
	default:
		fatal(fmt.Errorf("-cache=%q, want on or off", *cacheArg))
	}

	specs, err := expandGrid(axisValues{
		families:   splitList(*families),
		seeds:      splitList(*seeds),
		footprints: splitList(*footprints),
		iters:      splitList(*iters),
		clusters:   splitList(*clusters),
		strides:    splitList(*strides),
		aliases:    splitList(*aliases),
		depths:     splitList(*depths),
		degrees:    splitList(*degrees),
		computes:   splitList(*computes),
		scatters:   splitList(*scatters),
	})
	if err != nil {
		fatal(err)
	}
	if *specFile != "" {
		extra, err := loadSpecs(*specFile)
		if err != nil {
			fatal(err)
		}
		specs = append(specs, extra...)
	}

	// Build the corpus: every spec becomes a workload (validated up front,
	// so a bad grid fails before any generation work), every positional
	// .prx file a fixed program.
	type scenario struct {
		name  string
		bench preexec.SweepBench
	}
	var corpus []scenario
	seen := map[string]bool{}
	for _, s := range specs {
		autoNamed := s.Name == ""
		w, err := s.Workload()
		if err != nil {
			fatal(err)
		}
		if seen[w.Name] {
			if autoNamed {
				continue // grid duplicate (irrelevant-knob collapse)
			}
			fatal(fmt.Errorf("duplicate scenario name %q", w.Name))
		}
		seen[w.Name] = true
		sc := scenario{name: w.Name, bench: preexec.SweepBench{Name: w.Name, Program: w.Build(1)}}
		if *sweep {
			// The test-input build is only consumed by sweep cells; -o and
			// list mode skip the second generation.
			sc.bench.Test = w.BuildTest(1)
		}
		corpus = append(corpus, sc)
	}
	for _, path := range flag.Args() {
		p, err := synth.LoadPRX(path)
		if err != nil {
			fatal(err)
		}
		if seen[p.Name] {
			fatal(fmt.Errorf("%s: duplicate scenario name %q", path, p.Name))
		}
		seen[p.Name] = true
		corpus = append(corpus, scenario{name: p.Name, bench: preexec.SweepBench{
			Name: p.Name, Program: p, Test: p,
		}})
	}
	if len(corpus) == 0 {
		fatal(errors.New("empty corpus: give -family (with grid flags), -spec, or .prx files; see -h"))
	}

	switch {
	case *outDir != "":
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		for _, sc := range corpus {
			path := filepath.Join(*outDir, fileName(sc.name)+".prx")
			if err := os.WriteFile(path, synth.Disassemble(sc.bench.Program), 0o644); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("tgen: wrote %d scenarios to %s\n", len(corpus), *outDir)

	case *sweep:
		benches := make([]preexec.SweepBench, len(corpus))
		for i, sc := range corpus {
			benches[i] = sc.bench
		}
		cfg := preexec.DefaultConfig()
		cfg.Machine.WarmInsts, cfg.Machine.MeasureInsts = *warm, *measure
		sw := &preexec.Sweep{Workers: *workers, NoCache: noCache}
		if *cacheLimit > 0 {
			sw.Cache = preexec.NewStageCache(preexec.WithStageCacheLimit(*cacheLimit))
		}
		if *progress {
			sw.Progress = func(ev preexec.SuiteEvent) {
				status := "ok"
				if ev.Err != nil {
					status = ev.Err.Error()
				}
				fmt.Fprintf(os.Stderr, "tgen: [%d/%d] %s: %s\n", ev.Done, ev.Total, ev.Name, status)
			}
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		res, err := sw.Run(ctx, benches, []preexec.ConfigPoint{{Name: "base", Config: cfg}})
		if res != nil {
			if emitErr := emit(res, *jsonOut, *csvOut); emitErr != nil && err == nil {
				err = emitErr
			}
			if !noCache {
				fmt.Fprintf(os.Stderr, "tgen: cache: %d base runs (+%d shared), %d profiles (+%d shared), %d evicted for %d cells\n",
					res.Cache.BaseRuns, res.Cache.BaseHits, res.Cache.ProfileRuns, res.Cache.ProfileHits,
					res.Cache.Evictions, len(res.Cells))
			}
		}
		if err != nil {
			if res != nil {
				for _, cell := range res.Cells {
					if cell.Err != nil && !errors.Is(cell.Err, preexec.ErrJobNotRun) {
						fmt.Fprintf(os.Stderr, "tgen: %s/%s: %v\n", cell.Bench, cell.Point, cell.Err)
					}
				}
			}
			fatal(err)
		}

	default:
		t := stats.NewTable("scenario", "insts", "data words")
		for _, sc := range corpus {
			t.Row(sc.name, len(sc.bench.Program.Insts), dataWords(sc.bench.Program))
		}
		fmt.Print(t.String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tgen:", err)
	os.Exit(1)
}

func dataWords(p *preexec.Program) int {
	n := 0
	for _, r := range p.Data.Runs() {
		n += len(r.Vals)
	}
	return n
}

// fileName makes a scenario name filesystem-safe.
func fileName(name string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '/', '\\', ':', ' ':
			return '_'
		}
		return r
	}, name)
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

type axisValues struct {
	families, seeds, footprints, iters []string
	clusters, strides, aliases, depths []string
	degrees, computes, scatters        []string
}

// expandGrid crosses every axis over every family. Knob axes default to a
// single zero value (the family default) when unset; Spec normalization
// ignores knobs irrelevant to a family, and the caller deduplicates by
// canonical name.
func expandGrid(ax axisValues) ([]synth.Spec, error) {
	if len(ax.families) == 0 {
		return nil, nil
	}
	specs := []synth.Spec{{}}
	cross := func(name string, vals []string, apply func(s *synth.Spec, raw string) error) error {
		if len(vals) == 0 {
			return nil
		}
		next := make([]synth.Spec, 0, len(specs)*len(vals))
		for _, sp := range specs {
			for _, raw := range vals {
				s := sp
				if err := apply(&s, strings.TrimSpace(raw)); err != nil {
					return fmt.Errorf("-%s %q: %w", name, raw, err)
				}
				next = append(next, s)
			}
		}
		specs = next
		return nil
	}
	intKnob := func(dst func(s *synth.Spec) *int) func(*synth.Spec, string) error {
		return func(s *synth.Spec, raw string) error {
			v, err := strconv.Atoi(raw)
			if err != nil {
				return err
			}
			*dst(s) = v
			return nil
		}
	}
	steps := []struct {
		name  string
		vals  []string
		apply func(*synth.Spec, string) error
	}{
		{"family", ax.families, func(s *synth.Spec, raw string) error { s.Family = raw; return nil }},
		{"seed", ax.seeds, func(s *synth.Spec, raw string) error {
			v, err := strconv.ParseUint(raw, 10, 64)
			s.Seed = v
			return err
		}},
		{"footprint", ax.footprints, intKnob(func(s *synth.Spec) *int { return &s.FootprintWords })},
		{"iters", ax.iters, intKnob(func(s *synth.Spec) *int { return &s.Iters })},
		{"clusters", ax.clusters, intKnob(func(s *synth.Spec) *int { return &s.Clusters })},
		{"stride", ax.strides, intKnob(func(s *synth.Spec) *int { return &s.Stride })},
		{"alias", ax.aliases, intKnob(func(s *synth.Spec) *int { return &s.Alias })},
		{"depth", ax.depths, intKnob(func(s *synth.Spec) *int { return &s.Depth })},
		{"degree", ax.degrees, intKnob(func(s *synth.Spec) *int { return &s.Degree })},
		{"compute", ax.computes, intKnob(func(s *synth.Spec) *int { return &s.Compute })},
		{"scatter", ax.scatters, func(s *synth.Spec, raw string) error {
			v, err := strconv.ParseBool(raw)
			s.Scatter = v
			return err
		}},
	}
	for _, st := range steps {
		if err := cross(st.name, st.vals, st.apply); err != nil {
			return nil, err
		}
	}
	return specs, nil
}

// loadSpecs reads explicit specs from a JSON array file.
func loadSpecs(path string) ([]synth.Spec, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var specs []synth.Spec
	if err := json.Unmarshal(buf, &specs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return specs, nil
}

func emit(res *preexec.SweepResult, jsonOut, csvOut bool) error {
	return sweepio.Emit(os.Stdout, res, sweepio.Options{JSON: jsonOut, CSV: csvOut, BenchHeader: "scenario"})
}
