// Command tselect is the p-thread selection tool of the paper's flow
// (§4.1): it reads a slice-tree file written by tsim -profile, applies the
// selection framework with the given processor and p-thread construction
// parameters, and prints the selected static p-threads with the model's
// predictions. Because the slice-tree file is independent of the pipeline
// parameters, many p-thread sets can be generated from one profile quickly.
//
// Usage:
//
//	tselect -forest forest.json -ipc 1.3 [-width 8] [-memlat 70]
//	        [-maxlen 32] [-opt] [-merge]
package main

import (
	"flag"
	"fmt"
	"os"

	"preexec"
)

func main() {
	var (
		forestPath = flag.String("forest", "", "slice-tree file (from tsim -profile)")
		ipc        = flag.Float64("ipc", 1.0, "unassisted main-thread IPC on the sample")
		width      = flag.Int("width", 8, "processor sequencing width")
		memlat     = flag.Int("memlat", 70, "miss latency to tolerate (cycles)")
		maxlen     = flag.Int("maxlen", 32, "maximum p-thread length (instructions)")
		opt        = flag.Bool("opt", true, "enable p-thread optimization")
		merge      = flag.Bool("merge", true, "enable p-thread merging")
		out        = flag.String("o", "", "write the selected p-threads to this file (for tsim -pthreads)")
	)
	flag.Parse()
	if *forestPath == "" {
		fmt.Fprintln(os.Stderr, "tselect: -forest is required")
		flag.Usage()
		os.Exit(2)
	}
	forest, err := preexec.LoadForest(*forestPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tselect:", err)
		os.Exit(1)
	}
	eng := preexec.New(
		preexec.WithMachine(preexec.MachineConfig{Width: *width, MemLat: *memlat}),
		preexec.WithSelection(preexec.SelectionConfig{
			MaxLen: *maxlen, Optimize: *opt, Merge: *merge,
		}),
	)
	res := eng.SelectForest(forest, *ipc)
	fmt.Printf("sample: %d insts, %d loads, %d L2 misses, %d slice trees\n",
		forest.Insts, forest.Loads, forest.L2Misses, len(forest.Trees))
	fmt.Printf("selected %d static p-thread(s)\n\n", len(res.PThreads))
	for _, pt := range res.PThreads {
		fmt.Println(pt)
	}
	p := res.Pred
	fmt.Printf("predicted: launches=%d insts/p-thread=%.1f misses covered=%d fully=%d ADVagg=%.0f cycles\n",
		p.Launches, p.InstsPerPThread, p.MissesCovered, p.MissesFullCov, p.ADVagg)
	if forest.Insts > 0 {
		fmt.Printf("predicted IPC: %.3f (base %.3f)\n",
			preexec.PredictIPC(p, forest.Insts, *ipc, float64(*width)), *ipc)
	}
	if *out != "" {
		if err := preexec.SavePThreads(*out, res.PThreads); err != nil {
			fmt.Fprintln(os.Stderr, "tselect:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d p-thread(s) to %s\n", len(res.PThreads), *out)
	}
}
