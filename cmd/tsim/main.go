// Command tsim runs the simulators on a benchmark from the synthetic suite.
//
// Profile mode (the paper's functional cache simulator, §4.1) writes the
// slice-tree file consumed by tselect:
//
//	tsim -bench vpr.p -profile forest.json [-scope 1024] [-maxlen 32]
//
// Timing mode (the paper's detailed simulator) runs the base machine or the
// full pre-execution pipeline end to end:
//
//	tsim -bench vpr.p                 # base machine
//	tsim -bench vpr.p -preexec        # profile + select + pre-execute
//	tsim -bench vpr.p -preexec -mode overhead-sequence
package main

import (
	"flag"
	"fmt"
	"os"

	"preexec/internal/core"
	"preexec/internal/pthread"
	"preexec/internal/slice"
	"preexec/internal/timing"
	"preexec/internal/workload"
)

func main() {
	var (
		bench   = flag.String("bench", "", "benchmark name (see -list)")
		list    = flag.Bool("list", false, "list benchmarks and exit")
		test    = flag.Bool("test", false, "use the test-input variant")
		scale   = flag.Int("scale", 1, "workload scale multiplier")
		warm    = flag.Int64("warm", 30_000, "warm-up instructions")
		measure = flag.Int64("measure", 120_000, "measured instructions")

		profile = flag.String("profile", "", "write a slice-tree file and exit")
		scope   = flag.Int("scope", 1024, "slicing scope (profile mode)")
		maxlen  = flag.Int("maxlen", 32, "max p-thread length")

		preexec = flag.Bool("preexec", false, "run the full pre-execution pipeline")
		ptsPath = flag.String("pthreads", "", "simulate a p-thread file written by tselect -o")
		mode    = flag.String("mode", "pre-exec", "p-thread mode: pre-exec overhead-execute overhead-sequence latency-only")
		width   = flag.Int("width", 8, "processor width")
		memlat  = flag.Int("memlat", 70, "memory latency (cycles)")
	)
	flag.Parse()
	if *list {
		for _, w := range workload.All() {
			fmt.Printf("%-8s %s\n", w.Name, w.Description)
		}
		return
	}
	w, err := workload.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsim:", err)
		os.Exit(2)
	}
	prog := w.Build(*scale)
	if *test {
		prog = w.BuildTest(*scale)
	}

	if *profile != "" {
		forest, err := slice.ProfileWhole(prog, slice.ProfileOptions{
			WarmInsts: *warm, MaxInsts: *measure, Scope: *scope, MaxSlice: *maxlen,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "tsim:", err)
			os.Exit(1)
		}
		if err := forest.Save(*profile); err != nil {
			fmt.Fprintln(os.Stderr, "tsim:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d insts, %d loads, %d L2 misses, %d slice trees -> %s\n",
			prog.Name, forest.Insts, forest.Loads, forest.L2Misses, len(forest.Trees), *profile)
		return
	}

	cfg := core.DefaultConfig()
	cfg.WarmInsts, cfg.MeasureInsts = *warm, *measure
	cfg.Scope, cfg.MaxLen = *scope, *maxlen
	cfg.Width, cfg.MemLat = *width, *memlat

	if *ptsPath != "" {
		pts, err := pthread.Load(*ptsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tsim:", err)
			os.Exit(1)
		}
		st, err := core.RunMode(prog, pts, cfg, parseMode(*mode))
		if err != nil {
			fmt.Fprintln(os.Stderr, "tsim:", err)
			os.Exit(1)
		}
		printStats(fmt.Sprintf("%s (%d p-threads from %s)", prog.Name, len(pts), *ptsPath), st)
		return
	}

	if !*preexec {
		st, err := core.RunMode(prog, nil, cfg, timing.ModeBase)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tsim:", err)
			os.Exit(1)
		}
		printStats(prog.Name+" (base)", st)
		return
	}

	rep, err := core.Evaluate(prog, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsim:", err)
		os.Exit(1)
	}
	printStats(prog.Name+" (base)", rep.Base)
	if m := parseMode(*mode); m != timing.ModeNormal {
		st, err := core.RunMode(prog, rep.Selection.PThreads, cfg, m)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tsim:", err)
			os.Exit(1)
		}
		printStats(fmt.Sprintf("%s (%s)", prog.Name, m), st)
		return
	}
	printStats(prog.Name+" (pre-exec)", rep.Pre)
	fmt.Printf("p-threads: %d selected, coverage %.1f%% (full %.1f%%), speedup %+.1f%%, predicted IPC %.3f\n",
		len(rep.Selection.PThreads), rep.CoveragePct(), rep.FullCoveragePct(), rep.SpeedupPct(), rep.PredIPC)
}

func parseMode(s string) timing.Mode {
	switch s {
	case "overhead-execute":
		return timing.ModeOverheadExecute
	case "overhead-sequence":
		return timing.ModeOverheadSequence
	case "latency-only":
		return timing.ModeLatencyOnly
	default:
		return timing.ModeNormal
	}
}

func printStats(title string, st timing.Stats) {
	fmt.Printf("%s: IPC %.3f (%d insts, %d cycles), loads %d, L2 misses %d, covered %d (full %d), launches %d (dropped %d), p-thread insts %d, mispredicts %d\n",
		title, st.IPC, st.Retired, st.Cycles, st.Loads, st.L2Misses,
		st.MissesCovered, st.MissesFullCovered, st.Launches, st.Drops, st.PtInsts, st.BrMispred)
}
