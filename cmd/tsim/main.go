// Command tsim runs the simulators on a benchmark from the synthetic suite.
//
// Profile mode (the paper's functional cache simulator, §4.1) writes the
// slice-tree file consumed by tselect:
//
//	tsim -bench vpr.p -profile forest.json [-scope 1024] [-maxlen 32]
//
// Timing mode (the paper's detailed simulator) runs the base machine or the
// full pre-execution pipeline end to end:
//
//	tsim -bench vpr.p                 # base machine
//	tsim -bench vpr.p -preexec        # profile + select + pre-execute
//	tsim -bench vpr.p -preexec -json  # machine-readable preexec.Report
//	tsim -bench vpr.p -preexec -mode overhead-sequence
//
// Ctrl-C cancels a run mid-simulation.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"preexec"
)

func main() {
	var (
		bench   = flag.String("bench", "", "benchmark name (see -list)")
		list    = flag.Bool("list", false, "list benchmarks and exit")
		test    = flag.Bool("test", false, "use the test-input variant")
		scale   = flag.Int("scale", 1, "workload scale multiplier")
		warm    = flag.Int64("warm", 30_000, "warm-up instructions")
		measure = flag.Int64("measure", 120_000, "measured instructions")

		profile = flag.String("profile", "", "write a slice-tree file and exit")
		scope   = flag.Int("scope", 1024, "slicing scope (profile mode)")
		maxlen  = flag.Int("maxlen", 32, "max p-thread length")

		preexecF = flag.Bool("preexec", false, "run the full pre-execution pipeline")
		ptsPath  = flag.String("pthreads", "", "simulate a p-thread file written by tselect -o")
		mode     = flag.String("mode", "pre-exec", "p-thread mode: pre-exec overhead-execute overhead-sequence latency-only")
		width    = flag.Int("width", 8, "processor width")
		memlat   = flag.Int("memlat", 70, "memory latency (cycles)")
		jsonOut  = flag.Bool("json", false, "emit a machine-readable preexec.Report")
	)
	flag.Parse()
	if *list {
		for _, w := range preexec.Workloads() {
			fmt.Printf("%-8s %s\n", w.Name, w.Description)
		}
		return
	}
	w, err := preexec.WorkloadByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsim:", err)
		os.Exit(2)
	}
	prog := w.Build(*scale)
	if *test {
		prog = w.BuildTest(*scale)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	eng := preexec.New(
		preexec.WithMachine(preexec.MachineConfig{
			Width: *width, MemLat: *memlat, WarmInsts: *warm, MeasureInsts: *measure,
		}),
		preexec.WithSelection(func() preexec.SelectionConfig {
			s := preexec.DefaultSelection()
			s.Scope, s.MaxLen = *scope, *maxlen
			return s
		}()),
	)

	if *profile != "" {
		regions, err := eng.Profile(ctx, prog)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tsim:", err)
			os.Exit(1)
		}
		forest := regions[0].Forest
		if err := forest.Save(*profile); err != nil {
			fmt.Fprintln(os.Stderr, "tsim:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d insts, %d loads, %d L2 misses, %d slice trees -> %s\n",
			prog.Name, forest.Insts, forest.Loads, forest.L2Misses, len(forest.Trees), *profile)
		return
	}

	if *ptsPath != "" {
		pts, err := preexec.LoadPThreads(*ptsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tsim:", err)
			os.Exit(1)
		}
		st, err := eng.Simulate(ctx, prog, pts, parseMode(*mode))
		if err != nil {
			fmt.Fprintln(os.Stderr, "tsim:", err)
			os.Exit(1)
		}
		if *jsonOut {
			// The assisted run belongs in Pre; there is no base run in this
			// mode, so Base and the derived percentages stay zero.
			emitJSON(preexec.Report{Program: prog.Name, Config: eng.Config(), Pre: st, PThreads: pts})
			return
		}
		printStats(fmt.Sprintf("%s (%d p-threads from %s)", prog.Name, len(pts), *ptsPath), st)
		return
	}

	if !*preexecF {
		st, err := eng.Simulate(ctx, prog, nil, preexec.ModeBase)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tsim:", err)
			os.Exit(1)
		}
		if *jsonOut {
			emitJSON(preexec.Report{Program: prog.Name, Config: eng.Config(), Base: st, BaseMisses: st.L2Misses})
			return
		}
		printStats(prog.Name+" (base)", st)
		return
	}

	rep, err := eng.Evaluate(ctx, prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsim:", err)
		os.Exit(1)
	}
	if m := parseMode(*mode); m != preexec.ModeNormal {
		st, err := eng.Simulate(ctx, prog, rep.PThreads, m)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tsim:", err)
			os.Exit(1)
		}
		if *jsonOut {
			rep.Pre = st
			emitJSON(rep)
			return
		}
		printStats(prog.Name+" (base)", rep.Base)
		printStats(fmt.Sprintf("%s (%s)", prog.Name, m), st)
		return
	}
	if *jsonOut {
		emitJSON(rep)
		return
	}
	printStats(prog.Name+" (base)", rep.Base)
	printStats(prog.Name+" (pre-exec)", rep.Pre)
	fmt.Printf("p-threads: %d selected, coverage %.1f%% (full %.1f%%), speedup %+.1f%%, predicted IPC %.3f\n",
		len(rep.PThreads), rep.CoveragePct(), rep.FullCoveragePct(), rep.SpeedupPct(), rep.PredIPC)
}

func emitJSON(rep preexec.Report) {
	if err := json.NewEncoder(os.Stdout).Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "tsim:", err)
		os.Exit(1)
	}
}

func parseMode(s string) preexec.Mode {
	switch s {
	case "overhead-execute":
		return preexec.ModeOverheadExecute
	case "overhead-sequence":
		return preexec.ModeOverheadSequence
	case "latency-only":
		return preexec.ModeLatencyOnly
	default:
		return preexec.ModeNormal
	}
}

func printStats(title string, st preexec.Stats) {
	fmt.Printf("%s: IPC %.3f (%d insts, %d cycles), loads %d, L2 misses %d, covered %d (full %d), launches %d (dropped %d), p-thread insts %d, mispredicts %d\n",
		title, st.IPC, st.Retired, st.Cycles, st.Loads, st.L2Misses,
		st.MissesCovered, st.MissesFullCovered, st.Launches, st.Drops, st.PtInsts, st.BrMispred)
}
