// Command tsweep evaluates a (benchmark x configuration) grid through the
// memoized sweep subsystem: cells that differ only in selection or ablation
// knobs share one base timing run and one functional profile per benchmark,
// making Figure 4/5-style selection sweeps ~|grid| times cheaper than
// independent evaluations.
//
// Usage:
//
//	tsweep [-bench name,name,...] [-scale N] [-warm N] [-measure N]
//	       [-scope list] [-maxlen list] [-opt list] [-merge list]
//	       [-region list] [-memlat list] [-selmemlat list]
//	       [-width list] [-selwidth list]
//	       [-workers N] [-json|-csv] [-cache on|off] [-replay on|off]
//	       [-progress] [-trace file.ndjson]
//
// Each grid flag takes a comma-separated value list; the grid is the cross
// product of every flag given (an empty grid evaluates the single "base"
// point). Examples:
//
//	tsweep -bench vpr.p -opt true,false -merge true,false   # Figure 5
//	tsweep -scope 256,512,1024,2048 -maxlen 8,16,32,64      # Figure 4 axes
//	tsweep -memlat 70,140 -selmemlat 70,140                 # Figure 8
//
// -cache=off disables stage memoization (every cell recomputes everything);
// -replay=off forces every selection-dependent run through full simulation
// instead of replaying the memoized base-run trace. Results are bit-for-bit
// identical any way these are set. The cache's run/hit counters are reported
// on stderr.
//
// -trace records the sweep's stage executions as spans — one "sweep" root
// plus one "stage:<name>" span per base run, profile, selection, trace
// recording, replay, and full simulation actually executed (cache hits
// record nothing) — and writes them NDJSON to the given file. Tracing never
// touches stdout: the sweep output is byte-identical with and without it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"preexec"
	"preexec/internal/obs"
	"preexec/internal/sweepio"
)

// axis is one grid dimension: a flag's raw comma-separated values and the
// configuration field they set.
type axis struct {
	name  string
	vals  []string
	apply func(cfg *preexec.Config, raw string) error
}

func intField(dst func(cfg *preexec.Config) *int) func(*preexec.Config, string) error {
	return func(cfg *preexec.Config, raw string) error {
		v, err := strconv.Atoi(raw)
		if err != nil {
			return err
		}
		*dst(cfg) = v
		return nil
	}
}

func int64Field(dst func(cfg *preexec.Config) *int64) func(*preexec.Config, string) error {
	return func(cfg *preexec.Config, raw string) error {
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return err
		}
		*dst(cfg) = v
		return nil
	}
}

func boolField(dst func(cfg *preexec.Config) *bool) func(*preexec.Config, string) error {
	return func(cfg *preexec.Config, raw string) error {
		v, err := strconv.ParseBool(raw)
		if err != nil {
			return err
		}
		*dst(cfg) = v
		return nil
	}
}

func main() {
	var (
		bench     = flag.String("bench", "", "comma-separated benchmark subset (default: all ten)")
		scale     = flag.Int("scale", 1, "workload scale multiplier")
		warm      = flag.Int64("warm", 30_000, "warm-up instructions")
		measure   = flag.Int64("measure", 120_000, "measured instructions")
		workers   = flag.Int("workers", 0, "concurrent cell evaluations (0 = all cores)")
		jsonOut   = flag.Bool("json", false, "emit the full sweep result as JSON")
		csvOut    = flag.Bool("csv", false, "emit per-cell rows as CSV")
		cacheArg  = flag.String("cache", "on", "stage memoization: on or off")
		replayArg = flag.String("replay", "on", "trace-replay fast path: on or off")
		progress  = flag.Bool("progress", false, "stream per-cell completion to stderr")
		traceOut  = flag.String("trace", "", "write stage spans as NDJSON to this file")

		scopes     = flag.String("scope", "", "slicing scopes (comma-separated)")
		maxlens    = flag.String("maxlen", "", "maximum p-thread lengths")
		opts       = flag.String("opt", "", "optimization on/off values (true,false)")
		merges     = flag.String("merge", "", "merging on/off values (true,false)")
		regions    = flag.String("region", "", "per-region selection granularities (instructions; 0 = whole sample)")
		memlats    = flag.String("memlat", "", "simulated memory latencies (cycles)")
		selmemlats = flag.String("selmemlat", "", "selector-assumed memory latencies (cycles)")
		widths     = flag.String("width", "", "simulated machine widths")
		selwidths  = flag.String("selwidth", "", "selector-assumed machine widths")
	)
	flag.Parse()
	if *jsonOut && *csvOut {
		fmt.Fprintln(os.Stderr, "tsweep: -json and -csv are mutually exclusive")
		os.Exit(2)
	}
	noCache := false
	switch *cacheArg {
	case "on":
	case "off":
		noCache = true
	default:
		fmt.Fprintf(os.Stderr, "tsweep: -cache=%q, want on or off\n", *cacheArg)
		os.Exit(2)
	}
	replay := false
	switch *replayArg {
	case "on":
		replay = true
	case "off":
	default:
		fmt.Fprintf(os.Stderr, "tsweep: -replay=%q, want on or off\n", *replayArg)
		os.Exit(2)
	}

	axes := []axis{
		{"scope", splitList(*scopes), intField(func(c *preexec.Config) *int { return &c.Selection.Scope })},
		{"maxlen", splitList(*maxlens), intField(func(c *preexec.Config) *int { return &c.Selection.MaxLen })},
		{"opt", splitList(*opts), boolField(func(c *preexec.Config) *bool { return &c.Selection.Optimize })},
		{"merge", splitList(*merges), boolField(func(c *preexec.Config) *bool { return &c.Selection.Merge })},
		{"region", splitList(*regions), int64Field(func(c *preexec.Config) *int64 { return &c.Selection.RegionInsts })},
		{"memlat", splitList(*memlats), intField(func(c *preexec.Config) *int { return &c.Machine.MemLat })},
		{"selmemlat", splitList(*selmemlats), intField(func(c *preexec.Config) *int { return &c.Selection.MemLat })},
		{"width", splitList(*widths), intField(func(c *preexec.Config) *int { return &c.Machine.Width })},
		{"selwidth", splitList(*selwidths), intField(func(c *preexec.Config) *int { return &c.Selection.Width })},
	}

	// The paper's base flow sized to this run's windows. (The zero Config is
	// not that — Optimize/Merge default off — hence DefaultConfig.)
	base := preexec.DefaultConfig()
	base.Machine.WarmInsts = *warm
	base.Machine.MeasureInsts = *measure
	points, err := gridPoints(base, axes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsweep:", err)
		os.Exit(2)
	}

	var names []string
	if *bench != "" {
		names = strings.Split(*bench, ",")
	}
	benches, err := preexec.SweepBenches(names, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsweep:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	sweep := &preexec.Sweep{Workers: *workers, NoCache: noCache}
	engineOpts := []preexec.Option{preexec.WithReplay(replay)}
	var (
		tracer  *obs.Tracer
		traceID string
		rootEnd func()
	)
	if *traceOut != "" {
		// Span IDs are identity, not randomness; the fixed seed keeps two
		// runs of the same grid producing the same span graph.
		tracer = obs.NewTracer(1, nil)
		traceID = tracer.NewTraceID()
		root := tracer.StartSpan(traceID, "", "sweep")
		rootEnd = root.End
		engineOpts = append(engineOpts, preexec.WithStageObserver(
			&obs.SpanStages{Tracer: tracer, Trace: traceID, Parent: root.SpanID()},
		))
	}
	sweep.Engine = preexec.New(engineOpts...)
	if *progress {
		sweep.Progress = func(ev preexec.SuiteEvent) {
			status := "ok"
			if ev.Err != nil {
				status = ev.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "tsweep: [%d/%d] %s: %s\n", ev.Done, ev.Total, ev.Name, status)
		}
	}
	res, err := sweep.Run(ctx, benches, points)
	if tracer != nil {
		rootEnd()
		if werr := writeTrace(*traceOut, tracer.Collect(traceID)); werr != nil {
			fmt.Fprintln(os.Stderr, "tsweep: -trace:", werr)
			if err == nil {
				err = werr
			}
		}
	}
	if res != nil {
		if emitErr := emit(res, *jsonOut, *csvOut); emitErr != nil && err == nil {
			err = emitErr
		}
		if !noCache {
			fmt.Fprintf(os.Stderr, "tsweep: cache: %d base runs (+%d shared), %d profiles (+%d shared), %d traces (+%d replayed) for %d cells\n",
				res.Cache.BaseRuns, res.Cache.BaseHits, res.Cache.ProfileRuns, res.Cache.ProfileHits,
				res.Cache.TraceRuns, res.Cache.TraceHits, len(res.Cells))
		}
	}
	if err != nil {
		if res != nil {
			// Report only cells that actually failed; cells the cancelled
			// sweep never started are summarized in one line.
			notRun := 0
			for _, cell := range res.Cells {
				switch {
				case cell.Err == nil:
				case errors.Is(cell.Err, preexec.ErrJobNotRun):
					notRun++
				default:
					fmt.Fprintf(os.Stderr, "tsweep: %s/%s: %v\n", cell.Bench, cell.Point, cell.Err)
				}
			}
			if notRun > 0 {
				fmt.Fprintf(os.Stderr, "tsweep: %d cells not run (sweep stopped early)\n", notRun)
			}
		}
		fmt.Fprintln(os.Stderr, "tsweep:", err)
		os.Exit(1)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

// gridPoints builds the cross product of every populated axis over the base
// configuration; no axes means the single "base" point.
func gridPoints(base preexec.Config, axes []axis) ([]preexec.ConfigPoint, error) {
	points := []preexec.ConfigPoint{{Name: "base", Config: base}}
	for _, ax := range axes {
		if len(ax.vals) == 0 {
			continue
		}
		next := make([]preexec.ConfigPoint, 0, len(points)*len(ax.vals))
		for _, pt := range points {
			for _, raw := range ax.vals {
				cfg := pt.Config
				if err := ax.apply(&cfg, raw); err != nil {
					return nil, fmt.Errorf("-%s %q: %w", ax.name, raw, err)
				}
				name := ax.name + "=" + raw
				if pt.Name != "base" {
					name = pt.Name + "," + name
				}
				next = append(next, preexec.ConfigPoint{Name: name, Config: cfg})
			}
		}
		points = next
	}
	return points, nil
}

func emit(res *preexec.SweepResult, jsonOut, csvOut bool) error {
	return sweepio.Emit(os.Stdout, res, sweepio.Options{JSON: jsonOut, CSV: csvOut, Point: true})
}

// writeTrace dumps the recorded spans NDJSON to path.
func writeTrace(path string, spans []obs.Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteNDJSON(f, spans); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
