package preexec

import (
	"preexec/internal/core"
)

// MachineConfig describes the simulated machine and the run sizing shared by
// the timing simulator and the selection model. Zero values select the
// paper's base machine (8-wide, 70-cycle memory) and sampling windows.
type MachineConfig struct {
	// Width is the sequencing (fetch/rename/issue/retire) width.
	Width int `json:"width"`
	// MemLat is the main-memory latency in cycles.
	MemLat int `json:"mem_lat"`
	// WarmInsts is the warm-up window (caches + predictor training only).
	WarmInsts int64 `json:"warm_insts"`
	// MeasureInsts is the measured window.
	MeasureInsts int64 `json:"measure_insts"`
}

// DefaultMachine returns the paper's base machine configuration.
func DefaultMachine() MachineConfig {
	return MachineConfig{Width: 8, MemLat: 70, WarmInsts: 30_000, MeasureInsts: 120_000}
}

// SelectionConfig describes the p-thread construction and selection
// parameters (paper §3-§4.1). Zero values select the paper's defaults
// except the Optimize/Merge switches, which default off in the zero value;
// DefaultSelection turns both on, matching the paper's base flow.
type SelectionConfig struct {
	// Scope is the slicing scope in dynamic instructions.
	Scope int `json:"scope"`
	// MaxLen is the maximum p-thread length in instructions.
	MaxLen int `json:"max_len"`
	// Optimize enables p-thread optimization (§3.3).
	Optimize bool `json:"optimize"`
	// Merge enables p-thread merging (§3.3).
	Merge bool `json:"merge"`
	// RegionInsts, if non-zero, selects independently per dynamic region of
	// this many instructions (§4.4, Figure 6).
	RegionInsts int64 `json:"region_insts,omitempty"`

	// ProfileOn optionally profiles a different program for selection — a
	// test input or a short profiling phase (§4.4, Figure 7). Nil selects on
	// the evaluated program itself.
	ProfileOn *Program `json:"-"`
	// ProfileInsts bounds the selection profile (0 = the measured window).
	ProfileInsts int64 `json:"profile_insts,omitempty"`
	// MemLat and Width let cross-validation experiments lie to the selector
	// about the machine (§4.5); 0 means the simulated values.
	MemLat int `json:"sel_mem_lat,omitempty"`
	Width  int `json:"sel_width,omitempty"`
}

// DefaultSelection returns the paper's base selection parameters: scope
// 1024, length 32, optimization and merging on.
func DefaultSelection() SelectionConfig {
	return SelectionConfig{Scope: 1024, MaxLen: 32, Optimize: true, Merge: true}
}

// AblationConfig holds the reproduction's model-refinement switches (see the
// "ablate" experiment and DESIGN.md). The zero value is the refined model.
type AblationConfig struct {
	// ModelLoadLat overrides the latency the SCDH model charges in-slice
	// loads (0 = the default L2 hit latency; 1 = the paper's raw
	// unit-latency model).
	ModelLoadLat float64 `json:"model_load_lat,omitempty"`
	// NoRSThrottle disables the simulator's p-thread injection throttle.
	NoRSThrottle bool `json:"no_rs_throttle,omitempty"`
}

// Config bundles the three decomposed configuration groups. The zero value
// is NOT the paper's base flow (Optimize/Merge default off); use
// DefaultConfig.
type Config struct {
	Machine   MachineConfig   `json:"machine"`
	Selection SelectionConfig `json:"selection"`
	Ablation  AblationConfig  `json:"ablation"`
}

// DefaultConfig returns the paper's base evaluation configuration.
func DefaultConfig() Config {
	return Config{Machine: DefaultMachine(), Selection: DefaultSelection()}
}

// Normalized returns the configuration with every zero field replaced by the
// paper's base value — the same normalization every pipeline entry point
// applies before running. Two configurations that normalize equal perform
// identical stage work, so normalized configurations are the cross-process
// identity the distributed sweep coordinator routes cells by: the fields of
// Machine name a base timing run, and (WarmInsts, ProfileInsts, Scope,
// MaxLen, RegionInsts) plus the profiled program name a profile, mirroring
// the StageCache key structure.
func (c Config) Normalized() Config {
	n := c.core().WithDefaults()
	c.Machine = MachineConfig{
		Width:        n.Width,
		MemLat:       n.MemLat,
		WarmInsts:    n.WarmInsts,
		MeasureInsts: n.MeasureInsts,
	}
	c.Selection.Scope = n.Scope
	c.Selection.MaxLen = n.MaxLen
	c.Selection.ProfileInsts = n.SelectInsts
	c.Selection.MemLat = n.SelectMemLat
	c.Selection.Width = n.SelectWidth
	// Optimize, Merge, RegionInsts, ProfileOn, and the ablation switches
	// have no zero-value rewriting; they pass through unchanged.
	return c
}

// core flattens the decomposed configuration onto the internal/core
// compatibility surface. Zero fields stay zero: core applies the same
// defaults, keeping Engine results bit-for-bit identical to the legacy path.
func (c Config) core() core.Config {
	return core.Config{
		WarmInsts:    c.Machine.WarmInsts,
		MeasureInsts: c.Machine.MeasureInsts,
		Width:        c.Machine.Width,
		MemLat:       c.Machine.MemLat,

		Scope:        c.Selection.Scope,
		MaxLen:       c.Selection.MaxLen,
		Optimize:     c.Selection.Optimize,
		Merge:        c.Selection.Merge,
		RegionInsts:  c.Selection.RegionInsts,
		SelectOn:     c.Selection.ProfileOn,
		SelectInsts:  c.Selection.ProfileInsts,
		SelectMemLat: c.Selection.MemLat,
		SelectWidth:  c.Selection.Width,

		ModelLoadLat: c.Ablation.ModelLoadLat,
		NoRSThrottle: c.Ablation.NoRSThrottle,
	}
}
