package preexec

import (
	"context"

	"preexec/internal/core"
	"preexec/internal/program"
	"preexec/internal/pthread"
	"preexec/internal/selector"
	"preexec/internal/slice"
	"preexec/internal/timing"
)

// Profiler is the functional profiling stage: it runs a program through the
// cache model and builds slice trees for every dynamic L2 load miss.
type Profiler interface {
	Profile(ctx context.Context, p *Program, opts ProfileOptions) ([]ProfileRegion, error)
}

// Selector is the p-thread selection stage: it solves the profiled slice
// trees for the p-thread set with maximal aggregate advantage. regioned
// reports whether per-region selection was requested.
type Selector interface {
	Select(regions []ProfileRegion, opts SelectorOptions, regioned bool) SelectionResult
}

// Simulator is the detailed timing stage: it measures a program — with
// optional p-threads — on the simulated machine.
type Simulator interface {
	Simulate(ctx context.Context, p *Program, pts []*PThread, cfg TimingConfig) (Stats, error)
}

// TraceReplayer is the optional Simulator extension behind the trace-replay
// fast path: RecordTrace captures the base run's front-end event stream once
// (fetch order, effective addresses, predictor verdicts — all
// selection-independent), and Replay scores a p-thread set against the
// recorded stream without re-simulating, bit-identical to Simulate. Engines
// with a stage cache route selection-dependent timing runs through this
// interface automatically when their Simulator implements it (the reference
// simulator does); a Simulator without it simply always simulates in full.
// See WithReplay for the escape hatch.
type TraceReplayer interface {
	RecordTrace(ctx context.Context, p *Program, cfg TimingConfig) (*Trace, error)
	Replay(ctx context.Context, t *Trace, pts []*PThread, cfg TimingConfig) (Stats, error)
}

// The reference stage implementations.
type (
	sliceProfiler   struct{}
	treeSelector    struct{}
	timingSimulator struct{}
)

func (sliceProfiler) Profile(ctx context.Context, p *Program, opts ProfileOptions) ([]ProfileRegion, error) {
	return slice.ProfileContext(ctx, p, opts)
}

func (treeSelector) Select(regions []ProfileRegion, opts SelectorOptions, regioned bool) SelectionResult {
	if regioned {
		return selector.SelectRegions(regions, opts)
	}
	return selector.SelectForest(regions[0].Forest, opts)
}

func (timingSimulator) Simulate(ctx context.Context, p *Program, pts []*PThread, cfg TimingConfig) (Stats, error) {
	return timing.RunContext(ctx, p, pts, cfg)
}

func (timingSimulator) RecordTrace(ctx context.Context, p *Program, cfg TimingConfig) (*Trace, error) {
	return timing.RecordTrace(ctx, p, cfg)
}

func (timingSimulator) Replay(ctx context.Context, t *Trace, pts []*PThread, cfg TimingConfig) (Stats, error) {
	return timing.Replay(ctx, t, pts, cfg)
}

// StageObserver receives a callback around every pipeline stage execution:
// StageStart is called when a stage begins and the func it returns when the
// stage ends. Stages are named "base" (the unassisted timing run),
// "profile", "select", "sim" (a fully simulated p-thread timing run),
// "trace" (a base-run trace recording), and "replay" (a p-thread run scored
// against the recorded trace); bench is the program under evaluation (""
// where no single program applies). With a stage cache attached, only real
// executions are observed — cache hits never reach the observer, so
// observed latencies are true stage costs.
//
// Observers exist for instrumentation (the serve package feeds stage
// latency histograms and span traces from this hook) and must not influence
// results: the engine calls them for their side effects only.
type StageObserver interface {
	StageStart(stage, bench string) func()
}

// ReferenceStages returns the built-in reference stage backends — the ones
// New installs by default. They exist for callers that wrap stages with
// cross-cutting behaviour (the serve package gates the expensive stages
// through a server-wide worker pool) while keeping results bit-identical to
// the defaults.
func ReferenceStages() (Profiler, Selector, Simulator) {
	return sliceProfiler{}, treeSelector{}, timingSimulator{}
}

// Engine runs the pre-execution pipeline. Build one with New; the zero
// Engine is not usable.
type Engine struct {
	cfg       Config
	profiler  Profiler
	selector  Selector
	simulator Simulator
	// cache, if non-nil, memoizes base timing runs, profiles, and base-run
	// traces across engines sharing it (see StageCache and Sweep).
	cache *StageCache
	// replay enables the trace-replay fast path for selection-dependent
	// timing runs (see WithReplay). It only engages with a cache attached:
	// without memoization, recording a trace to replay it once costs as much
	// as simulating directly.
	replay bool
	// observer, if non-nil, is called around every stage execution.
	observer StageObserver
}

// Option customizes an Engine.
type Option func(*Engine)

// WithMachine sets the machine configuration.
func WithMachine(m MachineConfig) Option { return func(e *Engine) { e.cfg.Machine = m } }

// WithSelection sets the selection configuration.
func WithSelection(s SelectionConfig) Option { return func(e *Engine) { e.cfg.Selection = s } }

// WithAblation sets the ablation switches.
func WithAblation(a AblationConfig) Option { return func(e *Engine) { e.cfg.Ablation = a } }

// WithConfig sets all three configuration groups at once.
func WithConfig(c Config) Option { return func(e *Engine) { e.cfg = c } }

// WithProfiler swaps the functional profiling backend.
func WithProfiler(p Profiler) Option { return func(e *Engine) { e.profiler = p } }

// WithSelector swaps the selection backend.
func WithSelector(s Selector) Option { return func(e *Engine) { e.selector = s } }

// WithSimulator swaps the timing-simulation backend.
func WithSimulator(s Simulator) Option { return func(e *Engine) { e.simulator = s } }

// WithStageCache attaches a shared stage cache: base timing runs and
// profiles are memoized in it, so engines sharing one cache — a sweep's
// cells — perform each per-benchmark stage once. Results are bit-for-bit
// identical to uncached evaluation; see StageCache for the key structure.
//
// The cache keys on program and configuration, not on the stage backends:
// every engine sharing a cache must use the same Profiler and Simulator
// backends (as Sweep-built engines do), or cells will silently serve each
// other's backend results.
func WithStageCache(c *StageCache) Option { return func(e *Engine) { e.cache = c } }

// WithReplay toggles the trace-replay fast path (on by default). With a
// stage cache attached, a Simulator implementing TraceReplayer, and a run
// small enough to record (timing.Traceable), selection-dependent timing runs
// are scored against a memoized base-run trace instead of re-simulating —
// bit-identical results, several times faster on selection-only grids.
// WithReplay(false) is the escape hatch forcing every cell through full
// simulation (the -replay=off flag of cmd/tsweep).
func WithReplay(on bool) Option { return func(e *Engine) { e.replay = on } }

// WithStageObserver installs an observer called around every stage
// execution (nil = none, the default — the hot path then pays one nil check
// and nothing else). Sweep-built cell engines inherit their base engine's
// observer, so one observer sees a whole sweep's stage work.
func WithStageObserver(o StageObserver) Option { return func(e *Engine) { e.observer = o } }

// New builds an Engine over the paper's base configuration (DefaultConfig)
// and the reference stage implementations, then applies the options in
// order.
func New(opts ...Option) *Engine {
	e := &Engine{
		cfg:       DefaultConfig(),
		profiler:  sliceProfiler{},
		selector:  treeSelector{},
		simulator: timingSimulator{},
		replay:    true,
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// stages adapts the engine's pluggable backends onto the internal
// orchestration hooks, routing the cacheable stages — profiles and
// nil-p-thread base runs — through the stage cache when one is attached.
func (e *Engine) stages() core.Stages {
	return core.Stages{
		Profile: func(ctx context.Context, p *program.Program, opts slice.ProfileOptions) ([]slice.Region, error) {
			return e.profile(ctx, p, opts)
		},
		Select: func(regions []slice.Region, opts selector.Options, regioned bool) selector.Result {
			if e.observer != nil {
				defer e.observer.StageStart("select", "")()
			}
			return e.selector.Select(regions, opts, regioned)
		},
		Simulate: func(ctx context.Context, p *program.Program, pts []*pthread.PThread, cfg timing.Config) (timing.Stats, error) {
			if pts == nil && cfg.Mode == timing.ModeBase {
				if e.cache != nil {
					return e.cache.baseStats(ctx, p, cfg, func() (Stats, error) {
						return e.simulate(ctx, p, nil, cfg, "base")
					})
				}
				return e.simulate(ctx, p, pts, cfg, "base")
			}
			// Selection-dependent runs replay against the memoized base-run
			// trace when the fast path applies; otherwise they simulate in
			// full. Results are bit-identical either way (the refsim-style
			// equivalence suite in internal/timing and synth pins this).
			if e.replay && e.cache != nil && timing.Traceable(cfg) {
				if tr, ok := e.simulator.(TraceReplayer); ok {
					return e.replaySimulate(ctx, tr, p, pts, cfg)
				}
			}
			return e.simulate(ctx, p, pts, cfg, "sim")
		},
	}
}

// simulate runs the timing backend under the stage observer. The observer
// wraps only actual executions: the cached base path reaches here from
// inside the cache's compute closure, so cache hits are never observed.
func (e *Engine) simulate(ctx context.Context, p *Program, pts []*PThread, cfg TimingConfig, stage string) (Stats, error) {
	if e.observer != nil {
		defer e.observer.StageStart(stage, p.Name)()
	}
	return e.simulator.Simulate(ctx, p, pts, cfg)
}

// replaySimulate is the trace-replay fast path for one selection-dependent
// timing run: fetch (or record) the memoized base-run trace, then replay the
// p-threads against it. The observer sees real work only — a "trace" stage
// inside the cache's compute closure when the recording actually happens,
// and a "replay" stage per replayed run. Errors propagate; there is no
// silent fall back to full simulation, so a replay bug can never hide as a
// performance regression.
func (e *Engine) replaySimulate(ctx context.Context, tr TraceReplayer, p *Program, pts []*PThread, cfg TimingConfig) (Stats, error) {
	t, err := e.cache.traceFor(ctx, p, cfg, func() (*Trace, error) {
		if e.observer != nil {
			defer e.observer.StageStart("trace", p.Name)()
		}
		return tr.RecordTrace(ctx, p, cfg)
	})
	if err != nil {
		return Stats{}, err
	}
	if e.observer != nil {
		defer e.observer.StageStart("replay", p.Name)()
	}
	return tr.Replay(ctx, t, pts, cfg)
}

// profile runs the profiling backend through the stage cache when one is
// attached. The stage observer wraps the compute closure, not the cache
// lookup, so only real profile executions are timed.
func (e *Engine) profile(ctx context.Context, p *Program, opts ProfileOptions) ([]ProfileRegion, error) {
	compute := func() ([]ProfileRegion, error) {
		if e.observer != nil {
			defer e.observer.StageStart("profile", p.Name)()
		}
		return e.profiler.Profile(ctx, p, opts)
	}
	if e.cache != nil {
		return e.cache.regions(ctx, p, opts, compute)
	}
	return compute()
}

// Evaluate runs the full pipeline on one program: base timing run,
// selection, and the pre-execution timing run. Cancelling ctx stops the
// active simulation stage promptly and returns ctx.Err().
func (e *Engine) Evaluate(ctx context.Context, p *Program) (Report, error) {
	rep, err := core.EvaluateContext(ctx, p, e.cfg.core(), e.stages())
	if err != nil {
		return Report{}, err
	}
	return reportFromCore(rep), nil
}

// Profile runs only the functional profiling stage on p with the engine's
// selection parameters, returning the slice-tree regions (a single region
// unless Selection.RegionInsts is set). The forest of the first region is
// what tsim -profile persists for tselect.
//
// With a stage cache attached (WithStageCache) the regions may be shared
// with other engines: treat them as immutable.
func (e *Engine) Profile(ctx context.Context, p *Program) ([]ProfileRegion, error) {
	cfg := e.cfg.core().WithDefaults()
	return e.profile(ctx, p, ProfileOptions{
		WarmInsts:   cfg.WarmInsts,
		MaxInsts:    cfg.SelectInsts,
		Scope:       cfg.Scope,
		MaxSlice:    cfg.MaxLen,
		RegionInsts: cfg.RegionInsts,
	})
}

// Select runs only the selection half of the pipeline: profile (on
// Selection.ProfileOn or the program itself) and slice-tree selection.
// baseIPC is the unassisted main-thread IPC fed to the advantage model; it
// returns the selection and the profile's observed L2 miss count.
func (e *Engine) Select(ctx context.Context, p *Program, baseIPC float64) (SelectionResult, int64, error) {
	return core.SelectContext(ctx, p, baseIPC, e.cfg.core(), e.stages())
}

// SelectForest applies the engine's selection parameters to an
// already-profiled forest (the tselect flow: many p-thread sets from one
// profile).
func (e *Engine) SelectForest(f *Forest, baseIPC float64) SelectionResult {
	return e.selector.Select(
		[]ProfileRegion{{End: f.Insts, Forest: f}},
		e.cfg.core().SelectorOptions(baseIPC),
		false,
	)
}

// Simulate measures a program with the given p-threads under one of the
// simulation modes (ModeBase with nil p-threads is the unassisted machine;
// the overhead/latency modes are the paper's §4.3 validation diagnostics).
func (e *Engine) Simulate(ctx context.Context, p *Program, pts []*PThread, mode Mode) (Stats, error) {
	return core.RunModeContext(ctx, p, pts, e.cfg.core(), mode, e.stages())
}
