package preexec_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"preexec"
	"preexec/internal/core"
)

// testMachine returns the base machine with test-sized windows.
func testMachine() preexec.MachineConfig {
	m := preexec.DefaultMachine()
	m.WarmInsts, m.MeasureInsts = 20_000, 60_000
	return m
}

func buildBench(t testing.TB, name string) *preexec.Program {
	t.Helper()
	w, err := preexec.WorkloadByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w.Build(1)
}

// TestEngineMatchesCoreGolden asserts the public Engine reproduces the
// legacy internal/core pipeline bit-for-bit: every statistic, every
// selected p-thread, every prediction, on two contrasting benchmarks.
func TestEngineMatchesCoreGolden(t *testing.T) {
	for _, name := range []string{"vpr.p", "mcf"} {
		t.Run(name, func(t *testing.T) {
			prog := buildBench(t, name)

			// The legacy config is built from zero values (not DefaultConfig,
			// which pre-bakes SelectInsts at the full 120k window) so both
			// sides derive the selection window from MeasureInsts.
			legacyCfg := core.Config{
				Optimize: true, Merge: true,
				WarmInsts: 20_000, MeasureInsts: 60_000,
			}
			want, err := core.Evaluate(prog, legacyCfg)
			if err != nil {
				t.Fatal(err)
			}

			eng := preexec.New(preexec.WithMachine(testMachine()))
			got, err := eng.Evaluate(t.Context(), prog)
			if err != nil {
				t.Fatal(err)
			}

			if got.Base != want.Base {
				t.Errorf("Base stats diverge:\n got %+v\nwant %+v", got.Base, want.Base)
			}
			if got.Pre != want.Pre {
				t.Errorf("Pre stats diverge:\n got %+v\nwant %+v", got.Pre, want.Pre)
			}
			if got.Pred != want.Selection.Pred {
				t.Errorf("Prediction diverges:\n got %+v\nwant %+v", got.Pred, want.Selection.Pred)
			}
			if !reflect.DeepEqual(got.PThreads, want.Selection.PThreads) {
				t.Errorf("p-threads diverge:\n got %v\nwant %v", got.PThreads, want.Selection.PThreads)
			}
			if got.BaseMisses != want.BaseMisses || got.PredIPC != want.PredIPC {
				t.Errorf("scalars diverge: misses %d/%d predIPC %v/%v",
					got.BaseMisses, want.BaseMisses, got.PredIPC, want.PredIPC)
			}
		})
	}
}

// TestEvaluateDeterministic guards the golden test's premise: two runs of
// the same engine on the same program are identical.
func TestEvaluateDeterministic(t *testing.T) {
	prog := buildBench(t, "vpr.r")
	eng := preexec.New(preexec.WithMachine(testMachine()))
	a, err := eng.Evaluate(t.Context(), prog)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Evaluate(t.Context(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two evaluations of the same program diverge")
	}
}

// TestEvaluateCancelled proves an already-cancelled context fails fast with
// ctx.Err() before any simulation work.
func TestEvaluateCancelled(t *testing.T) {
	prog := buildBench(t, "vpr.p")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := preexec.New(preexec.WithMachine(testMachine()))
	if _, err := eng.Evaluate(ctx, prog); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestEvaluateCancelMidRun proves a cancellation arriving mid-simulation
// returns promptly — the hot loops poll the context every few thousand
// cycles rather than running the evaluation to completion.
func TestEvaluateCancelMidRun(t *testing.T) {
	// A big, slow evaluation: full windows, scaled workload.
	w, err := preexec.WorkloadByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	prog := w.Build(4)
	machine := preexec.DefaultMachine()
	machine.MeasureInsts = 4_000_000
	eng := preexec.New(preexec.WithMachine(machine))

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = eng.Evaluate(ctx, prog)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The full evaluation takes seconds; a prompt cancellation returns in
	// tens of milliseconds. Allow generous slack for loaded CI machines.
	if elapsed > 2*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
}

// TestEvaluateDeadline proves deadline expiry surfaces as DeadlineExceeded.
func TestEvaluateDeadline(t *testing.T) {
	prog := buildBench(t, "mcf")
	machine := preexec.DefaultMachine()
	machine.MeasureInsts = 4_000_000
	eng := preexec.New(preexec.WithMachine(machine))
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	if _, err := eng.Evaluate(ctx, prog); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// countingProfiler wraps the default profiling stage to prove WithProfiler
// swaps the backend in.
type countingProfiler struct {
	inner preexec.Profiler
	calls int
}

func (c *countingProfiler) Profile(ctx context.Context, p *preexec.Program, opts preexec.ProfileOptions) ([]preexec.ProfileRegion, error) {
	c.calls++
	return c.inner.Profile(ctx, p, opts)
}

// defaultProfiler recovers the reference Profiler via a fresh engine.
type defaultProfiler struct{ eng *preexec.Engine }

func (d defaultProfiler) Profile(ctx context.Context, p *preexec.Program, opts preexec.ProfileOptions) ([]preexec.ProfileRegion, error) {
	regions, err := d.eng.Profile(ctx, p)
	_ = opts // the engine re-derives options from its own config
	return regions, err
}

func TestWithProfilerPluggable(t *testing.T) {
	prog := buildBench(t, "vpr.p")
	base := preexec.New(preexec.WithMachine(testMachine()))
	cp := &countingProfiler{inner: defaultProfiler{base}}
	eng := preexec.New(preexec.WithMachine(testMachine()), preexec.WithProfiler(cp))
	rep, err := eng.Evaluate(t.Context(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if cp.calls != 1 {
		t.Errorf("custom profiler called %d times, want 1", cp.calls)
	}
	if len(rep.PThreads) == 0 {
		t.Error("evaluation through the custom profiler selected nothing")
	}
}

// TestEngineProfileAndSelectForest exercises the split tsim/tselect flow on
// the public API: profile once, select from the forest, and check the
// result matches the fused Select path.
func TestEngineProfileAndSelectForest(t *testing.T) {
	prog := buildBench(t, "vpr.p")
	eng := preexec.New(preexec.WithMachine(testMachine()))

	base, err := eng.Simulate(t.Context(), prog, nil, preexec.ModeBase)
	if err != nil {
		t.Fatal(err)
	}
	regions, err := eng.Profile(t.Context(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 1 {
		t.Fatalf("regions = %d, want 1", len(regions))
	}
	fromForest := eng.SelectForest(regions[0].Forest, base.IPC)

	fused, misses, err := eng.Select(t.Context(), prog, base.IPC)
	if err != nil {
		t.Fatal(err)
	}
	if misses != regions[0].Forest.L2Misses {
		t.Errorf("miss counts diverge: %d vs %d", misses, regions[0].Forest.L2Misses)
	}
	if !reflect.DeepEqual(fromForest.Pred, fused.Pred) {
		t.Errorf("forest and fused selection diverge:\n%+v\n%+v", fromForest.Pred, fused.Pred)
	}
	if len(fromForest.PThreads) != len(fused.PThreads) {
		t.Errorf("p-thread counts diverge: %d vs %d", len(fromForest.PThreads), len(fused.PThreads))
	}
}

// TestReportJSONRoundTrip checks the -json output surface: derived metrics
// present, raw fields intact.
func TestReportJSONRoundTrip(t *testing.T) {
	prog := buildBench(t, "vpr.p")
	eng := preexec.New(preexec.WithMachine(testMachine()))
	rep, err := eng.Evaluate(t.Context(), prog)
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"program":"vpr.p"`, `"coverage_pct"`, `"speedup_pct"`, `"pthreads"`, `"prediction"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("JSON report missing %s:\n%s", key, data)
		}
	}
}
