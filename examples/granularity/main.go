// Granularity: the paper's Figure 6 methodology on one benchmark — select
// p-threads for the whole sample versus independently for successively
// finer dynamic regions, and watch specialization trade against lost
// coverage at unselected sub-regions. The four configurations run as one
// memoized sweep: region granularity feeds the profile, so each grain
// profiles once, but all four share a single base timing run.
//
//	go run ./examples/granularity [benchmark]
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"preexec"
)

func main() {
	name := "gcc" // three-phase behaviour: granularity visibly matters
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	w, err := preexec.WorkloadByName(name)
	if err != nil {
		log.Fatal(err)
	}
	benches := []preexec.SweepBench{{Name: name, Program: w.Build(1)}}

	fmt.Printf("selection granularity on %s (paper Figure 6)\n\n", name)
	base := preexec.DefaultConfig()
	grains := []struct {
		label   string
		regions int64
	}{
		{"whole sample", 0},
		{"1/3 regions", base.Machine.MeasureInsts / 3},
		{"1/6 regions", base.Machine.MeasureInsts / 6},
		{"1/12 regions", base.Machine.MeasureInsts / 12},
	}
	points := make([]preexec.ConfigPoint, len(grains))
	for i, g := range grains {
		cfg := base
		cfg.Selection.RegionInsts = g.regions
		points[i] = preexec.ConfigPoint{Name: g.label, Config: cfg}
	}
	res, err := (&preexec.Sweep{}).Run(context.Background(), benches, points)
	if err != nil {
		log.Fatal(err)
	}
	for i, cell := range res.Cells {
		rep := cell.Report
		fmt.Printf("%-13s pts %2d  launches %6d  cover %5.1f%% (full %5.1f%%)  overhead %4.1f%%  speedup %+6.1f%%\n",
			grains[i].label, len(rep.PThreads), rep.Pre.Launches,
			rep.CoveragePct(), rep.FullCoveragePct(), rep.Pre.OverheadFrac()*100, rep.SpeedupPct())
	}
	fmt.Printf("\nstage cache: %d base runs (+%d shared) across %d cells\n",
		res.Cache.BaseRuns, res.Cache.BaseHits, len(res.Cells))
	fmt.Println("\nexpected shape (paper §4.4): finer grains specialize p-threads to the")
	fmt.Println("regions that need them, but coverage is lost wherever a p-thread is")
	fmt.Println("profitable at coarse grain yet rejected in a small sub-region.")
}
