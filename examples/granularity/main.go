// Granularity: the paper's Figure 6 methodology on one benchmark — select
// p-threads for the whole sample versus independently for successively
// finer dynamic regions, and watch specialization trade against lost
// coverage at unselected sub-regions.
//
//	go run ./examples/granularity [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"preexec/internal/core"
	"preexec/internal/workload"
)

func main() {
	name := "gcc" // three-phase behaviour: granularity visibly matters
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	w, err := workload.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	prog := w.Build(1)

	fmt.Printf("selection granularity on %s (paper Figure 6)\n\n", name)
	base := core.DefaultConfig()
	grains := []struct {
		label   string
		regions int64
	}{
		{"whole sample", 0},
		{"1/3 regions", base.MeasureInsts / 3},
		{"1/6 regions", base.MeasureInsts / 6},
		{"1/12 regions", base.MeasureInsts / 12},
	}
	for _, g := range grains {
		cfg := base
		cfg.RegionInsts = g.regions
		rep, err := core.Evaluate(prog, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s pts %2d  launches %6d  cover %5.1f%% (full %5.1f%%)  overhead %4.1f%%  speedup %+6.1f%%\n",
			g.label, len(rep.Selection.PThreads), rep.Pre.Launches,
			rep.CoveragePct(), rep.FullCoveragePct(), rep.Pre.OverheadFrac()*100, rep.SpeedupPct())
	}
	fmt.Println("\nexpected shape (paper §4.4): finer grains specialize p-threads to the")
	fmt.Println("regions that need them, but coverage is lost wherever a p-thread is")
	fmt.Println("profitable at coarse grain yet rejected in a small sub-region.")
}
