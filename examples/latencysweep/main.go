// Latencysweep: the paper's Figure 8 methodology on one benchmark — select
// p-thread sets assuming 70- and 140-cycle memory, then cross-validate each
// set on both machines. Shows the framework adapting p-thread structure to
// the latency it is told to tolerate.
//
//	go run ./examples/latencysweep [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"preexec/internal/core"
	"preexec/internal/workload"
)

func main() {
	name := "vpr.r"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	w, err := workload.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	prog := w.Build(1)

	fmt.Printf("memory-latency cross-validation on %s (paper Figure 8)\n", name)
	fmt.Println("pSIM(tSEL): simulate at SIM cycles with p-threads selected assuming SEL cycles")
	fmt.Println()
	for _, simLat := range []int{140, 70} {
		for _, selLat := range []int{70, 140} {
			cfg := core.DefaultConfig()
			cfg.MemLat = simLat
			cfg.SelectMemLat = selLat
			rep, err := core.Evaluate(prog, cfg)
			if err != nil {
				log.Fatal(err)
			}
			kind := "self "
			if simLat != selLat {
				kind = "cross"
			}
			fmt.Printf("p%d(t%d) %s: base IPC %.3f  pre IPC %.3f  speedup %+6.1f%%  cover %5.1f%% (full %5.1f%%)  len %.1f  pts %d\n",
				simLat, selLat, kind, rep.Base.IPC, rep.Pre.IPC, rep.SpeedupPct(),
				rep.CoveragePct(), rep.FullCoveragePct(), rep.Pre.AvgPtLen, len(rep.Selection.PThreads))
		}
		fmt.Println()
	}
	fmt.Println("expected shape (paper §4.5): self-validation competitive or better;")
	fmt.Println("over-specification (p70(t140)) covers misses more fully but fewer in total;")
	fmt.Println("under-specification occasionally wins via naturally-overlapped misses.")
}
