// Latencysweep: the paper's Figure 8 methodology on one benchmark — select
// p-thread sets assuming 70- and 140-cycle memory, then cross-validate each
// set on both machines. Shows the framework adapting p-thread structure to
// the latency it is told to tolerate. The four pSIM(tSEL) cells run as one
// memoized sweep: the functional profile is latency-independent, so the
// stage cache runs it once and shares it across all four cells, and the two
// simulated latencies share one base timing run each.
//
//	go run ./examples/latencysweep [benchmark]
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"preexec"
)

func main() {
	name := "vpr.r"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	w, err := preexec.WorkloadByName(name)
	if err != nil {
		log.Fatal(err)
	}
	benches := []preexec.SweepBench{{Name: name, Program: w.Build(1)}}

	fmt.Printf("memory-latency cross-validation on %s (paper Figure 8)\n", name)
	fmt.Println("pSIM(tSEL): simulate at SIM cycles with p-threads selected assuming SEL cycles")
	fmt.Println()
	type pair struct{ sim, sel int }
	var (
		pairs  []pair
		points []preexec.ConfigPoint
	)
	for _, simLat := range []int{140, 70} {
		for _, selLat := range []int{70, 140} {
			cfg := preexec.DefaultConfig()
			cfg.Machine.MemLat = simLat
			cfg.Selection.MemLat = selLat
			pairs = append(pairs, pair{simLat, selLat})
			points = append(points, preexec.ConfigPoint{
				Name:   fmt.Sprintf("p%d(t%d)", simLat, selLat),
				Config: cfg,
			})
		}
	}
	res, err := (&preexec.Sweep{}).Run(context.Background(), benches, points)
	if err != nil {
		log.Fatal(err)
	}
	for i, cell := range res.Cells {
		p := pairs[i]
		kind := "self "
		if p.sim != p.sel {
			kind = "cross"
		}
		rep := cell.Report
		fmt.Printf("p%d(t%d) %s: base IPC %.3f  pre IPC %.3f  speedup %+6.1f%%  cover %5.1f%% (full %5.1f%%)  len %.1f  pts %d\n",
			p.sim, p.sel, kind, rep.Base.IPC, rep.Pre.IPC, rep.SpeedupPct(),
			rep.CoveragePct(), rep.FullCoveragePct(), rep.Pre.AvgPtLen, len(rep.PThreads))
		if i == len(res.Cells)/2-1 {
			fmt.Println()
		}
	}
	fmt.Println()
	fmt.Printf("stage cache: %d base runs (+%d shared), %d profiles (+%d shared) for %d cells\n",
		res.Cache.BaseRuns, res.Cache.BaseHits, res.Cache.ProfileRuns, res.Cache.ProfileHits, len(res.Cells))
	fmt.Println()
	fmt.Println("expected shape (paper §4.5): self-validation competitive or better;")
	fmt.Println("over-specification (p70(t140)) covers misses more fully but fewer in total;")
	fmt.Println("under-specification occasionally wins via naturally-overlapped misses.")
}
