// Pharmacy: the paper's §2 running example, reproduced end to end.
//
// First the analytical side: the Figure 3 slice tree with the worked
// example's statistics, every Figure 2 candidate's aggregate-advantage
// calculation, and the two-p-thread solution (F and J) plus their merge.
// Then the empirical side: the Figure 1 loop as a runnable program, profiled
// and pre-executed in simulation.
//
//	go run ./examples/pharmacy
package main

import (
	"context"
	"fmt"
	"log"

	"preexec"
	"preexec/internal/advantage"
	"preexec/internal/pharmacy"
	"preexec/internal/selector"
	"preexec/internal/slice"
)

func main() {
	analytical()
	empirical()
}

func analytical() {
	fmt.Println("=== The worked example (paper §3, Figures 2 and 3) ===")
	ps := pharmacy.PaperTree()
	fmt.Println("slice tree (Figure 3):")
	fmt.Println(ps.Tree.String())

	bw, ipc, lcm, maxLen := pharmacy.PaperParams()
	params := advantage.Params{BWSeq: bw, IPC: ipc, MemLat: lcm, MaxLen: maxLen}
	fmt.Printf("machine: %g-wide, unassisted IPC %g (BWseq-mt %g), miss latency %g\n\n",
		bw, ipc, params.BWSeqMT(), lcm)

	// Walk the left path (the computation through #04) and score all six
	// candidates, Figure 2 style.
	var left []*slice.Node
	ps.Tree.Walk(func(p []*slice.Node) {
		if len(p) > len(left) {
			left = append([]*slice.Node{}, p...)
		}
	})
	fmt.Println("candidate p-threads on the #04 path (Figure 2):")
	for k := 1; k < len(left); k++ {
		s, ok := advantage.ScorePath(left[:k+1], ps.DCtrig, params)
		if !ok {
			continue
		}
		fmt.Printf("  cand %d: trigger #%02d  SIZE=%d  SCDHmt=%g SCDHpt=%g  LT=%g  OH=%.3f  DCtrig=%d DCpt-cm=%d  ADVagg=%g\n",
			k, left[k].PC, s.Size, s.SCDHmt, s.SCDHpt, s.LT, s.OH, s.DCtrig, s.DCptcm, s.ADVagg)
	}

	// Solve the whole tree (both computations) and merge.
	forest := slice.NewForest()
	forest.Trees[9] = ps.Tree
	forest.DCtrig = ps.DCtrig
	forest.Insts = 1300

	res := selector.SelectForest(forest, selector.Options{Params: params})
	fmt.Printf("\ncomplete solution: %d p-threads (the paper's F and J)\n", len(res.PThreads))
	for _, pt := range res.PThreads {
		fmt.Println(pt)
	}
	merged := selector.SelectForest(forest, selector.Options{Params: params, Merge: true})
	fmt.Printf("after merging (§3.3): %d p-thread capturing both computations\n", len(merged.PThreads))
	for _, pt := range merged.PThreads {
		fmt.Println(pt)
	}
}

func empirical() {
	fmt.Println("=== The pharmacy loop, simulated (Figure 1) ===")
	prog := pharmacy.Program_(pharmacy.DefaultConfig())
	fmt.Println(prog.Disassemble())
	sel := preexec.DefaultSelection()
	sel.MaxLen = 8 // the worked example's constraint: p-threads under 8 insts
	eng := preexec.New(preexec.WithSelection(sel))
	rep, err := eng.Evaluate(context.Background(), prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base IPC %.3f, %d L2 misses on load #09\n", rep.Base.IPC, rep.BaseMisses)
	for _, pt := range rep.PThreads {
		fmt.Println(pt)
	}
	fmt.Printf("pre-exec IPC %.3f, coverage %.1f%% (full %.1f%%), speedup %+.1f%%\n",
		rep.Pre.IPC, rep.CoveragePct(), rep.FullCoveragePct(), rep.SpeedupPct())
}
