// Quickstart: the complete pre-execution pipeline on one benchmark, in
// about forty lines — profile the program's L2 misses into slice trees,
// select static p-threads with the aggregate-advantage framework, and
// measure them in the detailed SMT timing simulator, all through the public
// preexec API.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"preexec"
)

func main() {
	// 1. Pick a benchmark from the synthetic suite. vpr.r is the paper's
	//    best case: an index-array graph walk whose miss addresses hang off
	//    the loop induction variable.
	w, err := preexec.WorkloadByName("vpr.r")
	if err != nil {
		log.Fatal(err)
	}
	prog := w.Build(1)

	// 2. Evaluate with the paper's base configuration: 8-wide SMT, 70-cycle
	//    memory, slicing scope 1024, p-threads up to 32 instructions,
	//    optimization and merging on. (New with no options is exactly this;
	//    the With* options change any of it.)
	eng := preexec.New(
		preexec.WithMachine(preexec.DefaultMachine()),
		preexec.WithSelection(preexec.DefaultSelection()),
	)
	rep, err := eng.Evaluate(context.Background(), prog)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Report, paper style: measured behaviour next to the framework's
	//    own predictions.
	fmt.Printf("benchmark      %s — %s\n", w.Name, w.Description)
	fmt.Printf("base IPC       %.3f (%d L2 misses)\n", rep.Base.IPC, rep.BaseMisses)
	fmt.Printf("p-threads      %d static (predicted %d launches, %.1f insts each)\n",
		len(rep.PThreads), rep.Pred.Launches, rep.Pred.InstsPerPThread)
	for _, pt := range rep.PThreads {
		fmt.Printf("\n%s\n", pt)
	}
	fmt.Printf("pre-exec IPC   %.3f (predicted %.3f)\n", rep.Pre.IPC, rep.PredIPC)
	fmt.Printf("miss coverage  %.1f%% (full %.1f%%)\n", rep.CoveragePct(), rep.FullCoveragePct())
	fmt.Printf("speedup        %+.1f%%\n", rep.SpeedupPct())
}
