// Scenario zoo: the workload-synthesis subsystem end to end. The ten
// builtin benchmarks are fixed points in memory-behaviour space; package
// synth turns that axis into an unbounded one. This walkthrough:
//
//  1. registers the curated zoo corpus (synth.Zoo) — every pattern family,
//     knob settings spanning "nothing to tolerate" through "mcf-like
//     hopeless" to "vpr.p-like ideal" — into the workload registry,
//
//  2. evaluates the whole corpus concurrently through the standard suite
//     runner, exactly as if the scenarios were builtins, and
//
//  3. assembles a hand-written .prx program and evaluates that too.
//
//     go run ./examples/scenariozoo
package main

import (
	"context"
	"fmt"
	"log"

	"preexec"
	"preexec/internal/stats"
	"preexec/synth"
)

// A hand-authored PRX scenario: a tiny strided reduction written as text,
// the same format cmd/tgen emits and reloads (-o / positional .prx files).
const handwritten = `
.name zoo.handmade
; 512KB stream, one line-sized stride per access
.data 0x10000
.word 3, 1, 4, 1, 5, 9, 2, 6

	li   r1, 0          ; i
	li   r2, 30000      ; iters
	li   r3, 65536      ; base
	li   r4, 65535      ; index mask (64K words = 512KB: far beyond the L2)
	li   r5, 0          ; acc
loop:	bge  r1, r2, done
	slli r6, r1, 3      ; i * 8 words: a new line every access
	and  r6, r6, r4
	slli r6, r6, 3
	add  r6, r6, r3
	ld   r7, 0(r6)      ; the problem load
	add  r5, r5, r7
	addi r1, r1, 1
	j    loop
done:	halt
`

func main() {
	// 1. Register the zoo. After this, every scenario is a first-class
	//    benchmark: by-name lookup, suites, sweeps, and the cmd tools all
	//    accept it.
	zoo := synth.Zoo()
	if err := synth.Register(zoo...); err != nil {
		log.Fatal(err)
	}
	w, err := synth.WorkloadFromPRX([]byte(handwritten))
	if err != nil {
		log.Fatal(err)
	}
	if err := preexec.RegisterWorkload(w); err != nil {
		log.Fatal(err)
	}
	names := make([]string, 0, len(zoo)+1)
	for _, s := range zoo {
		names = append(names, s.Name)
	}
	names = append(names, w.Name)

	// 2. Evaluate the corpus concurrently with the paper's base pipeline
	//    (shortened windows keep the walkthrough quick).
	cfg := preexec.DefaultConfig()
	cfg.Machine.WarmInsts, cfg.Machine.MeasureInsts = 10_000, 40_000
	eng := preexec.New(preexec.WithConfig(cfg))
	fmt.Printf("evaluating %d scenarios across %d pattern families...\n\n",
		len(names), len(synth.Families()))
	reports, err := preexec.EvaluateSuite(context.Background(), eng, names, 1, 0, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Report, paper style: the coverage/speedup spread is the point —
	//    the knob space moves scenarios across the whole behaviour range.
	t := stats.NewTable("scenario", "base", "pre", "speedup%", "cover%", "pthreads")
	for i, rep := range reports {
		t.Row(names[i], rep.Base.IPC, rep.Pre.IPC, rep.SpeedupPct(), rep.CoveragePct(), len(rep.PThreads))
	}
	fmt.Print(t.String())

	fmt.Println("\npattern families and the paper mechanisms they stress:")
	for _, f := range synth.Families() {
		fmt.Printf("  %-7s %s\n          knobs: %s\n", f.Name, f.Description, f.Knobs)
	}
}
