package preexec

import (
	"context"
	"errors"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFlightGroupCoalesces pins the single-flight contract: callers that
// arrive while a computation is in flight share its result without
// computing, and — unlike the stage cache — nothing is memoized once the
// flight lands.
func TestFlightGroupCoalesces(t *testing.T) {
	ctx := context.Background()
	var g FlightGroup[string, int]
	started := make(chan struct{})
	release := make(chan struct{})

	type outcome struct {
		v      int
		shared bool
		err    error
	}
	results := make(chan outcome, 4)
	go func() {
		v, shared, err := g.Do(ctx, "k", func() (int, error) {
			close(started)
			<-release
			return 42, nil
		})
		results <- outcome{v, shared, err}
	}()
	<-started
	for i := 0; i < 3; i++ {
		go func() {
			v, shared, err := g.Do(ctx, "k", func() (int, error) {
				return 0, errors.New("a coalesced caller computed")
			})
			results <- outcome{v, shared, err}
		}()
	}
	waitFor(t, "3 waiters to block", func() bool { return g.Waiting() == 3 })
	close(release)

	var sharedCount int
	for i := 0; i < 4; i++ {
		out := <-results
		if out.err != nil {
			t.Fatalf("caller %d: %v", i, out.err)
		}
		if out.v != 42 {
			t.Fatalf("caller %d got %d, want 42", i, out.v)
		}
		if out.shared {
			sharedCount++
		}
	}
	if sharedCount != 3 {
		t.Errorf("%d callers coalesced, want 3", sharedCount)
	}
	if flights, shared := g.Stats(); flights != 1 || shared != 3 {
		t.Errorf("stats = %d flights / %d shared, want 1 / 3", flights, shared)
	}

	// No memoization: a request after the flight landed computes afresh.
	v, shared, err := g.Do(ctx, "k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 || shared {
		t.Fatalf("post-flight Do = (%d, %v, %v), want a fresh computation of 7", v, shared, err)
	}
	if flights, _ := g.Stats(); flights != 2 {
		t.Errorf("flights = %d after second computation, want 2", flights)
	}
}

// TestFlightGroupFailureNotShared: a failed flight is returned only to its
// owner; coalesced waiters retry with their own computation instead of
// inheriting the failure (the serve contract that one client's disconnect
// cannot fail another's identical request).
func TestFlightGroupFailureNotShared(t *testing.T) {
	ctx := context.Background()
	var g FlightGroup[string, int]
	started := make(chan struct{})
	release := make(chan struct{})
	boom := errors.New("boom")

	ownerErr := make(chan error, 1)
	go func() {
		_, _, err := g.Do(ctx, "k", func() (int, error) {
			close(started)
			<-release
			return 0, boom
		})
		ownerErr <- err
	}()
	<-started

	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		v, _, err := g.Do(ctx, "k", func() (int, error) { return 99, nil })
		if err != nil || v != 99 {
			t.Errorf("waiter after failed flight: (%d, %v), want (99, nil)", v, err)
		}
	}()
	waitFor(t, "the waiter to block", func() bool { return g.Waiting() == 1 })
	close(release)

	if err := <-ownerErr; !errors.Is(err, boom) {
		t.Fatalf("owner error = %v, want boom", err)
	}
	<-waiterDone
}

// TestFlightGroupPanicUnwedgesKey: a panicking compute must not leak its
// in-flight entry — the panic propagates to the owner (an http.Handler
// recovers it and keeps serving), waiters retry, and the key computes
// normally afterwards.
func TestFlightGroupPanicUnwedgesKey(t *testing.T) {
	ctx := context.Background()
	var g FlightGroup[string, int]
	started := make(chan struct{})
	release := make(chan struct{})

	ownerDone := make(chan struct{})
	go func() {
		defer close(ownerDone)
		defer func() {
			if recover() == nil {
				t.Error("compute's panic did not propagate to the owner")
			}
		}()
		g.Do(ctx, "k", func() (int, error) {
			close(started)
			<-release
			panic("boom")
		})
	}()
	<-started

	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		v, _, err := g.Do(ctx, "k", func() (int, error) { return 99, nil })
		if err != nil || v != 99 {
			t.Errorf("waiter after panicked flight: (%d, %v), want (99, nil)", v, err)
		}
	}()
	waitFor(t, "the waiter to block", func() bool { return g.Waiting() == 1 })
	close(release)
	<-ownerDone
	<-waiterDone

	// The key is not wedged: a fresh request computes immediately.
	v, shared, err := g.Do(ctx, "k", func() (int, error) { return 5, nil })
	if err != nil || v != 5 || shared {
		t.Fatalf("post-panic Do = (%d, %v, %v), want a fresh computation of 5", v, shared, err)
	}
}

// TestFlightGroupComputeHoldsNoLock observes dynamically what the lockscope
// analyzer asserts statically: Do holds the group mutex only around map
// bookkeeping, never across compute. If compute ran under the lock, a Do for
// a different key would block behind it.
func TestFlightGroupComputeHoldsNoLock(t *testing.T) {
	ctx := context.Background()
	var g FlightGroup[string, int]
	started := make(chan struct{})
	release := make(chan struct{})

	ownerDone := make(chan struct{})
	go func() {
		defer close(ownerDone)
		v, _, err := g.Do(ctx, "slow", func() (int, error) {
			close(started)
			<-release
			return 1, nil
		})
		if err != nil || v != 1 {
			t.Errorf("slow flight: (%d, %v), want (1, nil)", v, err)
		}
	}()
	<-started

	fastDone := make(chan struct{})
	go func() {
		defer close(fastDone)
		v, shared, err := g.Do(ctx, "fast", func() (int, error) { return 2, nil })
		if err != nil || v != 2 || shared {
			t.Errorf("fast flight: (%d, %v, %v), want a fresh (2, nil)", v, shared, err)
		}
	}()
	select {
	case <-fastDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Do(fast) blocked behind Do(slow)'s compute: the group lock is held across compute")
	}
	close(release)
	<-ownerDone
}

// TestFlightGroupPanicReleasesLock: the panic-cleanup path re-acquires the
// group mutex to drop the entry; it must release it again even though the
// panic is still unwinding, keeping other keys serviceable and letting
// waiters on the panicked key retry. This is the panic-safety half of the
// blocking-while-locked bug class the lockscope analyzer encodes.
func TestFlightGroupPanicReleasesLock(t *testing.T) {
	ctx := context.Background()
	var g FlightGroup[string, int]
	started := make(chan struct{})
	release := make(chan struct{})

	ownerDone := make(chan struct{})
	go func() {
		defer close(ownerDone)
		defer func() {
			if recover() == nil {
				t.Error("compute's panic did not propagate to the owner")
			}
		}()
		g.Do(ctx, "k", func() (int, error) {
			close(started)
			<-release
			panic("boom")
		})
	}()
	<-started

	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		v, _, err := g.Do(ctx, "k", func() (int, error) { return 99, nil })
		if err != nil || v != 99 {
			t.Errorf("waiter after panicked flight: (%d, %v), want (99, nil)", v, err)
		}
	}()
	waitFor(t, "the waiter to block", func() bool { return g.Waiting() == 1 })
	close(release)
	<-ownerDone

	// The panic cleanup ran: the mutex must be free for unrelated keys
	// immediately, even while the panicked key's waiter is still retrying.
	otherDone := make(chan struct{})
	go func() {
		defer close(otherDone)
		v, _, err := g.Do(ctx, "other", func() (int, error) { return 3, nil })
		if err != nil || v != 3 {
			t.Errorf("other key after panic: (%d, %v), want (3, nil)", v, err)
		}
	}()
	select {
	case <-otherDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Do(other) blocked after a panicked flight: cleanup leaked the group lock")
	}
	<-waiterDone
}

// TestFlightGroupWaiterCancellation: a waiter whose context ends stops
// waiting with its own context error while the flight completes for its
// owner.
func TestFlightGroupWaiterCancellation(t *testing.T) {
	var g FlightGroup[string, int]
	started := make(chan struct{})
	release := make(chan struct{})

	ownerDone := make(chan struct{})
	go func() {
		defer close(ownerDone)
		v, _, err := g.Do(context.Background(), "k", func() (int, error) {
			close(started)
			<-release
			return 42, nil
		})
		if err != nil || v != 42 {
			t.Errorf("owner: (%d, %v), want (42, nil)", v, err)
		}
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		_, _, err := g.Do(ctx, "k", func() (int, error) { return 0, errors.New("computed") })
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled waiter error = %v, want context.Canceled", err)
		}
	}()
	waitFor(t, "the waiter to block", func() bool { return g.Waiting() == 1 })
	cancel()
	<-waiterDone
	close(release)
	<-ownerDone

	if _, shared := g.Stats(); shared != 0 {
		t.Errorf("shared = %d after cancelled wait, want 0", shared)
	}
}
