module preexec

go 1.24
