// Package advantage implements the paper's aggregate-advantage model (§3.1):
// the quantitative score that ranks candidate static p-threads.
//
//	ADVagg = DCpt-cm * LT  -  DCtrig * OH
//	LT     = clamp(SCDHmt - SCDHpt, 0, Lcm)
//	OH     = SIZEpt * BWseq-mt / BWseq^2
//
// where SCDH is the sequencing-constrained dataflow height: the estimated
// cycle at which the problem load's miss is initiated, counted from the
// moment the main thread renames the trigger.
//
// # Model details (calibrated against the paper's Figure 2)
//
//   - The main thread executes the whole slice from the trigger onward,
//     including the trigger itself; a slice instruction at average dynamic
//     distance d from the trigger is sequenced at ceil(d / BWseq-mt), with
//     BWseq-mt = (2*IPC + BWseq)/3 (the paper's 2:1 weighted average).
//   - The p-thread sequences only its body, one instruction per cycle
//     (BWseq-pt = 1): body instruction j is sequenced at cycle j.
//   - Completion(x) = max(seq-constraint, producers' completions) + latency;
//     the miss is initiated when the root load is sequenced and its address
//     operands are complete (no latency added for the miss itself).
//   - Live-in values are ready at cycle 0, except values produced by the
//     trigger instruction itself, which both threads see at the trigger's
//     main-thread completion time (the launch mechanism forwards them).
//
// With the paper's worked-example statistics this reproduces candidates 1,
// 2, 4, 5 and 6 exactly (ADVagg = -10, -20, 40, 177.5, 165; the paper prints
// 177 for 177.5) and picks the same winner. Candidate 3 is the one known
// divergence: the paper credits it 1 cycle of latency tolerance for
// statically skipping #05/#06, while this model scores the dependence-height-
// dominated body at 0; the selection outcome is unaffected. See
// EXPERIMENTS.md.
package advantage

import (
	"math"

	"preexec/internal/isa"
	"preexec/internal/pthread"
	"preexec/internal/slice"
)

// Params are the framework's intuitive microarchitecture knobs (paper §3.1,
// §4.1): everything the model knows about the processor.
type Params struct {
	// BWSeq is the processor's sequencing (fetch/rename) width.
	BWSeq float64
	// IPC is the unassisted main thread's measured IPC on the sample.
	IPC float64
	// MemLat is Lcm, the miss latency to tolerate (cycles).
	MemLat float64
	// MaxLen bounds candidate p-thread length in instructions (post-
	// optimization lengths may be shorter). Zero means 32.
	MaxLen int
	// Optimize applies p-thread optimization before computing SIZEpt and
	// SCDHpt (paper §3.3: the main-thread side always models the original
	// computation).
	Optimize bool
	// LoadLat is the latency, in cycles, the SCDH model charges to loads
	// inside the slice (the problem load itself is excluded — SCDH is its
	// initiation time). The paper's worked example uses unit latency
	// (LoadLat 0 means 1); realistic configurations charge the L2 hit
	// latency so that dependent-miss chains (e.g. pointer chasing, where
	// the p-thread cannot out-run the main thread) stop looking hoistable.
	LoadLat float64
}

// DefaultParams returns the paper's base configuration: 8-wide processor,
// 70-cycle memory, 32-instruction p-threads, in-slice loads charged the
// L2 hit latency.
func DefaultParams(ipc float64) Params {
	return Params{BWSeq: 8, IPC: ipc, MemLat: 70, MaxLen: 32, Optimize: true, LoadLat: 6}
}

// latency returns the dataflow latency the model charges op.
func (p Params) latency(op isa.Op) float64 {
	if op == isa.LD {
		if p.LoadLat > 0 {
			return p.LoadLat
		}
		return 1
	}
	return float64(isa.Latency(op))
}

// BWSeqMT is the main thread's effective sequencing bandwidth: the 2:1
// weighted average of its IPC and the processor width.
func (p Params) BWSeqMT() float64 { return (2*p.IPC + p.BWSeq) / 3 }

// Overhead is OH for a p-thread of the given size: sequencing cycles stolen
// from the main thread, discounted by the main thread's expected utilization.
func (p Params) Overhead(size int) float64 {
	return float64(size) * p.BWSeqMT() / (p.BWSeq * p.BWSeq)
}

func (p Params) maxLen() int {
	if p.MaxLen <= 0 {
		return 32
	}
	return p.MaxLen
}

// Score is the model's full evaluation of one candidate static p-thread.
// The diagnostic fields (DCtrig, DCptcm, LT, OH) are the predictions the
// validation experiments check against simulation (paper §4.3).
type Score struct {
	Size    int     // SIZEpt (after optimization, if enabled)
	SCDHmt  float64 // estimated main-thread miss initiation cycle
	SCDHpt  float64 // estimated p-thread miss initiation cycle
	LT      float64 // latency tolerance per covered miss
	OH      float64 // overhead per launch
	LTagg   float64 // DCptcm * LT
	OHagg   float64 // DCtrig * OH
	ADVagg  float64 // LTagg - OHagg
	DCtrig  int64
	DCptcm  int64
	FullCov bool // the p-thread hoists the miss by >= MemLat

	// Body is the (possibly optimized) p-thread body for this candidate.
	Body []pthread.BodyInst
}

// ScorePath evaluates the candidate p-thread whose trigger is the last node
// of path (path[0] = root load ... path[k] = trigger), using per-PC dynamic
// trigger counts from dctrig. ok is false if the path cannot form a valid
// candidate (k < 1 or body longer than MaxLen).
func ScorePath(path []*slice.Node, dctrig map[int]int64, p Params) (Score, bool) {
	k := len(path) - 1
	if k < 1 || k > p.maxLen() {
		return Score{}, false
	}
	trigger := path[k]
	pt := pthread.FromPath(path)
	if pt == nil {
		return Score{}, false
	}
	body := pt.Body
	if p.Optimize {
		body = pthread.Optimize(body)
	}

	trigComp := p.latency(trigger.Op.Op)
	scdhMT := mainThreadSCDH(path, trigComp, p)
	scdhPT := pthreadSCDH(body, trigComp, p)

	s := Score{
		Size:   len(body),
		SCDHmt: scdhMT,
		SCDHpt: scdhPT,
		DCtrig: dctrig[trigger.PC],
		DCptcm: trigger.DCptcm,
		Body:   body,
	}
	diff := scdhMT - scdhPT
	s.FullCov = diff >= p.MemLat
	s.LT = math.Min(math.Max(diff, 0), p.MemLat)
	s.OH = p.Overhead(s.Size)
	s.LTagg = float64(s.DCptcm) * s.LT
	s.OHagg = float64(s.DCtrig) * s.OH
	s.ADVagg = s.LTagg - s.OHagg
	return s, true
}

// mainThreadSCDH estimates the cycle at which the unassisted main thread
// initiates the root miss, counted from the trigger's rename. path[k] is the
// trigger (distance 0); deeper-than-trigger producers are live-ins at 0.
func mainThreadSCDH(path []*slice.Node, trigComp float64, p Params) float64 {
	k := len(path) - 1
	bw := p.BWSeqMT()
	dTrig := path[k].AvgDist()
	comp := make([]float64, k+1) // indexed by depth
	comp[k] = trigComp
	depReady := func(depth int, pos int) float64 {
		if pos == slice.NoDep || pos > k {
			return 0 // live-in
		}
		return comp[pos]
	}
	for d := k - 1; d >= 0; d-- {
		n := path[d]
		dist := dTrig - n.AvgDist()
		if dist < 0 {
			dist = 0
		}
		sc := math.Ceil(dist / bw)
		ready := math.Max(depReady(d, n.DepPos[0]), depReady(d, n.DepPos[1]))
		ready = math.Max(ready, depReady(d, n.MemDepPos))
		start := math.Max(sc, ready)
		if d == 0 {
			return start // miss initiation: no latency added
		}
		comp[d] = start + p.latency(n.Op.Op)
	}
	return comp[0]
}

// pthreadSCDH estimates the cycle at which the p-thread initiates the root
// miss. Body instruction j is sequenced at cycle j (BWseq-pt = 1).
func pthreadSCDH(body []pthread.BodyInst, trigComp float64, p Params) float64 {
	if len(body) == 0 {
		return 0
	}
	comp := make([]float64, len(body))
	depReady := func(d int) float64 {
		switch {
		case d >= 0:
			return comp[d]
		case d == pthread.DepTrigger:
			return trigComp
		default:
			return 0
		}
	}
	for j, bi := range body {
		sc := float64(j)
		ready := math.Max(depReady(bi.Dep[0]), depReady(bi.Dep[1]))
		ready = math.Max(ready, depReady(bi.MemDep))
		start := math.Max(sc, ready)
		if j == len(body)-1 {
			return start
		}
		comp[j] = start + p.latency(bi.Inst.Op)
	}
	return comp[len(body)-1]
}

// BestOnPath scans every candidate along a root-to-leaf path (prefixes of
// path of length 2..len) and returns the best-scoring candidate's path
// length and score. ok is false if no candidate has positive ADVagg.
func BestOnPath(path []*slice.Node, dctrig map[int]int64, p Params) (bestLen int, best Score, ok bool) {
	for l := 2; l <= len(path); l++ {
		s, valid := ScorePath(path[:l], dctrig, p)
		if !valid {
			continue
		}
		if !ok || s.ADVagg > best.ADVagg {
			best, bestLen, ok = s, l, true
		}
	}
	if !ok || best.ADVagg <= 0 {
		return 0, Score{}, false
	}
	return bestLen, best, true
}
