package advantage

import (
	"math"
	"testing"

	"preexec/internal/isa"
	"preexec/internal/pharmacy"
	"preexec/internal/slice"
)

func paperParams() Params {
	bw, ipc, lcm, maxLen := pharmacy.PaperParams()
	return Params{BWSeq: bw, IPC: ipc, MemLat: lcm, MaxLen: maxLen}
}

// leftPath returns the Figure 3 path A..G (depth 0..6).
func leftPath(t *testing.T) []*slice.Node {
	t.Helper()
	ps := pharmacy.PaperTree()
	path := []*slice.Node{ps.Tree.Root}
	for cur := ps.Tree.Root; len(cur.Children) > 0; {
		next := cur.Children[0] // left-most: the #04 branch
		path = append(path, next)
		cur = next
	}
	if len(path) != 7 {
		t.Fatalf("left path length = %d, want 7", len(path))
	}
	return path
}

func rightPath(t *testing.T) []*slice.Node {
	t.Helper()
	ps := pharmacy.PaperTree()
	a := ps.Tree.Root
	b := a.Children[0]
	c := b.Children[0]
	h := c.Children[1]
	i := h.Children[0]
	j := i.Children[0]
	k := j.Children[0]
	return []*slice.Node{a, b, c, h, i, j, k}
}

func TestBWSeqMT(t *testing.T) {
	p := paperParams()
	if got := p.BWSeqMT(); got != 2 {
		t.Errorf("BWseq-mt = %v, want 2 ((2*1+4)/3)", got)
	}
}

func TestOverheadFormula(t *testing.T) {
	p := paperParams()
	// OH = SIZE * BWmt / BWseq^2 = SIZE * 2/16 = SIZE * 0.125 (paper Fig. 2).
	if got := p.Overhead(1); got != 0.125 {
		t.Errorf("OH(1) = %v, want 0.125", got)
	}
	if got := p.Overhead(5); got != 0.625 {
		t.Errorf("OH(5) = %v, want 0.625", got)
	}
}

// TestWorkedExampleCandidates reproduces the paper's Figure 2 calculation.
// Candidates 1, 2, 4, 5, 6 match the published numbers exactly (the paper
// prints 177 for candidate 5's 177.5). Candidate 3 is the documented model
// divergence: the paper credits it LT=1 for statically skipping #05/#06; our
// dependence-height model scores it 0, so its ADVagg is -22.5 instead of
// +7.5. The selection outcome (candidate 5 wins) is identical.
func TestWorkedExampleCandidates(t *testing.T) {
	ps := pharmacy.PaperTree()
	path := leftPath(t)
	p := paperParams()
	want := []struct {
		name   string
		k      int // trigger depth = path prefix length - 1
		lt     float64
		adv    float64
		dctrig int64
		dcptcm int64
	}{
		{"cand1 (#08)", 1, 0, -10, 80, 40},
		{"cand2 (#07)", 2, 0, -20, 80, 40},
		{"cand3 (#04)", 3, 0, -22.5, 60, 30}, // paper: LT 1, ADV 7.5 (see doc)
		{"cand4 (#11)", 4, 3, 40, 100, 30},
		{"cand5 (#11)", 5, 8, 177.5, 100, 30},
		{"cand6 (#11)", 6, 8, 165, 100, 30},
	}
	for _, w := range want {
		s, ok := ScorePath(path[:w.k+1], ps.DCtrig, p)
		if !ok {
			t.Fatalf("%s: ScorePath failed", w.name)
		}
		if s.LT != w.lt {
			t.Errorf("%s: LT = %v, want %v (SCDHmt %v SCDHpt %v)", w.name, s.LT, w.lt, s.SCDHmt, s.SCDHpt)
		}
		if math.Abs(s.ADVagg-w.adv) > 1e-9 {
			t.Errorf("%s: ADVagg = %v, want %v", w.name, s.ADVagg, w.adv)
		}
		if s.DCtrig != w.dctrig || s.DCptcm != w.dcptcm {
			t.Errorf("%s: DC = %d/%d, want %d/%d", w.name, s.DCtrig, s.DCptcm, w.dctrig, w.dcptcm)
		}
		if s.Size != w.k {
			t.Errorf("%s: size = %d, want %d", w.name, s.Size, w.k)
		}
	}
}

func TestWorkedExampleWinner(t *testing.T) {
	ps := pharmacy.PaperTree()
	p := paperParams()
	l, s, ok := BestOnPath(leftPath(t), ps.DCtrig, p)
	if !ok {
		t.Fatal("no winner on the left path")
	}
	// Winner = candidate 5: trigger at depth 5 (path length 6), size 5.
	if l != 6 || s.Size != 5 {
		t.Errorf("winner path len %d size %d, want 6/5 (the paper's p-thread F)", l, s.Size)
	}
	if math.Abs(s.ADVagg-177.5) > 1e-9 {
		t.Errorf("winner ADVagg = %v, want 177.5", s.ADVagg)
	}
	if !s.FullCov {
		t.Error("winner should fully cover the 8-cycle miss")
	}
}

func TestWorkedExampleRightSide(t *testing.T) {
	// The paper: "the best p-thread along the right side of the tree is
	// p-thread J" (trigger #11 at depth 5, body size 5).
	ps := pharmacy.PaperTree()
	p := paperParams()
	l, s, ok := BestOnPath(rightPath(t), ps.DCtrig, p)
	if !ok {
		t.Fatal("no winner on the right path")
	}
	if l != 6 || s.Size != 5 {
		t.Errorf("right winner path len %d size %d, want 6/5 (p-thread J)", l, s.Size)
	}
	if s.ADVagg <= 0 {
		t.Errorf("p-thread J ADVagg = %v, want positive", s.ADVagg)
	}
	// J tolerates 7 of the 8 cycles in our model (paper: full tolerance);
	// either way it must beat K (depth 6), whose extra unrolling only adds
	// overhead.
	sk, _ := ScorePath(rightPath(t), ps.DCtrig, p)
	if sk.ADVagg >= s.ADVagg {
		t.Errorf("K (%v) should not beat J (%v)", sk.ADVagg, s.ADVagg)
	}
}

func TestFullCoverageSaturation(t *testing.T) {
	// Beyond full coverage, longer p-threads only add overhead: ADVagg must
	// be strictly decreasing from candidate 5 to candidate 6.
	ps := pharmacy.PaperTree()
	p := paperParams()
	path := leftPath(t)
	s5, _ := ScorePath(path[:6], ps.DCtrig, p)
	s6, _ := ScorePath(path[:7], ps.DCtrig, p)
	if s6.LT != s5.LT {
		t.Errorf("LT should saturate at Lcm: %v vs %v", s5.LT, s6.LT)
	}
	if s6.ADVagg >= s5.ADVagg {
		t.Errorf("extra unrolling should cost: %v >= %v", s6.ADVagg, s5.ADVagg)
	}
}

func TestMaxLenConstraint(t *testing.T) {
	ps := pharmacy.PaperTree()
	p := paperParams()
	p.MaxLen = 3
	path := leftPath(t)
	if _, ok := ScorePath(path[:6], ps.DCtrig, p); ok {
		t.Error("candidate longer than MaxLen must be rejected")
	}
	if _, ok := ScorePath(path[:4], ps.DCtrig, p); !ok {
		t.Error("candidate within MaxLen must be accepted")
	}
	// With only unprofitable candidates available, selection must decline.
	if _, _, ok := BestOnPath(path, ps.DCtrig, p); ok {
		t.Error("no candidate of length <= 3 is profitable; BestOnPath must say so")
	}
}

func TestMemLatScalesLatencyTolerance(t *testing.T) {
	// Doubling memory latency leaves candidate 5's hoist (9 cycles) no
	// longer sufficient for full coverage; deeper unrolling must win.
	ps := pharmacy.PaperTree()
	p := paperParams()
	p.MemLat = 16
	path := leftPath(t)
	s5, _ := ScorePath(path[:6], ps.DCtrig, p)
	s6, _ := ScorePath(path[:7], ps.DCtrig, p)
	if s5.FullCov {
		t.Error("candidate 5 cannot fully cover a 16-cycle miss")
	}
	if s6.LT <= s5.LT {
		t.Errorf("deeper unrolling must tolerate more of a longer miss: %v vs %v", s6.LT, s5.LT)
	}
	if s6.ADVagg <= s5.ADVagg {
		t.Errorf("with 16-cycle misses candidate 6 should win: %v vs %v", s6.ADVagg, s5.ADVagg)
	}
}

func TestScorePathRejectsRootOnly(t *testing.T) {
	ps := pharmacy.PaperTree()
	if _, ok := ScorePath([]*slice.Node{ps.Tree.Root}, ps.DCtrig, paperParams()); ok {
		t.Error("a root-only path is not a candidate")
	}
}

func TestOptimizationShortensInduction(t *testing.T) {
	// With optimization on, candidate 6's two #11 copies fold into one,
	// reducing SIZE from 6 to 5 and therefore its overhead.
	ps := pharmacy.PaperTree()
	p := paperParams()
	p.MaxLen = 8
	path := leftPath(t)
	plain, _ := ScorePath(path[:7], ps.DCtrig, p)
	p.Optimize = true
	opt, _ := ScorePath(path[:7], ps.DCtrig, p)
	if opt.Size >= plain.Size {
		t.Errorf("optimized size = %d, want < %d", opt.Size, plain.Size)
	}
	if opt.OH >= plain.OH {
		t.Errorf("optimized OH = %v, want < %v", opt.OH, plain.OH)
	}
	if opt.ADVagg <= plain.ADVagg {
		t.Errorf("optimization should raise ADVagg: %v vs %v", opt.ADVagg, plain.ADVagg)
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams(2.0)
	if p.BWSeq != 8 || p.MemLat != 70 || p.MaxLen != 32 || !p.Optimize {
		t.Errorf("DefaultParams = %+v", p)
	}
	if p.maxLen() != 32 {
		t.Errorf("maxLen() = %d", p.maxLen())
	}
	if (Params{}).maxLen() != 32 {
		t.Error("zero MaxLen should default to 32")
	}
}

func TestWiderProcessorLowersOverhead(t *testing.T) {
	// On a wider processor p-thread sequencing steals proportionally less:
	// OH must shrink as width grows (same IPC).
	narrow := Params{BWSeq: 4, IPC: 1}
	wide := Params{BWSeq: 8, IPC: 1}
	if wide.Overhead(5) >= narrow.Overhead(5) {
		t.Errorf("OH wide %v >= narrow %v", wide.Overhead(5), narrow.Overhead(5))
	}
}

func TestHigherIPCRaisesOverhead(t *testing.T) {
	// A busier main thread suffers more from stolen slots.
	idle := Params{BWSeq: 8, IPC: 0.5}
	busy := Params{BWSeq: 8, IPC: 4}
	if busy.Overhead(5) <= idle.Overhead(5) {
		t.Errorf("OH busy %v <= idle %v", busy.Overhead(5), idle.Overhead(5))
	}
}

func TestScoreBodyIsUsable(t *testing.T) {
	ps := pharmacy.PaperTree()
	path := leftPath(t)
	s, ok := ScorePath(path[:6], ps.DCtrig, paperParams())
	if !ok {
		t.Fatal("ScorePath failed")
	}
	if len(s.Body) != 5 {
		t.Fatalf("body size = %d, want 5", len(s.Body))
	}
	if s.Body[len(s.Body)-1].Inst.Op != isa.LD {
		t.Error("final body instruction must be the problem load")
	}
}
