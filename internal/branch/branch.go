// Package branch implements the front-end branch prediction structures of
// the paper's base processor (§4.1): a hybrid predictor of roughly 6K
// two-bit entries (bimodal + gshare with a chooser) and a 2K-entry BTB.
//
// The timing simulator consults the predictor at fetch; mispredictions stall
// fetch until the branch resolves (plus a redirect penalty), which is the
// mechanism behind the paper's observation that full-coverage
// under-estimation is dominant in benchmarks with high misprediction rates.
package branch

// counter is a 2-bit saturating counter; >= 2 predicts taken.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Config sizes the predictor tables. All sizes must be powers of two.
type Config struct {
	BimodalEntries int
	GshareEntries  int
	ChooserEntries int
	HistoryBits    uint
	BTBEntries     int
}

// DefaultConfig approximates the paper's 6K-entry hybrid + 2K BTB.
func DefaultConfig() Config {
	return Config{
		BimodalEntries: 2048,
		GshareEntries:  2048,
		ChooserEntries: 2048,
		HistoryBits:    10,
		BTBEntries:     2048,
	}
}

// Predictor is a hybrid direction predictor plus BTB.
type Predictor struct {
	cfg     Config
	bimodal []counter
	gshare  []counter
	chooser []counter // >=2 means "use gshare"
	history uint64

	btbTags    []int
	btbTargets []int

	// Statistics.
	Lookups    int64
	Mispredict int64
}

// New builds a predictor. Counters initialize to weakly-not-taken (1),
// chooser to weakly-bimodal (1).
func New(cfg Config) *Predictor {
	p := &Predictor{
		cfg:        cfg,
		bimodal:    make([]counter, cfg.BimodalEntries),
		gshare:     make([]counter, cfg.GshareEntries),
		chooser:    make([]counter, cfg.ChooserEntries),
		btbTags:    make([]int, cfg.BTBEntries),
		btbTargets: make([]int, cfg.BTBEntries),
	}
	for i := range p.bimodal {
		p.bimodal[i] = 1
	}
	for i := range p.gshare {
		p.gshare[i] = 1
	}
	for i := range p.chooser {
		p.chooser[i] = 1
	}
	for i := range p.btbTags {
		p.btbTags[i] = -1
	}
	return p
}

func (p *Predictor) bimodalIdx(pc int) int { return pc & (len(p.bimodal) - 1) }

func (p *Predictor) gshareIdx(pc int) int {
	h := p.history & ((1 << p.cfg.HistoryBits) - 1)
	return (pc ^ int(h)) & (len(p.gshare) - 1)
}

func (p *Predictor) chooserIdx(pc int) int { return pc & (len(p.chooser) - 1) }

// Predict returns the predicted direction for the conditional branch at pc.
func (p *Predictor) Predict(pc int) bool {
	p.Lookups++
	if p.chooser[p.chooserIdx(pc)].taken() {
		return p.gshare[p.gshareIdx(pc)].taken()
	}
	return p.bimodal[p.bimodalIdx(pc)].taken()
}

// Update trains the predictor with the branch's actual outcome. It must be
// called with the same global-history state Predict saw, i.e. callers
// predict and update in program order (the timing model trains at fetch,
// which is optimistic but standard for trace-driven models).
func (p *Predictor) Update(pc int, taken bool) {
	bi, gi, ci := p.bimodalIdx(pc), p.gshareIdx(pc), p.chooserIdx(pc)
	bCorrect := p.bimodal[bi].taken() == taken
	gCorrect := p.gshare[gi].taken() == taken
	// Chooser trains toward whichever component was (solely) correct.
	if gCorrect && !bCorrect {
		p.chooser[ci] = p.chooser[ci].update(true)
	} else if bCorrect && !gCorrect {
		p.chooser[ci] = p.chooser[ci].update(false)
	}
	p.bimodal[bi] = p.bimodal[bi].update(taken)
	p.gshare[gi] = p.gshare[gi].update(taken)
	p.history = (p.history << 1) | boolBit(taken)
}

// PredictAndTrain predicts, trains with the actual outcome, and reports
// whether the prediction was correct. Convenience for the fetch stage.
func (p *Predictor) PredictAndTrain(pc int, actual bool) (predicted, correct bool) {
	predicted = p.Predict(pc)
	correct = predicted == actual
	if !correct {
		p.Mispredict++
	}
	p.Update(pc, actual)
	return predicted, correct
}

// BTBLookup returns the predicted target for pc, or -1 on a BTB miss.
func (p *Predictor) BTBLookup(pc int) int {
	i := pc & (len(p.btbTags) - 1)
	if p.btbTags[i] == pc {
		return p.btbTargets[i]
	}
	return -1
}

// BTBInsert records pc -> target.
func (p *Predictor) BTBInsert(pc, target int) {
	i := pc & (len(p.btbTags) - 1)
	p.btbTags[i] = pc
	p.btbTargets[i] = target
}

// MispredictRate returns mispredictions per lookup.
func (p *Predictor) MispredictRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Mispredict) / float64(p.Lookups)
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
