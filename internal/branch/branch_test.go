package branch

import (
	"math/rand"
	"testing"
)

func TestCounterSaturation(t *testing.T) {
	c := counter(0)
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c != 3 {
		t.Errorf("counter = %d, want saturated at 3", c)
	}
	for i := 0; i < 10; i++ {
		c = c.update(false)
	}
	if c != 0 {
		t.Errorf("counter = %d, want saturated at 0", c)
	}
}

func TestLearnsAlwaysTaken(t *testing.T) {
	p := New(DefaultConfig())
	pc := 100
	for i := 0; i < 8; i++ {
		p.Update(pc, true)
	}
	if !p.Predict(pc) {
		t.Error("predictor failed to learn always-taken branch")
	}
}

func TestLearnsAlwaysNotTaken(t *testing.T) {
	p := New(DefaultConfig())
	pc := 100
	for i := 0; i < 8; i++ {
		p.Update(pc, false)
	}
	if p.Predict(pc) {
		t.Error("predictor failed to learn never-taken branch")
	}
}

func TestLearnsAlternatingViaGshare(t *testing.T) {
	// A strictly alternating branch is hopeless for bimodal but trivial for
	// gshare once the chooser steers toward it. Accuracy over the second
	// half of a training run should be high.
	p := New(DefaultConfig())
	pc := 7
	correct, total := 0, 0
	for i := 0; i < 4000; i++ {
		actual := i%2 == 0
		pred, ok := p.PredictAndTrain(pc, actual)
		_ = pred
		if i >= 2000 {
			total++
			if ok {
				correct++
			}
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.95 {
		t.Errorf("alternating-branch accuracy = %.2f, want >= 0.95", acc)
	}
}

func TestLoopBranchAccuracy(t *testing.T) {
	// A loop back-edge taken 9 of 10 times: bimodal should get ~90%+.
	p := New(DefaultConfig())
	pc := 33
	correct, total := 0, 0
	for i := 0; i < 5000; i++ {
		actual := i%10 != 9
		_, ok := p.PredictAndTrain(pc, actual)
		if i >= 1000 {
			total++
			if ok {
				correct++
			}
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.85 {
		t.Errorf("loop-branch accuracy = %.2f, want >= 0.85", acc)
	}
}

func TestRandomBranchNearChance(t *testing.T) {
	p := New(DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	pc := 5
	correct, total := 0, 0
	for i := 0; i < 20000; i++ {
		actual := rng.Intn(2) == 0
		_, ok := p.PredictAndTrain(pc, actual)
		total++
		if ok {
			correct++
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.40 || acc > 0.60 {
		t.Errorf("random-branch accuracy = %.2f, want ~0.5", acc)
	}
}

func TestBTB(t *testing.T) {
	p := New(DefaultConfig())
	if got := p.BTBLookup(42); got != -1 {
		t.Errorf("empty BTB lookup = %d, want -1", got)
	}
	p.BTBInsert(42, 7)
	if got := p.BTBLookup(42); got != 7 {
		t.Errorf("BTB lookup = %d, want 7", got)
	}
	// Conflicting pc (same index, different tag) must miss.
	conflict := 42 + len(p.btbTags)
	if got := p.BTBLookup(conflict); got != -1 {
		t.Errorf("conflicting BTB lookup = %d, want -1", got)
	}
	p.BTBInsert(conflict, 9)
	if got := p.BTBLookup(42); got != -1 {
		t.Errorf("evicted BTB entry lookup = %d, want -1", got)
	}
}

func TestMispredictRate(t *testing.T) {
	p := New(DefaultConfig())
	if p.MispredictRate() != 0 {
		t.Error("fresh predictor should report rate 0")
	}
	for i := 0; i < 100; i++ {
		p.PredictAndTrain(3, true)
	}
	if r := p.MispredictRate(); r > 0.10 {
		t.Errorf("always-taken mispredict rate = %.2f, want small", r)
	}
}

func TestDistinctBranchesIndependentBimodal(t *testing.T) {
	p := New(DefaultConfig())
	// Train two branches with opposite biases; both should be learned.
	for i := 0; i < 10; i++ {
		p.Update(10, true)
		p.Update(11, false)
	}
	if !p.Predict(10) || p.Predict(11) {
		t.Error("aliasing between distinct branch PCs in bimodal table")
	}
}
