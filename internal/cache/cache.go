// Package cache implements set-associative, LRU, write-back caches with the
// per-line timestamp metadata the paper's coverage accounting needs
// (p-thread request time, main-thread request time, ready time; §4.3
// "Latency Tolerance" diagnostics).
//
// The same Cache type serves the functional cache simulator (which only asks
// hit/miss) and the timing simulator (which additionally uses timestamps and
// in-flight fill state; fill timing itself lives in package timing).
package cache

import "fmt"

// Line is one cache line's bookkeeping state.
type Line struct {
	Tag   uint64
	Valid bool
	Dirty bool
	lru   uint64

	// Pre-execution coverage metadata (used by the L2 in timing simulation).
	// BroughtByPt marks a line whose fill was initiated by a p-thread load.
	BroughtByPt bool
	// PtReqAt is the cycle a p-thread requested the line (valid if BroughtByPt).
	PtReqAt int64
	// ReadyAt is the cycle the fill completes (lines may be "present" in the
	// tag array while still in flight; callers compare against ReadyAt).
	ReadyAt int64
}

// Config describes a cache's geometry.
type Config struct {
	Name      string
	SizeBytes int
	LineBytes int
	Assoc     int
}

// Validate checks the geometry for consistency.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache %s: non-positive geometry %+v", c.Name, c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Assoc)
	if sets <= 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a positive power of two", c.Name, sets)
	}
	return nil
}

// Cache is a set-associative cache.
type Cache struct {
	cfg       Config
	sets      [][]Line
	setMask   uint64
	lineShift uint
	tick      uint64

	// Statistics.
	Accesses int64
	Misses   int64
}

// New builds a cache from cfg, panicking on invalid geometry (configurations
// are static and validated in tests; see Config.Validate for checked use).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	sets := make([][]Line, nsets)
	backing := make([]Line, nsets*cfg.Assoc)
	for i := range sets {
		sets[i], backing = backing[:cfg.Assoc:cfg.Assoc], backing[cfg.Assoc:]
	}
	shift := uint(0)
	for 1<<shift != cfg.LineBytes {
		shift++
	}
	return &Cache{
		cfg:       cfg,
		sets:      sets,
		setMask:   uint64(nsets - 1),
		lineShift: shift,
	}
}

// Config returns the cache's geometry.
func (c *Cache) Config() Config { return c.cfg }

// BlockAddr returns the line-aligned address containing addr.
func (c *Cache) BlockAddr(addr int64) int64 {
	return int64(uint64(addr) &^ uint64(c.cfg.LineBytes-1))
}

func (c *Cache) index(addr int64) (set uint64, tag uint64) {
	a := uint64(addr) >> c.lineShift
	return a & c.setMask, a >> 0 // tag keeps full line address; simple and unambiguous
}

// Lookup returns the line holding addr without updating LRU or statistics,
// or nil if absent.
func (c *Cache) Lookup(addr int64) *Line {
	set, tag := c.index(addr)
	lines := c.sets[set]
	for i := range lines {
		if lines[i].Valid && lines[i].Tag == tag {
			return &lines[i]
		}
	}
	return nil
}

// Access performs a read or write access: it touches LRU state, updates
// statistics, and on a miss installs the line (evicting LRU), returning
// (hit, evictedDirty). The returned line pointer is the (possibly new) line
// for addr, so callers can set timestamps.
func (c *Cache) Access(addr int64, write bool) (hit bool, victimDirty bool, line *Line) {
	c.Accesses++
	c.tick++
	set, tag := c.index(addr)
	lines := c.sets[set]
	for i := range lines {
		if lines[i].Valid && lines[i].Tag == tag {
			lines[i].lru = c.tick
			if write {
				lines[i].Dirty = true
			}
			return true, false, &lines[i]
		}
	}
	c.Misses++
	// Choose victim: first invalid, else least recently used.
	victim := 0
	for i := range lines {
		if !lines[i].Valid {
			victim = i
			break
		}
		if lines[i].lru < lines[victim].lru {
			victim = i
		}
	}
	victimDirty = lines[victim].Valid && lines[victim].Dirty
	lines[victim] = Line{Tag: tag, Valid: true, Dirty: write, lru: c.tick}
	return false, victimDirty, &lines[victim]
}

// Probe reports whether addr currently hits, without any side effects.
func (c *Cache) Probe(addr int64) bool { return c.Lookup(addr) != nil }

// Invalidate removes the line containing addr if present.
func (c *Cache) Invalidate(addr int64) {
	if l := c.Lookup(addr); l != nil {
		*l = Line{}
	}
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = Line{}
		}
	}
	c.Accesses, c.Misses, c.tick = 0, 0, 0
}

// MissRate returns Misses/Accesses, or 0 if there were no accesses.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Hierarchy bundles the paper's data-memory system geometry: a 16KB 2-way
// 32B-line L1 data cache and a 256KB 4-way 64B-line L2 (§4.1).
type Hierarchy struct {
	L1D *Cache
	L2  *Cache
}

// DefaultHierarchy returns the paper's base configuration.
func DefaultHierarchy() *Hierarchy {
	return &Hierarchy{
		L1D: New(Config{Name: "L1D", SizeBytes: 16 << 10, LineBytes: 32, Assoc: 2}),
		L2:  New(Config{Name: "L2", SizeBytes: 256 << 10, LineBytes: 64, Assoc: 4}),
	}
}

// AccessResult classifies a data access in the two-level hierarchy.
type AccessResult uint8

// Access outcomes.
const (
	HitL1 AccessResult = iota
	HitL2
	MissL2
)

func (r AccessResult) String() string {
	switch r {
	case HitL1:
		return "L1 hit"
	case HitL2:
		return "L2 hit"
	default:
		return "L2 miss"
	}
}

// Access sends a demand access through L1 then (on L1 miss) L2, installing
// lines on the way, and classifies the outcome. Functional use only — the
// timing simulator drives the two levels separately so it can model
// contention and in-flight fills.
func (h *Hierarchy) Access(addr int64, write bool) AccessResult {
	if hit, _, _ := h.L1D.Access(addr, write); hit {
		return HitL1
	}
	if hit, _, _ := h.L2.Access(addr, false); hit {
		return HitL2
	}
	return MissL2
}
