package cache

import (
	"testing"
	"testing/quick"
)

func small() *Cache {
	// 4 sets x 2 ways x 32B lines = 256B.
	return New(Config{Name: "t", SizeBytes: 256, LineBytes: 32, Assoc: 2})
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Name: "zero", SizeBytes: 0, LineBytes: 32, Assoc: 2},
		{Name: "line", SizeBytes: 256, LineBytes: 24, Assoc: 2},
		{Name: "sets", SizeBytes: 96, LineBytes: 32, Assoc: 1}, // 3 sets
		{Name: "assoc", SizeBytes: 256, LineBytes: 32, Assoc: 0},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %s should be invalid", cfg.Name)
		}
	}
	good := Config{Name: "ok", SizeBytes: 16 << 10, LineBytes: 32, Assoc: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("config ok: %v", err)
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New should panic on invalid config")
		}
	}()
	New(Config{Name: "bad", SizeBytes: 1, LineBytes: 2, Assoc: 3})
}

func TestMissThenHit(t *testing.T) {
	c := small()
	if hit, _, _ := c.Access(0x100, false); hit {
		t.Error("first access should miss")
	}
	if hit, _, _ := c.Access(0x100, false); !hit {
		t.Error("second access should hit")
	}
	if hit, _, _ := c.Access(0x11F, false); !hit {
		t.Error("same-line access should hit")
	}
	if hit, _, _ := c.Access(0x120, false); hit {
		t.Error("next-line access should miss")
	}
	if c.Accesses != 4 || c.Misses != 2 {
		t.Errorf("stats = %d/%d, want 4 accesses 2 misses", c.Accesses, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small()                                        // 2-way; set stride = 4 sets * 32B = 128B
	a, b, d := int64(0x000), int64(0x080), int64(0x100) // same set (set 0)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is now MRU
	c.Access(d, false) // must evict b
	if !c.Probe(a) {
		t.Error("a should survive (MRU)")
	}
	if c.Probe(b) {
		t.Error("b should have been evicted (LRU)")
	}
	if !c.Probe(d) {
		t.Error("d should be present")
	}
}

func TestDirtyEviction(t *testing.T) {
	c := small()
	a, b, d := int64(0x000), int64(0x080), int64(0x100)
	c.Access(a, true) // dirty
	c.Access(b, false)
	_, victimDirty, _ := c.Access(d, false) // evicts a (LRU)
	if !victimDirty {
		t.Error("evicting a dirty line must report victimDirty")
	}
}

func TestWriteSetsDirtyOnHit(t *testing.T) {
	c := small()
	c.Access(0x40, false)
	c.Access(0x40, true)
	if l := c.Lookup(0x40); l == nil || !l.Dirty {
		t.Error("write hit must set dirty")
	}
}

func TestLookupNoSideEffects(t *testing.T) {
	c := small()
	c.Access(0x40, false)
	before := c.Accesses
	if c.Lookup(0x40) == nil {
		t.Error("Lookup should find installed line")
	}
	if c.Lookup(0x999999) != nil {
		t.Error("Lookup should miss absent line")
	}
	if c.Accesses != before {
		t.Error("Lookup must not count as an access")
	}
}

func TestInvalidate(t *testing.T) {
	c := small()
	c.Access(0x40, false)
	c.Invalidate(0x40)
	if c.Probe(0x40) {
		t.Error("line should be invalid after Invalidate")
	}
	c.Invalidate(0x12345) // no-op on absent lines
}

func TestReset(t *testing.T) {
	c := small()
	c.Access(0x40, false)
	c.Reset()
	if c.Accesses != 0 || c.Misses != 0 {
		t.Error("Reset should clear stats")
	}
	if c.Probe(0x40) {
		t.Error("Reset should clear contents")
	}
}

func TestMissRate(t *testing.T) {
	c := small()
	if c.MissRate() != 0 {
		t.Error("empty cache miss rate should be 0")
	}
	c.Access(0x40, false)
	c.Access(0x40, false)
	if got := c.MissRate(); got != 0.5 {
		t.Errorf("miss rate = %v, want 0.5", got)
	}
}

func TestBlockAddr(t *testing.T) {
	c := small()
	if got := c.BlockAddr(0x47); got != 0x40 {
		t.Errorf("BlockAddr(0x47) = %#x, want 0x40", got)
	}
	if got := c.BlockAddr(0x40); got != 0x40 {
		t.Errorf("BlockAddr(0x40) = %#x, want 0x40", got)
	}
}

func TestLineMetadata(t *testing.T) {
	c := small()
	_, _, l := c.Access(0x200, false)
	l.BroughtByPt = true
	l.PtReqAt = 100
	l.ReadyAt = 170
	got := c.Lookup(0x200)
	if got == nil || !got.BroughtByPt || got.PtReqAt != 100 || got.ReadyAt != 170 {
		t.Error("line metadata not retained")
	}
}

func TestHierarchyClassification(t *testing.T) {
	h := DefaultHierarchy()
	addr := int64(0x4000)
	if got := h.Access(addr, false); got != MissL2 {
		t.Errorf("first access = %v, want L2 miss", got)
	}
	if got := h.Access(addr, false); got != HitL1 {
		t.Errorf("second access = %v, want L1 hit", got)
	}
	// Evict from L1 by filling its set; L1 is 16KB 2-way 32B lines so the
	// set stride is 8KB. Two conflicting lines evict addr from L1, but it
	// stays in the (larger) L2.
	h.Access(addr+8<<10, false)
	h.Access(addr+16<<10, false)
	if got := h.Access(addr, false); got != HitL2 {
		t.Errorf("post-eviction access = %v, want L2 hit", got)
	}
}

func TestAccessResultString(t *testing.T) {
	if HitL1.String() != "L1 hit" || HitL2.String() != "L2 hit" || MissL2.String() != "L2 miss" {
		t.Error("AccessResult strings wrong")
	}
}

func TestQuickProbeAfterAccess(t *testing.T) {
	c := New(Config{Name: "q", SizeBytes: 1 << 10, LineBytes: 32, Assoc: 4})
	f := func(addr int64) bool {
		c.Access(addr, false)
		return c.Probe(addr) // most recently installed line must be resident
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickSameLineAlwaysHitsAfterInstall(t *testing.T) {
	c := New(Config{Name: "q", SizeBytes: 1 << 10, LineBytes: 32, Assoc: 4})
	f := func(addr int64, off uint8) bool {
		c.Access(addr, false)
		hit, _, _ := c.Access(c.BlockAddr(addr)+int64(off%32), false)
		return hit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
