// Package core is the framework façade: it wires the substrates together
// into the paper's tool flow (§4.1) —
//
//	functional cache simulation  ->  slice trees        (package slice)
//	slice trees + parameters     ->  static p-threads   (packages advantage, selector, pthread)
//	program + p-threads          ->  timing simulation  (package timing)
//
// — and returns both the model's predictions and the simulated measurements
// so callers can validate one against the other exactly as the paper does.
//
// This package is now the thin compatibility layer wrapped by the public
// preexec package at the module root: the flat Config survives for legacy
// callers and for the golden tests pinning the public Engine to it, while
// the Context/Stages entry points carry cancellation and the pluggable
// stage backends. New code should use the preexec package.
package core

import (
	"context"
	"fmt"

	"preexec/internal/advantage"
	"preexec/internal/program"
	"preexec/internal/pthread"
	"preexec/internal/selector"
	"preexec/internal/slice"
	"preexec/internal/timing"
)

// Stages are the pipeline's pluggable backends. A zero Stages value selects
// the built-in implementations (slice.ProfileContext, the selector package,
// timing.RunContext); the public preexec package uses this hook to let
// callers swap in alternative profilers, selectors, and simulators.
type Stages struct {
	// Profile builds slice-tree regions from a functional run.
	Profile func(ctx context.Context, p *program.Program, opts slice.ProfileOptions) ([]slice.Region, error)
	// Select chooses p-threads from profiled regions. regioned reports
	// whether per-region selection (RegionInsts > 0) was requested.
	Select func(regions []slice.Region, opts selector.Options, regioned bool) selector.Result
	// Simulate measures a program, with optional p-threads, on the detailed
	// timing machine.
	Simulate func(ctx context.Context, p *program.Program, pts []*pthread.PThread, cfg timing.Config) (timing.Stats, error)
}

func (s Stages) fill() Stages {
	if s.Profile == nil {
		s.Profile = slice.ProfileContext
	}
	if s.Select == nil {
		s.Select = func(regions []slice.Region, opts selector.Options, regioned bool) selector.Result {
			if regioned {
				return selector.SelectRegions(regions, opts)
			}
			return selector.SelectForest(regions[0].Forest, opts)
		}
	}
	if s.Simulate == nil {
		s.Simulate = timing.RunContext
	}
	return s
}

// Config is the end-to-end evaluation configuration. Zero values select the
// paper's base configuration.
type Config struct {
	// Run sizing.
	WarmInsts    int64 // warm-up instructions (caches + predictor only)
	MeasureInsts int64 // measured instructions

	// P-thread selection parameters (paper §4.1 defaults: scope 1024,
	// length 32, optimization and merging on).
	Scope       int
	MaxLen      int
	Optimize    bool
	Merge       bool
	RegionInsts int64 // non-zero: per-region selection granularity

	// Machine parameters shared by the model and the simulator.
	Width  int
	MemLat int

	// SelectOn optionally profiles a different program (e.g. a test input
	// or a short profiling phase) for selection; nil selects on Program.
	SelectOn *program.Program
	// SelectInsts bounds the selection profile (0 = MeasureInsts).
	SelectInsts int64
	// SelectMemLat/SelectWidth let cross-validation experiments lie to the
	// selector about the machine (0 = the simulated values).
	SelectMemLat int
	SelectWidth  int

	// Ablation knobs (see the "ablate" experiment): ModelLoadLat overrides
	// the latency the SCDH model charges in-slice loads (0 = the default L2
	// hit latency; 1 = the paper's raw unit-latency model); NoRSThrottle
	// disables the simulator's p-thread injection throttle.
	ModelLoadLat float64
	NoRSThrottle bool
}

func (c Config) withDefaults() Config {
	if c.WarmInsts == 0 {
		c.WarmInsts = 30_000
	}
	if c.MeasureInsts == 0 {
		c.MeasureInsts = 120_000
	}
	if c.Scope == 0 {
		c.Scope = 1024
	}
	if c.MaxLen == 0 {
		c.MaxLen = 32
	}
	if c.Width == 0 {
		c.Width = 8
	}
	if c.MemLat == 0 {
		c.MemLat = 70
	}
	if c.SelectInsts == 0 {
		c.SelectInsts = c.MeasureInsts
	}
	if c.SelectMemLat == 0 {
		c.SelectMemLat = c.MemLat
	}
	if c.SelectWidth == 0 {
		c.SelectWidth = c.Width
	}
	return c
}

// WithDefaults returns the configuration with every zero field replaced by
// the paper's base value (the same normalization every entry point applies).
func (c Config) WithDefaults() Config { return c.withDefaults() }

// DefaultConfig returns the paper's base evaluation configuration with
// optimization and merging enabled.
func DefaultConfig() Config {
	return Config{Optimize: true, Merge: true}.withDefaults()
}

// Report is a complete evaluation of one program under one configuration.
type Report struct {
	Program string
	Config  Config

	// Base is the unassisted run; Pre the pre-execution run.
	Base timing.Stats
	Pre  timing.Stats

	// Selection holds the chosen p-threads and the model's predictions.
	Selection selector.Result
	// BaseMisses is the number of L2 misses the selection profile observed
	// — the denominator for the paper's coverage percentages.
	BaseMisses int64
	// PredIPC is the model's IPC forecast for the pre-execution run.
	PredIPC float64
}

// CoveragePct returns measured miss coverage as a percentage of base misses.
func (r Report) CoveragePct() float64 {
	if r.BaseMisses == 0 {
		return 0
	}
	return 100 * float64(r.Pre.MissesCovered) / float64(r.BaseMisses)
}

// FullCoveragePct returns measured full coverage.
func (r Report) FullCoveragePct() float64 {
	if r.BaseMisses == 0 {
		return 0
	}
	return 100 * float64(r.Pre.MissesFullCovered) / float64(r.BaseMisses)
}

// SpeedupPct returns the measured percent speedup of pre-execution.
func (r Report) SpeedupPct() float64 {
	if r.Base.IPC == 0 {
		return 0
	}
	return (r.Pre.IPC/r.Base.IPC - 1) * 100
}

// TimingConfig builds the simulator configuration this evaluation hands the
// timing stage for the given mode — the exact config EvaluateContext passes
// to Stages.Simulate. It is exported so the public package can render stage
// keys (cache memoization and coordinator routing) from one source instead
// of re-deriving the mapping.
func (c Config) TimingConfig(mode timing.Mode) timing.Config { return c.timingConfig(mode) }

// timingConfig builds the simulator configuration for this evaluation.
func (c Config) timingConfig(mode timing.Mode) timing.Config {
	tc := timing.DefaultConfig()
	tc.Width = c.Width
	tc.MemLat = c.MemLat
	tc.WarmInsts = c.WarmInsts
	tc.MaxInsts = c.MeasureInsts
	tc.Mode = mode
	tc.NoRSThrottle = c.NoRSThrottle
	return tc
}

// SelectorOptions builds the selection options — the aggregate-advantage
// parameters and the merging switch — this configuration implies for the
// given unassisted main-thread IPC.
func (c Config) SelectorOptions(baseIPC float64) selector.Options {
	c = c.withDefaults()
	loadLat := c.ModelLoadLat
	if loadLat <= 0 {
		loadLat = 6 // in-slice loads hit the L2 at best (see advantage.Params)
	}
	params := advantage.Params{
		BWSeq:    float64(c.SelectWidth),
		IPC:      baseIPC,
		MemLat:   float64(c.SelectMemLat),
		MaxLen:   c.MaxLen,
		Optimize: c.Optimize,
		LoadLat:  loadLat,
	}
	return selector.Options{Params: params, Merge: c.Merge}
}

// Select runs the selection half of the pipeline: profile (on SelectOn or
// the program itself), then slice-tree selection with the configured
// parameters. baseIPC is the unassisted IPC fed to the advantage model.
func Select(p *program.Program, baseIPC float64, cfg Config) (selector.Result, int64, error) {
	return SelectContext(context.Background(), p, baseIPC, cfg, Stages{})
}

// SelectContext is Select with cancellation support and pluggable stages
// (zero Stages selects the built-in backends).
func SelectContext(ctx context.Context, p *program.Program, baseIPC float64, cfg Config, st Stages) (selector.Result, int64, error) {
	cfg = cfg.withDefaults()
	st = st.fill()
	target := cfg.SelectOn
	if target == nil {
		target = p
	}
	regions, err := st.Profile(ctx, target, slice.ProfileOptions{
		WarmInsts:   cfg.WarmInsts,
		MaxInsts:    cfg.SelectInsts,
		Scope:       cfg.Scope,
		MaxSlice:    cfg.MaxLen,
		RegionInsts: cfg.RegionInsts,
	})
	if err != nil {
		return selector.Result{}, 0, err
	}
	var misses int64
	for _, r := range regions {
		misses += r.Forest.L2Misses
	}
	return st.Select(regions, cfg.SelectorOptions(baseIPC), cfg.RegionInsts > 0), misses, nil
}

// Evaluate runs the full pipeline: base timing run, selection, and the
// pre-execution timing run.
func Evaluate(p *program.Program, cfg Config) (Report, error) {
	return EvaluateContext(context.Background(), p, cfg, Stages{})
}

// EvaluateContext is Evaluate with cancellation support and pluggable
// stages (zero Stages selects the built-in backends).
func EvaluateContext(ctx context.Context, p *program.Program, cfg Config, st Stages) (Report, error) {
	cfg = cfg.withDefaults()
	st = st.fill()
	rep := Report{Program: p.Name, Config: cfg}

	base, err := st.Simulate(ctx, p, nil, cfg.timingConfig(timing.ModeBase))
	if err != nil {
		return rep, fmt.Errorf("core: base run: %w", err)
	}
	rep.Base = base

	sel, _, err := SelectContext(ctx, p, base.IPC, cfg, st)
	if err != nil {
		return rep, fmt.Errorf("core: selection: %w", err)
	}
	rep.Selection = sel
	// The coverage denominator is the measured machine's own demand-miss
	// count, NOT the selection profile's (which may cover a different input
	// or a shorter window — Figure 7's dynamic and static scenarios).
	rep.BaseMisses = base.L2Misses
	rep.PredIPC = selector.PredictIPC(sel.Pred, cfg.MeasureInsts, base.IPC, float64(cfg.Width))

	pre, err := st.Simulate(ctx, p, sel.PThreads, cfg.timingConfig(timing.ModeNormal))
	if err != nil {
		return rep, fmt.Errorf("core: pre-execution run: %w", err)
	}
	rep.Pre = pre
	return rep, nil
}

// RunMode re-simulates a completed report's p-threads under a different
// p-thread mode (the validation diagnostics of §4.3).
func RunMode(p *program.Program, pts []*pthread.PThread, cfg Config, mode timing.Mode) (timing.Stats, error) {
	return RunModeContext(context.Background(), p, pts, cfg, mode, Stages{})
}

// RunModeContext is RunMode with cancellation support and a pluggable
// simulator stage.
func RunModeContext(ctx context.Context, p *program.Program, pts []*pthread.PThread, cfg Config, mode timing.Mode, st Stages) (timing.Stats, error) {
	cfg = cfg.withDefaults()
	return st.fill().Simulate(ctx, p, pts, cfg.timingConfig(mode))
}
