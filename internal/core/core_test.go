package core

import (
	"testing"

	"preexec/internal/timing"
	"preexec/internal/workload"
)

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig()
	if c.Scope != 1024 || c.MaxLen != 32 || !c.Optimize || !c.Merge {
		t.Errorf("DefaultConfig = %+v", c)
	}
	if c.Width != 8 || c.MemLat != 70 {
		t.Errorf("machine defaults wrong: %+v", c)
	}
}

func TestEvaluateVprP(t *testing.T) {
	w, _ := workload.ByName("vpr.p")
	p := w.Build(1)
	cfg := DefaultConfig()
	cfg.WarmInsts = 20_000
	cfg.MeasureInsts = 80_000
	rep, err := Evaluate(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Base.IPC <= 0 || rep.Pre.IPC <= 0 {
		t.Fatal("missing IPCs")
	}
	if rep.BaseMisses == 0 {
		t.Fatal("no base misses profiled")
	}
	if rep.CoveragePct() < 30 {
		t.Errorf("vpr.p coverage = %.1f%%, want substantial", rep.CoveragePct())
	}
	if rep.SpeedupPct() <= 0 {
		t.Errorf("vpr.p speedup = %.1f%%, want positive", rep.SpeedupPct())
	}
	if rep.PredIPC <= rep.Base.IPC {
		t.Errorf("prediction should forecast improvement: pred %.2f base %.2f", rep.PredIPC, rep.Base.IPC)
	}
}

func TestSelectOnDifferentInput(t *testing.T) {
	w, _ := workload.ByName("vpr.p")
	train := w.Build(1)
	test := w.BuildTest(1)
	cfg := DefaultConfig()
	cfg.WarmInsts = 20_000
	cfg.MeasureInsts = 60_000
	cfg.SelectOn = test
	cfg.SelectInsts = 40_000
	rep, err := Evaluate(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// vpr.p's test input fits the L2 (paper Fig. 7): nothing selected.
	if len(rep.Selection.PThreads) != 0 {
		t.Errorf("test-input selection found %d p-threads, want 0", len(rep.Selection.PThreads))
	}
	if rep.BaseMisses == 0 {
		t.Error("coverage denominator must come from the measured machine")
	}
}

func TestRunModeOverhead(t *testing.T) {
	w, _ := workload.ByName("vpr.r")
	p := w.Build(1)
	cfg := DefaultConfig()
	cfg.WarmInsts = 20_000
	cfg.MeasureInsts = 60_000
	rep, err := Evaluate(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Selection.PThreads) == 0 {
		t.Skip("nothing selected")
	}
	seq, err := RunMode(p, rep.Selection.PThreads, cfg, timing.ModeOverheadSequence)
	if err != nil {
		t.Fatal(err)
	}
	if seq.MissesCovered != 0 {
		t.Error("sequence mode must not cover misses")
	}
	if seq.IPC > rep.Base.IPC*1.02 {
		t.Errorf("overhead-only IPC %.3f should not exceed base %.3f", seq.IPC, rep.Base.IPC)
	}
}

func TestRegionGranularity(t *testing.T) {
	w, _ := workload.ByName("vpr.p")
	p := w.Build(1)
	cfg := DefaultConfig()
	cfg.WarmInsts = 20_000
	cfg.MeasureInsts = 80_000
	cfg.RegionInsts = 20_000
	rep, err := Evaluate(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Selection.PThreads) == 0 {
		t.Fatal("regioned selection chose nothing")
	}
	gated := 0
	for _, pt := range rep.Selection.PThreads {
		if pt.RegionEnd != 0 {
			gated++
		}
	}
	if gated == 0 {
		t.Error("expected region-gated p-threads")
	}
	if rep.Pre.Launches == 0 {
		t.Error("regioned p-threads never launched")
	}
}
