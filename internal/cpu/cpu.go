// Package cpu implements the PRX functional interpreter. It is the single
// source of architectural semantics in the repository: the trace generator,
// the timing simulator's oracle front end, and p-thread bodies all execute
// through it (or through ExecBody, which shares the ALU evaluator).
package cpu

import (
	"fmt"

	"preexec/internal/isa"
	"preexec/internal/mem"
	"preexec/internal/program"
)

// Exec describes one dynamically executed instruction. It carries everything
// downstream consumers need: the trace/dependence tracker uses PC and the
// register/memory identities; the timing simulator uses Taken/NextPC/EffAddr.
type Exec struct {
	Seq     int64    // dynamic instruction number (0-based)
	PC      int      // static instruction index
	Inst    isa.Inst // the instruction executed
	EffAddr int64    // effective address (LD/ST only)
	Taken   bool     // conditional branch outcome
	NextPC  int      // PC of the next instruction
	RdVal   int64    // value written to Inst.Rd (if HasDest)
}

// State is a running PRX machine.
type State struct {
	Prog   *program.Program
	Regs   [isa.NumRegs]int64
	PC     int
	Mem    *mem.Memory
	Halted bool
	Count  int64 // dynamic instructions executed
}

// New returns a machine at the program's entry with a private copy of the
// initial data image.
func New(p *program.Program) *State {
	return &State{Prog: p, PC: p.Entry, Mem: p.Data.Clone()}
}

// NewSharing returns a machine that runs directly on m (no clone). Used when
// the caller owns the image lifecycle.
func NewSharing(p *program.Program, m *mem.Memory) *State {
	return &State{Prog: p, PC: p.Entry, Mem: m}
}

// EvalALU computes the result of a non-memory, non-control instruction given
// its source values. Shared between the interpreter and p-thread execution.
func EvalALU(in isa.Inst, s1, s2 int64) int64 {
	switch in.Op {
	case isa.ADD:
		return s1 + s2
	case isa.SUB:
		return s1 - s2
	case isa.MUL:
		return s1 * s2
	case isa.DIV:
		if s2 == 0 {
			return 0
		}
		return s1 / s2
	case isa.AND:
		return s1 & s2
	case isa.OR:
		return s1 | s2
	case isa.XOR:
		return s1 ^ s2
	case isa.SLL:
		return s1 << uint64(s2&63)
	case isa.SRL:
		return int64(uint64(s1) >> uint64(s2&63))
	case isa.SRA:
		return s1 >> uint64(s2&63)
	case isa.SLT:
		if s1 < s2 {
			return 1
		}
		return 0
	case isa.ADDI:
		return s1 + in.Imm
	case isa.ANDI:
		return s1 & in.Imm
	case isa.ORI:
		return s1 | in.Imm
	case isa.XORI:
		return s1 ^ in.Imm
	case isa.SLLI:
		return s1 << uint64(in.Imm&63)
	case isa.SRLI:
		return int64(uint64(s1) >> uint64(in.Imm&63))
	case isa.SRAI:
		return s1 >> uint64(in.Imm&63)
	case isa.SLTI:
		if s1 < in.Imm {
			return 1
		}
		return 0
	case isa.MOV:
		return s1
	case isa.LI:
		return in.Imm
	default:
		return 0
	}
}

// BranchTaken evaluates a conditional branch given its source values.
func BranchTaken(op isa.Op, s1, s2 int64) bool {
	switch op {
	case isa.BEQ:
		return s1 == s2
	case isa.BNE:
		return s1 != s2
	case isa.BLT:
		return s1 < s2
	case isa.BGE:
		return s1 >= s2
	default:
		return false
	}
}

// Step executes one instruction and returns its execution record. Stepping a
// halted machine or running off the end of the program is an error.
func (s *State) Step() (Exec, error) {
	if s.Halted {
		return Exec{}, fmt.Errorf("%s: step after halt", s.Prog.Name)
	}
	in, ok := s.Prog.At(s.PC)
	if !ok {
		return Exec{}, fmt.Errorf("%s: PC %d out of range", s.Prog.Name, s.PC)
	}
	e := Exec{Seq: s.Count, PC: s.PC, Inst: in, NextPC: s.PC + 1}
	switch isa.ClassOf(in.Op) {
	case isa.ClassNop:
	case isa.ClassALU, isa.ClassMul:
		v := EvalALU(in, s.Regs[in.Rs1], s.Regs[in.Rs2])
		e.RdVal = v
		s.setReg(in.Rd, v)
	case isa.ClassLoad:
		e.EffAddr = s.Regs[in.Rs1] + in.Imm
		v := s.Mem.Read(e.EffAddr)
		e.RdVal = v
		s.setReg(in.Rd, v)
	case isa.ClassStore:
		e.EffAddr = s.Regs[in.Rs1] + in.Imm
		s.Mem.Write(e.EffAddr, s.Regs[in.Rs2])
	case isa.ClassBranch:
		e.Taken = BranchTaken(in.Op, s.Regs[in.Rs1], s.Regs[in.Rs2])
		if e.Taken {
			e.NextPC = in.Target
		}
	case isa.ClassJump:
		switch in.Op {
		case isa.J:
			e.NextPC = in.Target
		case isa.JAL:
			e.RdVal = int64(s.PC + 1)
			s.setReg(in.Rd, e.RdVal)
			e.NextPC = in.Target
		case isa.JR:
			e.NextPC = int(s.Regs[in.Rs1])
		}
		e.Taken = true
	case isa.ClassHalt:
		s.Halted = true
		e.NextPC = s.PC
	}
	s.PC = e.NextPC
	s.Count++
	return e, nil
}

func (s *State) setReg(r isa.Reg, v int64) {
	if r != isa.Zero {
		s.Regs[r] = v
	}
}

// Run executes up to maxInsts instructions or until HALT, returning the
// number executed.
func (s *State) Run(maxInsts int64) (int64, error) {
	var n int64
	for n < maxInsts && !s.Halted {
		if _, err := s.Step(); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// BodyResult is the outcome of executing a p-thread body functionally.
type BodyResult struct {
	// EffAddrs[i] is the effective address of body instruction i, or 0 for
	// non-memory instructions.
	EffAddrs []int64
	// IsLoad[i] reports whether body instruction i is a load that actually
	// accessed memory (i.e. was not satisfied by the body's own store buffer).
	// Loads satisfied by a body store are not prefetch candidates.
	FromStoreBuf []bool
}

// ExecBody executes a p-thread body functionally against a register file and
// a read-only view of memory. Stores are kept in a private store buffer (the
// speculative p-thread must never write architectural memory); loads check
// the buffer first, modeling store-to-load forwarding inside the p-thread.
// Control-flow instructions are architecturally invalid in p-thread bodies
// (p-threads are control-less, paper §2) and are executed as NOPs.
//
// ExecBody allocates its result afresh; hot callers that execute bodies
// repeatedly (the timing simulator launches one per dynamic p-thread) should
// hold a BodyExec and reuse its scratch instead.
func ExecBody(body []isa.Inst, regs []int64, m *mem.Memory) BodyResult {
	var x BodyExec
	r := x.Exec(body, regs, m)
	out := BodyResult{
		EffAddrs:     make([]int64, len(r.EffAddrs)),
		FromStoreBuf: make([]bool, len(r.FromStoreBuf)),
	}
	copy(out.EffAddrs, r.EffAddrs)
	copy(out.FromStoreBuf, r.FromStoreBuf)
	return out
}

// BodyExec executes p-thread bodies with reusable scratch: the result slices
// and the speculative store buffer are retained between calls, so a warm
// executor allocates nothing. The zero value is ready to use. Not safe for
// concurrent use.
type BodyExec struct {
	res      BodyResult
	storeBuf map[int64]int64
}

// Exec is ExecBody against the executor's reusable scratch. The returned
// result is valid until the next Exec call.
func (x *BodyExec) Exec(body []isa.Inst, regs []int64, m *mem.Memory) *BodyResult {
	if cap(x.res.EffAddrs) < len(body) {
		x.res.EffAddrs = make([]int64, len(body))
		x.res.FromStoreBuf = make([]bool, len(body))
	} else {
		x.res.EffAddrs = x.res.EffAddrs[:len(body)]
		x.res.FromStoreBuf = x.res.FromStoreBuf[:len(body)]
		clear(x.res.EffAddrs)
		clear(x.res.FromStoreBuf)
	}
	res := &x.res
	bufUsed := false
	rd := func(r isa.Reg) int64 {
		if int(r) < len(regs) {
			return regs[r]
		}
		return 0
	}
	wr := func(r isa.Reg, v int64) {
		if r != isa.Zero && int(r) < len(regs) {
			regs[r] = v
		}
	}
	for i, in := range body {
		switch isa.ClassOf(in.Op) {
		case isa.ClassALU, isa.ClassMul:
			wr(in.Rd, EvalALU(in, rd(in.Rs1), rd(in.Rs2)))
		case isa.ClassLoad:
			addr := rd(in.Rs1) + in.Imm
			res.EffAddrs[i] = addr
			if bufUsed {
				if v, ok := x.storeBuf[addr&^7]; ok {
					res.FromStoreBuf[i] = true
					wr(in.Rd, v)
					continue
				}
			}
			wr(in.Rd, m.Read(addr))
		case isa.ClassStore:
			addr := rd(in.Rs1) + in.Imm
			res.EffAddrs[i] = addr
			if !bufUsed {
				if x.storeBuf == nil {
					x.storeBuf = make(map[int64]int64)
				} else {
					clear(x.storeBuf)
				}
				bufUsed = true
			}
			x.storeBuf[addr&^7] = rd(in.Rs2)
		default:
			// NOP, control, HALT: control-less bodies treat these as NOPs.
		}
	}
	return res
}
