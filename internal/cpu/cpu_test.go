package cpu

import (
	"testing"
	"testing/quick"

	"preexec/internal/isa"
	"preexec/internal/mem"
	"preexec/internal/program"
)

func build(t *testing.T, f func(b *program.Builder)) *program.Program {
	t.Helper()
	b := program.NewBuilder("test")
	f(b)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestALUOps(t *testing.T) {
	cases := []struct {
		name string
		op   isa.Op
		s1   int64
		s2   int64
		want int64
	}{
		{"add", isa.ADD, 2, 3, 5},
		{"sub", isa.SUB, 2, 3, -1},
		{"mul", isa.MUL, -4, 3, -12},
		{"div", isa.DIV, 7, 2, 3},
		{"div0", isa.DIV, 7, 0, 0},
		{"and", isa.AND, 0b1100, 0b1010, 0b1000},
		{"or", isa.OR, 0b1100, 0b1010, 0b1110},
		{"xor", isa.XOR, 0b1100, 0b1010, 0b0110},
		{"sll", isa.SLL, 1, 4, 16},
		{"srl", isa.SRL, -1, 60, 15},
		{"sra", isa.SRA, -16, 2, -4},
		{"slt_t", isa.SLT, -1, 0, 1},
		{"slt_f", isa.SLT, 0, 0, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := EvalALU(isa.Inst{Op: c.op}, c.s1, c.s2)
			if got != c.want {
				t.Errorf("EvalALU(%v,%d,%d) = %d, want %d", c.op, c.s1, c.s2, got, c.want)
			}
		})
	}
}

func TestImmediateOps(t *testing.T) {
	cases := []struct {
		op   isa.Op
		s1   int64
		imm  int64
		want int64
	}{
		{isa.ADDI, 5, -2, 3},
		{isa.ANDI, 0b111, 0b101, 0b101},
		{isa.ORI, 0b100, 0b001, 0b101},
		{isa.XORI, 0b110, 0b011, 0b101},
		{isa.SLLI, 3, 2, 12},
		{isa.SRLI, 16, 2, 4},
		{isa.SRAI, -16, 2, -4},
		{isa.SLTI, 1, 2, 1},
		{isa.SLTI, 2, 2, 0},
	}
	for _, c := range cases {
		got := EvalALU(isa.Inst{Op: c.op, Imm: c.imm}, c.s1, 0)
		if got != c.want {
			t.Errorf("EvalALU(%v,%d,imm=%d) = %d, want %d", c.op, c.s1, c.imm, got, c.want)
		}
	}
}

func TestBranchTaken(t *testing.T) {
	cases := []struct {
		op     isa.Op
		s1, s2 int64
		want   bool
	}{
		{isa.BEQ, 1, 1, true}, {isa.BEQ, 1, 2, false},
		{isa.BNE, 1, 2, true}, {isa.BNE, 1, 1, false},
		{isa.BLT, -1, 0, true}, {isa.BLT, 0, 0, false},
		{isa.BGE, 0, 0, true}, {isa.BGE, -1, 0, false},
		{isa.ADD, 1, 1, false},
	}
	for _, c := range cases {
		if got := BranchTaken(c.op, c.s1, c.s2); got != c.want {
			t.Errorf("BranchTaken(%v,%d,%d) = %v, want %v", c.op, c.s1, c.s2, got, c.want)
		}
	}
}

func TestR0Hardwired(t *testing.T) {
	p := build(t, func(b *program.Builder) {
		b.Li(0, 99).Addi(1, 0, 7).Halt()
	})
	s := New(p)
	if _, err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if s.Regs[0] != 0 {
		t.Errorf("R0 = %d, want 0", s.Regs[0])
	}
	if s.Regs[1] != 7 {
		t.Errorf("R1 = %d, want 7 (ADDI off R0)", s.Regs[1])
	}
}

func TestLoadStore(t *testing.T) {
	p := build(t, func(b *program.Builder) {
		base := b.Alloc(2)
		b.SetWord(base, 41)
		b.Li(1, base).
			Ld(2, 1, 0).   // r2 = 41
			Addi(2, 2, 1). // r2 = 42
			St(2, 1, 8).   // mem[base+8] = 42
			Ld(3, 1, 8).   // r3 = 42
			Halt()
	})
	s := New(p)
	if _, err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if s.Regs[3] != 42 {
		t.Errorf("R3 = %d, want 42", s.Regs[3])
	}
}

func TestLoopExecution(t *testing.T) {
	// Sum 1..10 with a loop.
	p := build(t, func(b *program.Builder) {
		b.Li(1, 0). // i
				Li(2, 0).  // sum
				Li(3, 10). // n
				Label("loop").
				Bge(1, 3, "done").
				Addi(1, 1, 1).
				Add(2, 2, 1).
				J("loop").
				Label("done").
				Halt()
	})
	s := New(p)
	if _, err := s.Run(1000); err != nil {
		t.Fatal(err)
	}
	if !s.Halted {
		t.Fatal("program did not halt")
	}
	if s.Regs[2] != 55 {
		t.Errorf("sum = %d, want 55", s.Regs[2])
	}
}

func TestJalJr(t *testing.T) {
	p := build(t, func(b *program.Builder) {
		b.Jal(isa.RA, "fn"). // 0
					Halt(). // 1
					Label("fn").
					Li(5, 77). // 2
					Jr(isa.RA) // 3
	})
	s := New(p)
	if _, err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if !s.Halted || s.Regs[5] != 77 {
		t.Errorf("halted=%v r5=%d, want true,77", s.Halted, s.Regs[5])
	}
	if s.Regs[isa.RA] != 1 {
		t.Errorf("RA = %d, want 1", s.Regs[isa.RA])
	}
}

func TestExecRecordFields(t *testing.T) {
	p := build(t, func(b *program.Builder) {
		base := b.Alloc(1)
		b.SetWord(base, 5)
		b.Li(1, base). // 0
				Ld(2, 1, 0).    // 1
				Beq(2, 0, "x"). // 2: not taken
				Label("x").
				Halt()
	})
	s := New(p)
	e0, _ := s.Step()
	if e0.Seq != 0 || e0.PC != 0 || e0.NextPC != 1 {
		t.Errorf("exec 0 = %+v", e0)
	}
	e1, _ := s.Step()
	if e1.EffAddr == 0 || e1.RdVal != 5 {
		t.Errorf("load exec = %+v", e1)
	}
	e2, _ := s.Step()
	if e2.Taken || e2.NextPC != 3 {
		t.Errorf("branch exec = %+v, want not-taken fallthrough", e2)
	}
}

func TestStepAfterHaltErrors(t *testing.T) {
	p := build(t, func(b *program.Builder) { b.Halt() })
	s := New(p)
	if _, err := s.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(); err == nil {
		t.Fatal("expected error stepping a halted machine")
	}
}

func TestPCOutOfRange(t *testing.T) {
	p := build(t, func(b *program.Builder) { b.Nop() })
	s := New(p)
	if _, err := s.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(); err == nil {
		t.Fatal("expected PC-out-of-range error")
	}
}

func TestMemoryIsolation(t *testing.T) {
	p := build(t, func(b *program.Builder) {
		base := b.Alloc(1)
		b.Li(1, base).Li(2, 9).St(2, 1, 0).Halt()
	})
	s := New(p)
	if _, err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	// The program's pristine data image must be untouched.
	addr := int64(0x10000)
	if p.Data.Read(addr) != 0 {
		t.Error("machine writes leaked into program data image")
	}
}

func TestExecBodySimple(t *testing.T) {
	m := mem.New()
	m.Write(0x100, 11)
	regs := make([]int64, isa.PtRegs)
	regs[1] = 0x100
	body := []isa.Inst{
		{Op: isa.LD, Rd: 2, Rs1: 1},           // r2 = 11
		{Op: isa.ADDI, Rd: 3, Rs1: 2, Imm: 1}, // r3 = 12
	}
	res := ExecBody(body, regs, m)
	if regs[3] != 12 {
		t.Errorf("r3 = %d, want 12", regs[3])
	}
	if res.EffAddrs[0] != 0x100 {
		t.Errorf("effaddr = %#x, want 0x100", res.EffAddrs[0])
	}
}

func TestExecBodyStoreForwarding(t *testing.T) {
	m := mem.New()
	m.Write(0x200, 5)
	regs := make([]int64, isa.PtRegs)
	regs[1] = 0x200
	body := []isa.Inst{
		{Op: isa.LI, Rd: 2, Imm: 99},
		{Op: isa.ST, Rs1: 1, Rs2: 2}, // private store 99 -> 0x200
		{Op: isa.LD, Rd: 3, Rs1: 1},  // must see 99, from store buffer
	}
	res := ExecBody(body, regs, m)
	if regs[3] != 99 {
		t.Errorf("forwarded load = %d, want 99", regs[3])
	}
	if !res.FromStoreBuf[2] {
		t.Error("load should be marked as store-buffer hit")
	}
	if m.Read(0x200) != 5 {
		t.Error("p-thread store leaked into memory")
	}
}

func TestExecBodyControlIsNop(t *testing.T) {
	regs := make([]int64, isa.PtRegs)
	regs[1] = 3
	body := []isa.Inst{
		{Op: isa.BEQ, Rs1: 1, Rs2: 1, Target: 0}, // would loop forever if honored
		{Op: isa.ADDI, Rd: 2, Rs1: 1, Imm: 1},
	}
	ExecBody(body, regs, mem.New())
	if regs[2] != 4 {
		t.Errorf("r2 = %d, want 4 (branch treated as NOP)", regs[2])
	}
}

func TestExecBodyExtendedRegisters(t *testing.T) {
	// Merged p-threads may use registers >= 32.
	regs := make([]int64, isa.PtRegs)
	regs[40] = 6
	body := []isa.Inst{{Op: isa.ADDI, Rd: 41, Rs1: 40, Imm: 1}}
	ExecBody(body, regs, mem.New())
	if regs[41] != 7 {
		t.Errorf("extended reg r41 = %d, want 7", regs[41])
	}
}

func TestQuickALUMatchesInterpreter(t *testing.T) {
	// For any ADD executed through Step, the result equals EvalALU.
	f := func(a, b int64) bool {
		p := program.NewBuilder("q")
		p.Li(1, a).Li(2, b).Add(3, 1, 2).Halt()
		prog, err := p.Build()
		if err != nil {
			return false
		}
		s := New(prog)
		if _, err := s.Run(10); err != nil {
			return false
		}
		return s.Regs[3] == a+b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
