package experiments

import (
	"context"

	"preexec"
	"preexec/internal/program"
)

// Ablation measures the two refinements this reproduction adds on top of
// the paper's letter (both documented in DESIGN.md):
//
//   - "unit-loadlat": charge in-slice loads unit latency in the SCDH model,
//     as the paper's worked example does. Dependent-miss chains (mcf) then
//     look hoistable and get selected, reproducing the over-selection the
//     paper's own mcf commentary describes.
//   - "no-throttle": disable the simulator's RS-pressure injection
//     throttle; miss-laden p-thread bodies can then park in the shared
//     reservation stations and squeeze the main thread.
//   - "neither": both ablated at once (the worst case: mcf selects deep
//     dependent-load chains AND they monopolize the reservation stations).
//
// "full" is the default configuration for reference.
func Ablation(ctx context.Context, opts Options) ([]FigRow, error) {
	names := []string{"full", "unit-loadlat", "no-throttle", "neither"}
	return opts.evalConfigs(ctx, names, func(cfg *preexec.Config, name string, _, _ *program.Program) {
		switch name {
		case "unit-loadlat":
			cfg.Ablation.ModelLoadLat = 1
		case "no-throttle":
			cfg.Ablation.NoRSThrottle = true
		case "neither":
			cfg.Ablation.ModelLoadLat = 1
			cfg.Ablation.NoRSThrottle = true
		}
	})
}
