package experiments

import "testing"

func TestAblationMcf(t *testing.T) {
	rows, err := Ablation(t.Context(), fast("mcf"))
	if err != nil {
		t.Fatal(err)
	}
	byCfg := map[string]FigRow{}
	for _, r := range rows {
		byCfg[r.Config] = r
	}
	// With the L2-latency load model, mcf's dependent chains are correctly
	// scored unhoistable: nothing selected.
	if byCfg["full"].PThreads != 0 {
		t.Errorf("full config selected %d p-threads for mcf, want 0", byCfg["full"].PThreads)
	}
	// With unit load latency the model over-selects (the paper's serial-
	// miss blindness): p-threads appear.
	if byCfg["unit-loadlat"].PThreads == 0 {
		t.Error("unit-loadlat ablation should over-select for mcf")
	}
	// And without the RS throttle, those deep dependent-load bodies hurt
	// more than with it.
	if byCfg["neither"].SpeedupPct > byCfg["unit-loadlat"].SpeedupPct+3 {
		t.Errorf("removing the throttle should not help: neither %.1f%% vs unit-loadlat %.1f%%",
			byCfg["neither"].SpeedupPct, byCfg["unit-loadlat"].SpeedupPct)
	}
}

func TestAblationLeavesGoodCasesAlone(t *testing.T) {
	rows, err := Ablation(t.Context(), fast("vpr.p"))
	if err != nil {
		t.Fatal(err)
	}
	byCfg := map[string]FigRow{}
	for _, r := range rows {
		byCfg[r.Config] = r
	}
	// vpr.p's slices contain no loads, so the load-latency model change is
	// a no-op there and the throttle rarely engages.
	if byCfg["full"].SpeedupPct <= 0 || byCfg["unit-loadlat"].SpeedupPct <= 0 {
		t.Errorf("vpr.p should speed up under both models: %+v", byCfg)
	}
	d := byCfg["full"].CoveragePct - byCfg["unit-loadlat"].CoveragePct
	if d < -10 || d > 10 {
		t.Errorf("load-latency model should not change vpr.p coverage much: %.1f vs %.1f",
			byCfg["full"].CoveragePct, byCfg["unit-loadlat"].CoveragePct)
	}
}
