// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) on the synthetic benchmark suite: Table 1 (benchmark
// characterization), Table 2 (primary results and model validation), and
// Figures 4-8 (slicing scope & p-thread length, optimization & merging,
// selection granularity, selection input data-set, memory-latency
// cross-validation), plus the processor-width cross-validation the paper
// describes in prose (§4.5).
//
// Absolute numbers are not expected to match the paper — the substrate is a
// from-scratch simulator running synthetic kernels — but the qualitative
// shape (who wins, where effects saturate, how cross-validation orders) is;
// EXPERIMENTS.md records both sides for every experiment.
package experiments

import (
	"fmt"

	"preexec/internal/core"
	"preexec/internal/stats"
	"preexec/internal/timing"
	"preexec/internal/workload"
)

// Options configures an experiment run.
type Options struct {
	// Scale multiplies workload iteration counts (default 1).
	Scale int
	// Warm and Measure size the simulation windows (defaults 30k/120k).
	Warm, Measure int64
	// Benchmarks restricts the suite (default: all ten).
	Benchmarks []string
}

func (o Options) fill() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Warm <= 0 {
		o.Warm = 30_000
	}
	if o.Measure <= 0 {
		o.Measure = 120_000
	}
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = workload.Names()
	}
	return o
}

func (o Options) coreConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.WarmInsts = o.Warm
	cfg.MeasureInsts = o.Measure
	return cfg
}

func (o Options) workloads() ([]workload.Workload, error) {
	out := make([]workload.Workload, 0, len(o.Benchmarks))
	for _, name := range o.Benchmarks {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

// FigRow is one bar of a paper figure: the five diagnostics every graph
// reports (miss coverage, full coverage, instruction overhead, mean dynamic
// p-thread length, percent speedup), tagged with benchmark and configuration.
type FigRow struct {
	Bench  string
	Config string

	CoveragePct float64
	FullPct     float64
	OverheadPct float64 // p-thread instructions per 100 retired
	AvgPtLen    float64
	SpeedupPct  float64
	PThreads    int
}

func figRow(bench, config string, rep core.Report) FigRow {
	return FigRow{
		Bench:       bench,
		Config:      config,
		CoveragePct: rep.CoveragePct(),
		FullPct:     rep.FullCoveragePct(),
		OverheadPct: rep.Pre.OverheadFrac() * 100,
		AvgPtLen:    rep.Pre.AvgPtLen,
		SpeedupPct:  rep.SpeedupPct(),
		PThreads:    len(rep.Selection.PThreads),
	}
}

// FormatFigRows renders figure rows as an aligned table.
func FormatFigRows(rows []FigRow) string {
	t := stats.NewTable("bench", "config", "cover%", "full%", "ovhd%", "ptlen", "speedup%", "pthreads")
	for _, r := range rows {
		t.Row(r.Bench, r.Config, r.CoveragePct, r.FullPct, r.OverheadPct, r.AvgPtLen, r.SpeedupPct, r.PThreads)
	}
	return t.String()
}

// Table1Row characterizes one benchmark (paper Table 1).
type Table1Row struct {
	Bench      string
	Insts      int64
	Loads      int64
	L2Misses   int64
	IPC        float64
	PerfectIPC float64 // IPC with a (near-)perfect L2
}

// Table1 regenerates the benchmark characterization.
func Table1(opts Options) ([]Table1Row, error) {
	opts = opts.fill()
	ws, err := opts.workloads()
	if err != nil {
		return nil, err
	}
	var rows []Table1Row
	for _, w := range ws {
		p := w.Build(opts.Scale)
		cfg := timing.DefaultConfig()
		cfg.WarmInsts = opts.Warm
		cfg.MaxInsts = opts.Measure
		base, err := timing.Run(p, nil, cfg)
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", w.Name, err)
		}
		perfectCfg := cfg
		perfectCfg.MemLat = 1 // an L2 miss costs (almost) nothing
		perfect, err := timing.Run(p, nil, perfectCfg)
		if err != nil {
			return nil, fmt.Errorf("table1 %s (perfect): %w", w.Name, err)
		}
		rows = append(rows, Table1Row{
			Bench:      w.Name,
			Insts:      base.Retired,
			Loads:      base.Loads,
			L2Misses:   base.L2Misses,
			IPC:        base.IPC,
			PerfectIPC: perfect.IPC,
		})
	}
	return rows, nil
}

// FormatTable1 renders Table 1.
func FormatTable1(rows []Table1Row) string {
	t := stats.NewTable("bench", "insts", "loads", "L2 misses", "IPC", "perfect-L2 IPC")
	for _, r := range rows {
		t.Row(r.Bench, r.Insts, r.Loads, r.L2Misses, r.IPC, r.PerfectIPC)
	}
	return t.String()
}

// Table2Row is the paper's primary-results-and-validation row: the measured
// pre-execution block and the framework's predictions of the same
// quantities (§4.2-4.3).
type Table2Row struct {
	Bench   string
	BaseIPC float64

	// Measured (Pre-exec block).
	PreIPC      float64
	Launches    int64
	InstsPerPt  float64
	Covered     int64
	FullCovered int64
	// Validation IPCs.
	OverheadExecIPC float64 // p-threads execute, no cache access
	OverheadSeqIPC  float64 // p-threads consume sequencing only
	LatencyIPC      float64 // p-threads free of sequencing cost

	// Predicted (Predict block).
	PredIPC         float64
	PredLaunches    int64
	PredInstsPerPt  float64
	PredCovered     int64
	PredFullCovered int64
}

// Table2 regenerates the primary performance and validation results.
func Table2(opts Options) ([]Table2Row, error) {
	opts = opts.fill()
	ws, err := opts.workloads()
	if err != nil {
		return nil, err
	}
	var rows []Table2Row
	for _, w := range ws {
		p := w.Build(opts.Scale)
		cfg := opts.coreConfig()
		rep, err := core.Evaluate(p, cfg)
		if err != nil {
			return nil, fmt.Errorf("table2 %s: %w", w.Name, err)
		}
		row := Table2Row{
			Bench:           w.Name,
			BaseIPC:         rep.Base.IPC,
			PreIPC:          rep.Pre.IPC,
			Launches:        rep.Pre.Launches,
			InstsPerPt:      rep.Pre.AvgPtLen,
			Covered:         rep.Pre.MissesCovered,
			FullCovered:     rep.Pre.MissesFullCovered,
			PredIPC:         rep.PredIPC,
			PredLaunches:    rep.Selection.Pred.Launches,
			PredInstsPerPt:  rep.Selection.Pred.InstsPerPThread,
			PredCovered:     rep.Selection.Pred.MissesCovered,
			PredFullCovered: rep.Selection.Pred.MissesFullCov,
		}
		for _, m := range []struct {
			mode timing.Mode
			dst  *float64
		}{
			{timing.ModeOverheadExecute, &row.OverheadExecIPC},
			{timing.ModeOverheadSequence, &row.OverheadSeqIPC},
			{timing.ModeLatencyOnly, &row.LatencyIPC},
		} {
			st, err := core.RunMode(p, rep.Selection.PThreads, cfg, m.mode)
			if err != nil {
				return nil, fmt.Errorf("table2 %s (%v): %w", w.Name, m.mode, err)
			}
			*m.dst = st.IPC
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable2 renders Table 2.
func FormatTable2(rows []Table2Row) string {
	t := stats.NewTable("bench", "base", "pre", "launch", "len", "cover", "full",
		"ovh-x", "ovh-s", "lat", "| pred", "launch", "len", "cover", "full")
	for _, r := range rows {
		t.Row(r.Bench, r.BaseIPC, r.PreIPC, r.Launches, r.InstsPerPt, r.Covered, r.FullCovered,
			r.OverheadExecIPC, r.OverheadSeqIPC, r.LatencyIPC,
			r.PredIPC, r.PredLaunches, r.PredInstsPerPt, r.PredCovered, r.PredFullCovered)
	}
	return t.String()
}
