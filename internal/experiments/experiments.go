// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) on the synthetic benchmark suite: Table 1 (benchmark
// characterization), Table 2 (primary results and model validation), and
// Figures 4-8 (slicing scope & p-thread length, optimization & merging,
// selection granularity, selection input data-set, memory-latency
// cross-validation), plus the processor-width cross-validation the paper
// describes in prose (§4.5).
//
// Every experiment runs on the public preexec API: one Engine per
// (benchmark, configuration) cell, evaluated concurrently across the suite
// runner's bounded worker pool with deterministic row ordering, and
// cancellable through the context threaded into every entry point.
//
// Absolute numbers are not expected to match the paper — the substrate is a
// from-scratch simulator running synthetic kernels — but the qualitative
// shape (who wins, where effects saturate, how cross-validation orders) is;
// EXPERIMENTS.md records both sides for every experiment.
package experiments

import (
	"context"
	"fmt"
	"sync"

	"preexec"
	"preexec/internal/stats"
	"preexec/internal/timing"
	"preexec/internal/workload"
)

// Options configures an experiment run.
type Options struct {
	// Scale multiplies workload iteration counts (default 1).
	Scale int
	// Warm and Measure size the simulation windows (defaults 30k/120k).
	Warm, Measure int64
	// Benchmarks restricts the suite (default: all ten).
	Benchmarks []string
	// Workers bounds concurrent evaluations (<= 0 = GOMAXPROCS).
	Workers int
	// Progress, if non-nil, streams per-cell completion events.
	Progress func(preexec.SuiteEvent)
	// NoCache disables stage memoization in the figure sweeps: every cell
	// recomputes its own base run and profile (texp -cache=off).
	NoCache bool
}

func (o Options) fill() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Warm <= 0 {
		o.Warm = 30_000
	}
	if o.Measure <= 0 {
		o.Measure = 120_000
	}
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = workload.Names()
	}
	return o
}

// config is the paper's base configuration sized to this run's windows.
func (o Options) config() preexec.Config {
	cfg := preexec.DefaultConfig()
	cfg.Machine.WarmInsts = o.Warm
	cfg.Machine.MeasureInsts = o.Measure
	return cfg
}

func (o Options) workloads() ([]workload.Workload, error) {
	out := make([]workload.Workload, 0, len(o.Benchmarks))
	for _, name := range o.Benchmarks {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

// progressEmitter serializes SuiteEvents for the table experiments, which
// run through preexec.ParallelEach rather than the Suite runner (their unit
// of work is not a plain evaluation, so Report is nil in their events).
type progressEmitter struct {
	mu    sync.Mutex
	done  int
	total int
	fn    func(preexec.SuiteEvent)
}

func newProgressEmitter(total int, fn func(preexec.SuiteEvent)) *progressEmitter {
	return &progressEmitter{total: total, fn: fn}
}

func (e *progressEmitter) emit(index int, name string, err error) {
	if e == nil || e.fn == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.done++
	//lint:ignore lockscope the emitter exists to serialize progress callbacks; done counting and delivery must be atomic, and fn never re-enters the emitter.
	e.fn(preexec.SuiteEvent{Index: index, Total: e.total, Done: e.done, Name: name, Err: err})
}

// FigRow is one bar of a paper figure: the five diagnostics every graph
// reports (miss coverage, full coverage, instruction overhead, mean dynamic
// p-thread length, percent speedup), tagged with benchmark and configuration.
type FigRow struct {
	Bench  string `json:"bench"`
	Config string `json:"config"`

	CoveragePct float64 `json:"coverage_pct"`
	FullPct     float64 `json:"full_pct"`
	OverheadPct float64 `json:"overhead_pct"` // p-thread instructions per 100 retired
	AvgPtLen    float64 `json:"avg_pt_len"`
	SpeedupPct  float64 `json:"speedup_pct"`
	PThreads    int     `json:"pthreads"`
}

func figRow(bench, config string, rep preexec.Report) FigRow {
	return FigRow{
		Bench:       bench,
		Config:      config,
		CoveragePct: rep.CoveragePct(),
		FullPct:     rep.FullCoveragePct(),
		OverheadPct: rep.Pre.OverheadFrac() * 100,
		AvgPtLen:    rep.Pre.AvgPtLen,
		SpeedupPct:  rep.SpeedupPct(),
		PThreads:    len(rep.PThreads),
	}
}

// FormatFigRows renders figure rows as an aligned table.
func FormatFigRows(rows []FigRow) string {
	t := stats.NewTable("bench", "config", "cover%", "full%", "ovhd%", "ptlen", "speedup%", "pthreads")
	for _, r := range rows {
		t.Row(r.Bench, r.Config, r.CoveragePct, r.FullPct, r.OverheadPct, r.AvgPtLen, r.SpeedupPct, r.PThreads)
	}
	return t.String()
}

// SuiteReports evaluates the whole suite under the paper's base
// configuration — concurrently — and returns the full public reports in
// benchmark order (the machine-readable counterpart of Table 2's measured
// block).
func SuiteReports(ctx context.Context, opts Options) ([]preexec.Report, error) {
	opts = opts.fill()
	eng := preexec.New(preexec.WithConfig(opts.config()))
	return preexec.EvaluateSuite(ctx, eng, opts.Benchmarks, opts.Scale, opts.Workers, opts.Progress)
}

// Table1Row characterizes one benchmark (paper Table 1).
type Table1Row struct {
	Bench      string  `json:"bench"`
	Insts      int64   `json:"insts"`
	Loads      int64   `json:"loads"`
	L2Misses   int64   `json:"l2_misses"`
	IPC        float64 `json:"ipc"`
	PerfectIPC float64 `json:"perfect_ipc"` // IPC with a (near-)perfect L2
}

// Table1 regenerates the benchmark characterization.
func Table1(ctx context.Context, opts Options) ([]Table1Row, error) {
	opts = opts.fill()
	ws, err := opts.workloads()
	if err != nil {
		return nil, err
	}
	rows := make([]Table1Row, len(ws))
	progress := newProgressEmitter(len(ws), opts.Progress)
	err = preexec.ParallelEach(ctx, opts.Workers, len(ws), func(ctx context.Context, i int) (retErr error) {
		defer func() { progress.emit(i, ws[i].Name, retErr) }()
		w := ws[i]
		p := w.Build(opts.Scale)
		cfg := timing.DefaultConfig()
		cfg.WarmInsts = opts.Warm
		cfg.MaxInsts = opts.Measure
		base, err := timing.RunContext(ctx, p, nil, cfg)
		if err != nil {
			return fmt.Errorf("table1 %s: %w", w.Name, err)
		}
		perfectCfg := cfg
		perfectCfg.MemLat = 1 // an L2 miss costs (almost) nothing
		perfect, err := timing.RunContext(ctx, p, nil, perfectCfg)
		if err != nil {
			return fmt.Errorf("table1 %s (perfect): %w", w.Name, err)
		}
		rows[i] = Table1Row{
			Bench:      w.Name,
			Insts:      base.Retired,
			Loads:      base.Loads,
			L2Misses:   base.L2Misses,
			IPC:        base.IPC,
			PerfectIPC: perfect.IPC,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatTable1 renders Table 1.
func FormatTable1(rows []Table1Row) string {
	t := stats.NewTable("bench", "insts", "loads", "L2 misses", "IPC", "perfect-L2 IPC")
	for _, r := range rows {
		t.Row(r.Bench, r.Insts, r.Loads, r.L2Misses, r.IPC, r.PerfectIPC)
	}
	return t.String()
}

// Table2Row is the paper's primary-results-and-validation row: the measured
// pre-execution block and the framework's predictions of the same
// quantities (§4.2-4.3).
type Table2Row struct {
	Bench   string  `json:"bench"`
	BaseIPC float64 `json:"base_ipc"`

	// Measured (Pre-exec block).
	PreIPC      float64 `json:"pre_ipc"`
	Launches    int64   `json:"launches"`
	InstsPerPt  float64 `json:"insts_per_pt"`
	Covered     int64   `json:"covered"`
	FullCovered int64   `json:"full_covered"`
	// Validation IPCs.
	OverheadExecIPC float64 `json:"overhead_exec_ipc"` // p-threads execute, no cache access
	OverheadSeqIPC  float64 `json:"overhead_seq_ipc"`  // p-threads consume sequencing only
	LatencyIPC      float64 `json:"latency_ipc"`       // p-threads free of sequencing cost

	// Predicted (Predict block).
	PredIPC         float64 `json:"pred_ipc"`
	PredLaunches    int64   `json:"pred_launches"`
	PredInstsPerPt  float64 `json:"pred_insts_per_pt"`
	PredCovered     int64   `json:"pred_covered"`
	PredFullCovered int64   `json:"pred_full_covered"`
}

// Table2 regenerates the primary performance and validation results. Each
// benchmark's full row — evaluation plus the three diagnostic re-simulations
// — is one unit of parallel work.
func Table2(ctx context.Context, opts Options) ([]Table2Row, error) {
	opts = opts.fill()
	ws, err := opts.workloads()
	if err != nil {
		return nil, err
	}
	eng := preexec.New(preexec.WithConfig(opts.config()))
	rows := make([]Table2Row, len(ws))
	progress := newProgressEmitter(len(ws), opts.Progress)
	err = preexec.ParallelEach(ctx, opts.Workers, len(ws), func(ctx context.Context, i int) (retErr error) {
		defer func() { progress.emit(i, ws[i].Name, retErr) }()
		w := ws[i]
		p := w.Build(opts.Scale)
		rep, err := eng.Evaluate(ctx, p)
		if err != nil {
			return fmt.Errorf("table2 %s: %w", w.Name, err)
		}
		row := Table2Row{
			Bench:           w.Name,
			BaseIPC:         rep.Base.IPC,
			PreIPC:          rep.Pre.IPC,
			Launches:        rep.Pre.Launches,
			InstsPerPt:      rep.Pre.AvgPtLen,
			Covered:         rep.Pre.MissesCovered,
			FullCovered:     rep.Pre.MissesFullCovered,
			PredIPC:         rep.PredIPC,
			PredLaunches:    rep.Pred.Launches,
			PredInstsPerPt:  rep.Pred.InstsPerPThread,
			PredCovered:     rep.Pred.MissesCovered,
			PredFullCovered: rep.Pred.MissesFullCov,
		}
		for _, m := range []struct {
			mode preexec.Mode
			dst  *float64
		}{
			{preexec.ModeOverheadExecute, &row.OverheadExecIPC},
			{preexec.ModeOverheadSequence, &row.OverheadSeqIPC},
			{preexec.ModeLatencyOnly, &row.LatencyIPC},
		} {
			st, err := eng.Simulate(ctx, p, rep.PThreads, m.mode)
			if err != nil {
				return fmt.Errorf("table2 %s (%v): %w", w.Name, m.mode, err)
			}
			*m.dst = st.IPC
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatTable2 renders Table 2.
func FormatTable2(rows []Table2Row) string {
	t := stats.NewTable("bench", "base", "pre", "launch", "len", "cover", "full",
		"ovh-x", "ovh-s", "lat", "| pred", "launch", "len", "cover", "full")
	for _, r := range rows {
		t.Row(r.Bench, r.BaseIPC, r.PreIPC, r.Launches, r.InstsPerPt, r.Covered, r.FullCovered,
			r.OverheadExecIPC, r.OverheadSeqIPC, r.LatencyIPC,
			r.PredIPC, r.PredLaunches, r.PredInstsPerPt, r.PredCovered, r.PredFullCovered)
	}
	return t.String()
}
