package experiments

import (
	"strings"
	"testing"
)

// fast returns options sized for unit testing: two contrasting benchmarks
// and small windows. The full suite runs through cmd/texp and the benches.
func fast(benchmarks ...string) Options {
	if len(benchmarks) == 0 {
		benchmarks = []string{"vpr.p", "crafty"}
	}
	return Options{Warm: 20_000, Measure: 60_000, Benchmarks: benchmarks}
}

func TestTable1(t *testing.T) {
	rows, err := Table1(t.Context(), fast("vpr.p", "crafty", "mcf"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Bench] = r
		if r.Insts == 0 || r.Loads == 0 || r.IPC <= 0 {
			t.Errorf("%s: empty characterization %+v", r.Bench, r)
		}
		if r.PerfectIPC < r.IPC {
			t.Errorf("%s: perfect-L2 IPC %.2f below base %.2f", r.Bench, r.PerfectIPC, r.IPC)
		}
	}
	// The paper's Table 1 orderings: mcf has the most misses and the lowest
	// IPC; crafty is nearly miss-free with a high IPC.
	if byName["mcf"].L2Misses <= byName["crafty"].L2Misses {
		t.Error("mcf should miss far more than crafty")
	}
	if byName["mcf"].IPC >= byName["crafty"].IPC {
		t.Error("mcf should be slower than crafty")
	}
	// Perfect L2 gains track miss counts: mcf's gap should be the largest.
	mcfGain := byName["mcf"].PerfectIPC / byName["mcf"].IPC
	craftyGain := byName["crafty"].PerfectIPC / byName["crafty"].IPC
	if mcfGain <= craftyGain {
		t.Errorf("perfect-L2 gain: mcf %.2fx should exceed crafty %.2fx", mcfGain, craftyGain)
	}
}

func TestTable2(t *testing.T) {
	rows, err := Table2(t.Context(), fast("vpr.p", "crafty"))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Bench] = r
	}
	vpr := byName["vpr.p"]
	if vpr.PreIPC <= vpr.BaseIPC {
		t.Errorf("vpr.p: pre %.2f should beat base %.2f", vpr.PreIPC, vpr.BaseIPC)
	}
	if vpr.Covered == 0 || vpr.Launches == 0 {
		t.Error("vpr.p: expected coverage and launches")
	}
	// Validation invariants: overhead-only runs cannot beat base; the
	// latency-only run cannot be slower than the normal pre-exec run
	// (within noise).
	if vpr.OverheadExecIPC > vpr.BaseIPC*1.03 || vpr.OverheadSeqIPC > vpr.BaseIPC*1.03 {
		t.Errorf("overhead-only IPCs (%.2f/%.2f) should not beat base %.2f",
			vpr.OverheadExecIPC, vpr.OverheadSeqIPC, vpr.BaseIPC)
	}
	if vpr.LatencyIPC < vpr.PreIPC*0.95 {
		t.Errorf("latency-only %.2f should be >= pre %.2f", vpr.LatencyIPC, vpr.PreIPC)
	}
	// Launch-count prediction correlates (no wrong path in our simulator).
	if vpr.PredLaunches == 0 {
		t.Error("missing launch prediction")
	}
	ratio := float64(vpr.Launches) / float64(vpr.PredLaunches)
	if ratio < 0.5 || ratio > 1.5 {
		t.Errorf("launch prediction off: measured %d predicted %d", vpr.Launches, vpr.PredLaunches)
	}
	// crafty must stay (close to) untouched.
	crafty := byName["crafty"]
	if crafty.Launches > crafty.Covered+1000 && crafty.PreIPC < crafty.BaseIPC*0.9 {
		t.Errorf("crafty harmed: %+v", crafty)
	}
}

func TestFigure4Saturation(t *testing.T) {
	rows, err := Figure4(t.Context(), fast("vpr.p"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	// Relaxing constraints must not reduce coverage (monotone up to noise),
	// and the two most relaxed configurations should be similar (saturation).
	if rows[0].CoveragePct > rows[2].CoveragePct+5 {
		t.Errorf("coverage should grow with relaxed constraints: %v", rows)
	}
	d := rows[3].CoveragePct - rows[2].CoveragePct
	if d < -10 || d > 25 {
		t.Errorf("coverage should saturate between 1024/32 and 2048/64: %.1f vs %.1f",
			rows[2].CoveragePct, rows[3].CoveragePct)
	}
}

func TestFigure5OptimizationHelpsVortex(t *testing.T) {
	rows, err := Figure5(t.Context(), fast("vortex"))
	if err != nil {
		t.Fatal(err)
	}
	byCfg := map[string]FigRow{}
	for _, r := range rows {
		byCfg[r.Config] = r
	}
	// vortex's slices contain store-load pairs; optimization must shorten
	// p-threads (or unlock candidates) relative to no optimization.
	if byCfg["opt"].PThreads < byCfg["none"].PThreads {
		t.Errorf("optimization should not lose candidates: %+v vs %+v", byCfg["opt"], byCfg["none"])
	}
	if byCfg["opt"].CoveragePct < byCfg["none"].CoveragePct-5 {
		t.Errorf("optimization should not lose coverage: %+v vs %+v", byCfg["opt"], byCfg["none"])
	}
}

func TestFigure6RunsAllGranularities(t *testing.T) {
	rows, err := Figure6(t.Context(), fast("vpr.p"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Config != "full" && r.PThreads == 0 {
			t.Errorf("granularity %s selected nothing", r.Config)
		}
	}
}

func TestFigure7StaticScenario(t *testing.T) {
	rows, err := Figure7(t.Context(), fast("vpr.p", "bzip2"))
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]FigRow{}
	for _, r := range rows {
		byKey[r.Bench+"/"+r.Config] = r
	}
	// vpr.p's test input fits the L2: the static scenario selects nothing
	// (paper Figure 7's signature result).
	if got := byKey["vpr.p/static"]; got.PThreads != 0 {
		t.Errorf("vpr.p static scenario selected %d p-threads, want 0", got.PThreads)
	}
	// The dynamic scenario should approach perfect information.
	perfect, dynamic := byKey["vpr.p/perfect"], byKey["vpr.p/dynamic"]
	if dynamic.CoveragePct < perfect.CoveragePct*0.6 {
		t.Errorf("dynamic coverage %.1f%% too far below perfect %.1f%%",
			dynamic.CoveragePct, perfect.CoveragePct)
	}
	// bzip2's static scenario still works (its test input misses).
	if got := byKey["bzip2/static"]; got.PThreads == 0 {
		t.Error("bzip2 static scenario should still find p-threads")
	}
}

func TestFigure8CrossValidation(t *testing.T) {
	rows, err := Figure8(t.Context(), fast("vpr.r"))
	if err != nil {
		t.Fatal(err)
	}
	byCfg := map[string]FigRow{}
	for _, r := range rows {
		byCfg[r.Config] = r
	}
	if len(byCfg) != 4 {
		t.Fatalf("configs = %v, want 4", byCfg)
	}
	// All four configurations must cover misses and improve vpr.r.
	for cfg, r := range byCfg {
		if r.CoveragePct <= 0 {
			t.Errorf("%s: no coverage", cfg)
		}
		if r.SpeedupPct <= 0 {
			t.Errorf("%s: no speedup (%.1f%%)", cfg, r.SpeedupPct)
		}
	}
	// Self-validation on the 70-cycle machine should not lose meaningfully
	// to over-specification (the paper's expected case: extra lookahead
	// buys nothing when there is no extra latency, while covering fewer
	// misses). The reverse comparison — under-specification on the slow
	// machine — is deliberately NOT asserted: the paper itself reports
	// benchmarks where t70 beats t140 on the 140-cycle machine via
	// naturally-overlapped misses and bus contention (§4.5).
	if byCfg["p70(t70)"].SpeedupPct < byCfg["p70(t140)"].SpeedupPct-5 {
		t.Errorf("p70(t70) %.1f%% should be >= p70(t140) %.1f%%",
			byCfg["p70(t70)"].SpeedupPct, byCfg["p70(t140)"].SpeedupPct)
	}
}

func TestWidthCrossValidation(t *testing.T) {
	rows, err := Width(t.Context(), fast("vpr.p"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Config == "p8(t8)" && r.SpeedupPct <= 0 {
			t.Errorf("8-wide self-validation should still speed up vpr.p: %+v", r)
		}
	}
}

func TestFormatting(t *testing.T) {
	t1, err := Table1(t.Context(), fast("crafty"))
	if err != nil {
		t.Fatal(err)
	}
	if s := FormatTable1(t1); !strings.Contains(s, "crafty") {
		t.Error("FormatTable1 missing benchmark")
	}
	rows := []FigRow{{Bench: "x", Config: "c", CoveragePct: 50}}
	if s := FormatFigRows(rows); !strings.Contains(s, "50.00") {
		t.Error("FormatFigRows missing value")
	}
}

func TestUnknownBenchmark(t *testing.T) {
	if _, err := Table1(t.Context(), Options{Benchmarks: []string{"nope"}}); err == nil {
		t.Error("unknown benchmark should error")
	}
}
