package experiments

import (
	"context"
	"fmt"

	"preexec"
	"preexec/internal/program"
)

// evalConfigs runs one evaluation per (benchmark, named config) cell
// through the memoized sweep subsystem — cells differing only in selection
// or ablation knobs share base timing runs and profiles — and collects
// figure rows in deterministic (benchmark-major) order. mutate customizes
// the base configuration for each named variant; train and test are the
// workload's two inputs.
func (o Options) evalConfigs(
	ctx context.Context,
	names []string,
	mutate func(cfg *preexec.Config, name string, train, test *program.Program),
) ([]FigRow, error) {
	o = o.fill()
	ws, err := o.workloads()
	if err != nil {
		return nil, err
	}
	benches := make([]preexec.SweepBench, len(ws))
	for i, w := range ws {
		benches[i] = preexec.SweepBench{Name: w.Name, Program: w.Build(o.Scale), Test: w.BuildTest(o.Scale)}
	}
	points := make([]preexec.ConfigPoint, len(names))
	for i, name := range names {
		points[i] = preexec.ConfigPoint{
			Name: name,
			Derive: func(b preexec.SweepBench) preexec.Config {
				cfg := o.config()
				mutate(&cfg, name, b.Program, b.Test)
				return cfg
			},
		}
	}
	sweep := &preexec.Sweep{Workers: o.Workers, Progress: o.Progress, NoCache: o.NoCache}
	res, err := sweep.Run(ctx, benches, points)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	rows := make([]FigRow, len(res.Cells))
	for i, cell := range res.Cells {
		rows[i] = figRow(cell.Bench, cell.Point, cell.Report)
	}
	return rows, nil
}

// Figure4 measures the combined impact of slicing scope and maximum
// p-thread length (paper Figure 4): four scope/length combinations from
// tightly constrained to fully relaxed. The paper's trends: all five
// diagnostics grow as constraints relax, then saturate.
func Figure4(ctx context.Context, opts Options) ([]FigRow, error) {
	combos := []struct {
		name   string
		scope  int
		maxLen int
	}{
		{"256/8", 256, 8},
		{"512/16", 512, 16},
		{"1024/32", 1024, 32},
		{"2048/64", 2048, 64},
	}
	names := make([]string, len(combos))
	for i, c := range combos {
		names[i] = c.name
	}
	return opts.evalConfigs(ctx, names, func(cfg *preexec.Config, name string, _, _ *program.Program) {
		for _, c := range combos {
			if c.name == name {
				cfg.Selection.Scope, cfg.Selection.MaxLen = c.scope, c.maxLen
			}
		}
	})
}

// Figure5 measures the impact of p-thread optimization and merging (paper
// Figure 5): neither, merging only, optimization only, and both. The
// paper's trends: optimization shortens p-threads and unlocks previously
// unprofitable candidates (more launches, more coverage); merging reduces
// launch counts and overhead.
func Figure5(ctx context.Context, opts Options) ([]FigRow, error) {
	names := []string{"none", "merge", "opt", "opt+merge"}
	return opts.evalConfigs(ctx, names, func(cfg *preexec.Config, name string, _, _ *program.Program) {
		cfg.Selection.Optimize = name == "opt" || name == "opt+merge"
		cfg.Selection.Merge = name == "merge" || name == "opt+merge"
	})
}

// Figure6 measures p-thread selection granularity (paper Figure 6): the
// whole sample versus per-region selection at successively finer regions.
// The paper's regions are 100M/10M/1M instructions of a ~100M sample; ours
// scale to the measured window (full, 1/3, 1/6, 1/12).
func Figure6(ctx context.Context, opts Options) ([]FigRow, error) {
	names := []string{"full", "coarse", "medium", "fine"}
	frac := map[string]int64{"coarse": 3, "medium": 6, "fine": 12}
	return opts.evalConfigs(ctx, names, func(cfg *preexec.Config, name string, _, _ *program.Program) {
		if f, ok := frac[name]; ok {
			cfg.Selection.RegionInsts = cfg.Machine.MeasureInsts / f
		}
	})
}

// Figure7 measures the selection input data-set (paper Figure 7): perfect
// information (select on the measured run itself), the dynamic scenario
// (select on a short profiling phase of the same input, modeling an on-line
// JIT), and the static scenario (select on the test input, modeling a
// profile-driven static compiler). The paper's trends: dynamic ~= perfect;
// static works except where the test working set fits the L2 (twolf,
// vpr.p), which select no p-threads at all.
func Figure7(ctx context.Context, opts Options) ([]FigRow, error) {
	names := []string{"perfect", "dynamic", "static"}
	return opts.evalConfigs(ctx, names, func(cfg *preexec.Config, name string, train, test *program.Program) {
		switch name {
		case "dynamic":
			cfg.Selection.ProfileInsts = cfg.Machine.MeasureInsts / 5
		case "static":
			cfg.Selection.ProfileOn = test
			cfg.Selection.ProfileInsts = cfg.Machine.MeasureInsts / 2
		}
	})
}

// Figure8 is the memory-latency cross-validation (paper Figure 8): p-thread
// sets are selected assuming 70- or 140-cycle memory (t70, t140) and each
// set is simulated under both latencies. Config names read pSIM(tSEL). The
// paper's trends: self-validation beats cross-validation; higher assumed
// latency yields longer p-threads that fully cover more misses.
func Figure8(ctx context.Context, opts Options) ([]FigRow, error) {
	names := []string{"p140(t70)", "p140(t140)", "p70(t70)", "p70(t140)"}
	return opts.evalConfigs(ctx, names, func(cfg *preexec.Config, name string, _, _ *program.Program) {
		switch name {
		case "p140(t70)":
			cfg.Machine.MemLat, cfg.Selection.MemLat = 140, 70
		case "p140(t140)":
			cfg.Machine.MemLat, cfg.Selection.MemLat = 140, 140
		case "p70(t70)":
			cfg.Machine.MemLat, cfg.Selection.MemLat = 70, 70
		case "p70(t140)":
			cfg.Machine.MemLat, cfg.Selection.MemLat = 70, 140
		}
	})
}

// Width is the processor-width cross-validation the paper reports in prose
// (§4.5): p-threads selected for a 4-wide or 8-wide machine, each simulated
// on both. Config names read pSIM(tSEL).
func Width(ctx context.Context, opts Options) ([]FigRow, error) {
	names := []string{"p4(t4)", "p4(t8)", "p8(t8)", "p8(t4)"}
	return opts.evalConfigs(ctx, names, func(cfg *preexec.Config, name string, _, _ *program.Program) {
		switch name {
		case "p4(t4)":
			cfg.Machine.Width, cfg.Selection.Width = 4, 4
		case "p4(t8)":
			cfg.Machine.Width, cfg.Selection.Width = 4, 8
		case "p8(t8)":
			cfg.Machine.Width, cfg.Selection.Width = 8, 8
		case "p8(t4)":
			cfg.Machine.Width, cfg.Selection.Width = 8, 4
		}
	})
}
