// Package chaos is the fault-injection harness for the distributed sweep
// tests: an http.Handler proxy that wraps a backend and perturbs requests on
// a deterministic schedule — kill the connection, return a 500, truncate the
// response body mid-stream, or delay service. Faults are indexed by request
// arrival order, so a test that serializes its requests (or uses a schedule
// whose tail fault is order-insensitive, e.g. "kill everything after the
// first") gets a reproducible failure pattern without wall-clock races.
package chaos

import (
	"bytes"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Kind enumerates the injectable faults.
type Kind int

const (
	// None passes the request through untouched.
	None Kind = iota
	// Kill drops the connection without writing a valid response — the
	// client sees a transport error, as if the backend process died.
	Kill
	// Error500 replaces the response with a 500 — a backend that is up but
	// failing.
	Error500
	// Truncate writes the real headers (full Content-Length included) and
	// the first half of the real body, then drops the connection — a
	// garbled payload the client must reject as short, not trust.
	Truncate
	// Delay holds the request for Fault.Latency, then serves it normally —
	// a slow backend that trips per-attempt timeouts without being down.
	Delay
)

// String names the fault kind for test logs.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Kill:
		return "kill"
	case Error500:
		return "error500"
	case Truncate:
		return "truncate"
	case Delay:
		return "delay"
	}
	return "unknown"
}

// Fault is one scheduled perturbation.
type Fault struct {
	Kind Kind
	// Latency is the hold time for Delay faults.
	Latency time.Duration
}

// Schedule maps request arrival order to faults: request i suffers Plan[i],
// and every request beyond the plan suffers Then. The zero Schedule passes
// everything through.
type Schedule struct {
	Plan []Fault
	Then Fault
}

func (s Schedule) at(i int) Fault {
	if i < len(s.Plan) {
		return s.Plan[i]
	}
	return s.Then
}

// Proxy wraps a backend handler with a fault schedule. It records every
// fault it applies, in arrival order, for test assertions.
type Proxy struct {
	next http.Handler

	mu      sync.Mutex
	sched   Schedule
	n       int
	applied []Kind
}

// New wraps next with the given schedule.
func New(next http.Handler, sched Schedule) *Proxy {
	return &Proxy{next: next, sched: sched}
}

// SetSchedule replaces the schedule and restarts its request counter, so a
// test can arm faults after a healthy warm-up phase.
func (p *Proxy) SetSchedule(sched Schedule) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.sched = sched
	p.n = 0
}

// Applied returns the faults applied so far, in request arrival order.
func (p *Proxy) Applied() []Kind {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Kind, len(p.applied))
	copy(out, p.applied)
	return out
}

func (p *Proxy) take() Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	f := p.sched.at(p.n)
	p.n++
	p.applied = append(p.applied, f.Kind)
	return f
}

// ServeHTTP applies the next scheduled fault to the request.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f := p.take()
	switch f.Kind {
	case Kill:
		// http.Server recovers this sentinel silently and closes the
		// connection without completing the response.
		panic(http.ErrAbortHandler)
	case Error500:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write([]byte("chaos: injected backend failure\n"))
		return
	case Truncate:
		rec := &recorder{header: make(http.Header), code: http.StatusOK}
		p.next.ServeHTTP(rec, r)
		//lint:ignore ctxloop copying a handful of response headers is O(headers) and cheaper than a context check; the expensive part (p.next) already honoured r.Context.
		for k, vs := range rec.header {
			w.Header()[k] = vs
		}
		// Announce the full length, deliver half, then drop the connection:
		// the client's read must end in an unexpected-EOF, never a
		// plausible-looking short document.
		body := rec.body.Bytes()
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(rec.code)
		_, _ = w.Write(body[:len(body)/2])
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		panic(http.ErrAbortHandler)
	case Delay:
		t := time.NewTimer(f.Latency)
		defer t.Stop()
		select {
		case <-t.C:
		case <-r.Context().Done():
			panic(http.ErrAbortHandler)
		}
	}
	p.next.ServeHTTP(w, r)
}

// recorder buffers a response so Truncate can rewrite its framing.
type recorder struct {
	header http.Header
	code   int
	body   bytes.Buffer
}

func (r *recorder) Header() http.Header { return r.header }
func (r *recorder) WriteHeader(code int) {
	r.code = code
}
func (r *recorder) Write(b []byte) (int, error) { return r.body.Write(b) }
