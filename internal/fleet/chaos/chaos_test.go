package chaos

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// backend is a trivial upstream with a known body.
func backend() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"cells":[{"bench":"x","point":"y"}],"cache":{}}`))
	})
}

func TestScheduleIndexing(t *testing.T) {
	s := Schedule{Plan: []Fault{{Kind: None}, {Kind: Error500}}, Then: Fault{Kind: Kill}}
	for i, want := range []Kind{None, Error500, Kill, Kill, Kill} {
		if got := s.at(i).Kind; got != want {
			t.Errorf("at(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestProxyFaults(t *testing.T) {
	p := New(backend(), Schedule{Plan: []Fault{
		{Kind: None},
		{Kind: Error500},
		{Kind: Kill},
		{Kind: Truncate},
		{Kind: Delay, Latency: time.Millisecond},
	}})
	ts := httptest.NewServer(p)
	defer ts.Close()

	// Request 0: untouched.
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("pass-through: status %d body %q", resp.StatusCode, body)
	}
	full := body

	// Request 1: injected 500.
	resp, err = http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("error500: status %d, want 500", resp.StatusCode)
	}

	// Request 2: killed connection — a transport-level error, not a status.
	if resp, err := http.Get(ts.URL); err == nil {
		resp.Body.Close()
		t.Fatalf("kill: got a response (status %d), want a transport error", resp.StatusCode)
	}

	// Request 3: truncated body — headers claim the full length, the read
	// must fail part-way rather than yield a plausible short document.
	resp, err = http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	short, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr == nil && len(short) >= len(full) {
		t.Fatalf("truncate: read %d bytes without error, want a short read of < %d", len(short), len(full))
	}
	if !errors.Is(rerr, io.ErrUnexpectedEOF) && rerr == nil {
		t.Fatalf("truncate: read error %v, want an unexpected EOF", rerr)
	}

	// Request 4: delayed but served.
	resp, err = http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != string(full) {
		t.Fatalf("delay: status %d body %q, want the untouched response", resp.StatusCode, body)
	}

	want := []Kind{None, Error500, Kill, Truncate, Delay}
	got := p.Applied()
	if len(got) != len(want) {
		t.Fatalf("applied %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("applied %v, want %v", got, want)
		}
	}
}

func TestSetScheduleRestartsCounter(t *testing.T) {
	p := New(backend(), Schedule{})
	ts := httptest.NewServer(p)
	defer ts.Close()

	if resp, err := http.Get(ts.URL); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	// Re-arm: the new plan indexes from zero again.
	p.SetSchedule(Schedule{Plan: []Fault{{Kind: None}}, Then: Fault{Kind: Kill}})
	if resp, err := http.Get(ts.URL); err != nil {
		t.Fatalf("request 0 of the new plan should pass: %v", err)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.Get(ts.URL); err == nil {
		resp.Body.Close()
		t.Fatal("request 1 of the new plan should be killed")
	}
}
