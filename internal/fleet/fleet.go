// Package fleet is the robustness substrate of the distributed sweep
// coordinator: a consistent-hash ring routing cells to backends, per-backend
// health tracking with consecutive-failure ejection and probe re-admission,
// and a retry orchestrator with exponential backoff, seeded jitter,
// per-attempt timeouts, and ring-order failover.
//
// The package is deliberately transport-free: callers supply attempt and
// probe callbacks, so the same machinery is unit-testable without a network
// and reusable for any per-key fan-out. It is also deterministic by
// construction — routing is a pure function of the backend name set, backoff
// jitter draws from an explicitly seeded source, and nothing here reads the
// wall clock — so the coordinator's merge order can never depend on fleet
// timing (enforced by preexeclint's determinism analyzer; see
// lint.DeterministicScope).
package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"preexec/internal/obs"
)

// ErrNoBackends reports that every backend was ejected when an attempt
// needed one. Callers treat it as the signal for graceful degradation (the
// sweep coordinator evaluates the cell locally).
var ErrNoBackends = errors.New("fleet: no live backends")

// permanentError marks a failure as the request's own: retrying it on
// another backend cannot change the outcome.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err to tell Do the failure is deterministic for this
// request (a validation rejection, not a backend fault): Do returns it
// immediately without retrying and without charging the backend's health.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err carries a Permanent marker.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// Config are the robustness parameters. The zero value selects the defaults
// noted per field (WithDefaults applies them).
type Config struct {
	// EjectAfter is the consecutive-failure count that ejects a backend
	// from rotation (default 3). An ejected backend receives no cells until
	// a probe succeeds against it.
	EjectAfter int
	// RetryBudget is the total attempt budget per cell, first try included
	// (default 4).
	RetryBudget int
	// BackoffBase is the delay before the first retry; each further retry
	// doubles it up to BackoffMax (defaults 25ms and 2s). The actual delay
	// is jittered uniformly over [d/2, d).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// AttemptTimeout bounds each individual attempt, distinct from
	// whatever deadline governs the sweep as a whole (default 2m).
	AttemptTimeout time.Duration
	// Replicas is the virtual-node count per backend on the hash ring
	// (default 64).
	Replicas int
	// Seed seeds the backoff jitter (default 1). Jitter only spreads retry
	// timing; no routing or result depends on it.
	Seed int64
}

// WithDefaults returns the configuration with every unset field replaced by
// its default.
func (c Config) WithDefaults() Config {
	if c.EjectAfter <= 0 {
		c.EjectAfter = 3
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 4
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 25 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 2 * time.Minute
	}
	if c.Replicas <= 0 {
		c.Replicas = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Pool tracks a fixed set of named backends: their ring placement, health,
// and the fleet-wide retry/failover counters. All methods are safe for
// concurrent use.
type Pool struct {
	cfg   Config
	names []string
	ring  *ring

	mu       sync.Mutex
	rng      *rand.Rand // jitter source, guarded by mu
	backends []backendState

	// The fleet-wide and per-backend counters are obs.Counters so that a
	// metrics registry can render the very objects Stats and Snapshot read —
	// one source of truth, no parallel bookkeeping to drift.
	retries   obs.Counter
	failovers obs.Counter
}

type backendState struct {
	consec  int // consecutive failures since the last success or re-admission
	ejected bool
	load    int // last probed load (queue depth + in-flight), failover preference

	failures     obs.Counter
	successes    obs.Counter
	ejections    obs.Counter
	readmissions obs.Counter
}

// BackendStatus is one backend's health snapshot (the /v1/stats fleet
// section).
type BackendStatus struct {
	Name string `json:"name"`
	Live bool   `json:"live"`
	// ConsecutiveFailures is the current ejection counter; it resets on
	// success or re-admission.
	ConsecutiveFailures int   `json:"consecutive_failures,omitempty"`
	Load                int   `json:"load"`
	Failures            int64 `json:"failures"`
	Successes           int64 `json:"successes"`
	Ejections           int64 `json:"ejections"`
	Readmissions        int64 `json:"readmissions"`
}

// New builds a pool over the named backends.
func New(names []string, cfg Config) *Pool {
	cfg = cfg.WithDefaults()
	return &Pool{
		cfg:      cfg,
		names:    names,
		ring:     newRing(names, cfg.Replicas),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		backends: make([]backendState, len(names)),
	}
}

// Names returns the backend names in pool order.
func (p *Pool) Names() []string { return p.names }

// Order returns key's backend preference order: the home backend first,
// then the ring-walk failover sequence.
func (p *Pool) Order(key string) []int { return p.ring.order(key) }

// Live reports whether backend i is in rotation.
func (p *Pool) Live(i int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return !p.backends[i].ejected
}

// Success records a completed attempt against backend i, resetting its
// ejection counter.
func (p *Pool) Success(i int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	b := &p.backends[i]
	b.successes.Inc()
	b.consec = 0
}

// Failure records a failed attempt (cell or probe) against backend i and
// reports whether this failure ejected it.
func (p *Pool) Failure(i int) (ejected bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	b := &p.backends[i]
	b.failures.Inc()
	b.consec++
	if !b.ejected && b.consec >= p.cfg.EjectAfter {
		b.ejected = true
		b.ejections.Inc()
		return true
	}
	return false
}

// Readmit puts an ejected backend back in rotation (a probe succeeded
// against it). Live backends are unaffected.
func (p *Pool) Readmit(i int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	b := &p.backends[i]
	if b.ejected {
		b.ejected = false
		b.consec = 0
		b.readmissions.Inc()
	}
}

// SetLoad records backend i's probed load for failover preference.
func (p *Pool) SetLoad(i, load int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.backends[i].load = load
}

// Stats returns the fleet-wide retry and failover counters.
func (p *Pool) Stats() (retries, failovers int64) {
	return p.retries.Value(), p.failovers.Value()
}

// Counters exposes the pool's fleet-wide counters for registration in a
// metrics registry: the registry then renders the same objects Stats
// reads, so the two views cannot drift.
func (p *Pool) Counters() (retries, failovers *obs.Counter) {
	return &p.retries, &p.failovers
}

// BackendCounters exposes backend i's health counters for metric
// registration, in the same single-source spirit as Counters.
func (p *Pool) BackendCounters(i int) (failures, successes, ejections, readmissions *obs.Counter) {
	b := &p.backends[i]
	return &b.failures, &b.successes, &b.ejections, &b.readmissions
}

// Snapshot returns every backend's status, in pool order.
func (p *Pool) Snapshot() []BackendStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]BackendStatus, len(p.backends))
	for i := range p.backends {
		b := &p.backends[i]
		out[i] = BackendStatus{
			Name:                p.names[i],
			Live:                !b.ejected,
			ConsecutiveFailures: b.consec,
			Load:                b.load,
			Failures:            b.failures.Value(),
			Successes:           b.successes.Value(),
			Ejections:           b.ejections.Value(),
			Readmissions:        b.readmissions.Value(),
		}
	}
	return out
}

// pick chooses the backend for the next attempt: the home backend while it
// is live (stage-cache locality beats load), otherwise the least-loaded
// live backend from the failover sequence, ring order breaking ties.
func (p *Pool) pick(order []int) (int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(order) == 0 {
		return 0, false
	}
	if !p.backends[order[0]].ejected {
		return order[0], true
	}
	best, ok := -1, false
	for _, b := range order[1:] {
		s := &p.backends[b]
		if s.ejected {
			continue
		}
		if !ok || s.load < p.backends[best].load {
			best, ok = b, true
		}
	}
	return best, ok
}

// jitter spreads d uniformly over [d/2, d).
func (p *Pool) jitter(d time.Duration) time.Duration {
	if d < 2 {
		return d
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return d/2 + time.Duration(p.rng.Int63n(int64(d/2)))
}

// backoff sleeps the jittered exponential delay before retry attempt+1,
// abandoning the wait if ctx ends first.
func (p *Pool) backoff(ctx context.Context, attempt int) error {
	d := p.cfg.BackoffBase
	for i := 1; i < attempt && d < p.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > p.cfg.BackoffMax || d <= 0 {
		d = p.cfg.BackoffMax
	}
	t := time.NewTimer(p.jitter(d))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// DoStats describes how one Do call was served.
type DoStats struct {
	// Attempts counts attempts actually made; Retries is Attempts beyond
	// the first.
	Attempts int
	Retries  int
	// FailedOver reports that the serving backend was not the key's home
	// backend.
	FailedOver bool
	// Backend is the backend that served the call, -1 if none did.
	Backend int
}

// Do runs fn against backends in key's preference order until it succeeds
// or the retry budget is spent. Each attempt runs under its own timeout;
// failed attempts count against the backend's health (ejection included),
// back off exponentially with seeded jitter, and — once the home backend is
// ejected — fail over along the ring walk, preferring idle backends. When
// no backend is live the error matches ErrNoBackends; a cancelled ctx is
// returned as its own error without consuming further budget, and an error
// wrapped by Permanent returns immediately without charging the backend.
func Do[T any](ctx context.Context, p *Pool, key string, fn func(ctx context.Context, backend int) (T, error)) (T, DoStats, error) {
	var zero T
	st := DoStats{Backend: -1}
	order := p.Order(key)
	var lastErr error
	for attempt := 1; attempt <= p.cfg.RetryBudget; attempt++ {
		if err := ctx.Err(); err != nil {
			return zero, st, err
		}
		b, ok := p.pick(order)
		if !ok {
			if lastErr != nil {
				return zero, st, fmt.Errorf("%w for %q after %d attempts (last: %v)", ErrNoBackends, key, st.Attempts, lastErr)
			}
			return zero, st, fmt.Errorf("%w for %q", ErrNoBackends, key)
		}
		st.Attempts++
		if attempt > 1 {
			st.Retries++
			p.retries.Add(1)
		}
		if b != order[0] && !st.FailedOver {
			st.FailedOver = true
			p.failovers.Add(1)
		}
		actx, cancel := context.WithTimeout(ctx, p.cfg.AttemptTimeout)
		v, err := fn(actx, b)
		cancel()
		if err == nil {
			p.Success(b)
			st.Backend = b
			return v, st, nil
		}
		if ctx.Err() != nil {
			// The sweep itself ended; the failure is ours, not the backend's.
			return zero, st, ctx.Err()
		}
		if IsPermanent(err) {
			// Deterministic rejection: no backend can serve it, and the
			// backend that said so is healthy.
			st.Backend = b
			return zero, st, err
		}
		lastErr = fmt.Errorf("backend %s: %w", p.names[b], err)
		p.Failure(b)
		if attempt < p.cfg.RetryBudget {
			if err := p.backoff(ctx, attempt); err != nil {
				return zero, st, err
			}
		}
	}
	return zero, st, fmt.Errorf("fleet: retry budget (%d attempts) spent for %q: %w", p.cfg.RetryBudget, key, lastErr)
}

// ProbeOnce probes every backend once, sequentially: a succeeding probe
// records the reported load and re-admits the backend if it was ejected; a
// failing probe counts against its health like a failed cell.
func (p *Pool) ProbeOnce(ctx context.Context, probe func(ctx context.Context, backend int) (load int, err error)) {
	for i := range p.names {
		if ctx.Err() != nil {
			return
		}
		load, err := probe(ctx, i)
		if err != nil {
			p.Failure(i)
			continue
		}
		p.SetLoad(i, load)
		p.Readmit(i)
	}
}

// ProbeLoop runs ProbeOnce every interval until ctx ends. An interval <= 0
// disables probing (the loop returns immediately).
func (p *Pool) ProbeLoop(ctx context.Context, interval time.Duration, probe func(ctx context.Context, backend int) (load int, err error)) {
	if interval <= 0 {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			p.ProbeOnce(ctx, probe)
		}
	}
}
