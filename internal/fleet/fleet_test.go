package fleet

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// fastCfg keeps retry tests quick: microsecond backoff, tight budgets.
func fastCfg() Config {
	return Config{
		BackoffBase: 10 * time.Microsecond,
		BackoffMax:  50 * time.Microsecond,
	}
}

func TestRingOrderCoversEveryBackendOnce(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	r := newRing(names, 64)
	for _, key := range []string{"", "x", "cell-1", "cell-2", "a-very-long-stage-key"} {
		order := r.order(key)
		if len(order) != len(names) {
			t.Fatalf("order(%q) has %d entries, want %d", key, len(order), len(names))
		}
		seen := make(map[int]bool)
		for _, b := range order {
			if b < 0 || b >= len(names) || seen[b] {
				t.Fatalf("order(%q) = %v is not a permutation", key, order)
			}
			seen[b] = true
		}
	}
}

// TestRingRoutingIsListOrderInsensitive pins the name-based hashing: the
// same key routes to the same named backend no matter how the fleet list was
// ordered, so cache locality survives a reordered -backends flag.
func TestRingRoutingIsListOrderInsensitive(t *testing.T) {
	fwd := []string{"node1:8321", "node2:8321", "node3:8321"}
	rev := []string{"node3:8321", "node2:8321", "node1:8321"}
	rf := newRing(fwd, 64)
	rr := newRing(rev, 64)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("stage-key-%d", i)
		if fwd[rf.order(key)[0]] != rev[rr.order(key)[0]] {
			t.Fatalf("key %q homes to %q forward but %q reversed",
				key, fwd[rf.order(key)[0]], rev[rr.order(key)[0]])
		}
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	names := []string{"a", "b", "c"}
	r := newRing(names, 64)
	counts := make([]int, len(names))
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.order(fmt.Sprintf("key-%d", i))[0]]++
	}
	for b, n := range counts {
		// Loose balance bound: consistent hashing with 64 virtual nodes
		// should not starve or overload any backend by more than ~3x.
		if n < keys/len(names)/3 || n > keys*3/len(names) {
			t.Fatalf("backend %d got %d of %d keys; distribution %v too skewed", b, n, keys, counts)
		}
	}
}

func TestPoolEjectionAndReadmission(t *testing.T) {
	p := New([]string{"a", "b"}, Config{EjectAfter: 3})
	if !p.Live(0) || !p.Live(1) {
		t.Fatal("fresh backends must be live")
	}
	// Two failures, then a success: counter resets, still live.
	p.Failure(0)
	p.Failure(0)
	p.Success(0)
	if ej := p.Failure(0); ej || !p.Live(0) {
		t.Fatal("success must reset the consecutive-failure counter")
	}
	// Three consecutive failures eject exactly once.
	if ej := p.Failure(0); ej {
		t.Fatal("ejected after 2 consecutive failures, want 3")
	}
	if ej := p.Failure(0); !ej {
		t.Fatal("not ejected after 3 consecutive failures")
	}
	if p.Live(0) {
		t.Fatal("backend still live after ejection")
	}
	p.Readmit(0)
	if !p.Live(0) {
		t.Fatal("backend not live after re-admission")
	}
	snap := p.Snapshot()
	if snap[0].Ejections != 1 || snap[0].Readmissions != 1 || snap[0].ConsecutiveFailures != 0 {
		t.Fatalf("snapshot %+v, want 1 ejection, 1 readmission, counter reset", snap[0])
	}
	if snap[1].Failures != 0 || !snap[1].Live {
		t.Fatalf("untouched backend snapshot %+v changed", snap[1])
	}
}

func TestDoFirstAttemptSuccess(t *testing.T) {
	p := New([]string{"a", "b"}, fastCfg())
	v, st, err := Do(context.Background(), p, "k", func(ctx context.Context, b int) (string, error) {
		return "ok", nil
	})
	if err != nil || v != "ok" {
		t.Fatalf("Do = %q, %v", v, err)
	}
	if st.Attempts != 1 || st.Retries != 0 || st.FailedOver {
		t.Fatalf("stats %+v, want one clean attempt", st)
	}
	if r, f := p.Stats(); r != 0 || f != 0 {
		t.Fatalf("pool counters retries=%d failovers=%d, want 0", r, f)
	}
}

// TestDoFailsOverAfterEjection drives the home backend to ejection and
// requires the cell to complete on the failover backend within the default
// budget, with the pool counters recording the retries and the failover.
func TestDoFailsOverAfterEjection(t *testing.T) {
	cfg := fastCfg() // EjectAfter 3, RetryBudget 4 by default
	p := New([]string{"a", "b"}, cfg)
	home := p.Order("k")[0]
	calls := 0
	v, st, err := Do(context.Background(), p, "k", func(ctx context.Context, b int) (int, error) {
		calls++
		if b == home {
			return 0, errors.New("injected")
		}
		return 42, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("Do = %d, %v", v, err)
	}
	if calls != 4 || st.Attempts != 4 || st.Retries != 3 || !st.FailedOver {
		t.Fatalf("stats %+v after %d calls, want eject-after-3 then failover", st, calls)
	}
	if st.Backend == home {
		t.Fatal("served by the ejected home backend")
	}
	if p.Live(home) {
		t.Fatal("home backend still live after 3 consecutive failures")
	}
	if r, f := p.Stats(); r != 3 || f != 1 {
		t.Fatalf("pool counters retries=%d failovers=%d, want 3, 1", r, f)
	}
}

func TestDoAllBackendsDeadIsErrNoBackends(t *testing.T) {
	cfg := fastCfg()
	cfg.EjectAfter = 1
	cfg.RetryBudget = 5
	p := New([]string{"a", "b"}, cfg)
	_, _, err := Do(context.Background(), p, "k", func(ctx context.Context, b int) (int, error) {
		return 0, errors.New("down")
	})
	if !errors.Is(err, ErrNoBackends) {
		t.Fatalf("err = %v, want ErrNoBackends", err)
	}
	// Once ejected everywhere, further calls fail fast without attempts.
	_, st, err := Do(context.Background(), p, "k2", func(ctx context.Context, b int) (int, error) {
		t.Fatal("attempt against a fully-ejected pool")
		return 0, nil
	})
	if !errors.Is(err, ErrNoBackends) || st.Attempts != 0 {
		t.Fatalf("err = %v, attempts = %d, want immediate ErrNoBackends", err, st.Attempts)
	}
}

func TestDoBudgetSpentIsNotErrNoBackends(t *testing.T) {
	cfg := fastCfg()
	cfg.EjectAfter = 100 // stays live, keeps failing
	cfg.RetryBudget = 3
	p := New([]string{"a"}, cfg)
	_, st, err := Do(context.Background(), p, "k", func(ctx context.Context, b int) (int, error) {
		return 0, errors.New("flaky")
	})
	if err == nil || errors.Is(err, ErrNoBackends) {
		t.Fatalf("err = %v, want a budget-spent error distinct from ErrNoBackends", err)
	}
	if st.Attempts != 3 {
		t.Fatalf("attempts = %d, want the full budget of 3", st.Attempts)
	}
}

func TestDoPermanentErrorReturnsImmediately(t *testing.T) {
	p := New([]string{"a", "b"}, fastCfg())
	cause := errors.New("cell rejected")
	calls := 0
	_, st, err := Do(context.Background(), p, "k", func(ctx context.Context, b int) (int, error) {
		calls++
		return 0, Permanent(cause)
	})
	if !IsPermanent(err) || !errors.Is(err, cause) {
		t.Fatalf("err = %v, want the permanent cause", err)
	}
	if calls != 1 || st.Attempts != 1 {
		t.Fatalf("%d calls for a permanent error, want 1", calls)
	}
	// A permanent error is the request's own fault, not the backend's.
	if snap := p.Snapshot(); snap[p.Order("k")[0]].Failures != 0 {
		t.Fatalf("permanent error charged the backend: %+v", snap)
	}
}

func TestDoHonorsCancellation(t *testing.T) {
	p := New([]string{"a"}, fastCfg())
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, _, err := Do(ctx, p, "k", func(ctx context.Context, b int) (int, error) {
		<-ctx.Done()
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Cancellation is not the backend's failure.
	if snap := p.Snapshot(); snap[0].Failures != 0 {
		t.Fatalf("cancellation charged the backend: %+v", snap)
	}
}

func TestProbeOnceReadmitsAndRecordsLoad(t *testing.T) {
	cfg := fastCfg()
	cfg.EjectAfter = 2
	p := New([]string{"a", "b"}, cfg)
	p.Failure(0)
	p.Failure(0)
	if p.Live(0) {
		t.Fatal("backend 0 should be ejected")
	}
	p.ProbeOnce(context.Background(), func(ctx context.Context, b int) (int, error) {
		return 7 + b, nil
	})
	if !p.Live(0) {
		t.Fatal("successful probe did not re-admit backend 0")
	}
	snap := p.Snapshot()
	if snap[0].Load != 7 || snap[1].Load != 8 {
		t.Fatalf("loads %d, %d, want 7, 8", snap[0].Load, snap[1].Load)
	}
	// Failing probes count toward ejection like failed cells.
	p.ProbeOnce(context.Background(), func(ctx context.Context, b int) (int, error) {
		return 0, errors.New("unreachable")
	})
	p.ProbeOnce(context.Background(), func(ctx context.Context, b int) (int, error) {
		return 0, errors.New("unreachable")
	})
	if p.Live(0) || p.Live(1) {
		t.Fatal("two failed probes with EjectAfter=2 must eject both backends")
	}
}

// TestDoPrefersIdleFailover pins the failover choice: with the home backend
// ejected, the least-loaded live candidate serves the cell.
func TestDoPrefersIdleFailover(t *testing.T) {
	p := New([]string{"a", "b", "c"}, Config{EjectAfter: 1, BackoffBase: time.Microsecond})
	order := p.Order("k")
	p.Failure(order[0]) // eject the home backend
	p.SetLoad(order[1], 9)
	p.SetLoad(order[2], 2)
	_, st, err := Do(context.Background(), p, "k", func(ctx context.Context, b int) (int, error) {
		return b, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Backend != order[2] {
		t.Fatalf("served by backend %d (load 9 candidate %d, load 2 candidate %d), want the idle one",
			st.Backend, order[1], order[2])
	}
}
