package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring: every backend occupies replicas points on
// a 64-bit circle, and a key's preference order walks the circle clockwise
// from the key's hash, listing each distinct backend once. Keys therefore
// spread evenly, a key maps to the same backend as long as that backend is
// in the fleet (stage-cache locality), and the walk's tail is the key's
// deterministic failover order.
type ring struct {
	points []ringPoint
	n      int // distinct backends
}

type ringPoint struct {
	hash    uint64
	backend int
}

// newRing places each of the n named backends at replicas points, hashed by
// name (not index) so the circle — and therefore every key's routing — is
// insensitive to the order the fleet was listed in.
func newRing(names []string, replicas int) *ring {
	r := &ring{points: make([]ringPoint, 0, len(names)*replicas), n: len(names)}
	for b, name := range names {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(name + "#" + strconv.Itoa(v)), backend: b})
		}
	}
	// Ties (hash collisions) break by backend index so the walk order is a
	// pure function of the name set.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].backend < r.points[j].backend
	})
	return r
}

// order returns every backend exactly once, in the clockwise walk order
// from key's hash: order[0] is the key's home backend, the rest its
// failover sequence.
func (r *ring) order(key string) []int {
	out := make([]int, 0, r.n)
	if r.n == 0 {
		return out
	}
	seen := make([]bool, r.n)
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; len(out) < r.n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			out = append(out, p.backend)
		}
	}
	return out
}

// hash64 is FNV-1a with a splitmix64 finalizer. Stage keys share long
// prefixes and differ in a few trailing characters, where raw FNV gives the
// high bits almost no avalanche — keys would cluster into narrow arcs of the
// circle and starve backends. The finalizer mixes every input bit into every
// output bit while staying a pure function of the string, so routing is
// reproducible across processes (unlike e.g. the seeded hash/maphash).
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
