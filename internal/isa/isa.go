// Package isa defines PRX, a small 64-bit load/store RISC instruction set
// used by the whole reproduction as the substrate ISA (standing in for the
// Alpha AXP ISA used by the paper's SimpleScalar toolchain).
//
// PRX has 32 architectural registers (R0 hardwired to zero), word-granular
// (8-byte) loads and stores, the usual two-source ALU operations, immediate
// forms, conditional branches, and unconditional jumps. Program counters are
// instruction indices, not byte addresses; this keeps the tooling (slicing,
// slice trees, p-thread bodies) simple without losing anything the selection
// framework cares about.
//
// P-thread bodies reuse isa.Inst but may name registers up to PtRegs-1; the
// extra registers (32..PtRegs-1) are temporaries introduced by p-thread
// merging, which must rename duplicated computations (paper §3.3).
package isa

import "fmt"

// Reg is an architectural register number.
type Reg uint8

// Register file sizes.
const (
	// NumRegs is the number of architectural registers visible to programs.
	NumRegs = 32
	// PtRegs is the size of a p-thread context register file. The extra
	// registers are assembler temporaries for merged p-threads.
	PtRegs = 64
	// Zero is the hardwired zero register.
	Zero Reg = 0
	// RA is the conventional return-address register.
	RA Reg = 31
)

// Op is a PRX opcode.
type Op uint8

// Opcodes. The set is intentionally minimal: everything the synthetic
// workloads and the p-thread optimizer need, nothing more.
const (
	NOP Op = iota

	// Three-register ALU.
	ADD
	SUB
	MUL
	DIV // integer divide; divide-by-zero yields 0 (workloads avoid it)
	AND
	OR
	XOR
	SLL
	SRL
	SRA
	SLT // set-less-than (signed)

	// Register-immediate ALU.
	ADDI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SRAI
	SLTI

	// MOV copies Rs1 into Rd. It is its own opcode (rather than ADDI 0) so
	// the p-thread optimizer's register-move elimination is observable.
	MOV
	// LI loads a 64-bit immediate into Rd.
	LI

	// Memory: 8-byte word load and store. Effective address = Rs1 + Imm.
	LD
	ST

	// Conditional branches compare Rs1 and Rs2 and jump to Target.
	BEQ
	BNE
	BLT
	BGE

	// Unconditional control.
	J   // jump to Target
	JAL // jump and link: Rd <- PC+1, jump to Target
	JR  // jump to register: PC <- Rs1

	// HALT stops the program.
	HALT

	numOps
)

var opNames = [numOps]string{
	NOP: "nop", ADD: "add", SUB: "sub", MUL: "mul", DIV: "div",
	AND: "and", OR: "or", XOR: "xor", SLL: "sll", SRL: "srl", SRA: "sra",
	SLT: "slt", ADDI: "addi", ANDI: "andi", ORI: "ori", XORI: "xori",
	SLLI: "slli", SRLI: "srli", SRAI: "srai", SLTI: "slti",
	MOV: "mov", LI: "li", LD: "ld", ST: "st",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge",
	J: "j", JAL: "jal", JR: "jr", HALT: "halt",
}

// String returns the mnemonic for op.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Class is a coarse functional classification of an opcode, used by the
// timing model (latencies, resource binding) and the selection framework
// (dataflow-height latencies).
type Class uint8

// Instruction classes.
const (
	ClassNop Class = iota
	ClassALU
	ClassMul
	ClassLoad
	ClassStore
	ClassBranch // conditional branches
	ClassJump   // unconditional jumps
	ClassHalt
)

// ClassOf returns the class of op.
func ClassOf(op Op) Class {
	switch op {
	case NOP:
		return ClassNop
	case MUL, DIV:
		return ClassMul
	case LD:
		return ClassLoad
	case ST:
		return ClassStore
	case BEQ, BNE, BLT, BGE:
		return ClassBranch
	case J, JAL, JR:
		return ClassJump
	case HALT:
		return ClassHalt
	default:
		return ClassALU
	}
}

// Inst is a single PRX instruction. Branch and jump targets are resolved
// instruction indices (see package program for the label-based builder).
type Inst struct {
	Op     Op
	Rd     Reg   // destination register (ALU, LI, MOV, LD, JAL)
	Rs1    Reg   // first source (also base register for LD/ST, target for JR)
	Rs2    Reg   // second source (also store-data register for ST)
	Imm    int64 // immediate / address displacement
	Target int   // branch or jump target (instruction index)
}

// HasDest reports whether the instruction writes a destination register.
func (in Inst) HasDest() bool {
	switch ClassOf(in.Op) {
	case ClassALU, ClassMul, ClassLoad:
		return in.Rd != Zero
	case ClassJump:
		return in.Op == JAL && in.Rd != Zero
	default:
		return false
	}
}

// Sources returns the source registers read by the instruction and how many
// are meaningful (0, 1 or 2). R0 reads are reported like any other: callers
// that care about dataflow can skip R0 themselves (its value is constant).
func (in Inst) Sources() (srcs [2]Reg, n int) {
	switch in.Op {
	case NOP, LI, J, JAL, HALT:
		return srcs, 0
	case ADD, SUB, MUL, DIV, AND, OR, XOR, SLL, SRL, SRA, SLT:
		srcs[0], srcs[1] = in.Rs1, in.Rs2
		return srcs, 2
	case ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI, MOV, LD, JR:
		srcs[0] = in.Rs1
		return srcs, 1
	case ST:
		srcs[0], srcs[1] = in.Rs1, in.Rs2 // base, data
		return srcs, 2
	case BEQ, BNE, BLT, BGE:
		srcs[0], srcs[1] = in.Rs1, in.Rs2
		return srcs, 2
	default:
		return srcs, 0
	}
}

// IsMem reports whether the instruction accesses memory.
func (in Inst) IsMem() bool { return in.Op == LD || in.Op == ST }

// IsBranch reports whether the instruction is a conditional branch.
func (in Inst) IsBranch() bool { return ClassOf(in.Op) == ClassBranch }

// IsControl reports whether the instruction can change the PC non-sequentially.
func (in Inst) IsControl() bool {
	c := ClassOf(in.Op)
	return c == ClassBranch || c == ClassJump
}

// String disassembles the instruction.
func (in Inst) String() string {
	switch in.Op {
	case NOP, HALT:
		return in.Op.String()
	case ADD, SUB, MUL, DIV, AND, OR, XOR, SLL, SRL, SRA, SLT:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs1, in.Rs2)
	case ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case MOV:
		return fmt.Sprintf("mov r%d, r%d", in.Rd, in.Rs1)
	case LI:
		return fmt.Sprintf("li r%d, %d", in.Rd, in.Imm)
	case LD:
		return fmt.Sprintf("ld r%d, %d(r%d)", in.Rd, in.Imm, in.Rs1)
	case ST:
		return fmt.Sprintf("st r%d, %d(r%d)", in.Rs2, in.Imm, in.Rs1)
	case BEQ, BNE, BLT, BGE:
		return fmt.Sprintf("%s r%d, r%d, #%d", in.Op, in.Rs1, in.Rs2, in.Target)
	case J:
		return fmt.Sprintf("j #%d", in.Target)
	case JAL:
		return fmt.Sprintf("jal r%d, #%d", in.Rd, in.Target)
	case JR:
		return fmt.Sprintf("jr r%d", in.Rs1)
	default:
		return in.Op.String()
	}
}

// Latency returns the execution latency, in cycles, used by both the SCDH
// model (with unit ALU latency) and the timing simulator's functional units.
// Cache effects for loads are added by the memory system, not here: the value
// returned for LD is address-generation only.
func Latency(op Op) int {
	switch ClassOf(op) {
	case ClassMul:
		return 3
	case ClassLoad, ClassStore:
		return 1 // address generation; memory latency is added separately
	default:
		return 1
	}
}
