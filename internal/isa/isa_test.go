package isa

import (
	"strings"
	"testing"
)

func TestOpString(t *testing.T) {
	cases := []struct {
		op   Op
		want string
	}{
		{ADD, "add"}, {SUB, "sub"}, {LD, "ld"}, {ST, "st"},
		{BEQ, "beq"}, {HALT, "halt"}, {NOP, "nop"}, {LI, "li"},
		{MOV, "mov"}, {J, "j"}, {JAL, "jal"}, {JR, "jr"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("Op(%d).String() = %q, want %q", c.op, got, c.want)
		}
	}
}

func TestOpStringUnknown(t *testing.T) {
	if got := Op(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown op string = %q, want it to mention 200", got)
	}
}

func TestClassOf(t *testing.T) {
	cases := []struct {
		op   Op
		want Class
	}{
		{NOP, ClassNop},
		{ADD, ClassALU}, {ADDI, ClassALU}, {SLT, ClassALU}, {MOV, ClassALU},
		{LI, ClassALU},
		{MUL, ClassMul}, {DIV, ClassMul},
		{LD, ClassLoad}, {ST, ClassStore},
		{BEQ, ClassBranch}, {BNE, ClassBranch}, {BLT, ClassBranch}, {BGE, ClassBranch},
		{J, ClassJump}, {JAL, ClassJump}, {JR, ClassJump},
		{HALT, ClassHalt},
	}
	for _, c := range cases {
		if got := ClassOf(c.op); got != c.want {
			t.Errorf("ClassOf(%v) = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestHasDest(t *testing.T) {
	cases := []struct {
		in   Inst
		want bool
	}{
		{Inst{Op: ADD, Rd: 3}, true},
		{Inst{Op: ADD, Rd: Zero}, false}, // writes to R0 are discarded
		{Inst{Op: LD, Rd: 5}, true},
		{Inst{Op: ST, Rs2: 5}, false},
		{Inst{Op: BEQ}, false},
		{Inst{Op: J}, false},
		{Inst{Op: JAL, Rd: RA}, true},
		{Inst{Op: JAL, Rd: Zero}, false},
		{Inst{Op: HALT}, false},
		{Inst{Op: LI, Rd: 7}, true},
		{Inst{Op: MUL, Rd: 9}, true},
	}
	for _, c := range cases {
		if got := c.in.HasDest(); got != c.want {
			t.Errorf("%v HasDest = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSources(t *testing.T) {
	cases := []struct {
		in    Inst
		wantN int
		want  [2]Reg
	}{
		{Inst{Op: ADD, Rs1: 1, Rs2: 2}, 2, [2]Reg{1, 2}},
		{Inst{Op: ADDI, Rs1: 4}, 1, [2]Reg{4, 0}},
		{Inst{Op: LD, Rs1: 6}, 1, [2]Reg{6, 0}},
		{Inst{Op: ST, Rs1: 6, Rs2: 7}, 2, [2]Reg{6, 7}},
		{Inst{Op: BEQ, Rs1: 8, Rs2: 9}, 2, [2]Reg{8, 9}},
		{Inst{Op: LI}, 0, [2]Reg{}},
		{Inst{Op: J}, 0, [2]Reg{}},
		{Inst{Op: JR, Rs1: 31}, 1, [2]Reg{31, 0}},
		{Inst{Op: NOP}, 0, [2]Reg{}},
		{Inst{Op: HALT}, 0, [2]Reg{}},
		{Inst{Op: MOV, Rs1: 12}, 1, [2]Reg{12, 0}},
	}
	for _, c := range cases {
		srcs, n := c.in.Sources()
		if n != c.wantN || srcs != c.want {
			t.Errorf("%v Sources = %v,%d want %v,%d", c.in, srcs, n, c.want, c.wantN)
		}
	}
}

func TestPredicates(t *testing.T) {
	if !(Inst{Op: LD}).IsMem() || !(Inst{Op: ST}).IsMem() {
		t.Error("LD/ST should be memory instructions")
	}
	if (Inst{Op: ADD}).IsMem() {
		t.Error("ADD should not be a memory instruction")
	}
	if !(Inst{Op: BNE}).IsBranch() {
		t.Error("BNE should be a branch")
	}
	if (Inst{Op: J}).IsBranch() {
		t.Error("J is a jump, not a conditional branch")
	}
	for _, op := range []Op{BEQ, BNE, BLT, BGE, J, JAL, JR} {
		if !(Inst{Op: op}).IsControl() {
			t.Errorf("%v should be control", op)
		}
	}
	if (Inst{Op: ADD}).IsControl() {
		t.Error("ADD should not be control")
	}
}

func TestDisassembly(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Inst{Op: ADDI, Rd: 1, Rs1: 2, Imm: -4}, "addi r1, r2, -4"},
		{Inst{Op: LD, Rd: 8, Rs1: 7, Imm: 16}, "ld r8, 16(r7)"},
		{Inst{Op: ST, Rs1: 7, Rs2: 8, Imm: 0}, "st r8, 0(r7)"},
		{Inst{Op: BEQ, Rs1: 1, Rs2: 2, Target: 11}, "beq r1, r2, #11"},
		{Inst{Op: J, Target: 0}, "j #0"},
		{Inst{Op: JAL, Rd: 31, Target: 5}, "jal r31, #5"},
		{Inst{Op: JR, Rs1: 31}, "jr r31"},
		{Inst{Op: LI, Rd: 4, Imm: 99}, "li r4, 99"},
		{Inst{Op: MOV, Rd: 4, Rs1: 5}, "mov r4, r5"},
		{Inst{Op: HALT}, "halt"},
		{Inst{Op: NOP}, "nop"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestLatency(t *testing.T) {
	if Latency(ADD) != 1 {
		t.Errorf("ALU latency = %d, want 1", Latency(ADD))
	}
	if Latency(MUL) != 3 {
		t.Errorf("MUL latency = %d, want 3", Latency(MUL))
	}
	if Latency(LD) != 1 {
		t.Errorf("LD (agen) latency = %d, want 1", Latency(LD))
	}
	if Latency(BEQ) != 1 {
		t.Errorf("branch latency = %d, want 1", Latency(BEQ))
	}
}
