package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"preexec/internal/lint/analysis"
)

// AllocBudget turns the PR 2 zero-alloc property of the timing hot path into
// a CI-failing static gate: it drives the compiler's escape analysis
// (`go build -gcflags='-m -m'`) over the budgeted package and diffs the
// heap-escape diagnostics attributed to the hot-path functions against the
// checked-in budget (internal/lint/testdata/allocbudget.json). A new escape
// in a hot function fails immediately — before any benchmark runs — instead
// of surfacing later as allocs/op drift in benchsnap. Amortized allocations
// the hot path legitimately performs (arena chunk growth, ring doubling) are
// recorded in the budget; `preexeclint -update-allocbudget` regenerates the
// recorded escapes after an intentional change.
//
// Attribution uses the package's ASTs: each diagnostic's (file, line) is
// mapped to its innermost enclosing function declaration, so inlined
// allocations — which the compiler reports at the inlining site — charge the
// hot function that actually pays them at run time.
var AllocBudget = &analysis.Analyzer{
	Name: "allocbudget", // keep in sync with the Category literals below

	Doc: "diffs compiler escape-analysis diagnostics for the timing hot path " +
		"against the checked-in budget, failing on any new heap escape in a " +
		"hot function",
	RunModule: runAllocBudget,
}

// AllocBudgetPath locates the budget file relative to the module root.
const AllocBudgetPath = "internal/lint/testdata/allocbudget.json"

// Budget is the checked-in allocation budget.
type Budget struct {
	// Package is the budgeted import path.
	Package string `json:"package"`
	// Gcflags documents the escape-analysis invocation the budget was
	// generated with (informational).
	Gcflags string `json:"gcflags"`
	// Hot lists the hot-path functions the gate covers, named as
	// (*types.Func).FullName with the package path stripped — e.g.
	// "(*Sim).fetch", "busWait".
	Hot []string `json:"hot"`
	// Allowed maps each hot function to its budgeted escape messages,
	// sorted; a message occurring N times at distinct sites appears N times.
	Allowed map[string][]string `json:"allowed"`
}

// LoadBudget reads the budget file.
func LoadBudget(path string) (*Budget, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Budget
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", path, err)
	}
	if b.Allowed == nil {
		b.Allowed = map[string][]string{}
	}
	return &b, nil
}

// Escape is one heap-escape diagnostic attributed to a function.
type Escape struct {
	File    string // base name, e.g. "sim.go"
	Line    int
	Col     int
	Message string // e.g. "make([]uop, 256) escapes to heap"
	Func    string // enclosing function, "" for package scope
}

// escapeRe matches one compiler escape diagnostic. The path prefix varies
// with the directory the (possibly cached and replayed) compile ran from, so
// only the base file name is kept; at -m -m the message carries a trailing
// colon introducing the flow explanation, which is stripped.
var escapeRe = regexp.MustCompile(`^(.*[/\\])?([^/\\:]+\.go):(\d+):(\d+): (.*(?:escapes to heap|moved to heap.*?)):?$`)

// CollectEscapes runs the compiler's escape analysis over the package in dir
// and returns every heap-escape diagnostic, attributed to its enclosing
// function via the package's ASTs (fset/files from the lint loader). The go
// command replays cached compiler output, so repeated runs are cheap and
// deterministic.
func CollectEscapes(dir string, fset *token.FileSet, files []*ast.File) ([]Escape, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m -m", ".")
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m -m in %s: %v\n%s", dir, err, out.String())
	}
	index := newFuncIndex(fset, files)
	seen := map[Escape]bool{}
	var escapes []Escape
	for _, line := range strings.Split(out.String(), "\n") {
		m := escapeRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		e := Escape{File: m[2], Message: m[5]}
		fmt.Sscanf(m[3], "%d", &e.Line)
		fmt.Sscanf(m[4], "%d", &e.Col)
		e.Func = index.funcAt(e.File, e.Line)
		if !seen[e] { // -m -m can restate a site; count each site once
			seen[e] = true
			escapes = append(escapes, e)
		}
	}
	sort.Slice(escapes, func(i, j int) bool {
		if escapes[i].File != escapes[j].File {
			return escapes[i].File < escapes[j].File
		}
		if escapes[i].Line != escapes[j].Line {
			return escapes[i].Line < escapes[j].Line
		}
		return escapes[i].Col < escapes[j].Col
	})
	return escapes, nil
}

// funcIndex maps (file base name, line) to the enclosing function name.
type funcIndex struct {
	spans map[string][]funcSpan
}

type funcSpan struct {
	name       string
	start, end int // line range, inclusive
}

func newFuncIndex(fset *token.FileSet, files []*ast.File) *funcIndex {
	idx := &funcIndex{spans: map[string][]funcSpan{}}
	for _, f := range files {
		pos := fset.Position(f.Pos())
		base := filepath.Base(pos.Filename)
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			idx.spans[base] = append(idx.spans[base], funcSpan{
				name:  declName(fd),
				start: fset.Position(fd.Pos()).Line,
				end:   fset.Position(fd.End()).Line,
			})
		}
	}
	return idx
}

func (x *funcIndex) funcAt(file string, line int) string {
	for _, s := range x.spans[file] {
		if line >= s.start && line <= s.end {
			return s.name
		}
	}
	return ""
}

// declName renders a function declaration the way the budget names it:
// "(*Sim).fetch" for pointer-receiver methods, "(Config).withDefaults" for
// value receivers, "busWait" for package functions.
func declName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	var b strings.Builder
	b.WriteString("(")
	if star, ok := t.(*ast.StarExpr); ok {
		b.WriteString("*")
		t = star.X
	}
	switch e := t.(type) {
	case *ast.Ident:
		b.WriteString(e.Name)
	case *ast.IndexExpr: // generic receiver
		if id, ok := e.X.(*ast.Ident); ok {
			b.WriteString(id.Name)
		}
	case *ast.IndexListExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			b.WriteString(id.Name)
		}
	}
	b.WriteString(").")
	b.WriteString(fd.Name.Name)
	return b.String()
}

// CheckBudget diffs the collected escapes against the budget and returns the
// findings: a new escape in a hot function, a budgeted escape that no longer
// occurs (stale budget), or a hot function that no longer exists. Findings
// needing a position get one through lookupPos (nil = token.NoPos).
func CheckBudget(b *Budget, escapes []Escape, lookupPos func(file string, line int) token.Pos) []analysis.Diagnostic {
	hot := map[string]bool{}
	for _, h := range b.Hot {
		hot[h] = true
	}
	pos := func(file string, line int) token.Pos {
		if lookupPos == nil {
			return token.NoPos
		}
		return lookupPos(file, line)
	}

	// Group the hot functions' escapes.
	got := map[string][]string{}
	seenFunc := map[string]bool{}
	var diags []analysis.Diagnostic
	for _, e := range escapes {
		if e.Func != "" {
			seenFunc[e.Func] = true
		}
		if !hot[e.Func] {
			continue
		}
		got[e.Func] = append(got[e.Func], e.Message)
		if !budgetCovers(b.Allowed[e.Func], got[e.Func], e.Message) {
			diags = append(diags, analysis.Diagnostic{
				Pos:      pos(e.File, e.Line),
				Category: "allocbudget",
				Message: fmt.Sprintf("heap escape in hot function %s: %s — over the allocation budget; "+
					"the timing hot path must stay allocation-free (remove it, or run `preexeclint -update-allocbudget` and justify the new entry in review)", e.Func, e.Message),
			})
		}
	}

	// Stale budget entries: budgeted escapes that no longer occur keep the
	// gate honest — a silently shrunk budget would mask a later regression
	// of the same site.
	for _, h := range b.Hot {
		want := b.Allowed[h]
		have := append([]string(nil), got[h]...)
		sort.Strings(have)
		for _, msg := range missingFrom(want, have) {
			diags = append(diags, analysis.Diagnostic{
				Pos:      token.NoPos,
				Category: "allocbudget",
				Message: fmt.Sprintf("stale allocation budget: hot function %s no longer reports %q; "+
					"run `preexeclint -update-allocbudget` to record the improvement", h, msg),
			})
		}
	}
	return diags
}

// budgetCovers reports whether the budget still covers msg given that
// gotSoFar (which ends with msg) occurrences of the hot function's escapes
// have been seen — i.e. the count of msg seen so far does not exceed its
// budgeted count.
func budgetCovers(allowed, gotSoFar []string, msg string) bool {
	budgeted, seen := 0, 0
	for _, m := range allowed {
		if m == msg {
			budgeted++
		}
	}
	for _, m := range gotSoFar {
		if m == msg {
			seen++
		}
	}
	return seen <= budgeted
}

// missingFrom returns the elements of want (a multiset) not present in have
// (also a multiset, sorted).
func missingFrom(want, have []string) []string {
	remaining := append([]string(nil), have...)
	var missing []string
	for _, w := range want {
		found := false
		for i, h := range remaining {
			if h == w {
				remaining = append(remaining[:i], remaining[i+1:]...)
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, w)
		}
	}
	return missing
}

// UpdateBudget recomputes the Allowed map for b's hot list from escapes,
// preserving the hot list itself, and writes the result to path.
func UpdateBudget(path string, b *Budget, escapes []Escape) error {
	hot := map[string]bool{}
	for _, h := range b.Hot {
		hot[h] = true
	}
	allowed := map[string][]string{}
	for _, e := range escapes {
		if hot[e.Func] {
			allowed[e.Func] = append(allowed[e.Func], e.Message)
		}
	}
	for _, msgs := range allowed {
		sort.Strings(msgs)
	}
	b.Allowed = allowed
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// ModuleRoot walks up from dir to the directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

func runAllocBudget(pass *analysis.ModulePass) (any, error) {
	var unit *analysis.PackageUnit
	for _, u := range pass.Packages {
		if u.Path == "preexec/internal/timing" {
			unit = u
			break
		}
	}
	if unit == nil {
		// The budgeted package is not among the analyzed patterns; nothing
		// to gate.
		return nil, nil
	}
	root, err := ModuleRoot(unit.Dir)
	if err != nil {
		return nil, err
	}
	budget, err := LoadBudget(filepath.Join(root, AllocBudgetPath))
	if err != nil {
		return nil, fmt.Errorf("allocbudget: %v (regenerate with `preexeclint -update-allocbudget`)", err)
	}
	if budget.Package != unit.Path {
		return nil, fmt.Errorf("allocbudget: budget covers %q but the loaded package is %q", budget.Package, unit.Path)
	}
	escapes, err := CollectEscapes(unit.Dir, pass.Fset, unit.Files)
	if err != nil {
		return nil, err
	}
	lookup := posLookup(pass.Fset, unit.Files)
	for _, d := range CheckBudget(budget, escapes, lookup) {
		if d.Pos == token.NoPos {
			// Anchor position-less findings (stale entries) on the package's
			// first file so drivers can render file:line.
			d.Pos = unit.Files[0].Pos()
		}
		pass.Report(d)
	}
	return nil, nil
}

// posLookup resolves (base file name, line) to a token.Pos within files.
func posLookup(fset *token.FileSet, files []*ast.File) func(string, int) token.Pos {
	byBase := map[string]*token.File{}
	for _, f := range files {
		tf := fset.File(f.Pos())
		if tf != nil {
			byBase[filepath.Base(tf.Name())] = tf
		}
	}
	return func(file string, line int) token.Pos {
		tf := byBase[file]
		if tf == nil || line < 1 || line > tf.LineCount() {
			return token.NoPos
		}
		return tf.LineStart(line)
	}
}
