package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"preexec/internal/lint"
	"preexec/internal/lint/load"
)

// budgetFixture is a small synthetic budget for the pure CheckBudget tests.
func budgetFixture() *lint.Budget {
	return &lint.Budget{
		Package: "example",
		Hot:     []string{"(*Sim).fetch", "busWait"},
		Allowed: map[string][]string{
			"(*Sim).fetch": {"make([]int, n) escapes to heap"},
		},
	}
}

func TestCheckBudgetInBudget(t *testing.T) {
	escapes := []lint.Escape{
		{File: "sim.go", Line: 10, Message: "make([]int, n) escapes to heap", Func: "(*Sim).fetch"},
	}
	if diags := lint.CheckBudget(budgetFixture(), escapes, nil); len(diags) != 0 {
		t.Fatalf("budgeted escape reported: %v", diags)
	}
}

func TestCheckBudgetNewEscape(t *testing.T) {
	escapes := []lint.Escape{
		{File: "sim.go", Line: 10, Message: "make([]int, n) escapes to heap", Func: "(*Sim).fetch"},
		{File: "sim.go", Line: 20, Message: "&x escapes to heap", Func: "(*Sim).fetch"},
	}
	diags := lint.CheckBudget(budgetFixture(), escapes, nil)
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "heap escape in hot function (*Sim).fetch: &x escapes to heap") {
		t.Fatalf("unexpected message: %s", diags[0].Message)
	}
}

// TestCheckBudgetMultiset: a message budgeted once but occurring twice is
// over budget on the second occurrence.
func TestCheckBudgetMultiset(t *testing.T) {
	escapes := []lint.Escape{
		{File: "sim.go", Line: 10, Message: "make([]int, n) escapes to heap", Func: "(*Sim).fetch"},
		{File: "sim.go", Line: 30, Message: "make([]int, n) escapes to heap", Func: "(*Sim).fetch"},
	}
	diags := lint.CheckBudget(budgetFixture(), escapes, nil)
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1 (second occurrence over budget): %v", len(diags), diags)
	}
}

func TestCheckBudgetColdFunctionIgnored(t *testing.T) {
	b := budgetFixture()
	escapes := []lint.Escape{
		{File: "sim.go", Line: 10, Message: "make([]int, n) escapes to heap", Func: "(*Sim).fetch"},
		{File: "cold.go", Line: 5, Message: "new(big) escapes to heap", Func: "setup"},
		{File: "cold.go", Line: 9, Message: "x escapes to heap", Func: ""},
	}
	if diags := lint.CheckBudget(b, escapes, nil); len(diags) != 0 {
		t.Fatalf("cold-function escapes reported: %v", diags)
	}
}

// TestCheckBudgetStale: a budgeted escape that no longer occurs is reported,
// so the budget cannot silently overshoot what the code does.
func TestCheckBudgetStale(t *testing.T) {
	diags := lint.CheckBudget(budgetFixture(), nil, nil)
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1 stale entry: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "stale allocation budget") ||
		!strings.Contains(diags[0].Message, "(*Sim).fetch") {
		t.Fatalf("unexpected message: %s", diags[0].Message)
	}
}

// TestAllocBudgetTimingPackage is the integration half: it runs the real
// escape-analysis collection over internal/timing and checks both that the
// known amortized allocations are attributed to the right hot functions and
// that the checked-in budget is exactly in sync with the code — the same
// check CI's allocbudget analyzer performs.
func TestAllocBudgetTimingPackage(t *testing.T) {
	root, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, fset, err := load.Module(root, "./internal/timing")
	if err != nil {
		t.Fatal(err)
	}
	var pkg *load.Package
	for _, p := range pkgs {
		if p.Path == "preexec/internal/timing" {
			pkg = p
		}
	}
	if pkg == nil {
		t.Fatal("internal/timing not loaded")
	}

	escapes, err := lint.CollectEscapes(pkg.Dir, fset, pkg.Files)
	if err != nil {
		t.Fatal(err)
	}
	// The uop arena's chunk growth is the canonical amortized allocation:
	// it must be present and attributed to (*uopArena).get.
	found := false
	for _, e := range escapes {
		if e.Func == "(*uopArena).get" && e.Message == "make([]uop, 256) escapes to heap" {
			found = true
		}
	}
	if !found {
		t.Fatalf("arena chunk allocation not attributed to (*uopArena).get; escapes: %+v", escapes)
	}

	budget, err := lint.LoadBudget(filepath.Join(root, lint.AllocBudgetPath))
	if err != nil {
		t.Fatal(err)
	}
	if diags := lint.CheckBudget(budget, escapes, nil); len(diags) != 0 {
		msgs := make([]string, len(diags))
		for i, d := range diags {
			msgs[i] = d.Message
		}
		t.Fatalf("checked-in budget out of sync with internal/timing:\n%s\n(run `preexeclint -update-allocbudget` after an intentional change)",
			strings.Join(msgs, "\n"))
	}
}
