// Package analysis is a minimal, dependency-free analogue of
// golang.org/x/tools/go/analysis: just enough structure — an Analyzer with a
// Run function over a type-checked Pass — for the preexeclint suite to be
// written in the standard modular-checker shape. The container this repo
// builds in has no module proxy access, so vendoring x/tools is not an
// option; the API mirrors the upstream names (Analyzer, Pass, Diagnostic,
// Pass.Reportf) so the analyzers would port to the real framework by
// changing one import.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore <name> suppression directives. It must look like a Go
	// identifier.
	Name string
	// Doc is the one-paragraph description printed by preexeclint -list:
	// the invariant the analyzer enforces and why the repo cares.
	Doc string
	// Run executes the check over one package and reports findings through
	// pass.Report. The returned value is unused (kept for upstream
	// signature compatibility).
	Run func(pass *Pass) (any, error)
}

// Pass is one (analyzer, package) execution: the parsed files, the
// type-checker's results, and the diagnostic sink.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report receives each finding. Drivers install their own sink
	// (collecting, filtering suppressed lines, formatting).
	Report func(Diagnostic)
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Category string // the reporting analyzer's name
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Category: p.Analyzer.Name})
}

// Inspect walks every file of the pass in depth-first order, calling fn for
// each node; fn returning false prunes the subtree (the ast.Inspect
// contract).
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
