// Package analysis is a minimal, dependency-free analogue of
// golang.org/x/tools/go/analysis: just enough structure — an Analyzer with a
// Run function over a type-checked Pass — for the preexeclint suite to be
// written in the standard modular-checker shape. The container this repo
// builds in has no module proxy access, so vendoring x/tools is not an
// option; the API mirrors the upstream names (Analyzer, Pass, Diagnostic,
// Pass.Reportf) so the analyzers would port to the real framework by
// changing one import.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Exactly one of Run and RunModule is
// set: Run is the classic per-package shape, RunModule the whole-program
// shape for interprocedural analyses (call-graph reachability, goroutine
// lifecycle, build-tool diffs) that a single package's AST cannot answer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore <name> suppression directives. It must look like a Go
	// identifier.
	Name string
	// Doc is the one-paragraph description printed by preexeclint -list:
	// the invariant the analyzer enforces and why the repo cares.
	Doc string
	// Run executes the check over one package and reports findings through
	// pass.Report. The returned value is unused (kept for upstream
	// signature compatibility).
	Run func(pass *Pass) (any, error)
	// RunModule executes the check once over every loaded package together.
	// Analyzers with RunModule set are skipped by per-package drivers and
	// vice versa.
	RunModule func(pass *ModulePass) (any, error)
}

// Pass is one (analyzer, package) execution: the parsed files, the
// type-checker's results, and the diagnostic sink.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report receives each finding. Drivers install their own sink
	// (collecting, filtering suppressed lines, formatting).
	Report func(Diagnostic)
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Category string // the reporting analyzer's name
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Category: p.Analyzer.Name})
}

// PackageUnit is one loaded package as a whole-program analyzer sees it —
// the same parsed+type-checked contents a per-package Pass carries, plus the
// package's on-disk location (build-tool analyzers shell out per directory).
type PackageUnit struct {
	Path  string // import path
	Dir   string // package directory on disk
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// ModulePass is one whole-program analyzer execution: every loaded package
// at once, sharing one FileSet so positions are comparable across packages.
type ModulePass struct {
	Analyzer *Analyzer

	Fset     *token.FileSet
	Packages []*PackageUnit

	// Report receives each finding, as in Pass.
	Report func(Diagnostic)

	// shared memoizes artifacts built from the package set (e.g. the call
	// graph) across the module analyzers of one driver run.
	shared map[string]any
}

// Reportf reports a formatted finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Category: p.Analyzer.Name})
}

// Shared returns the cached artifact under key, building it with build on
// first use. Drivers reuse one ModulePass backing store across analyzers (see
// NewShared), so expensive whole-program structures are built once per run.
func (p *ModulePass) Shared(key string, build func() any) any {
	if p.shared == nil {
		p.shared = map[string]any{}
	}
	v, ok := p.shared[key]
	if !ok {
		v = build()
		p.shared[key] = v
	}
	return v
}

// NewShared returns a Shared backing store to assign across the ModulePasses
// of one driver run via WithShared.
func NewShared() map[string]any { return map[string]any{} }

// WithShared installs a shared backing store (from NewShared) so several
// ModulePasses memoize into the same cache.
func (p *ModulePass) WithShared(s map[string]any) *ModulePass {
	p.shared = s
	return p
}

// Inspect walks every file of the pass in depth-first order, calling fn for
// each node; fn returning false prunes the subtree (the ast.Inspect
// contract).
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
