// Package analysistest runs preexeclint analyzers over seeded source trees
// and checks their findings against expectations written in the source — the
// same contract as golang.org/x/tools/go/analysis/analysistest, rebuilt on
// the stdlib-only framework because this repo's build environment has no
// module proxy access.
//
// Test packages live under <testdata>/src/<name>. Expected findings are
// trailing comments on the flagged line:
//
//	return err == ErrGone // want `errors.Is`
//
// Each backquoted chunk is a regular expression that must match the message
// of one finding reported on that line; every finding must be matched by a
// want and every want must be consumed. Suppression directives
// (//lint:ignore) are honored, so testdata can also exercise them.
//
// Imports inside a test package resolve first against sibling directories
// under <testdata>/src (letting testdata fake the repo's own packages, e.g.
// a stand-in "preexec"), then against the standard library via the go
// command's export data.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"preexec/internal/lint"
	"preexec/internal/lint/analysis"
	"preexec/internal/lint/load"
)

// TestData returns the absolute path of the calling test's testdata
// directory, mirroring the upstream helper.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run applies a to each named package under testdata/src and reports any
// mismatch between its (suppression-filtered) findings and the packages'
// want comments as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgNames ...string) {
	t.Helper()
	for _, name := range pkgNames {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Helper()
			runOne(t, testdata, a, name)
		})
	}
}

func runOne(t *testing.T, testdata string, a *analysis.Analyzer, pkgName string) {
	t.Helper()
	src := filepath.Join(testdata, "src")
	fset := token.NewFileSet()
	imp := &multiImporter{local: map[string]*types.Package{}}

	// Resolve the import closure: sibling testdata packages load from
	// source, everything else comes from go-command export data.
	stdlib, localDeps, err := importClosure(src, pkgName)
	if err != nil {
		t.Fatal(err)
	}
	if len(stdlib) > 0 {
		idx, err := load.Exports(".", stdlib...)
		if err != nil {
			t.Fatalf("resolving stdlib exports: %v", err)
		}
		imp.base = importer.ForCompiler(fset, "gc", idx.Lookup)
	}
	var units []*analysis.PackageUnit
	for _, dep := range localDeps {
		pkg, err := checkDir(fset, src, dep, imp)
		if err != nil {
			t.Fatalf("loading testdata dependency %s: %v", dep, err)
		}
		imp.local[dep] = pkg.Types
		units = append(units, unitOf(pkg))
	}

	target, err := checkDir(fset, src, pkgName, imp)
	if err != nil {
		t.Fatal(err)
	}
	units = append(units, unitOf(target))

	var diags []analysis.Diagnostic
	report := func(d analysis.Diagnostic) { diags = append(diags, d) }
	if a.RunModule != nil {
		// Module analyzers see the whole testdata closure (so call chains can
		// cross fixture packages); expectations are checked on the target
		// package only, so findings landing in a dependency are dropped.
		mp := (&analysis.ModulePass{
			Analyzer: a,
			Fset:     fset,
			Packages: units,
			Report:   report,
		}).WithShared(analysis.NewShared())
		if _, err := a.RunModule(mp); err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		inTarget := map[string]bool{}
		for _, f := range target.Files {
			inTarget[fset.Position(f.Pos()).Filename] = true
		}
		kept := diags[:0]
		for _, d := range diags {
			if inTarget[fset.Position(d.Pos).Filename] {
				kept = append(kept, d)
			}
		}
		diags = kept
	} else {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     target.Files,
			Pkg:       target.Types,
			TypesInfo: target.Info,
			Report:    report,
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
	}
	diags = lint.Filter(fset, lint.Suppressions(fset, target.Files), diags)

	compare(t, fset, target.Files, diags)
}

// want is one expectation: a regex that must match a finding on its line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRe = regexp.MustCompile("// want((?: `[^`]*`)+)")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, chunk := range strings.Split(m[1], "`") {
					chunk = strings.TrimSpace(chunk)
					if chunk == "" {
						continue
					}
					re, err := regexp.Compile(chunk)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, chunk, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

func compare(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, fset, files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding: %s (%s)", pos, d.Message, d.Category)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no finding matched want `%s`", w.file, w.line, w.re)
		}
	}
}

// importClosure parses import clauses transitively through testdata-local
// packages, partitioning the closure into stdlib paths and local sibling
// packages (returned in dependency-safe order: dependencies first).
func importClosure(src, root string) (stdlib, localDeps []string, err error) {
	seenStd := map[string]bool{}
	seenLocal := map[string]bool{}
	var visit func(name string) error
	visit = func(name string) error {
		dir := filepath.Join(src, name)
		names, err := goFiles(dir)
		if err != nil {
			return err
		}
		throwaway := token.NewFileSet()
		for _, fileName := range names {
			f, err := parser.ParseFile(throwaway, filepath.Join(dir, fileName), nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, spec := range f.Imports {
				path := strings.Trim(spec.Path.Value, `"`)
				if info, statErr := os.Stat(filepath.Join(src, path)); statErr == nil && info.IsDir() {
					if !seenLocal[path] {
						seenLocal[path] = true
						if err := visit(path); err != nil {
							return err
						}
						localDeps = append(localDeps, path)
					}
				} else {
					seenStd[path] = true
				}
			}
		}
		return nil
	}
	if err := visit(root); err != nil {
		return nil, nil, err
	}
	for p := range seenStd {
		stdlib = append(stdlib, p)
	}
	sort.Strings(stdlib)
	return stdlib, localDeps, nil
}

func goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return names, nil
}

// unitOf adapts a loaded testdata package to the module-analyzer input shape.
func unitOf(p *load.Package) *analysis.PackageUnit {
	return &analysis.PackageUnit{Path: p.Path, Dir: p.Dir, Files: p.Files, Pkg: p.Types, Info: p.Info}
}

func checkDir(fset *token.FileSet, src, name string, imp types.Importer) (*load.Package, error) {
	dir := filepath.Join(src, name)
	names, err := goFiles(dir)
	if err != nil {
		return nil, err
	}
	return load.Check(fset, name, dir, names, imp)
}

// multiImporter resolves testdata-local packages from source and delegates
// the rest to export data.
type multiImporter struct {
	base  types.Importer
	local map[string]*types.Package
}

func (m *multiImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.local[path]; ok {
		return pkg, nil
	}
	if m.base == nil {
		return nil, fmt.Errorf("no importer for %q (testdata may only import stdlib and sibling testdata packages)", path)
	}
	return m.base.Import(path)
}
