// Package callgraph constructs a whole-program call graph over the packages
// type-checked by internal/lint/load, for the interprocedural preexeclint
// analyzers (detflow, goroutine). The graph is built from three edge kinds:
//
//   - Static: a call whose callee resolves to a declared function or a
//     method on a concrete receiver.
//   - Devirtualized: a call through an interface method, expanded to every
//     concrete method among the analyzed packages whose receiver type
//     implements the interface (method-set-based devirtualization — the
//     class-hierarchy treatment restricted to interface dispatch, which is
//     the only dynamic dispatch the Engine/Stage plumbing uses).
//   - Reference: a function or method value that escapes as data (passed as
//     a callback, assigned to a field). The referent is assumed callable
//     from the referencing function — sound for the repo's callback shapes
//     (progress hooks, probe functions, FlightGroup computes) at the cost
//     of an edge for references that are never invoked.
//
// Function literals are attributed to their lexically enclosing declared
// function: a closure's calls become the encloser's edges. That is the
// conservative direction for reachability analyses — whoever can run the
// closure was given it by the encloser.
//
// Edges may target functions with no body in the analyzed set (stdlib,
// export-data-only dependencies); such callees are legal edge endpoints but
// have no Node and are not traversed. Generic functions and methods are
// normalized to their origin (uninstantiated) object, so every
// instantiation shares one node.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"

	"preexec/internal/lint/analysis"
)

// EdgeKind classifies how a call edge was discovered.
type EdgeKind int

const (
	// Static is a direct call to a declared function or concrete method.
	Static EdgeKind = iota
	// Devirtualized is an interface-method call expanded to a concrete
	// implementation by method-set analysis.
	Devirtualized
	// Reference is a function value escaping as data rather than being
	// called at the reference site.
	Reference
)

func (k EdgeKind) String() string {
	switch k {
	case Static:
		return "static"
	case Devirtualized:
		return "devirtualized"
	case Reference:
		return "reference"
	}
	return "unknown"
}

// Edge is one caller→callee relationship at a source position.
type Edge struct {
	Caller *types.Func
	Callee *types.Func
	Pos    token.Pos
	Kind   EdgeKind
}

// Node is one declared function with a body in the analyzed packages.
type Node struct {
	Func *types.Func
	Decl *ast.FuncDecl
	Unit *analysis.PackageUnit
	// Out lists the node's outgoing edges in source order (deterministic:
	// files in load order, positions ascending within a file).
	Out []Edge
}

// Graph is the whole-program call graph.
type Graph struct {
	Fset *token.FileSet
	// Nodes maps each declared function (origin object for generics) to its
	// node. Edge callees without bodies have no entry here.
	Nodes map[*types.Func]*Node
	// order lists nodes deterministically (package load order, then source
	// order) for reproducible traversals independent of map iteration.
	order []*Node
}

// NodesInOrder returns every node in deterministic (package, position)
// order.
func (g *Graph) NodesInOrder() []*Node { return g.order }

// Lookup finds the node for f (normalized to its generic origin), nil if f
// has no body in the analyzed packages.
func (g *Graph) Lookup(f *types.Func) *Node {
	if f == nil {
		return nil
	}
	return g.Nodes[f.Origin()]
}

// Build constructs the graph over units. All units must share fset.
func Build(fset *token.FileSet, units []*analysis.PackageUnit) *Graph {
	g := &Graph{Fset: fset, Nodes: map[*types.Func]*Node{}}

	// Pass 1: index every declared function with a body.
	for _, u := range units {
		for _, f := range u.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := u.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{Func: obj.Origin(), Decl: fd, Unit: u}
				g.Nodes[n.Func] = n
				g.order = append(g.order, n)
			}
		}
	}

	// Pass 2: collect the concrete named types available as devirtualization
	// targets — every non-interface named type declared in the analyzed
	// packages (their pointer method sets are considered too).
	var concrete []types.Type
	for _, u := range units {
		scope := u.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			t := tn.Type()
			if types.IsInterface(t) {
				continue
			}
			concrete = append(concrete, t)
		}
	}

	// Pass 3: edges.
	for _, n := range g.order {
		n.Out = collectEdges(n, concrete)
	}
	return g
}

// collectEdges walks n's body (nested function literals included — they are
// attributed to n) and resolves every call and function reference.
func collectEdges(n *Node, concrete []types.Type) []Edge {
	info := n.Unit.Info
	var out []Edge
	add := func(callee *types.Func, pos token.Pos, kind EdgeKind) {
		if callee == nil {
			return
		}
		out = append(out, Edge{Caller: n.Func, Callee: callee.Origin(), Pos: pos, Kind: kind})
	}

	// calleeIdents records the identifiers that are the operator of a call,
	// so the reference scan below does not double-count them.
	calleeIdents := map[*ast.Ident]bool{}

	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			calleeIdents[fun] = true
			if f, ok := info.Uses[fun].(*types.Func); ok {
				add(f, call.Pos(), Static)
			}
		case *ast.SelectorExpr:
			calleeIdents[fun.Sel] = true
			f, ok := info.Uses[fun.Sel].(*types.Func)
			if !ok {
				break
			}
			if iface := interfaceRecv(f); iface != nil {
				for _, impl := range implementations(iface, f.Name(), concrete) {
					add(impl, call.Pos(), Devirtualized)
				}
			} else {
				add(f, call.Pos(), Static)
			}
		}
		return true
	})

	// Reference scan: any remaining identifier resolving to a function is a
	// function value escaping as data.
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok || calleeIdents[id] {
			return true
		}
		f, ok := info.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		if iface := interfaceRecv(f); iface != nil {
			for _, impl := range implementations(iface, f.Name(), concrete) {
				add(impl, id.Pos(), Reference)
			}
			return true
		}
		add(f, id.Pos(), Reference)
		return true
	})
	return out
}

// interfaceRecv returns f's receiver interface if f is an interface method,
// nil otherwise.
func interfaceRecv(f *types.Func) *types.Interface {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	return iface
}

// implementations returns the concrete methods named name on every type in
// concrete (value or pointer method set) that implements iface.
func implementations(iface *types.Interface, name string, concrete []types.Type) []*types.Func {
	var out []*types.Func
	for _, t := range concrete {
		var impl types.Type
		switch {
		case types.Implements(t, iface):
			impl = t
		case types.Implements(types.NewPointer(t), iface):
			impl = types.NewPointer(t)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, nil, name)
		if m, ok := obj.(*types.Func); ok {
			out = append(out, m)
		}
	}
	return out
}

// ReachableFrom runs a breadth-first traversal from roots (in the given
// order) and returns the visited nodes plus, for every function first
// reached through an edge, that discovering edge — enough to reconstruct one
// shortest call chain back to a root with Chain. Roots with no node are
// skipped. The traversal is deterministic: queue order follows root order
// and each node's source-ordered edge list.
func (g *Graph) ReachableFrom(roots []*types.Func) (visited map[*types.Func]bool, parents map[*types.Func]Edge) {
	visited = map[*types.Func]bool{}
	parents = map[*types.Func]Edge{}
	var queue []*Node
	for _, r := range roots {
		if r == nil {
			continue
		}
		r = r.Origin()
		if n := g.Nodes[r]; n != nil && !visited[r] {
			visited[r] = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if visited[e.Callee] {
				continue
			}
			visited[e.Callee] = true
			parents[e.Callee] = e
			if next := g.Nodes[e.Callee]; next != nil {
				queue = append(queue, next)
			}
		}
	}
	return visited, parents
}

// Chain reconstructs the discovery path root → … → fn from a parents map
// produced by ReachableFrom. The result starts at a root and ends at fn; for
// a root itself the chain is just {fn}.
func Chain(parents map[*types.Func]Edge, fn *types.Func) []*types.Func {
	var rev []*types.Func
	for cur := fn.Origin(); ; {
		rev = append(rev, cur)
		e, ok := parents[cur]
		if !ok {
			break
		}
		cur = e.Caller
	}
	out := make([]*types.Func, len(rev))
	for i, f := range rev {
		out[len(rev)-1-i] = f
	}
	return out
}
