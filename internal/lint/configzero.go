package lint

import (
	"go/ast"

	"preexec/internal/lint/analysis"
)

// ConfigZero guards the documented zero-Config pitfall: outside the preexec
// package itself, a preexec.Config must start from DefaultConfig() — the
// zero value silently disables selection optimization and merging, which is
// not the paper's base configuration. Composite literals, zero-value var
// declarations, and new(preexec.Config) are all flagged; SelectionConfig
// literals are additionally checked for leaving Optimize/Merge implicitly
// false.
var ConfigZero = &analysis.Analyzer{
	Name: "configzero",
	Doc: "flags preexec.Config composite literals and zero-value Config uses " +
		"outside the package that bypass preexec.DefaultConfig()",
	Run: runConfigZero,
}

// configPkgPath is the import path of the package defining Config. The
// analyzer is a no-op inside that package: the implementation constructs
// configs legitimately.
const configPkgPath = "preexec"

func runConfigZero(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Path() == configPkgPath {
		return nil, nil
	}
	info := pass.TypesInfo
	pass.Inspect(func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CompositeLit:
			t := info.Types[e].Type
			if t == nil {
				return true
			}
			if namedFrom(t, configPkgPath, "Config") {
				pass.Reportf(e.Pos(),
					"preexec.Config literal bypasses DefaultConfig(); the zero Config disables Optimize/Merge — start from preexec.DefaultConfig() and override fields")
			}
			if namedFrom(t, configPkgPath, "SelectionConfig") && !selectionCovers(e, "Optimize", "Merge") {
				pass.Reportf(e.Pos(),
					"preexec.SelectionConfig literal leaves Optimize/Merge at zero (off), which is not the paper's base flow; set both explicitly or start from DefaultSelection()")
			}
		case *ast.ValueSpec:
			// `var cfg preexec.Config` with no initializer is the zero value.
			if e.Type == nil || len(e.Values) > 0 {
				return true
			}
			if t := info.Types[e.Type].Type; t != nil && namedFrom(t, configPkgPath, "Config") {
				pass.Reportf(e.Pos(),
					"zero-value preexec.Config declaration; initialize from preexec.DefaultConfig() instead")
			}
		case *ast.CallExpr:
			// new(preexec.Config) yields a pointer to the zero value.
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && isBuiltin(info, id, "new") && len(e.Args) == 1 {
				if t := info.Types[e.Args[0]].Type; t != nil && namedFrom(t, configPkgPath, "Config") {
					pass.Reportf(e.Pos(),
						"new(preexec.Config) yields the zero Config; use preexec.DefaultConfig() and take its address")
				}
			}
		}
		return true
	})
	return nil, nil
}

// selectionCovers reports whether the composite literal explicitly sets all
// the named fields — either by key or by being a full positional literal.
func selectionCovers(lit *ast.CompositeLit, fields ...string) bool {
	if len(lit.Elts) == 0 {
		return false
	}
	if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); !keyed {
		// Positional literals must name every field to compile, so all
		// fields are covered.
		return true
	}
	set := map[string]bool{}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok {
			set[id.Name] = true
		}
	}
	for _, f := range fields {
		if !set[f] {
			return false
		}
	}
	return true
}
