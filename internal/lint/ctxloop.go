package lint

import (
	"go/ast"
	"go/types"

	"preexec/internal/lint/analysis"
)

// CtxLoop enforces the cancellation invariant from PR 1: loops that can run
// unboundedly — indefinite `for` loops, channel ranges, and loops in HTTP
// handlers doing per-iteration work sized by the request — must observe the
// surrounding context, either by referencing it (ctx.Err()/ctx.Done()/a
// derived done channel) or by passing it to the work they call. Bounded
// local loops in functions without a context are out of scope: the analyzer
// only fires where a context is available and ignored.
var CtxLoop = &analysis.Analyzer{
	Name: "ctxloop",
	Doc: "flags indefinite loops, channel ranges, and HTTP-handler work loops " +
		"that never consult the available context.Context",
	Run: runCtxLoop,
}

func runCtxLoop(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		walkFuncs(f, func(ft *ast.FuncType, body *ast.BlockStmt) {
			checkFuncLoops(pass, ft, body)
		})
	}
	return nil, nil
}

// checkFuncLoops analyzes the loops directly inside one function body.
// Nested function literals are handled as their own functions by walkFuncs.
func checkFuncLoops(pass *analysis.Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	info := pass.TypesInfo
	ctxObjs := map[types.Object]bool{}
	for _, field := range ft.Params.List {
		t := info.Types[field.Type].Type
		if t != nil && namedFrom(t, "context", "Context") {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					ctxObjs[obj] = true
				}
			}
		}
	}
	handlerReq := httpRequestParam(info, ft)

	// Fixpoint over derived objects: done channels, errs, sub-contexts, and
	// ctx := r.Context() all count as consulting the context.
	for changed := true; changed; {
		changed = false
		inspectShallow(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				if !derivesFromCtx(info, call, ctxObjs, handlerReq) {
					continue
				}
				for _, lhs := range as.Lhs {
					if len(as.Rhs) == len(as.Lhs) && i != indexOf(as.Lhs, lhs) {
						continue
					}
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if obj != nil && !ctxObjs[obj] {
						ctxObjs[obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}

	hasCtx := len(ctxObjs) > 0 || handlerReq != nil
	if !hasCtx {
		return
	}

	inspectShallow(body, func(n ast.Node) bool {
		switch loop := n.(type) {
		case *ast.ForStmt:
			if loop.Cond == nil && !loopConsultsCtx(info, loop, ctxObjs, handlerReq) {
				pass.Reportf(loop.Pos(),
					"indefinite loop never checks the context; poll ctx.Err() or select on ctx.Done() so cancellation can land")
			}
			if handlerReq != nil && loop.Cond != nil &&
				!loopConsultsCtx(info, loop, ctxObjs, handlerReq) && loopDoesWork(info, loop.Body) {
				pass.Reportf(loop.Pos(),
					"HTTP-handler loop does per-iteration work without consulting the request context; check ctx.Err() so disconnected clients stop paying")
			}
		case *ast.RangeStmt:
			t := info.Types[loop.X].Type
			if t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					if !loopConsultsCtx(info, loop, ctxObjs, handlerReq) {
						pass.Reportf(loop.Pos(),
							"channel range never checks the context; a stalled producer wedges this loop past cancellation")
					}
					return true
				}
			}
			if handlerReq != nil && !loopConsultsCtx(info, loop, ctxObjs, handlerReq) && loopDoesWork(info, loop.Body) {
				pass.Reportf(loop.Pos(),
					"HTTP-handler loop does per-iteration work without consulting the request context; check ctx.Err() so disconnected clients stop paying")
			}
		}
		return true
	})
}

// httpRequestParam returns the *http.Request parameter object if ft is an
// http.HandlerFunc-shaped signature, else nil.
func httpRequestParam(info *types.Info, ft *ast.FuncType) types.Object {
	for _, field := range ft.Params.List {
		t := info.Types[field.Type].Type
		if t == nil || !namedFrom(t, "net/http", "Request") {
			continue
		}
		if _, isPtr := t.(*types.Pointer); !isPtr {
			continue
		}
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				return obj
			}
		}
	}
	return nil
}

// derivesFromCtx reports whether call yields context-derived state: a method
// on a known ctx object (Done, Err, Deadline), r.Context(), or
// context.With*(ctx, ...).
func derivesFromCtx(info *types.Info, call *ast.CallExpr, ctxObjs map[types.Object]bool, handlerReq types.Object) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		recv := rootObject(info, sel.X)
		if recv != nil && ctxObjs[recv] {
			return true
		}
		if recv != nil && recv == handlerReq && sel.Sel.Name == "Context" {
			return true
		}
	}
	if f := funcObj(info, call); f != nil && f.Pkg() != nil && f.Pkg().Path() == "context" {
		for _, arg := range call.Args {
			if obj := rootObject(info, arg); obj != nil && ctxObjs[obj] {
				return true
			}
		}
	}
	return false
}

// loopConsultsCtx reports whether the loop (or anything under it, closures
// included) references a context-derived object or calls r.Context().
func loopConsultsCtx(info *types.Info, loop ast.Node, ctxObjs map[types.Object]bool, handlerReq types.Object) bool {
	if usesObject(info, loop, ctxObjs) {
		return true
	}
	if handlerReq == nil {
		return false
	}
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if ok && sel.Sel.Name == "Context" && rootObject(info, sel.X) == handlerReq {
			found = true
		}
		return true
	})
	return found
}

// loopDoesWork reports whether the loop body calls a declared non-trivial
// function — the signal that each iteration costs real work rather than
// local assembly. Pure formatting/conversion packages don't count.
func loopDoesWork(info *types.Info, body *ast.BlockStmt) bool {
	trivial := map[string]bool{
		"fmt": true, "errors": true, "strconv": true, "strings": true,
		"sort": true, "bytes": true, "unicode/utf8": true, "math": true,
	}
	found := false
	inspectShallow(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := funcObj(info, call)
		if f == nil || f.Pkg() == nil {
			return true
		}
		if !trivial[f.Pkg().Path()] {
			found = true
		}
		return true
	})
	return found
}

func indexOf(exprs []ast.Expr, e ast.Expr) int {
	for i, x := range exprs {
		if x == e {
			return i
		}
	}
	return -1
}
