package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"preexec/internal/lint/analysis"
)

// Determinism enforces bit-for-bit reproducibility in the packages whose
// output the golden tests pin: no wall-clock reads, no process-seeded
// randomness, and no map iteration whose visit order can leak into output or
// accumulated state. Ranging over a map to collect keys or values is fine
// when the collection is sorted afterwards in the same function — the
// repo-wide collect-then-sort idiom — so that pattern is exempted.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc: "flags wall-clock reads, global randomness, and order-dependent map " +
		"iteration in packages whose output must be bit-identical across runs",
	Run: runDeterminism,
}

func runDeterminism(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case isPkgFunc(info, call, "time", "Now"):
				pass.Reportf(call.Pos(),
					"time.Now in a deterministic package; take the timestamp as a parameter so replays stay bit-identical")
			case isGlobalRand(info, call):
				pass.Reportf(call.Pos(),
					"global math/rand is process-seeded; draw from an explicitly seeded *rand.Rand so runs reproduce")
			}
			return true
		})
		walkFuncs(f, func(_ *ast.FuncType, body *ast.BlockStmt) {
			checkMapRanges(pass, body)
		})
	}
	return nil, nil
}

// isGlobalRand reports a call to a top-level math/rand or math/rand/v2
// function (the shared, process-seeded source). Methods on a *rand.Rand are
// fine: those carry their own seed.
func isGlobalRand(info *types.Info, call *ast.CallExpr) bool {
	f := funcObj(info, call)
	if f == nil || f.Pkg() == nil || f.Type().(*types.Signature).Recv() != nil {
		return false
	}
	p := f.Pkg().Path()
	return (p == "math/rand" || p == "math/rand/v2") && f.Name() != "New" && f.Name() != "NewSource" && f.Name() != "NewPCG" && f.Name() != "NewChaCha8"
}

// checkMapRanges scans one function body (not nested literals — walkFuncs
// visits those separately) for map-range statements whose bodies leak
// iteration order.
func checkMapRanges(pass *analysis.Pass, body *ast.BlockStmt) {
	for _, l := range mapOrderLeaks(pass.TypesInfo, body) {
		pass.Reportf(l.Pos, "%s", l.Message)
	}
}

// orderLeak is one order-dependence finding inside a map iteration, shared
// between the local determinism analyzer and the whole-program detflow
// analyzer (which prefixes it with the reaching call chain).
type orderLeak struct {
	Pos     token.Pos
	Message string
}

// mapOrderLeaks scans one function body (shallow: nested literals are their
// own functions) for map-range statements whose bodies leak iteration order.
func mapOrderLeaks(info *types.Info, body *ast.BlockStmt) []orderLeak {
	var leaks []orderLeak
	inspectShallow(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.Types[rng.X].Type
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		leaks = append(leaks, rangeOrderLeaks(info, body, rng)...)
		return true
	})
	return leaks
}

// rangeOrderLeaks collects statements inside a map-range body that make the
// visit order observable: writing output, sending on channels, appending to
// a slice that is never sorted afterwards, or accumulating floats (whose
// addition is not associative, so per-order sums differ in the low bits).
func rangeOrderLeaks(info *types.Info, fnBody *ast.BlockStmt, rng *ast.RangeStmt) []orderLeak {
	var leaks []orderLeak
	report := func(pos token.Pos, format string, args ...any) {
		leaks = append(leaks, orderLeak{Pos: pos, Message: fmt.Sprintf(format, args...)})
	}
	// appended maps each slice object appended to inside the loop to the
	// position of the first such append.
	appended := map[types.Object]ast.Node{}
	inspectShallow(rng.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.SendStmt:
			report(stmt.Pos(),
				"channel send inside map iteration publishes values in map order; iterate a sorted key slice instead")
		case *ast.CallExpr:
			if writesOutput(info, stmt) {
				report(stmt.Pos(),
					"output written inside map iteration follows map order; iterate a sorted key slice instead")
			}
		case *ast.AssignStmt:
			for i, rhs := range stmt.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || len(stmt.Lhs) <= i {
					continue
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && isBuiltin(info, id, "append") {
					// Builtin append: record the destination's root object.
					if obj := rootObject(info, stmt.Lhs[i]); obj != nil {
						if _, seen := appended[obj]; !seen {
							appended[obj] = stmt
						}
					}
				}
			}
			if stmt.Tok.IsOperator() && len(stmt.Lhs) == 1 {
				switch stmt.Tok.String() {
				case "+=", "-=", "*=", "/=":
					if t := info.Types[stmt.Lhs[0]].Type; t != nil {
						if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
							report(stmt.Pos(),
								"floating-point accumulation inside map iteration is order-sensitive in the low bits; accumulate over sorted keys")
						}
					}
				}
			}
		}
		return true
	})
	for obj, at := range appended {
		if !sortedAfter(info, fnBody, rng, obj) {
			report(at.Pos(),
				"append to %s inside map iteration fixes map order into the slice; sort it afterwards or iterate sorted keys", obj.Name())
		}
	}
	return leaks
}

// writesOutput reports calls that emit bytes: fmt print/fprint family and
// Write*-style methods on builders, buffers, and writers.
func writesOutput(info *types.Info, call *ast.CallExpr) bool {
	if f := funcObj(info, call); f != nil {
		if f.Pkg() != nil && f.Pkg().Path() == "fmt" {
			switch f.Name() {
			case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
				return true
			}
		}
		if f.Type().(*types.Signature).Recv() != nil {
			switch f.Name() {
			case "Write", "WriteString", "WriteByte", "WriteRune":
				return true
			}
		}
	}
	return false
}

// rootObject resolves expr to the object of its leftmost identifier:
// x → x, x.f → x, x[i] → x.
func rootObject(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			if obj := info.Uses[e]; obj != nil {
				return obj
			}
			return info.Defs[e]
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// sortedAfter reports whether obj is passed to a sort.* call somewhere in
// fnBody after the range statement ends — the collect-then-sort exemption.
func sortedAfter(info *types.Info, fnBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	sorted := false
	inspectShallow(fnBody, func(n ast.Node) bool {
		if sorted || n == nil || n.Pos() <= rng.End() {
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		f := funcObj(info, call)
		if f == nil || f.Pkg() == nil {
			return true
		}
		if p := f.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		if rootObject(info, call.Args[0]) == obj {
			sorted = true
		}
		return true
	})
	return sorted
}
