package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"path"
	"sort"
	"strings"

	"preexec/internal/lint/analysis"
	"preexec/internal/lint/callgraph"
)

// DetFlow is the whole-program extension of the determinism analyzer: every
// function transitively reachable from the bit-reproducible API surface
// (DeterministicRoots plus //lint:detroot-marked functions) must not reach
// time.Now, the global math/rand source, or order-leaking map iteration in
// any callee — regardless of which package the callee lives in. The local
// determinism analyzer stays as the fast per-package check over
// DeterministicScope; detflow is what catches a leak smuggled in through a
// package outside that scope (a serve helper, a fleet callback, a cmd
// wrapper) and reports the full call chain from the root to the sink.
var DetFlow = &analysis.Analyzer{
	Name: "detflow",
	Doc: "whole-program determinism: no time.Now, global math/rand, or " +
		"order-leaking map iteration transitively reachable from the " +
		"bit-reproducible API surface, reported with the full call chain",
	RunModule: runDetFlow,
}

// DeterministicRoots names the functions whose full transitive call closure
// must stay bit-reproducible, keyed by (*types.Func).FullName. These are the
// entry points the golden tests pin byte-for-byte: the memoized sweep, the
// single-evaluation engine path, the serve sweep handler and coordinator
// merge path, and the fleet routing/retry machinery whose decisions feed the
// merge order. Functions can also be marked in source with a //lint:detroot
// doc-comment directive; the two sets are unioned.
var DeterministicRoots = map[string]bool{
	"(*preexec.Sweep).Run":                 true,
	"(*preexec.Sweep).Plan":                true,
	"(*preexec.Engine).Evaluate":           true,
	"(*preexec/serve.Server).handleSweep":  true,
	"(*preexec/serve.coordinator).sweep":   true,
	"(*preexec/internal/fleet.Pool).Order": true,
	"preexec/internal/fleet.Do":            true,
}

// detrootDirective marks a function declaration as an additional detflow
// root when it appears in the declaration's doc comment.
const detrootDirective = "//lint:detroot"

func runDetFlow(pass *analysis.ModulePass) (any, error) {
	g := graphFor(pass)

	// Roots: the built-in table plus source-marked declarations, in
	// deterministic (source) order.
	var roots []*types.Func
	for _, n := range g.NodesInOrder() {
		if DeterministicRoots[n.Func.FullName()] || hasDetrootDirective(n) {
			roots = append(roots, n.Func)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].FullName() < roots[j].FullName() })

	visited, parents := g.ReachableFrom(roots)

	// Walk every reachable function (deterministic order) and report sinks:
	// edge sinks (calls to wall-clock / global-rand functions) and body
	// sinks (order-leaking map iteration).
	reported := map[string]bool{} // dedupe key: position + message
	for _, n := range g.NodesInOrder() {
		if !visited[n.Func] {
			continue
		}
		chain := chainString(parents, n.Func)
		for _, e := range n.Out {
			if sink := sinkName(e.Callee); sink != "" {
				key := fmt.Sprintf("%d|%s", e.Pos, sink)
				if reported[key] {
					continue
				}
				reported[key] = true
				pass.Reportf(e.Pos,
					"%s reached from deterministic root via %s -> %s; replays of the pinned API surface must stay bit-identical",
					sink, chain, sink)
			}
		}
		for _, leak := range bodyOrderLeaks(n) {
			key := fmt.Sprintf("%d|leak", leak.Pos)
			if reported[key] {
				continue
			}
			reported[key] = true
			pass.Reportf(leak.Pos, "%s (reached from deterministic root via %s)", leak.Message, chain)
		}
	}
	return nil, nil
}

// graphFor builds (once per driver run) the whole-program call graph.
func graphFor(pass *analysis.ModulePass) *callgraph.Graph {
	return pass.Shared("callgraph", func() any {
		return callgraph.Build(pass.Fset, pass.Packages)
	}).(*callgraph.Graph)
}

// hasDetrootDirective reports whether n's declaration doc comment carries
// //lint:detroot.
func hasDetrootDirective(n *callgraph.Node) bool {
	if n.Decl.Doc == nil {
		return false
	}
	for _, c := range n.Decl.Doc.List {
		if strings.HasPrefix(c.Text, detrootDirective) {
			return true
		}
	}
	return false
}

// sinkName classifies callee as a determinism sink, returning a display name
// ("" = not a sink): time.Now, or a top-level math/rand draw from the
// process-seeded global source (constructors of independent sources are
// fine, as are methods on a *rand.Rand).
func sinkName(callee *types.Func) string {
	if callee == nil || callee.Pkg() == nil {
		return ""
	}
	pkg := callee.Pkg().Path()
	if pkg == "time" && callee.Name() == "Now" && callee.Type().(*types.Signature).Recv() == nil {
		return "time.Now"
	}
	if (pkg == "math/rand" || pkg == "math/rand/v2") && callee.Type().(*types.Signature).Recv() == nil {
		switch callee.Name() {
		case "New", "NewSource", "NewPCG", "NewChaCha8":
			return ""
		}
		return "global " + pkg + "." + callee.Name()
	}
	return ""
}

// bodyOrderLeaks runs the determinism analyzer's map-order-leak scan over
// every function body lexically inside n's declaration (the declared body
// plus nested literals, each scanned shallow).
func bodyOrderLeaks(n *callgraph.Node) []orderLeak {
	var leaks []orderLeak
	walkFuncs(n.Decl, func(_ *ast.FuncType, body *ast.BlockStmt) {
		leaks = append(leaks, mapOrderLeaks(n.Unit.Info, body)...)
	})
	return leaks
}

// chainString renders the discovery chain root → … → fn compactly, using
// package-qualified names with the module prefix elided for readability.
func chainString(parents map[*types.Func]callgraph.Edge, fn *types.Func) string {
	chain := callgraph.Chain(parents, fn)
	parts := make([]string, len(chain))
	for i, f := range chain {
		parts[i] = shortFuncName(f)
	}
	return strings.Join(parts, " -> ")
}

// shortFuncName renders f with only the last element of its import path
// ("(*serve.Server).handleSweep", "fleet.Do"), matching how the repo's
// diagnostics name functions.
func shortFuncName(f *types.Func) string {
	name := f.FullName()
	if pkg := f.Pkg(); pkg != nil {
		name = strings.Replace(name, pkg.Path(), path.Base(pkg.Path()), 1)
	}
	return name
}
