package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"preexec/internal/lint/analysis"
)

// ErrWrap enforces sentinel-error hygiene: package-level error values
// (ErrUnknownWorkload, ErrJobNotRun, io.EOF, ...) travel through fmt.Errorf
// chains wrapped with %w, are matched with errors.Is, and are never compared
// with == / != or by string content — a wrapped sentinel fails all of those
// silently.
var ErrWrap = &analysis.Analyzer{
	Name: "errwrap",
	Doc: "flags == / != / switch / string comparison against sentinel errors " +
		"and fmt.Errorf calls that swallow a sentinel without %w",
	Run: runErrWrap,
}

func runErrWrap(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo
	pass.Inspect(func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.BinaryExpr:
			checkErrCompare(pass, info, e)
		case *ast.SwitchStmt:
			checkErrSwitch(pass, info, e)
		case *ast.CallExpr:
			checkErrorfWrap(pass, info, e)
			checkStringMatch(pass, info, e)
		}
		return true
	})
	return nil, nil
}

// sentinelObj returns the package-level error-typed variable behind expr,
// or nil. Matches the Err*/EOF naming convention so ordinary error-valued
// globals used as registers aren't swept in.
func sentinelObj(info *types.Info, expr ast.Expr) *types.Var {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		if sel, isSel := ast.Unparen(expr).(*ast.SelectorExpr); isSel {
			id = sel.Sel
		} else {
			return nil
		}
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !types.Implements(v.Type(), errorIface) {
		return nil
	}
	if !strings.HasPrefix(v.Name(), "Err") && !strings.HasPrefix(v.Name(), "err") && v.Name() != "EOF" {
		return nil
	}
	return v
}

func checkErrCompare(pass *analysis.Pass, info *types.Info, e *ast.BinaryExpr) {
	if op := e.Op.String(); op != "==" && op != "!=" {
		return
	}
	for _, side := range []ast.Expr{e.X, e.Y} {
		if s := sentinelObj(info, side); s != nil {
			pass.Reportf(e.Pos(),
				"comparison with %s uses ==/!=; a wrapped %s never compares equal — use errors.Is", s.Name(), s.Name())
			return
		}
	}
	// err.Error() == "..." style string matching.
	for _, side := range []ast.Expr{e.X, e.Y} {
		if isErrorStringCall(info, side) {
			pass.Reportf(e.Pos(),
				"matching errors by Error() string is brittle across wrapping; use errors.Is or errors.As")
			return
		}
	}
}

func checkErrSwitch(pass *analysis.Pass, info *types.Info, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	t := info.Types[sw.Tag].Type
	if t == nil || !types.Implements(t, errorIface) {
		return
	}
	for _, c := range sw.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, expr := range cc.List {
			if s := sentinelObj(info, expr); s != nil {
				pass.Reportf(expr.Pos(),
					"switch case compares the error to %s by identity; a wrapped %s falls through — use errors.Is chains", s.Name(), s.Name())
			}
		}
	}
}

// checkErrorfWrap flags fmt.Errorf calls whose arguments include a sentinel
// but whose format verb list has no %w: callers lose errors.Is matching.
func checkErrorfWrap(pass *analysis.Pass, info *types.Info, call *ast.CallExpr) {
	if !isPkgFunc(info, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	tv := info.Types[call.Args[0]]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	if strings.Contains(constant.StringVal(tv.Value), "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if s := sentinelObj(info, arg); s != nil {
			pass.Reportf(call.Pos(),
				"fmt.Errorf formats %s without %%w, so errors.Is(err, %s) stops matching; wrap it", s.Name(), s.Name())
			return
		}
	}
}

// checkStringMatch flags strings.Contains/HasPrefix/HasSuffix/EqualFold over
// an err.Error() operand.
func checkStringMatch(pass *analysis.Pass, info *types.Info, call *ast.CallExpr) {
	f := funcObj(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "strings" {
		return
	}
	switch f.Name() {
	case "Contains", "HasPrefix", "HasSuffix", "EqualFold":
	default:
		return
	}
	for _, arg := range call.Args {
		if isErrorStringCall(info, arg) {
			pass.Reportf(call.Pos(),
				"matching errors via strings.%s(err.Error(), ...) is brittle across wrapping; use errors.Is or errors.As", f.Name())
			return
		}
	}
}

// isErrorStringCall reports whether expr is a call of the Error() string
// method on an error value.
func isErrorStringCall(info *types.Info, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	t := info.Types[sel.X].Type
	return t != nil && types.Implements(t, errorIface)
}
