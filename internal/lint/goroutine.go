package lint

import (
	"go/ast"
	"go/types"

	"preexec/internal/lint/analysis"
	"preexec/internal/lint/callgraph"
)

// Goroutine enforces the spawn discipline the serve/fleet layers rely on:
// every `go` statement must carry a provable join or termination bound, so a
// refactor cannot silently turn a scoped worker into a leak that outlives
// its request or Server.Close. Three disciplines are recognized:
//
//   - WaitGroup join: the spawned body itself calls (*sync.WaitGroup).Done
//     (typically deferred) — the ParallelEach worker shape.
//   - Done-channel join: the spawned body closes or sends on a channel — the
//     coordinator probe (`defer close(done)`) and result-delivery
//     (`errc <- run()`) shapes.
//   - Context bound: the spawned function transitively reaches a function
//     that consults a context.Context (Done/Err/Deadline) — the
//     ProbeLoop-style ctx-bounded loop, found through the whole-program call
//     graph so the loop may live any number of calls (and packages) away.
//
// The join disciplines are deliberately local (the spawned body itself must
// exhibit them): a WaitGroup.Done buried deep in a callee is usually some
// other pool's internal bookkeeping, not a join the spawner can wait on.
// The context bound is deliberately transitive: a termination bound
// legitimately propagates through call chains.
var Goroutine = &analysis.Analyzer{
	Name: "goroutine",
	Doc: "flags fire-and-forget go statements: every spawn needs a WaitGroup " +
		"join, a done-channel close/send, or a reachable context-bounded " +
		"termination",
	RunModule: runGoroutine,
}

func runGoroutine(pass *analysis.ModulePass) (any, error) {
	g := graphFor(pass)
	for _, u := range pass.Packages {
		for _, f := range u.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if !spawnIsDisciplined(g, u.Info, gs) {
					pass.Reportf(gs.Pos(),
						"fire-and-forget goroutine: no WaitGroup.Done, no done-channel close/send in the spawned body, and no reachable context-bounded termination; join it or bound it with a context so it cannot outlive its owner")
				}
				return true
			})
		}
	}
	return nil, nil
}

// spawnIsDisciplined checks the go statement's spawned function for one of
// the three accepted disciplines.
func spawnIsDisciplined(g *callgraph.Graph, info *types.Info, gs *ast.GoStmt) bool {
	// Entry bodies: the spawned literal's body, or the named callee's body.
	// ctx-bounded evidence additionally searches everything reachable from
	// the entry.
	var entryBodies []*ast.BlockStmt
	var entryFuncs []*types.Func

	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		entryBodies = append(entryBodies, fun.Body)
		// Functions the literal calls or references are reachable entries
		// for the transitive context bound.
		ast.Inspect(fun.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if f, ok := info.Uses[id].(*types.Func); ok {
					entryFuncs = append(entryFuncs, f)
				}
			}
			return true
		})
	default:
		if f := funcObj(info, gs.Call); f != nil {
			entryFuncs = append(entryFuncs, f)
			if n := g.Lookup(f); n != nil {
				entryBodies = append(entryBodies, n.Decl.Body)
			}
		} else {
			// A spawn through a function value the graph cannot resolve:
			// nothing provable. Flag it; a justified //lint:ignore documents
			// the contract if one exists.
			return false
		}
	}

	for _, body := range entryBodies {
		if bodyJoins(info, body) {
			return true
		}
	}

	// Transitive context bound over the call graph.
	visited, _ := g.ReachableFrom(entryFuncs)
	for _, body := range entryBodies {
		if consultsContext(info, body) {
			return true
		}
	}
	for f := range visited {
		n := g.Lookup(f)
		if n == nil {
			continue
		}
		if consultsContext(n.Unit.Info, n.Decl.Body) {
			return true
		}
	}
	return false
}

// bodyJoins reports a local join discipline in the spawned body: a call to
// (*sync.WaitGroup).Done, a close of a channel, or a channel send. Nested
// literals are included — a deferred cleanup closure joins on the spawned
// goroutine's exit just the same.
func bodyJoins(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch stmt := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if f := funcObj(info, stmt); f != nil {
				if f.Name() == "Done" && recvIsWaitGroup(f) {
					found = true
				}
			}
			if id, ok := ast.Unparen(stmt.Fun).(*ast.Ident); ok && isBuiltin(info, id, "close") {
				found = true
			}
		}
		return true
	})
	return found
}

// recvIsWaitGroup reports whether f is a method on sync.WaitGroup.
func recvIsWaitGroup(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return namedFrom(sig.Recv().Type(), "sync", "WaitGroup")
}

// consultsContext reports whether body calls a context.Context method that
// observes cancellation (Done, Err, Deadline) — directly or on a derived
// variable, since the method object is the same either way.
func consultsContext(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		f, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || f.Pkg() == nil || f.Pkg().Path() != "context" {
			return true
		}
		switch f.Name() {
		case "Done", "Err", "Deadline":
			found = true
		}
		return true
	})
	return found
}
