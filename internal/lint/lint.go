// Package lint is preexeclint: a suite of custom static analyzers enforcing
// the invariants this repo's tests can only observe dynamically — bit-exact
// determinism of the evaluation pipeline, context cancellation through hot
// paths, lock-scope discipline around blocking operations, sentinel-error
// hygiene, and the documented zero-Config pitfall. The analyzers run over
// type-checked packages via the stdlib-only framework in internal/lint/
// analysis and internal/lint/load; cmd/preexeclint is the multichecker
// driver wired into CI.
//
// # Suppressing a finding
//
// A finding can be silenced with a justified ignore directive on the flagged
// line or the line directly above it:
//
//	//lint:ignore <analyzer> <justification>
//
// The justification is mandatory: a bare //lint:ignore directive is itself
// reported as a finding. Suppressions are for invariant-preserving
// exceptions (e.g. a callback contractually serialized under its mutex), not
// for postponing fixes.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"preexec/internal/lint/analysis"
)

// Analyzers returns the full preexeclint suite in reporting order: the five
// per-package analyzers followed by the three whole-program analyzers
// (Analyzer.RunModule set) that need every package at once.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Determinism,
		CtxLoop,
		LockScope,
		ErrWrap,
		ConfigZero,
		DetFlow,
		Goroutine,
		AllocBudget,
	}
}

// DeterministicScope lists the packages whose output must be bit-for-bit
// reproducible — the determinism analyzer runs only on these. The values
// optionally restrict the check to specific files within the package (nil =
// every file); the root package's reproducibility surface is its report
// rendering, not the engine plumbing around it.
var DeterministicScope = map[string][]string{
	"preexec":                    {"report.go", "config.go"},
	"preexec/internal/timing":    nil,
	"preexec/internal/core":      nil,
	"preexec/internal/slice":     nil,
	"preexec/internal/selector":  nil,
	"preexec/internal/advantage": nil,
	"preexec/internal/fleet":     nil,
	// internal/obs sits inside deterministic call paths (fleet counters,
	// the engine's stage observer), so its rendering and ID generation are
	// in scope. clock.go is deliberately excluded: it is the one sanctioned
	// wall-clock seam, carrying its own justified detflow suppression at
	// the single time.Now call — scoping it here would double-report the
	// same, already-audited read.
	"preexec/internal/obs":      {"obs.go", "metrics.go", "trace.go"},
	"preexec/internal/pthread":  nil,
	"preexec/internal/stats":    nil,
	"preexec/internal/sweepio":  nil,
	"preexec/internal/workload": nil,
	"preexec/synth":             nil,
}

// ignoreRe matches a suppression directive: analyzer name(s), then the
// mandatory justification.
var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+([A-Za-z][A-Za-z0-9_,]*)\s*(.*)$`)

// Suppression is one parsed //lint:ignore directive.
type Suppression struct {
	File      string
	Line      int // the directive's own line
	Analyzers []string
	Justified bool
	Pos       token.Pos
	used      bool
}

// Suppressions extracts every //lint:ignore directive from files.
func Suppressions(fset *token.FileSet, files []*ast.File) []*Suppression {
	var out []*Suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				out = append(out, &Suppression{
					File:      pos.Filename,
					Line:      pos.Line,
					Analyzers: strings.Split(m[1], ","),
					Justified: strings.TrimSpace(m[2]) != "",
					Pos:       c.Pos(),
				})
			}
		}
	}
	return out
}

func (s *Suppression) covers(analyzer string) bool {
	for _, a := range s.Analyzers {
		if a == analyzer {
			return true
		}
	}
	return false
}

// Filter drops diagnostics suppressed by a justified directive on the same
// line or the line above, and appends a finding for every directive that is
// missing its justification. It returns the surviving diagnostics sorted by
// position.
func Filter(fset *token.FileSet, sups []*Suppression, diags []analysis.Diagnostic) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		suppressed := false
		for _, s := range sups {
			if s.File != pos.Filename || !s.covers(d.Category) {
				continue
			}
			if s.Line == pos.Line || s.Line == pos.Line-1 {
				s.used = true
				if s.Justified {
					suppressed = true
				}
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for _, s := range sups {
		if s.used && !s.Justified {
			out = append(out, analysis.Diagnostic{
				Pos:      s.Pos,
				Category: "lintdirective",
				Message:  "//lint:ignore directive needs a justification after the analyzer name",
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// ---- shared type/AST helpers used by the analyzers ----

// errorIface is the universe error interface.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// funcObj resolves a call's callee to its *types.Func, nil for builtins,
// conversions, and function-typed values.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isPkgFunc reports whether call invokes the package-level function
// pkgPath.name (methods excluded).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	f := funcObj(info, call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == pkgPath &&
		f.Name() == name && f.Type().(*types.Signature).Recv() == nil
}

// namedFrom reports whether t (after pointer indirection) is the named type
// pkgPath.name, returning the dereferenced named type.
func namedFrom(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// usesObject reports whether any identifier under node resolves to one of
// objs. Function-literal subtrees are included: a closure capturing the
// object still references it.
func usesObject(info *types.Info, node ast.Node, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && objs[info.Uses[id]] {
			found = true
		}
		return true
	})
	return found
}

// walkFuncs visits every function body under root — declarations and
// literals — calling fn with the enclosing *ast.FuncType and body. Nested
// literals are visited in their own right.
func walkFuncs(root ast.Node, fn func(ft *ast.FuncType, body *ast.BlockStmt)) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d.Type, d.Body)
			}
		case *ast.FuncLit:
			fn(d.Type, d.Body)
		}
		return true
	})
}

// isBuiltin reports whether id resolves to the named universe builtin.
func isBuiltin(info *types.Info, id *ast.Ident, name string) bool {
	if id.Name != name {
		return false
	}
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

// inspectShallow walks node but does not descend into nested function
// literals (their bodies execute in another dynamic context).
func inspectShallow(node ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}
