package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"preexec/internal/lint"
	"preexec/internal/lint/analysis"
	"preexec/internal/lint/analysistest"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.Determinism, "determinism")
}

func TestCtxLoop(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.CtxLoop, "ctxloop")
}

func TestLockScope(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.LockScope, "lockscope")
}

func TestErrWrap(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.ErrWrap, "errwrap")
}

func TestConfigZero(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.ConfigZero, "configzero")
}

// TestDetFlow runs the whole-program determinism analyzer over a fixture
// closure: sinks report only when reachable from a //lint:detroot-marked
// root, diagnostics carry the discovery chain, and reachability follows a
// function value handed across the package boundary (Reference edge).
func TestDetFlow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.DetFlow, "detflow")
}

// TestGoroutine checks the spawn-discipline analyzer against the repo's
// accepted spawn shapes (WaitGroup join, done-channel close/send, direct and
// transitive context bounds) and three fire-and-forget variants.
func TestGoroutine(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.Goroutine, "goroutine")
}

// TestSuppression proves a justified //lint:ignore silences exactly the
// directive's line while identical unsuppressed code stays flagged.
func TestSuppression(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.ErrWrap, "suppress")
}

// TestFilterMultiAnalyzer: one comma-separated directive suppresses findings
// from every analyzer it names on its line, while a third analyzer's finding
// on the same line survives.
func TestFilterMultiAnalyzer(t *testing.T) {
	const src = `package p

func f() {
	//lint:ignore errwrap,lockscope callback is contractually serialized and compared by identity.
	_ = 1 + 1
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	tf := fset.File(f.Pos())
	diags := []analysis.Diagnostic{
		{Pos: tf.LineStart(5), Message: "identity comparison", Category: "errwrap"},
		{Pos: tf.LineStart(5), Message: "lock held across blocking call", Category: "lockscope"},
		{Pos: tf.LineStart(5), Message: "select misses ctx.Done", Category: "ctxloop"},
	}

	out := lint.Filter(fset, lint.Suppressions(fset, []*ast.File{f}), diags)
	if len(out) != 1 || out[0].Category != "ctxloop" {
		t.Fatalf("got %v, want only the ctxloop finding to survive the errwrap,lockscope directive", out)
	}
}

// TestFilterRequiresJustification checks the driver-level rule that a bare
// //lint:ignore does not suppress and is itself reported.
func TestFilterRequiresJustification(t *testing.T) {
	const src = `package p

func f() {
	//lint:ignore errwrap
	_ = 1 + 1
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	tf := fset.File(f.Pos())
	diag := analysis.Diagnostic{Pos: tf.LineStart(5), Message: "identity comparison", Category: "errwrap"}

	out := lint.Filter(fset, lint.Suppressions(fset, []*ast.File{f}), []analysis.Diagnostic{diag})
	if len(out) != 2 {
		t.Fatalf("got %d findings, want 2 (unsuppressed original + unjustified directive): %v", len(out), out)
	}
	cats := map[string]bool{}
	for _, d := range out {
		cats[d.Category] = true
	}
	if !cats["errwrap"] || !cats["lintdirective"] {
		t.Fatalf("findings %v missing errwrap original or lintdirective complaint", out)
	}
}

// TestFilterJustified is the happy path: a justified directive removes the
// finding and adds nothing.
func TestFilterJustified(t *testing.T) {
	const src = `package p

func f() {
	//lint:ignore errwrap the fixture needs identity here.
	_ = 1 + 1
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	tf := fset.File(f.Pos())
	diag := analysis.Diagnostic{Pos: tf.LineStart(5), Message: "identity comparison", Category: "errwrap"}

	out := lint.Filter(fset, lint.Suppressions(fset, []*ast.File{f}), []analysis.Diagnostic{diag})
	if len(out) != 0 {
		t.Fatalf("got %d findings, want 0: %v", len(out), out)
	}
}

// TestSuppressionWrongAnalyzer: a directive for one analyzer does not
// suppress another's finding on the same line.
func TestSuppressionWrongAnalyzer(t *testing.T) {
	const src = `package p

func f() {
	//lint:ignore lockscope held by contract.
	_ = 1 + 1
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	tf := fset.File(f.Pos())
	diag := analysis.Diagnostic{Pos: tf.LineStart(5), Message: "identity comparison", Category: "errwrap"}

	out := lint.Filter(fset, lint.Suppressions(fset, []*ast.File{f}), []analysis.Diagnostic{diag})
	if len(out) != 1 || out[0].Category != "errwrap" {
		t.Fatalf("got %v, want the errwrap finding to survive a lockscope directive", out)
	}
}
