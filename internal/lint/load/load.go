// Package load type-checks Go packages for the preexeclint analyzers
// without golang.org/x/tools (unavailable in this repo's offline build
// environment). It shells out to the go command for package and export-data
// discovery — `go list -export` compiles each package's dependencies into
// the build cache and reports the export file per import path — and feeds
// those files to the standard library's gc importer, which is exactly the
// mechanism x/tools' go/packages uses underneath.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one type-checked, analyzable package.
type Package struct {
	Path  string // import path
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` in dir over patterns and
// decodes the JSON stream.
func goList(dir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ExportIndex maps import paths to gc export-data files, for use as a
// go/importer lookup source.
type ExportIndex map[string]string

// Lookup implements the importer.Lookup contract over the index.
func (x ExportIndex) Lookup(path string) (io.ReadCloser, error) {
	file, ok := x[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(file)
}

// Exports builds an export index for patterns (and all their dependencies),
// resolving them with the go command from dir. Use pattern "std"-style
// stdlib paths or module-relative ./... patterns.
func Exports(dir string, patterns ...string) (ExportIndex, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	idx := make(ExportIndex, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			idx[p.ImportPath] = p.Export
		}
	}
	return idx, nil
}

// Check parses and type-checks one package's files against the importer.
// The caller supplies the shared FileSet so positions stay comparable
// across packages.
func Check(fset *token.FileSet, path, dir string, fileNames []string, imp types.Importer) (*Package, error) {
	files := make([]*ast.File, 0, len(fileNames))
	for _, name := range fileNames {
		full := name
		if !filepath.IsAbs(full) {
			full = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", full, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Files: files, Types: pkg, Info: info}, nil
}

// Module loads every in-module package matching patterns (e.g. "./...")
// from the module rooted at (or containing) dir, type-checked and ready for
// analysis. Standard-library dependencies are consumed as export data;
// in-module dependencies resolve to the source-checked packages themselves
// (go list -deps emits dependencies first, so checking in list order is
// always safe). That keeps types.Object identity canonical across the whole
// load — a requirement for the interprocedural analyzers, whose call graph
// is keyed by *types.Func: the object a caller's Uses map holds for an
// imported function must be the very object the callee package's Defs map
// holds, or every cross-package edge dead-ends on an export-data twin.
// Packages are returned in import-path order.
func Module(dir string, patterns ...string) ([]*Package, *token.FileSet, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	idx := make(ExportIndex, len(pkgs))
	var targets []listedPkg
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			idx[p.ImportPath] = p.Export
		}
		// -deps includes the stdlib closure; analyze only the module's own
		// packages (commands included), which `go list` marks non-Standard.
		if !p.Standard && p.Module != nil && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := &moduleImporter{
		base:  importer.ForCompiler(fset, "gc", idx.Lookup),
		local: make(map[string]*types.Package, len(targets)),
	}
	out := make([]*Package, 0, len(targets))
	for _, t := range targets {
		pkg, err := Check(fset, t.ImportPath, t.Dir, t.GoFiles, imp)
		if err != nil {
			return nil, nil, err
		}
		imp.local[t.ImportPath] = pkg.Types
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, fset, nil
}

// moduleImporter resolves already-source-checked module packages by
// identity and everything else (the stdlib) from export data.
type moduleImporter struct {
	base  types.Importer
	local map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.local[path]; ok {
		return pkg, nil
	}
	return m.base.Import(path)
}
