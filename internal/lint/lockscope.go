package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"preexec/internal/lint/analysis"
)

// LockScope enforces the FlightGroup/StageCache discipline the PR 5 stress
// tests hunt dynamically: while a sync.Mutex or sync.RWMutex acquired in the
// current function is held, the function must not block — no channel
// operations, no select, no time.Sleep, no WaitGroup.Wait, no
// FlightGroup.Do-style calls, and no invocation of a function-typed value
// (callbacks can block arbitrarily or re-enter the lock). The analyzer walks
// each function linearly, tracking the held-lock set per lexical path:
// branches are explored with independent copies, so the unlock-then-block
// pattern in FlightGroup.Do is recognized as safe. sync.Cond.Wait is exempt
// (it releases the lock by contract).
var LockScope = &analysis.Analyzer{
	Name: "lockscope",
	Doc: "flags channel operations, blocking calls, and function-value calls " +
		"made while a mutex acquired in the same function is still held",
	Run: runLockScope,
}

func runLockScope(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		walkFuncs(f, func(_ *ast.FuncType, body *ast.BlockStmt) {
			scanLockScope(pass, body.List, map[string]bool{})
		})
	}
	return nil, nil
}

// lockKey renders the receiver expression of a (Lock|Unlock) call into a
// stable per-function key: "s.mu", "regMu", ...
func lockKey(expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return lockKey(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return lockKey(e.X) + "[...]"
	case *ast.StarExpr:
		return lockKey(e.X)
	default:
		return fmt.Sprintf("%T", e)
	}
}

// mutexOp decodes a statement-level expr as a mutex Lock/Unlock call,
// returning the lock key and whether it acquires (true) or releases.
func mutexOp(info *types.Info, call *ast.CallExpr) (key string, acquire, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return "", false, false
	}
	t := info.Types[sel.X].Type
	if t == nil || (!namedFrom(t, "sync", "Mutex") && !namedFrom(t, "sync", "RWMutex")) {
		return "", false, false
	}
	return lockKey(sel.X), acquire, true
}

// scanLockScope interprets a statement list with the given held-lock set.
// Nested blocks recurse on a copy so sibling branches don't contaminate each
// other; defers of Unlock keep the lock "held" for the rest of the function,
// which is exactly the property being checked.
func scanLockScope(pass *analysis.Pass, stmts []ast.Stmt, held map[string]bool) {
	info := pass.TypesInfo
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if key, acquire, ok := mutexOp(info, call); ok {
					if acquire {
						held[key] = true
					} else {
						delete(held, key)
					}
					continue
				}
			}
		case *ast.DeferStmt:
			// `defer mu.Unlock()` pins the lock for the remainder of the
			// function; `defer mu.Lock()` would be nonsense, ignore it.
			if key, acquire, ok := mutexOp(info, s.Call); ok && !acquire {
				held[key] = true
				continue
			}
		}
		if len(held) > 0 {
			checkStmtShallow(pass, stmt, held)
		}
		recurseBlocks(pass, stmt, held)
	}
}

// recurseBlocks descends into the nested statement lists of stmt, each with
// its own copy of the held set.
func recurseBlocks(pass *analysis.Pass, stmt ast.Stmt, held map[string]bool) {
	clone := func() map[string]bool {
		c := make(map[string]bool, len(held))
		for k := range held {
			c[k] = true
		}
		return c
	}
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		scanLockScope(pass, s.List, clone())
	case *ast.IfStmt:
		scanLockScope(pass, s.Body.List, clone())
		if s.Else != nil {
			recurseBlocks(pass, s.Else, held)
		}
	case *ast.ForStmt:
		scanLockScope(pass, s.Body.List, clone())
	case *ast.RangeStmt:
		scanLockScope(pass, s.Body.List, clone())
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanLockScope(pass, cc.Body, clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanLockScope(pass, cc.Body, clone())
			}
		}
	case *ast.LabeledStmt:
		recurseBlocks(pass, s.Stmt, held)
	}
}

// checkStmtShallow reports blocking constructs in stmt's own expressions,
// without descending into nested statement blocks (those get their own scan)
// or function literals (they run in another dynamic context).
func checkStmtShallow(pass *analysis.Pass, stmt ast.Stmt, held map[string]bool) {
	info := pass.TypesInfo
	locks := heldList(held)

	// Nested blocks are scanned by recurseBlocks; here examine only the
	// statement's immediate expressions (conditions, init clauses, calls).
	var exprs []ast.Node
	switch s := stmt.(type) {
	case *ast.BlockStmt, *ast.CaseClause:
		return
	case *ast.GoStmt:
		// Launching a goroutine never blocks; its body runs under its own
		// dynamic context and is scanned as a separate function literal.
		return
	case *ast.SelectStmt:
		pass.Reportf(s.Pos(), "select while %s is held blocks all other holders; release the lock first (see FlightGroup.Do)", locks)
		return
	case *ast.SendStmt:
		pass.Reportf(s.Pos(), "channel send while %s is held; release the lock before communicating", locks)
		return
	case *ast.IfStmt:
		if s.Init != nil {
			exprs = append(exprs, s.Init)
		}
		exprs = append(exprs, s.Cond)
	case *ast.ForStmt:
		if s.Init != nil {
			exprs = append(exprs, s.Init)
		}
		if s.Cond != nil {
			exprs = append(exprs, s.Cond)
		}
		if s.Post != nil {
			exprs = append(exprs, s.Post)
		}
	case *ast.RangeStmt:
		exprs = append(exprs, s.X)
	case *ast.SwitchStmt:
		if s.Init != nil {
			exprs = append(exprs, s.Init)
		}
		if s.Tag != nil {
			exprs = append(exprs, s.Tag)
		}
	case *ast.TypeSwitchStmt:
		exprs = append(exprs, s.Assign)
	default:
		exprs = append(exprs, stmt)
	}

	for _, root := range exprs {
		inspectShallow(root, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.UnaryExpr:
				if e.Op.String() == "<-" {
					pass.Reportf(e.Pos(), "channel receive while %s is held; release the lock before communicating", locks)
				}
			case *ast.SendStmt:
				pass.Reportf(e.Pos(), "channel send while %s is held; release the lock before communicating", locks)
			case *ast.CallExpr:
				checkBlockingCall(pass, info, e, locks)
			}
			return true
		})
	}
}

// checkBlockingCall flags calls that can block while a lock is held.
func checkBlockingCall(pass *analysis.Pass, info *types.Info, call *ast.CallExpr, locks string) {
	if f := funcObj(info, call); f != nil {
		sig := f.Type().(*types.Signature)
		if f.Pkg() != nil && f.Pkg().Path() == "time" && f.Name() == "Sleep" {
			pass.Reportf(call.Pos(), "time.Sleep while %s is held stalls every other holder", locks)
			return
		}
		if sig.Recv() != nil {
			recvT := sig.Recv().Type()
			switch f.Name() {
			case "Wait":
				// sync.Cond.Wait releases the lock by contract; WaitGroup
				// (and anything else named Wait) does not.
				if namedFrom(recvT, "sync", "Cond") {
					return
				}
				pass.Reportf(call.Pos(), "%s.Wait while %s is held can block indefinitely; release the lock first", typeShort(recvT), locks)
			case "Do", "Acquire":
				// Single-flight / semaphore style entry points; blocking by
				// design when the work or slot isn't ready.
				if takesContext(sig) || f.Name() == "Acquire" {
					pass.Reportf(call.Pos(), "%s.%s while %s is held serializes the whole flight behind this lock; call it after unlocking", typeShort(recvT), f.Name(), locks)
				}
			}
		}
		return
	}
	// Not a declared func: a call through a function-typed value (param,
	// field, local) — an arbitrary callback that may block or re-enter.
	fun := ast.Unparen(call.Fun)
	var obj types.Object
	switch e := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	}
	v, isVar := obj.(*types.Var)
	if !isVar {
		return
	}
	if _, isFunc := v.Type().Underlying().(*types.Signature); isFunc {
		pass.Reportf(call.Pos(), "calling function value %s while %s is held; a slow or re-entrant callback deadlocks other holders", exprText(fun), locks)
	}
}

func takesContext(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if namedFrom(sig.Params().At(i).Type(), "context", "Context") {
			return true
		}
	}
	return false
}

func typeShort(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

func exprText(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	default:
		return "<expr>"
	}
}

func heldList(held map[string]bool) string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	if len(keys) > 1 {
		// Deterministic message text regardless of map order.
		for i := 1; i < len(keys); i++ {
			for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
	}
	return strings.Join(keys, ", ")
}
