// Package configzero seeds positive and negative cases for the configzero
// analyzer: Config composite literals, zero-value declarations, and
// new(Config) outside the preexec package are flagged; DefaultConfig-based
// construction and fully-specified SelectionConfig literals are not.
package configzero

import "preexec"

func Literal() preexec.Config {
	return preexec.Config{} // want `DefaultConfig`
}

func LiteralWithFields() preexec.Config {
	return preexec.Config{MaxThreads: 4} // want `DefaultConfig`
}

func FromDefault() preexec.Config {
	cfg := preexec.DefaultConfig()
	cfg.MaxThreads = 4
	return cfg // override-on-default; not flagged
}

func ZeroVar() preexec.Config {
	var cfg preexec.Config // want `zero-value`
	return cfg
}

func NewConfig() *preexec.Config {
	return new(preexec.Config) // want `zero Config`
}

func AddrOfDefault() *preexec.Config {
	cfg := preexec.DefaultConfig()
	return &cfg // not flagged
}

func SelPartial() preexec.SelectionConfig {
	return preexec.SelectionConfig{MaxLen: 8} // want `Optimize/Merge`
}

func SelExplicit() preexec.SelectionConfig {
	return preexec.SelectionConfig{MaxLen: 8, Optimize: true, Merge: false} // both stated; not flagged
}

func SelDefault() preexec.SelectionConfig {
	sel := preexec.DefaultSelection()
	sel.MaxLen = 8
	return sel // not flagged
}
