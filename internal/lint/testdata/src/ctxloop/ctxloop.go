// Package ctxloop seeds positive and negative cases for the ctxloop
// analyzer: indefinite loops, channel ranges, and HTTP-handler work loops
// must consult an available context; polled, derived-channel, and
// ctx-passing forms are accepted, and functions with no context in reach
// are out of scope.
package ctxloop

import (
	"context"
	"net/http"
	"strconv"
	"strings"
)

func step() {}

func expensive(i int) int { return i * i }

func SpinNoCheck(ctx context.Context) {
	for { // want `indefinite loop`
		step()
	}
}

func SpinPolled(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			return
		}
		step()
	}
}

func SpinDerivedDone(ctx context.Context) {
	done := ctx.Done()
	for {
		select {
		case <-done:
			return
		default:
		}
		step()
	}
}

func SpinPassesCtx(ctx context.Context, eval func(context.Context) error) {
	for {
		if eval(ctx) != nil {
			return
		}
	}
}

func NoCtxInScope(quit chan bool) {
	for { // no context is available here; not flagged
		select {
		case <-quit:
			return
		default:
		}
		step()
	}
}

func DrainNoCheck(ctx context.Context, ch chan int) int {
	n := 0
	for v := range ch { // want `channel range`
		n += v
	}
	return n
}

func DrainPolled(ctx context.Context, ch chan int) int {
	n := 0
	for v := range ch {
		if ctx.Err() != nil {
			break
		}
		n += v
	}
	return n
}

func HandleNoCheck(w http.ResponseWriter, r *http.Request) {
	items := make([]int, 1000)
	for i := range items { // want `request context`
		items[i] = expensive(i)
	}
}

func HandleChecked(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	items := make([]int, 1000)
	for i := range items {
		if ctx.Err() != nil {
			return
		}
		items[i] = expensive(i)
	}
}

func HandleInlineCtx(w http.ResponseWriter, r *http.Request) {
	items := make([]int, 1000)
	for i := range items {
		if r.Context().Err() != nil {
			return
		}
		items[i] = expensive(i)
	}
}

func HandleCheapLoop(w http.ResponseWriter, r *http.Request) {
	var sb strings.Builder
	for i := 0; i < 10; i++ {
		sb.WriteString(strconv.Itoa(i)) // constant-bounded formatting; not flagged
	}
}
