// Package determinism seeds positive and negative cases for the
// determinism analyzer: wall-clock reads, global randomness, and
// order-leaking map iteration are flagged; seeded sources and the
// collect-then-sort idiom are not.
package determinism

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

func Timestamp() int64 {
	return time.Now().Unix() // want `time.Now`
}

func Jitter() int {
	return rand.Int() // want `process-seeded`
}

func SeededOK(r *rand.Rand) int {
	return r.Int() // a seeded source reproduces; not flagged
}

func NewSeededOK() *rand.Rand {
	return rand.New(rand.NewSource(42)) // constructing a source is fine
}

func PrintMap(m map[string]int, sb *strings.Builder) {
	for k := range m {
		fmt.Fprintf(sb, "%s\n", k) // want `map order`
	}
}

func WriteMap(m map[string]int, sb *strings.Builder) {
	for k := range m {
		sb.WriteString(k) // want `map order`
	}
}

func SendKeys(m map[string]bool, ch chan string) {
	for k := range m {
		ch <- k // want `map order`
	}
}

func CollectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `fixes map order`
	}
	return keys
}

func CollectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // sorted below; not flagged
	}
	sort.Strings(keys)
	return keys
}

func SumFloats(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `order-sensitive`
	}
	return total
}

func SumInts(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // integer addition commutes exactly; not flagged
	}
	return n
}

func SliceRangeOK(vals []float64, sb *strings.Builder) float64 {
	var total float64
	for _, v := range vals {
		total += v // slice order is deterministic; not flagged
		fmt.Fprintf(sb, "%g\n", v)
	}
	return total
}
