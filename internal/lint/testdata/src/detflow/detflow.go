// Package detflow exercises the whole-program determinism analyzer: sinks
// are only reported when transitively reachable from a root, the diagnostic
// carries the discovery chain, and reachability follows function values
// handed across package boundaries.
package detflow

import (
	"math/rand"
	"sort"
	"time"

	"detflowdep"
)

// Root is the fixture's pinned entry point.
//
//lint:detroot fixture stand-in for the bit-reproducible API surface
func Root(keys map[string]int) []string {
	stamp()
	out := collect(keys)
	out = append(out, sortedCollect(keys)...)
	detflowdep.Run(emit)
	_ = seeded()
	return out
}

// stamp is one hop below the root: its wall-clock read must be reported with
// the full Root -> stamp chain.
func stamp() int64 {
	return time.Now().UnixNano() // want `time.Now reached from deterministic root via detflow.Root -> detflow.stamp -> time.Now`
}

// collect fixes map order into the returned slice without sorting.
func collect(keys map[string]int) []string {
	var out []string
	for k := range keys {
		out = append(out, k) // want `append to out inside map iteration .*reached from deterministic root via detflow.Root -> detflow.collect`
	}
	return out
}

// sortedCollect uses the repo's collect-then-sort idiom — exempt.
func sortedCollect(keys map[string]int) []string {
	var out []string
	for k := range keys {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// emit is never called in this package: it escapes as a value into
// detflowdep.Run, so only the Reference edge keeps it reachable.
func emit() {
	_ = rand.Int() // want `global math/rand.Int reached from deterministic root via detflow.Root -> detflow.emit -> global math/rand.Int`
}

// seeded draws from an explicitly seeded source — allowed.
func seeded() int {
	r := rand.New(rand.NewSource(1))
	return r.Int()
}

// orphan is unreachable from any root: its clock read is the local
// determinism analyzer's business, not detflow's.
func orphan() time.Time {
	return time.Now()
}
