// Package detflowdep is a fixture dependency: a fleet-style helper that
// routes work through a function value, so reachability must cross the
// package boundary via a Reference edge.
package detflowdep

// Run invokes the supplied callback.
func Run(f func()) {
	f()
}
