// Package errwrap seeds positive and negative cases for the errwrap
// analyzer: identity comparison, switch cases, unwrapped fmt.Errorf, and
// string matching against sentinel errors are flagged; errors.Is/As and nil
// checks are not.
package errwrap

import (
	"errors"
	"fmt"
	"strings"
)

var (
	ErrMissing = errors.New("missing")
	ErrBusy    = errors.New("busy")
)

func CompareEq(err error) bool {
	return err == ErrMissing // want `errors.Is`
}

func CompareNeq(err error) bool {
	return err != ErrBusy // want `errors.Is`
}

func CompareIs(err error) bool {
	return errors.Is(err, ErrMissing) // the right way; not flagged
}

func NilCheck(err error) bool {
	return err != nil // nil is not a sentinel; not flagged
}

func SwitchIdentity(err error) int {
	switch err {
	case ErrMissing: // want `errors.Is`
		return 1
	case nil:
		return 0
	}
	return 2
}

func SwitchIsChain(err error) int {
	switch {
	case errors.Is(err, ErrMissing): // tagless switch; not flagged
		return 1
	}
	return 2
}

func WrapWithout() error {
	return fmt.Errorf("lookup failed: %v", ErrMissing) // want `%w`
}

func WrapWith() error {
	return fmt.Errorf("lookup failed: %w", ErrMissing) // wrapped; not flagged
}

func PlainErrorf(name string) error {
	return fmt.Errorf("no workload %q", name) // no sentinel involved; not flagged
}

func StringContains(err error) bool {
	return strings.Contains(err.Error(), "missing") // want `brittle`
}

func StringEq(err error) bool {
	return err.Error() == "missing" // want `brittle`
}

func MessageForUser(err error) string {
	return "failed: " + err.Error() // rendering, not matching; not flagged
}
