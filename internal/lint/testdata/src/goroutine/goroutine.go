// Package goroutine exercises the spawn-discipline analyzer: fire-and-forget
// spawns are flagged; WaitGroup joins, done-channel close/send, and
// (transitively reachable) context-bounded loops are accepted.
package goroutine

import (
	"context"
	"sync"
)

// Leak is the classic fire-and-forget: no join, no bound.
func Leak() {
	go func() { // want `fire-and-forget goroutine`
		for {
			step()
		}
	}()
}

// LeakNamed spawns a named worker with no discipline anywhere in its call
// closure.
func LeakNamed() {
	go spin() // want `fire-and-forget goroutine`
}

func spin() {
	for {
		step()
	}
}

// LeakValue spawns through a function value the call graph cannot resolve:
// nothing is provable, so it is flagged.
func LeakValue(f func()) {
	go f() // want `fire-and-forget goroutine`
}

// WaitGroupJoin is the ParallelEach worker shape.
func WaitGroupJoin() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		step()
	}()
	wg.Wait()
}

// DoneChannel is the coordinator probe shape.
func DoneChannel() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		step()
	}()
	return done
}

// ResultSend delivers its result over a channel — the preexecd
// ListenAndServe shape.
func ResultSend() error {
	errc := make(chan error, 1)
	go func() { errc <- work() }()
	return <-errc
}

// CtxDirect consults the context in the spawned literal itself.
func CtxDirect(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// CtxTransitive reaches the ctx-bounded loop two calls away — the
// ProbeLoop shape, provable only through the whole-program call graph.
func CtxTransitive(ctx context.Context) {
	go run(ctx)
}

func run(ctx context.Context) {
	poll(ctx)
}

func poll(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
			step()
		}
	}
}

func step() {}

func work() error { return nil }
