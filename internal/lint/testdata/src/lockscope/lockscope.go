// Package lockscope seeds positive and negative cases for the lockscope
// analyzer: channel operations, sleeps, waits, single-flight Do calls, and
// function-value calls under a held mutex are flagged; the unlock-then-block
// branch shape (FlightGroup.Do) and sync.Cond.Wait are not.
package lockscope

import (
	"context"
	"sync"
	"time"
)

type Group struct {
	mu sync.Mutex
	m  map[string]chan struct{}
	cb func()
}

func (g *Group) SendLocked(ch chan int) {
	g.mu.Lock()
	ch <- 1 // want `channel send`
	g.mu.Unlock()
}

func (g *Group) SendUnlocked(ch chan int) {
	g.mu.Lock()
	g.mu.Unlock()
	ch <- 1 // lock already released; not flagged
}

func (g *Group) RecvDeferred(ch chan int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return <-ch // want `channel receive`
}

func (g *Group) SelectLocked(ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	select { // want `select while`
	case <-ch:
	default:
	}
}

func (g *Group) CallbackLocked() {
	g.mu.Lock()
	g.cb() // want `function value`
	g.mu.Unlock()
}

func (g *Group) CallbackUnlocked() {
	g.mu.Lock()
	cb := g.cb
	g.mu.Unlock()
	cb() // snapshot-then-call outside the lock; not flagged
}

func (g *Group) SleepLocked() {
	g.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep`
	g.mu.Unlock()
}

func (g *Group) WaitLocked(wg *sync.WaitGroup) {
	g.mu.Lock()
	defer g.mu.Unlock()
	wg.Wait() // want `Wait while`
}

func (g *Group) CondWaitOK(c *sync.Cond) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.m == nil {
		c.Wait() // Cond.Wait releases its locker by contract; not flagged
	}
}

// DoStyle mirrors FlightGroup.Do: the blocking receive happens only on the
// branch that released the lock first, and compute runs after the unlock.
func (g *Group) DoStyle(key string, compute func()) {
	g.mu.Lock()
	if ch, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-ch // this path unlocked above; not flagged
		return
	}
	ch := make(chan struct{})
	g.m[key] = ch
	g.mu.Unlock()
	compute() // lock released on this path too; not flagged
	close(ch)
}

func (g *Group) GoroutineOK(ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	go func() {
		ch <- 1 // runs in another goroutine; not flagged here
	}()
}

type Flight struct{}

func (f *Flight) Do(ctx context.Context, key string) error { return ctx.Err() }

func (g *Group) FlightLocked(ctx context.Context, f *Flight) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return f.Do(ctx, "k") // want `serializes`
}

func (g *Group) FlightUnlocked(ctx context.Context, f *Flight) error {
	g.mu.Lock()
	g.mu.Unlock()
	return f.Do(ctx, "k") // lock released; not flagged
}

type Reg struct {
	mu sync.RWMutex
	ch chan int
}

func (r *Reg) ReadSend() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.ch <- 1 // want `channel send`
}

func (r *Reg) ReadOnly() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.ch) // pure read under RLock; not flagged
}
