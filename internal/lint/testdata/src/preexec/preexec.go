// Package preexec is a minimal stand-in for the repository's root package,
// present so configzero testdata can import the "preexec" path without
// dragging the real module into the testdata type-check. Only the shapes
// the analyzer inspects exist: Config, SelectionConfig, and their default
// constructors.
package preexec

type SelectionConfig struct {
	MaxLen   int
	Optimize bool
	Merge    bool
}

type Config struct {
	MaxThreads int
	Selection  SelectionConfig
}

func DefaultSelection() SelectionConfig {
	return SelectionConfig{MaxLen: 16, Optimize: true, Merge: true}
}

func DefaultConfig() Config {
	return Config{MaxThreads: 8, Selection: DefaultSelection()}
}
