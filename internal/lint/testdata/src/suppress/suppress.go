// Package suppress exercises the //lint:ignore directive path end to end: a
// justified directive silences the finding on the next line, while the same
// code without a directive is still flagged. (The requirement that a bare
// directive carry a justification is covered by a unit test on lint.Filter,
// since a want-comment cannot share a line with the directive itself.)
package suppress

import "errors"

var ErrGone = errors.New("gone")

func Justified(err error) bool {
	//lint:ignore errwrap this file exercises suppression; the comparison is the fixture, not a bug.
	return err == ErrGone
}

func Control(err error) bool {
	return err == ErrGone // want `errors.Is`
}
