// Package mem implements a sparse, paged, 64-bit word memory used by the
// functional interpreter and by the timing simulator's architectural state.
// Addresses are byte addresses; loads and stores operate on naturally
// aligned 8-byte words (the only granularity the PRX ISA has).
package mem

import "sort"

const (
	pageShift = 12 // 4KB pages
	pageBytes = 1 << pageShift
	pageWords = pageBytes / 8
	pageMask  = pageBytes - 1
)

type page [pageWords]int64

// Memory is a sparse 64-bit address space. The zero value is not usable; use
// New. Reads of unmapped addresses return 0 without allocating.
type Memory struct {
	pages map[uint64]*page
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

// align rounds addr down to its containing word.
func align(addr int64) uint64 { return uint64(addr) &^ 7 }

// Read returns the 8-byte word containing addr (addr is aligned down).
func (m *Memory) Read(addr int64) int64 {
	a := align(addr)
	p := m.pages[a>>pageShift]
	if p == nil {
		return 0
	}
	return p[(a&pageMask)/8]
}

// Write stores val into the 8-byte word containing addr.
func (m *Memory) Write(addr int64, val int64) {
	a := align(addr)
	key := a >> pageShift
	p := m.pages[key]
	if p == nil {
		if val == 0 {
			return // writing zero to an unmapped word is a no-op
		}
		p = new(page)
		m.pages[key] = p
	}
	p[(a&pageMask)/8] = val
}

// WriteWords stores consecutive words starting at base.
func (m *Memory) WriteWords(base int64, vals []int64) {
	for i, v := range vals {
		m.Write(base+int64(i)*8, v)
	}
}

// ReadWords reads n consecutive words starting at base.
func (m *Memory) ReadWords(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = m.Read(base + int64(i)*8)
	}
	return out
}

// Pages returns the number of mapped pages (for tests and footprint checks).
func (m *Memory) Pages() int { return len(m.pages) }

// Run is a maximal run of consecutive non-zero words: Vals[i] lives at byte
// address Base + 8*i.
type Run struct {
	Base int64
	Vals []int64
}

// Runs returns the memory's non-zero contents as address-ordered runs of
// consecutive words — the canonical form the PRX disassembler emits as
// .data/.word directives. Zero words inside a mapped page break runs, so
// assembling the runs back reproduces an image that reads identically
// (unmapped and explicit-zero words are indistinguishable to Read).
func (m *Memory) Runs() []Run {
	keys := make([]uint64, 0, len(m.pages))
	for k := range m.pages {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	var runs []Run
	var cur *Run
	for _, k := range keys {
		p := m.pages[k]
		pageBase := int64(k << pageShift)
		for i, v := range p {
			if v == 0 {
				cur = nil
				continue
			}
			addr := pageBase + int64(i)*8
			if cur != nil && cur.Base+int64(len(cur.Vals))*8 == addr {
				cur.Vals = append(cur.Vals, v)
				continue
			}
			runs = append(runs, Run{Base: addr})
			cur = &runs[len(runs)-1]
			cur.Vals = append(cur.Vals, v)
		}
	}
	return runs
}

// Clone returns a deep copy of the memory. The timing simulator clones the
// post-initialization image so p-thread speculative state can never corrupt
// the main thread's architectural memory.
func (m *Memory) Clone() *Memory {
	c := New()
	for k, p := range m.pages {
		cp := *p
		c.pages[k] = &cp
	}
	return c
}
