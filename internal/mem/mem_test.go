package mem

import (
	"testing"
	"testing/quick"
)

func TestReadUnmapped(t *testing.T) {
	m := New()
	if got := m.Read(0x1234560); got != 0 {
		t.Errorf("unmapped read = %d, want 0", got)
	}
	if m.Pages() != 0 {
		t.Errorf("reads must not allocate pages, got %d pages", m.Pages())
	}
}

func TestWriteRead(t *testing.T) {
	m := New()
	m.Write(0x1000, 42)
	if got := m.Read(0x1000); got != 42 {
		t.Errorf("Read = %d, want 42", got)
	}
	m.Write(0x1000, -7)
	if got := m.Read(0x1000); got != -7 {
		t.Errorf("overwrite Read = %d, want -7", got)
	}
}

func TestAlignment(t *testing.T) {
	m := New()
	m.Write(0x1003, 9) // unaligned: lands in the word at 0x1000
	if got := m.Read(0x1000); got != 9 {
		t.Errorf("Read(0x1000) = %d, want 9", got)
	}
	if got := m.Read(0x1007); got != 9 {
		t.Errorf("Read(0x1007) = %d, want 9 (same word)", got)
	}
	if got := m.Read(0x1008); got != 0 {
		t.Errorf("Read(0x1008) = %d, want 0 (next word)", got)
	}
}

func TestZeroWriteDoesNotAllocate(t *testing.T) {
	m := New()
	m.Write(0x5000, 0)
	if m.Pages() != 0 {
		t.Errorf("zero write to unmapped memory allocated %d pages", m.Pages())
	}
}

func TestCrossPage(t *testing.T) {
	m := New()
	m.Write(0xFF8, 1) // last word of page 0
	m.Write(0x1000, 2)
	if m.Pages() != 2 {
		t.Errorf("expected 2 pages, got %d", m.Pages())
	}
	if m.Read(0xFF8) != 1 || m.Read(0x1000) != 2 {
		t.Error("cross-page values corrupted")
	}
}

func TestWriteReadWords(t *testing.T) {
	m := New()
	vals := []int64{10, 20, 30, 40, 50}
	m.WriteWords(0x2000, vals)
	got := m.ReadWords(0x2000, len(vals))
	for i := range vals {
		if got[i] != vals[i] {
			t.Errorf("word %d = %d, want %d", i, got[i], vals[i])
		}
	}
}

func TestClone(t *testing.T) {
	m := New()
	m.Write(0x100, 7)
	c := m.Clone()
	c.Write(0x100, 8)
	c.Write(0x9000, 3)
	if m.Read(0x100) != 7 {
		t.Error("clone write leaked into original")
	}
	if m.Read(0x9000) != 0 {
		t.Error("clone page leaked into original")
	}
	if c.Read(0x100) != 8 || c.Read(0x9000) != 3 {
		t.Error("clone lost its own writes")
	}
}

func TestNegativeAddresses(t *testing.T) {
	// Negative int64 addresses are treated as high unsigned addresses;
	// round-tripping must still work.
	m := New()
	m.Write(-16, 99)
	if got := m.Read(-16); got != 99 {
		t.Errorf("negative-address roundtrip = %d, want 99", got)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	m := New()
	f := func(addr int64, val int64) bool {
		m.Write(addr, val)
		return m.Read(addr) == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickIndependentWords(t *testing.T) {
	// Writing word A never perturbs a different word B.
	m := New()
	f := func(a, b int64, va, vb int64) bool {
		if align(a) == align(b) {
			return true
		}
		m.Write(a, va)
		m.Write(b, vb)
		return m.Read(a) == va && m.Read(b) == vb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRuns(t *testing.T) {
	m := New()
	if runs := m.Runs(); len(runs) != 0 {
		t.Fatalf("empty memory Runs = %v, want none", runs)
	}
	// Two runs split by a zero word, plus one spanning a page boundary.
	m.WriteWords(0x100, []int64{1, 2, 3})
	m.Write(0x128, 5)                          // 0x118/0x120 stay zero: breaks the run
	m.WriteWords(2*pageBytes-8, []int64{7, 8}) // crosses into page 2
	runs := m.Runs()
	want := []Run{
		{Base: 0x100, Vals: []int64{1, 2, 3}},
		{Base: 0x128, Vals: []int64{5}},
		{Base: 2*pageBytes - 8, Vals: []int64{7, 8}},
	}
	if len(runs) != len(want) {
		t.Fatalf("Runs = %+v, want %+v", runs, want)
	}
	for i := range want {
		if runs[i].Base != want[i].Base || len(runs[i].Vals) != len(want[i].Vals) {
			t.Fatalf("run %d = %+v, want %+v", i, runs[i], want[i])
		}
		for j, v := range want[i].Vals {
			if runs[i].Vals[j] != v {
				t.Errorf("run %d val %d = %d, want %d", i, j, runs[i].Vals[j], v)
			}
		}
	}
	// Round trip: writing the runs into a fresh memory reads identically.
	m2 := New()
	for _, r := range runs {
		m2.WriteWords(r.Base, r.Vals)
	}
	for _, r := range want {
		for j := range r.Vals {
			addr := r.Base + int64(j)*8
			if m2.Read(addr) != m.Read(addr) {
				t.Errorf("round-trip mismatch at %#x", addr)
			}
		}
	}
}
