package obs

import "time"

// Clock abstracts the wall clock so that instrumented code — span timing,
// stage-latency measurement — never calls time.Now itself. Everything
// reachable from the bit-reproducible API surface reads time only through
// this interface, which keeps the detflow analyzer's guarantee auditable:
// the one sanctioned wall-clock read lives below, behind an explicit,
// justified suppression, instead of a blanket lint exemption for the
// package.
type Clock interface {
	Now() time.Time
}

// SystemClock is the production Clock: the real wall clock.
var SystemClock Clock = systemClock{}

type systemClock struct{}

func (systemClock) Now() time.Time {
	// The single sanctioned wall-clock read of the observability layer.
	// Timestamps taken here feed only metric latencies and span timelines —
	// side channels outside every golden-pinned response body — so replays
	// of the deterministic API surface stay bit-identical with tracing on.
	//lint:ignore detflow observability timestamps are a side channel: they never reach a golden-pinned output, and every deterministic-surface caller reaches this only through the injected obs.Clock seam
	return time.Now()
}

// FrozenClock is a Clock stuck at a fixed instant — for tests that need
// reproducible span timestamps.
type FrozenClock time.Time

// Now returns the frozen instant.
func (f FrozenClock) Now() time.Time { return time.Time(f) }
