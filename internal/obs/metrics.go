package obs

import (
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter with an atomic hot path. A
// nil *Counter is a valid, allocation-free no-op, so instrumented code never
// branches on "is observability on" — it just calls the method. The zero
// Counter is ready to use, which lets other packages embed counters by value
// (fleet.Pool) and hand them to a Registry for rendering.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (no-op on a nil receiver).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. Nil and zero semantics match
// Counter.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value (no-op on a nil receiver).
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (no-op on a nil receiver).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the gauge's current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket latency histogram: observations land in the
// first bucket whose upper bound is >= the value, with an implicit +Inf
// overflow bucket. Buckets and sum use atomics, so Observe is lock-free; a
// nil *Histogram is an allocation-free no-op.
type Histogram struct {
	bounds []time.Duration // ascending upper bounds
	counts []atomic.Int64  // len(bounds)+1; last is +Inf
	sum    atomic.Int64    // nanoseconds
	count  atomic.Int64
}

// LatencyBuckets are the default stage-latency bounds: 1ms to 30s on a
// roughly 1-2.5-5 decade ladder, wide enough for a cold profile of a scaled
// workload and fine enough to separate cache hits from real stage runs.
var LatencyBuckets = []time.Duration{
	time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
	10 * time.Second,
	30 * time.Second,
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds []time.Duration) *Histogram {
	return &Histogram{
		bounds: append([]time.Duration(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one duration (no-op on a nil receiver).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.count.Add(1)
}

// Snapshot returns per-bucket (non-cumulative) counts — the +Inf overflow
// bucket last — plus the sum and total count. Nil receivers return empty.
func (h *Histogram) Snapshot() (counts []int64, sum time.Duration, count int64) {
	if h == nil {
		return nil, 0, 0
	}
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, time.Duration(h.sum.Load()), h.count.Load()
}
