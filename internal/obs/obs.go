// Package obs is the repo's zero-dependency observability core: a metrics
// registry (counters, gauges, fixed-bucket latency histograms) rendered in
// the Prometheus text exposition format, plus lightweight span tracing with
// deterministic IDs, designed so instrumentation can sit inside the
// bit-reproducible evaluation pipeline without perturbing it.
//
// Two properties are load-bearing:
//
//   - Disabled instrumentation is free. Every metric and span method is a
//     nil-receiver no-op, so an uninstrumented hot path pays one nil check
//     and zero allocations (pinned by BenchmarkObsDisabledOverhead).
//   - Nothing here reads the wall clock or the process-seeded random source
//     directly. Timestamps come from an injected Clock (SystemClock is the
//     one sanctioned time.Now call site, explicitly suppressed for the
//     detflow analyzer), and trace/span IDs come from a seeded splitmix64
//     sequence — never from time.Now identity — so traced replays of the
//     pinned API surface stay bit-identical.
//
// Rendering is deterministic: metric families are sorted by name and series
// appear in registration order; no map is ever ranged over on an output
// path.
package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Label is one metric label pair. Series of one family are distinguished by
// their label sets (e.g. per-backend fleet counters).
type Label struct {
	Key, Value string
}

// Registry holds registered metrics and renders them as Prometheus text
// exposition format. The zero Registry is not usable; build one with
// NewRegistry. All methods are safe for concurrent use, but registration is
// expected at construction time: series render in registration order.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family // duplicate/type checking only, never ranged
}

// family is every series sharing one metric name (one # HELP/# TYPE block).
type family struct {
	name, help, typ string
	series          []series
}

// series is one rendered time series: a scalar read through value, or a
// histogram.
type series struct {
	labels []Label
	value  func() int64 // counters and gauges
	hist   *Histogram   // histograms
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) register(name, help, typ string, s series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.typ != typ {
		panic("obs: metric " + name + " registered as both " + f.typ + " and " + typ)
	}
	f.series = append(f.series, s)
}

// Counter constructs a counter and registers it under name.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.RegisterCounter(name, help, c, labels...)
	return c
}

// RegisterCounter registers an externally-owned counter (e.g. one embedded
// in a fleet.Pool) so the registry and every other reader share one source.
func (r *Registry) RegisterCounter(name, help string, c *Counter, labels ...Label) {
	r.register(name, help, "counter", series{labels: labels, value: c.Value})
}

// Gauge constructs a gauge and registers it under name.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", series{labels: labels, value: g.Value})
	return g
}

// CounterFunc registers a counter series read through fn at render time —
// for exposing counters already owned elsewhere (cache stats, flight
// groups) without duplicating their bookkeeping.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	r.register(name, help, "counter", series{labels: labels, value: fn})
}

// GaugeFunc registers a gauge series read through fn at render time.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label) {
	r.register(name, help, "gauge", series{labels: labels, value: fn})
}

// Histogram constructs a fixed-bucket histogram over the given upper bounds
// (ascending; an implicit +Inf bucket is appended) and registers it.
func (r *Registry) Histogram(name, help string, bounds []time.Duration, labels ...Label) *Histogram {
	h := NewHistogram(bounds)
	r.register(name, help, "histogram", series{labels: labels, hist: h})
	return h
}

// WriteText renders every registered metric in Prometheus text exposition
// format: families sorted by name, series in registration order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		bw.WriteString("# HELP " + f.name + " " + f.help + "\n")
		bw.WriteString("# TYPE " + f.name + " " + f.typ + "\n")
		for _, s := range f.series {
			if s.hist != nil {
				writeHistogram(bw, f.name, s.labels, s.hist)
				continue
			}
			bw.WriteString(f.name + labelString(s.labels) + " " + strconv.FormatInt(s.value(), 10) + "\n")
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram series: cumulative buckets with an
// le label appended to the series labels, then _sum (seconds) and _count.
func writeHistogram(bw *bufio.Writer, name string, labels []Label, h *Histogram) {
	counts, sum, count := h.Snapshot()
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += counts[i]
		le := append(append([]Label(nil), labels...), Label{"le", formatSeconds(bound)})
		bw.WriteString(name + "_bucket" + labelString(le) + " " + strconv.FormatInt(cum, 10) + "\n")
	}
	cum += counts[len(h.bounds)]
	le := append(append([]Label(nil), labels...), Label{"le", "+Inf"})
	bw.WriteString(name + "_bucket" + labelString(le) + " " + strconv.FormatInt(cum, 10) + "\n")
	bw.WriteString(name + "_sum" + labelString(labels) + " " + formatSeconds(sum) + "\n")
	bw.WriteString(name + "_count" + labelString(labels) + " " + strconv.FormatInt(count, 10) + "\n")
}

// labelString renders labels as {k="v",...} in slice order ("" when empty).
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

// formatSeconds renders a duration as a seconds value the way Prometheus
// clients do (shortest float representation).
func formatSeconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}
