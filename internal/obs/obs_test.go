package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketing pins the bucket-assignment rule: an observation
// lands in the first bucket whose upper bound is >= the value, overflow in
// +Inf.
func TestHistogramBucketing(t *testing.T) {
	bounds := []time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond}
	h := NewHistogram(bounds)
	for _, d := range []time.Duration{
		500 * time.Microsecond, // bucket 0
		time.Millisecond,       // bucket 0 (le is inclusive)
		time.Millisecond + 1,   // bucket 1
		10 * time.Millisecond,  // bucket 1
		99 * time.Millisecond,  // bucket 2
		time.Second,            // +Inf
	} {
		h.Observe(d)
	}
	counts, sum, count := h.Snapshot()
	want := []int64{2, 2, 1, 1}
	if len(counts) != len(want) {
		t.Fatalf("snapshot has %d buckets, want %d", len(counts), len(want))
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, counts[i], want[i])
		}
	}
	if count != 6 {
		t.Errorf("count = %d, want 6", count)
	}
	wantSum := 500*time.Microsecond + time.Millisecond + time.Millisecond + 1 +
		10*time.Millisecond + 99*time.Millisecond + time.Second
	if sum != wantSum {
		t.Errorf("sum = %v, want %v", sum, wantSum)
	}
}

// TestHistogramRenderCumulative checks the Prometheus rendering: _bucket
// lines are cumulative, le values are seconds, +Inf equals _count.
func TestHistogramRenderCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d_seconds", "test.", []time.Duration{time.Millisecond, time.Second})
	h.Observe(500 * time.Microsecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(2 * time.Second)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, line := range []string{
		`d_seconds_bucket{le="0.001"} 1`,
		`d_seconds_bucket{le="1"} 2`,
		`d_seconds_bucket{le="+Inf"} 3`,
		`d_seconds_count 3`,
	} {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("rendering missing %q:\n%s", line, got)
		}
	}
}

// TestCounterConcurrent hammers one counter from many goroutines; run under
// -race this doubles as the data-race check for the atomic hot path.
func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, per = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

// TestNilReceivers exercises every nil-receiver no-op: disabled
// instrumentation must be inert, not crash.
func TestNilReceivers(t *testing.T) {
	var c *Counter
	c.Add(1)
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	var g *Gauge
	g.Set(5)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(time.Second)
	if counts, _, n := h.Snapshot(); counts != nil || n != 0 {
		t.Error("nil histogram has observations")
	}
	var tr *Tracer
	if tr.NewTraceID() != "" {
		t.Error("nil tracer minted an ID")
	}
	sp := tr.StartSpan("abc", "", "x")
	if sp != nil {
		t.Fatal("nil tracer returned a non-nil span")
	}
	sp.SetAttr("k", "v")
	sp.End()
	if sp.SpanID() != "" {
		t.Error("nil span has an ID")
	}
	tr.Import(Span{})
	if tr.Collect("abc") != nil {
		t.Error("nil tracer collected spans")
	}
	ss := &SpanStages{} // nil Tracer field
	ss.StageStart("base", "b")()
}

// TestRegistryDeterministicRender checks two identically-built registries
// render identical bytes, and that families sort by name while series keep
// registration order.
func TestRegistryDeterministicRender(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.CounterFunc("zzz_total", "last registered, first alphabetically... not.", func() int64 { return 3 })
		c := r.Counter("aaa_total", "a counter.", Label{Key: "k", Value: "v2"})
		c.Add(7)
		r.RegisterCounter("aaa_total", "", &Counter{}, Label{Key: "k", Value: "v1"})
		r.Gauge("mmm", "a gauge.").Set(-4)
		return r
	}
	var a, b bytes.Buffer
	if err := build().WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("renders differ:\n%s\n---\n%s", a.String(), b.String())
	}
	got := a.String()
	ai := strings.Index(got, "aaa_total")
	mi := strings.Index(got, "mmm")
	zi := strings.Index(got, "zzz_total")
	if !(ai < mi && mi < zi) {
		t.Errorf("families not sorted by name:\n%s", got)
	}
	if v2 := strings.Index(got, `k="v2"`); v2 < 0 || v2 > strings.Index(got, `k="v1"`) {
		t.Errorf("series not in registration order:\n%s", got)
	}
	if !strings.Contains(got, `aaa_total{k="v2"} 7`) {
		t.Errorf("counter value missing:\n%s", got)
	}
	if !strings.Contains(got, "mmm -4\n") {
		t.Errorf("gauge value missing:\n%s", got)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "h.", Label{Key: "k", Value: "a\"b\\c\nd"})
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if want := `m_total{k="a\"b\\c\nd"} 0`; !strings.Contains(buf.String(), want) {
		t.Errorf("escaped label missing %q:\n%s", want, buf.String())
	}
}

// TestTracerDeterministicIDs: same seed, same ID sequence — span identity
// must never depend on the clock or process randomness.
func TestTracerDeterministicIDs(t *testing.T) {
	clock := FrozenClock(time.Unix(100, 0))
	a, b := NewTracer(42, clock), NewTracer(42, clock)
	for i := 0; i < 5; i++ {
		if ia, ib := a.NewTraceID(), b.NewTraceID(); ia != ib {
			t.Fatalf("ID %d: %s != %s", i, ia, ib)
		}
	}
	if a.NewTraceID() == a.NewTraceID() {
		t.Error("consecutive IDs collide")
	}
}

func TestTracerSpansAndRing(t *testing.T) {
	clock := FrozenClock(time.Unix(100, 0).Add(250 * time.Microsecond))
	tr := NewTracer(1, clock)
	tr.limit = 4
	trace := tr.NewTraceID()
	for i := 0; i < 6; i++ {
		sp := tr.StartSpan(trace, "", "s")
		sp.SetAttr("i", AttrInt(i))
		sp.End()
	}
	got := tr.Collect(trace)
	if len(got) != 4 {
		t.Fatalf("ring kept %d spans, want 4 (the limit)", len(got))
	}
	// Oldest two were overwritten; order is oldest-first.
	for i, sp := range got {
		if want := AttrInt(i + 2); sp.Attrs["i"] != want {
			t.Errorf("span %d: attr i = %q, want %q", i, sp.Attrs["i"], want)
		}
		if sp.Trace != trace || sp.ID == "" || sp.StartUS != sp.EndUS || sp.StartUS != clock.Now().UnixMicro() {
			t.Errorf("span %d malformed: %+v", i, sp)
		}
	}
	if tr.Collect("ffff") != nil {
		t.Error("collect of unknown trace returned spans")
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	spans := []Span{
		{Trace: "0a", ID: "0b", Name: "root", StartUS: 10, EndUS: 20},
		{Trace: "0a", ID: "0c", Parent: "0b", Name: "child", Node: "http://b1",
			StartUS: 12, EndUS: 18, Attrs: map[string]string{"bench": "mcf"}},
	}
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, spans); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNDJSON(strings.NewReader(buf.String() + "\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(spans) {
		t.Fatalf("round trip returned %d spans, want %d", len(got), len(spans))
	}
	for i := range spans {
		w, g := spans[i], got[i]
		if g.Trace != w.Trace || g.ID != w.ID || g.Parent != w.Parent || g.Name != w.Name ||
			g.Node != w.Node || g.StartUS != w.StartUS || g.EndUS != w.EndUS ||
			g.Attrs["bench"] != w.Attrs["bench"] {
			t.Errorf("span %d: got %+v, want %+v", i, g, w)
		}
	}
}

func TestTraceHeaderRoundTrip(t *testing.T) {
	cases := []struct {
		in            string
		trace, parent string
	}{
		{"0123456789abcdef", "0123456789abcdef", ""},
		{"0123456789abcdef-fedcba9876543210", "0123456789abcdef", "fedcba9876543210"},
		{"ABC", "ABC", ""},
		{"", "", ""},
		{"not hex!", "", ""},
		{"abc-xyz", "", ""},
		{"-abc", "", ""},
		{strings.Repeat("a", 33), "", ""},
		{"abc<script>", "", ""},
	}
	for _, c := range cases {
		trace, parent := ParseTraceHeader(c.in)
		if trace != c.trace || parent != c.parent {
			t.Errorf("ParseTraceHeader(%q) = (%q, %q), want (%q, %q)", c.in, trace, parent, c.trace, c.parent)
		}
	}
	if got := FormatTraceHeader("0a", "0b"); got != "0a-0b" {
		t.Errorf("FormatTraceHeader = %q, want 0a-0b", got)
	}
	if got := FormatTraceHeader("0a", ""); got != "0a" {
		t.Errorf("FormatTraceHeader without parent = %q, want 0a", got)
	}
	tr, parent := ParseTraceHeader(FormatTraceHeader("0123", "4567"))
	if tr != "0123" || parent != "4567" {
		t.Errorf("format/parse round trip = (%q, %q)", tr, parent)
	}
}

func TestSpanStages(t *testing.T) {
	tr := NewTracer(7, FrozenClock(time.Unix(5, 0)))
	trace := tr.NewTraceID()
	ss := &SpanStages{Tracer: tr, Trace: trace, Parent: "0123"}
	end := ss.StageStart("base", "mcf")
	end()
	got := tr.Collect(trace)
	if len(got) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(got))
	}
	sp := got[0]
	if sp.Name != "stage:base" || sp.Parent != "0123" || sp.Attrs["bench"] != "mcf" || sp.EndUS == 0 {
		t.Errorf("span = %+v", sp)
	}
}

func TestTraceContext(t *testing.T) {
	ctx := WithTrace(t.Context(), TraceContext{Trace: "0a", Parent: "0b", Record: true})
	if tc := TraceFrom(ctx); tc.Trace != "0a" || tc.Parent != "0b" || !tc.Record {
		t.Errorf("TraceFrom = %+v", tc)
	}
	if tc := TraceFrom(t.Context()); tc != (TraceContext{}) {
		t.Errorf("TraceFrom(empty ctx) = %+v, want zero", tc)
	}
}
