package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// TraceHeader is the HTTP header carrying trace context between nodes:
// "<traceID>" or "<traceID>-<parentSpanID>" (hex IDs, so the separator is
// unambiguous). A coordinator forwards it with every remote cell so one
// sweep's spans stitch across the fleet; servers echo the trace ID on every
// response.
const TraceHeader = "X-Preexec-Trace"

// Span is one timed operation of a trace. Timestamps are microseconds since
// the Unix epoch as read from the tracer's Clock; IDs come from the
// tracer's seeded sequence, never from the clock.
type Span struct {
	Trace  string `json:"trace"`
	ID     string `json:"span"`
	Parent string `json:"parent,omitempty"`
	Name   string `json:"name"`
	// Node names the process that recorded the span; empty means the
	// process serving the span query itself. A coordinator stitching a
	// cross-node trace tags imported backend spans with the backend
	// address.
	Node    string            `json:"node,omitempty"`
	StartUS int64             `json:"start_us"`
	EndUS   int64             `json:"end_us,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`

	t *Tracer // owning tracer, nil for imported/decoded spans
}

// Tracer records spans into a bounded ring buffer and mints trace/span IDs
// from a seeded splitmix64 sequence. A nil *Tracer is a valid no-op: every
// method returns zero values and StartSpan returns a nil *Span whose
// methods are themselves no-ops.
type Tracer struct {
	clock Clock
	limit int

	mu    sync.Mutex
	state uint64  // splitmix64 state, advanced per ID
	ring  []*Span // recorded spans, oldest overwritten beyond limit
	next  int     // ring write cursor
	full  bool
}

// defaultSpanLimit bounds the span buffer: enough for several traced sweeps
// (a 10x12 grid with retries is a few hundred spans) without letting a
// long-lived server grow without bound.
const defaultSpanLimit = 4096

// NewTracer builds a tracer whose IDs derive from seed (nil clock =
// SystemClock).
func NewTracer(seed uint64, clock Clock) *Tracer {
	if clock == nil {
		clock = SystemClock
	}
	return &Tracer{clock: clock, limit: defaultSpanLimit, state: seed}
}

// splitmix64 is the ID generator: a tiny, well-distributed PRNG whose whole
// sequence is a pure function of the seed.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewTraceID mints a 16-hex-digit trace ID ("" on a nil tracer).
func (t *Tracer) NewTraceID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return fmt.Sprintf("%016x", splitmix64(&t.state))
}

// StartSpan opens and records a span under the given trace. It returns nil
// — a no-op span — on a nil tracer or an empty trace ID, so callers never
// branch on whether tracing is active.
func (t *Tracer) StartSpan(trace, parent, name string) *Span {
	if t == nil || trace == "" {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := &Span{
		Trace:   trace,
		ID:      fmt.Sprintf("%016x", splitmix64(&t.state)),
		Parent:  parent,
		Name:    name,
		StartUS: t.clock.Now().UnixMicro(),
		t:       t,
	}
	t.record(sp)
	return sp
}

// record stores sp in the ring. Caller holds t.mu.
func (t *Tracer) record(sp *Span) {
	if len(t.ring) < t.limit && !t.full {
		t.ring = append(t.ring, sp)
		if len(t.ring) == t.limit {
			t.full = true
		}
		return
	}
	if t.next >= len(t.ring) {
		t.next = 0
	}
	t.ring[t.next] = sp
	t.next++
}

// Import records a span produced elsewhere (a backend's span fetched during
// cross-node stitching) into the buffer verbatim.
func (t *Tracer) Import(sp Span) {
	if t == nil {
		return
	}
	cp := sp
	cp.t = nil
	t.mu.Lock()
	defer t.mu.Unlock()
	t.record(&cp)
}

// Collect returns copies of every recorded span of the given trace, in
// recording order (oldest first).
func (t *Tracer) Collect(trace string) []Span {
	if t == nil || trace == "" {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Lay the ring out oldest-first, then copy matching spans. The copies
	// happen under the mutex because SetAttr and End mutate recorded spans
	// under the same lock.
	order := make([]*Span, 0, len(t.ring))
	if t.full {
		order = append(order, t.ring[t.next:]...)
		order = append(order, t.ring[:t.next]...)
	} else {
		order = append(order, t.ring...)
	}
	var out []Span
	for _, sp := range order {
		if sp == nil || sp.Trace != trace {
			continue
		}
		cp := *sp
		cp.t = nil
		if len(sp.Attrs) > 0 {
			cp.Attrs = make(map[string]string, len(sp.Attrs))
			for k, v := range sp.Attrs {
				cp.Attrs[k] = v
			}
		}
		out = append(out, cp)
	}
	return out
}

// SpanID returns the span's ID ("" on a nil span).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.ID
}

// SetAttr attaches a key/value attribute (no-op on a nil span).
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if s.Attrs == nil {
		s.Attrs = make(map[string]string)
	}
	s.Attrs[key] = value
}

// End stamps the span's end time (no-op on a nil span). Ending twice keeps
// the first stamp.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if s.EndUS == 0 {
		s.EndUS = s.t.clock.Now().UnixMicro()
	}
}

// WriteNDJSON renders spans one JSON object per line — the export format of
// tsweep -trace and GET /v1/spans.
func WriteNDJSON(w io.Writer, spans []Span) error {
	enc := json.NewEncoder(w)
	for i := range spans {
		if err := enc.Encode(&spans[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadNDJSON parses a WriteNDJSON stream, skipping blank lines.
func ReadNDJSON(r io.Reader) ([]Span, error) {
	var out []Span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var sp Span
		if err := json.Unmarshal(line, &sp); err != nil {
			return out, fmt.Errorf("obs: span line %d: %w", len(out)+1, err)
		}
		out = append(out, sp)
	}
	return out, sc.Err()
}

// ParseTraceHeader splits a TraceHeader value into its trace and optional
// parent-span IDs, rejecting anything that is not plain hex (a malformed or
// hostile header yields "", "" — the request is simply untraced).
func ParseTraceHeader(v string) (trace, parent string) {
	for i := 0; i < len(v); i++ {
		if v[i] == '-' {
			trace, parent = v[:i], v[i+1:]
			if !isHexID(trace) || !isHexID(parent) {
				return "", ""
			}
			return trace, parent
		}
	}
	if !isHexID(v) {
		return "", ""
	}
	return v, ""
}

// FormatTraceHeader renders trace context as a TraceHeader value.
func FormatTraceHeader(trace, parent string) string {
	if parent == "" {
		return trace
	}
	return trace + "-" + parent
}

func isHexID(s string) bool {
	if len(s) == 0 || len(s) > 32 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') && (c < 'A' || c > 'F') {
			return false
		}
	}
	return true
}

// TraceContext is a request's tracing state as carried through contexts:
// the trace ID echoed on responses, the parent span propagated from an
// upstream coordinator, and whether spans should actually be recorded.
type TraceContext struct {
	Trace  string
	Parent string
	Record bool
}

type traceCtxKey struct{}

// WithTrace attaches trace context to ctx.
func WithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFrom returns the trace context attached to ctx (zero when absent).
func TraceFrom(ctx context.Context) TraceContext {
	tc, _ := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc
}

// SpanStages adapts a tracer onto the root package's StageObserver shape
// (StageStart(stage, bench string) func()): each stage execution becomes a
// "stage:<name>" span under Trace. It is what tsweep -trace installs on its
// engine to reconstruct the stage timeline of a sweep.
type SpanStages struct {
	Tracer *Tracer
	Trace  string
	Parent string
}

// StageStart opens a span for one stage execution; the returned func ends
// it. Safe (and free) when the tracer is nil or the trace is empty.
func (s *SpanStages) StageStart(stage, bench string) func() {
	sp := s.Tracer.StartSpan(s.Trace, s.Parent, "stage:"+stage)
	if sp != nil && bench != "" {
		sp.SetAttr("bench", bench)
	}
	return sp.End
}

// AttrInt formats an integer for SetAttr call sites.
func AttrInt(n int) string { return strconv.Itoa(n) }
