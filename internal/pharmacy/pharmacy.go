// Package pharmacy provides the paper's §2 running example — the mythical
// pharmacy cash-register loop — in two forms:
//
//   - Program: a runnable PRX translation of the paper's Figure 1 assembly,
//     with instruction numbering matching the paper (#00..#13);
//   - Tree / DCtrig: the slice tree of Figure 3 hand-built with the worked
//     example's exact statistics (100 iterations, 80 containing load #09,
//     60/20 path split, 40 misses, loop distances from Figure 1), which the
//     advantage and selector packages use as their calibration fixture.
package pharmacy

import (
	"preexec/internal/isa"
	"preexec/internal/program"
	"preexec/internal/slice"
)

// Register assignments mirroring the paper's Figure 1.
const (
	rN     = 1 // R1: N_XACT
	rFull  = 2 // R2: FULL
	rPart  = 3 // R3: PARTIAL
	rI     = 4 // R4: i
	rXact  = 5 // R5: &xact[i]
	rCov   = 6 // R6: xact[i].coverage
	rDrug  = 7 // R7: drug_id / &drugs[drug_id].price
	rPrice = 8 // R8: drugs[drug_id].price
	rTake  = 9 // R9: todays_take
)

// Coverage values stored in the transaction records.
const (
	CovFull    = 0
	CovPartial = 1
	CovNone    = 2
)

// Config sizes the example's data.
type Config struct {
	NumXact   int   // transactions (loop iterations)
	NumDrugs  int   // size of the drugs price table
	XactBase  int64 // address of xact[]
	DrugsBase int64 // address of drugs[]
	Seed      int64 // deterministic data layout seed
}

// DefaultConfig matches the worked example's flavor but with data large
// enough for the drugs table to miss in a 256KB L2 when walked irregularly.
func DefaultConfig() Config {
	return Config{NumXact: 20000, NumDrugs: 1 << 16}
}

// xact record layout: 16 bytes = 2 words: [coverage, drug_id<<32|generic_id]
// is tempting, but the paper's code does two loads at displacements 4 and 8;
// we use 4 words per record for clarity: coverage, drug_id, generic_id, pad.
const xactWords = 4

// Program builds the pharmacy loop. The instruction indices match the
// paper's listing:
//
//	#00: bge  R4, R1, #14     (exit)
//	#01: ld   R6, 0(R5)       (coverage)
//	#02: beq  R6, R2, #11     (full coverage: skip)
//	#03: bne  R6, R3, #06
//	#04: ld   R7, 8(R5)       (drug_id)         [paper: 4(R5)]
//	#05: j    #07
//	#06: ld   R7, 16(R5)      (generic_drug_id) [paper: 8(R5)]
//	#07: sll  R7, R7, 3       (word index)      [paper: sll 2]
//	#08: addi R7, R7, #drugs
//	#09: ld   R8, 0(R7)       (price: the problem load)
//	#10: add  R9, R9, R8
//	#11: addi R5, R5, 32      (next record)     [paper: 16]
//	#12: addi R4, R4, 1
//	#13: j    #00
//	#14: halt
//
// Displacements differ from the paper only because PRX words are 8 bytes.
func Program_(cfg Config) *program.Program {
	b := program.NewBuilder("pharmacy")
	if cfg.XactBase == 0 {
		cfg.XactBase = b.Alloc(int64(cfg.NumXact * xactWords))
	}
	if cfg.DrugsBase == 0 {
		cfg.DrugsBase = b.Alloc(int64(cfg.NumDrugs))
	}
	initData(b, cfg)

	// Setup (not numbered in the paper; placed after the loop so the loop
	// instructions keep the paper's indices).
	// Entry will be set to the setup label.
	b.Label("loop")                     // #00
	b.Bge(rI, rN, "exit")               // #00
	b.Ld(rCov, rXact, 0)                // #01
	b.Beq(rCov, rFull, "induct")        // #02
	b.Bne(rCov, rPart, "generic")       // #03
	b.Ld(rDrug, rXact, 8)               // #04
	b.J("use")                          // #05
	b.Label("generic")                  //
	b.Ld(rDrug, rXact, 16)              // #06
	b.Label("use")                      //
	b.Slli(rDrug, rDrug, 3)             // #07
	b.Addi(rDrug, rDrug, cfg.DrugsBase) // #08
	b.Ld(rPrice, rDrug, 0)              // #09
	b.Add(rTake, rTake, rPrice)         // #10
	b.Label("induct")                   //
	b.Addi(rXact, rXact, 32)            // #11
	b.Addi(rI, rI, 1)                   // #12
	b.J("loop")                         // #13
	b.Label("exit")                     //
	b.Halt()                            // #14

	b.Label("setup")
	b.Li(rN, int64(cfg.NumXact))
	b.Li(rFull, CovFull)
	b.Li(rPart, CovPartial)
	b.Li(rI, 0)
	b.Li(rXact, cfg.XactBase)
	b.Li(rTake, 0)
	b.J("loop")

	p := b.MustBuild()
	p.Entry = p.Labels["setup"]
	return p
}

// initData lays out transactions (20% full, 60% partial, 20% generic, as in
// the worked example) and a pseudo-random drug price table whose indices
// jump around enough to defeat an L2 of the paper's size.
func initData(b *program.Builder, cfg Config) {
	s := uint64(cfg.Seed)*2862933555777941757 + 3037000493
	next := func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	for i := 0; i < cfg.NumXact; i++ {
		base := cfg.XactBase + int64(i*xactWords*8)
		r := next() % 10
		var cov int64
		switch {
		case r < 2:
			cov = CovFull
		case r < 8:
			cov = CovPartial
		default:
			cov = CovNone
		}
		b.SetWord(base, cov)
		b.SetWord(base+8, int64(next()%uint64(cfg.NumDrugs)))
		b.SetWord(base+16, int64(next()%uint64(cfg.NumDrugs)))
	}
	for d := 0; d < cfg.NumDrugs; d++ {
		b.SetWord(cfg.DrugsBase+int64(d*8), int64(d%97+1))
	}
}

// PaperStats bundles Figure 3's slice tree with the worked example's
// per-instruction dynamic counts.
type PaperStats struct {
	Tree   *slice.Tree
	DCtrig map[int]int64
}

// PaperTree constructs the Figure 3 slice tree with the exact statistics of
// the paper's worked example: 100 iterations; 80 executing load #09; 60
// through #04 and 20 through #06; 40 misses splitting 30/10 across the two
// paths; main-thread distances from Figure 1's loop body (13 dynamic
// instructions on the #04 path, 12 on the #06 path).
func PaperTree() PaperStats {
	ins := map[int]isa.Inst{
		9:  {Op: isa.LD, Rd: rPrice, Rs1: rDrug},
		8:  {Op: isa.ADDI, Rd: rDrug, Rs1: rDrug, Imm: 0x8000},
		7:  {Op: isa.SLLI, Rd: rDrug, Rs1: rDrug, Imm: 2},
		4:  {Op: isa.LD, Rd: rDrug, Rs1: rXact, Imm: 4},
		6:  {Op: isa.LD, Rd: rDrug, Rs1: rXact, Imm: 8},
		11: {Op: isa.ADDI, Rd: rXact, Rs1: rXact, Imm: 16},
	}
	node := func(pc, depth int, dcptcm, dist int64, dep0 int) *slice.Node {
		return &slice.Node{
			PC: pc, Op: ins[pc], Depth: depth,
			DCptcm: dcptcm, SumDist: dist * dcptcm,
			DepPos: [2]int{dep0, slice.NoDep}, MemDepPos: slice.NoDep,
		}
	}
	// Left path A-G (through #04), right path A-C,H-K (through #06).
	a := node(9, 0, 40, 0, 1)
	bn := node(8, 1, 40, 1, 2)
	c := node(7, 2, 40, 2, 3)
	d := node(4, 3, 30, 4, 4)
	e := node(11, 4, 30, 11, 5)
	f := node(11, 5, 30, 24, 6)
	g := node(11, 6, 30, 37, 7)
	h := node(6, 3, 10, 3, 4)
	i := node(11, 4, 10, 9, 5)
	j := node(11, 5, 10, 21, 6)
	k := node(11, 6, 10, 33, 7)
	a.Children = []*slice.Node{bn}
	bn.Children = []*slice.Node{c}
	c.Children = []*slice.Node{d, h}
	d.Children = []*slice.Node{e}
	e.Children = []*slice.Node{f}
	f.Children = []*slice.Node{g}
	h.Children = []*slice.Node{i}
	i.Children = []*slice.Node{j}
	j.Children = []*slice.Node{k}

	tree := &slice.Tree{RootPC: 9, Misses: 40, Root: a}
	return PaperStats{
		Tree: tree,
		DCtrig: map[int]int64{
			9: 80, 8: 80, 7: 80, 4: 60, 6: 20, 11: 100,
		},
	}
}

// PaperParams returns the worked example's machine model: 4-wide processor,
// unassisted IPC 1 (so BWseq-mt = 2), 8-cycle miss latency, p-threads under
// 8 instructions, no optimization.
func PaperParams() (bwSeq, ipc, memLat float64, maxLen int) {
	return 4, 1, 8, 7
}
