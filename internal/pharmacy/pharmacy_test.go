package pharmacy

import (
	"testing"

	"preexec/internal/cache"
	"preexec/internal/cpu"
	"preexec/internal/isa"
	"preexec/internal/slice"
)

func TestPaperTreeStructure(t *testing.T) {
	ps := PaperTree()
	tr := ps.Tree
	if tr.RootPC != 9 || tr.Misses != 40 {
		t.Fatalf("tree root=%d misses=%d, want 9/40", tr.RootPC, tr.Misses)
	}
	if got := tr.Nodes(); got != 11 {
		t.Errorf("nodes = %d, want 11 (A-K)", got)
	}
	if err := tr.CheckInvariant(); err != nil {
		t.Errorf("invariant: %v", err)
	}
	// The divergence point: node C (#07) has children #04 and #06 with
	// DCptcm 30 and 10 summing to the parent's 40 (paper §3.2 invariant).
	c := tr.Root.Children[0].Children[0]
	if c.PC != 7 || len(c.Children) != 2 {
		t.Fatalf("node C wrong: %+v", c)
	}
	var sum int64
	for _, ch := range c.Children {
		sum += ch.DCptcm
	}
	if sum != c.DCptcm {
		t.Errorf("children DCptcm %d != parent %d", sum, c.DCptcm)
	}
}

func TestPaperTreeStatistics(t *testing.T) {
	ps := PaperTree()
	want := map[int]int64{9: 80, 8: 80, 7: 80, 4: 60, 6: 20, 11: 100}
	for pc, n := range want {
		if ps.DCtrig[pc] != n {
			t.Errorf("DCtrig[%d] = %d, want %d", pc, ps.DCtrig[pc], n)
		}
	}
	// Distances: the trigger distances of the worked example.
	var f *slice.Node
	ps.Tree.Walk(func(path []*slice.Node) {
		n := path[len(path)-1]
		if n.Depth == 5 && n.DCptcm == 30 {
			f = n
		}
	})
	if f == nil {
		t.Fatal("node F not found")
	}
	if f.AvgDist() != 24 {
		t.Errorf("F avg dist = %v, want 24 (two iterations back)", f.AvgDist())
	}
}

func TestPaperParams(t *testing.T) {
	bw, ipc, lcm, maxLen := PaperParams()
	if bw != 4 || ipc != 1 || lcm != 8 || maxLen != 7 {
		t.Errorf("PaperParams = %v %v %v %v", bw, ipc, lcm, maxLen)
	}
}

func TestProgramRunsAndSums(t *testing.T) {
	cfg := Config{NumXact: 500, NumDrugs: 1 << 10}
	p := Program_(cfg)
	st := cpu.New(p)
	if _, err := st.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if !st.Halted {
		t.Fatal("pharmacy program did not halt")
	}
	if st.Regs[9] == 0 {
		t.Error("todays_take is zero; the loop did no work")
	}
}

func TestProgramInstructionNumbering(t *testing.T) {
	// The loop instructions carry the paper's Figure 1 indices.
	p := Program_(Config{NumXact: 10, NumDrugs: 64})
	wantOps := map[int]isa.Op{
		0:  isa.BGE,
		1:  isa.LD,
		2:  isa.BEQ,
		3:  isa.BNE,
		4:  isa.LD,
		5:  isa.J,
		6:  isa.LD,
		7:  isa.SLLI,
		8:  isa.ADDI,
		9:  isa.LD, // the problem load
		10: isa.ADD,
		11: isa.ADDI,
		12: isa.ADDI,
		13: isa.J,
		14: isa.HALT,
	}
	for idx, op := range wantOps {
		if p.Insts[idx].Op != op {
			t.Errorf("#%02d = %v, want %v", idx, p.Insts[idx].Op, op)
		}
	}
	if p.Entry == 0 {
		t.Error("entry should be the setup block, not the loop")
	}
}

func TestProgramProblemLoadMisses(t *testing.T) {
	// With the default (large) drugs table, load #09 must produce L2
	// misses — it is the paper's static problem load.
	p := Program_(DefaultConfig())
	st := cpu.New(p)
	h := cache.DefaultHierarchy()
	missByPC := map[int]int64{}
	for i := 0; i < 400_000 && !st.Halted; i++ {
		e, err := st.Step()
		if err != nil {
			t.Fatal(err)
		}
		if e.Inst.Op == isa.LD && h.Access(e.EffAddr, false) == cache.MissL2 {
			missByPC[e.PC]++
		}
	}
	if missByPC[9] < 1000 {
		t.Errorf("load #09 missed %d times, want >= 1000", missByPC[9])
	}
}

func TestCoverageMix(t *testing.T) {
	// The transaction stream approximates the worked example's 20/60/20
	// full/partial/none coverage split.
	cfg := Config{NumXact: 10_000, NumDrugs: 1 << 10}
	p := Program_(cfg)
	counts := map[int64]int{}
	for i := 0; i < cfg.NumXact; i++ {
		cov := p.Data.Read(0x10000 + int64(i*xactWords*8))
		counts[cov]++
	}
	frac := func(c int64) float64 { return float64(counts[c]) / float64(cfg.NumXact) }
	if f := frac(CovFull); f < 0.15 || f > 0.25 {
		t.Errorf("full fraction = %.2f, want ~0.20", f)
	}
	if f := frac(CovPartial); f < 0.55 || f > 0.65 {
		t.Errorf("partial fraction = %.2f, want ~0.60", f)
	}
}
