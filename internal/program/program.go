// Package program provides the container for PRX programs and a small
// assembler-style builder with symbolic labels. The synthetic workloads
// (package workload) are written against the builder; everything downstream
// (functional simulation, slicing, timing simulation) consumes the resolved
// Program.
package program

import (
	"fmt"

	"preexec/internal/isa"
	"preexec/internal/mem"
)

// Program is a fully resolved PRX program plus its initial data image.
type Program struct {
	Name   string
	Insts  []isa.Inst
	Labels map[string]int
	// Data is the initial memory image. Runs must Clone it if they mutate it
	// and want to preserve the pristine image for later runs.
	Data *mem.Memory
	// Entry is the starting PC (instruction index).
	Entry int
}

// At returns the instruction at pc and whether pc is in range.
func (p *Program) At(pc int) (isa.Inst, bool) {
	if pc < 0 || pc >= len(p.Insts) {
		return isa.Inst{}, false
	}
	return p.Insts[pc], true
}

// Builder assembles a Program. Branch and jump targets are written as label
// strings and resolved by Build. Forward references are allowed.
type Builder struct {
	name    string
	insts   []isa.Inst
	labels  map[string]int
	fixups  []fixup // instructions whose Target awaits label resolution
	data    *mem.Memory
	nextVar int64 // bump allocator for Alloc
	errs    []error
}

type fixup struct {
	idx   int
	label string
}

// NewBuilder returns a builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:    name,
		labels:  make(map[string]int),
		data:    mem.New(),
		nextVar: 0x10000, // data segment base; low addresses stay unmapped
	}
}

// PC returns the index the next emitted instruction will occupy.
func (b *Builder) PC() int { return len(b.insts) }

// Label defines a label at the current PC.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("duplicate label %q", name))
		return b
	}
	b.labels[name] = len(b.insts)
	return b
}

// Emit appends a raw instruction.
func (b *Builder) Emit(in isa.Inst) *Builder {
	b.insts = append(b.insts, in)
	return b
}

func (b *Builder) emitBranch(op isa.Op, rs1, rs2 isa.Reg, label string) *Builder {
	b.fixups = append(b.fixups, fixup{len(b.insts), label})
	return b.Emit(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2})
}

// ALU and data-movement helpers.

func (b *Builder) Add(rd, rs1, rs2 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.ADD, Rd: rd, Rs1: rs1, Rs2: rs2})
}
func (b *Builder) Sub(rd, rs1, rs2 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.SUB, Rd: rd, Rs1: rs1, Rs2: rs2})
}
func (b *Builder) Mul(rd, rs1, rs2 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.MUL, Rd: rd, Rs1: rs1, Rs2: rs2})
}
func (b *Builder) Div(rd, rs1, rs2 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.DIV, Rd: rd, Rs1: rs1, Rs2: rs2})
}
func (b *Builder) And(rd, rs1, rs2 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.AND, Rd: rd, Rs1: rs1, Rs2: rs2})
}
func (b *Builder) Or(rd, rs1, rs2 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.OR, Rd: rd, Rs1: rs1, Rs2: rs2})
}
func (b *Builder) Xor(rd, rs1, rs2 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.XOR, Rd: rd, Rs1: rs1, Rs2: rs2})
}
func (b *Builder) Sll(rd, rs1, rs2 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.SLL, Rd: rd, Rs1: rs1, Rs2: rs2})
}
func (b *Builder) Srl(rd, rs1, rs2 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.SRL, Rd: rd, Rs1: rs1, Rs2: rs2})
}
func (b *Builder) Slt(rd, rs1, rs2 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.SLT, Rd: rd, Rs1: rs1, Rs2: rs2})
}
func (b *Builder) Addi(rd, rs1 isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: rs1, Imm: imm})
}
func (b *Builder) Andi(rd, rs1 isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.ANDI, Rd: rd, Rs1: rs1, Imm: imm})
}
func (b *Builder) Ori(rd, rs1 isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.ORI, Rd: rd, Rs1: rs1, Imm: imm})
}
func (b *Builder) Xori(rd, rs1 isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.XORI, Rd: rd, Rs1: rs1, Imm: imm})
}
func (b *Builder) Slli(rd, rs1 isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.SLLI, Rd: rd, Rs1: rs1, Imm: imm})
}
func (b *Builder) Srli(rd, rs1 isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.SRLI, Rd: rd, Rs1: rs1, Imm: imm})
}
func (b *Builder) Slti(rd, rs1 isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.SLTI, Rd: rd, Rs1: rs1, Imm: imm})
}
func (b *Builder) Mov(rd, rs1 isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.MOV, Rd: rd, Rs1: rs1})
}
func (b *Builder) Li(rd isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.LI, Rd: rd, Imm: imm})
}

// Memory helpers.

func (b *Builder) Ld(rd, base isa.Reg, disp int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.LD, Rd: rd, Rs1: base, Imm: disp})
}
func (b *Builder) St(data, base isa.Reg, disp int64) *Builder {
	return b.Emit(isa.Inst{Op: isa.ST, Rs1: base, Rs2: data, Imm: disp})
}

// Control-flow helpers (label targets, resolved at Build).

func (b *Builder) Beq(rs1, rs2 isa.Reg, label string) *Builder {
	return b.emitBranch(isa.BEQ, rs1, rs2, label)
}
func (b *Builder) Bne(rs1, rs2 isa.Reg, label string) *Builder {
	return b.emitBranch(isa.BNE, rs1, rs2, label)
}
func (b *Builder) Blt(rs1, rs2 isa.Reg, label string) *Builder {
	return b.emitBranch(isa.BLT, rs1, rs2, label)
}
func (b *Builder) Bge(rs1, rs2 isa.Reg, label string) *Builder {
	return b.emitBranch(isa.BGE, rs1, rs2, label)
}
func (b *Builder) J(label string) *Builder {
	b.fixups = append(b.fixups, fixup{len(b.insts), label})
	return b.Emit(isa.Inst{Op: isa.J})
}
func (b *Builder) Jal(rd isa.Reg, label string) *Builder {
	b.fixups = append(b.fixups, fixup{len(b.insts), label})
	return b.Emit(isa.Inst{Op: isa.JAL, Rd: rd})
}
func (b *Builder) Jr(rs isa.Reg) *Builder {
	return b.Emit(isa.Inst{Op: isa.JR, Rs1: rs})
}
func (b *Builder) Nop() *Builder  { return b.Emit(isa.Inst{Op: isa.NOP}) }
func (b *Builder) Halt() *Builder { return b.Emit(isa.Inst{Op: isa.HALT}) }

// Alloc reserves n 8-byte words in the data segment and returns the base
// address. Consecutive Allocs are laid out contiguously (plus a guard word)
// so distinct structures land on distinct cache lines only if the caller
// aligns them; Alloc aligns every allocation to a 64-byte (L2 line) boundary
// so workloads get predictable cache behaviour.
func (b *Builder) Alloc(nWords int64) int64 {
	const lineBytes = 64
	base := (b.nextVar + lineBytes - 1) &^ (lineBytes - 1)
	b.nextVar = base + nWords*8
	return base
}

// SetWord initializes one word of the data image.
func (b *Builder) SetWord(addr int64, val int64) *Builder {
	b.data.Write(addr, val)
	return b
}

// SetWords initializes consecutive words starting at base.
func (b *Builder) SetWords(base int64, vals []int64) *Builder {
	b.data.WriteWords(base, vals)
	return b
}

// Build resolves labels and returns the program. It fails if any label is
// undefined or duplicated, or the program is empty.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if len(b.insts) == 0 {
		return nil, fmt.Errorf("program %q has no instructions", b.name)
	}
	insts := make([]isa.Inst, len(b.insts))
	copy(insts, b.insts)
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("undefined label %q at instruction %d", f.label, f.idx)
		}
		insts[f.idx].Target = target
	}
	labels := make(map[string]int, len(b.labels))
	for k, v := range b.labels {
		labels[k] = v
	}
	return &Program{
		Name:   b.name,
		Insts:  insts,
		Labels: labels,
		Data:   b.data,
	}, nil
}

// MustBuild is Build that panics on error; for use by the workload
// generators, whose programs are static and tested.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// Disassemble returns a listing of the whole program, one instruction per
// line, prefixed with the instruction index.
func (p *Program) Disassemble() string {
	out := ""
	for i, in := range p.Insts {
		out += fmt.Sprintf("#%02d: %s\n", i, in)
	}
	return out
}
