package program

import (
	"strings"
	"testing"

	"preexec/internal/isa"
)

func TestBuildResolvesLabels(t *testing.T) {
	b := NewBuilder("t")
	b.Label("top").
		Addi(1, 1, 1).
		Bne(1, 2, "top").
		J("end").
		Nop().
		Label("end").
		Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[1].Target != 0 {
		t.Errorf("bne target = %d, want 0", p.Insts[1].Target)
	}
	if p.Insts[2].Target != 4 {
		t.Errorf("j target = %d, want 4", p.Insts[2].Target)
	}
}

func TestForwardAndBackwardReferences(t *testing.T) {
	b := NewBuilder("t")
	b.J("fwd")
	b.Label("back").Halt()
	b.Label("fwd").J("back")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Target != 2 {
		t.Errorf("forward target = %d, want 2", p.Insts[0].Target)
	}
	if p.Insts[2].Target != 1 {
		t.Errorf("backward target = %d, want 1", p.Insts[2].Target)
	}
}

func TestUndefinedLabel(t *testing.T) {
	b := NewBuilder("t")
	b.J("nowhere").Halt()
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for undefined label")
	}
}

func TestDuplicateLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Label("x").Nop().Label("x").Halt()
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for duplicate label")
	}
}

func TestEmptyProgram(t *testing.T) {
	if _, err := NewBuilder("t").Build(); err == nil {
		t.Fatal("expected error for empty program")
	}
}

func TestAllocAlignment(t *testing.T) {
	b := NewBuilder("t")
	a1 := b.Alloc(3)
	a2 := b.Alloc(1)
	if a1%64 != 0 || a2%64 != 0 {
		t.Errorf("allocations not 64B aligned: %#x %#x", a1, a2)
	}
	if a2 <= a1 {
		t.Errorf("allocations overlap: %#x then %#x", a1, a2)
	}
	if a2-a1 < 3*8 {
		t.Errorf("second allocation %#x overlaps first %#x of 3 words", a2, a1)
	}
}

func TestSetWords(t *testing.T) {
	b := NewBuilder("t")
	base := b.Alloc(4)
	b.SetWords(base, []int64{1, 2, 3, 4})
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got := p.Data.ReadWords(base, 4)
	for i, want := range []int64{1, 2, 3, 4} {
		if got[i] != want {
			t.Errorf("word %d = %d, want %d", i, got[i], want)
		}
	}
}

func TestAt(t *testing.T) {
	p := NewBuilder("t").Addi(1, 0, 5).Halt().MustBuild()
	if _, ok := p.At(-1); ok {
		t.Error("At(-1) should be out of range")
	}
	if _, ok := p.At(2); ok {
		t.Error("At(len) should be out of range")
	}
	in, ok := p.At(0)
	if !ok || in.Op != isa.ADDI {
		t.Errorf("At(0) = %v,%v", in, ok)
	}
}

func TestBuilderIsReusableAfterBuild(t *testing.T) {
	b := NewBuilder("t")
	b.Halt()
	p1, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Building again must produce an equivalent, independent program.
	p2, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p2.Insts[0].Op = isa.NOP
	if p1.Insts[0].Op != isa.HALT {
		t.Error("programs built from the same builder share instruction storage")
	}
}

func TestDisassemble(t *testing.T) {
	p := NewBuilder("t").Addi(1, 0, 5).Halt().MustBuild()
	d := p.Disassemble()
	if !strings.Contains(d, "#00: addi r1, r0, 5") {
		t.Errorf("disassembly missing first instruction: %q", d)
	}
	if !strings.Contains(d, "#01: halt") {
		t.Errorf("disassembly missing halt: %q", d)
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild should panic on invalid program")
		}
	}()
	NewBuilder("t").MustBuild()
}

func TestBranchHelpers(t *testing.T) {
	b := NewBuilder("t")
	b.Label("l")
	b.Beq(1, 2, "l").Bne(3, 4, "l").Blt(5, 6, "l").Bge(7, 8, "l").Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := []isa.Op{isa.BEQ, isa.BNE, isa.BLT, isa.BGE}
	for i, op := range want {
		if p.Insts[i].Op != op || p.Insts[i].Target != 0 {
			t.Errorf("inst %d = %v target %d, want %v target 0", i, p.Insts[i].Op, p.Insts[i].Target, op)
		}
	}
}
