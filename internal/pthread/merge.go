package pthread

import "preexec/internal/isa"

// Merge combines two p-threads with the same trigger whose bodies share a
// matching dataflow prefix (paper §3.3): the merged p-thread executes the
// shared prefix once and replicates the divergent suffixes, renaming the
// second suffix's destinations into the p-thread-temporary register space
// (>= isa.NumRegs) to preserve both computations. oh computes the per-launch
// overhead of a body of the given size so the merged prediction stays
// consistent; it may be nil to skip prediction bookkeeping.
//
// Merge fails (ok=false) if the triggers differ, there is no shared prefix,
// or renaming would exhaust the temporary register space.
func Merge(a, b *PThread, oh func(size int) float64) (merged *PThread, ok bool) {
	if a.TriggerPC != b.TriggerPC {
		return nil, false
	}
	// Longest matching dataflow prefix: instruction and dependence equality.
	n := len(a.Body)
	if len(b.Body) < n {
		n = len(b.Body)
	}
	prefix := 0
	for prefix < n &&
		a.Body[prefix].Inst == b.Body[prefix].Inst &&
		a.Body[prefix].Dep == b.Body[prefix].Dep &&
		a.Body[prefix].MemDep == b.Body[prefix].MemDep {
		prefix++
	}
	if prefix == 0 {
		return nil, false
	}
	// Find a free temporary register range: above every register either body
	// mentions.
	nextTemp := isa.Reg(isa.NumRegs)
	maxReg := func(p *PThread) isa.Reg {
		var m isa.Reg
		for _, bi := range p.Body {
			for _, r := range []isa.Reg{bi.Inst.Rd, bi.Inst.Rs1, bi.Inst.Rs2} {
				if r > m {
					m = r
				}
			}
		}
		return m
	}
	if m := maxReg(a); m >= nextTemp {
		nextTemp = m + 1
	}
	if m := maxReg(b); m >= nextTemp {
		nextTemp = m + 1
	}

	body := make([]BodyInst, 0, len(a.Body)+len(b.Body)-prefix)
	body = append(body, a.Body...)
	offset := len(a.Body) - prefix // index shift for b's suffix deps
	rename := make(map[isa.Reg]isa.Reg)
	for i := prefix; i < len(b.Body); i++ {
		bi := b.Body[i]
		// Sources defined inside b's suffix were renamed; rewrite names.
		srcs := [2]*isa.Reg{&bi.Inst.Rs1, &bi.Inst.Rs2}
		_, ns := bi.Inst.Sources()
		for s := 0; s < ns; s++ {
			if bi.Dep[s] >= prefix { // produced inside b's suffix
				if nr, seen := rename[*srcs[s]]; seen {
					*srcs[s] = nr
				}
			}
		}
		// Rename the destination to a fresh temporary.
		if bi.Inst.HasDest() {
			if nextTemp >= isa.PtRegs {
				return nil, false
			}
			rename[bi.Inst.Rd] = nextTemp
			bi.Inst.Rd = nextTemp
			nextTemp++
		}
		// Shift suffix-internal dependence indexes.
		for s := 0; s < 2; s++ {
			if bi.Dep[s] >= prefix {
				bi.Dep[s] += offset
			}
		}
		if bi.MemDep >= prefix {
			bi.MemDep += offset
		}
		body = append(body, bi)
	}

	m := &PThread{
		TriggerPC: a.TriggerPC,
		Roots:     append(append([]int{}, a.Roots...), b.Roots...),
		Body:      body,
		DCtrig:    maxInt64(a.DCtrig, b.DCtrig),
		DCptcm:    a.DCptcm + b.DCptcm,
		FullCov:   a.FullCov && b.FullCov,
		// Region: merging only happens within one selection region.
		RegionStart: a.RegionStart,
		RegionEnd:   a.RegionEnd,
	}
	if a.DCptcm+b.DCptcm > 0 {
		m.LT = (a.LT*float64(a.DCptcm) + b.LT*float64(b.DCptcm)) / float64(a.DCptcm+b.DCptcm)
	}
	if oh != nil {
		m.OH = oh(len(body))
		// The merged p-thread keeps both latency-tolerance streams and pays
		// one (longer) body per launch instead of two.
		m.ADVagg = a.ADVagg + b.ADVagg +
			a.OH*float64(a.DCtrig) + b.OH*float64(b.DCtrig) - m.OH*float64(m.DCtrig)
	} else {
		m.ADVagg = a.ADVagg + b.ADVagg
	}
	return m, true
}

// MergeAll greedily merges p-threads that share a trigger and a dataflow
// prefix, bounding merged bodies to maxLen instructions (0 = unbounded).
// Merging only combines p-threads from the same selection region.
func MergeAll(pts []*PThread, oh func(size int) float64, maxLen int) []*PThread {
	out := make([]*PThread, 0, len(pts))
	out = append(out, pts...)
	for {
		merged := false
		for i := 0; i < len(out) && !merged; i++ {
			for j := i + 1; j < len(out) && !merged; j++ {
				if out[i].TriggerPC != out[j].TriggerPC {
					continue
				}
				if out[i].RegionStart != out[j].RegionStart || out[i].RegionEnd != out[j].RegionEnd {
					continue
				}
				m, ok := Merge(out[i], out[j], oh)
				if !ok {
					continue
				}
				if maxLen > 0 && m.Size() > maxLen {
					continue
				}
				out[i] = m
				out = append(out[:j], out[j+1:]...)
				merged = true
			}
		}
		if !merged {
			return out
		}
	}
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
