package pthread

import (
	"testing"

	"preexec/internal/cpu"
	"preexec/internal/isa"
	"preexec/internal/mem"
)

// pharmacyF and pharmacyJ are the paper's two selected p-threads (§3.2):
// both triggered by #11, bodies
//
//	F: #11 #04 #07 #08 #09    (the xact[i].drug_id path)
//	J: #11 #06 #07 #08 #09    (the generic_drug_id path)
//
// sharing the dataflow prefix [#11].
func pharmacyF() *PThread {
	return &PThread{
		TriggerPC: 11, Roots: []int{9},
		DCtrig: 100, DCptcm: 30, LT: 8, OH: 0.625, ADVagg: 177.5,
		Body: []BodyInst{
			{Inst: isa.Inst{Op: isa.ADDI, Rd: 5, Rs1: 5, Imm: 16}, Dep: [2]int{DepTrigger, DepLiveIn}, MemDep: DepLiveIn},
			{Inst: isa.Inst{Op: isa.LD, Rd: 7, Rs1: 5, Imm: 4}, Dep: [2]int{0, DepLiveIn}, MemDep: DepLiveIn},
			{Inst: isa.Inst{Op: isa.SLLI, Rd: 7, Rs1: 7, Imm: 2}, Dep: [2]int{1, DepLiveIn}, MemDep: DepLiveIn},
			{Inst: isa.Inst{Op: isa.ADDI, Rd: 7, Rs1: 7, Imm: 0x8000}, Dep: [2]int{2, DepLiveIn}, MemDep: DepLiveIn},
			{Inst: isa.Inst{Op: isa.LD, Rd: 8, Rs1: 7, Imm: 0}, Dep: [2]int{3, DepLiveIn}, MemDep: DepLiveIn},
		},
	}
}

func pharmacyJ() *PThread {
	pt := pharmacyF()
	pt.DCptcm = 10
	pt.LT = 8
	pt.ADVagg = 17.5
	// #06 loads from displacement 8 instead of #04's 4.
	pt.Body[1].Inst.Imm = 8
	return pt
}

func TestMergePharmacy(t *testing.T) {
	oh := func(size int) float64 { return float64(size) * 0.125 }
	m, ok := Merge(pharmacyF(), pharmacyJ(), oh)
	if !ok {
		t.Fatal("merge failed")
	}
	// Shared prefix = 1 inst (#11 copy); merged size = 5 + 4 = 9.
	if m.Size() != 9 {
		t.Fatalf("merged size = %d, want 9", m.Size())
	}
	if m.TriggerPC != 11 {
		t.Errorf("trigger = %d, want 11", m.TriggerPC)
	}
	if len(m.Roots) != 2 {
		t.Errorf("roots = %v, want both", m.Roots)
	}
	if m.DCtrig != 100 {
		t.Errorf("DCtrig = %d, want 100 (one launch does both)", m.DCtrig)
	}
	if m.DCptcm != 40 {
		t.Errorf("DCptcm = %d, want 40", m.DCptcm)
	}
	// The replicated suffix must write temporaries >= 32, not clobber the
	// first computation's registers.
	for _, bi := range m.Body[5:] {
		if bi.Inst.HasDest() && bi.Inst.Rd < isa.NumRegs {
			t.Errorf("suffix inst %v writes architectural register", bi.Inst)
		}
	}
}

func TestMergeExecutesBothComputations(t *testing.T) {
	// Functional check: the merged body must produce both prefetch
	// addresses that the two separate bodies produce.
	f, j := pharmacyF(), pharmacyJ()
	m, ok := Merge(f, j, nil)
	if !ok {
		t.Fatal("merge failed")
	}
	mm := mem.New()
	// xact array at 0x1000: r5 points at xact[i]-16 (trigger already ran).
	mm.Write(0x1000+16+4, 3) // drug_id via #04 path (word at +4... word-aligned: use offsets 0/8)
	mm.Write(0x1000+16+8, 5) // generic id
	run := func(body []BodyInst) []int64 {
		regs := make([]int64, isa.PtRegs)
		regs[5] = 0x1000
		insts := make([]isa.Inst, len(body))
		for i, bi := range body {
			insts[i] = bi.Inst
		}
		res := cpu.ExecBody(insts, regs, mm)
		var addrs []int64
		for i, a := range res.EffAddrs {
			if insts[i].Op == isa.LD {
				addrs = append(addrs, a)
			}
		}
		return addrs
	}
	fAddrs := run(f.Body)
	jAddrs := run(j.Body)
	mAddrs := run(m.Body)
	want := map[int64]bool{
		fAddrs[len(fAddrs)-1]: true,
		jAddrs[len(jAddrs)-1]: true,
	}
	found := 0
	for _, a := range mAddrs {
		if want[a] {
			found++
			delete(want, a)
		}
	}
	if found != 2 {
		t.Errorf("merged body produced addresses %v; missing %v", mAddrs, want)
	}
}

func TestMergeRejectsDifferentTriggers(t *testing.T) {
	a, b := pharmacyF(), pharmacyJ()
	b.TriggerPC = 12
	if _, ok := Merge(a, b, nil); ok {
		t.Error("merge must reject different triggers")
	}
}

func TestMergeRejectsNoCommonPrefix(t *testing.T) {
	a := pharmacyF()
	b := pharmacyF()
	b.Body[0].Inst.Imm = 999 // first instruction differs
	if _, ok := Merge(a, b, nil); ok {
		t.Error("merge must reject bodies with no shared prefix")
	}
}

func TestMergePredictionBookkeeping(t *testing.T) {
	oh := func(size int) float64 { return float64(size) * 0.125 }
	f, j := pharmacyF(), pharmacyJ()
	m, _ := Merge(f, j, oh)
	// Separate overhead: (5*0.125)*100 + (5*0.125)*100 = 125. Merged:
	// (9*0.125)*100 = 112.5. ADV should improve by 12.5.
	wantADV := f.ADVagg + j.ADVagg + 12.5
	if diff := m.ADVagg - wantADV; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("merged ADVagg = %v, want %v", m.ADVagg, wantADV)
	}
	if m.OH != 9*0.125 {
		t.Errorf("merged OH = %v, want %v", m.OH, 9*0.125)
	}
}

func TestMergeAllGreedy(t *testing.T) {
	oh := func(size int) float64 { return float64(size) * 0.125 }
	pts := []*PThread{pharmacyF(), pharmacyJ()}
	out := MergeAll(pts, oh, 0)
	if len(out) != 1 {
		t.Fatalf("MergeAll left %d p-threads, want 1", len(out))
	}
	if out[0].Size() != 9 {
		t.Errorf("merged size = %d, want 9", out[0].Size())
	}
}

func TestMergeAllRespectsMaxLen(t *testing.T) {
	oh := func(size int) float64 { return float64(size) * 0.125 }
	pts := []*PThread{pharmacyF(), pharmacyJ()}
	out := MergeAll(pts, oh, 8) // merged would be 9 > 8
	if len(out) != 2 {
		t.Errorf("MergeAll merged past maxLen: %d p-threads", len(out))
	}
}

func TestMergeAllKeepsDistinctTriggers(t *testing.T) {
	a, b := pharmacyF(), pharmacyJ()
	b.TriggerPC = 12
	out := MergeAll([]*PThread{a, b}, nil, 0)
	if len(out) != 2 {
		t.Errorf("MergeAll merged p-threads with different triggers")
	}
}

func TestMergeAllRespectsRegions(t *testing.T) {
	a, b := pharmacyF(), pharmacyJ()
	a.RegionStart, a.RegionEnd = 0, 1000
	b.RegionStart, b.RegionEnd = 1000, 2000
	out := MergeAll([]*PThread{a, b}, nil, 0)
	if len(out) != 2 {
		t.Errorf("MergeAll merged across regions")
	}
}
