package pthread

import "preexec/internal/isa"

// Optimize returns a functionally equivalent, specialized body (paper §3.3):
// the final instruction's memory access — the prefetch itself — is preserved
// exactly; everything else may be rewritten or removed. Because p-threads
// are control-less single computations, optimization is a linear scan:
//
//  1. store-load pair elimination: a body load fed by a body store becomes a
//     register move (p-thread stores never commit, so a forwarded store with
//     no remaining consumers dies);
//  2. constant folding: LI/ADDI chains collapse (this is what compresses
//     induction unrolling: two "addi r5,r5,16" become one "addi r5,r5,32");
//  3. register-move elimination;
//  4. dead-code elimination by backward reachability from the final
//     instruction (legal precisely because a p-thread's only architectural
//     effect is the prefetch).
//
// The input body is not modified.
func Optimize(body []BodyInst) []BodyInst {
	w := make([]BodyInst, len(body))
	copy(w, body)
	for pass := 0; pass < 4; pass++ {
		ch1 := storeLoadElim(w)
		ch2 := constantFold(w)
		ch3 := moveElim(w)
		var ch4 bool
		w, ch4 = deadCodeElim(w)
		if !ch1 && !ch2 && !ch3 && !ch4 {
			break
		}
	}
	return w
}

// uses returns, for each body index, the list of consumer indices (register
// and memory dependences).
func uses(body []BodyInst) [][]int {
	u := make([][]int, len(body))
	for i, bi := range body {
		for _, d := range bi.Dep {
			if d >= 0 {
				u[d] = append(u[d], i)
			}
		}
		if bi.MemDep >= 0 {
			u[bi.MemDep] = append(u[bi.MemDep], i)
		}
	}
	return u
}

// regWrittenBetween reports whether any instruction in (from, to) exclusive
// writes r.
func regWrittenBetween(body []BodyInst, from, to int, r isa.Reg) bool {
	for i := from + 1; i < to; i++ {
		if body[i].Inst.HasDest() && body[i].Inst.Rd == r {
			return true
		}
	}
	return false
}

// storeLoadElim rewrites loads whose MemDep names a body store into moves
// from the store's data register. The final instruction is never rewritten:
// it is the prefetch.
func storeLoadElim(body []BodyInst) bool {
	changed := false
	for j := 0; j < len(body)-1; j++ {
		bi := &body[j]
		if bi.Inst.Op != isa.LD || bi.MemDep < 0 {
			continue
		}
		st := body[bi.MemDep]
		if st.Inst.Op != isa.ST {
			continue
		}
		data := st.Inst.Rs2
		if regWrittenBetween(body, bi.MemDep, j, data) {
			continue // the forwarded name is clobbered; unsafe to rename
		}
		bi.Inst = isa.Inst{Op: isa.MOV, Rd: bi.Inst.Rd, Rs1: data}
		bi.Dep = [2]int{st.Dep[1], DepLiveIn} // the store's data producer
		bi.MemDep = DepLiveIn
		changed = true
	}
	return changed
}

// constantFold collapses LI->ADDI and ADDI->ADDI chains where the producer
// has a single consumer. The producer is turned into a NOP (removed by DCE).
func constantFold(body []BodyInst) bool {
	changed := false
	for {
		u := uses(body)
		folded := false
		for j, bi := range body {
			if bi.Inst.Op != isa.ADDI {
				continue
			}
			p := bi.Dep[0]
			if p < 0 || len(u[p]) != 1 {
				continue
			}
			prod := body[p]
			switch prod.Inst.Op {
			case isa.LI:
				body[j].Inst = isa.Inst{Op: isa.LI, Rd: bi.Inst.Rd, Imm: prod.Inst.Imm + bi.Inst.Imm}
				body[j].Dep = [2]int{DepLiveIn, DepLiveIn}
				body[p].Inst = isa.Inst{Op: isa.NOP}
				body[p].Dep = [2]int{DepLiveIn, DepLiveIn}
				folded = true
			case isa.ADDI:
				// Need the producer's source name live at j.
				if regWrittenBetween(body, p, j, prod.Inst.Rs1) {
					continue
				}
				body[j].Inst = isa.Inst{
					Op: isa.ADDI, Rd: bi.Inst.Rd, Rs1: prod.Inst.Rs1,
					Imm: prod.Inst.Imm + bi.Inst.Imm,
				}
				body[j].Dep = [2]int{prod.Dep[0], DepLiveIn}
				body[p].Inst = isa.Inst{Op: isa.NOP}
				body[p].Dep = [2]int{DepLiveIn, DepLiveIn}
				folded = true
			}
			if folded {
				break // recompute uses after each fold
			}
		}
		if !folded {
			return changed
		}
		changed = true
	}
}

// moveElim rewires consumers of MOV instructions to read the moved-from
// register directly, when the source name survives to the consumer.
func moveElim(body []BodyInst) bool {
	changed := false
	for j, bi := range body {
		if bi.Inst.Op != isa.MOV {
			continue
		}
		src := bi.Inst.Rs1
		for u := j + 1; u < len(body); u++ {
			c := &body[u]
			srcs, ns := c.Inst.Sources()
			for s := 0; s < ns; s++ {
				if c.Dep[s] != j {
					continue
				}
				if regWrittenBetween(body, j, u, src) {
					continue
				}
				// Rename operand s of the consumer to the move's source.
				switch s {
				case 0:
					c.Inst.Rs1 = src
				case 1:
					c.Inst.Rs2 = src
				}
				_ = srcs
				c.Dep[s] = bi.Dep[0]
				changed = true
			}
		}
	}
	return changed
}

// deadCodeElim removes instructions not backward-reachable from the final
// instruction, remapping dependence indexes. It returns the compacted body.
func deadCodeElim(body []BodyInst) ([]BodyInst, bool) {
	if len(body) == 0 {
		return body, false
	}
	live := make([]bool, len(body))
	var mark func(i int)
	mark = func(i int) {
		if i < 0 || live[i] {
			return
		}
		live[i] = true
		for _, d := range body[i].Dep {
			mark(d)
		}
		mark(body[i].MemDep)
	}
	mark(len(body) - 1)
	// NOPs are never live even if referenced (folded producers).
	for i := range body {
		if body[i].Inst.Op == isa.NOP {
			live[i] = false
		}
	}
	remap := make([]int, len(body))
	out := body[:0]
	n := 0
	for i, bi := range body {
		if live[i] {
			remap[i] = n
			out = append(out, bi)
			n++
		} else {
			remap[i] = -1
		}
	}
	changed := n != len(body)
	fix := func(d int) int {
		if d < 0 {
			return d
		}
		if remap[d] < 0 {
			return DepLiveIn // producer dropped; value must come from seeds
		}
		return remap[d]
	}
	for i := range out {
		out[i].Dep[0] = fix(out[i].Dep[0])
		out[i].Dep[1] = fix(out[i].Dep[1])
		out[i].MemDep = fix(out[i].MemDep)
	}
	return out, changed
}
