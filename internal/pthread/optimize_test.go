package pthread

import (
	"math/rand"
	"testing"

	"preexec/internal/cpu"
	"preexec/internal/isa"
	"preexec/internal/mem"
)

// finalLoadAddr executes a body and returns the final instruction's
// effective address — the prefetch address, the only architecturally
// meaningful output of a p-thread.
func finalLoadAddr(body []BodyInst, seeds map[isa.Reg]int64, m *mem.Memory) int64 {
	regs := make([]int64, isa.PtRegs)
	for r, v := range seeds {
		regs[r] = v
	}
	insts := make([]isa.Inst, len(body))
	for i, bi := range body {
		insts[i] = bi.Inst
	}
	res := cpu.ExecBody(insts, regs, m)
	return res.EffAddrs[len(res.EffAddrs)-1]
}

func TestConstantFoldInductionUnrolling(t *testing.T) {
	// The paper's Figure 2 optimization: two addi r5,r5,16 instances fold
	// into one addi r5,r5,32.
	body := []BodyInst{
		{Inst: isa.Inst{Op: isa.ADDI, Rd: 5, Rs1: 5, Imm: 16}, Dep: [2]int{DepTrigger, DepLiveIn}, MemDep: DepLiveIn},
		{Inst: isa.Inst{Op: isa.ADDI, Rd: 5, Rs1: 5, Imm: 16}, Dep: [2]int{0, DepLiveIn}, MemDep: DepLiveIn},
		{Inst: isa.Inst{Op: isa.LD, Rd: 7, Rs1: 5, Imm: 4}, Dep: [2]int{1, DepLiveIn}, MemDep: DepLiveIn},
	}
	opt := Optimize(body)
	if len(opt) != 2 {
		t.Fatalf("optimized size = %d, want 2:\n%v", len(opt), opt)
	}
	if opt[0].Inst.Op != isa.ADDI || opt[0].Inst.Imm != 32 {
		t.Errorf("folded inst = %v, want addi r5,r5,32", opt[0].Inst)
	}
	// Semantics: same prefetch address.
	seeds := map[isa.Reg]int64{5: 1000}
	if a, b := finalLoadAddr(body, seeds, mem.New()), finalLoadAddr(opt, seeds, mem.New()); a != b {
		t.Errorf("prefetch address changed: %d vs %d", a, b)
	}
}

func TestConstantFoldLIChain(t *testing.T) {
	body := []BodyInst{
		{Inst: isa.Inst{Op: isa.LI, Rd: 2, Imm: 100}, Dep: [2]int{DepLiveIn, DepLiveIn}, MemDep: DepLiveIn},
		{Inst: isa.Inst{Op: isa.ADDI, Rd: 3, Rs1: 2, Imm: 8}, Dep: [2]int{0, DepLiveIn}, MemDep: DepLiveIn},
		{Inst: isa.Inst{Op: isa.LD, Rd: 4, Rs1: 3}, Dep: [2]int{1, DepLiveIn}, MemDep: DepLiveIn},
	}
	opt := Optimize(body)
	if len(opt) != 2 {
		t.Fatalf("optimized size = %d, want 2:\n%v", len(opt), opt)
	}
	if opt[0].Inst.Op != isa.LI || opt[0].Inst.Imm != 108 {
		t.Errorf("folded = %v, want li r3,108", opt[0].Inst)
	}
}

func TestConstantFoldRefusedWhenMultipleUses(t *testing.T) {
	// The intermediate value feeds two consumers; folding one away would
	// still need the producer, so nothing may be removed.
	body := []BodyInst{
		{Inst: isa.Inst{Op: isa.ADDI, Rd: 5, Rs1: 6, Imm: 16}, Dep: [2]int{DepLiveIn, DepLiveIn}, MemDep: DepLiveIn},
		{Inst: isa.Inst{Op: isa.ADDI, Rd: 7, Rs1: 5, Imm: 16}, Dep: [2]int{0, DepLiveIn}, MemDep: DepLiveIn},
		{Inst: isa.Inst{Op: isa.ADD, Rd: 8, Rs1: 5, Rs2: 7}, Dep: [2]int{0, 1}, MemDep: DepLiveIn},
		{Inst: isa.Inst{Op: isa.LD, Rd: 9, Rs1: 8}, Dep: [2]int{2, DepLiveIn}, MemDep: DepLiveIn},
	}
	opt := Optimize(body)
	seeds := map[isa.Reg]int64{6: 512}
	if a, b := finalLoadAddr(body, seeds, mem.New()), finalLoadAddr(opt, seeds, mem.New()); a != b {
		t.Errorf("prefetch address changed: %d vs %d", a, b)
	}
}

func TestStoreLoadPairElimination(t *testing.T) {
	// st r2 -> [r1]; ld r3 <- [r1]; ld r4 <- [r3+8]: the inner load becomes
	// a move of r2, the store and its address become dead.
	body := []BodyInst{
		{Inst: isa.Inst{Op: isa.ST, Rs1: 1, Rs2: 2}, Dep: [2]int{DepLiveIn, DepLiveIn}, MemDep: DepLiveIn},
		{Inst: isa.Inst{Op: isa.LD, Rd: 3, Rs1: 1}, Dep: [2]int{DepLiveIn, DepLiveIn}, MemDep: 0},
		{Inst: isa.Inst{Op: isa.LD, Rd: 4, Rs1: 3, Imm: 8}, Dep: [2]int{1, DepLiveIn}, MemDep: DepLiveIn},
	}
	opt := Optimize(body)
	if len(opt) != 1 {
		t.Fatalf("optimized size = %d, want 1 (just the final load):\n%v", len(opt), opt)
	}
	if opt[0].Inst.Op != isa.LD || opt[0].Inst.Rs1 != 2 {
		t.Errorf("final load = %v, want ld r4,8(r2) after forwarding+move-elim", opt[0].Inst)
	}
	seeds := map[isa.Reg]int64{1: 0x100, 2: 0x2000}
	m := mem.New()
	m.Write(0x100, 0x3000) // memory disagrees with the store: forwarding must win
	if a, b := finalLoadAddr(body, seeds, m), finalLoadAddr(opt, seeds, m); a != b {
		t.Errorf("prefetch address changed: %#x vs %#x", a, b)
	}
}

func TestStoreLoadRefusedWhenDataClobbered(t *testing.T) {
	// The store's data register is redefined before the load; renaming
	// would forward the wrong value.
	body := []BodyInst{
		{Inst: isa.Inst{Op: isa.ST, Rs1: 1, Rs2: 2}, Dep: [2]int{DepLiveIn, DepLiveIn}, MemDep: DepLiveIn},
		{Inst: isa.Inst{Op: isa.LI, Rd: 2, Imm: 999}, Dep: [2]int{DepLiveIn, DepLiveIn}, MemDep: DepLiveIn},
		{Inst: isa.Inst{Op: isa.LD, Rd: 3, Rs1: 1}, Dep: [2]int{DepLiveIn, DepLiveIn}, MemDep: 0},
		{Inst: isa.Inst{Op: isa.ADD, Rd: 4, Rs1: 3, Rs2: 2}, Dep: [2]int{2, 1}, MemDep: DepLiveIn},
		{Inst: isa.Inst{Op: isa.LD, Rd: 5, Rs1: 4}, Dep: [2]int{3, DepLiveIn}, MemDep: DepLiveIn},
	}
	opt := Optimize(body)
	seeds := map[isa.Reg]int64{1: 0x500, 2: 77}
	m := mem.New()
	if a, b := finalLoadAddr(body, seeds, m), finalLoadAddr(opt, seeds, m); a != b {
		t.Errorf("prefetch address changed: %d vs %d", a, b)
	}
}

func TestDeadCodeEliminationFromRoot(t *testing.T) {
	// An instruction feeding nothing on the path to the final load is dead.
	body := []BodyInst{
		{Inst: isa.Inst{Op: isa.ADDI, Rd: 9, Rs1: 9, Imm: 1}, Dep: [2]int{DepLiveIn, DepLiveIn}, MemDep: DepLiveIn}, // dead
		{Inst: isa.Inst{Op: isa.ADDI, Rd: 5, Rs1: 6, Imm: 8}, Dep: [2]int{DepLiveIn, DepLiveIn}, MemDep: DepLiveIn},
		{Inst: isa.Inst{Op: isa.LD, Rd: 7, Rs1: 5}, Dep: [2]int{1, DepLiveIn}, MemDep: DepLiveIn},
	}
	opt := Optimize(body)
	if len(opt) != 2 {
		t.Fatalf("optimized size = %d, want 2:\n%v", len(opt), opt)
	}
	for _, bi := range opt {
		if bi.Inst.Rd == 9 {
			t.Error("dead instruction survived")
		}
	}
}

func TestMoveElimination(t *testing.T) {
	body := []BodyInst{
		{Inst: isa.Inst{Op: isa.MOV, Rd: 3, Rs1: 2}, Dep: [2]int{DepLiveIn, DepLiveIn}, MemDep: DepLiveIn},
		{Inst: isa.Inst{Op: isa.LD, Rd: 4, Rs1: 3, Imm: 16}, Dep: [2]int{0, DepLiveIn}, MemDep: DepLiveIn},
	}
	opt := Optimize(body)
	if len(opt) != 1 {
		t.Fatalf("optimized size = %d, want 1:\n%v", len(opt), opt)
	}
	if opt[0].Inst.Rs1 != 2 {
		t.Errorf("load base = r%d, want r2", opt[0].Inst.Rs1)
	}
}

func TestOptimizePreservesFinalInstruction(t *testing.T) {
	// Even a body that is a single load must survive unchanged.
	body := []BodyInst{
		{Inst: isa.Inst{Op: isa.LD, Rd: 4, Rs1: 3, Imm: 16}, Dep: [2]int{DepTrigger, DepLiveIn}, MemDep: DepLiveIn},
	}
	opt := Optimize(body)
	if len(opt) != 1 || opt[0].Inst != body[0].Inst {
		t.Fatalf("single-load body altered: %v", opt)
	}
}

func TestOptimizeEmptyBody(t *testing.T) {
	if got := Optimize(nil); len(got) != 0 {
		t.Errorf("Optimize(nil) = %v, want empty", got)
	}
}

// TestQuickOptimizePreservesPrefetchAddress generates random ADDI/LI/MOV
// chains ending in a load and checks the one invariant that matters: the
// optimized body computes the same prefetch address.
func TestQuickOptimizePreservesPrefetchAddress(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(8)
		body := make([]BodyInst, 0, n+1)
		lastWriter := map[isa.Reg]int{}
		for i := 0; i < n; i++ {
			rd := isa.Reg(1 + rng.Intn(8))
			rs := isa.Reg(1 + rng.Intn(8))
			dep := DepLiveIn
			if w, ok := lastWriter[rs]; ok {
				dep = w
			}
			var in isa.Inst
			switch rng.Intn(3) {
			case 0:
				in = isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: rs, Imm: int64(rng.Intn(64))}
			case 1:
				in = isa.Inst{Op: isa.LI, Rd: rd, Imm: int64(rng.Intn(4096))}
				dep = DepLiveIn
			case 2:
				in = isa.Inst{Op: isa.MOV, Rd: rd, Rs1: rs}
			}
			body = append(body, BodyInst{Inst: in, Dep: [2]int{dep, DepLiveIn}, MemDep: DepLiveIn})
			lastWriter[rd] = i
		}
		base := isa.Reg(1 + rng.Intn(8))
		dep := DepLiveIn
		if w, ok := lastWriter[base]; ok {
			dep = w
		}
		body = append(body, BodyInst{
			Inst: isa.Inst{Op: isa.LD, Rd: 9, Rs1: base, Imm: int64(rng.Intn(64))},
			Dep:  [2]int{dep, DepLiveIn}, MemDep: DepLiveIn,
		})
		seeds := map[isa.Reg]int64{}
		for r := isa.Reg(1); r <= 8; r++ {
			seeds[r] = int64(rng.Intn(1 << 20))
		}
		opt := Optimize(body)
		a := finalLoadAddr(body, seeds, mem.New())
		b := finalLoadAddr(opt, seeds, mem.New())
		if a != b {
			t.Fatalf("trial %d: prefetch address changed %d -> %d\noriginal %v\noptimized %v",
				trial, a, b, body, opt)
		}
	}
}
