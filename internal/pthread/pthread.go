// Package pthread defines static p-threads — trigger/body pairs extracted
// from slice trees — and implements the framework's two enhancements from
// the paper's §3.3: localized p-thread optimization (store-load pair
// elimination, constant folding, register-move elimination) and merging of
// p-threads with matching dataflow prefixes.
package pthread

import (
	"fmt"
	"strings"

	"preexec/internal/isa"
	"preexec/internal/slice"
)

// Dependence encodings for BodyInst.Dep and MemDep.
const (
	// DepLiveIn marks an operand produced before the trigger; its value is
	// available in the seed register file at launch.
	DepLiveIn = -1
	// DepTrigger marks an operand produced by the trigger instruction
	// itself; it becomes available when the main thread completes the
	// trigger (the launch mechanism forwards it).
	DepTrigger = -2
)

// BodyInst is one p-thread body instruction with its intra-body dataflow.
type BodyInst struct {
	Inst isa.Inst
	// Dep[i] is the body index of the producer of register source i, or
	// DepLiveIn / DepTrigger.
	Dep [2]int
	// MemDep is, for loads, the body index of the producing store, or
	// DepLiveIn (no in-body producer).
	MemDep int
}

// PThread is a static p-thread: dynamic instances of the body are launched
// every time the main thread renames an instance of the trigger.
type PThread struct {
	// TriggerPC is the static instruction whose rename launches the body.
	TriggerPC int
	// Roots are the static problem loads this p-thread pre-executes (one,
	// unless p-threads were merged).
	Roots []int
	Body  []BodyInst

	// Selection-time statistics and predictions (model outputs; the
	// validation experiments compare them against simulated measurements).
	DCtrig  int64   // predicted dynamic launches
	DCptcm  int64   // predicted misses pre-executed
	LT      float64 // predicted latency tolerance per covered miss (cycles)
	OH      float64 // predicted overhead per launch (cycles)
	ADVagg  float64 // aggregate advantage at selection time
	FullCov bool    // LT reached the full miss latency

	// Region restricts launches to a dynamic-instruction range when p-thread
	// selection ran at sub-program granularity. Zero values mean "always".
	RegionStart, RegionEnd int64
}

// Size returns the body length in instructions (the paper's SIZEpt).
func (p *PThread) Size() int { return len(p.Body) }

// Insts returns the body as a plain instruction slice for execution.
func (p *PThread) Insts() []isa.Inst {
	out := make([]isa.Inst, len(p.Body))
	for i, bi := range p.Body {
		out[i] = bi.Inst
	}
	return out
}

// ActiveAt reports whether the p-thread may launch at the given dynamic
// instruction index (region gating for fine-grained selection).
func (p *PThread) ActiveAt(seq int64) bool {
	if p.RegionStart == 0 && p.RegionEnd == 0 {
		return true
	}
	return seq >= p.RegionStart && seq < p.RegionEnd
}

// String renders the p-thread as a trigger annotation plus body listing.
func (p *PThread) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trigger #%02d -> roots %v (DCtrig=%d DCptcm=%d LT=%.1f OH=%.3f ADV=%.1f)\n",
		p.TriggerPC, p.Roots, p.DCtrig, p.DCptcm, p.LT, p.OH, p.ADVagg)
	for i, bi := range p.Body {
		fmt.Fprintf(&b, "  [%d] %s\n", i, bi.Inst)
	}
	return b.String()
}

// FromPath builds the p-thread body for the slice-tree node at the end of
// path (path[0] = root load ... path[k] = trigger). The body contains the
// slice instructions strictly after the trigger in dynamic order: depths
// k-1, k-2, ..., 0 — so body[j] corresponds to path[k-1-j] and the final
// body instruction is the problem load. This matches the paper's candidate
// accounting (the trigger is an annotation, not a body instruction).
func FromPath(path []*slice.Node) *PThread {
	k := len(path) - 1
	if k < 1 {
		return nil // the root itself cannot be a trigger for a useful body
	}
	trigger := path[k]
	body := make([]BodyInst, k)
	depthToBody := func(depth int) int {
		// producer at depth d: body index k-1-d if 0 <= d <= k-1.
		switch {
		case depth == slice.NoDep:
			return DepLiveIn
		case depth == k:
			return DepTrigger
		case depth > k:
			return DepLiveIn // produced before the trigger
		default:
			return k - 1 - depth
		}
	}
	for j := 0; j < k; j++ {
		n := path[k-1-j]
		bi := BodyInst{
			Inst:   n.Op,
			Dep:    [2]int{depthToBody(n.DepPos[0]), depthToBody(n.DepPos[1])},
			MemDep: DepLiveIn,
		}
		if n.MemDepPos != slice.NoDep {
			if md := depthToBody(n.MemDepPos); md >= 0 {
				bi.MemDep = md
			}
		}
		// Only keep deps for operands the instruction actually reads.
		_, ns := n.Op.Sources()
		for s := ns; s < 2; s++ {
			bi.Dep[s] = DepLiveIn
		}
		body[j] = bi
	}
	return &PThread{
		TriggerPC: trigger.PC,
		Roots:     []int{path[0].PC},
		Body:      body,
	}
}

// LiveIns returns the set of architectural registers the body reads before
// writing — the seed values the launch mechanism must provide.
func (p *PThread) LiveIns() []isa.Reg {
	written := make(map[isa.Reg]bool)
	seen := make(map[isa.Reg]bool)
	var out []isa.Reg
	for _, bi := range p.Body {
		srcs, ns := bi.Inst.Sources()
		for i := 0; i < ns; i++ {
			r := srcs[i]
			if r != isa.Zero && !written[r] && !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
		if bi.Inst.HasDest() {
			written[bi.Inst.Rd] = true
		}
	}
	return out
}
