package pthread

import (
	"testing"

	"preexec/internal/isa"
	"preexec/internal/slice"
)

// pharmacyLeftPath builds the slice-tree path for the paper's left-hand
// computation: root #09 <- #08 <- #07 <- #04 <- #11 <- #11 (Figure 3,
// nodes A..F). Dependence positions use path depths.
func pharmacyLeftPath() []*slice.Node {
	mk := func(pc int, op isa.Inst, depth int, dep0 int) *slice.Node {
		return &slice.Node{
			PC: pc, Op: op, Depth: depth,
			DepPos: [2]int{dep0, slice.NoDep}, MemDepPos: slice.NoDep,
			DCptcm: 30,
		}
	}
	// #09: ld r8,0(r7)    <- addr from #08 (depth 1)
	// #08: addi r7,r7,D   <- from #07 (depth 2)
	// #07: sll r7,r7,2    <- from #04 (depth 3)
	// #04: ld r7,4(r5)    <- addr from #11 (depth 4)
	// #11: addi r5,r5,16  <- from #11 (depth 5)
	// #11: addi r5,r5,16  <- live-in
	a := mk(9, isa.Inst{Op: isa.LD, Rd: 8, Rs1: 7}, 0, 1)
	b := mk(8, isa.Inst{Op: isa.ADDI, Rd: 7, Rs1: 7, Imm: 0x2000}, 1, 2)
	c := mk(7, isa.Inst{Op: isa.SLLI, Rd: 7, Rs1: 7, Imm: 2}, 2, 3)
	d := mk(4, isa.Inst{Op: isa.LD, Rd: 7, Rs1: 5, Imm: 4}, 3, 4)
	e := mk(11, isa.Inst{Op: isa.ADDI, Rd: 5, Rs1: 5, Imm: 16}, 4, 5)
	f := mk(11, isa.Inst{Op: isa.ADDI, Rd: 5, Rs1: 5, Imm: 16}, 5, slice.NoDep)
	return []*slice.Node{a, b, c, d, e, f}
}

func TestFromPathBodyOrder(t *testing.T) {
	path := pharmacyLeftPath()
	pt := FromPath(path)
	if pt == nil {
		t.Fatal("FromPath returned nil")
	}
	if pt.TriggerPC != 11 {
		t.Errorf("trigger = %d, want 11", pt.TriggerPC)
	}
	if pt.Roots[0] != 9 {
		t.Errorf("root = %v, want [9]", pt.Roots)
	}
	if pt.Size() != 5 {
		t.Fatalf("size = %d, want 5 (trigger excluded)", pt.Size())
	}
	wantOps := []isa.Op{isa.ADDI, isa.LD, isa.SLLI, isa.ADDI, isa.LD}
	for i, op := range wantOps {
		if pt.Body[i].Inst.Op != op {
			t.Errorf("body[%d].Op = %v, want %v", i, pt.Body[i].Inst.Op, op)
		}
	}
	// Dependences: body[0] (the #11 copy) depends on the trigger.
	if pt.Body[0].Dep[0] != DepTrigger {
		t.Errorf("body[0].Dep = %v, want DepTrigger", pt.Body[0].Dep)
	}
	// Each later body inst depends on its predecessor.
	for i := 1; i < 5; i++ {
		if pt.Body[i].Dep[0] != i-1 {
			t.Errorf("body[%d].Dep[0] = %d, want %d", i, pt.Body[i].Dep[0], i-1)
		}
	}
}

func TestFromPathRootOnly(t *testing.T) {
	path := pharmacyLeftPath()[:1]
	if pt := FromPath(path); pt != nil {
		t.Error("a root-only path has no valid p-thread")
	}
}

func TestFromPathShortCandidate(t *testing.T) {
	// Trigger = #08 (depth 1): body = just the load. This is the paper's
	// candidate 1 with SIZE 1.
	path := pharmacyLeftPath()[:2]
	pt := FromPath(path)
	if pt.Size() != 1 || pt.Body[0].Inst.Op != isa.LD {
		t.Fatalf("candidate 1 = %v", pt)
	}
	if pt.TriggerPC != 8 {
		t.Errorf("trigger = %d, want 8", pt.TriggerPC)
	}
	if pt.Body[0].Dep[0] != DepTrigger {
		t.Errorf("load's address must come from the trigger, got %v", pt.Body[0].Dep)
	}
}

func TestLiveIns(t *testing.T) {
	pt := FromPath(pharmacyLeftPath())
	ins := pt.LiveIns()
	if len(ins) != 1 || ins[0] != 5 {
		t.Errorf("live-ins = %v, want [r5]", ins)
	}
}

func TestLiveInsIgnoresWrittenFirst(t *testing.T) {
	pt := &PThread{Body: []BodyInst{
		{Inst: isa.Inst{Op: isa.LI, Rd: 3, Imm: 1}},
		{Inst: isa.Inst{Op: isa.ADD, Rd: 4, Rs1: 3, Rs2: 2}},
	}}
	ins := pt.LiveIns()
	if len(ins) != 1 || ins[0] != 2 {
		t.Errorf("live-ins = %v, want [r2]", ins)
	}
}

func TestActiveAt(t *testing.T) {
	always := &PThread{}
	if !always.ActiveAt(0) || !always.ActiveAt(1<<40) {
		t.Error("unregioned p-thread must always be active")
	}
	regioned := &PThread{RegionStart: 100, RegionEnd: 200}
	if regioned.ActiveAt(99) || !regioned.ActiveAt(100) || !regioned.ActiveAt(199) || regioned.ActiveAt(200) {
		t.Error("region gating wrong")
	}
}

func TestStringContainsTriggerAndBody(t *testing.T) {
	pt := FromPath(pharmacyLeftPath())
	s := pt.String()
	if len(s) == 0 {
		t.Fatal("empty String()")
	}
	for _, want := range []string{"trigger #11", "ld r8, 0(r7)"} {
		if !contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
