package pthread

import (
	"encoding/json"
	"fmt"
	"os"

	"preexec/internal/isa"
)

// pthreadFile is the on-disk representation of a selected p-thread set —
// the artifact tselect writes and tsim consumes, completing the paper's
// §4.1 tool flow (profile -> select -> simulate as separate invocations).
type pthreadFile struct {
	Version  int        `json:"version"`
	PThreads []*PThread `json:"pthreads"`
}

const pthreadVersion = 1

// Save writes a p-thread set to path as JSON.
func Save(path string, pts []*PThread) error {
	data, err := json.MarshalIndent(pthreadFile{Version: pthreadVersion, PThreads: pts}, "", " ")
	if err != nil {
		return fmt.Errorf("pthread: marshal: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a p-thread set written by Save, validating each body.
func Load(path string) ([]*PThread, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("pthread: read: %w", err)
	}
	var f pthreadFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("pthread: parse %s: %w", path, err)
	}
	if f.Version != pthreadVersion {
		return nil, fmt.Errorf("pthread: %s has version %d, want %d", path, f.Version, pthreadVersion)
	}
	for i, pt := range f.PThreads {
		if pt == nil {
			return nil, fmt.Errorf("pthread: %s: entry %d is null", path, i)
		}
		if err := pt.Validate(); err != nil {
			return nil, fmt.Errorf("pthread: %s: entry %d: %w", path, i, err)
		}
	}
	return f.PThreads, nil
}

// Validate checks a p-thread's structural integrity: dependence indexes in
// range and pointing backward, registers within the p-thread register file,
// and a non-degenerate final instruction for non-empty bodies.
func (p *PThread) Validate() error {
	for i, bi := range p.Body {
		check := func(d int, kind string) error {
			switch {
			case d == DepLiveIn || d == DepTrigger:
				return nil
			case d < 0 || d >= i:
				return fmt.Errorf("body[%d]: %s dependence %d out of range", i, kind, d)
			default:
				return nil
			}
		}
		if err := check(bi.Dep[0], "first"); err != nil {
			return err
		}
		if err := check(bi.Dep[1], "second"); err != nil {
			return err
		}
		if err := check(bi.MemDep, "memory"); err != nil {
			return err
		}
		for _, r := range []isa.Reg{bi.Inst.Rd, bi.Inst.Rs1, bi.Inst.Rs2} {
			if r >= isa.PtRegs {
				return fmt.Errorf("body[%d]: register r%d exceeds the p-thread register file", i, r)
			}
		}
	}
	return nil
}
