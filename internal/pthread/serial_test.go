package pthread

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	pts := []*PThread{pharmacyF(), pharmacyJ()}
	pts[1].RegionStart, pts[1].RegionEnd = 100, 200
	path := filepath.Join(t.TempDir(), "pts.json")
	if err := Save(path, pts); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("loaded %d p-threads, want 2", len(got))
	}
	a, b := got[0], got[1]
	if a.TriggerPC != 11 || a.Size() != 5 || a.DCtrig != 100 {
		t.Errorf("p-thread 0 lost fields: %+v", a)
	}
	if b.RegionStart != 100 || b.RegionEnd != 200 {
		t.Errorf("region gating lost: %+v", b)
	}
	for i := range a.Body {
		if a.Body[i] != pts[0].Body[i] {
			t.Errorf("body[%d] changed across round trip", i)
		}
	}
}

func TestLoadRejectsCorruptDeps(t *testing.T) {
	pt := pharmacyF()
	pt.Body[1].Dep[0] = 4 // forward reference: invalid
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := Save(path, []*PThread{pt}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("forward dependence should fail validation")
	}
}

func TestLoadRejectsBadRegisters(t *testing.T) {
	pt := pharmacyF()
	pt.Body[0].Inst.Rd = 200
	path := filepath.Join(t.TempDir(), "badreg.json")
	if err := Save(path, []*PThread{pt}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("out-of-file register should fail validation")
	}
}

func TestLoadMissingAndGarbage(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should fail")
	}
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("garbage should fail")
	}
}

func TestValidateAcceptsSpecialDeps(t *testing.T) {
	pt := pharmacyF()
	if err := pt.Validate(); err != nil {
		t.Errorf("pharmacy F should validate: %v", err)
	}
	empty := &PThread{TriggerPC: 3, Roots: []int{4}}
	if err := empty.Validate(); err != nil {
		t.Errorf("empty body should validate: %v", err)
	}
}
