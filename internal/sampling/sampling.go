// Package sampling implements the cyclic simulation-sampling scheme of the
// paper's methodology (§4.1): execution cycles through *off* (fast-forward,
// nothing modeled), *warm* (caches and branch predictor train, no
// statistics) and *on* (full detail) phases at regular intervals. The paper
// samples 100M of every 1B instructions with 10M-instruction warm-up phases
// and verifies that cyclic sampling is equivalent to unsampled execution by
// miss rates and IPCs; this package provides the schedule, and the profiler
// consumes it.
package sampling

import "fmt"

// Phase is the current sampling state.
type Phase uint8

// Phases, in cycle order.
const (
	Off Phase = iota
	Warm
	On
)

func (p Phase) String() string {
	switch p {
	case Off:
		return "off"
	case Warm:
		return "warm"
	case On:
		return "on"
	default:
		return "unknown"
	}
}

// Schedule describes one sampling period: OffInsts of fast-forwarding,
// WarmInsts of training, OnInsts of measurement, repeated. A zero OffInsts
// with zero WarmInsts measures everything.
type Schedule struct {
	OffInsts  int64
	WarmInsts int64
	OnInsts   int64
}

// Validate checks that the schedule can make progress.
func (s Schedule) Validate() error {
	if s.OffInsts < 0 || s.WarmInsts < 0 || s.OnInsts <= 0 {
		return fmt.Errorf("sampling: invalid schedule %+v (OnInsts must be positive, others non-negative)", s)
	}
	return nil
}

// Period returns the instructions in one full off/warm/on cycle.
func (s Schedule) Period() int64 { return s.OffInsts + s.WarmInsts + s.OnInsts }

// PhaseAt returns the phase of dynamic instruction n (0-based) and how many
// instructions remain in that phase including n.
func (s Schedule) PhaseAt(n int64) (Phase, int64) {
	p := n % s.Period()
	switch {
	case p < s.OffInsts:
		return Off, s.OffInsts - p
	case p < s.OffInsts+s.WarmInsts:
		return Warm, s.OffInsts + s.WarmInsts - p
	default:
		return On, s.Period() - p
	}
}

// OnFraction returns the fraction of instructions measured.
func (s Schedule) OnFraction() float64 {
	return float64(s.OnInsts) / float64(s.Period())
}

// MeasuredBy returns how many instructions the schedule measures within the
// first total instructions.
func (s Schedule) MeasuredBy(total int64) int64 {
	period := s.Period()
	full := total / period
	measured := full * s.OnInsts
	rem := total % period
	if inOn := rem - s.OffInsts - s.WarmInsts; inOn > 0 {
		measured += inOn
	}
	return measured
}

// Paper returns the paper's schedule scaled by the given divisor: the paper
// measures 100M of every 1B with 10M warm-up (i.e. off 890M, warm 10M, on
// 100M); Paper(1000) yields off 890K / warm 10K / on 100K.
func Paper(divisor int64) Schedule {
	if divisor <= 0 {
		divisor = 1
	}
	return Schedule{
		OffInsts:  890_000_000 / divisor,
		WarmInsts: 10_000_000 / divisor,
		OnInsts:   100_000_000 / divisor,
	}
}
