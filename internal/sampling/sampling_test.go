package sampling

import "testing"

func TestValidate(t *testing.T) {
	bad := []Schedule{
		{OnInsts: 0},
		{OffInsts: -1, OnInsts: 10},
		{WarmInsts: -5, OnInsts: 10},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("schedule %+v should be invalid", s)
		}
	}
	if err := (Schedule{OffInsts: 100, WarmInsts: 10, OnInsts: 50}).Validate(); err != nil {
		t.Error(err)
	}
}

func TestPhaseAt(t *testing.T) {
	s := Schedule{OffInsts: 100, WarmInsts: 10, OnInsts: 50}
	cases := []struct {
		n         int64
		phase     Phase
		remaining int64
	}{
		{0, Off, 100},
		{99, Off, 1},
		{100, Warm, 10},
		{109, Warm, 1},
		{110, On, 50},
		{159, On, 1},
		{160, Off, 100}, // next period
		{320, Off, 100},
	}
	for _, c := range cases {
		p, rem := s.PhaseAt(c.n)
		if p != c.phase || rem != c.remaining {
			t.Errorf("PhaseAt(%d) = %v,%d want %v,%d", c.n, p, rem, c.phase, c.remaining)
		}
	}
}

func TestAllOnSchedule(t *testing.T) {
	s := Schedule{OnInsts: 10}
	for n := int64(0); n < 25; n++ {
		if p, _ := s.PhaseAt(n); p != On {
			t.Fatalf("all-on schedule returned %v at %d", p, n)
		}
	}
}

func TestOnFraction(t *testing.T) {
	s := Schedule{OffInsts: 60, WarmInsts: 20, OnInsts: 20}
	if got := s.OnFraction(); got != 0.2 {
		t.Errorf("OnFraction = %v, want 0.2", got)
	}
}

func TestMeasuredBy(t *testing.T) {
	s := Schedule{OffInsts: 100, WarmInsts: 10, OnInsts: 50}
	cases := []struct {
		total, want int64
	}{
		{0, 0},
		{100, 0},   // all off
		{110, 0},   // off+warm
		{111, 1},   // 1 measured
		{160, 50},  // one full period
		{260, 50},  // second period's off phase
		{320, 100}, // two full periods
	}
	for _, c := range cases {
		if got := s.MeasuredBy(c.total); got != c.want {
			t.Errorf("MeasuredBy(%d) = %d, want %d", c.total, got, c.want)
		}
	}
}

func TestPaper(t *testing.T) {
	s := Paper(1000)
	if s.OffInsts != 890_000 || s.WarmInsts != 10_000 || s.OnInsts != 100_000 {
		t.Errorf("Paper(1000) = %+v", s)
	}
	if s.Period() != 1_000_000 {
		t.Errorf("period = %d", s.Period())
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
	if Paper(0).OnInsts != 100_000_000 {
		t.Error("Paper(0) should behave as divisor 1")
	}
}

func TestPhaseStrings(t *testing.T) {
	if Off.String() != "off" || Warm.String() != "warm" || On.String() != "on" {
		t.Error("phase strings wrong")
	}
	if Phase(9).String() != "unknown" {
		t.Error("unknown phase string wrong")
	}
}
