package selector

import (
	"testing"

	"preexec/internal/slice"
	"preexec/internal/workload"
)

// BenchmarkSelectForest measures selection (candidate scoring + iterative
// overlap correction + merging) on a profiled forest.
func BenchmarkSelectForest(b *testing.B) {
	w, err := workload.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	forest, err := slice.ProfileWhole(w.Build(1), slice.ProfileOptions{MaxInsts: 100_000})
	if err != nil {
		b.Fatal(err)
	}
	opts := paperOpts()
	opts.Merge = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SelectForest(forest, opts)
	}
}
