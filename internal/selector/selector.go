// Package selector implements the paper's p-thread selection procedure
// (§3.2): per-slice-tree iterative selection with overlap-aware advantage
// reduction, whole-program (forest) selection, optional merging, and the
// diagnostic predictions that the validation experiments check against
// timing simulation (§4.3).
package selector

import (
	"sort"

	"preexec/internal/advantage"
	"preexec/internal/pthread"
	"preexec/internal/slice"
)

// Options configures a selection run.
type Options struct {
	Params advantage.Params
	// Merge enables merging of p-threads with matching dataflow prefixes.
	Merge bool
	// MergeMaxLen bounds merged p-thread length (0 = 2x Params.MaxLen).
	MergeMaxLen int
	// MaxIterations bounds the overlap-correction fixed point (default 10).
	MaxIterations int
}

func (o Options) mergeMaxLen() int {
	if o.MergeMaxLen > 0 {
		return o.MergeMaxLen
	}
	ml := o.Params.MaxLen
	if ml <= 0 {
		ml = 32
	}
	return 2 * ml
}

func (o Options) maxIterations() int {
	if o.MaxIterations > 0 {
		return o.MaxIterations
	}
	return 10
}

// Prediction is the model's forecast of a p-thread set's dynamic behaviour —
// the "Predict" block of the paper's Table 2.
type Prediction struct {
	PThreads        int     // static p-threads selected
	Launches        int64   // dynamic p-threads launched (Σ DCtrig)
	MissesCovered   int64   // L2 misses pre-executed (Σ DCptcm)
	MissesFullCov   int64   // misses whose full latency is hidden
	InstsPerPThread float64 // mean dynamic p-thread length
	OverheadCycles  float64 // Σ OHagg
	LTCycles        float64 // Σ LTagg after overlap reduction
	ADVagg          float64 // net predicted cycles saved
}

// Result is a completed selection.
type Result struct {
	PThreads []*pthread.PThread
	Pred     Prediction
}

// selected is one chosen candidate inside a tree.
type selected struct {
	path  []*slice.Node // root .. trigger (owned copy)
	score advantage.Score
	// adjusted is the advantage after overlap reductions.
	adjusted float64
}

func (s *selected) trigger() *slice.Node { return s.path[len(s.path)-1] }

// isAncestorOf reports whether a's trigger node is a proper ancestor of b's
// trigger node — the only possible source of overlap between two p-threads
// in a slice tree (paper §3.2). Shared prefixes share *slice.Node pointers,
// so ancestry is pointer membership on the deeper path.
func (s *selected) isAncestorOf(b *selected) bool {
	if len(s.path) >= len(b.path) {
		return false
	}
	return b.path[len(s.path)-1] == s.trigger()
}

// SelectTree solves one slice tree: the set of p-threads whose aggregate
// advantages — with parent/child double-counted latency tolerance subtracted
// — sum to a maximum. It follows the paper's iterative procedure: select the
// best candidate per leaf path independently, reduce overlapping parents'
// advantages, and reselect until stable.
func SelectTree(tree *slice.Tree, dctrig map[int]int64, opts Options) []*selected {
	// Gather root-to-leaf paths.
	var leaves [][]*slice.Node
	tree.Walk(func(path []*slice.Node) {
		n := path[len(path)-1]
		if len(n.Children) == 0 && len(path) > 1 {
			cp := make([]*slice.Node, len(path))
			copy(cp, path)
			leaves = append(leaves, cp)
		}
	})
	if len(leaves) == 0 {
		return nil
	}

	// One selection slot per leaf; nil = leaf declines.
	cur := make([]*selected, len(leaves))
	// Reductions applied to a candidate trigger node: DCptcm of selected
	// descendants, keyed by trigger node pointer.
	for iter := 0; iter < opts.maxIterations(); iter++ {
		// Descendant-coverage currently selected, per node.
		reduce := make(map[*slice.Node]int64)
		for _, s := range cur {
			if s == nil {
				continue
			}
			// Every proper ancestor of s's trigger double-tolerates s's
			// covered misses.
			for _, anc := range s.path[:len(s.path)-1] {
				reduce[anc] += s.score.DCptcm
			}
		}
		changed := false
		for li, leaf := range leaves {
			var best *selected
			for l := 2; l <= len(leaf); l++ {
				sc, okc := advantage.ScorePath(leaf[:l], dctrig, opts.Params)
				if !okc {
					continue
				}
				adj := sc.ADVagg - float64(reduce[leaf[l-1]])*sc.LT
				if adj <= 0 {
					continue
				}
				if best == nil || adj > best.adjusted {
					best = &selected{path: leaf[:l:l], score: sc, adjusted: adj}
				}
			}
			if !sameSelection(cur[li], best) {
				cur[li] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Deduplicate: leaves sharing a prefix may select the same trigger node.
	seen := make(map[*slice.Node]bool)
	var out []*selected
	for _, s := range cur {
		if s == nil || seen[s.trigger()] {
			continue
		}
		seen[s.trigger()] = true
		out = append(out, s)
	}
	// Final adjusted advantages with the definitive selection in place.
	for _, p := range out {
		p.adjusted = p.score.ADVagg
		for _, c := range out {
			if p.isAncestorOf(c) {
				p.adjusted -= float64(c.score.DCptcm) * p.score.LT
			}
		}
	}
	return out
}

func sameSelection(a, b *selected) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.trigger() == b.trigger()
}

// SelectForest selects p-threads for a whole program sample.
func SelectForest(forest *slice.Forest, opts Options) Result {
	var all []*selected
	for _, root := range forest.SortedRoots() {
		all = append(all, SelectTree(forest.Trees[root], forest.DCtrig, opts)...)
	}
	// Deterministic order: by trigger PC, then root PC.
	sort.SliceStable(all, func(i, j int) bool {
		ti, tj := all[i].trigger().PC, all[j].trigger().PC
		if ti != tj {
			return ti < tj
		}
		return all[i].path[0].PC < all[j].path[0].PC
	})

	pts := make([]*pthread.PThread, 0, len(all))
	for _, s := range all {
		pt := &pthread.PThread{
			TriggerPC: s.trigger().PC,
			Roots:     []int{s.path[0].PC},
			Body:      s.score.Body,
			DCtrig:    s.score.DCtrig,
			DCptcm:    s.score.DCptcm,
			LT:        s.score.LT,
			OH:        s.score.OH,
			ADVagg:    s.adjusted,
			FullCov:   s.score.FullCov,
		}
		pts = append(pts, pt)
	}
	if opts.Merge {
		oh := func(size int) float64 { return opts.Params.Overhead(size) }
		pts = pthread.MergeAll(pts, oh, opts.mergeMaxLen())
	}
	return Result{PThreads: pts, Pred: predict(pts)}
}

// SelectRegions runs selection independently per profiled region (selection
// granularity, paper §4.4), stamping each p-thread with its region so the
// timing simulator only launches it there.
func SelectRegions(regions []slice.Region, opts Options) Result {
	var pts []*pthread.PThread
	for _, r := range regions {
		res := SelectForest(r.Forest, opts)
		if len(regions) > 1 {
			// Gate launches to the region the p-threads were selected for.
			// A single whole-run region stays unrestricted so the p-threads
			// can be reused on other samples (paper §4.4, Figure 7).
			for _, pt := range res.PThreads {
				pt.RegionStart, pt.RegionEnd = r.Start, r.End
			}
		}
		pts = append(pts, res.PThreads...)
	}
	return Result{PThreads: pts, Pred: predict(pts)}
}

func predict(pts []*pthread.PThread) Prediction {
	var p Prediction
	p.PThreads = len(pts)
	var instSum float64
	for _, pt := range pts {
		p.Launches += pt.DCtrig
		p.MissesCovered += pt.DCptcm
		if pt.FullCov {
			p.MissesFullCov += pt.DCptcm
		}
		p.OverheadCycles += pt.OH * float64(pt.DCtrig)
		p.LTCycles += pt.LT * float64(pt.DCptcm)
		p.ADVagg += pt.ADVagg
		instSum += float64(pt.Size()) * float64(pt.DCtrig)
	}
	if p.Launches > 0 {
		p.InstsPerPThread = instSum / float64(p.Launches)
	}
	return p
}

// PredictIPC converts a prediction into the model's IPC forecast for a
// sample of insts instructions whose unassisted IPC is baseIPC: the paper's
// serial-miss assumption translates saved cycles one for one into execution
// time (this is the assumption §4.3 identifies as the model's main source
// of IPC over-estimation). The forecast is bounded by the machine's
// sequencing width — no p-thread set can beat the front end.
func PredictIPC(pred Prediction, insts int64, baseIPC, width float64) float64 {
	if insts == 0 || baseIPC <= 0 {
		return 0
	}
	if width <= 0 {
		width = 8
	}
	baseCycles := float64(insts) / baseIPC
	cycles := baseCycles - pred.ADVagg
	if floor := float64(insts) / width; cycles < floor {
		cycles = floor
	}
	return float64(insts) / cycles
}
