package selector

import (
	"math"
	"testing"

	"preexec/internal/advantage"
	"preexec/internal/isa"
	"preexec/internal/pharmacy"
	"preexec/internal/slice"
)

func paperOpts() Options {
	bw, ipc, lcm, maxLen := pharmacy.PaperParams()
	return Options{Params: advantage.Params{BWSeq: bw, IPC: ipc, MemLat: lcm, MaxLen: maxLen}}
}

func paperForest() *slice.Forest {
	ps := pharmacy.PaperTree()
	f := slice.NewForest()
	f.Trees[9] = ps.Tree
	f.DCtrig = ps.DCtrig
	f.Insts = 1300
	f.Loads = 240
	f.L2Misses = 40
	return f
}

func TestSelectTreePicksFAndJ(t *testing.T) {
	ps := pharmacy.PaperTree()
	sel := SelectTree(ps.Tree, ps.DCtrig, paperOpts())
	if len(sel) != 2 {
		t.Fatalf("selected %d p-threads, want 2 (paper's F and J)", len(sel))
	}
	for _, s := range sel {
		if s.trigger().PC != 11 {
			t.Errorf("trigger PC = %d, want 11", s.trigger().PC)
		}
		if s.trigger().Depth != 5 {
			t.Errorf("trigger depth = %d, want 5", s.trigger().Depth)
		}
	}
	// F and J are on different branches: no overlap, no reductions.
	// F: 177.5 (paper's 177); J: LT 7 in our model -> 70 - 62.5 = 7.5.
	wantADV := map[int64]float64{30: 177.5, 10: 7.5}
	for _, s := range sel {
		want, ok := wantADV[s.score.DCptcm]
		if !ok {
			t.Fatalf("unexpected DCptcm %d", s.score.DCptcm)
		}
		if math.Abs(s.adjusted-want) > 1e-9 {
			t.Errorf("DCptcm %d adjusted ADV = %v, want %v", s.score.DCptcm, s.adjusted, want)
		}
	}
}

func TestSelectTreeNoOverlapBetweenFinalSelections(t *testing.T) {
	ps := pharmacy.PaperTree()
	sel := SelectTree(ps.Tree, ps.DCtrig, paperOpts())
	for i, a := range sel {
		for j, b := range sel {
			if i != j && a.isAncestorOf(b) && a.adjusted <= 0 {
				t.Error("an overlapping ancestor with non-positive adjusted advantage survived")
			}
		}
	}
}

// overlapTree builds a single-branch tree where a shallow candidate and a
// deep candidate would both look attractive in isolation; the iteration must
// account for the double-counted tolerance.
func overlapTree() (*slice.Tree, map[int]int64) {
	mkInst := func(pc int) isa.Inst {
		return isa.Inst{Op: isa.ADDI, Rd: 5, Rs1: 5, Imm: 8}
	}
	node := func(pc, depth int, dcptcm, dist int64, dep0 int) *slice.Node {
		return &slice.Node{
			PC: pc, Op: mkInst(pc), Depth: depth,
			DCptcm: dcptcm, SumDist: dist * dcptcm,
			DepPos: [2]int{dep0, slice.NoDep}, MemDepPos: slice.NoDep,
		}
	}
	root := &slice.Node{PC: 1, Op: isa.Inst{Op: isa.LD, Rd: 2, Rs1: 5}, Depth: 0,
		DCptcm: 100, DepPos: [2]int{1, slice.NoDep}, MemDepPos: slice.NoDep}
	// Two leaves: a short branch covering all 100 misses weakly, and a long
	// one covering 60 strongly.
	n1 := node(10, 1, 100, 12, 2)
	n2a := node(11, 2, 60, 24, 3)
	n2b := node(12, 2, 40, 24, 3)
	n3 := node(11, 3, 60, 36, 4)
	root.Children = []*slice.Node{n1}
	n1.Children = []*slice.Node{n2a, n2b}
	n2a.Children = []*slice.Node{n3}
	tree := &slice.Tree{RootPC: 1, Misses: 100, Root: root}
	dctrig := map[int]int64{1: 120, 10: 120, 11: 120, 12: 60}
	return tree, dctrig
}

func TestSelectTreeConverges(t *testing.T) {
	tree, dctrig := overlapTree()
	opts := paperOpts()
	opts.Params.MemLat = 20
	sel := SelectTree(tree, dctrig, opts)
	if len(sel) == 0 {
		t.Fatal("nothing selected")
	}
	// Every survivor must carry positive adjusted advantage.
	for _, s := range sel {
		if s.adjusted <= 0 {
			t.Errorf("selected p-thread with non-positive adjusted ADV %v", s.adjusted)
		}
	}
	// Total accounted advantage must not exceed the naive sum (reduction
	// only subtracts).
	var naive, adj float64
	for _, s := range sel {
		naive += s.score.ADVagg
		adj += s.adjusted
	}
	if adj > naive+1e-9 {
		t.Errorf("adjusted total %v exceeds naive %v", adj, naive)
	}
}

func TestSelectForestPThreads(t *testing.T) {
	res := SelectForest(paperForest(), paperOpts())
	if len(res.PThreads) != 2 {
		t.Fatalf("forest selection = %d p-threads, want 2", len(res.PThreads))
	}
	for _, pt := range res.PThreads {
		if pt.TriggerPC != 11 || pt.Size() != 5 {
			t.Errorf("p-thread = trigger %d size %d, want 11/5", pt.TriggerPC, pt.Size())
		}
		if pt.Roots[0] != 9 {
			t.Errorf("root = %v, want 9", pt.Roots)
		}
		if pt.Body[len(pt.Body)-1].Inst.Op != isa.LD {
			t.Error("body must end in the problem load")
		}
	}
}

func TestSelectForestPrediction(t *testing.T) {
	res := SelectForest(paperForest(), paperOpts())
	p := res.Pred
	if p.PThreads != 2 {
		t.Errorf("PThreads = %d, want 2", p.PThreads)
	}
	// Both p-threads trigger on #11 (100 launches each, unmerged).
	if p.Launches != 200 {
		t.Errorf("Launches = %d, want 200", p.Launches)
	}
	if p.MissesCovered != 40 {
		t.Errorf("MissesCovered = %d, want 40 (30 + 10)", p.MissesCovered)
	}
	// F fully covers (8 cycles); J covers 7 of 8 in our model.
	if p.MissesFullCov != 30 {
		t.Errorf("MissesFullCov = %d, want 30", p.MissesFullCov)
	}
	if p.InstsPerPThread != 5 {
		t.Errorf("InstsPerPThread = %v, want 5", p.InstsPerPThread)
	}
	wantADV := 177.5 + 7.5
	if math.Abs(p.ADVagg-wantADV) > 1e-9 {
		t.Errorf("ADVagg = %v, want %v", p.ADVagg, wantADV)
	}
}

func TestSelectForestWithMerging(t *testing.T) {
	opts := paperOpts()
	opts.Merge = true
	res := SelectForest(paperForest(), opts)
	if len(res.PThreads) != 1 {
		t.Fatalf("merged selection = %d p-threads, want 1", len(res.PThreads))
	}
	m := res.PThreads[0]
	if m.Size() != 9 {
		t.Errorf("merged size = %d, want 9 (5 + 4 shared-prefix)", m.Size())
	}
	if m.DCtrig != 100 {
		t.Errorf("merged launches = %d, want 100", m.DCtrig)
	}
	if m.DCptcm != 40 {
		t.Errorf("merged coverage = %d, want 40", m.DCptcm)
	}
	// Merging reduces overhead: net advantage must beat the unmerged sum.
	unmerged := SelectForest(paperForest(), paperOpts())
	if m.ADVagg <= unmerged.Pred.ADVagg {
		t.Errorf("merged ADV %v should exceed unmerged %v", m.ADVagg, unmerged.Pred.ADVagg)
	}
}

func TestSelectRegionsStampsRegions(t *testing.T) {
	ps1 := pharmacy.PaperTree()
	ps2 := pharmacy.PaperTree()
	mkForest := func(ps pharmacy.PaperStats) *slice.Forest {
		f := slice.NewForest()
		f.Trees[9] = ps.Tree
		f.DCtrig = ps.DCtrig
		return f
	}
	regions := []slice.Region{
		{Start: 0, End: 1000, Forest: mkForest(ps1)},
		{Start: 1000, End: 2000, Forest: mkForest(ps2)},
	}
	res := SelectRegions(regions, paperOpts())
	if len(res.PThreads) != 4 {
		t.Fatalf("regions selection = %d p-threads, want 4 (2 per region)", len(res.PThreads))
	}
	for _, pt := range res.PThreads {
		if pt.RegionEnd == 0 {
			t.Error("region gating not stamped")
		}
		if pt.ActiveAt(pt.RegionStart-1) && pt.RegionStart > 0 {
			t.Error("p-thread active outside its region")
		}
	}
}

func TestSelectRegionsSingleRegionUnrestricted(t *testing.T) {
	f := paperForest()
	res := SelectRegions([]slice.Region{{Start: 0, End: 1300, Forest: f}}, paperOpts())
	for _, pt := range res.PThreads {
		if !pt.ActiveAt(99999999) {
			t.Error("single-region p-threads must be usable on any sample")
		}
	}
}

func TestSelectEmptyForest(t *testing.T) {
	res := SelectForest(slice.NewForest(), paperOpts())
	if len(res.PThreads) != 0 || res.Pred.PThreads != 0 {
		t.Error("empty forest should select nothing")
	}
}

func TestTightLengthConstraintSelectsNothing(t *testing.T) {
	opts := paperOpts()
	opts.Params.MaxLen = 2 // candidates 1-2 have negative advantage
	res := SelectForest(paperForest(), opts)
	if len(res.PThreads) != 0 {
		t.Errorf("with MaxLen 2 nothing is profitable, got %d p-threads", len(res.PThreads))
	}
}

func TestPredictIPC(t *testing.T) {
	pred := Prediction{ADVagg: 300}
	// base: 1300 insts at IPC 1 = 1300 cycles; saving 300 -> 1000 cycles.
	got := PredictIPC(pred, 1300, 1, 8)
	if math.Abs(got-1.3) > 1e-9 {
		t.Errorf("PredictIPC = %v, want 1.3", got)
	}
	if PredictIPC(pred, 0, 1, 8) != 0 || PredictIPC(pred, 100, 0, 8) != 0 {
		t.Error("degenerate inputs should yield 0")
	}
	// Savings can never drive the forecast past the sequencing width.
	if PredictIPC(Prediction{ADVagg: 1e12}, 100, 1, 8) != 8 {
		t.Error("width bound violated")
	}
}

func TestHigherMemLatSelectsLongerPThreads(t *testing.T) {
	// The paper's Figure 8 response: raising Lcm produces longer p-threads.
	short := paperOpts()
	long := paperOpts()
	long.Params.MemLat = 16
	long.Params.MaxLen = 8
	sShort := SelectForest(paperForest(), short)
	sLong := SelectForest(paperForest(), long)
	if len(sShort.PThreads) == 0 || len(sLong.PThreads) == 0 {
		t.Fatal("both configurations should select p-threads")
	}
	if sLong.Pred.InstsPerPThread <= sShort.Pred.InstsPerPThread {
		t.Errorf("longer latency should select longer p-threads: %v vs %v",
			sLong.Pred.InstsPerPThread, sShort.Pred.InstsPerPThread)
	}
}
