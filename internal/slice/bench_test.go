package slice

import (
	"testing"

	"preexec/internal/workload"
)

// BenchmarkProfile measures the functional profiler (trace + caches +
// backward slicing + slice-tree construction) on a miss-heavy workload.
func BenchmarkProfile(b *testing.B) {
	w, err := workload.ByName("vpr.r")
	if err != nil {
		b.Fatal(err)
	}
	p := w.Build(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ProfileWhole(p, ProfileOptions{MaxInsts: 50_000}); err != nil {
			b.Fatal(err)
		}
	}
}
