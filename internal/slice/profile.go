package slice

import (
	"context"
	"fmt"
	"sync"

	"preexec/internal/cache"
	"preexec/internal/cpu"
	"preexec/internal/isa"
	"preexec/internal/program"
	"preexec/internal/sampling"
	"preexec/internal/trace"
)

// trackerPool recycles dataflow trackers across profiling runs: a tracker's
// ring is Scope entries (~100KB at the default 1024), and engines and the
// suite runner profile every workload per Evaluate, so reuse removes the
// dominant per-profile allocation. Trackers are Reset before use and retain
// no references into published results.
var trackerPool = sync.Pool{New: func() any { return new(trace.Tracker) }}

// ProfileOptions configures a functional profiling run.
type ProfileOptions struct {
	// WarmInsts executes this many instructions first with cache training
	// only — no miss recording, no trigger counting — mirroring the paper's
	// sampling warm-up phases so compulsory cold misses do not pollute the
	// statistics.
	WarmInsts int64
	// MaxInsts bounds the measured dynamic instruction count (0 means run
	// to HALT, which is an error for non-terminating programs; workloads
	// terminate).
	MaxInsts int64
	// Scope is the slicing scope in dynamic instructions (default 1024).
	Scope int
	// MaxSlice is the maximum slice/p-thread length (default 32).
	MaxSlice int
	// RegionInsts, if non-zero, splits the run into regions of this many
	// dynamic instructions, each with its own Forest (selection granularity,
	// paper §4.4 Figure 6).
	RegionInsts int64
	// Hierarchy overrides the cache hierarchy (default: the paper's).
	Hierarchy *cache.Hierarchy
	// Sampling, if non-nil, applies the paper's cyclic off/warm/on sampling
	// (§4.1) instead of the single warm-up + measure window: off phases
	// fast-forward, warm phases train the caches, and only on phases record
	// misses and trigger counts. MaxInsts then bounds the *measured*
	// instructions. WarmInsts is ignored when Sampling is set.
	Sampling *sampling.Schedule
}

func (o *ProfileOptions) fill() {
	if o.Scope <= 0 {
		o.Scope = 1024
	}
	if o.MaxSlice <= 0 {
		o.MaxSlice = 32
	}
	if o.Hierarchy == nil {
		o.Hierarchy = cache.DefaultHierarchy()
	}
	if o.MaxInsts <= 0 {
		o.MaxInsts = 1 << 62
	}
}

// Region is one profiled dynamic region.
type Region struct {
	Start, End int64 // dynamic instruction range [Start, End)
	Forest     *Forest
}

// Profile runs the program functionally through the cache hierarchy,
// building slice trees for every dynamic L2 load miss. It returns one Region
// per RegionInsts instructions (a single region if RegionInsts is 0).
func Profile(p *program.Program, opts ProfileOptions) ([]Region, error) {
	return ProfileContext(context.Background(), p, opts)
}

// ctxCheckMask gates how often the profiling loops poll ctx.Done(): every
// 4096 instructions, invisible in the hot loop but prompt for cancellation.
const ctxCheckMask = 1<<12 - 1

// ProfileContext is Profile honouring ctx: a cancelled or expired context
// stops the functional run within a few thousand instructions and returns
// ctx.Err().
func ProfileContext(ctx context.Context, p *program.Program, opts ProfileOptions) ([]Region, error) {
	opts.fill()
	done := ctx.Done()
	if opts.Sampling != nil {
		if err := opts.Sampling.Validate(); err != nil {
			return nil, err
		}
	}
	st := cpu.New(p)
	tr := trackerPool.Get().(*trace.Tracker)
	tr.Reset(opts.Scope)
	defer trackerPool.Put(tr)
	sl := &Slicer{MaxLen: opts.MaxSlice}

	if opts.Sampling == nil {
		// Warm-up: train the caches without recording anything.
		for w := int64(0); w < opts.WarmInsts && !st.Halted; w++ {
			if done != nil && w&ctxCheckMask == 0 {
				select {
				case <-done:
					return nil, ctx.Err()
				default:
				}
			}
			e, err := st.Step()
			if err != nil {
				return nil, fmt.Errorf("profile %s (warm-up): %w", p.Name, err)
			}
			if e.Inst.IsMem() {
				opts.Hierarchy.Access(e.EffAddr, e.Inst.Op == isa.ST)
			}
		}
	}

	var regions []Region
	forest := NewForest()
	// Region boundaries are absolute dynamic instruction indices (the
	// timing simulator gates launches on absolute trigger positions), so
	// after warm-up the measured window starts at st.Count.
	regionStart := st.Count
	var regionMeasured int64
	closeRegion := func(end int64) {
		forest.Insts = regionMeasured
		regions = append(regions, Region{Start: regionStart, End: end, Forest: forest})
		regionStart = end
		regionMeasured = 0
		// Consecutive regions of a program touch similar static instruction
		// sets, so the closed region's counts are good capacity hints.
		forest = NewForestSized(len(forest.Trees), len(forest.DCtrig))
	}
	// Snapshot per-PC counts for a region in one pass: the tracker counts
	// globally, so diff against (and refresh) the reused previous-snapshot
	// scratch.
	prevDCtrig := make(map[int]int64, 256)
	snapshotDCtrig := func(f *Forest) {
		for pc, n := range tr.DCtrig {
			if d := n - prevDCtrig[pc]; d > 0 {
				f.DCtrig[pc] = d
			}
			prevDCtrig[pc] = n
		}
	}

	n := st.Count
	var measured int64
	for measured < opts.MaxInsts && !st.Halted {
		if done != nil && st.Count&ctxCheckMask == 0 {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		phase := sampling.On
		if opts.Sampling != nil {
			phase, _ = opts.Sampling.PhaseAt(st.Count)
		}
		e, err := st.Step()
		if err != nil {
			return nil, fmt.Errorf("profile %s: %w", p.Name, err)
		}
		switch phase {
		case sampling.Off:
			// Fast-forward: architectural state only.
		case sampling.Warm:
			if e.Inst.IsMem() {
				opts.Hierarchy.Access(e.EffAddr, e.Inst.Op == isa.ST)
			}
		case sampling.On:
			measured++
			regionMeasured++
			ent := tr.Observe(e)
			if e.Inst.IsMem() {
				res := opts.Hierarchy.Access(e.EffAddr, e.Inst.Op == isa.ST)
				if e.Inst.Op == isa.LD {
					forest.Loads++
					if res == cache.MissL2 {
						forest.L2Misses++
						s := sl.Backward(tr, ent)
						forest.TreeFor(e.PC, e.Inst).Insert(s)
					}
				}
			}
		}
		n = st.Count
		if opts.RegionInsts > 0 && n-regionStart >= opts.RegionInsts {
			snapshotDCtrig(forest)
			closeRegion(n)
		}
	}
	if n > regionStart || len(regions) == 0 {
		snapshotDCtrig(forest)
		closeRegion(n)
	}
	return regions, nil
}

// ProfileWhole is Profile with a single region, returning its forest.
func ProfileWhole(p *program.Program, opts ProfileOptions) (*Forest, error) {
	opts.RegionInsts = 0
	regs, err := Profile(p, opts)
	if err != nil {
		return nil, err
	}
	return regs[0].Forest, nil
}
