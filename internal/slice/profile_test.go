package slice

import (
	"testing"

	"preexec/internal/sampling"
	"preexec/internal/workload"
)

func TestProfileWholeBasics(t *testing.T) {
	w, err := workload.ByName("vpr.r")
	if err != nil {
		t.Fatal(err)
	}
	f, err := ProfileWhole(w.Build(1), ProfileOptions{MaxInsts: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if f.Insts != 50_000 {
		t.Errorf("Insts = %d, want 50000", f.Insts)
	}
	if f.Loads == 0 || f.L2Misses == 0 || len(f.Trees) == 0 {
		t.Errorf("empty profile: %+v", f)
	}
	for pc, tree := range f.Trees {
		if err := tree.CheckInvariant(); err != nil {
			t.Errorf("tree %d: %v", pc, err)
		}
		if f.DCtrig[pc] == 0 {
			t.Errorf("root %d has no trigger count", pc)
		}
	}
}

func TestProfileWarmupSuppressesColdMisses(t *testing.T) {
	w, err := workload.ByName("crafty")
	if err != nil {
		t.Fatal(err)
	}
	cold, err := ProfileWhole(w.Build(1), ProfileOptions{MaxInsts: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := ProfileWhole(w.Build(1), ProfileOptions{WarmInsts: 60_000, MaxInsts: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	if warm.L2Misses >= cold.L2Misses && cold.L2Misses > 0 {
		t.Errorf("warm-up should suppress cold misses: cold %d, warm %d", cold.L2Misses, warm.L2Misses)
	}
}

func TestProfileRegions(t *testing.T) {
	w, err := workload.ByName("vpr.p")
	if err != nil {
		t.Fatal(err)
	}
	regions, err := Profile(w.Build(1), ProfileOptions{MaxInsts: 60_000, RegionInsts: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 3 {
		t.Fatalf("regions = %d, want 3", len(regions))
	}
	for i, r := range regions {
		if r.End <= r.Start {
			t.Errorf("region %d: bad bounds [%d,%d)", i, r.Start, r.End)
		}
		if i > 0 && r.Start != regions[i-1].End {
			t.Errorf("region %d not contiguous with previous", i)
		}
		if r.Forest.Insts == 0 {
			t.Errorf("region %d: no measured instructions", i)
		}
	}
	// Per-region trigger counts must partition the whole-run counts
	// (approximately: boundaries can split loop iterations).
	whole, err := ProfileWhole(w.Build(1), ProfileOptions{MaxInsts: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, r := range regions {
		for _, c := range r.Forest.DCtrig {
			sum += c
		}
	}
	var want int64
	for _, c := range whole.DCtrig {
		want += c
	}
	if sum != want {
		t.Errorf("regioned DCtrig sum = %d, whole = %d", sum, want)
	}
}

func TestProfileCyclicSampling(t *testing.T) {
	// The paper verifies cyclic sampling is "equivalent" to unsampled
	// execution by miss rates: the sampled profile's misses-per-measured-
	// instruction must track the unsampled one.
	w, err := workload.ByName("vpr.p")
	if err != nil {
		t.Fatal(err)
	}
	full, err := ProfileWhole(w.Build(1), ProfileOptions{WarmInsts: 30_000, MaxInsts: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	sched := sampling.Schedule{OffInsts: 20_000, WarmInsts: 10_000, OnInsts: 30_000}
	sampled, err := ProfileWhole(w.Build(1), ProfileOptions{MaxInsts: 60_000, Sampling: &sched})
	if err != nil {
		t.Fatal(err)
	}
	if sampled.Insts != 60_000 {
		t.Errorf("sampled measured %d, want 60000", sampled.Insts)
	}
	fullRate := float64(full.L2Misses) / float64(full.Insts)
	sampledRate := float64(sampled.L2Misses) / float64(sampled.Insts)
	if sampledRate < fullRate*0.7 || sampledRate > fullRate*1.3 {
		t.Errorf("sampled miss rate %.4f too far from unsampled %.4f", sampledRate, fullRate)
	}
	if len(sampled.Trees) == 0 {
		t.Error("sampled profile built no slice trees")
	}
}

func TestProfileInvalidSampling(t *testing.T) {
	w, err := workload.ByName("crafty")
	if err != nil {
		t.Fatal(err)
	}
	bad := sampling.Schedule{OnInsts: 0}
	if _, err := ProfileWhole(w.Build(1), ProfileOptions{MaxInsts: 1000, Sampling: &bad}); err == nil {
		t.Error("invalid sampling schedule should fail")
	}
}

func TestProfileStopsAtHalt(t *testing.T) {
	w, err := workload.ByName("crafty")
	if err != nil {
		t.Fatal(err)
	}
	// Ask for far more instructions than the program has.
	f, err := ProfileWhole(w.BuildTest(1), ProfileOptions{MaxInsts: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	if f.Insts == 0 {
		t.Error("profile recorded nothing before halt")
	}
}
