package slice

import (
	"encoding/json"
	"fmt"
	"os"
)

// forestFile is the on-disk representation: maps with int keys are encoded
// as JSON objects with stringified keys by encoding/json, which is fine, but
// we wrap with a version tag so future format changes are detectable.
type forestFile struct {
	Version int     `json:"version"`
	Forest  *Forest `json:"forest"`
}

const forestVersion = 1

// Save writes the forest to path as JSON. This is the "slice tree file" of
// the paper's tool flow (§4.1): the functional simulator writes it out, the
// selection tool reads it back with different parameters.
func (f *Forest) Save(path string) error {
	data, err := json.MarshalIndent(forestFile{Version: forestVersion, Forest: f}, "", " ")
	if err != nil {
		return fmt.Errorf("slice: marshal forest: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a forest written by Save.
func Load(path string) (*Forest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("slice: read forest: %w", err)
	}
	var ff forestFile
	if err := json.Unmarshal(data, &ff); err != nil {
		return nil, fmt.Errorf("slice: parse forest %s: %w", path, err)
	}
	if ff.Version != forestVersion {
		return nil, fmt.Errorf("slice: forest %s has version %d, want %d", path, ff.Version, forestVersion)
	}
	if ff.Forest == nil {
		return nil, fmt.Errorf("slice: forest %s is empty", path)
	}
	if ff.Forest.Trees == nil {
		ff.Forest.Trees = map[int]*Tree{}
	}
	if ff.Forest.DCtrig == nil {
		ff.Forest.DCtrig = map[int]int64{}
	}
	// Restore the Depth fields' consistency (defensive; Depth is serialized
	// but a hand-edited file may disagree with structure).
	for _, t := range ff.Forest.Trees {
		fixDepths(t.Root, 0)
	}
	return ff.Forest, nil
}

func fixDepths(n *Node, d int) {
	if n == nil {
		return
	}
	n.Depth = d
	for _, c := range n.Children {
		fixDepths(c, d+1)
	}
}
