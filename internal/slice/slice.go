// Package slice implements dynamic backward slicing of cache-miss loads and
// the slice tree, the paper's data structure for compactly representing the
// space of all candidate static p-threads for a static problem load (§3.2).
package slice

import (
	"sort"

	"preexec/internal/isa"
	"preexec/internal/trace"
)

// NoDep marks a source operand with no producer inside the slice (a live-in
// seeded from the main thread at launch).
const NoDep = -1

// Inst is one instruction of a backward slice. Position 0 is the problem
// load itself; increasing positions move backward in dynamic execution
// order (deeper in the slice tree).
type Inst struct {
	PC int
	Op isa.Inst
	// Dist is the dynamic main-thread distance (in instructions) from this
	// instruction to the problem load: root.Seq - this.Seq. The SCDH model
	// derives main-thread sequencing constraints from it.
	Dist int64
	// DepPos[i] is the slice position of the producer of register source i,
	// or NoDep. For loads, a memory dependence on an in-slice store is
	// reported through MemDepPos.
	DepPos    [2]int
	MemDepPos int
}

// Slicer extracts backward slices from a Tracker's window.
type Slicer struct {
	// MaxLen bounds the number of instructions in a slice (the paper's
	// maximum p-thread length; default configuration uses 32).
	MaxLen int
}

// Backward builds the dynamic backward data-dependence slice of the given
// miss entry. The slice includes the load itself at position 0 and follows
// register producers and (for loads) store producers, bounded by the
// tracker's scope window and by MaxLen instructions. The returned slice is
// ordered by decreasing Seq (equivalently, increasing Dist).
//
// Slices follow dataflow only — control instructions never appear because
// they produce no register values the computation consumes (JAL link values
// are followed like any dataflow, but workload miss computations do not use
// them). This realizes the paper's control-less p-thread model.
func (s *Slicer) Backward(tr *trace.Tracker, miss *trace.Entry) []Inst {
	maxLen := s.MaxLen
	if maxLen <= 0 {
		maxLen = 32
	}
	// Collect the slice's dynamic instructions by walking producers
	// breadth-first in decreasing-Seq order. A max-heap keyed by Seq ensures
	// we always expand the latest unprocessed instruction first, so the
	// MaxLen cutoff keeps the instructions nearest the miss — the ones that
	// form the shortest candidate p-threads.
	inSlice := map[int64]*trace.Entry{miss.Seq: miss}
	heap := []int64{miss.Seq}
	pop := func() int64 {
		sort.Slice(heap, func(i, j int) bool { return heap[i] > heap[j] })
		v := heap[0]
		heap = heap[1:]
		return v
	}
	var ordered []*trace.Entry
	for len(heap) > 0 && len(ordered) < maxLen {
		seq := pop()
		ent := inSlice[seq]
		ordered = append(ordered, ent)
		expand := func(prodSeq int64) {
			if prodSeq == trace.NoProducer {
				return
			}
			if _, seen := inSlice[prodSeq]; seen {
				return
			}
			prod, ok := tr.Get(prodSeq)
			if !ok {
				return // outside the slicing scope: live-in
			}
			inSlice[prodSeq] = prod
			heap = append(heap, prodSeq)
		}
		expand(ent.SrcProd[0])
		expand(ent.SrcProd[1])
		expand(ent.MemProd)
	}
	// ordered is in decreasing Seq already (max-heap pop order).
	pos := make(map[int64]int, len(ordered))
	for i, ent := range ordered {
		pos[ent.Seq] = i
	}
	out := make([]Inst, len(ordered))
	for i, ent := range ordered {
		si := Inst{
			PC:        ent.PC,
			Op:        ent.Inst,
			Dist:      miss.Seq - ent.Seq,
			DepPos:    [2]int{NoDep, NoDep},
			MemDepPos: NoDep,
		}
		for k := 0; k < 2; k++ {
			if p, ok := pos[ent.SrcProd[k]]; ok && ent.SrcProd[k] != trace.NoProducer {
				si.DepPos[k] = p
			}
		}
		if p, ok := pos[ent.MemProd]; ok && ent.MemProd != trace.NoProducer {
			si.MemDepPos = p
		}
		out[i] = si
	}
	return out
}
