package slice

import (
	"testing"

	"preexec/internal/cpu"
	"preexec/internal/isa"
	"preexec/internal/trace"
)

// feed pushes a sequence of execs through a fresh tracker and returns the
// tracker plus the entry of the final instruction.
func feed(scope int, execs []cpu.Exec) (*trace.Tracker, *trace.Entry) {
	tr := trace.NewTracker(scope)
	var last *trace.Entry
	for _, e := range execs {
		last = tr.Observe(e)
	}
	return tr, last
}

func TestBackwardLinearChain(t *testing.T) {
	// li r1 ; addi r2,r1 ; sll r3,r2 ; ld r4,(r3)  -- plus noise
	execs := []cpu.Exec{
		{Seq: 0, PC: 0, Inst: isa.Inst{Op: isa.LI, Rd: 1}},
		{Seq: 1, PC: 9, Inst: isa.Inst{Op: isa.NOP}},
		{Seq: 2, PC: 1, Inst: isa.Inst{Op: isa.ADDI, Rd: 2, Rs1: 1}},
		{Seq: 3, PC: 9, Inst: isa.Inst{Op: isa.NOP}},
		{Seq: 4, PC: 2, Inst: isa.Inst{Op: isa.SLLI, Rd: 3, Rs1: 2}},
		{Seq: 5, PC: 3, Inst: isa.Inst{Op: isa.LD, Rd: 4, Rs1: 3}, EffAddr: 0x100},
	}
	tr, miss := feed(64, execs)
	sl := (&Slicer{MaxLen: 32}).Backward(tr, miss)
	if len(sl) != 4 {
		t.Fatalf("slice length = %d, want 4 (noise excluded)", len(sl))
	}
	wantPCs := []int{3, 2, 1, 0}
	wantDists := []int64{0, 1, 3, 5}
	for i := range sl {
		if sl[i].PC != wantPCs[i] {
			t.Errorf("slice[%d].PC = %d, want %d", i, sl[i].PC, wantPCs[i])
		}
		if sl[i].Dist != wantDists[i] {
			t.Errorf("slice[%d].Dist = %d, want %d", i, sl[i].Dist, wantDists[i])
		}
	}
	// Dependence positions: each inst depends on the next slice position.
	for i := 0; i < 3; i++ {
		if sl[i].DepPos[0] != i+1 {
			t.Errorf("slice[%d].DepPos[0] = %d, want %d", i, sl[i].DepPos[0], i+1)
		}
	}
	if sl[3].DepPos[0] != NoDep {
		t.Errorf("root-most inst should be live-in, got %d", sl[3].DepPos[0])
	}
}

func TestBackwardTwoOperands(t *testing.T) {
	execs := []cpu.Exec{
		{Seq: 0, PC: 0, Inst: isa.Inst{Op: isa.LI, Rd: 1}},
		{Seq: 1, PC: 1, Inst: isa.Inst{Op: isa.LI, Rd: 2}},
		{Seq: 2, PC: 2, Inst: isa.Inst{Op: isa.ADD, Rd: 3, Rs1: 1, Rs2: 2}},
		{Seq: 3, PC: 3, Inst: isa.Inst{Op: isa.LD, Rd: 4, Rs1: 3}, EffAddr: 0x40},
	}
	tr, miss := feed(64, execs)
	sl := (&Slicer{MaxLen: 32}).Backward(tr, miss)
	if len(sl) != 4 {
		t.Fatalf("slice length = %d, want 4", len(sl))
	}
	// ADD at position 1 must reference both producers at positions 2 and 3.
	if sl[1].Op.Op != isa.ADD {
		t.Fatalf("slice[1] = %v, want the ADD", sl[1].Op)
	}
	got := map[int]bool{sl[1].DepPos[0]: true, sl[1].DepPos[1]: true}
	if !got[2] || !got[3] {
		t.Errorf("ADD DepPos = %v, want {2,3}", sl[1].DepPos)
	}
}

func TestBackwardMemoryDependence(t *testing.T) {
	// st r2 -> [r1] ; ld r3 <- [r1] ; ld r4 <- [r3]: the final load's slice
	// must include the first load AND, through the memory dependence, the
	// store and its data producer.
	execs := []cpu.Exec{
		{Seq: 0, PC: 0, Inst: isa.Inst{Op: isa.LI, Rd: 2}},                        // data
		{Seq: 1, PC: 1, Inst: isa.Inst{Op: isa.ST, Rs1: 1, Rs2: 2}, EffAddr: 0x8}, // store
		{Seq: 2, PC: 2, Inst: isa.Inst{Op: isa.LD, Rd: 3, Rs1: 1}, EffAddr: 0x8},  // load (fwd)
		{Seq: 3, PC: 3, Inst: isa.Inst{Op: isa.LD, Rd: 4, Rs1: 3}, EffAddr: 0x80}, // miss
	}
	tr, miss := feed(64, execs)
	sl := (&Slicer{MaxLen: 32}).Backward(tr, miss)
	if len(sl) != 4 {
		t.Fatalf("slice length = %d, want 4 (load, load, store, li)", len(sl))
	}
	if sl[1].Op.Op != isa.LD || sl[1].MemDepPos != 2 {
		t.Errorf("inner load MemDepPos = %d, want 2 (the store)", sl[1].MemDepPos)
	}
	if sl[2].Op.Op != isa.ST {
		t.Errorf("slice[2] = %v, want the store", sl[2].Op)
	}
}

func TestBackwardMaxLen(t *testing.T) {
	// A long dependence chain must be truncated to MaxLen nearest the miss.
	var execs []cpu.Exec
	execs = append(execs, cpu.Exec{Seq: 0, PC: 0, Inst: isa.Inst{Op: isa.LI, Rd: 1}})
	for i := int64(1); i <= 20; i++ {
		execs = append(execs, cpu.Exec{Seq: i, PC: int(i), Inst: isa.Inst{Op: isa.ADDI, Rd: 1, Rs1: 1, Imm: 1}})
	}
	execs = append(execs, cpu.Exec{Seq: 21, PC: 21, Inst: isa.Inst{Op: isa.LD, Rd: 2, Rs1: 1}, EffAddr: 0x40})
	tr, miss := feed(64, execs)
	sl := (&Slicer{MaxLen: 5}).Backward(tr, miss)
	if len(sl) != 5 {
		t.Fatalf("slice length = %d, want 5", len(sl))
	}
	if sl[0].PC != 21 || sl[4].PC != 17 {
		t.Errorf("truncation kept wrong end: first PC %d last PC %d", sl[0].PC, sl[4].PC)
	}
}

func TestBackwardScopeBound(t *testing.T) {
	// Producers outside the window become live-ins.
	execs := []cpu.Exec{
		{Seq: 0, PC: 0, Inst: isa.Inst{Op: isa.LI, Rd: 1}},
		{Seq: 1, PC: 1, Inst: isa.Inst{Op: isa.NOP}},
		{Seq: 2, PC: 2, Inst: isa.Inst{Op: isa.NOP}},
		{Seq: 3, PC: 3, Inst: isa.Inst{Op: isa.NOP}},
		{Seq: 4, PC: 4, Inst: isa.Inst{Op: isa.LD, Rd: 2, Rs1: 1}, EffAddr: 0x40},
	}
	tr, miss := feed(3, execs) // LI at seq 0 fell out of the 3-entry window
	sl := (&Slicer{MaxLen: 32}).Backward(tr, miss)
	if len(sl) != 1 {
		t.Fatalf("slice length = %d, want 1 (producer out of scope)", len(sl))
	}
	if sl[0].DepPos[0] != NoDep {
		t.Error("out-of-scope producer must be a live-in")
	}
}

func TestBackwardInductionUnrolling(t *testing.T) {
	// A loop-carried induction (addi r5,r5,16 each iteration) must appear
	// multiple times in the slice — the paper's induction unrolling idiom.
	var execs []cpu.Exec
	seq := int64(0)
	for iter := 0; iter < 3; iter++ {
		execs = append(execs,
			cpu.Exec{Seq: seq, PC: 11, Inst: isa.Inst{Op: isa.ADDI, Rd: 5, Rs1: 5, Imm: 16}},
			cpu.Exec{Seq: seq + 1, PC: 12, Inst: isa.Inst{Op: isa.NOP}},
		)
		seq += 2
	}
	execs = append(execs, cpu.Exec{Seq: seq, PC: 9, Inst: isa.Inst{Op: isa.LD, Rd: 8, Rs1: 5}, EffAddr: 0x40})
	tr, miss := feed(64, execs)
	sl := (&Slicer{MaxLen: 32}).Backward(tr, miss)
	if len(sl) != 4 {
		t.Fatalf("slice length = %d, want 4 (load + 3 inductions)", len(sl))
	}
	for i := 1; i <= 3; i++ {
		if sl[i].PC != 11 {
			t.Errorf("slice[%d].PC = %d, want 11 (induction instance)", i, sl[i].PC)
		}
	}
}
