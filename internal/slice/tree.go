package slice

import (
	"fmt"
	"sort"
	"strings"

	"preexec/internal/isa"
)

// Node is one slice-tree node. Each node represents the static p-thread
// whose trigger is this node's instruction and whose body is the path from
// this node (exclusive) back to the root (inclusive) — i.e. the slice
// instructions dynamically after the trigger (paper §3.2; matches the
// worked example's candidate accounting).
type Node struct {
	PC int      `json:"pc"`
	Op isa.Inst `json:"op"`
	// Depth is the node's distance from the root (root = 0). A node at
	// depth k is a trigger whose p-thread body has k instructions.
	Depth int `json:"depth"`
	// DCptcm counts the dynamic miss computations that pass through this
	// node: the number of misses a p-thread triggered here would pre-execute.
	DCptcm int64 `json:"dc_ptcm"`
	// SumDist accumulates the main-thread trigger distance (root.Seq -
	// trigger.Seq) over instances; AvgDist = SumDist/DCptcm is the paper's
	// DISTpl-derived average trigger distance.
	SumDist int64 `json:"sum_dist"`
	// DepPos/MemDepPos describe the instruction's producers as positions on
	// the root path (first-seen instance wins; see Backward).
	DepPos    [2]int `json:"dep_pos"`
	MemDepPos int    `json:"mem_dep_pos"`

	Children []*Node `json:"children,omitempty"`
}

// AvgDist returns the mean main-thread distance from trigger to miss.
func (n *Node) AvgDist() float64 {
	if n.DCptcm == 0 {
		return 0
	}
	return float64(n.SumDist) / float64(n.DCptcm)
}

func (n *Node) child(pc int) *Node {
	for _, c := range n.Children {
		if c.PC == pc {
			return c
		}
	}
	return nil
}

// Tree is the slice tree of one static problem load.
type Tree struct {
	RootPC int   `json:"root_pc"`
	Misses int64 `json:"misses"` // dynamic miss slices inserted
	Root   *Node `json:"root"`
}

// NewTree creates a tree for the load at rootPC.
func NewTree(rootPC int, op isa.Inst) *Tree {
	return &Tree{
		RootPC: rootPC,
		Root: &Node{
			PC: rootPC, Op: op, Depth: 0,
			DepPos: [2]int{NoDep, NoDep}, MemDepPos: NoDep,
		},
	}
}

// Insert adds one dynamic backward slice (as produced by Slicer.Backward,
// position 0 = the root load) to the tree, updating counts along the path.
func (t *Tree) Insert(sl []Inst) {
	if len(sl) == 0 || sl[0].PC != t.RootPC {
		return
	}
	t.Misses++
	node := t.Root
	node.adoptDeps(sl[0])
	node.DCptcm++
	for i := 1; i < len(sl); i++ {
		si := sl[i]
		c := node.child(si.PC)
		if c == nil {
			c = &Node{
				PC: si.PC, Op: si.Op, Depth: i,
				DepPos: si.DepPos, MemDepPos: si.MemDepPos,
			}
			node.Children = append(node.Children, c)
		}
		c.adoptDeps(si)
		c.DCptcm++
		c.SumDist += si.Dist
		node = c
	}
}

// adoptDeps refines a node's dependence structure: slices whose producers
// fell outside the slicing scope (or before observation started) report
// NoDep; a later instance that does see the producer fills the hole in.
func (n *Node) adoptDeps(si Inst) {
	for k := 0; k < 2; k++ {
		if n.DepPos[k] == NoDep && si.DepPos[k] != NoDep {
			n.DepPos[k] = si.DepPos[k]
		}
	}
	if n.MemDepPos == NoDep && si.MemDepPos != NoDep {
		n.MemDepPos = si.MemDepPos
	}
}

// Walk visits every node (preorder, root first) with the path from the root
// to the node inclusive. The path slice is reused between calls; callers
// must copy it if they retain it.
func (t *Tree) Walk(fn func(path []*Node)) {
	var rec func(n *Node, path []*Node)
	rec = func(n *Node, path []*Node) {
		path = append(path, n)
		fn(path)
		for _, c := range n.Children {
			rec(c, path)
		}
	}
	rec(t.Root, nil)
}

// Nodes returns the total node count.
func (t *Tree) Nodes() int {
	n := 0
	t.Walk(func([]*Node) { n++ })
	return n
}

// CheckInvariant verifies the paper's structural invariant: a parent's
// DCptcm equals the sum of its children's DCptcm plus the number of slices
// that terminated at the parent (which is non-negative). It returns an error
// naming the first violating node.
func (t *Tree) CheckInvariant() error {
	var err error
	t.Walk(func(path []*Node) {
		if err != nil {
			return
		}
		n := path[len(path)-1]
		var sum int64
		for _, c := range n.Children {
			sum += c.DCptcm
		}
		if sum > n.DCptcm {
			err = fmt.Errorf("node pc=%d depth=%d: children DCptcm %d exceeds parent %d",
				n.PC, n.Depth, sum, n.DCptcm)
		}
	})
	return err
}

// String renders the tree as an indented listing (for debugging and the
// pharmacy example).
func (t *Tree) String() string {
	var b strings.Builder
	t.Walk(func(path []*Node) {
		n := path[len(path)-1]
		fmt.Fprintf(&b, "%s#%02d %-22s DCptcm=%-5d avgDist=%.1f\n",
			strings.Repeat("  ", n.Depth), n.PC, n.Op.String(), n.DCptcm, n.AvgDist())
	})
	return b.String()
}

// Forest is the full profiling result for one program sample: one slice tree
// per static problem load plus the sample-wide statistics the selection
// framework needs.
type Forest struct {
	Trees map[int]*Tree `json:"trees"`
	// DCtrig is the dynamic execution count of every static instruction in
	// the sample (trigger launch counts).
	DCtrig map[int]int64 `json:"dc_trig"`
	// Insts is the number of dynamic instructions in the sample.
	Insts int64 `json:"insts"`
	// Loads and L2Misses summarize the sample's memory behaviour.
	Loads    int64 `json:"loads"`
	L2Misses int64 `json:"l2_misses"`
}

// NewForest returns an empty forest.
func NewForest() *Forest {
	return &Forest{Trees: make(map[int]*Tree), DCtrig: make(map[int]int64)}
}

// NewForestSized returns an empty forest whose maps are pre-sized for the
// given tree and trigger counts — regioned profiling sizes each region's
// forest from the previous region's, since consecutive regions of a program
// touch similar static instruction sets.
func NewForestSized(trees, trigs int) *Forest {
	return &Forest{Trees: make(map[int]*Tree, trees), DCtrig: make(map[int]int64, trigs)}
}

// TreeFor returns (creating if needed) the tree rooted at the given load.
func (f *Forest) TreeFor(pc int, op isa.Inst) *Tree {
	t := f.Trees[pc]
	if t == nil {
		t = NewTree(pc, op)
		f.Trees[pc] = t
	}
	return t
}

// SortedRoots returns the root PCs in ascending order (deterministic
// iteration for selection and reporting).
func (f *Forest) SortedRoots() []int {
	roots := make([]int, 0, len(f.Trees))
	for pc := range f.Trees {
		roots = append(roots, pc)
	}
	sort.Ints(roots)
	return roots
}
