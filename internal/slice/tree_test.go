package slice

import (
	"path/filepath"
	"strings"
	"testing"

	"preexec/internal/isa"
)

// mkSlice builds a synthetic slice with the given PCs (position 0 = root)
// and unit-spaced distances.
func mkSlice(pcs ...int) []Inst {
	sl := make([]Inst, len(pcs))
	for i, pc := range pcs {
		sl[i] = Inst{
			PC: pc, Op: isa.Inst{Op: isa.ADDI}, Dist: int64(i),
			DepPos: [2]int{NoDep, NoDep}, MemDepPos: NoDep,
		}
	}
	sl[0].Op = isa.Inst{Op: isa.LD}
	return sl
}

func TestTreeInsertSharedPrefix(t *testing.T) {
	// Two computations share the suffix near the load (paper Figure 3):
	// [9 8 7 4 11] and [9 8 7 6 11] share nodes for 8 and 7.
	tr := NewTree(9, isa.Inst{Op: isa.LD})
	for i := 0; i < 3; i++ {
		tr.Insert(mkSlice(9, 8, 7, 4, 11))
	}
	tr.Insert(mkSlice(9, 8, 7, 6, 11))
	if tr.Misses != 4 {
		t.Errorf("misses = %d, want 4", tr.Misses)
	}
	if tr.Root.DCptcm != 4 {
		t.Errorf("root DCptcm = %d, want 4", tr.Root.DCptcm)
	}
	n8 := tr.Root.child(8)
	if n8 == nil || n8.DCptcm != 4 {
		t.Fatalf("node 8 missing or DCptcm wrong: %+v", n8)
	}
	n7 := n8.child(7)
	if n7 == nil || n7.DCptcm != 4 {
		t.Fatalf("node 7 missing or DCptcm wrong: %+v", n7)
	}
	if len(n7.Children) != 2 {
		t.Fatalf("node 7 children = %d, want 2 (divergence point)", len(n7.Children))
	}
	n4, n6 := n7.child(4), n7.child(6)
	if n4 == nil || n4.DCptcm != 3 {
		t.Errorf("node 4 DCptcm = %v, want 3", n4)
	}
	if n6 == nil || n6.DCptcm != 1 {
		t.Errorf("node 6 DCptcm = %v, want 1", n6)
	}
}

func TestTreeParentChildInvariant(t *testing.T) {
	tr := NewTree(9, isa.Inst{Op: isa.LD})
	tr.Insert(mkSlice(9, 8, 7, 4))
	tr.Insert(mkSlice(9, 8, 7, 6))
	tr.Insert(mkSlice(9, 8)) // a slice that ends early
	if err := tr.CheckInvariant(); err != nil {
		t.Errorf("invariant violated: %v", err)
	}
}

func TestTreeInvariantDetectsCorruption(t *testing.T) {
	tr := NewTree(9, isa.Inst{Op: isa.LD})
	tr.Insert(mkSlice(9, 8))
	tr.Root.child(8).DCptcm = 99 // corrupt
	if err := tr.CheckInvariant(); err == nil {
		t.Error("invariant check should detect child count exceeding parent")
	}
}

func TestTreeDepths(t *testing.T) {
	tr := NewTree(9, isa.Inst{Op: isa.LD})
	tr.Insert(mkSlice(9, 8, 7))
	tr.Walk(func(path []*Node) {
		n := path[len(path)-1]
		if n.Depth != len(path)-1 {
			t.Errorf("node pc=%d depth=%d but path length %d", n.PC, n.Depth, len(path))
		}
	})
}

func TestTreeAvgDist(t *testing.T) {
	tr := NewTree(9, isa.Inst{Op: isa.LD})
	s1 := mkSlice(9, 8)
	s1[1].Dist = 2
	s2 := mkSlice(9, 8)
	s2[1].Dist = 4
	tr.Insert(s1)
	tr.Insert(s2)
	if got := tr.Root.child(8).AvgDist(); got != 3 {
		t.Errorf("avg dist = %v, want 3", got)
	}
}

func TestTreeRejectsForeignSlice(t *testing.T) {
	tr := NewTree(9, isa.Inst{Op: isa.LD})
	tr.Insert(mkSlice(7, 6)) // wrong root
	if tr.Misses != 0 {
		t.Error("foreign slice must be rejected")
	}
	tr.Insert(nil)
	if tr.Misses != 0 {
		t.Error("empty slice must be rejected")
	}
}

func TestTreeNodesAndString(t *testing.T) {
	tr := NewTree(9, isa.Inst{Op: isa.LD})
	tr.Insert(mkSlice(9, 8, 7, 4))
	tr.Insert(mkSlice(9, 8, 7, 6))
	if got := tr.Nodes(); got != 5 {
		t.Errorf("nodes = %d, want 5", got)
	}
	s := tr.String()
	if !strings.Contains(s, "#09") || !strings.Contains(s, "#04") || !strings.Contains(s, "#06") {
		t.Errorf("tree listing missing nodes:\n%s", s)
	}
}

func TestForestTreeForAndRoots(t *testing.T) {
	f := NewForest()
	t9 := f.TreeFor(9, isa.Inst{Op: isa.LD})
	if f.TreeFor(9, isa.Inst{Op: isa.LD}) != t9 {
		t.Error("TreeFor must return the same tree for the same root")
	}
	f.TreeFor(3, isa.Inst{Op: isa.LD})
	roots := f.SortedRoots()
	if len(roots) != 2 || roots[0] != 3 || roots[1] != 9 {
		t.Errorf("roots = %v, want [3 9]", roots)
	}
}

func TestForestSaveLoad(t *testing.T) {
	f := NewForest()
	tr := f.TreeFor(9, isa.Inst{Op: isa.LD, Rd: 8, Rs1: 7})
	tr.Insert(mkSlice(9, 8, 7, 4, 11))
	tr.Insert(mkSlice(9, 8, 7, 6, 11))
	f.DCtrig[9] = 80
	f.DCtrig[11] = 100
	f.Insts = 1300
	f.Loads = 400
	f.L2Misses = 2

	path := filepath.Join(t.TempDir(), "forest.json")
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	g, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.Insts != 1300 || g.Loads != 400 || g.L2Misses != 2 {
		t.Errorf("summary fields lost: %+v", g)
	}
	if g.DCtrig[11] != 100 {
		t.Errorf("DCtrig lost: %v", g.DCtrig)
	}
	gt := g.Trees[9]
	if gt == nil {
		t.Fatal("tree 9 lost")
	}
	if gt.Nodes() != tr.Nodes() {
		t.Errorf("node count %d != %d", gt.Nodes(), tr.Nodes())
	}
	if err := gt.CheckInvariant(); err != nil {
		t.Errorf("loaded tree violates invariant: %v", err)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading a missing file should fail")
	}
}
