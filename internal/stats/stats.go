// Package stats provides small numeric and table-formatting helpers shared
// by the experiment drivers and command-line tools.
package stats

import (
	"fmt"
	"strings"
)

// Pct returns 100*num/den, or 0 when den is 0.
func Pct(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

// Speedup returns the percent speedup of new over base ((new/base - 1)*100).
func Speedup(base, new float64) float64 {
	if base == 0 {
		return 0
	}
	return (new/base - 1) * 100
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMeanSpeedup aggregates percent speedups the way architecture papers do:
// the geometric mean of the ratios, reported back as a percentage.
func GeoMeanSpeedup(pcts []float64) float64 {
	if len(pcts) == 0 {
		return 0
	}
	prod := 1.0
	for _, p := range pcts {
		prod *= 1 + p/100
	}
	// n-th root via exponentiation by logarithm would pull in math; a
	// simple Newton iteration suffices for the small n we use.
	return (nthRoot(prod, len(pcts)) - 1) * 100
}

func nthRoot(x float64, n int) float64 {
	if x <= 0 {
		return 0
	}
	g := x
	for i := 0; i < 64; i++ {
		gPow := 1.0
		for k := 0; k < n-1; k++ {
			gPow *= g
		}
		next := ((float64(n)-1)*g + x/gPow) / float64(n)
		if diff := next - g; diff < 1e-12 && diff > -1e-12 {
			return next
		}
		g = next
	}
	return g
}

// Table accumulates aligned rows for terminal output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// Row appends a row; values are formatted with %v, floats with 2 decimals.
func (t *Table) Row(cells ...interface{}) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
