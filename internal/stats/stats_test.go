package stats

import (
	"math"
	"strings"
	"testing"
)

func TestPct(t *testing.T) {
	if Pct(1, 4) != 25 {
		t.Errorf("Pct(1,4) = %v", Pct(1, 4))
	}
	if Pct(3, 0) != 0 {
		t.Error("Pct with zero denominator should be 0")
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(2.0, 2.5); math.Abs(got-25) > 1e-9 {
		t.Errorf("Speedup = %v, want 25", got)
	}
	if got := Speedup(2.0, 1.0); math.Abs(got+50) > 1e-9 {
		t.Errorf("Speedup = %v, want -50", got)
	}
	if Speedup(0, 1) != 0 {
		t.Error("zero base should yield 0")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
}

func TestGeoMeanSpeedup(t *testing.T) {
	// Symmetric +100% and -50% cancel geometrically.
	got := GeoMeanSpeedup([]float64{100, -50})
	if math.Abs(got) > 1e-6 {
		t.Errorf("GeoMeanSpeedup = %v, want 0", got)
	}
	one := GeoMeanSpeedup([]float64{10})
	if math.Abs(one-10) > 1e-6 {
		t.Errorf("GeoMeanSpeedup single = %v, want 10", one)
	}
	if GeoMeanSpeedup(nil) != 0 {
		t.Error("empty should be 0")
	}
}

func TestNthRoot(t *testing.T) {
	if got := nthRoot(8, 3); math.Abs(got-2) > 1e-9 {
		t.Errorf("nthRoot(8,3) = %v, want 2", got)
	}
	if got := nthRoot(1, 5); math.Abs(got-1) > 1e-9 {
		t.Errorf("nthRoot(1,5) = %v, want 1", got)
	}
	if nthRoot(-1, 2) != 0 {
		t.Error("negative input should yield 0")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("name", "ipc")
	tb.Row("bzip2", 3.134)
	tb.Row("mcf", 0.29)
	s := tb.String()
	if !strings.Contains(s, "bzip2") || !strings.Contains(s, "3.13") {
		t.Errorf("table missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Errorf("table should have 4 lines, got %d:\n%s", len(lines), s)
	}
	// Alignment: all lines equal length or less (last column unpadded rows
	// may differ); at least the header/separator match.
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("header and separator misaligned:\n%s", s)
	}
}
