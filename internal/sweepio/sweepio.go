// Package sweepio renders sweep results for the command-line tools: the
// one implementation of the JSON/CSV/table outputs shared by cmd/tsweep
// and cmd/tgen, so the per-cell report columns cannot drift between them.
package sweepio

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"encoding/csv"

	"preexec"
	"preexec/internal/stats"
)

// Options selects the output format and the grid columns.
type Options struct {
	// JSON emits the whole SweepResult; CSV per-cell rows; neither, an
	// aligned table. JSON and CSV are mutually exclusive (callers enforce).
	JSON bool
	CSV  bool
	// BenchHeader titles the benchmark column ("bench" when empty).
	BenchHeader string
	// Point includes the config-point column (multi-point grids; a
	// single-point sweep omits it).
	Point bool
}

// metricHeaders is the shared per-cell column set, CSV then table style.
var (
	csvMetrics = []string{"base_ipc", "pre_ipc", "speedup_pct",
		"coverage_pct", "full_coverage_pct", "overhead_pct", "avg_pt_len", "pthreads"}
	tableMetrics = []string{"base", "pre", "speedup%", "cover%", "full%", "ovhd%", "ptlen", "pthreads"}
)

// Emit renders res to out. Cells that failed are skipped in CSV and table
// output (the JSON form carries their error strings).
func Emit(out io.Writer, res *preexec.SweepResult, opts Options) error {
	bench := opts.BenchHeader
	if bench == "" {
		bench = "bench"
	}
	head := []string{bench}
	if opts.Point {
		head = append(head, "point")
	}
	switch {
	case opts.JSON:
		return json.NewEncoder(out).Encode(res)
	case opts.CSV:
		w := csv.NewWriter(out)
		if err := w.Write(append(head, csvMetrics...)); err != nil {
			return err
		}
		for _, cell := range res.Cells {
			if cell.Err != nil {
				continue
			}
			rep := cell.Report
			row := []string{cell.Bench}
			if opts.Point {
				row = append(row, cell.Point)
			}
			row = append(row,
				strconv.FormatFloat(rep.Base.IPC, 'f', 4, 64),
				strconv.FormatFloat(rep.Pre.IPC, 'f', 4, 64),
				strconv.FormatFloat(rep.SpeedupPct(), 'f', 2, 64),
				strconv.FormatFloat(rep.CoveragePct(), 'f', 2, 64),
				strconv.FormatFloat(rep.FullCoveragePct(), 'f', 2, 64),
				strconv.FormatFloat(rep.Pre.OverheadFrac()*100, 'f', 2, 64),
				strconv.FormatFloat(rep.Pre.AvgPtLen, 'f', 2, 64),
				strconv.Itoa(len(rep.PThreads)),
			)
			if err := w.Write(row); err != nil {
				return err
			}
		}
		w.Flush()
		return w.Error()
	default:
		t := stats.NewTable(append(head, tableMetrics...)...)
		for _, cell := range res.Cells {
			if cell.Err != nil {
				continue
			}
			rep := cell.Report
			row := []any{cell.Bench}
			if opts.Point {
				row = append(row, cell.Point)
			}
			row = append(row, rep.Base.IPC, rep.Pre.IPC, rep.SpeedupPct(),
				rep.CoveragePct(), rep.FullCoveragePct(), rep.Pre.OverheadFrac()*100,
				rep.Pre.AvgPtLen, len(rep.PThreads))
			t.Row(row...)
		}
		_, err := fmt.Fprint(out, t.String())
		return err
	}
}
