package timing

import (
	"testing"

	"preexec/internal/workload"
)

// BenchmarkSimulatorThroughput measures the cycle-level simulator's speed
// on a memory-bound workload (reported as ns per simulated run of 50k
// instructions).
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, err := workload.ByName("vpr.r")
	if err != nil {
		b.Fatal(err)
	}
	p := w.Build(1)
	cfg := DefaultConfig()
	cfg.MaxInsts = 50_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(p, nil, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorALU measures best-case (cache-resident, predictable)
// simulation speed.
func BenchmarkSimulatorALU(b *testing.B) {
	w, err := workload.ByName("crafty")
	if err != nil {
		b.Fatal(err)
	}
	p := w.Build(1)
	cfg := DefaultConfig()
	cfg.MaxInsts = 50_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(p, nil, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
