// Package timing implements the paper's detailed performance model (§4.1):
// a parametrizable dynamically scheduled SMT pipeline with register renaming,
// reservation stations, a store queue with forwarding, a hybrid branch
// predictor, an event-driven two-level data-memory hierarchy with bandwidth
// contention and MSHRs, and the run-time functions of pre-execution — three
// p-thread contexts, launch-at-rename, bursty injection (8 instructions once
// every 8 cycles per context), and p-thread loads that prefetch into the L2
// only.
//
// The simulator is execution-driven on the correct path (a functional oracle
// feeds fetch); branch mispredictions stall fetch until the branch resolves
// plus a redirect penalty. Wrong-path instructions and wrong-path p-thread
// launches are not simulated — the one deliberate divergence from the paper,
// whose own selection model also ignores wrong-path triggers (§4.3); see
// DESIGN.md.
//
// Performance invariant: the hot path (sim.go) is heavily optimized — uop
// arena, event-driven issue scheduling, idle-cycle fast-forward — but
// optimizations must preserve bit-for-bit identical Stats. The frozen
// pre-optimization core in refsim_test.go and the equivalence tests in
// equiv_test.go enforce this; model changes must update both cores in the
// same commit. BENCH_baseline.json at the repository root records the
// micro-benchmark baseline that CI guards (cmd/benchsnap).
package timing

import (
	"preexec/internal/cache"
)

// Mode selects what the simulated p-threads are allowed to do. The
// diagnostic modes implement the paper's validation methodology (§4.3).
type Mode int

// Simulation modes.
const (
	// ModeBase runs the unassisted main thread (no p-threads).
	ModeBase Mode = iota
	// ModeNormal runs full pre-execution.
	ModeNormal
	// ModeOverheadExecute runs p-threads that execute normally but never
	// access the data cache: all cost, no prefetch effect ("execute").
	ModeOverheadExecute
	// ModeOverheadSequence injects p-thread instructions that consume
	// sequencing bandwidth and are immediately discarded: exactly the cost
	// the selection framework models ("sequence").
	ModeOverheadSequence
	// ModeLatencyOnly runs p-threads that are not charged for sequencing
	// bandwidth: all benefit, no cost.
	ModeLatencyOnly
)

func (m Mode) String() string {
	switch m {
	case ModeBase:
		return "base"
	case ModeNormal:
		return "pre-exec"
	case ModeOverheadExecute:
		return "overhead-execute"
	case ModeOverheadSequence:
		return "overhead-sequence"
	case ModeLatencyOnly:
		return "latency-only"
	default:
		return "unknown"
	}
}

// Config parametrizes the pipeline and memory system. DefaultConfig matches
// the paper's base machine.
type Config struct {
	Width         int // sequencing (fetch/rename/issue/retire) width
	FrontEndDepth int // fetch-to-rename latency in cycles
	ROB           int // maximum instructions in flight
	RS            int // reservation stations (shared by all threads)
	StoreQueue    int // store-queue entries

	// Memory hierarchy (latencies in cycles).
	L1DLat        int
	L2Lat         int
	MemLat        int
	AgenLat       int // address generation before any memory access
	ForwardLat    int // store-to-load forwarding latency
	MSHRs         int // simultaneously outstanding misses
	BacksideBusCy int // backside (L1<->L2) bus occupancy per line
	MemBusCy      int // memory bus occupancy per line

	// Pre-execution runtime.
	PtContexts int // additional thread contexts for p-threads
	PtBurst    int // instructions injected per burst (every PtBurst cycles)
	// NoRSThrottle disables the ICOUNT-style injection throttle that keeps
	// p-thread bodies from monopolizing the shared reservation stations.
	// Exists for the ablation experiment; leaving it on reproduces the
	// starvation pathology the throttle prevents.
	NoRSThrottle bool

	// Front end.
	RedirectPenalty int // extra cycles after branch resolution to refetch

	// Run control. The run retires WarmInsts instructions of warm-up (cache
	// and predictor training, no statistics) followed by MaxInsts measured
	// instructions — the paper's sampling methodology (§4.1) scaled down.
	WarmInsts int64
	MaxInsts  int64 // measured main-thread instructions
	Mode      Mode

	// Hierarchy overrides the cache geometry (nil = the paper's).
	Hierarchy *cache.Hierarchy
}

// DefaultConfig returns the paper's base configuration: 8-wide, 14-stage
// pipeline (5-cycle front end), 128 in-flight, 80 reservation stations,
// 2-cycle 16KB L1D, 6-cycle 256KB L2, 70-cycle memory, 32 MSHRs, 32B
// backside bus at core frequency and 32B memory bus at quarter frequency
// (2 and 8 cycles per 64B line respectively), 3 p-thread contexts with
// 8-instruction bursts.
func DefaultConfig() Config {
	return Config{
		Width:           8,
		FrontEndDepth:   5,
		ROB:             128,
		RS:              80,
		StoreQueue:      64,
		L1DLat:          2,
		L2Lat:           6,
		MemLat:          70,
		AgenLat:         1,
		ForwardLat:      2,
		MSHRs:           32,
		BacksideBusCy:   2,
		MemBusCy:        8,
		PtContexts:      3,
		PtBurst:         8,
		RedirectPenalty: 9, // 14-stage pipeline minus the 5-cycle front end
		MaxInsts:        1 << 62,
		Mode:            ModeBase,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Width <= 0 {
		c.Width = d.Width
	}
	if c.FrontEndDepth <= 0 {
		c.FrontEndDepth = d.FrontEndDepth
	}
	if c.ROB <= 0 {
		c.ROB = d.ROB
	}
	if c.RS <= 0 {
		c.RS = d.RS
	}
	if c.StoreQueue <= 0 {
		c.StoreQueue = d.StoreQueue
	}
	if c.L1DLat <= 0 {
		c.L1DLat = d.L1DLat
	}
	if c.L2Lat <= 0 {
		c.L2Lat = d.L2Lat
	}
	if c.MemLat <= 0 {
		c.MemLat = d.MemLat
	}
	if c.AgenLat <= 0 {
		c.AgenLat = d.AgenLat
	}
	if c.ForwardLat <= 0 {
		c.ForwardLat = d.ForwardLat
	}
	if c.MSHRs <= 0 {
		c.MSHRs = d.MSHRs
	}
	if c.BacksideBusCy <= 0 {
		c.BacksideBusCy = d.BacksideBusCy
	}
	if c.MemBusCy <= 0 {
		c.MemBusCy = d.MemBusCy
	}
	if c.PtContexts <= 0 {
		c.PtContexts = d.PtContexts
	}
	if c.PtBurst <= 0 {
		c.PtBurst = d.PtBurst
	}
	if c.RedirectPenalty <= 0 {
		c.RedirectPenalty = d.RedirectPenalty
	}
	if c.MaxInsts <= 0 {
		c.MaxInsts = d.MaxInsts
	}
	return c
}

// Stats is the outcome of a timing run.
type Stats struct {
	Cycles  int64
	Retired int64 // main-thread instructions retired
	IPC     float64

	// Pre-execution diagnostics (paper Table 2).
	Launches int64 // dynamic p-threads launched
	Drops    int64 // launch requests dropped (no free context)
	PtInsts  int64 // p-thread instructions injected
	AvgPtLen float64

	// Memory behaviour.
	Loads             int64
	L2Misses          int64 // main-thread demand misses that reached memory
	MissesCovered     int64 // would-be misses turned into (partial or full) hits by p-threads
	MissesFullCovered int64 // covered with the entire latency hidden

	// Front end.
	BrLookups   int64
	BrMispred   int64
	FetchStalls int64
}

// OverheadFrac is p-thread instructions per retired main-thread instruction
// (the "instruction overhead" tick in the paper's figures).
func (s Stats) OverheadFrac() float64 {
	if s.Retired == 0 {
		return 0
	}
	return float64(s.PtInsts) / float64(s.Retired)
}
