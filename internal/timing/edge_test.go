package timing

import (
	"testing"

	"preexec/internal/program"
	"preexec/internal/pthread"
	"preexec/internal/workload"
)

func TestWarmupExcludedFromStats(t *testing.T) {
	w, _ := workload.ByName("vpr.p")
	p := w.Build(1)
	cfg := smallCfg(50_000)
	cfg.WarmInsts = 40_000
	st, err := Run(p, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up and measurement boundaries land on retire-group edges, so the
	// measured count can wobble by up to one machine width on each side.
	if st.Retired < 50_000-16 || st.Retired > 50_000+16 {
		t.Errorf("measured retired = %d, want ~50000 (warm-up excluded)", st.Retired)
	}
	// A cold run of the same window length must see more misses than the
	// warmed one sees compulsory misses... at minimum, stats must be
	// self-consistent.
	if st.Cycles <= 0 || st.IPC <= 0 {
		t.Errorf("inconsistent measured stats: %+v", st)
	}
}

func TestTinyBackendStillCorrect(t *testing.T) {
	// A 1-wide, 4-entry machine must still retire everything, just slowly.
	b := program.NewBuilder("tiny")
	for i := 0; i < 100; i++ {
		b.Addi(1, 1, 1)
	}
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Width = 1
	cfg.ROB = 4
	cfg.RS = 4
	st, err := Run(p, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Retired != 101 {
		t.Errorf("retired = %d, want 101", st.Retired)
	}
	if st.IPC > 1 {
		t.Errorf("1-wide IPC = %.2f, cannot exceed 1", st.IPC)
	}
}

func TestSmallStoreQueueDoesNotDeadlock(t *testing.T) {
	b := program.NewBuilder("stores")
	base := b.Alloc(64)
	b.Li(1, base)
	for i := 0; i < 200; i++ {
		b.St(1, 1, int64((i%64)*8))
	}
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.StoreQueue = 2
	st, err := Run(p, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Retired != 202 {
		t.Errorf("retired = %d, want 202", st.Retired)
	}
}

func TestStoreToLoadForwardingFasterThanMemory(t *testing.T) {
	// A store immediately followed by a load of the same address must be
	// served by forwarding, far faster than an L2 miss.
	mk := func(sameAddr bool) *program.Program {
		b := program.NewBuilder("fwd")
		base := b.Alloc(1 << 16)
		b.Li(1, base).Li(2, 7).Li(3, 0).Li(4, 2000)
		b.Label("loop").
			Bge(3, 4, "exit").
			St(2, 1, 0).
			Ld(5, 1, 0). // forwarded
			Add(2, 2, 5)
		if sameAddr {
			b.Addi(1, 1, 0)
		} else {
			b.Addi(1, 1, 512) // stride past the line: loads miss
		}
		b.Addi(3, 3, 1).J("loop")
		b.Label("exit").Halt()
		return b.MustBuild()
	}
	fwd, err := Run(mk(true), nil, smallCfg(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	if fwd.L2Misses > 5 {
		t.Errorf("forwarded loads should not miss: %d misses", fwd.L2Misses)
	}
}

func TestEmptyPThreadBodyIsHarmless(t *testing.T) {
	// A degenerate p-thread with an empty body must not wedge the machine
	// or distort statistics.
	w, _ := workload.ByName("crafty")
	p := w.Build(1)
	pt := &pthread.PThread{TriggerPC: 10, Roots: []int{10}}
	cfg := smallCfg(30_000)
	cfg.Mode = ModeNormal
	st, err := Run(p, []*pthread.PThread{pt}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Retired < 30_000 || st.Retired > 30_000+16 {
		t.Errorf("retired = %d, want ~30000", st.Retired)
	}
	if st.PtInsts != 0 {
		t.Errorf("empty bodies injected %d instructions", st.PtInsts)
	}
}
