package timing

// Equivalence, determinism, and allocation tests for the optimized core.
// The load-bearing invariant of this package is that performance work never
// changes results: the optimized Sim must produce Stats bit-for-bit
// identical to the frozen reference core (refsim_test.go) on every workload
// in every mode, and identical to itself across repeated runs.

import (
	"testing"

	"preexec/internal/advantage"
	"preexec/internal/program"
	"preexec/internal/pthread"
	"preexec/internal/selector"
	"preexec/internal/slice"
	"preexec/internal/workload"
)

var allModes = []Mode{ModeBase, ModeNormal, ModeOverheadExecute, ModeOverheadSequence, ModeLatencyOnly}

// selectFor profiles the workload and selects p-threads the way the
// end-to-end pipeline does, so the equivalence runs exercise realistic
// launch/injection/coverage traffic rather than hand-built toys.
func selectFor(t *testing.T, prog *program.Program, warm, measure int64) []*pthread.PThread {
	t.Helper()
	forest, err := slice.ProfileWhole(prog, slice.ProfileOptions{WarmInsts: warm, MaxInsts: measure})
	if err != nil {
		t.Fatal(err)
	}
	res := selector.SelectForest(forest, selector.Options{Params: advantage.DefaultParams(1.0), Merge: true})
	return res.PThreads
}

// TestOptimizedCoreMatchesReference pins the optimized core to the frozen
// pre-optimization core: identical Stats on all ten workloads in all five
// modes, with selected p-threads in play.
func TestOptimizedCoreMatchesReference(t *testing.T) {
	const warm, measure = 10_000, 40_000
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			prog := w.Build(1)
			pts := selectFor(t, prog, warm, measure)
			for _, mode := range allModes {
				cfg := DefaultConfig()
				cfg.WarmInsts, cfg.MaxInsts = warm, measure
				cfg.Mode = mode
				got, err := Run(prog, pts, cfg)
				if err != nil {
					t.Fatalf("%s/%s: optimized core: %v", w.Name, mode, err)
				}
				want, err := refRun(prog, pts, cfg)
				if err != nil {
					t.Fatalf("%s/%s: reference core: %v", w.Name, mode, err)
				}
				if got != want {
					t.Errorf("%s/%s: stats diverge from reference core\n got: %+v\nwant: %+v", w.Name, mode, got, want)
				}
			}
		})
	}
}

// TestOptimizedCoreMatchesReferenceEdgeConfigs walks the configuration
// corners where the ring buffers, forwarding chains, and idle skip are under
// the most stress: tiny backends, starved store queues, single p-thread
// contexts, disabled throttles, and extreme memory latencies.
func TestOptimizedCoreMatchesReferenceEdgeConfigs(t *testing.T) {
	const warm, measure = 5_000, 25_000
	mutate := []struct {
		name string
		fn   func(*Config)
	}{
		{"tiny-backend", func(c *Config) { c.Width, c.ROB, c.RS, c.StoreQueue = 1, 4, 4, 2 }},
		{"narrow-wide-rob", func(c *Config) { c.Width, c.ROB = 2, 256 }},
		{"small-storeq", func(c *Config) { c.StoreQueue = 4 }},
		{"one-context", func(c *Config) { c.PtContexts = 1 }},
		{"many-contexts", func(c *Config) { c.PtContexts = 8 }},
		{"no-throttle", func(c *Config) { c.NoRSThrottle = true }},
		{"slow-memory", func(c *Config) { c.MemLat = 280 }},
		{"fast-memory", func(c *Config) { c.MemLat = 8 }},
		{"few-mshrs", func(c *Config) { c.MSHRs = 2 }},
		{"wide-burst", func(c *Config) { c.PtBurst = 16 }},
	}
	for _, wname := range []string{"mcf", "vpr.p", "vortex"} {
		w, err := workload.ByName(wname)
		if err != nil {
			t.Fatal(err)
		}
		prog := w.Build(1)
		pts := selectFor(t, prog, warm, measure)
		for _, m := range mutate {
			for _, mode := range []Mode{ModeBase, ModeNormal} {
				cfg := DefaultConfig()
				cfg.WarmInsts, cfg.MaxInsts = warm, measure
				cfg.Mode = mode
				m.fn(&cfg)
				got, err := Run(prog, pts, cfg)
				if err != nil {
					t.Fatalf("%s/%s/%s: optimized core: %v", wname, m.name, mode, err)
				}
				want, err := refRun(prog, pts, cfg)
				if err != nil {
					t.Fatalf("%s/%s/%s: reference core: %v", wname, m.name, mode, err)
				}
				if got != want {
					t.Errorf("%s/%s/%s: stats diverge from reference core\n got: %+v\nwant: %+v", wname, m.name, mode, got, want)
				}
			}
		}
	}
}

// TestRunDeterministic asserts two independent runs of the same simulation
// are bit-for-bit identical (the arena and maps must not leak iteration
// order or address-dependent behaviour into results).
func TestRunDeterministic(t *testing.T) {
	for _, wname := range []string{"mcf", "vpr.p"} {
		w, err := workload.ByName(wname)
		if err != nil {
			t.Fatal(err)
		}
		prog := w.Build(1)
		pts := selectFor(t, prog, 10_000, 40_000)
		cfg := DefaultConfig()
		cfg.WarmInsts, cfg.MaxInsts = 10_000, 40_000
		cfg.Mode = ModeNormal
		a, err := Run(prog, pts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(prog, pts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%s: repeated runs diverge\n first: %+v\nsecond: %+v", wname, a, b)
		}
	}
}

// TestSteadyStateAllocs pins the core's zero-steady-state-allocation
// property: growing the measured window by 100k instructions must not grow
// the per-run allocation count (everything per-instruction comes from the
// arena and the reused scratch; remaining allocations are setup — oracle
// memory clone, caches, predictor — and are window-independent).
func TestSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is slow under -short")
	}
	w, err := workload.ByName("vpr.p")
	if err != nil {
		t.Fatal(err)
	}
	prog := w.Build(1)
	pts := selectFor(t, prog, 0, 30_000)
	allocs := func(maxInsts int64) float64 {
		cfg := DefaultConfig()
		cfg.MaxInsts = maxInsts
		cfg.Mode = ModeNormal
		return testing.AllocsPerRun(3, func() {
			if _, err := Run(prog, pts, cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := allocs(20_000)
	large := allocs(120_000)
	// 100k extra instructions under the old core cost >100k allocations;
	// the arena core must stay flat. A little slack covers lazily mapped
	// memory pages and map growth in the larger footprint.
	if grown := large - small; grown > 500 {
		t.Errorf("allocations scale with instruction count: %0.f @20k insts vs %0.f @120k insts (+%0.f)", small, large, grown)
	}
}

// TestLivelockGuardUnboundedRun is the regression test for the guard
// overflow: with the unbounded MaxInsts default, guard arithmetic used to
// wrap and falsely report "no forward progress" after ~1M cycles. A long
// run-to-HALT program must complete.
func TestLivelockGuardUnboundedRun(t *testing.T) {
	const iters = 3_000_000
	b := program.NewBuilder("long-loop")
	b.Li(1, 0).Li(2, iters)
	b.Label("loop").
		Addi(1, 1, 1).
		Blt(1, 2, "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig() // MaxInsts stays the unbounded 1<<62 default
	st, err := Run(p, nil, cfg)
	if err != nil {
		t.Fatalf("unbounded run falsely hit the livelock guard: %v", err)
	}
	if want := int64(2*iters + 3); st.Retired != want {
		t.Errorf("retired = %d, want %d", st.Retired, want)
	}
	if st.Cycles <= 1_000_000 {
		t.Errorf("test did not cross the old overflowed guard (~1M cycles): %d cycles", st.Cycles)
	}
}

// TestLivelockGuardClamp pins the guard arithmetic itself.
func TestLivelockGuardClamp(t *testing.T) {
	if g := livelockGuard(1 << 62); g != unboundedGuard {
		t.Errorf("livelockGuard(1<<62) = %d, want clamp to %d", g, unboundedGuard)
	}
	if g := livelockGuard(1<<62 + 30_000); g != unboundedGuard {
		t.Errorf("livelockGuard(unbounded+warm) = %d, want clamp to %d", g, unboundedGuard)
	}
	if g := livelockGuard(0); g <= 0 {
		t.Errorf("livelockGuard(0) = %d, want positive", g)
	}
	if g := livelockGuard(100_000); g != 100_000*64+1_000_000 {
		t.Errorf("livelockGuard(100k) = %d, want %d", g, 100_000*64+1_000_000)
	}
}
