package timing

import "preexec/internal/cache"

// memsys is the event-driven data-memory system: two cache levels with
// in-flight fill tracking (lines carry ReadyAt timestamps), a bounded MSHR
// pool, and two bandwidth-limited buses (backside L1<->L2 at core frequency,
// memory bus at quarter frequency), both modeled as busy-until cursors so
// concurrent misses queue behind each other — the contention the paper
// identifies as the source of full-coverage over-estimation (§4.3).
//
// Latencies are flattened to int64 once at construction so the per-access
// hot path does no repeated Config field loads or int conversions.
type memsys struct {
	l1d   *cache.Cache
	l2    *cache.Cache
	stats *Stats

	l1dLat        int64
	l2Lat         int64
	memLat        int64
	backsideBusCy int64
	memBusCy      int64
	mshrs         int

	backsideFree int64
	membusFree   int64
	mshr         []int64 // release times of outstanding misses
}

func newMemsys(cfg Config, stats *Stats) *memsys {
	h := cfg.Hierarchy
	if h == nil {
		h = cache.DefaultHierarchy()
	}
	return &memsys{
		l1d:           h.L1D,
		l2:            h.L2,
		stats:         stats,
		l1dLat:        int64(cfg.L1DLat),
		l2Lat:         int64(cfg.L2Lat),
		memLat:        int64(cfg.MemLat),
		backsideBusCy: int64(cfg.BacksideBusCy),
		memBusCy:      int64(cfg.MemBusCy),
		mshrs:         cfg.MSHRs,
		mshr:          make([]int64, 0, cfg.MSHRs),
	}
}

// busWait reserves the bus for occ cycles starting no earlier than now and
// returns the queueing delay suffered.
func busWait(cursor *int64, now int64, occ int64) int64 {
	start := now
	if *cursor > start {
		start = *cursor
	}
	*cursor = start + occ
	return start - now
}

// mshrWait returns the extra delay until an MSHR is free at time now and
// registers a new outstanding miss released at the returned ready time plus
// delay. Callers pass the fill completion time.
func (m *memsys) mshrWait(now int64) int64 {
	// Garbage-collect released entries.
	live := m.mshr[:0]
	var minRel int64 = 1 << 62
	for _, r := range m.mshr {
		if r > now {
			live = append(live, r)
			if r < minRel {
				minRel = r
			}
		}
	}
	m.mshr = live
	if len(m.mshr) < m.mshrs {
		return 0
	}
	return minRel - now
}

// l2Access performs the L2 side of a request at time t. pt marks p-thread
// requests (which set coverage metadata); main demand requests harvest it.
// It returns the cycle the requested line is ready at the L2.
func (m *memsys) l2Access(addr int64, t int64, pt bool) int64 {
	hit, _, line := m.l2.Access(addr, false)
	if hit {
		switch {
		case line.ReadyAt <= t:
			// Resident. A main-thread first touch of a p-thread-fetched
			// line is a fully covered miss.
			if !pt && line.BroughtByPt {
				m.stats.MissesCovered++
				m.stats.MissesFullCovered++
				line.BroughtByPt = false
			}
			return t + m.l2Lat
		default:
			// In flight: wait for the fill.
			if !pt && line.BroughtByPt {
				m.stats.MissesCovered++
				line.BroughtByPt = false
			}
			ready := line.ReadyAt
			if ready < t+m.l2Lat {
				ready = t + m.l2Lat
			}
			return ready
		}
	}
	// L2 miss: allocate MSHR, cross the memory bus, fetch from memory.
	delay := m.mshrWait(t)
	delay += busWait(&m.membusFree, t+delay, m.memBusCy)
	ready := t + delay + m.l2Lat + m.memLat
	m.mshr = append(m.mshr, ready)
	line.ReadyAt = ready
	line.BroughtByPt = pt
	if pt {
		line.PtReqAt = t
	} else {
		m.stats.L2Misses++
	}
	return ready
}

// mainLoad services a main-thread demand load whose address is ready at
// time t, returning its completion cycle.
func (m *memsys) mainLoad(addr int64, t int64) int64 {
	hit, _, l1 := m.l1d.Access(addr, false)
	if hit && l1.ReadyAt <= t {
		return t + m.l1dLat
	}
	if hit {
		// L1 fill in flight (e.g. an earlier miss to the same line).
		return l1.ReadyAt
	}
	t1 := t + m.l1dLat // miss determined after the L1 probe
	t1 += busWait(&m.backsideFree, t1, m.backsideBusCy)
	ready := m.l2Access(addr, t1, false)
	l1.ReadyAt = ready
	return ready
}

// ptLoad services a p-thread load at time t. P-thread loads prefetch into
// the L2 only (the paper disables their L1 fill path, §4.1).
func (m *memsys) ptLoad(addr int64, t int64) int64 {
	return m.l2Access(addr, t, true)
}

// mainStore retires a store at time t: it updates cache state and charges
// bus occupancy for write misses, but never stalls the pipeline (the store
// queue absorbs the latency).
func (m *memsys) mainStore(addr int64, t int64) {
	hit, victimDirty, l1 := m.l1d.Access(addr, true)
	if hit {
		return
	}
	busWait(&m.backsideFree, t, m.backsideBusCy)
	if victimDirty {
		busWait(&m.backsideFree, t, m.backsideBusCy)
	}
	l2hit, _, l2 := m.l2.Access(addr, true)
	if !l2hit {
		// Write allocate; occupies the memory bus but the store queue hides
		// the latency from the pipeline.
		busWait(&m.membusFree, t, m.memBusCy)
		l2.ReadyAt = t + m.l2Lat + m.memLat
	}
	l1.ReadyAt = t + m.l1dLat
}
