package timing

// This file is a frozen copy of the pre-optimization simulator core (the
// cycle-by-cycle, heap-per-uop implementation that shipped before the arena /
// ring-buffer / cycle-skip rewrite of sim.go). It exists only as a test
// oracle: TestOptimizedCoreMatchesReference asserts that the optimized core
// produces bit-for-bit identical Stats on every workload in every mode.
//
// Nothing here is reachable from non-test code. When the simulator's
// *modeled* behaviour changes intentionally, update this copy in the same
// commit and say so — the invariant the equivalence tests defend is
// "optimizations must not change results", not "the model may never evolve".

import (
	"context"
	"fmt"

	"preexec/internal/branch"
	"preexec/internal/cache"
	"preexec/internal/cpu"
	"preexec/internal/isa"
	"preexec/internal/program"
	"preexec/internal/pthread"
)

// refUop is one in-flight instruction (main-thread or p-thread).
type refUop struct {
	seq     int64 // main-thread dynamic index; -1 for p-thread uops
	pc      int
	inst    isa.Inst
	effAddr int64

	prod     [3]*refUop // register (0,1) and memory/extra (2) producers
	readyMin int64      // earliest issue cycle from non-uop inputs (live-ins)

	availC  int64 // cycle the front end delivers it to rename
	renamed bool
	issued  bool
	compC   int64
	retired bool

	isPt    bool
	fwdHit  bool // load satisfied by store-queue / p-thread store buffer
	mispred bool
}

func (u *refUop) isLoad() bool  { return u.inst.Op == isa.LD }
func (u *refUop) isStore() bool { return u.inst.Op == isa.ST }

// refPtContext is one of the additional SMT contexts p-threads run in.
type refPtContext struct {
	pending []*refUop // body uops not yet injected
	burstAt int64     // next injection cycle
}

func (c *refPtContext) busy() bool { return len(c.pending) > 0 }

// refMemsys is the frozen copy of the event-driven data-memory system.
type refMemsys struct {
	cfg   Config
	l1d   *cache.Cache
	l2    *cache.Cache
	stats *Stats

	backsideFree int64
	membusFree   int64
	mshr         []int64 // release times of outstanding misses
}

func newRefMemsys(cfg Config, stats *Stats) *refMemsys {
	h := cfg.Hierarchy
	if h == nil {
		h = cache.DefaultHierarchy()
	}
	return &refMemsys{cfg: cfg, l1d: h.L1D, l2: h.L2, stats: stats}
}

func refBusWait(cursor *int64, now int64, occ int64) int64 {
	start := now
	if *cursor > start {
		start = *cursor
	}
	*cursor = start + occ
	return start - now
}

func (m *refMemsys) mshrWait(now int64) int64 {
	live := m.mshr[:0]
	var minRel int64 = 1 << 62
	for _, r := range m.mshr {
		if r > now {
			live = append(live, r)
			if r < minRel {
				minRel = r
			}
		}
	}
	m.mshr = live
	if len(m.mshr) < m.cfg.MSHRs {
		return 0
	}
	return minRel - now
}

func (m *refMemsys) l2Access(addr int64, t int64, pt bool) int64 {
	hit, _, line := m.l2.Access(addr, false)
	if hit {
		switch {
		case line.ReadyAt <= t:
			if !pt && line.BroughtByPt {
				m.stats.MissesCovered++
				m.stats.MissesFullCovered++
				line.BroughtByPt = false
			}
			return t + int64(m.cfg.L2Lat)
		default:
			if !pt && line.BroughtByPt {
				m.stats.MissesCovered++
				line.BroughtByPt = false
			}
			ready := line.ReadyAt
			if ready < t+int64(m.cfg.L2Lat) {
				ready = t + int64(m.cfg.L2Lat)
			}
			return ready
		}
	}
	delay := m.mshrWait(t)
	delay += refBusWait(&m.membusFree, t+delay, int64(m.cfg.MemBusCy))
	ready := t + delay + int64(m.cfg.L2Lat) + int64(m.cfg.MemLat)
	m.mshr = append(m.mshr, ready)
	line.ReadyAt = ready
	line.BroughtByPt = pt
	if pt {
		line.PtReqAt = t
	} else {
		m.stats.L2Misses++
	}
	return ready
}

func (m *refMemsys) mainLoad(addr int64, t int64) int64 {
	hit, _, l1 := m.l1d.Access(addr, false)
	if hit && l1.ReadyAt <= t {
		return t + int64(m.cfg.L1DLat)
	}
	if hit {
		return l1.ReadyAt
	}
	t1 := t + int64(m.cfg.L1DLat)
	t1 += refBusWait(&m.backsideFree, t1, int64(m.cfg.BacksideBusCy))
	ready := m.l2Access(addr, t1, false)
	l1.ReadyAt = ready
	return ready
}

func (m *refMemsys) ptLoad(addr int64, t int64) int64 {
	return m.l2Access(addr, t, true)
}

func (m *refMemsys) mainStore(addr int64, t int64) {
	hit, victimDirty, l1 := m.l1d.Access(addr, true)
	if hit {
		return
	}
	refBusWait(&m.backsideFree, t, int64(m.cfg.BacksideBusCy))
	if victimDirty {
		refBusWait(&m.backsideFree, t, int64(m.cfg.BacksideBusCy))
	}
	l2hit, _, l2 := m.l2.Access(addr, true)
	if !l2hit {
		refBusWait(&m.membusFree, t, int64(m.cfg.MemBusCy))
		l2.ReadyAt = t + int64(m.cfg.L2Lat) + int64(m.cfg.MemLat)
	}
	l1.ReadyAt = t + int64(m.cfg.L1DLat)
}

// refSim is a single timing simulation on the frozen reference core.
type refSim struct {
	cfg    Config
	prog   *program.Program
	oracle *cpu.State
	pred   *branch.Predictor
	mem    *refMemsys
	stats  Stats

	cycle int64

	fetchQ       []*refUop
	fetchBlocker *refUop
	fetchDone    bool

	regProd [isa.NumRegs]*refUop

	rob    []*refUop
	window []*refUop
	storeQ []*refUop

	triggers map[int][]*pthread.PThread
	ctxs     []*refPtContext
}

func newRefSim(prog *program.Program, pts []*pthread.PThread, cfg Config) *refSim {
	cfg = cfg.withDefaults()
	s := &refSim{
		cfg:      cfg,
		prog:     prog,
		oracle:   cpu.New(prog),
		pred:     branch.New(branch.DefaultConfig()),
		triggers: make(map[int][]*pthread.PThread),
		ctxs:     make([]*refPtContext, cfg.PtContexts),
	}
	s.mem = newRefMemsys(cfg, &s.stats)
	for i := range s.ctxs {
		s.ctxs[i] = &refPtContext{}
	}
	if cfg.Mode != ModeBase {
		for _, pt := range pts {
			s.triggers[pt.TriggerPC] = append(s.triggers[pt.TriggerPC], pt)
		}
	}
	return s
}

// refRun simulates to completion on the frozen reference core.
func refRun(prog *program.Program, pts []*pthread.PThread, cfg Config) (Stats, error) {
	return newRefSim(prog, pts, cfg).runContext(context.Background())
}

func (s *refSim) runContext(ctx context.Context) (Stats, error) {
	total := s.cfg.WarmInsts + s.cfg.MaxInsts
	if total < 0 { // overflow of the "unbounded" default
		total = s.cfg.MaxInsts
	}
	guard := livelockGuard(total) // shared with the optimized core (the frozen core had an overflow bug here)
	done := ctx.Done()
	var warm Stats
	var warmCycle int64
	warmed := s.cfg.WarmInsts == 0
	for {
		if done != nil && s.cycle&ctxCheckMask == 0 {
			select {
			case <-done:
				return s.stats, ctx.Err()
			default:
			}
		}
		s.retire()
		s.issue()
		s.rename()
		s.fetch()
		s.cycle++
		if !warmed && s.stats.Retired >= s.cfg.WarmInsts {
			warm = s.stats
			warmCycle = s.cycle
			warmed = true
		}
		if s.stats.Retired >= total {
			break
		}
		if s.fetchDone && len(s.fetchQ) == 0 && len(s.rob) == 0 {
			break
		}
		if s.cycle > guard {
			return s.stats, fmt.Errorf("timing: no forward progress after %d cycles (%s)", s.cycle, s.prog.Name)
		}
	}
	st := subStats(s.stats, warm)
	st.Cycles = s.cycle - warmCycle
	if st.Cycles > 0 {
		st.IPC = float64(st.Retired) / float64(st.Cycles)
	}
	if st.Launches > 0 {
		st.AvgPtLen = float64(st.PtInsts) / float64(st.Launches)
	}
	return st, nil
}

func (s *refSim) fetch() {
	if s.fetchDone {
		return
	}
	if s.fetchBlocker != nil {
		b := s.fetchBlocker
		if !b.issued || s.cycle < b.compC+int64(s.cfg.RedirectPenalty) {
			s.stats.FetchStalls++
			return
		}
		s.fetchBlocker = nil
	}
	if len(s.fetchQ) >= 2*s.cfg.Width {
		return // front-end buffer full
	}
	for n := 0; n < s.cfg.Width; n++ {
		if s.oracle.Halted {
			s.fetchDone = true
			return
		}
		e, err := s.oracle.Step()
		if err != nil {
			s.fetchDone = true
			return
		}
		u := &refUop{
			seq: e.Seq, pc: e.PC, inst: e.Inst, effAddr: e.EffAddr,
			availC: s.cycle + int64(s.cfg.FrontEndDepth),
		}
		s.fetchQ = append(s.fetchQ, u)
		switch isa.ClassOf(e.Inst.Op) {
		case isa.ClassBranch:
			s.stats.BrLookups++
			_, correct := s.pred.PredictAndTrain(e.PC, e.Taken)
			if !correct {
				s.stats.BrMispred++
				u.mispred = true
				s.fetchBlocker = u
				return
			}
			if e.Taken {
				return // fetch break on taken branch
			}
		case isa.ClassJump:
			if e.Inst.Op == isa.JR {
				if s.pred.BTBLookup(e.PC) != e.NextPC {
					s.stats.BrMispred++
					u.mispred = true
					s.fetchBlocker = u
					s.pred.BTBInsert(e.PC, e.NextPC)
					return
				}
			}
			return // fetch break on taken control
		case isa.ClassHalt:
			s.fetchDone = true
			return
		}
	}
}

func (s *refSim) rename() {
	budget := s.cfg.Width

	rsHeadroom := s.cfg.RS - 2*s.cfg.Width
	for _, ctx := range s.ctxs {
		if !ctx.busy() || s.cycle < ctx.burstAt {
			continue
		}
		if !s.cfg.NoRSThrottle && s.cfg.Mode != ModeOverheadSequence && s.rsUsed() >= rsHeadroom {
			continue // retry next cycle
		}
		n := s.cfg.PtBurst
		if n > len(ctx.pending) {
			n = len(ctx.pending)
		}
		if s.cfg.Mode != ModeLatencyOnly {
			if n > budget {
				n = budget
			}
			budget -= n
		}
		if n == 0 {
			continue
		}
		for _, u := range ctx.pending[:n] {
			s.stats.PtInsts++
			if s.cfg.Mode == ModeOverheadSequence {
				continue // sequenced and immediately discarded
			}
			u.renamed = true
			u.availC = s.cycle
			s.window = append(s.window, u)
		}
		ctx.pending = ctx.pending[n:]
		ctx.burstAt = s.cycle + int64(s.cfg.PtBurst)
	}

	for budget > 0 && len(s.fetchQ) > 0 {
		u := s.fetchQ[0]
		if u.availC > s.cycle || len(s.rob) >= s.cfg.ROB || s.rsUsed() >= s.cfg.RS {
			return
		}
		if u.isStore() && len(s.storeQ) >= s.cfg.StoreQueue {
			return
		}
		s.fetchQ = s.fetchQ[1:]
		budget--
		u.renamed = true
		srcs, ns := u.inst.Sources()
		for i := 0; i < ns; i++ {
			if srcs[i] != isa.Zero {
				if p := s.regProd[srcs[i]]; p != nil && !p.retired {
					u.prod[i] = p
				}
			}
		}
		if u.inst.HasDest() {
			s.regProd[u.inst.Rd] = u
		}
		if u.isStore() {
			s.storeQ = append(s.storeQ, u)
		}
		s.rob = append(s.rob, u)
		s.window = append(s.window, u)
		if pts := s.triggers[u.pc]; pts != nil {
			s.launch(pts, u)
		}
	}
}

func (s *refSim) rsUsed() int {
	n := 0
	for _, u := range s.window {
		if !u.issued {
			n++
		}
	}
	return n
}

func (s *refSim) launch(pts []*pthread.PThread, trigger *refUop) {
	for _, pt := range pts {
		if !pt.ActiveAt(trigger.seq) {
			continue
		}
		var ctx *refPtContext
		for _, c := range s.ctxs {
			if !c.busy() {
				ctx = c
				break
			}
		}
		if ctx == nil {
			s.stats.Drops++
			continue
		}
		s.stats.Launches++
		if s.cfg.Mode == ModeOverheadSequence {
			ctx.pending = make([]*refUop, pt.Size())
			for i := range ctx.pending {
				ctx.pending[i] = &refUop{seq: -1, isPt: true, inst: pt.Body[i].Inst}
			}
			ctx.burstAt = s.cycle + 1
			continue
		}
		regs := make([]int64, isa.PtRegs)
		copy(regs[:isa.NumRegs], s.oracle.Regs[:])
		res := cpu.ExecBody(pt.Insts(), regs, s.oracle.Mem)
		uops := make([]*refUop, len(pt.Body))
		for i, bi := range pt.Body {
			pu := &refUop{seq: -1, isPt: true, inst: bi.Inst, effAddr: res.EffAddrs[i], readyMin: s.cycle}
			for k := 0; k < 2; k++ {
				switch d := bi.Dep[k]; {
				case d >= 0:
					pu.prod[k] = uops[d]
				case d == pthread.DepTrigger:
					pu.prod[k] = trigger
				}
			}
			if bi.MemDep >= 0 {
				pu.prod[2] = uops[bi.MemDep]
			}
			pu.fwdHit = res.FromStoreBuf[i]
			uops[i] = pu
		}
		ctx.pending = uops
		ctx.burstAt = s.cycle + 1
	}
}

func (s *refSim) issue() {
	slots := s.cfg.Width
	kept := s.window[:0]
	for _, u := range s.window {
		if u.issued {
			continue
		}
		if slots == 0 || !s.ready(u) {
			kept = append(kept, u)
			continue
		}
		slots--
		u.issued = true
		u.compC = s.complete(u)
	}
	s.window = kept
}

func (s *refSim) ready(u *refUop) bool {
	if u.readyMin > s.cycle {
		return false
	}
	for _, p := range u.prod {
		if p == nil {
			continue
		}
		if !p.issued || p.compC > s.cycle {
			return false
		}
	}
	return true
}

func (s *refSim) complete(u *refUop) int64 {
	now := s.cycle
	switch isa.ClassOf(u.inst.Op) {
	case isa.ClassLoad:
		t := now + int64(s.cfg.AgenLat)
		if u.isPt {
			if u.fwdHit {
				return t + int64(s.cfg.ForwardLat)
			}
			if s.cfg.Mode == ModeOverheadExecute {
				return t + int64(s.cfg.L2Lat)
			}
			return s.mem.ptLoad(u.effAddr, t)
		}
		s.stats.Loads++
		if s.forwardFrom(u) {
			u.fwdHit = true
			return t + int64(s.cfg.ForwardLat)
		}
		return s.mem.mainLoad(u.effAddr, t)
	case isa.ClassStore:
		return now + int64(s.cfg.AgenLat)
	case isa.ClassMul:
		return now + int64(isa.Latency(u.inst.Op))
	default:
		return now + 1
	}
}

func (s *refSim) forwardFrom(ld *refUop) bool {
	for i := len(s.storeQ) - 1; i >= 0; i-- {
		st := s.storeQ[i]
		if st.seq < ld.seq && st.issued && st.effAddr&^7 == ld.effAddr&^7 {
			return true
		}
	}
	return false
}

func (s *refSim) retire() {
	n := 0
	for n < s.cfg.Width && len(s.rob) > 0 {
		u := s.rob[0]
		if !u.issued || u.compC > s.cycle {
			return
		}
		u.retired = true
		s.rob = s.rob[1:]
		if u.isStore() {
			s.mem.mainStore(u.effAddr, s.cycle)
			for i, st := range s.storeQ {
				if st == u {
					s.storeQ = append(s.storeQ[:i], s.storeQ[i+1:]...)
					break
				}
			}
		}
		s.stats.Retired++
		n++
	}
}
