package timing

import (
	"context"
	"fmt"
	"math/bits"

	"preexec/internal/cpu"
	"preexec/internal/isa"
	"preexec/internal/mem"
	"preexec/internal/pthread"
)

// This file is the replay half of trace replay: a re-timing engine that
// consumes a recorded Trace (trace.go) instead of stepping the functional
// oracle and querying the branch predictor. It mirrors sim.go stage for
// stage — retire/issue/rename/fetch in the same order, the same event-driven
// scheduler, the same idle fast-forward, the same memory system — so its
// Stats are bit-identical to RunContext's (pinned by replay_equiv_test.go
// across every workload, mode, and the synth zoo, the refsim discipline).
//
// Beyond skipping the oracle and the predictor, replay is specialized for
// being run many times per trace (once per sweep cell):
//
//   - Main-thread instructions live in a ring of slots indexed by their trace
//     record sequence. No allocation, no free list, and no reference counts:
//     every reference to a main-thread slot dies by the time it retires (the
//     waiter chain drains at issue, producer links resolve against issued or
//     retired producers, the ROB entry leaves at retire), and the ring spans
//     the maximum fetch-ahead, so a slot cannot be overwritten while
//     reachable. Only p-thread slots, whose lifetime is not program-ordered,
//     keep the arena-and-pins discipline.
//   - Producer links are not re-derived through a rename table: the trace
//     records each instruction's producer record index (trace.go), and the
//     strictly program-ordered retirement watermark distinguishes live
//     producers from retired ones — the same trick the store-forwarding walk
//     uses on the prevStore links.
//   - The ready "heap" is a winSeq-indexed bitmap ring (readyQ): window
//     sequence numbers are unique, so ascending-bit order is exactly the
//     uopHeap's pop order, at one bit set per wakeup and a short word scan
//     per issue instead of O(log n) sift chains.

// rslot is one in-flight instruction in the replay engine — the uop struct
// flattened into a slot. Producer references (prod) are either p-thread slot
// ids (>= 0, always in the arena region) or encoded main-thread record
// indices (mainRef, <= -2); none (-1) is empty. `pins` reference-counts
// p-thread slots exactly as uop.pins does; it is unused for ring slots.
type rslot struct {
	readyMin int64
	availC   int64
	compC    int64
	effAddr  int64

	prod       [3]int32
	seq        int32 // trace record index; -1 for p-thread slots
	winSeq     int32
	waiterHead int32
	nextWaiter int32
	pins       int32

	class   uint8
	latAdd  uint8
	issued  bool
	isPt    bool
	fwdHit  bool
	isStore bool
}

// none is the nil slot id / producer reference.
const none = int32(-1)

// wheelSize is the timing wheel's horizon in cycles (power of two). It
// comfortably covers ordinary completion latencies (memory plus queueing);
// the rare farther-out completion spills into a heap, which is correct at
// any horizon — the size only trades memory for spill frequency.
const wheelSize = 2048

// mainRef encodes a main-thread producer reference by trace record index;
// mainSeq decodes it. The encoding keeps record indices (which overlap slot
// ids numerically) distinct from p-thread slot ids in prod entries.
func mainRef(seq int32) int32 { return -2 - seq }
func mainSeq(ref int32) int32 { return -2 - ref }

// khent is a pending-heap entry: the inline readyMin key plus the slot id,
// keeping the sift loops free of slot-array indirections.
type khent struct {
	key int64
	id  int32
}

// keyHeap is a binary min-heap over inline keys. Its sift comparisons are
// the same as uopHeap's (strict < to prefer the later child, <= to stop), so
// equal-key entries pop in the same order as the simulator's heaps. (For the
// pending heap the equal-key order is additionally irrelevant: every entry
// with key <= cycle transfers to the ready queue before any issue, and the
// ready queue orders by unique winSeq.)
type keyHeap []khent

func (h *keyHeap) push(key int64, id int32) {
	a := append(*h, khent{key, id})
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[p].key <= a[i].key {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
	*h = a
}

func (h *keyHeap) pop() int32 {
	a := *h
	top := a[0].id
	n := len(a) - 1
	a[0] = a[n]
	a = a[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && a[c+1].key < a[c].key {
			c++
		}
		if a[i].key <= a[c].key {
			break
		}
		a[i], a[c] = a[c], a[i]
		i = c
	}
	*h = a
	return top
}

// readyQ holds the ready-to-issue instructions as a bitmap ring indexed by
// winSeq, popping in ascending winSeq order. winSeq values are unique, so
// this is exactly the order a min-heap keyed by winSeq produces. All live
// winSeqs stay within one ring window ([min, min+mask]); push grows the ring
// when a new value would widen the span past that (only reachable with the
// RS throttle ablated).
type readyQ struct {
	idOf  []int32
	bits  []uint64
	mask  int32
	min   int32 // lower bound on the smallest set winSeq; exact after a pop
	max   int32 // upper bound on the largest set winSeq
	count int32
}

func newReadyQ(capacity int) readyQ {
	c := int32(64)
	for int(c) < capacity {
		c <<= 1
	}
	return readyQ{idOf: make([]int32, c), bits: make([]uint64, c/64), mask: c - 1}
}

func (q *readyQ) push(ws, id int32) {
	if q.count == 0 {
		q.min, q.max = ws, ws
	} else {
		lo, hi := q.min, q.max
		if ws < lo {
			lo = ws
		}
		if ws > hi {
			hi = ws
		}
		for hi-lo > q.mask {
			q.grow()
		}
		q.min, q.max = lo, hi
	}
	q.count++
	i := ws & q.mask
	q.idOf[i] = id
	q.bits[i>>6] |= 1 << uint(i&63)
}

// grow doubles the ring, re-placing the set bits (all within the old
// [min, min+mask] window, so each maps to a distinct old index).
func (q *readyQ) grow() {
	c := (q.mask + 1) * 2
	n := readyQ{
		idOf:  make([]int32, c),
		bits:  make([]uint64, c/64),
		mask:  c - 1,
		min:   q.min,
		max:   q.max,
		count: q.count,
	}
	for ws := q.min; ws <= q.max; ws++ {
		i := ws & q.mask
		if q.bits[i>>6]&(1<<uint(i&63)) != 0 {
			j := ws & n.mask
			n.idOf[j] = q.idOf[i]
			n.bits[j>>6] |= 1 << uint(j&63)
		}
	}
	*q = n
}

// pop removes and returns the slot with the smallest winSeq. Caller
// guarantees count > 0. The scan walks absolute word positions upward from
// min; ring words are word-aligned images of absolute words, and the one
// ring word shared by the window's two ends keeps its low/high halves in
// disjoint bit ranges, so the absolute walk reads each live bit exactly once.
func (q *readyQ) pop() int32 {
	nw := int32(len(q.bits))
	ws := q.min
	aw := ws >> 6
	w := q.bits[aw&(nw-1)] >> uint(ws&63)
	for w == 0 {
		aw++
		ws = aw << 6
		w = q.bits[aw&(nw-1)]
	}
	ws += int32(bits.TrailingZeros64(w))
	i := ws & q.mask
	q.bits[i>>6] &^= 1 << uint(i&63)
	q.min = ws + 1
	q.count--
	return q.idOf[i]
}

// i32ring is uopRing over slot ids.
type i32ring struct {
	buf  []int32
	head int
	size int
}

func newI32Ring(capacity int) i32ring {
	c := 8
	for c < capacity {
		c <<= 1
	}
	return i32ring{buf: make([]int32, c)}
}

func (r *i32ring) len() int     { return r.size }
func (r *i32ring) front() int32 { return r.buf[r.head] }

func (r *i32ring) push(id int32) {
	if r.size == len(r.buf) {
		grown := make([]int32, len(r.buf)*2)
		for i := 0; i < r.size; i++ {
			grown[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.size)&(len(r.buf)-1)] = id
	r.size++
}

func (r *i32ring) pop() int32 {
	id := r.buf[r.head]
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.size--
	return id
}

// rctx is ptContext over slot ids.
type rctx struct {
	pending []int32
	head    int
	burstAt int64
}

func (c *rctx) busy() bool { return c.head < len(c.pending) }

// ptBodyMeta caches per-body-instruction scheduling facts so launches index
// flat arrays instead of re-deriving class and latency per dynamic instance.
type ptBodyMeta struct {
	insts  []isa.Inst
	class  []uint8
	latAdd []uint8
}

// replaySim is one replay of a recorded trace. It is the Sim structure with
// the oracle, predictor, rename table, and store-chain map replaced by the
// trace.
type replaySim struct {
	cfg   Config
	trace *Trace
	mem   *memsys
	stats Stats

	cycle int64

	frontEndDepth   int64
	redirectPenalty int64
	agenLat         int64
	forwardLat      int64
	l2Lat           int64

	// Slot storage: slots[0:ringSz] is the main-thread ring (slot id ==
	// record sequence & slotMask); slots[ringSz:] is the p-thread arena,
	// recycled through freeL when a slot's pin count drops to zero. Callers
	// must not hold *rslot across an allocPt (the backing array may grow).
	slots    []rslot
	freeL    []int32
	ringSz   int32
	slotMask int64

	// Front end: pos is the next trace record to fetch; regs/memImg track
	// the architectural state at the fetch frontier (the simulator's oracle
	// state) for p-thread launches.
	fetchQ    i32ring
	blocker   int32
	fetchDone bool
	exhausted bool // fetch ran off a non-truncated trace: trace too short
	pos       int
	regs      [isa.NumRegs]int64
	memImg    *mem.Memory

	rsCount int
	winSeq  int32
	ready   readyQ

	// Pending instructions (scheduled, producers resolved, completion-gated)
	// wait in a timing wheel of intrusive per-cycle lists threaded through
	// rslot.nextWaiter (free to reuse: a slot waits on producers or on a
	// cycle, never both). Entries beyond the wheel horizon spill into a
	// keyHeap. Transfer order into the ready queue is irrelevant — issue
	// order is decided by unique winSeqs — so buckets need no internal order.
	wheel      []int32  // per-bucket list head (slot id), none = empty
	wheelBits  []uint64 // nonempty-bucket bitmap
	wheelMask  int64
	wheelCount int
	spillH     keyHeap

	busyCtxs int

	rob         i32ring
	storeQCount int

	// Pre-execution: trig[pc] is 1+index into trigList, 0 for none.
	trig     []int32
	trigList [][]*pthread.PThread
	ctxs     []rctx
	ptMeta   map[*pthread.PThread]ptBodyMeta

	launchRegs []int64
	bodyExec   cpu.BodyExec
}

// Replay scores the p-thread selection pts under cfg against the recorded
// trace t, without re-simulating fetch: the returned Stats are bit-identical
// to RunContext(ctx, t.Program(), pts, cfg). The trace must have been
// recorded under the same TraceVersion, the same machine geometry, and a run
// extent covering cfg's WarmInsts+MaxInsts (RecordTrace with the same Config
// family guarantees all three); a too-short trace returns an error, never
// silently wrong numbers.
func Replay(ctx context.Context, t *Trace, pts []*pthread.PThread, cfg Config) (Stats, error) {
	if t.version != TraceVersion {
		return Stats{}, fmt.Errorf("timing: trace version %q does not match simulator %q", t.version, TraceVersion)
	}
	cfg = cfg.withDefaults()
	total := cfg.WarmInsts + cfg.MaxInsts
	if total < 0 { // overflow of the "unbounded" default
		total = cfg.MaxInsts
	}
	// A trace ending in HALT (or truncated by an oracle error) covers the
	// whole fetch stream; an extent-bounded trace must cover this run's
	// total plus its maximum fetch-ahead.
	complete := t.truncated ||
		(len(t.recs) > 0 && t.recs[len(t.recs)-1].flags&tfHalt != 0)
	if !complete && total+traceExtent(cfg) > int64(len(t.recs)) {
		return Stats{}, fmt.Errorf("timing: trace of %d records too short for a %d-instruction run", len(t.recs), total)
	}
	return newReplay(t, pts, cfg).run(ctx, total)
}

func newReplay(t *Trace, pts []*pthread.PThread, cfg Config) *replaySim {
	// The ring must span the maximum distance between the retirement
	// watermark and the fetch frontier: ROB occupancy plus the fetch queue's
	// high-water mark (under 3xWidth).
	sz := int32(8)
	for int(sz) < cfg.ROB+4*cfg.Width {
		sz <<= 1
	}
	r := &replaySim{
		cfg:             cfg,
		trace:           t,
		frontEndDepth:   int64(cfg.FrontEndDepth),
		redirectPenalty: int64(cfg.RedirectPenalty),
		agenLat:         int64(cfg.AgenLat),
		forwardLat:      int64(cfg.ForwardLat),
		l2Lat:           int64(cfg.L2Lat),
		slots:           make([]rslot, sz, int(sz)+cfg.RS+4*cfg.Width),
		ringSz:          sz,
		slotMask:        int64(sz - 1),
		fetchQ:          newI32Ring(3 * cfg.Width),
		rob:             newI32Ring(cfg.ROB),
		ready:           newReadyQ(cfg.ROB + cfg.RS),
		wheel:           make([]int32, wheelSize),
		wheelBits:       make([]uint64, wheelSize/64),
		wheelMask:       wheelSize - 1,
		blocker:         none,
		ctxs:            make([]rctx, cfg.PtContexts),
		memImg:          t.prog.Data.Clone(),
	}
	for i := range r.wheel {
		r.wheel[i] = none
	}
	r.mem = newMemsys(cfg, &r.stats)
	if cfg.Mode != ModeBase && len(pts) > 0 {
		r.trig = make([]int32, len(t.prog.Insts))
		r.ptMeta = make(map[*pthread.PThread]ptBodyMeta, len(pts))
		for _, pt := range pts {
			if pt.TriggerPC >= 0 && pt.TriggerPC < len(r.trig) {
				i := r.trig[pt.TriggerPC]
				if i == 0 {
					r.trigList = append(r.trigList, nil)
					i = int32(len(r.trigList))
					r.trig[pt.TriggerPC] = i
				}
				r.trigList[i-1] = append(r.trigList[i-1], pt)
			}
			insts := pt.Insts()
			meta := ptBodyMeta{
				insts:  insts,
				class:  make([]uint8, len(insts)),
				latAdd: make([]uint8, len(insts)),
			}
			for i, in := range insts {
				meta.class[i] = uint8(isa.ClassOf(in.Op))
				meta.latAdd[i] = uint8(isa.Latency(in.Op))
			}
			r.ptMeta[pt] = meta
		}
		r.launchRegs = make([]int64, isa.PtRegs)
	}
	return r
}

// allocPt hands out a recycled (or fresh) p-thread arena slot, reset with
// nil references and one pin (the caller's pending-list reference).
func (r *replaySim) allocPt() int32 {
	blank := rslot{prod: [3]int32{none, none, none}, seq: -1, waiterHead: none, nextWaiter: none, isPt: true, pins: 1}
	if n := len(r.freeL); n > 0 {
		id := r.freeL[n-1]
		r.freeL = r.freeL[:n-1]
		r.slots[id] = blank
		return id
	}
	r.slots = append(r.slots, blank)
	return int32(len(r.slots) - 1)
}

// unpin drops one reference from a p-thread slot; the last reference
// recycles it. Main-thread ring slots are not reference-counted.
func (r *replaySim) unpin(id int32) {
	if id < r.ringSz {
		return
	}
	if r.slots[id].pins--; r.slots[id].pins == 0 {
		r.freeL = append(r.freeL, id)
	}
}

// run executes the replay loop — the same cadence, warm snapshot, livelock
// guard, and idle fast-forward as Sim.RunContext.
func (r *replaySim) run(ctx context.Context, total int64) (Stats, error) {
	guard := livelockGuard(total)
	done := ctx.Done()
	var warm Stats
	var warmCycle int64
	var iter int64
	warmed := r.cfg.WarmInsts == 0
	for {
		if done != nil && iter&ctxCheckMask == 0 {
			select {
			case <-done:
				return r.stats, ctx.Err()
			default:
			}
		}
		iter++
		retired := r.retire()
		issued := r.issue()
		renamed := r.rename()
		fetched := r.fetch()
		r.cycle++
		if !warmed && r.stats.Retired >= r.cfg.WarmInsts {
			warm = r.stats
			warmCycle = r.cycle
			warmed = true
		}
		if r.stats.Retired >= total {
			break
		}
		if r.fetchDone && r.fetchQ.len() == 0 && r.rob.len() == 0 {
			break
		}
		if !retired && !issued && !renamed && !fetched {
			if next := r.nextEventCycle(); next > r.cycle {
				if next > guard+1 {
					next = guard + 1
				}
				if r.blocker != none && !r.fetchDone {
					r.stats.FetchStalls += next - r.cycle
				}
				r.cycle = next
			}
		}
		if r.cycle > guard {
			return r.stats, fmt.Errorf("timing: no forward progress after %d cycles (%s)", r.cycle, r.trace.prog.Name)
		}
	}
	if r.exhausted {
		return r.stats, fmt.Errorf("timing: trace of %d records exhausted mid-run (%s)", len(r.trace.recs), r.trace.prog.Name)
	}
	st := subStats(r.stats, warm)
	st.Cycles = r.cycle - warmCycle
	if st.Cycles > 0 {
		st.IPC = float64(st.Retired) / float64(st.Cycles)
	}
	if st.Launches > 0 {
		st.AvgPtLen = float64(st.PtInsts) / float64(st.Launches)
	}
	return st, nil
}

// pendWait parks a completion-gated slot until cycle t (> r.cycle): in the
// timing wheel within the horizon, in the spill heap beyond it.
func (r *replaySim) pendWait(id int32, t int64) {
	if t-r.cycle >= wheelSize {
		r.spillH.push(t, id)
		return
	}
	i := t & r.wheelMask
	r.slots[id].nextWaiter = r.wheel[i]
	r.wheel[i] = id
	r.wheelBits[i>>6] |= 1 << uint(i&63)
	r.wheelCount++
}

// nextPendingCycle returns the earliest cycle holding a parked slot (wheel
// or spill), or sentinel if none. The wheel scan starts at the current
// cycle: the loop advances the clock before consulting events, so a slot
// due exactly now (its bucket not yet drained — issue has not run for this
// cycle) must be reported, exactly as the pending heap's min was. Every
// parked time is in [cycle, cycle+wheelSize), so ring position encodes the
// absolute cycle uniquely.
func (r *replaySim) nextPendingCycle(sentinel int64) int64 {
	next := sentinel
	if len(r.spillH) > 0 {
		next = r.spillH[0].key
	}
	if r.wheelCount > 0 {
		from := r.cycle
		aw := from >> 6
		w := r.wheelBits[aw&(r.wheelMask>>6)] >> uint(from&63)
		for w == 0 {
			aw++
			from = aw << 6
			w = r.wheelBits[aw&(r.wheelMask>>6)]
		}
		pos := (from + int64(bits.TrailingZeros64(w))) & r.wheelMask
		t := r.cycle + ((pos - r.cycle) & r.wheelMask)
		if t < next {
			next = t
		}
	}
	return next
}

// nextEventCycle mirrors Sim.nextEventCycle over slot ids.
func (r *replaySim) nextEventCycle() int64 {
	next := unboundedGuard + 1
	if r.rob.len() > 0 {
		if h := &r.slots[r.rob.front()]; h.issued && h.compC < next {
			next = h.compC
		}
	}
	if t := r.nextPendingCycle(next); t < next {
		next = t
	}
	if r.busyCtxs > 0 {
		for i := range r.ctxs {
			if c := &r.ctxs[i]; c.busy() && c.burstAt >= r.cycle && c.burstAt < next {
				next = c.burstAt
			}
		}
	}
	if r.fetchQ.len() > 0 {
		if a := r.slots[r.fetchQ.front()].availC; a < next {
			next = a
		}
	}
	if b := r.blocker; b != none && r.slots[b].issued {
		if t := r.slots[b].compC + r.redirectPenalty; t < next {
			next = t
		}
	}
	return next
}

// fetch mirrors Sim.fetch, consuming trace records instead of oracle steps
// and applying each record's architectural effect to the replay's register
// file and memory image (keeping them at the fetch frontier, exactly the
// oracle state the simulator's launches read). Fetched instructions land in
// their ring slot directly: the slot's previous occupant retired at least a
// full ROB ago.
func (r *replaySim) fetch() bool {
	if r.fetchDone {
		return false
	}
	work := false
	if b := r.blocker; b != none {
		bs := &r.slots[b]
		if !bs.issued || r.cycle < bs.compC+r.redirectPenalty {
			r.stats.FetchStalls++
			return false
		}
		r.blocker = none
		work = true
	}
	if r.fetchQ.len() >= 2*r.cfg.Width {
		return work
	}
	recs := r.trace.recs
	for n := 0; n < r.cfg.Width; n++ {
		if r.pos >= len(recs) {
			// The simulator's fetch stops on an oracle error at exactly the
			// truncation point; a non-truncated trace ending here is too
			// short for this run — fail the replay rather than diverge.
			if !r.trace.truncated {
				r.exhausted = true
			}
			r.fetchDone = true
			return true
		}
		rec := &recs[r.pos]
		id := int32(int64(r.pos) & r.slotMask)
		r.slots[id] = rslot{
			effAddr:    rec.effAddr,
			availC:     r.cycle + r.frontEndDepth,
			prod:       [3]int32{none, none, none},
			seq:        int32(r.pos),
			waiterHead: none,
			nextWaiter: none,
			class:      rec.class,
			latAdd:     rec.latAdd,
		}
		if rec.flags&tfHasDest != 0 {
			r.regs[rec.rd] = rec.val
		} else if rec.flags&tfStore != 0 {
			r.slots[id].isStore = true
			r.memImg.Write(rec.effAddr, rec.val)
		}
		r.fetchQ.push(id)
		r.pos++
		work = true
		if rec.flags&tfBrLookup != 0 {
			r.stats.BrLookups++
		}
		if rec.flags&tfMispredict != 0 {
			r.stats.BrMispred++
			r.blocker = id
			return true
		}
		if rec.flags&tfHalt != 0 {
			r.fetchDone = true
			return true
		}
		if rec.flags&tfBreak != 0 {
			return true
		}
	}
	return work
}

// rename mirrors Sim.rename: p-thread burst injection under the RS
// throttle, then main-thread rename with producers taken from the trace's
// precomputed links and triggers launched.
func (r *replaySim) rename() bool {
	budget := r.cfg.Width
	work := false

	rsHeadroom := r.cfg.RS - 2*r.cfg.Width
	for i := 0; r.busyCtxs > 0 && i < len(r.ctxs); i++ {
		ctx := &r.ctxs[i]
		if !ctx.busy() || r.cycle < ctx.burstAt {
			continue
		}
		if !r.cfg.NoRSThrottle && r.cfg.Mode != ModeOverheadSequence && r.rsCount >= rsHeadroom {
			continue
		}
		n := r.cfg.PtBurst
		if pend := len(ctx.pending) - ctx.head; n > pend {
			n = pend
		}
		if r.cfg.Mode != ModeLatencyOnly {
			if n > budget {
				n = budget
			}
			budget -= n
		}
		if n == 0 {
			continue
		}
		for _, id := range ctx.pending[ctx.head : ctx.head+n] {
			r.stats.PtInsts++
			if r.cfg.Mode == ModeOverheadSequence {
				r.unpin(id)
				continue
			}
			u := &r.slots[id]
			u.availC = r.cycle
			u.pins++ // scheduler
			r.enterWindow(id)
			r.unpin(id) // pending slot released
		}
		ctx.head += n
		if ctx.head == len(ctx.pending) {
			ctx.pending = ctx.pending[:0]
			ctx.head = 0
			r.busyCtxs--
		}
		ctx.burstAt = r.cycle + int64(r.cfg.PtBurst)
		work = true
	}

	for budget > 0 && r.fetchQ.len() > 0 {
		id := r.fetchQ.front()
		u := &r.slots[id]
		if u.availC > r.cycle || r.rob.len() >= r.cfg.ROB || r.rsCount >= r.cfg.RS {
			return work
		}
		if u.isStore && r.storeQCount >= r.cfg.StoreQueue {
			return work
		}
		r.fetchQ.pop()
		budget--
		work = true
		rec := &r.trace.recs[u.seq]
		// The trace's producer links point at the most recent earlier writer
		// of each source; a link at or past the retirement watermark is the
		// producer the live rename table would have held, a retired link is
		// a dependency the table had already cleared.
		for i := 0; i < 2; i++ {
			if j := rec.prod[i]; j >= 0 && int64(j) >= r.stats.Retired {
				u.prod[i] = mainRef(j)
			}
		}
		if u.isStore {
			r.storeQCount++
		}
		r.rob.push(id)
		r.enterWindow(id)
		if r.trig != nil {
			if ti := r.trig[rec.pc]; ti != 0 {
				// launch allocates slots: u is invalid after this call.
				r.launch(r.trigList[ti-1], id)
			}
		}
	}
	return work
}

// enterWindow mirrors Sim.enterWindow.
func (r *replaySim) enterWindow(id int32) {
	r.slots[id].winSeq = r.winSeq
	r.winSeq++
	r.rsCount++
	r.schedule(id)
}

// schedule mirrors Sim.schedule over slot ids. Main-thread producer
// references resolve through the retirement watermark: a retired producer
// completed at or before the current cycle, so it constrains nothing.
func (r *replaySim) schedule(id int32) {
	u := &r.slots[id]
	for i, p := range u.prod {
		if p == none {
			continue
		}
		var ps *rslot
		if p < none {
			seq := mainSeq(p)
			if int64(seq) < r.stats.Retired {
				u.prod[i] = none
				continue
			}
			ps = &r.slots[int64(seq)&r.slotMask]
		} else {
			ps = &r.slots[p]
		}
		if !ps.issued {
			u.nextWaiter = ps.waiterHead
			ps.waiterHead = id
			return
		}
		if ps.compC > u.readyMin {
			u.readyMin = ps.compC
		}
		u.prod[i] = none
		if p >= 0 {
			r.unpin(p)
		}
	}
	if u.readyMin <= r.cycle {
		r.ready.push(u.winSeq, id)
	} else {
		r.pendWait(id, u.readyMin)
	}
}

// launch mirrors Sim.launch: body execution runs against the replay's own
// fetch-frontier register file and memory image, which are identical to the
// simulator's oracle state at the same rename event.
func (r *replaySim) launch(pts []*pthread.PThread, triggerID int32) {
	trigSeq := r.slots[triggerID].seq
	for _, pt := range pts {
		if !pt.ActiveAt(int64(trigSeq)) {
			continue
		}
		var ctx *rctx
		for i := range r.ctxs {
			if c := &r.ctxs[i]; !c.busy() {
				ctx = c
				break
			}
		}
		if ctx == nil {
			r.stats.Drops++
			continue
		}
		r.stats.Launches++
		ctx.pending = ctx.pending[:0]
		ctx.head = 0
		if r.cfg.Mode == ModeOverheadSequence {
			for range pt.Body {
				ctx.pending = append(ctx.pending, r.allocPt())
			}
			if len(ctx.pending) > 0 {
				r.busyCtxs++
			}
			ctx.burstAt = r.cycle + 1
			continue
		}
		regs := r.launchRegs
		copy(regs[:isa.NumRegs], r.regs[:])
		clear(regs[isa.NumRegs:])
		meta := r.ptMeta[pt]
		res := r.bodyExec.Exec(meta.insts, regs, r.memImg)
		for i, bi := range pt.Body {
			id := r.allocPt()
			u := &r.slots[id]
			u.class = meta.class[i]
			u.latAdd = meta.latAdd[i]
			u.effAddr = res.EffAddrs[i]
			u.readyMin = r.cycle
			for k := 0; k < 2; k++ {
				switch d := bi.Dep[k]; {
				case d >= 0 && d < i:
					p := ctx.pending[d]
					u.prod[k] = p
					r.slots[p].pins++
				case d == pthread.DepTrigger:
					u.prod[k] = mainRef(trigSeq)
				}
			}
			if d := bi.MemDep; d >= 0 && d < i {
				p := ctx.pending[d]
				u.prod[2] = p
				r.slots[p].pins++
			}
			u.fwdHit = res.FromStoreBuf[i]
			ctx.pending = append(ctx.pending, id)
		}
		if len(ctx.pending) > 0 {
			r.busyCtxs++
		}
		ctx.burstAt = r.cycle + 1
	}
}

// issue mirrors Sim.issue: transfer every pending slot whose cycle arrived
// (this cycle's wheel bucket, plus any due spill entries), then pop ready
// slots in winSeq order up to the issue width.
func (r *replaySim) issue() bool {
	if r.wheelCount > 0 {
		if i := r.cycle & r.wheelMask; r.wheelBits[i>>6]&(1<<uint(i&63)) != 0 {
			for id := r.wheel[i]; id != none; {
				next := r.slots[id].nextWaiter
				r.slots[id].nextWaiter = none
				r.ready.push(r.slots[id].winSeq, id)
				r.wheelCount--
				id = next
			}
			r.wheel[i] = none
			r.wheelBits[i>>6] &^= 1 << uint(i&63)
		}
	}
	for len(r.spillH) > 0 && r.spillH[0].key <= r.cycle {
		id := r.spillH.pop()
		r.ready.push(r.slots[id].winSeq, id)
	}
	issued := 0
	for issued < r.cfg.Width && r.ready.count > 0 {
		id := r.ready.pop()
		issued++
		u := &r.slots[id]
		u.issued = true
		u.compC = r.complete(id)
		u = &r.slots[id] // complete does not alloc, but re-take for clarity
		r.rsCount--
		for w := u.waiterHead; w != none; {
			next := r.slots[w].nextWaiter
			r.slots[w].nextWaiter = none
			r.schedule(w)
			w = next
		}
		u.waiterHead = none
		r.unpin(id) // scheduler reference released (p-thread slots)
	}
	return issued > 0
}

// complete mirrors Sim.complete, with the instruction class and non-memory
// latency read from the slot instead of re-derived from the opcode.
func (r *replaySim) complete(id int32) int64 {
	u := &r.slots[id]
	now := r.cycle
	switch isa.Class(u.class) {
	case isa.ClassLoad:
		t := now + r.agenLat
		if u.isPt {
			if u.fwdHit {
				return t + r.forwardLat
			}
			if r.cfg.Mode == ModeOverheadExecute {
				return t + r.l2Lat
			}
			return r.mem.ptLoad(u.effAddr, t)
		}
		r.stats.Loads++
		if r.forwardFrom(u) {
			u.fwdHit = true
			return t + r.forwardLat
		}
		return r.mem.mainLoad(u.effAddr, t)
	case isa.ClassStore:
		return now + r.agenLat
	case isa.ClassMul:
		return now + int64(u.latAdd)
	default:
		return now + 1
	}
}

// forwardFrom mirrors Sim.forwardFrom against the trace's precomputed
// backward same-word store links: it reports whether any in-flight older
// store to the load's word has issued. The simulator's per-word chain holds
// exactly the renamed-but-unretired stores; here "in flight" is the record
// index being at or past the retirement watermark (retirement is strictly
// program-ordered), and prevStore links are strictly decreasing, so the walk
// stops at the first retired store. Renamed-but-unissued stores are in both
// structures and in neither case forward.
func (r *replaySim) forwardFrom(u *rslot) bool {
	recs := r.trace.recs
	for j := recs[u.seq].prevStore; j >= 0 && int64(j) >= r.stats.Retired; j = recs[j].prevStore {
		if r.slots[int64(j)&r.slotMask].issued {
			return true
		}
	}
	return false
}

// retire mirrors Sim.retire. The per-word store chains need no maintenance
// here (the trace's links are static; forwardFrom's watermark excludes
// retired stores), so retiring a store just updates the memory system and
// releases its store-queue slot.
func (r *replaySim) retire() bool {
	n := 0
	for n < r.cfg.Width && r.rob.len() > 0 {
		id := r.rob.front()
		u := &r.slots[id]
		if !u.issued || u.compC > r.cycle {
			break
		}
		r.rob.pop()
		if u.isStore {
			r.mem.mainStore(u.effAddr, r.cycle)
			r.storeQCount--
		}
		r.stats.Retired++
		n++
	}
	return n > 0
}
