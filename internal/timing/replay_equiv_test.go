package timing

// Equivalence tests for trace replay: Replay against a recorded base-run
// trace must produce Stats bit-for-bit identical to a full RunContext
// simulation — the same refsim discipline that pins the optimized core to
// the frozen reference core. The synth.Zoo corpus and the differential fuzz
// target live in the synth package (which can import this one; the reverse
// would cycle).

import (
	"context"
	"testing"

	"preexec/internal/program"
	"preexec/internal/workload"
)

// recordFor records a trace for the given run sizing using the same Config
// family the runs use.
func recordFor(t *testing.T, prog *program.Program, cfg Config) *Trace {
	t.Helper()
	tr, err := RecordTrace(context.Background(), prog, cfg)
	if err != nil {
		t.Fatalf("RecordTrace: %v", err)
	}
	return tr
}

// TestReplayMatchesSimulation pins replay to full simulation on all ten
// workloads in all five modes, one recorded trace per workload serving every
// mode, with selected p-threads in play.
func TestReplayMatchesSimulation(t *testing.T) {
	const warm, measure = 10_000, 40_000
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			prog := w.Build(1)
			pts := selectFor(t, prog, warm, measure)
			cfg := DefaultConfig()
			cfg.WarmInsts, cfg.MaxInsts = warm, measure
			tr := recordFor(t, prog, cfg)
			for _, mode := range allModes {
				cfg.Mode = mode
				want, err := Run(prog, pts, cfg)
				if err != nil {
					t.Fatalf("%s/%s: simulation: %v", w.Name, mode, err)
				}
				got, err := Replay(context.Background(), tr, pts, cfg)
				if err != nil {
					t.Fatalf("%s/%s: replay: %v", w.Name, mode, err)
				}
				if got != want {
					t.Errorf("%s/%s: replay diverges from simulation\n got: %+v\nwant: %+v", w.Name, mode, got, want)
				}
			}
		})
	}
}

// TestReplayMatchesSimulationEdgeConfigs stresses the replay structures the
// same way the optimized-vs-reference edge suite stresses the core: tiny
// backends, starved store queues, context-count extremes, throttle off, and
// memory-latency extremes. The trace is re-recorded per geometry (the
// extent depends on ROB/Width).
func TestReplayMatchesSimulationEdgeConfigs(t *testing.T) {
	const warm, measure = 5_000, 25_000
	mutate := []struct {
		name string
		fn   func(*Config)
	}{
		{"tiny-backend", func(c *Config) { c.Width, c.ROB, c.RS, c.StoreQueue = 1, 4, 4, 2 }},
		{"narrow-wide-rob", func(c *Config) { c.Width, c.ROB = 2, 256 }},
		{"small-storeq", func(c *Config) { c.StoreQueue = 4 }},
		{"one-context", func(c *Config) { c.PtContexts = 1 }},
		{"many-contexts", func(c *Config) { c.PtContexts = 8 }},
		{"no-throttle", func(c *Config) { c.NoRSThrottle = true }},
		{"slow-memory", func(c *Config) { c.MemLat = 280 }},
		{"fast-memory", func(c *Config) { c.MemLat = 8 }},
		{"few-mshrs", func(c *Config) { c.MSHRs = 2 }},
		{"wide-burst", func(c *Config) { c.PtBurst = 16 }},
	}
	for _, wname := range []string{"mcf", "vpr.p", "vortex"} {
		w, err := workload.ByName(wname)
		if err != nil {
			t.Fatal(err)
		}
		prog := w.Build(1)
		pts := selectFor(t, prog, warm, measure)
		for _, m := range mutate {
			cfg := DefaultConfig()
			cfg.WarmInsts, cfg.MaxInsts = warm, measure
			m.fn(&cfg)
			tr := recordFor(t, prog, cfg)
			for _, mode := range []Mode{ModeBase, ModeNormal} {
				cfg.Mode = mode
				want, err := Run(prog, pts, cfg)
				if err != nil {
					t.Fatalf("%s/%s/%s: simulation: %v", wname, m.name, mode, err)
				}
				got, err := Replay(context.Background(), tr, pts, cfg)
				if err != nil {
					t.Fatalf("%s/%s/%s: replay: %v", wname, m.name, mode, err)
				}
				if got != want {
					t.Errorf("%s/%s/%s: replay diverges from simulation\n got: %+v\nwant: %+v", wname, m.name, mode, got, want)
				}
			}
		}
	}
}

// TestReplayTruncatedTrace pins the oracle-error parity: a program that runs
// off the end of its text truncates the trace, and replay of the truncated
// trace matches the simulator (whose fetch swallows the same error at the
// same instruction).
func TestReplayTruncatedTrace(t *testing.T) {
	b := program.NewBuilder("runs-off-end")
	b.Li(1, 0).Li(2, 500)
	b.Label("loop").
		Addi(1, 1, 1).
		Blt(1, 2, "loop")
	// Falls through past the last instruction: the oracle errors out.
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.WarmInsts, cfg.MaxInsts = 0, 50_000
	tr := recordFor(t, p, cfg)
	if !tr.truncated {
		t.Fatalf("trace not truncated: %d records", tr.Records())
	}
	want, err := Run(p, nil, cfg)
	if err != nil {
		t.Fatalf("simulation: %v", err)
	}
	got, err := Replay(context.Background(), tr, nil, cfg)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if got != want {
		t.Errorf("truncated-trace replay diverges\n got: %+v\nwant: %+v", got, want)
	}
}

// TestReplayRejectsShortTrace asserts the loud-failure contract: a trace
// recorded for a smaller run than the replay configuration demands is
// refused up front, and a version-mismatched trace is refused outright.
func TestReplayRejectsShortTrace(t *testing.T) {
	w, err := workload.ByName("vpr.p")
	if err != nil {
		t.Fatal(err)
	}
	prog := w.Build(1)
	cfg := DefaultConfig()
	cfg.WarmInsts, cfg.MaxInsts = 0, 10_000
	tr := recordFor(t, prog, cfg)

	big := cfg
	big.MaxInsts = 200_000
	if _, err := Replay(context.Background(), tr, nil, big); err == nil {
		t.Error("replay of a too-short trace did not fail")
	}

	stale := &Trace{prog: tr.prog, version: "rt0-stale", recs: tr.recs}
	if _, err := Replay(context.Background(), stale, nil, cfg); err == nil {
		t.Error("replay of a version-mismatched trace did not fail")
	}
}

// TestReplayUntraceableRun pins the RecordTrace bounds: the unbounded
// MaxInsts default must be refused (a trace of it could not be stored), and
// Traceable must agree.
func TestReplayUntraceableRun(t *testing.T) {
	w, err := workload.ByName("vpr.p")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig() // MaxInsts stays the unbounded 1<<62 default
	if Traceable(cfg) {
		t.Error("Traceable(unbounded) = true")
	}
	if _, err := RecordTrace(context.Background(), w.Build(1), cfg); err == nil {
		t.Error("RecordTrace of an unbounded run did not fail")
	}
	cfg.MaxInsts = 10_000
	if !Traceable(cfg) {
		t.Error("Traceable(10k) = false")
	}
}

// TestReplayCancellation pins the PR 5 guarantee on the replay path: both
// recording and replay poll the context on the same bounded cadence as
// RunContext (every 1<<12 loop iterations), so a cancelled context stops
// them within a bounded number of events rather than at stage boundaries.
func TestReplayCancellation(t *testing.T) {
	w, err := workload.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	prog := w.Build(1)
	cfg := DefaultConfig()
	cfg.WarmInsts, cfg.MaxInsts = 10_000, 40_000
	tr := recordFor(t, prog, cfg)
	pts := selectFor(t, prog, 10_000, 40_000)
	cfg.Mode = ModeNormal

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	// A pre-cancelled context must be noticed at the first poll — within
	// ctxCheckMask+1 loop iterations, i.e. before any meaningful work.
	if _, err := Replay(cancelled, tr, pts, cfg); err != context.Canceled {
		t.Errorf("cancelled replay returned %v, want context.Canceled", err)
	}
	if _, err := RecordTrace(cancelled, prog, cfg); err != context.Canceled {
		t.Errorf("cancelled recording returned %v, want context.Canceled", err)
	}
}

// TestReplayDeterministic asserts repeated replays of one trace are
// bit-for-bit identical (the slot arena and free list must not leak
// allocation order into results).
func TestReplayDeterministic(t *testing.T) {
	w, err := workload.ByName("vpr.p")
	if err != nil {
		t.Fatal(err)
	}
	prog := w.Build(1)
	pts := selectFor(t, prog, 10_000, 40_000)
	cfg := DefaultConfig()
	cfg.WarmInsts, cfg.MaxInsts = 10_000, 40_000
	cfg.Mode = ModeNormal
	tr := recordFor(t, prog, cfg)
	a, err := Replay(context.Background(), tr, pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(context.Background(), tr, pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("repeated replays diverge\n first: %+v\nsecond: %+v", a, b)
	}
}
