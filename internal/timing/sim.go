package timing

import (
	"context"
	"fmt"

	"preexec/internal/branch"
	"preexec/internal/cpu"
	"preexec/internal/isa"
	"preexec/internal/program"
	"preexec/internal/pthread"
)

// The simulator hot path is built around three ideas, all of which preserve
// bit-for-bit identical Stats (asserted against the frozen reference core in
// refsim_test.go):
//
//  1. Zero steady-state allocation: uops live in a chunked arena and are
//     recycled through a free list as soon as their reference count drops to
//     zero; the front-end queue, ROB, and store queue are ring buffers; and
//     p-thread launches reuse per-Sim scratch (register file, functional
//     body executor, body instruction cache) instead of allocating per
//     launch.
//  2. Incremental accounting: the O(window)-per-cycle issue scan is replaced
//     by an event-driven wakeup scheduler — a uop waiting on an unissued
//     producer parks on that producer's waiter list; once all producers have
//     issued, their completion times fold into the uop's ready time and it
//     sits in a time-ordered heap until it matures into the age-ordered
//     ready heap — so each uop is touched O(log window) times total instead
//     of once per cycle. Reservation-station occupancy is a counter, and
//     store-to-load forwarding consults a per-word chain of in-flight stores
//     instead of scanning the whole store queue per load.
//  3. Idle-cycle fast-forward: when a cycle performs no work, the next cycle
//     at which any pipeline stage could act is computed from the in-flight
//     timestamps and the clock jumps there directly — the common case in the
//     miss-dominated regime the paper evaluates, where the whole machine
//     sits behind a ~100-cycle memory access. All state is timestamp-based,
//     so skipped cycles are observationally identical to ticked ones (the
//     one per-cycle statistic, FetchStalls, is accounted for explicitly).

// uop is one in-flight instruction (main-thread or p-thread). uops are
// arena-allocated and recycled; `pins` counts the live references (queue
// membership, rename-table entry, consumer producer-slots, fetch blocker)
// and the uop returns to the free list when it reaches zero.
type uop struct {
	seq     int64 // main-thread dynamic index; -1 for p-thread uops
	pc      int
	inst    isa.Inst
	effAddr int64

	prod     [3]*uop // register (0,1) and memory/extra (2) producers
	readyMin int64   // earliest issue cycle; producer completions fold in

	availC int64 // cycle the front end delivers it to rename
	issued bool
	compC  int64

	isPt   bool
	fwdHit bool // load satisfied by store-queue / p-thread store buffer

	pins       int32
	winSeq     int64 // window-entry order (issue priority: oldest first)
	nextStore  *uop  // next in-flight store to the same word (forwarding chain)
	waiterHead *uop  // unissued consumers parked on this producer
	nextWaiter *uop  // link in the producer's waiter list
}

func (u *uop) isStore() bool { return u.inst.Op == isa.ST }

// uopChunk is the arena allocation granularity. In-flight uops are bounded
// by the backend resources (ROB + RS + store queue + p-thread bodies), so a
// run touches only a handful of chunks regardless of instruction count.
const uopChunk = 256

// uopArena hands out recycled uops from a free list, allocating a fresh
// chunk only when the list runs dry.
type uopArena struct {
	free []*uop
}

func (a *uopArena) get() *uop {
	n := len(a.free)
	if n == 0 {
		chunk := make([]uop, uopChunk)
		if cap(a.free) < uopChunk {
			a.free = make([]*uop, 0, uopChunk)
		}
		for i := uopChunk - 1; i >= 1; i-- {
			a.free = append(a.free, &chunk[i])
		}
		return &chunk[0]
	}
	u := a.free[n-1]
	a.free = a.free[:n-1]
	*u = uop{}
	return u
}

// unpin drops one reference; the last reference returns the uop to the arena.
func (s *Sim) unpin(u *uop) {
	if u.pins--; u.pins == 0 {
		s.arena.free = append(s.arena.free, u)
	}
}

// uopRing is a power-of-two circular queue of uops (FIFO). It replaces the
// reslice-and-append pattern whose backing arrays churned an allocation
// every few hundred queue operations.
type uopRing struct {
	buf  []*uop
	head int
	size int
}

func newUopRing(capacity int) uopRing {
	c := 8
	for c < capacity {
		c <<= 1
	}
	return uopRing{buf: make([]*uop, c)}
}

func (r *uopRing) len() int    { return r.size }
func (r *uopRing) front() *uop { return r.buf[r.head] }

func (r *uopRing) push(u *uop) {
	if r.size == len(r.buf) {
		grown := make([]*uop, len(r.buf)*2)
		for i := 0; i < r.size; i++ {
			grown[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.size)&(len(r.buf)-1)] = u
	r.size++
}

func (r *uopRing) pop() *uop {
	u := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.size--
	return u
}

// uopHeap is a binary min-heap of uops. The ready heap keys on winSeq
// (oldest-first issue priority); the pending heap keys on readyMin (next
// maturation). The sift routines are duplicated per key to keep the hot
// path free of indirect calls.
type uopHeap []*uop

func (h *uopHeap) pushReady(u *uop) {
	a := append(*h, u)
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[p].winSeq <= a[i].winSeq {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
	*h = a
}

func (h *uopHeap) popReady() *uop {
	a := *h
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = nil
	a = a[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && a[c+1].winSeq < a[c].winSeq {
			c++
		}
		if a[i].winSeq <= a[c].winSeq {
			break
		}
		a[i], a[c] = a[c], a[i]
		i = c
	}
	*h = a
	return top
}

func (h *uopHeap) pushPending(u *uop) {
	a := append(*h, u)
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[p].readyMin <= a[i].readyMin {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
	*h = a
}

func (h *uopHeap) popPending() *uop {
	a := *h
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = nil
	a = a[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && a[c+1].readyMin < a[c].readyMin {
			c++
		}
		if a[i].readyMin <= a[c].readyMin {
			break
		}
		a[i], a[c] = a[c], a[i]
		i = c
	}
	*h = a
	return top
}

// storeChain is the per-word list of in-flight stores (program order). The
// head is always the oldest, so retirement pops in O(1) and forwarding scans
// only the handful of stores to the load's own word.
type storeChain struct{ head, tail *uop }

// ptContext is one of the additional SMT contexts p-threads run in. The
// pending slice's backing array is reused across launches; head marks the
// injection point so draining never reslices the backing away.
type ptContext struct {
	pending []*uop // body uops, pending[head:] not yet injected
	head    int
	burstAt int64 // next injection cycle
}

func (c *ptContext) busy() bool { return c.head < len(c.pending) }

// Sim is a single timing simulation.
type Sim struct {
	cfg    Config
	prog   *program.Program
	oracle *cpu.State
	pred   *branch.Predictor
	mem    *memsys
	stats  Stats

	cycle int64

	// Precomputed int64 copies of per-cycle config latencies.
	frontEndDepth   int64
	redirectPenalty int64
	agenLat         int64
	forwardLat      int64
	l2Lat           int64

	arena uopArena

	// Front end.
	fetchQ       uopRing
	fetchBlocker *uop // mispredicted branch stalling fetch
	fetchDone    bool

	// Rename state.
	regProd [isa.NumRegs]*uop

	// Backend. The "window" of renamed-but-unissued uops is maintained as an
	// event-driven scheduler instead of a scan list: rsCount tracks its
	// size, readyH holds issuable uops ordered oldest-first (winSeq), and
	// pendingH holds fully folded uops ordered by the cycle they mature;
	// uops still waiting on an unissued producer are parked on that
	// producer's waiter list and are re-scheduled when it issues.
	rsCount  int
	winSeq   int64
	readyH   uopHeap // ready to issue, keyed by winSeq
	pendingH uopHeap // folded, keyed by readyMin

	rob         uopRing // main-thread program order, renamed, not yet retired
	storeQ      uopRing // renamed, unretired stores (for forwarding)
	storeByWord map[int64]storeChain

	// Pre-execution.
	triggers map[int][]*pthread.PThread
	ctxs     []ptContext
	ptBodies map[*pthread.PThread][]isa.Inst // pt.Insts() cached per static p-thread

	// Launch scratch, reused across launches.
	launchRegs []int64
	bodyExec   cpu.BodyExec
}

// New prepares a simulation of prog with the given static p-threads (ignored
// in ModeBase).
func New(prog *program.Program, pts []*pthread.PThread, cfg Config) *Sim {
	cfg = cfg.withDefaults()
	s := &Sim{
		cfg:             cfg,
		prog:            prog,
		oracle:          cpu.New(prog),
		pred:            branch.New(branch.DefaultConfig()),
		triggers:        make(map[int][]*pthread.PThread),
		ctxs:            make([]ptContext, cfg.PtContexts),
		frontEndDepth:   int64(cfg.FrontEndDepth),
		redirectPenalty: int64(cfg.RedirectPenalty),
		agenLat:         int64(cfg.AgenLat),
		forwardLat:      int64(cfg.ForwardLat),
		l2Lat:           int64(cfg.L2Lat),
		fetchQ:          newUopRing(3 * cfg.Width),
		rob:             newUopRing(cfg.ROB),
		storeQ:          newUopRing(cfg.StoreQueue),
		readyH:          make(uopHeap, 0, 2*cfg.Width),
		pendingH:        make(uopHeap, 0, cfg.RS+2*cfg.PtBurst),
		storeByWord:     make(map[int64]storeChain, cfg.StoreQueue),
	}
	s.mem = newMemsys(cfg, &s.stats)
	if cfg.Mode != ModeBase && len(pts) > 0 {
		s.ptBodies = make(map[*pthread.PThread][]isa.Inst, len(pts))
		for _, pt := range pts {
			s.triggers[pt.TriggerPC] = append(s.triggers[pt.TriggerPC], pt)
			s.ptBodies[pt] = pt.Insts()
		}
		s.launchRegs = make([]int64, isa.PtRegs)
	}
	return s
}

// Run simulates to completion and returns the statistics.
func Run(prog *program.Program, pts []*pthread.PThread, cfg Config) (Stats, error) {
	return New(prog, pts, cfg).Run()
}

// RunContext simulates to completion, honouring ctx: a cancelled or expired
// context stops the simulation within a few thousand iterations and returns
// ctx.Err().
func RunContext(ctx context.Context, prog *program.Program, pts []*pthread.PThread, cfg Config) (Stats, error) {
	return New(prog, pts, cfg).RunContext(ctx)
}

// Run executes the simulation loop.
func (s *Sim) Run() (Stats, error) {
	return s.RunContext(context.Background())
}

// ctxCheckMask gates how often the simulation loop polls ctx.Done(): every
// 4096 loop iterations, cheap enough to be invisible in the hot loop yet
// prompt enough (microseconds of host time) for interactive cancellation.
// (Iterations, not cycles: the idle fast-forward makes cycle values sparse.)
const ctxCheckMask = 1<<12 - 1

// unboundedGuard caps the livelock guard. It is astronomically larger than
// any reachable cycle count but far enough from the int64 edge that
// guard-relative arithmetic cannot overflow.
const unboundedGuard = int64(1) << 61

// livelockGuard returns the no-forward-progress backstop for a run of total
// instructions. The naive total*64+1e6 overflows when MaxInsts is the
// unbounded 1<<62 default — wrapping to a small value that falsely tripped
// the guard on unbounded runs longer than ~1M cycles — so it saturates.
func livelockGuard(total int64) int64 {
	if total >= (unboundedGuard-1_000_000)/64 {
		return unboundedGuard
	}
	return total*64 + 1_000_000
}

// RunContext executes the simulation loop under a context.
func (s *Sim) RunContext(ctx context.Context) (Stats, error) {
	total := s.cfg.WarmInsts + s.cfg.MaxInsts
	if total < 0 { // overflow of the "unbounded" default
		total = s.cfg.MaxInsts
	}
	guard := livelockGuard(total) // deadlock/livelock backstop
	done := ctx.Done()
	var warm Stats
	var warmCycle int64
	var iter int64
	warmed := s.cfg.WarmInsts == 0
	for {
		if done != nil && iter&ctxCheckMask == 0 {
			select {
			case <-done:
				return s.stats, ctx.Err()
			default:
			}
		}
		iter++
		retired := s.retire()
		issued := s.issue()
		renamed := s.rename()
		fetched := s.fetch()
		s.cycle++
		if !warmed && s.stats.Retired >= s.cfg.WarmInsts {
			warm = s.stats
			warmCycle = s.cycle
			warmed = true
		}
		if s.stats.Retired >= total {
			break
		}
		if s.fetchDone && s.fetchQ.len() == 0 && s.rob.len() == 0 {
			break
		}
		if !retired && !issued && !renamed && !fetched {
			// Idle cycle: nothing can happen until the earliest in-flight
			// timestamp matures, so jump the clock there. A stalled front
			// end would have counted one FetchStalls per skipped cycle.
			if next := s.nextEventCycle(); next > s.cycle {
				if next > guard+1 {
					next = guard + 1
				}
				if s.fetchBlocker != nil && !s.fetchDone {
					s.stats.FetchStalls += next - s.cycle
				}
				s.cycle = next
			}
		}
		if s.cycle > guard {
			return s.stats, fmt.Errorf("timing: no forward progress after %d cycles (%s)", s.cycle, s.prog.Name)
		}
	}
	st := subStats(s.stats, warm)
	st.Cycles = s.cycle - warmCycle
	if st.Cycles > 0 {
		st.IPC = float64(st.Retired) / float64(st.Cycles)
	}
	if st.Launches > 0 {
		st.AvgPtLen = float64(st.PtInsts) / float64(st.Launches)
	}
	return st, nil
}

// nextEventCycle returns the earliest future cycle at which any pipeline
// stage could make progress, given that the cycle just simulated made none.
// Every stage's enabling condition is a monotone comparison of the clock
// against an in-flight timestamp (completion, delivery, burst, redirect), so
// the minimum of those timestamps bounds the next state change from below;
// extra candidates only shorten the jump, never skip work.
func (s *Sim) nextEventCycle() int64 {
	next := unboundedGuard + 1
	// Retire: the ROB head completes.
	if s.rob.len() > 0 {
		if h := s.rob.front(); h.issued && h.compC < next {
			next = h.compC
		}
	}
	// Issue: the earliest pending uop matures. (Uops parked on an unissued
	// producer wake on that producer's issue — itself a covered event — and
	// a non-empty ready heap would have made this a work cycle.)
	if len(s.pendingH) > 0 {
		if r := s.pendingH[0].readyMin; r < next {
			next = r
		}
	}
	// Rename: a p-thread burst comes due (bursts blocked on the RS throttle
	// instead wait on an issue event), or the front-end head is delivered.
	for i := range s.ctxs {
		if c := &s.ctxs[i]; c.busy() && c.burstAt >= s.cycle && c.burstAt < next {
			next = c.burstAt
		}
	}
	if s.fetchQ.len() > 0 {
		if h := s.fetchQ.front(); h.availC < next {
			next = h.availC
		}
	}
	// Fetch: a resolved mispredicted branch finishes its redirect penalty.
	if b := s.fetchBlocker; b != nil && b.issued {
		if r := b.compC + s.redirectPenalty; r < next {
			next = r
		}
	}
	return next
}

// subStats returns the measured-region statistics: totals minus the warm-up
// snapshot.
func subStats(total, warm Stats) Stats {
	return Stats{
		Retired:           total.Retired - warm.Retired,
		Launches:          total.Launches - warm.Launches,
		Drops:             total.Drops - warm.Drops,
		PtInsts:           total.PtInsts - warm.PtInsts,
		Loads:             total.Loads - warm.Loads,
		L2Misses:          total.L2Misses - warm.L2Misses,
		MissesCovered:     total.MissesCovered - warm.MissesCovered,
		MissesFullCovered: total.MissesFullCovered - warm.MissesFullCovered,
		BrLookups:         total.BrLookups - warm.BrLookups,
		BrMispred:         total.BrMispred - warm.BrMispred,
		FetchStalls:       total.FetchStalls - warm.FetchStalls,
	}
}

// fetch advances the functional oracle up to Width instructions, consulting
// the branch predictor; a misprediction blocks fetch until the branch
// resolves plus the redirect penalty. It reports whether any state changed
// (FetchStalls accounting aside).
func (s *Sim) fetch() bool {
	if s.fetchDone {
		return false
	}
	work := false
	if b := s.fetchBlocker; b != nil {
		if !b.issued || s.cycle < b.compC+s.redirectPenalty {
			s.stats.FetchStalls++
			return false
		}
		s.fetchBlocker = nil
		s.unpin(b)
		work = true
	}
	if s.fetchQ.len() >= 2*s.cfg.Width {
		return work // front-end buffer full
	}
	for n := 0; n < s.cfg.Width; n++ {
		if s.oracle.Halted {
			s.fetchDone = true
			return true
		}
		e, err := s.oracle.Step()
		if err != nil {
			s.fetchDone = true
			return true
		}
		u := s.arena.get()
		u.seq, u.pc, u.inst, u.effAddr = e.Seq, e.PC, e.Inst, e.EffAddr
		u.availC = s.cycle + s.frontEndDepth
		u.pins = 1 // fetch queue
		s.fetchQ.push(u)
		work = true
		switch isa.ClassOf(e.Inst.Op) {
		case isa.ClassBranch:
			s.stats.BrLookups++
			_, correct := s.pred.PredictAndTrain(e.PC, e.Taken)
			if !correct {
				s.stats.BrMispred++
				u.pins++ // fetch blocker
				s.fetchBlocker = u
				return true
			}
			if e.Taken {
				return true // fetch break on taken branch
			}
		case isa.ClassJump:
			if e.Inst.Op == isa.JR {
				// Indirect: needs the BTB for its target.
				if s.pred.BTBLookup(e.PC) != e.NextPC {
					s.stats.BrMispred++
					u.pins++ // fetch blocker
					s.fetchBlocker = u
					s.pred.BTBInsert(e.PC, e.NextPC)
					return true
				}
			}
			return true // fetch break on taken control
		case isa.ClassHalt:
			s.fetchDone = true
			return true
		}
	}
	return work
}

// rename moves instructions from the front end into the backend, injects
// p-thread bursts (stealing sequencing slots), and launches p-threads when
// triggers rename. It reports whether anything was injected or renamed.
func (s *Sim) rename() bool {
	budget := s.cfg.Width
	work := false

	// P-thread injection first: bursts preempt main-thread slots. Injection
	// is throttled when the shared reservation stations back up, leaving
	// headroom for the main thread (ICOUNT-style SMT fairness): without
	// this, long p-thread bodies full of cache misses would park in the RS
	// and starve the main thread outright. rsCount tracks exactly the
	// renamed-but-unissued uops, i.e. the RS occupancy.
	rsHeadroom := s.cfg.RS - 2*s.cfg.Width
	for i := range s.ctxs {
		ctx := &s.ctxs[i]
		if !ctx.busy() || s.cycle < ctx.burstAt {
			continue
		}
		if !s.cfg.NoRSThrottle && s.cfg.Mode != ModeOverheadSequence && s.rsCount >= rsHeadroom {
			continue // retry next cycle
		}
		n := s.cfg.PtBurst
		if pend := len(ctx.pending) - ctx.head; n > pend {
			n = pend
		}
		if s.cfg.Mode != ModeLatencyOnly {
			if n > budget {
				n = budget
			}
			budget -= n
		}
		if n == 0 {
			continue
		}
		for _, u := range ctx.pending[ctx.head : ctx.head+n] {
			s.stats.PtInsts++
			if s.cfg.Mode == ModeOverheadSequence {
				s.unpin(u) // sequenced and immediately discarded
				continue
			}
			u.availC = s.cycle
			u.pins++ // scheduler
			s.enterWindow(u)
			s.unpin(u) // pending slot released
		}
		ctx.head += n
		if ctx.head == len(ctx.pending) {
			ctx.pending = ctx.pending[:0]
			ctx.head = 0
		}
		ctx.burstAt = s.cycle + int64(s.cfg.PtBurst)
		work = true
	}

	// Main thread.
	for budget > 0 && s.fetchQ.len() > 0 {
		u := s.fetchQ.front()
		if u.availC > s.cycle || s.rob.len() >= s.cfg.ROB || s.rsCount >= s.cfg.RS {
			return work
		}
		if u.isStore() && s.storeQ.len() >= s.cfg.StoreQueue {
			return work
		}
		s.fetchQ.pop()
		budget--
		work = true
		// Resolve producers from the rename table. (Retired producers are
		// cleared from the table at retirement, so a non-nil entry is live.)
		srcs, ns := u.inst.Sources()
		for i := 0; i < ns; i++ {
			if srcs[i] != isa.Zero {
				if p := s.regProd[srcs[i]]; p != nil {
					u.prod[i] = p
					p.pins++
				}
			}
		}
		if u.inst.HasDest() {
			if old := s.regProd[u.inst.Rd]; old != nil {
				s.unpin(old)
			}
			s.regProd[u.inst.Rd] = u
			u.pins++
		}
		if u.isStore() {
			u.pins++ // store queue
			s.storeQ.push(u)
			w := u.effAddr &^ 7
			c := s.storeByWord[w]
			if c.head == nil {
				c.head = u
			} else {
				c.tail.nextStore = u
			}
			c.tail = u
			s.storeByWord[w] = c
		}
		u.pins += 2 // ROB + scheduler
		s.rob.push(u)
		s.enterWindow(u)
		if pts := s.triggers[u.pc]; pts != nil {
			s.launch(pts, u)
		}
		s.unpin(u) // fetch-queue slot released
	}
	return work
}

// enterWindow admits a renamed uop to the issue scheduler: it takes the next
// age stamp, counts against the reservation stations, and is folded/parked
// by schedule. The caller has already pinned the scheduler reference.
func (s *Sim) enterWindow(u *uop) {
	u.winSeq = s.winSeq
	s.winSeq++
	s.rsCount++
	s.schedule(u)
}

// schedule folds the completion times of already-issued producers into u's
// ready time, releasing each folded producer reference, and then places u:
// parked on the first still-unissued producer's waiter list (to be
// re-scheduled when it issues), ready for issue, or pending until its ready
// cycle matures.
func (s *Sim) schedule(u *uop) {
	for i, p := range u.prod {
		if p == nil {
			continue
		}
		if !p.issued {
			u.nextWaiter = p.waiterHead
			p.waiterHead = u
			return
		}
		if p.compC > u.readyMin {
			u.readyMin = p.compC
		}
		u.prod[i] = nil
		s.unpin(p)
	}
	if u.readyMin <= s.cycle {
		s.readyH.pushReady(u)
	} else {
		s.pendingH.pushPending(u)
	}
}

// launch starts dynamic instances of the static p-threads triggered by u.
func (s *Sim) launch(pts []*pthread.PThread, trigger *uop) {
	for _, pt := range pts {
		if !pt.ActiveAt(trigger.seq) {
			continue
		}
		var ctx *ptContext
		for i := range s.ctxs {
			if c := &s.ctxs[i]; !c.busy() {
				ctx = c
				break
			}
		}
		if ctx == nil {
			s.stats.Drops++
			continue
		}
		s.stats.Launches++
		ctx.pending = ctx.pending[:0]
		ctx.head = 0
		if s.cfg.Mode == ModeOverheadSequence {
			// Bodies are discarded at injection; only sizes matter.
			for range pt.Body {
				pu := s.arena.get()
				pu.seq, pu.isPt, pu.pins = -1, true, 1
				ctx.pending = append(ctx.pending, pu)
			}
			ctx.burstAt = s.cycle + 1
			continue
		}
		// Execute the body functionally against the current architectural
		// state to learn its effective addresses.
		regs := s.launchRegs
		copy(regs[:isa.NumRegs], s.oracle.Regs[:])
		clear(regs[isa.NumRegs:])
		res := s.bodyExec.Exec(s.ptBodies[pt], regs, s.oracle.Mem)
		for i, bi := range pt.Body {
			pu := s.arena.get()
			pu.seq, pu.isPt = -1, true
			pu.inst = bi.Inst
			pu.effAddr = res.EffAddrs[i]
			pu.readyMin = s.cycle
			pu.pins = 1 // pending slot
			for k := 0; k < 2; k++ {
				switch d := bi.Dep[k]; {
				case d >= 0 && d < i:
					p := ctx.pending[d]
					pu.prod[k] = p
					p.pins++
				case d == pthread.DepTrigger:
					pu.prod[k] = trigger
					trigger.pins++
				}
			}
			if d := bi.MemDep; d >= 0 && d < i {
				p := ctx.pending[d]
				pu.prod[2] = p
				p.pins++
			}
			pu.fwdHit = res.FromStoreBuf[i]
			ctx.pending = append(ctx.pending, pu)
		}
		ctx.burstAt = s.cycle + 1
	}
}

// issue selects up to Width ready instructions (oldest first) and computes
// their completion times, including memory access. Matured pending uops
// move to the ready heap first; issuing a uop wakes the consumers parked on
// it. It reports whether anything issued.
func (s *Sim) issue() bool {
	for len(s.pendingH) > 0 && s.pendingH[0].readyMin <= s.cycle {
		s.readyH.pushReady(s.pendingH.popPending())
	}
	issued := 0
	for issued < s.cfg.Width && len(s.readyH) > 0 {
		u := s.readyH.popReady()
		issued++
		u.issued = true
		u.compC = s.complete(u)
		s.rsCount--
		for w := u.waiterHead; w != nil; {
			next := w.nextWaiter
			w.nextWaiter = nil
			s.schedule(w) // folds u's completion; parks or enqueues w
			w = next
		}
		u.waiterHead = nil
		s.unpin(u) // scheduler reference released
	}
	return issued > 0
}

// complete computes u's completion cycle given that it issues now.
func (s *Sim) complete(u *uop) int64 {
	now := s.cycle
	switch isa.ClassOf(u.inst.Op) {
	case isa.ClassLoad:
		t := now + s.agenLat
		if u.isPt {
			if u.fwdHit {
				return t + s.forwardLat
			}
			if s.cfg.Mode == ModeOverheadExecute {
				// Execute but do not access the data cache (§4.3).
				return t + s.l2Lat
			}
			return s.mem.ptLoad(u.effAddr, t)
		}
		s.stats.Loads++
		if s.forwardFrom(u) {
			u.fwdHit = true
			return t + s.forwardLat
		}
		return s.mem.mainLoad(u.effAddr, t)
	case isa.ClassStore:
		return now + s.agenLat
	case isa.ClassMul:
		return now + int64(isa.Latency(u.inst.Op))
	default:
		return now + 1
	}
}

// forwardFrom reports whether an older in-flight store to the same word can
// forward to the load. The per-word chain is in program order, so the scan
// stops at the first store younger than the load.
func (s *Sim) forwardFrom(ld *uop) bool {
	for st := s.storeByWord[ld.effAddr&^7].head; st != nil && st.seq < ld.seq; st = st.nextStore {
		if st.issued {
			return true
		}
	}
	return false
}

// retire commits up to Width completed instructions in program order;
// retiring stores update the memory system. It reports whether anything
// retired.
func (s *Sim) retire() bool {
	n := 0
	for n < s.cfg.Width && s.rob.len() > 0 {
		u := s.rob.front()
		if !u.issued || u.compC > s.cycle {
			break
		}
		s.rob.pop()
		if u.isStore() {
			s.mem.mainStore(u.effAddr, s.cycle)
			// The retiring store is the oldest in flight, hence both the
			// store-queue front and its word chain's head.
			s.storeQ.pop()
			w := u.effAddr &^ 7
			c := s.storeByWord[w]
			c.head = u.nextStore
			u.nextStore = nil
			if c.head == nil {
				delete(s.storeByWord, w)
			} else {
				s.storeByWord[w] = c
			}
			s.unpin(u)
		}
		if u.inst.HasDest() && s.regProd[u.inst.Rd] == u {
			s.regProd[u.inst.Rd] = nil
			s.unpin(u)
		}
		s.stats.Retired++
		n++
		s.unpin(u) // ROB slot released
	}
	return n > 0
}
