package timing

import (
	"context"
	"fmt"

	"preexec/internal/branch"
	"preexec/internal/cpu"
	"preexec/internal/isa"
	"preexec/internal/program"
	"preexec/internal/pthread"
)

// uop is one in-flight instruction (main-thread or p-thread).
type uop struct {
	seq     int64 // main-thread dynamic index; -1 for p-thread uops
	pc      int
	inst    isa.Inst
	effAddr int64

	prod     [3]*uop // register (0,1) and memory/extra (2) producers
	readyMin int64   // earliest issue cycle from non-uop inputs (live-ins)

	availC  int64 // cycle the front end delivers it to rename
	renamed bool
	issued  bool
	compC   int64
	retired bool

	isPt    bool
	fwdHit  bool // load satisfied by store-queue / p-thread store buffer
	mispred bool
}

func (u *uop) isLoad() bool  { return u.inst.Op == isa.LD }
func (u *uop) isStore() bool { return u.inst.Op == isa.ST }

// ptContext is one of the additional SMT contexts p-threads run in.
type ptContext struct {
	pending []*uop // body uops not yet injected
	burstAt int64  // next injection cycle
}

func (c *ptContext) busy() bool { return len(c.pending) > 0 }

// Sim is a single timing simulation.
type Sim struct {
	cfg    Config
	prog   *program.Program
	oracle *cpu.State
	pred   *branch.Predictor
	mem    *memsys
	stats  Stats

	cycle int64

	// Front end.
	fetchQ       []*uop
	fetchBlocker *uop // mispredicted branch stalling fetch
	fetchDone    bool

	// Rename state.
	regProd [isa.NumRegs]*uop

	// Backend.
	rob    []*uop // main-thread program order, renamed, not yet retired
	window []*uop // renamed, not yet issued (main + pt)
	storeQ []*uop // renamed, unretired stores (for forwarding)

	// Pre-execution.
	triggers map[int][]*pthread.PThread
	ctxs     []*ptContext
}

// New prepares a simulation of prog with the given static p-threads (ignored
// in ModeBase).
func New(prog *program.Program, pts []*pthread.PThread, cfg Config) *Sim {
	cfg = cfg.withDefaults()
	s := &Sim{
		cfg:      cfg,
		prog:     prog,
		oracle:   cpu.New(prog),
		pred:     branch.New(branch.DefaultConfig()),
		triggers: make(map[int][]*pthread.PThread),
		ctxs:     make([]*ptContext, cfg.PtContexts),
	}
	s.mem = newMemsys(cfg, &s.stats)
	for i := range s.ctxs {
		s.ctxs[i] = &ptContext{}
	}
	if cfg.Mode != ModeBase {
		for _, pt := range pts {
			s.triggers[pt.TriggerPC] = append(s.triggers[pt.TriggerPC], pt)
		}
	}
	return s
}

// Run simulates to completion and returns the statistics.
func Run(prog *program.Program, pts []*pthread.PThread, cfg Config) (Stats, error) {
	return New(prog, pts, cfg).Run()
}

// RunContext simulates to completion, honouring ctx: a cancelled or expired
// context stops the simulation within a few thousand cycles and returns
// ctx.Err().
func RunContext(ctx context.Context, prog *program.Program, pts []*pthread.PThread, cfg Config) (Stats, error) {
	return New(prog, pts, cfg).RunContext(ctx)
}

// Run executes the simulation loop.
func (s *Sim) Run() (Stats, error) {
	return s.RunContext(context.Background())
}

// ctxCheckMask gates how often the simulation loop polls ctx.Done(): every
// 4096 cycles, cheap enough to be invisible in the hot loop yet prompt
// enough (microseconds of host time) for interactive cancellation.
const ctxCheckMask = 1<<12 - 1

// RunContext executes the simulation loop under a context.
func (s *Sim) RunContext(ctx context.Context) (Stats, error) {
	total := s.cfg.WarmInsts + s.cfg.MaxInsts
	if total < 0 { // overflow of the "unbounded" default
		total = s.cfg.MaxInsts
	}
	guard := total*64 + 1_000_000 // deadlock/livelock backstop
	done := ctx.Done()
	var warm Stats
	var warmCycle int64
	warmed := s.cfg.WarmInsts == 0
	for {
		if done != nil && s.cycle&ctxCheckMask == 0 {
			select {
			case <-done:
				return s.stats, ctx.Err()
			default:
			}
		}
		s.retire()
		s.issue()
		s.rename()
		s.fetch()
		s.cycle++
		if !warmed && s.stats.Retired >= s.cfg.WarmInsts {
			warm = s.stats
			warmCycle = s.cycle
			warmed = true
		}
		if s.stats.Retired >= total {
			break
		}
		if s.fetchDone && len(s.fetchQ) == 0 && len(s.rob) == 0 {
			break
		}
		if s.cycle > guard {
			return s.stats, fmt.Errorf("timing: no forward progress after %d cycles (%s)", s.cycle, s.prog.Name)
		}
	}
	st := subStats(s.stats, warm)
	st.Cycles = s.cycle - warmCycle
	if st.Cycles > 0 {
		st.IPC = float64(st.Retired) / float64(st.Cycles)
	}
	if st.Launches > 0 {
		st.AvgPtLen = float64(st.PtInsts) / float64(st.Launches)
	}
	return st, nil
}

// subStats returns the measured-region statistics: totals minus the warm-up
// snapshot.
func subStats(total, warm Stats) Stats {
	return Stats{
		Retired:           total.Retired - warm.Retired,
		Launches:          total.Launches - warm.Launches,
		Drops:             total.Drops - warm.Drops,
		PtInsts:           total.PtInsts - warm.PtInsts,
		Loads:             total.Loads - warm.Loads,
		L2Misses:          total.L2Misses - warm.L2Misses,
		MissesCovered:     total.MissesCovered - warm.MissesCovered,
		MissesFullCovered: total.MissesFullCovered - warm.MissesFullCovered,
		BrLookups:         total.BrLookups - warm.BrLookups,
		BrMispred:         total.BrMispred - warm.BrMispred,
		FetchStalls:       total.FetchStalls - warm.FetchStalls,
	}
}

// fetch advances the functional oracle up to Width instructions, consulting
// the branch predictor; a misprediction blocks fetch until the branch
// resolves plus the redirect penalty.
func (s *Sim) fetch() {
	if s.fetchDone {
		return
	}
	if s.fetchBlocker != nil {
		b := s.fetchBlocker
		if !b.issued || s.cycle < b.compC+int64(s.cfg.RedirectPenalty) {
			s.stats.FetchStalls++
			return
		}
		s.fetchBlocker = nil
	}
	if len(s.fetchQ) >= 2*s.cfg.Width {
		return // front-end buffer full
	}
	for n := 0; n < s.cfg.Width; n++ {
		if s.oracle.Halted {
			s.fetchDone = true
			return
		}
		e, err := s.oracle.Step()
		if err != nil {
			s.fetchDone = true
			return
		}
		u := &uop{
			seq: e.Seq, pc: e.PC, inst: e.Inst, effAddr: e.EffAddr,
			availC: s.cycle + int64(s.cfg.FrontEndDepth),
		}
		s.fetchQ = append(s.fetchQ, u)
		switch isa.ClassOf(e.Inst.Op) {
		case isa.ClassBranch:
			s.stats.BrLookups++
			_, correct := s.pred.PredictAndTrain(e.PC, e.Taken)
			if !correct {
				s.stats.BrMispred++
				u.mispred = true
				s.fetchBlocker = u
				return
			}
			if e.Taken {
				return // fetch break on taken branch
			}
		case isa.ClassJump:
			if e.Inst.Op == isa.JR {
				// Indirect: needs the BTB for its target.
				if s.pred.BTBLookup(e.PC) != e.NextPC {
					s.stats.BrMispred++
					u.mispred = true
					s.fetchBlocker = u
					s.pred.BTBInsert(e.PC, e.NextPC)
					return
				}
			}
			return // fetch break on taken control
		case isa.ClassHalt:
			s.fetchDone = true
			return
		}
	}
}

// rename moves instructions from the front end into the backend, injects
// p-thread bursts (stealing sequencing slots), and launches p-threads when
// triggers rename.
func (s *Sim) rename() {
	budget := s.cfg.Width

	// P-thread injection first: bursts preempt main-thread slots. Injection
	// is throttled when the shared reservation stations back up, leaving
	// headroom for the main thread (ICOUNT-style SMT fairness): without
	// this, long p-thread bodies full of cache misses would park in the RS
	// and starve the main thread outright.
	rsHeadroom := s.cfg.RS - 2*s.cfg.Width
	for _, ctx := range s.ctxs {
		if !ctx.busy() || s.cycle < ctx.burstAt {
			continue
		}
		if !s.cfg.NoRSThrottle && s.cfg.Mode != ModeOverheadSequence && s.rsUsed() >= rsHeadroom {
			continue // retry next cycle
		}
		n := s.cfg.PtBurst
		if n > len(ctx.pending) {
			n = len(ctx.pending)
		}
		if s.cfg.Mode != ModeLatencyOnly {
			if n > budget {
				n = budget
			}
			budget -= n
		}
		if n == 0 {
			continue
		}
		for _, u := range ctx.pending[:n] {
			s.stats.PtInsts++
			if s.cfg.Mode == ModeOverheadSequence {
				continue // sequenced and immediately discarded
			}
			u.renamed = true
			u.availC = s.cycle
			s.window = append(s.window, u)
		}
		ctx.pending = ctx.pending[n:]
		ctx.burstAt = s.cycle + int64(s.cfg.PtBurst)
	}

	// Main thread.
	for budget > 0 && len(s.fetchQ) > 0 {
		u := s.fetchQ[0]
		if u.availC > s.cycle || len(s.rob) >= s.cfg.ROB || s.rsUsed() >= s.cfg.RS {
			return
		}
		if u.isStore() && len(s.storeQ) >= s.cfg.StoreQueue {
			return
		}
		s.fetchQ = s.fetchQ[1:]
		budget--
		u.renamed = true
		// Resolve producers from the rename table.
		srcs, ns := u.inst.Sources()
		for i := 0; i < ns; i++ {
			if srcs[i] != isa.Zero {
				if p := s.regProd[srcs[i]]; p != nil && !p.retired {
					u.prod[i] = p
				}
			}
		}
		if u.inst.HasDest() {
			s.regProd[u.inst.Rd] = u
		}
		if u.isStore() {
			s.storeQ = append(s.storeQ, u)
		}
		s.rob = append(s.rob, u)
		s.window = append(s.window, u)
		if pts := s.triggers[u.pc]; pts != nil {
			s.launch(pts, u)
		}
	}
}

func (s *Sim) rsUsed() int {
	n := 0
	for _, u := range s.window {
		if !u.issued {
			n++
		}
	}
	return n
}

// launch starts dynamic instances of the static p-threads triggered by u.
func (s *Sim) launch(pts []*pthread.PThread, trigger *uop) {
	for _, pt := range pts {
		if !pt.ActiveAt(trigger.seq) {
			continue
		}
		var ctx *ptContext
		for _, c := range s.ctxs {
			if !c.busy() {
				ctx = c
				break
			}
		}
		if ctx == nil {
			s.stats.Drops++
			continue
		}
		s.stats.Launches++
		if s.cfg.Mode == ModeOverheadSequence {
			// Bodies are discarded at injection; only sizes matter.
			ctx.pending = make([]*uop, pt.Size())
			for i := range ctx.pending {
				ctx.pending[i] = &uop{seq: -1, isPt: true, inst: pt.Body[i].Inst}
			}
			ctx.burstAt = s.cycle + 1
			continue
		}
		// Execute the body functionally against the current architectural
		// state to learn its effective addresses.
		regs := make([]int64, isa.PtRegs)
		copy(regs[:isa.NumRegs], s.oracle.Regs[:])
		res := cpu.ExecBody(pt.Insts(), regs, s.oracle.Mem)
		uops := make([]*uop, len(pt.Body))
		for i, bi := range pt.Body {
			pu := &uop{seq: -1, isPt: true, inst: bi.Inst, effAddr: res.EffAddrs[i], readyMin: s.cycle}
			for k := 0; k < 2; k++ {
				switch d := bi.Dep[k]; {
				case d >= 0:
					pu.prod[k] = uops[d]
				case d == pthread.DepTrigger:
					pu.prod[k] = trigger
				}
			}
			if bi.MemDep >= 0 {
				pu.prod[2] = uops[bi.MemDep]
			}
			pu.fwdHit = res.FromStoreBuf[i]
			uops[i] = pu
		}
		ctx.pending = uops
		ctx.burstAt = s.cycle + 1
	}
}

// issue selects up to Width ready instructions (oldest first) and computes
// their completion times, including memory access.
func (s *Sim) issue() {
	slots := s.cfg.Width
	kept := s.window[:0]
	for _, u := range s.window {
		if u.issued {
			continue
		}
		if slots == 0 || !s.ready(u) {
			kept = append(kept, u)
			continue
		}
		slots--
		u.issued = true
		u.compC = s.complete(u)
	}
	s.window = kept
}

// ready reports whether all of u's inputs are available this cycle.
func (s *Sim) ready(u *uop) bool {
	if u.readyMin > s.cycle {
		return false
	}
	for _, p := range u.prod {
		if p == nil {
			continue
		}
		if !p.issued || p.compC > s.cycle {
			return false
		}
	}
	return true
}

// complete computes u's completion cycle given that it issues now.
func (s *Sim) complete(u *uop) int64 {
	now := s.cycle
	switch isa.ClassOf(u.inst.Op) {
	case isa.ClassLoad:
		t := now + int64(s.cfg.AgenLat)
		if u.isPt {
			if u.fwdHit {
				return t + int64(s.cfg.ForwardLat)
			}
			if s.cfg.Mode == ModeOverheadExecute {
				// Execute but do not access the data cache (§4.3).
				return t + int64(s.cfg.L2Lat)
			}
			return s.mem.ptLoad(u.effAddr, t)
		}
		s.stats.Loads++
		if s.forwardFrom(u) {
			u.fwdHit = true
			return t + int64(s.cfg.ForwardLat)
		}
		return s.mem.mainLoad(u.effAddr, t)
	case isa.ClassStore:
		return now + int64(s.cfg.AgenLat)
	case isa.ClassMul:
		return now + int64(isa.Latency(u.inst.Op))
	default:
		return now + 1
	}
}

// forwardFrom reports whether an older in-flight store to the same word can
// forward to the load.
func (s *Sim) forwardFrom(ld *uop) bool {
	for i := len(s.storeQ) - 1; i >= 0; i-- {
		st := s.storeQ[i]
		if st.seq < ld.seq && st.issued && st.effAddr&^7 == ld.effAddr&^7 {
			return true
		}
	}
	return false
}

// retire commits up to Width completed instructions in program order;
// retiring stores update the memory system.
func (s *Sim) retire() {
	n := 0
	for n < s.cfg.Width && len(s.rob) > 0 {
		u := s.rob[0]
		if !u.issued || u.compC > s.cycle {
			return
		}
		u.retired = true
		s.rob = s.rob[1:]
		if u.isStore() {
			s.mem.mainStore(u.effAddr, s.cycle)
			// Remove from the store queue.
			for i, st := range s.storeQ {
				if st == u {
					s.storeQ = append(s.storeQ[:i], s.storeQ[i+1:]...)
					break
				}
			}
		}
		s.stats.Retired++
		n++
	}
}
