package timing

import (
	"testing"

	"preexec/internal/advantage"
	"preexec/internal/isa"
	"preexec/internal/program"
	"preexec/internal/pthread"
	"preexec/internal/selector"
	"preexec/internal/slice"
	"preexec/internal/workload"
)

func smallCfg(maxInsts int64) Config {
	cfg := DefaultConfig()
	cfg.MaxInsts = maxInsts
	return cfg
}

func buildLinear(t *testing.T, n int) *program.Program {
	t.Helper()
	b := program.NewBuilder("linear")
	for i := 0; i < n; i++ {
		b.Addi(1, 1, 1)
	}
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBaseLinearChainIPC(t *testing.T) {
	// A serial dependence chain retires ~1 instruction per cycle.
	st, err := Run(buildLinear(t, 2000), nil, smallCfg(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	if st.Retired != 2001 {
		t.Errorf("retired = %d, want 2001", st.Retired)
	}
	if st.IPC < 0.7 || st.IPC > 1.1 {
		t.Errorf("serial-chain IPC = %.2f, want ~1", st.IPC)
	}
}

func TestBaseIndependentOpsIPC(t *testing.T) {
	// Independent instructions should approach the machine width.
	b := program.NewBuilder("wide")
	for i := 0; i < 500; i++ {
		for r := isa.Reg(1); r <= 6; r++ {
			b.Addi(2+r, 1, int64(r)) // all read r1, write distinct regs
		}
	}
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(p, nil, smallCfg(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	if st.IPC < 3 {
		t.Errorf("independent-ops IPC = %.2f, want > 3", st.IPC)
	}
}

func TestMemoryLatencyHurts(t *testing.T) {
	// A pointer chase over an L2-hostile working set must run much slower
	// than the same instruction count of ALU work.
	w, _ := workload.ByName("mcf")
	p := w.Build(1)
	cfg := smallCfg(100_000)
	st, err := Run(p, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.IPC > 0.8 {
		t.Errorf("mcf IPC = %.2f, want < 0.8 (memory bound)", st.IPC)
	}
	if st.L2Misses == 0 {
		t.Error("mcf produced no L2 misses in timing simulation")
	}
}

func TestShorterMemLatHelps(t *testing.T) {
	w, _ := workload.ByName("vpr.r")
	p := w.Build(1)
	slow := smallCfg(80_000)
	slow.MemLat = 140
	fast := smallCfg(80_000)
	fast.MemLat = 35
	sSlow, err := Run(p, nil, slow)
	if err != nil {
		t.Fatal(err)
	}
	sFast, err := Run(p, nil, fast)
	if err != nil {
		t.Fatal(err)
	}
	if sFast.IPC <= sSlow.IPC {
		t.Errorf("IPC with 35-cycle memory (%.2f) should beat 140-cycle (%.2f)", sFast.IPC, sSlow.IPC)
	}
}

func TestBranchMispredictionsCounted(t *testing.T) {
	// A data-dependent unpredictable branch must show mispredictions.
	b := program.NewBuilder("br")
	b.Li(1, 0).Li(2, 12345).Li(3, 5000).Li(6, 0)
	b.Label("loop").
		Bge(1, 3, "exit").
		// xorshift step: low bit is pseudo-random.
		Srli(4, 2, 7).Xor(2, 2, 4).Slli(4, 2, 9).Xor(2, 2, 4).
		Andi(5, 2, 1).
		Beq(5, 0, "skip").
		Addi(6, 6, 1).
		Label("skip").
		Addi(1, 1, 1).
		J("loop")
	b.Label("exit").Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(p, nil, smallCfg(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	if st.BrMispred == 0 {
		t.Error("unpredictable branch produced no mispredictions")
	}
	rate := float64(st.BrMispred) / float64(st.BrLookups)
	if rate < 0.1 {
		t.Errorf("mispredict rate = %.3f, want >= 0.1 for a random branch", rate)
	}
}

// endToEnd profiles a workload, selects p-threads, and returns base and
// pre-execution stats.
func endToEnd(t *testing.T, name string, maxInsts int64, mode Mode) (Stats, Stats, []*pthread.PThread) {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog := w.Build(1)
	const warm = 30_000
	baseCfg := smallCfg(maxInsts)
	baseCfg.WarmInsts = warm
	base, err := Run(prog, nil, baseCfg)
	if err != nil {
		t.Fatal(err)
	}
	forest, err := slice.ProfileWhole(prog, slice.ProfileOptions{WarmInsts: warm, MaxInsts: maxInsts})
	if err != nil {
		t.Fatal(err)
	}
	params := advantage.DefaultParams(base.IPC)
	res := selector.SelectForest(forest, selector.Options{Params: params, Merge: true})
	cfg := smallCfg(maxInsts)
	cfg.WarmInsts = warm
	cfg.Mode = mode
	pre, err := Run(prog, res.PThreads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return base, pre, res.PThreads
}

func TestPreExecutionImprovesVprP(t *testing.T) {
	base, pre, pts := endToEnd(t, "vpr.p", 120_000, ModeNormal)
	if len(pts) == 0 {
		t.Fatal("no p-threads selected for vpr.p")
	}
	if pre.Launches == 0 {
		t.Fatal("no p-threads launched")
	}
	if pre.MissesCovered == 0 {
		t.Fatal("no misses covered")
	}
	if pre.IPC <= base.IPC {
		t.Errorf("pre-execution IPC %.3f should beat base %.3f on vpr.p", pre.IPC, base.IPC)
	}
}

func TestPreExecutionImprovesVprR(t *testing.T) {
	base, pre, _ := endToEnd(t, "vpr.r", 120_000, ModeNormal)
	if pre.IPC <= base.IPC {
		t.Errorf("pre-execution IPC %.3f should beat base %.3f on vpr.r", pre.IPC, base.IPC)
	}
	if pre.MissesFullCovered == 0 {
		t.Error("expected some fully covered misses on vpr.r")
	}
}

func TestCraftySelectsLittle(t *testing.T) {
	base, pre, _ := endToEnd(t, "crafty", 120_000, ModeNormal)
	// crafty has (almost) nothing to cover; pre-execution must not change
	// performance much in either direction (paper: -1%).
	ratio := pre.IPC / base.IPC
	if ratio < 0.93 || ratio > 1.07 {
		t.Errorf("crafty pre/base IPC ratio = %.3f, want ~1", ratio)
	}
}

func TestOverheadModesCostWithoutBenefit(t *testing.T) {
	base, seq, pts := endToEnd(t, "vpr.p", 100_000, ModeOverheadSequence)
	if len(pts) == 0 {
		t.Skip("no p-threads selected")
	}
	if seq.MissesCovered != 0 {
		t.Error("overhead-sequence mode must not cover misses")
	}
	if seq.IPC > base.IPC*1.02 {
		t.Errorf("overhead-only IPC %.3f should not beat base %.3f", seq.IPC, base.IPC)
	}
	_, exec, _ := endToEnd(t, "vpr.p", 100_000, ModeOverheadExecute)
	if exec.MissesCovered != 0 {
		t.Error("overhead-execute mode must not cover misses")
	}
	if exec.PtInsts == 0 || seq.PtInsts == 0 {
		t.Error("overhead modes must still inject p-thread instructions")
	}
}

func TestLatencyOnlyModeAtLeastNormal(t *testing.T) {
	_, norm, _ := endToEnd(t, "vpr.p", 100_000, ModeNormal)
	_, lat, _ := endToEnd(t, "vpr.p", 100_000, ModeLatencyOnly)
	// Not charging sequencing bandwidth can only help.
	if lat.IPC < norm.IPC*0.97 {
		t.Errorf("latency-only IPC %.3f should be >= normal %.3f", lat.IPC, norm.IPC)
	}
}

func TestModeBaseIgnoresPThreads(t *testing.T) {
	w, _ := workload.ByName("vpr.p")
	prog := w.Build(1)
	pt := &pthread.PThread{TriggerPC: 0, Roots: []int{0}, Body: nil}
	st, err := Run(prog, []*pthread.PThread{pt}, smallCfg(50_000))
	if err != nil {
		t.Fatal(err)
	}
	if st.Launches != 0 || st.PtInsts != 0 {
		t.Error("ModeBase must not launch p-threads")
	}
}

func TestContextDropsHappenWhenContextsScarce(t *testing.T) {
	w, _ := workload.ByName("vpr.p")
	prog := w.Build(1)
	forest, err := slice.ProfileWhole(prog, slice.ProfileOptions{MaxInsts: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	res := selector.SelectForest(forest, selector.Options{Params: advantage.DefaultParams(1.5)})
	if len(res.PThreads) == 0 {
		t.Skip("nothing selected")
	}
	cfg := smallCfg(100_000)
	cfg.Mode = ModeNormal
	cfg.PtContexts = 1
	one, err := Run(prog, res.PThreads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.PtContexts = 8
	many, err := Run(prog, res.PThreads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if one.Drops <= many.Drops {
		t.Errorf("1-context drops (%d) should exceed 8-context drops (%d)", one.Drops, many.Drops)
	}
}

func TestRegionGating(t *testing.T) {
	w, _ := workload.ByName("vpr.p")
	prog := w.Build(1)
	forest, err := slice.ProfileWhole(prog, slice.ProfileOptions{MaxInsts: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	res := selector.SelectForest(forest, selector.Options{Params: advantage.DefaultParams(1.5)})
	if len(res.PThreads) == 0 {
		t.Skip("nothing selected")
	}
	// Restrict all p-threads to a window that has already passed: nothing
	// may launch.
	for _, pt := range res.PThreads {
		pt.RegionStart, pt.RegionEnd = 1, 2
	}
	cfg := smallCfg(100_000)
	cfg.Mode = ModeNormal
	st, err := Run(prog, res.PThreads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Launches > 1 {
		t.Errorf("region-gated p-threads launched %d times, want <= 1", st.Launches)
	}
}

func TestStatsOverheadFrac(t *testing.T) {
	s := Stats{PtInsts: 50, Retired: 1000}
	if got := s.OverheadFrac(); got != 0.05 {
		t.Errorf("OverheadFrac = %v, want 0.05", got)
	}
	if (Stats{}).OverheadFrac() != 0 {
		t.Error("zero stats should have zero overhead")
	}
}

func TestModeStrings(t *testing.T) {
	want := map[Mode]string{
		ModeBase: "base", ModeNormal: "pre-exec",
		ModeOverheadExecute:  "overhead-execute",
		ModeOverheadSequence: "overhead-sequence",
		ModeLatencyOnly:      "latency-only",
		Mode(99):             "unknown",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("Mode(%d).String() = %q, want %q", m, m.String(), s)
		}
	}
}

func TestPerfectL2SpeedsUp(t *testing.T) {
	// Table 1's "Perfect L2 IPC" column: an L2 that always hits must be
	// faster than the default on a miss-heavy benchmark.
	w, _ := workload.ByName("vpr.r")
	prog := w.Build(1)
	norm, err := Run(prog, nil, smallCfg(80_000))
	if err != nil {
		t.Fatal(err)
	}
	perfect := smallCfg(80_000)
	perfect.MemLat = 1
	pf, err := Run(prog, nil, perfect)
	if err != nil {
		t.Fatal(err)
	}
	if pf.IPC <= norm.IPC {
		t.Errorf("perfect-L2 IPC %.3f should beat normal %.3f", pf.IPC, norm.IPC)
	}
}
