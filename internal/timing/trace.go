package timing

import (
	"context"
	"fmt"

	"preexec/internal/branch"
	"preexec/internal/cpu"
	"preexec/internal/isa"
	"preexec/internal/program"
)

// This file implements the recording half of trace replay (ROADMAP item 1).
//
// The key observation is that the simulator's entire front-end input stream
// is selection-independent: fetch is execution-driven on the correct path, so
// the dynamic instruction sequence, the effective addresses, and the branch
// predictor's verdicts depend only on the program and the fetch (= program)
// order in which the predictor trains — never on p-threads, which occupy
// their own SMT contexts and are invisible to fetch. One recorded base-run
// trace therefore serves every selection and every p-thread mode: Replay
// (replay.go) re-times the backend against the recorded stream and produces
// Stats bit-identical to a full RunContext simulation.
//
// P-thread launches read the architectural register file and memory image at
// the launch point, which moves with timing; to reconstruct that state at any
// fetch position the trace also records each instruction's architectural
// effect (destination value, or store value), and Replay maintains its own
// register file and memory image applied in fetch order.

// TraceVersion is the simulator fingerprint baked into every recorded trace.
// Replay refuses a trace recorded under a different version, and the stage
// caches key trace entries by it, so any change to the timing core's
// semantics invalidates recorded traces cleanly: bump the version whenever
// sim.go, replay.go, memsys.go, or the predictor change behaviour.
const TraceVersion = "rt1-2026-08"

// traceRec flags.
const (
	tfStore      = 1 << iota // ST: val is the stored value, effAddr the address
	tfHasDest                // writes rd (rd may be the zero register)
	tfBrLookup               // conditional branch: counts a predictor lookup
	tfMispredict             // mispredicted branch or JR: becomes the fetch blocker
	tfBreak                  // taken control: fetch stops after this instruction
	tfHalt                   // HALT: fetch is done after this instruction
)

// traceRec is one fetched instruction with everything the replay engine
// needs precomputed: the renamer's producer links, the scheduler's class and
// latency, the predictor's verdict, the architectural effect, and the
// backward same-word store link that replaces the store-forwarding map.
//
// prod holds the record index of each source operand's producer — the most
// recent earlier record writing that register — or -1 (no producer, or the
// zero register). The rename table is maintained in program order, which is
// exactly fetch order, so its whole evolution is a property of the trace and
// is precomputed here; the runtime "producer already retired" case is
// recovered during replay by comparing the link against the retirement
// watermark, because retirement is strictly program-ordered too.
type traceRec struct {
	effAddr   int64
	val       int64 // rd value (tfHasDest) or stored value (tfStore)
	prod      [2]int32
	prevStore int32 // most recent earlier store record to the same word; -1
	pc        int32
	rd        uint8 // destination register; 0xff = none
	class     uint8 // isa.Class
	latAdd    uint8 // non-memory completion latency (Mul: 3, else 1)
	flags     uint8
}

// noSrc marks an absent destination register in traceRec.rd.
const noSrc = 0xff

// Trace is a recorded base-run event stream: the complete front-end input of
// any timing simulation of its program under its recorded configuration
// family (all modes, any selection). Traces are immutable after recording
// and safe for concurrent Replay calls.
type Trace struct {
	prog    *program.Program
	version string
	recs    []traceRec
	// truncated marks a trace ended by an oracle step error (the simulator
	// swallows the error and stops fetching; replay mirrors that). A
	// non-truncated trace ends at the recorded extent or at HALT.
	truncated bool
}

// Program returns the program the trace was recorded from.
func (t *Trace) Program() *program.Program { return t.prog }

// Version returns the simulator fingerprint the trace was recorded under.
func (t *Trace) Version() string { return t.version }

// Records returns the number of recorded instructions.
func (t *Trace) Records() int { return len(t.recs) }

// Bytes approximates the trace's memory footprint, for cache sizing.
func (t *Trace) Bytes() int64 { return int64(len(t.recs)) * 40 }

// maxTraceInsts bounds recordable runs: beyond this the trace's memory
// footprint (40 bytes/record) is unreasonable for a long-lived stage cache
// and callers should simulate directly. 4M instructions caps a trace near
// 160MB and comfortably covers the evaluation windows the suite and the
// service sweep (tens of thousands to ~1M instructions).
const maxTraceInsts = int64(4) << 20

// traceExtent returns how many instructions past the measured total the
// recording must extend. A replaying (or simulating) machine's fetch runs
// ahead of retirement by at most the ROB plus the front-end queue (under
// 3xWidth entries) plus one retire bundle of overshoot; 8xWidth leaves that
// bound comfortable headroom. Replay fails loudly — it never silently stalls
// — if a trace turns out too short (see replay.go), so an undersized extent
// cannot produce wrong numbers, only an error the equivalence suite catches.
func traceExtent(cfg Config) int64 {
	return int64(cfg.ROB + 8*cfg.Width)
}

// Traceable reports whether a configuration's run is small enough to record.
func Traceable(cfg Config) bool {
	cfg = cfg.withDefaults()
	total := cfg.WarmInsts + cfg.MaxInsts
	return total > 0 && total <= maxTraceInsts
}

// RecordTrace records the front-end event stream a simulation of prog under
// cfg (any mode) consumes: it drives the functional oracle and the branch
// predictor — exactly the simulator's fetch stage, minus the machinery — for
// the run's instruction total plus the maximum fetch-ahead. The p-thread
// mode and ablation fields of cfg are irrelevant to the recording; the run
// sizing (WarmInsts, MaxInsts) and machine geometry size the extent.
func RecordTrace(ctx context.Context, prog *program.Program, cfg Config) (*Trace, error) {
	cfg = cfg.withDefaults()
	total := cfg.WarmInsts + cfg.MaxInsts
	if total < 0 { // overflow of the "unbounded" default
		total = cfg.MaxInsts
	}
	if total <= 0 || total > maxTraceInsts {
		return nil, fmt.Errorf("timing: run of %d instructions is not traceable (max %d)", total, maxTraceInsts)
	}
	extent := total + traceExtent(cfg)

	oracle := cpu.New(prog)
	pred := branch.New(branch.DefaultConfig())
	t := &Trace{
		prog:    prog,
		version: TraceVersion,
		recs:    make([]traceRec, 0, extent),
	}
	// lastStore maps a word address to the most recent store record to it,
	// building the backward forwarding links as the stream is recorded.
	// regProd is the renamer's producer table over record indices; it builds
	// the dependence links the same way the simulator's rename stage builds
	// them over in-flight uops (rename is program-ordered, so both see the
	// same most-recent writer).
	lastStore := make(map[int64]int32)
	var regProd [isa.NumRegs]int32
	for i := range regProd {
		regProd[i] = -1
	}
	done := ctx.Done()
	for int64(len(t.recs)) < extent {
		if done != nil && len(t.recs)&ctxCheckMask == 0 {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		if oracle.Halted {
			break
		}
		e, err := oracle.Step()
		if err != nil {
			// The simulator's fetch swallows oracle errors and stops
			// fetching; the truncation mark makes replay do the same.
			t.truncated = true
			break
		}
		rec := traceRec{
			effAddr:   e.EffAddr,
			prevStore: -1,
			pc:        int32(e.PC),
			class:     uint8(isa.ClassOf(e.Inst.Op)),
			latAdd:    uint8(isa.Latency(e.Inst.Op)),
		}
		srcs, ns := e.Inst.Sources()
		rec.prod[0], rec.prod[1] = -1, -1
		for i := 0; i < ns; i++ {
			if srcs[i] != isa.Zero {
				rec.prod[i] = regProd[srcs[i]]
			}
		}
		rec.rd = noSrc
		if e.Inst.HasDest() {
			rec.rd = uint8(e.Inst.Rd)
			rec.flags |= tfHasDest
			rec.val = e.RdVal
			regProd[e.Inst.Rd] = int32(len(t.recs))
		}
		switch isa.Class(rec.class) {
		case isa.ClassLoad:
			if j, ok := lastStore[e.EffAddr&^7]; ok {
				rec.prevStore = j
			}
		case isa.ClassStore:
			w := e.EffAddr &^ 7
			if j, ok := lastStore[w]; ok {
				rec.prevStore = j
			}
			lastStore[w] = int32(len(t.recs))
			rec.flags |= tfStore
			// ST reads no destination; val carries the stored value so
			// replay can maintain the memory image in fetch order.
			rec.val = oracle.Regs[e.Inst.Rs2]
		case isa.ClassBranch:
			rec.flags |= tfBrLookup
			if _, correct := pred.PredictAndTrain(e.PC, e.Taken); !correct {
				rec.flags |= tfMispredict
			} else if e.Taken {
				rec.flags |= tfBreak
			}
		case isa.ClassJump:
			if e.Inst.Op == isa.JR {
				if pred.BTBLookup(e.PC) != e.NextPC {
					rec.flags |= tfMispredict
					pred.BTBInsert(e.PC, e.NextPC)
				}
			}
			rec.flags |= tfBreak
		case isa.ClassHalt:
			rec.flags |= tfHalt
		}
		t.recs = append(t.recs, rec)
	}
	return t, nil
}
