// Package trace tracks dynamic dataflow during functional execution: for
// every retired instruction it records which earlier dynamic instruction
// produced each register source and (for loads) which store produced the
// loaded value. A sliding window of the most recent entries implements the
// paper's *slicing scope* — the length of dynamic trace the p-thread
// constructor is allowed to examine (§4.4, Figure 4).
package trace

import (
	"preexec/internal/cpu"
	"preexec/internal/isa"
)

// NoProducer marks a source with no in-scope dynamic producer (a live-in).
const NoProducer int64 = -1

// Entry is one dynamic instruction with resolved dataflow edges.
type Entry struct {
	Seq     int64
	PC      int
	Inst    isa.Inst
	EffAddr int64
	// SrcProd[i] is the Seq of the dynamic producer of source operand i
	// (as enumerated by Inst.Sources), or NoProducer.
	SrcProd [2]int64
	// MemProd is, for loads, the Seq of the store that produced the loaded
	// word, or NoProducer.
	MemProd int64
}

// Tracker converts cpu.Exec records into Entries and retains the most recent
// Scope of them.
type Tracker struct {
	scope    int
	ring     []Entry
	n        int64 // total entries observed
	firstSeq int64 // Seq of the first observed entry
	lastSeq  int64 // Seq of the most recent entry (absolute numbering)
	regProd  [isa.NumRegs]int64
	memProd  map[int64]int64 // word-aligned address -> store Seq

	// DCtrig is the dynamic execution count of every static instruction.
	// The selection framework reads launch counts from here (paper §3.1).
	DCtrig map[int]int64
}

// NewTracker returns a tracker with the given slicing scope (in dynamic
// instructions).
func NewTracker(scope int) *Tracker {
	t := &Tracker{}
	t.Reset(scope)
	return t
}

// Reset returns the tracker to its initial state with the given scope,
// reusing the ring's backing array and the maps when possible so a pooled
// tracker costs no steady-state allocation. It works on the zero Tracker.
func (t *Tracker) Reset(scope int) {
	t.scope = scope
	if cap(t.ring) >= scope {
		t.ring = t.ring[:scope]
		clear(t.ring) // drop stale entries so Get can never alias across runs
	} else {
		t.ring = make([]Entry, scope)
	}
	t.n, t.firstSeq, t.lastSeq = 0, 0, -1
	for i := range t.regProd {
		t.regProd[i] = NoProducer
	}
	if t.memProd == nil {
		t.memProd = make(map[int64]int64)
	} else {
		clear(t.memProd)
	}
	if t.DCtrig == nil {
		t.DCtrig = make(map[int]int64)
	} else {
		clear(t.DCtrig)
	}
}

// Scope returns the tracker's window size.
func (t *Tracker) Scope() int { return t.scope }

// Count returns the number of entries observed so far.
func (t *Tracker) Count() int64 { return t.n }

// Observe records one executed instruction and returns its entry. The
// returned pointer is valid until the window wraps past it.
func (t *Tracker) Observe(e cpu.Exec) *Entry {
	ent := Entry{
		Seq:     e.Seq,
		PC:      e.PC,
		Inst:    e.Inst,
		EffAddr: e.EffAddr,
		SrcProd: [2]int64{NoProducer, NoProducer},
		MemProd: NoProducer,
	}
	srcs, ns := e.Inst.Sources()
	for i := 0; i < ns; i++ {
		if srcs[i] != isa.Zero {
			ent.SrcProd[i] = t.regProd[srcs[i]]
		}
	}
	if e.Inst.Op == isa.LD {
		if seq, ok := t.memProd[e.EffAddr&^7]; ok {
			ent.MemProd = seq
		}
	}
	// Publish results after sourcing (an instruction never depends on itself).
	if e.Inst.HasDest() {
		t.regProd[e.Inst.Rd] = e.Seq
	}
	if e.Inst.Op == isa.ST {
		t.memProd[e.EffAddr&^7] = e.Seq
	}
	t.DCtrig[e.PC]++
	slot := &t.ring[e.Seq%int64(t.scope)]
	*slot = ent
	if t.n == 0 {
		t.firstSeq = e.Seq
	}
	t.n++
	t.lastSeq = e.Seq
	return slot
}

// Get returns the entry with the given Seq if it is still inside the window.
// Seq numbering is absolute (the CPU's dynamic instruction index), so the
// tracker works even when observation starts mid-run (after a warm-up).
func (t *Tracker) Get(seq int64) (*Entry, bool) {
	if t.n == 0 || seq < t.firstSeq || seq > t.lastSeq || t.lastSeq-seq >= int64(t.scope) {
		return nil, false
	}
	ent := &t.ring[seq%int64(t.scope)]
	if ent.Seq != seq {
		return nil, false
	}
	return ent, true
}

// InScope reports whether seq is within the current slicing window.
func (t *Tracker) InScope(seq int64) bool {
	_, ok := t.Get(seq)
	return ok
}
