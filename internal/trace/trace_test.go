package trace

import (
	"testing"

	"preexec/internal/cpu"
	"preexec/internal/isa"
)

func exec(seq int64, pc int, in isa.Inst, addr int64) cpu.Exec {
	return cpu.Exec{Seq: seq, PC: pc, Inst: in, EffAddr: addr}
}

func TestRegisterProducers(t *testing.T) {
	tr := NewTracker(16)
	tr.Observe(exec(0, 0, isa.Inst{Op: isa.LI, Rd: 1}, 0))
	tr.Observe(exec(1, 1, isa.Inst{Op: isa.LI, Rd: 2}, 0))
	e := tr.Observe(exec(2, 2, isa.Inst{Op: isa.ADD, Rd: 3, Rs1: 1, Rs2: 2}, 0))
	if e.SrcProd[0] != 0 || e.SrcProd[1] != 1 {
		t.Errorf("producers = %v, want [0 1]", e.SrcProd)
	}
}

func TestLatestWriterWins(t *testing.T) {
	tr := NewTracker(16)
	tr.Observe(exec(0, 0, isa.Inst{Op: isa.LI, Rd: 1}, 0))
	tr.Observe(exec(1, 1, isa.Inst{Op: isa.LI, Rd: 1}, 0))
	e := tr.Observe(exec(2, 2, isa.Inst{Op: isa.MOV, Rd: 2, Rs1: 1}, 0))
	if e.SrcProd[0] != 1 {
		t.Errorf("producer = %d, want 1 (latest writer)", e.SrcProd[0])
	}
}

func TestR0HasNoProducer(t *testing.T) {
	tr := NewTracker(16)
	tr.Observe(exec(0, 0, isa.Inst{Op: isa.LI, Rd: 0}, 0)) // write to R0: discarded
	e := tr.Observe(exec(1, 1, isa.Inst{Op: isa.ADDI, Rd: 1, Rs1: 0}, 0))
	if e.SrcProd[0] != NoProducer {
		t.Errorf("R0 producer = %d, want NoProducer", e.SrcProd[0])
	}
}

func TestNoSelfDependence(t *testing.T) {
	tr := NewTracker(16)
	tr.Observe(exec(0, 0, isa.Inst{Op: isa.LI, Rd: 1}, 0))
	e := tr.Observe(exec(1, 1, isa.Inst{Op: isa.ADDI, Rd: 1, Rs1: 1, Imm: 1}, 0))
	if e.SrcProd[0] != 0 {
		t.Errorf("producer = %d, want 0 (previous writer, not self)", e.SrcProd[0])
	}
}

func TestMemoryDependence(t *testing.T) {
	tr := NewTracker(16)
	tr.Observe(exec(0, 0, isa.Inst{Op: isa.ST, Rs1: 1, Rs2: 2}, 0x100))
	e := tr.Observe(exec(1, 1, isa.Inst{Op: isa.LD, Rd: 3, Rs1: 1}, 0x100))
	if e.MemProd != 0 {
		t.Errorf("MemProd = %d, want 0", e.MemProd)
	}
	// Different address: no dependence.
	e2 := tr.Observe(exec(2, 2, isa.Inst{Op: isa.LD, Rd: 3, Rs1: 1}, 0x108))
	if e2.MemProd != NoProducer {
		t.Errorf("MemProd = %d, want NoProducer", e2.MemProd)
	}
	// Same word, different byte offset: still a dependence.
	tr.Observe(exec(3, 3, isa.Inst{Op: isa.ST, Rs1: 1, Rs2: 2}, 0x200))
	e3 := tr.Observe(exec(4, 4, isa.Inst{Op: isa.LD, Rd: 3, Rs1: 1}, 0x204))
	if e3.MemProd != 3 {
		t.Errorf("MemProd = %d, want 3 (word-granular)", e3.MemProd)
	}
}

func TestDCtrigCounts(t *testing.T) {
	tr := NewTracker(16)
	for i := int64(0); i < 5; i++ {
		tr.Observe(exec(i, 7, isa.Inst{Op: isa.NOP}, 0))
	}
	tr.Observe(exec(5, 8, isa.Inst{Op: isa.NOP}, 0))
	if tr.DCtrig[7] != 5 || tr.DCtrig[8] != 1 {
		t.Errorf("DCtrig = %v, want pc7:5 pc8:1", tr.DCtrig)
	}
}

func TestWindowEviction(t *testing.T) {
	tr := NewTracker(4)
	for i := int64(0); i < 6; i++ {
		tr.Observe(exec(i, int(i), isa.Inst{Op: isa.NOP}, 0))
	}
	if tr.InScope(1) {
		t.Error("seq 1 should have been evicted from a 4-entry window")
	}
	for seq := int64(2); seq < 6; seq++ {
		if !tr.InScope(seq) {
			t.Errorf("seq %d should be in scope", seq)
		}
	}
	if tr.InScope(6) {
		t.Error("future seq should not be in scope")
	}
	if tr.InScope(-1) {
		t.Error("negative seq should not be in scope")
	}
}

func TestGetReturnsCorrectEntry(t *testing.T) {
	tr := NewTracker(8)
	for i := int64(0); i < 8; i++ {
		tr.Observe(exec(i, int(i*10), isa.Inst{Op: isa.NOP}, 0))
	}
	e, ok := tr.Get(5)
	if !ok || e.PC != 50 {
		t.Errorf("Get(5) = %+v,%v want PC 50", e, ok)
	}
}

func TestProducerOutsideScopeStillReported(t *testing.T) {
	// The tracker reports the true producer Seq even if it has been evicted;
	// it is the slicer's job to treat out-of-scope producers as live-ins.
	tr := NewTracker(2)
	tr.Observe(exec(0, 0, isa.Inst{Op: isa.LI, Rd: 1}, 0))
	tr.Observe(exec(1, 1, isa.Inst{Op: isa.NOP}, 0))
	tr.Observe(exec(2, 2, isa.Inst{Op: isa.NOP}, 0))
	e := tr.Observe(exec(3, 3, isa.Inst{Op: isa.MOV, Rd: 2, Rs1: 1}, 0))
	if e.SrcProd[0] != 0 {
		t.Errorf("producer = %d, want 0", e.SrcProd[0])
	}
	if tr.InScope(0) {
		t.Error("seq 0 should be out of scope")
	}
}

func TestCount(t *testing.T) {
	tr := NewTracker(4)
	if tr.Count() != 0 {
		t.Error("fresh tracker count != 0")
	}
	tr.Observe(exec(0, 0, isa.Inst{Op: isa.NOP}, 0))
	if tr.Count() != 1 {
		t.Error("count should be 1")
	}
}
