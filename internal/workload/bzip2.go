package workload

import "preexec/internal/program"

// bzip2: a block transform — a sequential sweep over a large source buffer
// with a data-dependent secondary table access and a sequential write-back.
// Sequential misses are cheap (one per line); the table access is the
// problem load with moderate coverage.
func buildBzip2(srcWords, tblWords, iters int) *program.Program {
	const (
		rI    = 1
		rN    = 2
		rSrc  = 3
		rTbl  = 4
		rMask = 5
		rAcc  = 6
		rT    = 10
		rX    = 11
		rU    = 12
		rY    = 13
	)
	b := program.NewBuilder("bzip2")
	src := b.Alloc(int64(srcWords))
	tbl := b.Alloc(int64(tblWords))
	rng := newXorshift(0x627A697032)
	for i := 0; i < srcWords; i++ {
		b.SetWord(src+int64(i*8), int64(rng.next()))
	}
	for i := 0; i < tblWords; i++ {
		b.SetWord(tbl+int64(i*8), int64(i%71))
	}
	b.Li(rI, 0).
		Li(rN, int64(iters)).
		Li(rSrc, src).
		Li(rTbl, tbl).
		Li(rMask, int64(tblWords-1)).
		Li(rAcc, 0)
	b.Label("loop").
		Bge(rI, rN, "exit").
		Slli(rT, rI, 3).
		Add(rT, rT, rSrc).
		Ld(rX, rT, 0). // sequential source read
		And(rU, rX, rMask).
		Slli(rU, rU, 3).
		Add(rU, rU, rTbl).
		Ld(rY, rU, 0). // data-dependent table read: the problem load
		Add(rAcc, rAcc, rY).
		St(rAcc, rT, 0). // sequential write-back
		Addi(rI, rI, 1).
		J("loop")
	b.Label("exit").Halt()
	return b.MustBuild()
}

func init() {
	register(Workload{
		Name:        "bzip2",
		Description: "sequential sweep + data-dependent table (moderate coverage)",
		Build: func(scale int) *program.Program {
			// 1MB source (swept once), 512KB table.
			return buildBzip2(1<<17, 1<<16, 26000*scale)
		},
		BuildTest: func(scale int) *program.Program {
			return buildBzip2(1<<14, 1<<13, 8000*scale)
		},
	})
}
