package workload

import "preexec/internal/program"

// crafty: bit-manipulation over a small (L2-resident) table — the paper's
// example of a benchmark pre-execution cannot help: with almost no L2
// misses there is nothing to tolerate, and any selected p-thread is pure
// overhead (the paper measures a 1% slowdown).
func buildCrafty(tblWords, iters int) *program.Program {
	const (
		rI    = 1
		rN    = 2
		rTbl  = 3
		rMask = 4
		rS    = 5
		rAcc  = 6
		rT    = 10
		rA    = 11
		rV    = 12
		rU    = 13
	)
	b := program.NewBuilder("crafty")
	tbl := b.Alloc(int64(tblWords))
	rng := newXorshift(0x637261667479)
	for i := 0; i < tblWords; i++ {
		b.SetWord(tbl+int64(i*8), int64(rng.next()))
	}
	b.Li(rI, 0).
		Li(rN, int64(iters)).
		Li(rTbl, tbl).
		Li(rMask, int64(tblWords-1)).
		Li(rS, 0x123456789).
		Li(rAcc, 0)
	b.Label("loop").
		Bge(rI, rN, "exit").
		// Bitboard-style mixing.
		Srli(rT, rS, 7).
		Xor(rS, rS, rT).
		Slli(rT, rS, 9).
		Xor(rS, rS, rT).
		And(rU, rS, rMask).
		Slli(rA, rU, 3).
		Add(rA, rA, rTbl).
		Ld(rV, rA, 0). // hits the L2-resident table
		Xor(rAcc, rAcc, rV).
		Srli(rT, rV, 3).
		Add(rAcc, rAcc, rT).
		Addi(rI, rI, 1).
		J("loop")
	b.Label("exit").Halt()
	return b.MustBuild()
}

func init() {
	register(Workload{
		Name:        "crafty",
		Description: "L2-resident bit manipulation (pre-execution cannot help)",
		Build: func(scale int) *program.Program {
			return buildCrafty(1<<13, 24000*scale) // 64KB table
		},
		BuildTest: func(scale int) *program.Program {
			return buildCrafty(1<<12, 8000*scale)
		},
	})
}
