package workload

import "preexec/internal/program"

// gap: strided reductions — a sequential stream multiplied against a
// strided stream whose stride defeats both the L1 and the L2. The strided
// address is register-computable, so coverage is decent.
func buildGap(seqWords, strideWords, iters int) *program.Program {
	const (
		rI    = 1
		rN    = 2
		rSeq  = 3
		rStr  = 4
		rMask = 5
		rAcc  = 6
		rSt   = 7
		rT    = 10
		rA    = 11
		rB    = 12
		rM    = 13
		rIdx  = 14
	)
	b := program.NewBuilder("gap")
	seq := b.Alloc(int64(seqWords))
	str := b.Alloc(int64(strideWords))
	for i := 0; i < seqWords; i++ {
		b.SetWord(seq+int64(i*8), int64(i%61+1))
	}
	for i := 0; i < strideWords; i++ {
		b.SetWord(str+int64(i*8), int64(i%59+1))
	}
	b.Li(rI, 0).
		Li(rN, int64(iters)).
		Li(rSeq, seq).
		Li(rStr, str).
		Li(rMask, int64(strideWords-1)).
		Li(rAcc, 0).
		Li(rSt, 17) // stride in words: 136B, a new line almost every step
	b.Label("loop").
		Bge(rI, rN, "exit").
		Andi(rT, rI, int64(seqWords-1)).
		Slli(rT, rT, 3).
		Add(rT, rT, rSeq).
		Ld(rA, rT, 0). // sequential stream
		Mul(rIdx, rI, rSt).
		And(rIdx, rIdx, rMask).
		Slli(rIdx, rIdx, 3).
		Add(rIdx, rIdx, rStr).
		Ld(rB, rIdx, 0). // strided stream: the problem load
		Mul(rM, rA, rB).
		Add(rAcc, rAcc, rM).
		Addi(rI, rI, 1).
		J("loop")
	b.Label("exit").Halt()
	return b.MustBuild()
}

func init() {
	register(Workload{
		Name:        "gap",
		Description: "strided reduction (register-computable stride)",
		Build: func(scale int) *program.Program {
			return buildGap(1<<13, 1<<16, 24000*scale) // 64KB + 512KB
		},
		BuildTest: func(scale int) *program.Program {
			return buildGap(1<<12, 1<<13, 8000*scale)
		},
	})
}
