package workload

import (
	"fmt"

	"preexec/internal/program"
)

// gcc: phase behaviour — three sequential passes, each walking a different
// large structure with its own hash, like a compiler running successive
// passes over its IR. Each pass has its own static problem load, so slice
// trees form at three separate roots and selection must solve three
// independent sub-problems; a value test after each access couples some
// branch resolutions to the misses.
func buildGcc(words, itersPerPass int) *program.Program {
	const (
		rI    = 1
		rN    = 2
		rBase = 3
		rMask = 4
		rAcc  = 5
		rK    = 6
		rT    = 10
		rA    = 11
		rV    = 12
		rC    = 13
	)
	b := program.NewBuilder("gcc")
	rng := newXorshift(0x676363)
	bases := make([]int64, 3)
	for p := range bases {
		bases[p] = b.Alloc(int64(words))
		for i := 0; i < words; i++ {
			b.SetWord(bases[p]+int64(i*8), int64(rng.intn(1000)))
		}
	}
	hashes := []int64{40503, 2654435761, 2246822519}
	b.Li(rAcc, 0)
	for p := 0; p < 3; p++ {
		loop := fmt.Sprintf("pass%d", p)
		next := fmt.Sprintf("pass%dend", p)
		b.Li(rI, 0).
			Li(rN, int64(itersPerPass)).
			Li(rBase, bases[p]).
			Li(rMask, int64(words-1)).
			Li(rK, hashes[p])
		b.Label(loop).
			Bge(rI, rN, next).
			Mul(rT, rI, rK).
			And(rT, rT, rMask).
			Slli(rA, rT, 3).
			Add(rA, rA, rBase).
			Ld(rV, rA, 0). // this pass's problem load
			Add(rAcc, rAcc, rV).
			Addi(rI, rI, 1).
			Andi(rC, rV, 7).
			Bne(rC, 0, loop). // value test: data-dependent
			Xori(rAcc, rAcc, 3).
			J(loop)
		b.Label(next)
	}
	b.Halt()
	return b.MustBuild()
}

func init() {
	register(Workload{
		Name:        "gcc",
		Description: "three sequential passes, one problem load each (phase behaviour)",
		Build: func(scale int) *program.Program {
			return buildGcc(1<<16, 9000*scale) // 3 passes x 512KB
		},
		BuildTest: func(scale int) *program.Program {
			return buildGcc(1<<12, 2500*scale)
		},
	})
}
