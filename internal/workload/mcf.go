package workload

import "preexec/internal/program"

// mcf: dependent pointer chasing over a ring of nodes scattered across a
// working set several times the L2. Every next-pointer load misses, and its
// address comes from the previous miss — the miss computation IS a chain of
// misses, so a p-thread cannot reach the miss much before the main thread.
// The paper reports mcf as its lowest-coverage benchmark (10%).
func buildMcf(nodes int, iters int) *program.Program {
	const (
		rP   = 1 // current node pointer
		rI   = 2
		rN   = 3
		rAcc = 4
		rV   = 5
	)
	b := program.NewBuilder("mcf")
	base := b.Alloc(int64(nodes * 2)) // node: [nextPtr, value]
	rng := newXorshift(0x6D6366)      // "mcf"
	next := rng.cycle(nodes)
	for i := 0; i < nodes; i++ {
		addr := base + int64(i*16)
		b.SetWord(addr, base+int64(next[i]*16))
		b.SetWord(addr+8, int64(i%251))
	}

	b.Li(rP, base).
		Li(rI, 0).
		Li(rN, int64(iters)).
		Li(rAcc, 0)
	const rC = 6
	b.Label("loop").
		Bge(rI, rN, "exit"). // loop bound
		Ld(rP, rP, 0).       // p = p->next (the problem load)
		Ld(rV, rP, 8).       // p->value
		Add(rAcc, rAcc, rV).
		Addi(rI, rI, 1).
		// Arc-cost test: data-dependent, as in the real mcf's network
		// simplex pricing loop.
		Andi(rC, rV, 3).
		Bne(rC, 0, "loop").
		Xori(rAcc, rAcc, 9).
		J("loop")
	b.Label("exit").Halt()
	return b.MustBuild()
}

func init() {
	register(Workload{
		Name:        "mcf",
		Description: "dependent pointer chase; misses feed miss addresses (low coverage)",
		Build: func(scale int) *program.Program {
			return buildMcf(1<<16, 30000*scale) // 1MB of nodes
		},
		BuildTest: func(scale int) *program.Program {
			return buildMcf(1<<13, 8000*scale) // 128KB: mostly L2-resident
		},
	})
}
