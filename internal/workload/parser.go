package workload

import "preexec/internal/program"

// parser: hash-table probing — a register-computed hash picks a bucket
// (problem load #1); non-empty buckets chain to a node (dependent problem
// load #2). The bucket test makes branch behaviour data-dependent, and the
// two-level structure makes part of the miss stream hard to hoist. The
// paper singles parser out as scope-sensitive.
func buildParser(buckets, nodes, iters int) *program.Program {
	const (
		rI    = 1
		rN    = 2
		rBkt  = 3
		rMask = 4
		rAcc  = 5
		rK    = 6
		rT    = 10
		rA    = 11
		rHead = 12
		rV    = 13
	)
	b := program.NewBuilder("parser")
	bkt := b.Alloc(int64(buckets))
	nodeArr := b.Alloc(int64(nodes * 2)) // node: [value, pad]
	rng := newXorshift(0x706172736572)
	for i := 0; i < nodes; i++ {
		b.SetWord(nodeArr+int64(i*16), int64(i%53+1))
	}
	for i := 0; i < buckets; i++ {
		// ~70% of buckets point at a pseudo-random node; the rest are empty.
		if rng.intn(10) < 7 {
			b.SetWord(bkt+int64(i*8), nodeArr+int64(rng.intn(nodes)*16))
		}
	}
	b.Li(rI, 0).
		Li(rN, int64(iters)).
		Li(rBkt, bkt).
		Li(rMask, int64(buckets-1)).
		Li(rAcc, 0).
		Li(rK, 2654435761)
	b.Label("loop").
		Bge(rI, rN, "exit").
		Mul(rT, rI, rK). // hash the "word"
		And(rT, rT, rMask).
		Slli(rA, rT, 3).
		Add(rA, rA, rBkt).
		Ld(rHead, rA, 0). // bucket head: problem load #1
		Beq(rHead, 0, "skip").
		Ld(rV, rHead, 0). // node payload: dependent problem load #2
		Add(rAcc, rAcc, rV).
		Label("skip").
		Addi(rI, rI, 1).
		J("loop")
	b.Label("exit").Halt()
	return b.MustBuild()
}

func init() {
	register(Workload{
		Name:        "parser",
		Description: "hash-table probe with dependent chain (scope-sensitive)",
		Build: func(scale int) *program.Program {
			return buildParser(1<<16, 1<<15, 26000*scale) // 512KB buckets + 512KB nodes
		},
		BuildTest: func(scale int) *program.Program {
			return buildParser(1<<13, 1<<12, 8000*scale)
		},
	})
}
