package workload

import "preexec/internal/program"

// twolf: a sparse miss computation — the problem load's address is fully
// determined ~20 dynamic instructions before the load executes, with an
// unrelated arithmetic block in between. The backward slice is short but
// spread out, so small slicing scopes cannot "see" enough of it to unroll
// the induction (the paper's signature for twolf and parser, §4.4).
func buildTwolf(words, iters int) *program.Program {
	const (
		rI    = 1
		rN    = 2
		rGrid = 3
		rMask = 4
		rAcc  = 5
		rK    = 6
		rW    = 7 // second accumulator for the filler block
		rT    = 10
		rA    = 11
		rV    = 12
		rF    = 13
	)
	b := program.NewBuilder("twolf")
	grid := b.Alloc(int64(words))
	for i := 0; i < words; i++ {
		b.SetWord(grid+int64(i*8), int64(i%67+1))
	}
	b.Li(rI, 0).
		Li(rN, int64(iters)).
		Li(rGrid, grid).
		Li(rMask, int64(words-1)).
		Li(rAcc, 0).
		Li(rW, 0x9E3779B9).
		Li(rK, 2246822519)
	b.Label("loop").
		Bge(rI, rN, "exit").
		// Address computation (the whole slice).
		Mul(rT, rI, rK).
		And(rT, rT, rMask).
		Slli(rA, rT, 3).
		Add(rA, rA, rGrid)
	// Filler: 16 ALU instructions that do not feed the load, separating
	// the address computation from its use in the dynamic stream.
	for k := 0; k < 8; k++ {
		b.Xori(rF, rW, int64(k+1))
		b.Add(rW, rW, rF)
	}
	const rC = 14
	b.Ld(rV, rA, 0). // the problem load, far from its computation
				Add(rAcc, rAcc, rV).
				Addi(rI, rI, 1).
		// Accept/reject test on the loaded cost: data-dependent branch.
		Andi(rC, rV, 3).
		Bne(rC, 0, "loop").
		Xori(rAcc, rAcc, 21).
		J("loop")
	b.Label("exit").Halt()
	return b.MustBuild()
}

func init() {
	register(Workload{
		Name:        "twolf",
		Description: "sparse miss computation (needs a large slicing scope)",
		Build: func(scale int) *program.Program {
			return buildTwolf(1<<16, 14000*scale) // 512KB grid, ~24-inst body
		},
		BuildTest: func(scale int) *program.Program {
			// The paper: twolf's test working set fits the L2.
			return buildTwolf(1<<10, 6000*scale) // 8KB
		},
	})
}
