package workload

import "preexec/internal/program"

// vortex: object-database traversal through an indirection table, with the
// object index spilled to a stack slot and reloaded inside the miss
// computation. The store-load pair makes unoptimized slices long and tall;
// store-load pair elimination (paper §3.3) collapses them — vortex is the
// paper's biggest optimization winner.
func buildVortex(tbl2Words, tbl1Words, iters int) *program.Program {
	const (
		rI    = 1
		rN    = 2
		rT2   = 3
		rT1   = 4
		rMask = 5
		rAcc  = 6
		rSp   = 7
		rK    = 8
		rM1   = 9
		rT    = 10
		rA    = 11
		rIdx  = 12
		rRef  = 13
		rObj  = 14
	)
	b := program.NewBuilder("vortex")
	tbl2 := b.Alloc(int64(tbl2Words))
	tbl1 := b.Alloc(int64(tbl1Words))
	sp := b.Alloc(8)
	rng := newXorshift(0x766F7274)
	for i := 0; i < tbl2Words; i++ {
		b.SetWord(tbl2+int64(i*8), int64(rng.intn(tbl1Words)))
	}
	for i := 0; i < tbl1Words; i++ {
		b.SetWord(tbl1+int64(i*8), int64(i%43+1))
	}
	b.Li(rI, 0).
		Li(rN, int64(iters)).
		Li(rT2, tbl2).
		Li(rT1, tbl1).
		Li(rMask, int64(tbl2Words-1)).
		Li(rAcc, 0).
		Li(rSp, sp).
		Li(rK, 2654435761).
		Li(rM1, int64(tbl1Words-1))
	b.Label("loop").
		Bge(rI, rN, "exit").
		Mul(rT, rI, rK).
		And(rIdx, rT, rMask).
		St(rIdx, rSp, 0).   // spill the index (calling-convention idiom)
		Xori(rT, rT, 0x3F). // unrelated work between spill and reload
		Add(rAcc, rAcc, rT).
		Ld(rIdx, rSp, 0). // reload: store-load pair inside the slice
		Slli(rA, rIdx, 3).
		Add(rA, rA, rT2).
		Ld(rRef, rA, 0). // indirection table: problem load #1
		And(rRef, rRef, rM1).
		Slli(rA, rRef, 3).
		Add(rA, rA, rT1).
		Ld(rObj, rA, 0). // object: problem load #2
		Add(rAcc, rAcc, rObj).
		Addi(rI, rI, 1).
		J("loop")
	b.Label("exit").Halt()
	return b.MustBuild()
}

func init() {
	register(Workload{
		Name:        "vortex",
		Description: "double indirection with spilled index (optimization winner)",
		Build: func(scale int) *program.Program {
			return buildVortex(1<<16, 1<<16, 20000*scale) // 512KB + 512KB
		},
		BuildTest: func(scale int) *program.Program {
			return buildVortex(1<<13, 1<<13, 7000*scale)
		},
	})
}
