package workload

import "preexec/internal/program"

// vpr.p (placement): the address of every miss is computed purely in
// registers from the loop induction variable — the ideal pre-execution
// target. The paper reports vpr.p as its highest-coverage benchmark (82%).
func buildVprPlace(words int, iters int) *program.Program {
	const (
		rI    = 1
		rN    = 2
		rK    = 3
		rMask = 4
		rBase = 5
		rAcc  = 6
		rT    = 10
		rA    = 11
		rV    = 12
	)
	b := program.NewBuilder("vpr.p")
	base := b.Alloc(int64(words))
	for i := 0; i < words; i++ {
		b.SetWord(base+int64(i*8), int64(i%89))
	}
	b.Li(rI, 0).
		Li(rN, int64(iters)).
		Li(rK, 2654435761).
		Li(rMask, int64(words-1)).
		Li(rBase, base).
		Li(rAcc, 0)
	const rC = 13
	b.Label("loop").
		Bge(rI, rN, "exit").
		Mul(rT, rI, rK). // scatter the index
		And(rT, rT, rMask).
		Slli(rA, rT, 3).
		Add(rA, rA, rBase).
		Ld(rV, rA, 0). // the problem load
		Add(rAcc, rAcc, rV).
		Addi(rI, rI, 1).
		// A cost test on the loaded value: data-dependent and occasionally
		// mispredicted, it ties the branch resolution — and therefore the
		// instruction window — to the miss, as placement cost comparisons
		// do in the real vpr.
		Andi(rC, rV, 7).
		Bne(rC, 0, "loop").
		Xori(rAcc, rAcc, 85).
		J("loop")
	b.Label("exit").Halt()
	return b.MustBuild()
}

// vpr.r (routing): a graph walk driven by an order[] index array — the
// index load is sequential (cheap), the node load irregular (misses), and
// the whole computation hangs off the loop induction: classic induction-
// unrolling territory.
func buildVprRoute(nodes int, iters int) *program.Program {
	const (
		rI     = 1
		rN     = 2
		rOrder = 3
		rNodes = 4
		rAcc   = 5
		rT     = 10
		rIdx   = 11
		rA     = 12
		rV     = 13
	)
	b := program.NewBuilder("vpr.r")
	order := b.Alloc(int64(iters))
	nodeArr := b.Alloc(int64(nodes))
	rng := newXorshift(0x7670722E72) // "vpr.r"
	for i := 0; i < iters; i++ {
		b.SetWord(order+int64(i*8), int64(rng.intn(nodes)))
	}
	for i := 0; i < nodes; i++ {
		b.SetWord(nodeArr+int64(i*8), int64(i%83))
	}
	b.Li(rI, 0).
		Li(rN, int64(iters)).
		Li(rOrder, order).
		Li(rNodes, nodeArr).
		Li(rAcc, 0)
	b.Label("loop").
		Bge(rI, rN, "exit").
		Slli(rT, rI, 3).
		Add(rT, rT, rOrder).
		Ld(rIdx, rT, 0). // sequential: usually hits
		Slli(rA, rIdx, 3).
		Add(rA, rA, rNodes).
		Ld(rV, rA, 0). // irregular: the problem load
		Add(rAcc, rAcc, rV).
		Addi(rI, rI, 1).
		J("loop")
	b.Label("exit").Halt()
	return b.MustBuild()
}

func init() {
	register(Workload{
		Name:        "vpr.p",
		Description: "register-computed scatter addresses (highest coverage)",
		Build: func(scale int) *program.Program {
			return buildVprPlace(1<<16, 30000*scale) // 512KB
		},
		BuildTest: func(scale int) *program.Program {
			// The paper: vpr.p's test working set fits the L2 entirely, so
			// the static scenario selects no p-threads.
			return buildVprPlace(1<<10, 8000*scale) // 8KB
		},
	})
	register(Workload{
		Name:        "vpr.r",
		Description: "index-array graph walk (induction unrolling)",
		Build: func(scale int) *program.Program {
			return buildVprRoute(1<<16, 28000*scale) // 512KB of nodes
		},
		BuildTest: func(scale int) *program.Program {
			return buildVprRoute(1<<14, 8000*scale) // 128KB
		},
	})
}
