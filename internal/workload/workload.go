// Package workload provides the benchmark suite: ten synthetic kernels that
// stand in for the paper's ten SPEC2000int benchmark/input combinations
// (bzip2, crafty, gap, gcc, mcf, parser, twolf, vortex, vpr.p, vpr.r).
//
// SPEC binaries and inputs are not available to this reproduction (see
// DESIGN.md's substitution table), so each kernel is engineered to exhibit
// the *memory-behaviour signature* the paper reports for its namesake —
// the properties the selection framework actually responds to:
//
//   - mcf: dependent pointer chasing; miss feeds the next miss's address, so
//     p-threads cannot out-run the main thread → low coverage (paper: 10%).
//   - vpr.p: addresses computed by pure register arithmetic → near-perfect
//     slices → highest coverage (paper: 82%).
//   - vpr.r: index-array graph walk → sliceable with induction unrolling.
//   - crafty: L2-resident working set → almost no L2 misses; p-threads can
//     only hurt (paper: -1%).
//   - twolf/parser: sparse computations — the address is computed long
//     before its use, so slices are short but need a large slicing scope
//     (paper: scope-sensitive).
//   - vortex: store-load pairs inside miss computations → optimization
//     (store-load pair elimination) unlocks otherwise-too-long p-threads
//     (paper: optimization's biggest winner).
//   - bzip2/gap/gcc: mixtures of sequential and data-dependent indexing
//     with moderate coverage.
//
// Every kernel is deterministic (xorshift-seeded data) and scaled by a
// multiplier so experiments can trade time for fidelity.
package workload

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"preexec/internal/program"
)

// ErrUnknown is wrapped by ByName's unknown-benchmark error so callers that
// map failures onto transport-level codes (the serve package's 404) can
// classify it with errors.Is without matching message text.
var ErrUnknown = errors.New("unknown benchmark")

// ErrDuplicate is wrapped by Register's name-collision error (serve maps it
// to 409 Conflict).
var ErrDuplicate = errors.New("already registered")

// Workload is one benchmark in the suite.
type Workload struct {
	Name string
	// Description summarizes the memory-behaviour signature.
	Description string
	// Build constructs the train-input program at the given scale
	// (scale >= 1 multiplies the iteration count).
	Build func(scale int) *program.Program
	// BuildTest constructs the paper's "test input" variant: a smaller data
	// set (for twolf and vpr.p, one that fits the L2 entirely, reproducing
	// the paper's Figure 7 static-scenario failure for those two).
	BuildTest func(scale int) *program.Program
}

var (
	regMu    sync.RWMutex
	registry []Workload
	// builtins counts registry entries installed by this package's init
	// functions (the paper's ten); they can never be unregistered.
	builtins int
)

// register installs a builtin at init time (no locking: init runs serially,
// before any other entry point can be called).
func register(w Workload) {
	registry = append(registry, w)
	builtins = len(registry)
}

// Register adds a workload to the registry at run time, making it a
// first-class benchmark for ByName and everything built on it (suite
// evaluation, sweeps, the command-line tools). Names are case-insensitive
// and must not collide with an existing entry. A nil BuildTest defaults to
// Build. Safe for concurrent use.
func Register(w Workload) error {
	if w.Name == "" {
		return fmt.Errorf("workload: Register: empty name")
	}
	if w.Build == nil {
		return fmt.Errorf("workload: Register %q: nil Build", w.Name)
	}
	if w.BuildTest == nil {
		w.BuildTest = w.Build
	}
	regMu.Lock()
	defer regMu.Unlock()
	for _, have := range registry {
		if strings.EqualFold(have.Name, w.Name) {
			return fmt.Errorf("workload: Register %q: %w", w.Name, ErrDuplicate)
		}
	}
	registry = append(registry, w)
	return nil
}

// Unregister removes a run-time-registered workload by (case-insensitive)
// name, reporting whether it was present. The ten builtins cannot be
// removed.
func Unregister(name string) bool {
	regMu.Lock()
	defer regMu.Unlock()
	for i := builtins; i < len(registry); i++ {
		if strings.EqualFold(registry[i].Name, name) {
			registry = append(registry[:i], registry[i+1:]...)
			return true
		}
	}
	return false
}

// All returns the full suite — the ten builtins plus any registered
// extensions — in alphabetical order.
func All() []Workload {
	regMu.RLock()
	out := make([]Workload, len(registry))
	copy(out, registry)
	regMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the suite's benchmark names in order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, w := range all {
		names[i] = w.Name
	}
	return names
}

// ByName finds a workload. Lookup is case-insensitive, and the error for an
// unknown name lists every valid one — it is the single name-validation
// message reused by the suite and sweep entry points.
func ByName(name string) (Workload, error) {
	regMu.RLock()
	for _, w := range registry {
		if strings.EqualFold(w.Name, name) {
			regMu.RUnlock()
			return w, nil
		}
	}
	regMu.RUnlock()
	return Workload{}, fmt.Errorf("workload: %w %q (valid: %s)",
		ErrUnknown, name, strings.Join(Names(), ", "))
}
