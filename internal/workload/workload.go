// Package workload provides the benchmark suite: ten synthetic kernels that
// stand in for the paper's ten SPEC2000int benchmark/input combinations
// (bzip2, crafty, gap, gcc, mcf, parser, twolf, vortex, vpr.p, vpr.r).
//
// SPEC binaries and inputs are not available to this reproduction (see
// DESIGN.md's substitution table), so each kernel is engineered to exhibit
// the *memory-behaviour signature* the paper reports for its namesake —
// the properties the selection framework actually responds to:
//
//   - mcf: dependent pointer chasing; miss feeds the next miss's address, so
//     p-threads cannot out-run the main thread → low coverage (paper: 10%).
//   - vpr.p: addresses computed by pure register arithmetic → near-perfect
//     slices → highest coverage (paper: 82%).
//   - vpr.r: index-array graph walk → sliceable with induction unrolling.
//   - crafty: L2-resident working set → almost no L2 misses; p-threads can
//     only hurt (paper: -1%).
//   - twolf/parser: sparse computations — the address is computed long
//     before its use, so slices are short but need a large slicing scope
//     (paper: scope-sensitive).
//   - vortex: store-load pairs inside miss computations → optimization
//     (store-load pair elimination) unlocks otherwise-too-long p-threads
//     (paper: optimization's biggest winner).
//   - bzip2/gap/gcc: mixtures of sequential and data-dependent indexing
//     with moderate coverage.
//
// Every kernel is deterministic (xorshift-seeded data) and scaled by a
// multiplier so experiments can trade time for fidelity.
package workload

import (
	"fmt"
	"sort"

	"preexec/internal/program"
)

// Workload is one benchmark in the suite.
type Workload struct {
	Name string
	// Description summarizes the memory-behaviour signature.
	Description string
	// Build constructs the train-input program at the given scale
	// (scale >= 1 multiplies the iteration count).
	Build func(scale int) *program.Program
	// BuildTest constructs the paper's "test input" variant: a smaller data
	// set (for twolf and vpr.p, one that fits the L2 entirely, reproducing
	// the paper's Figure 7 static-scenario failure for those two).
	BuildTest func(scale int) *program.Program
}

var registry []Workload

func register(w Workload) { registry = append(registry, w) }

// All returns the full suite in the paper's (alphabetical) order.
func All() []Workload {
	out := make([]Workload, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the suite's benchmark names in order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, w := range all {
		names[i] = w.Name
	}
	return names
}

// ByName finds a workload.
func ByName(name string) (Workload, error) {
	for _, w := range registry {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, Names())
}
