package workload

import (
	"strings"
	"testing"

	"preexec/internal/cache"
	"preexec/internal/cpu"
	"preexec/internal/isa"
	"preexec/internal/program"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"bzip2", "crafty", "gap", "gcc", "mcf", "parser", "twolf", "vortex", "vpr.p", "vpr.r"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("suite = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("suite[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("mcf")
	if err != nil || w.Name != "mcf" {
		t.Fatalf("ByName(mcf) = %v, %v", w, err)
	}
	if w, err := ByName("MCF"); err != nil || w.Name != "mcf" {
		t.Errorf("ByName(MCF) = %v, %v; lookup should be case-insensitive", w, err)
	}
	_, err = ByName("nonesuch")
	if err == nil {
		t.Fatal("ByName should fail for unknown benchmarks")
	}
	// The error must list every valid name (the one message suite/sweep
	// validation reuses).
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("ByName error %q does not list valid name %q", err, name)
		}
	}
}

func TestRegisterUnregister(t *testing.T) {
	build := func(scale int) *program.Program {
		b := program.NewBuilder("extra")
		b.Li(1, int64(scale)).Halt()
		return b.MustBuild()
	}
	if err := Register(Workload{Name: "extra", Build: build}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { Unregister("extra") })

	w, err := ByName("Extra")
	if err != nil || w.Name != "extra" {
		t.Fatalf("ByName(Extra) after Register = %v, %v", w, err)
	}
	if w.BuildTest == nil {
		t.Error("Register should default a nil BuildTest to Build")
	}
	if err := Register(Workload{Name: "EXTRA", Build: build}); err == nil {
		t.Error("Register should reject a case-insensitive name collision")
	}
	if err := Register(Workload{Name: "", Build: build}); err == nil {
		t.Error("Register should reject an empty name")
	}
	if err := Register(Workload{Name: "nobuild"}); err == nil {
		t.Error("Register should reject a nil Build")
	}
	if n := len(Names()); n != 11 {
		t.Errorf("Names() has %d entries with one extension, want 11", n)
	}
	if !Unregister("extra") {
		t.Error("Unregister(extra) = false, want true")
	}
	if Unregister("mcf") {
		t.Error("Unregister must refuse to remove a builtin")
	}
	if _, err := ByName("extra"); err == nil {
		t.Error("extra still resolvable after Unregister")
	}
}

// runStats functionally executes a program through the default hierarchy.
type runStats struct {
	insts, loads, l2miss int64
}

func run(t *testing.T, w Workload, test bool) runStats {
	t.Helper()
	var p = w.Build(1)
	if test {
		p = w.BuildTest(1)
	}
	st := cpu.New(p)
	h := cache.DefaultHierarchy()
	var rs runStats
	for !st.Halted {
		e, err := st.Step()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		rs.insts++
		if rs.insts > 3_000_000 {
			t.Fatalf("%s: did not halt within 3M instructions", p.Name)
		}
		if e.Inst.IsMem() {
			res := h.Access(e.EffAddr, e.Inst.Op == isa.ST)
			if e.Inst.Op == isa.LD {
				rs.loads++
				if res == cache.MissL2 {
					rs.l2miss++
				}
			}
		}
	}
	return rs
}

func TestAllWorkloadsTerminate(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			rs := run(t, w, false)
			if rs.insts < 50_000 {
				t.Errorf("%s: only %d instructions; too small to be meaningful", w.Name, rs.insts)
			}
			if rs.loads == 0 {
				t.Errorf("%s: no loads executed", w.Name)
			}
		})
	}
}

func TestMissProfiles(t *testing.T) {
	// The suite's purpose is its miss-behaviour spread: crafty must be
	// nearly miss-free, mcf and vpr.p miss-heavy, everything else nonzero.
	misses := map[string]int64{}
	perKI := map[string]float64{}
	for _, w := range All() {
		rs := run(t, w, false)
		misses[w.Name] = rs.l2miss
		perKI[w.Name] = float64(rs.l2miss) / float64(rs.insts) * 1000
	}
	// crafty's 64KB table is L2-resident: only its ~1024 compulsory cold
	// misses (one per line) may appear.
	if misses["crafty"] > 1500 {
		t.Errorf("crafty misses = %d, want ~1024 cold misses only", misses["crafty"])
	}
	for _, name := range []string{"mcf", "vpr.p", "vpr.r", "bzip2", "parser", "twolf", "vortex", "gap", "gcc"} {
		if perKI[name] < 1 {
			t.Errorf("%s misses/KI = %.2f, want >= 1 (L2-hostile working set)", name, perKI[name])
		}
	}
	if misses["mcf"] < misses["crafty"]*10 {
		t.Errorf("mcf (%d) should miss far more than crafty (%d)", misses["mcf"], misses["crafty"])
	}
}

func TestTestInputsAreSmaller(t *testing.T) {
	// Figure 7's static scenario: test inputs must be smaller runs, and for
	// twolf and vpr.p must have working sets that fit the L2 (few misses).
	for _, w := range All() {
		train := run(t, w, false)
		test := run(t, w, true)
		if test.insts >= train.insts {
			t.Errorf("%s: test input (%d insts) not smaller than train (%d)", w.Name, test.insts, train.insts)
		}
	}
	for _, name := range []string{"twolf", "vpr.p"} {
		w, _ := ByName(name)
		test := run(t, w, true)
		// 32KB working sets have 512 lines: only compulsory misses allowed.
		if test.l2miss > 700 {
			t.Errorf("%s test input misses = %d, want <= ~512 cold misses (fits L2 per the paper)",
				name, test.l2miss)
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, w := range All() {
		p1 := w.Build(1)
		p2 := w.Build(1)
		if len(p1.Insts) != len(p2.Insts) {
			t.Errorf("%s: non-deterministic instruction count", w.Name)
			continue
		}
		for i := range p1.Insts {
			if p1.Insts[i] != p2.Insts[i] {
				t.Errorf("%s: instruction %d differs between builds", w.Name, i)
				break
			}
		}
	}
}

func TestScaleGrowsRun(t *testing.T) {
	w, _ := ByName("vpr.p")
	p1 := w.Build(1)
	p2 := w.Build(2)
	s1, s2 := cpu.New(p1), cpu.New(p2)
	n1, err := s1.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := s2.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if n2 < n1*3/2 {
		t.Errorf("scale 2 run (%d insts) should be ~2x scale 1 (%d)", n2, n1)
	}
}
