// Package preexec is the public entry point to the pre-execution
// thread-selection framework of Roth & Sohi, "Speculative Data-Driven
// Multithreading" tool flow (conf_micro_RothS02, §4.1):
//
//	functional cache simulation  ->  slice trees
//	slice trees + parameters     ->  static p-threads
//	program + p-threads          ->  timing simulation
//
// An Engine, built from functional options over the decomposed
// machine/selection/ablation configuration, runs the pipeline end to end:
//
//	eng := preexec.New(preexec.WithMachine(preexec.DefaultMachine()))
//	rep, err := eng.Evaluate(ctx, prog)
//
// Every entry point takes a context.Context that cancels mid-simulation,
// and the Suite runner evaluates many workloads concurrently across a
// bounded worker pool with deterministic result ordering.
//
// The pipeline stages — Profiler, Selector, Simulator — are interfaces, so
// alternative backends can be swapped in with WithProfiler, WithSelector,
// and WithSimulator; the defaults are the in-repo reference implementations
// that reproduce the paper's results.
package preexec

import (
	"preexec/internal/program"
	"preexec/internal/pthread"
	"preexec/internal/selector"
	"preexec/internal/slice"
	"preexec/internal/timing"
	"preexec/internal/workload"
)

// Program is an executable PRX program (aliased from the internal substrate
// so external callers can hold and pass one).
type Program = program.Program

// PThread is one selected static p-thread.
type PThread = pthread.PThread

// Stats is the outcome of one timing-simulation run.
type Stats = timing.Stats

// Prediction is the selection model's forecast of a p-thread set's dynamic
// behaviour (the "Predict" block of the paper's Table 2).
type Prediction = selector.Prediction

// SelectionResult is a completed selection: the chosen p-threads and the
// model's predictions.
type SelectionResult = selector.Result

// Forest is a profiled set of slice trees (the output of the functional
// profiling stage, and the on-disk interchange format between tsim -profile
// and tselect).
type Forest = slice.Forest

// ProfileRegion is one profiled dynamic region with its slice-tree forest.
type ProfileRegion = slice.Region

// ProfileOptions configures the functional profiling stage.
type ProfileOptions = slice.ProfileOptions

// SelectorOptions configures the selection stage (advantage parameters,
// merging, iteration bounds).
type SelectorOptions = selector.Options

// TimingConfig parametrizes the detailed timing simulator.
type TimingConfig = timing.Config

// Trace is a recorded base-run event trace: the complete front-end input of
// any timing simulation of its program under its recorded configuration
// family (all modes, any selection). See Simulator and TraceReplayer.
type Trace = timing.Trace

// Mode selects what simulated p-threads are allowed to do; the diagnostic
// modes implement the paper's validation methodology (§4.3).
type Mode = timing.Mode

// Simulation modes.
const (
	ModeBase             = timing.ModeBase
	ModeNormal           = timing.ModeNormal
	ModeOverheadExecute  = timing.ModeOverheadExecute
	ModeOverheadSequence = timing.ModeOverheadSequence
	ModeLatencyOnly      = timing.ModeLatencyOnly
)

// Workload is one benchmark of the synthetic suite standing in for the
// paper's ten SPEC2000int benchmark/input pairs.
type Workload = workload.Workload

// Workloads returns the full benchmark suite in the paper's order.
func Workloads() []Workload { return workload.All() }

// WorkloadNames returns the suite's benchmark names in order.
func WorkloadNames() []string { return workload.Names() }

// ErrUnknownWorkload is wrapped by the unknown-benchmark errors of
// WorkloadByName and everything built on it (EvaluateSuite, SweepBenches),
// so callers — notably the serve package's HTTP error mapping — can
// classify lookup failures with errors.Is.
var ErrUnknownWorkload = workload.ErrUnknown

// ErrDuplicateWorkload is wrapped by RegisterWorkload's name-collision
// error (serve maps it to 409 Conflict).
var ErrDuplicateWorkload = workload.ErrDuplicate

// WorkloadByName finds a benchmark by name. Lookup is case-insensitive and
// the error for an unknown name — which wraps ErrUnknownWorkload — lists
// every valid one.
func WorkloadByName(name string) (Workload, error) { return workload.ByName(name) }

// RegisterWorkload adds a workload to the global registry, making it a
// first-class benchmark alongside the ten builtins: WorkloadByName,
// EvaluateSuite, SweepBenches, and the command-line tools all accept its
// name afterwards. Names are case-insensitive and must be unique; a nil
// BuildTest defaults to Build. The synth package builds registrable
// workloads from parameterized scenario specs and .prx sources.
func RegisterWorkload(w Workload) error { return workload.Register(w) }

// UnregisterWorkload removes a previously registered workload by name,
// reporting whether it was present. The ten builtins cannot be removed.
func UnregisterWorkload(name string) bool { return workload.Unregister(name) }

// PredictIPC converts a selection's predicted cycle savings into an IPC
// forecast for a run of insts instructions on a width-wide machine with the
// given unassisted IPC.
func PredictIPC(pred Prediction, insts int64, baseIPC, width float64) float64 {
	return selector.PredictIPC(pred, insts, baseIPC, width)
}

// LoadForest reads a slice-tree file written by Forest.Save (tsim -profile).
func LoadForest(path string) (*Forest, error) { return slice.Load(path) }

// LoadPThreads reads a p-thread file written by SavePThreads (tselect -o).
func LoadPThreads(path string) ([]*PThread, error) { return pthread.Load(path) }

// SavePThreads writes p-threads for later simulation (tsim -pthreads).
func SavePThreads(path string, pts []*PThread) error { return pthread.Save(path, pts) }
