package preexec

import (
	"encoding/json"

	"preexec/internal/core"
)

// Report is a complete evaluation of one program under one configuration.
// It marshals to JSON with the derived percentage metrics included (the
// -json output of cmd/tsim and cmd/texp).
type Report struct {
	Program string `json:"program"`
	Config  Config `json:"config"`

	// Base is the unassisted run; Pre the pre-execution run.
	Base Stats `json:"base"`
	Pre  Stats `json:"pre"`

	// PThreads are the selected static p-threads; Pred the model's forecast
	// of their dynamic behaviour.
	PThreads []*PThread `json:"pthreads"`
	Pred     Prediction `json:"prediction"`

	// BaseMisses is the measured machine's demand-miss count — the
	// denominator for the paper's coverage percentages.
	BaseMisses int64 `json:"base_misses"`
	// PredIPC is the model's IPC forecast for the pre-execution run.
	PredIPC float64 `json:"predicted_ipc"`
}

// reportFromCore converts the compatibility shim's report.
func reportFromCore(r core.Report) Report {
	return Report{
		Program: r.Program,
		Config: Config{
			Machine: MachineConfig{
				Width:        r.Config.Width,
				MemLat:       r.Config.MemLat,
				WarmInsts:    r.Config.WarmInsts,
				MeasureInsts: r.Config.MeasureInsts,
			},
			Selection: SelectionConfig{
				Scope:        r.Config.Scope,
				MaxLen:       r.Config.MaxLen,
				Optimize:     r.Config.Optimize,
				Merge:        r.Config.Merge,
				RegionInsts:  r.Config.RegionInsts,
				ProfileOn:    r.Config.SelectOn,
				ProfileInsts: r.Config.SelectInsts,
				MemLat:       r.Config.SelectMemLat,
				Width:        r.Config.SelectWidth,
			},
			Ablation: AblationConfig{
				ModelLoadLat: r.Config.ModelLoadLat,
				NoRSThrottle: r.Config.NoRSThrottle,
			},
		},
		Base:       r.Base,
		Pre:        r.Pre,
		PThreads:   r.Selection.PThreads,
		Pred:       r.Selection.Pred,
		BaseMisses: r.BaseMisses,
		PredIPC:    r.PredIPC,
	}
}

// CoveragePct returns measured miss coverage as a percentage of base misses.
func (r Report) CoveragePct() float64 {
	if r.BaseMisses == 0 {
		return 0
	}
	return 100 * float64(r.Pre.MissesCovered) / float64(r.BaseMisses)
}

// FullCoveragePct returns measured full coverage.
func (r Report) FullCoveragePct() float64 {
	if r.BaseMisses == 0 {
		return 0
	}
	return 100 * float64(r.Pre.MissesFullCovered) / float64(r.BaseMisses)
}

// SpeedupPct returns the measured percent speedup of pre-execution.
func (r Report) SpeedupPct() float64 {
	if r.Base.IPC == 0 {
		return 0
	}
	return (r.Pre.IPC/r.Base.IPC - 1) * 100
}

// MarshalJSON includes the derived metrics alongside the raw fields.
func (r Report) MarshalJSON() ([]byte, error) {
	type plain Report // avoid recursing into this method
	return json.Marshal(struct {
		plain
		CoveragePct     float64 `json:"coverage_pct"`
		FullCoveragePct float64 `json:"full_coverage_pct"`
		SpeedupPct      float64 `json:"speedup_pct"`
	}{plain(r), r.CoveragePct(), r.FullCoveragePct(), r.SpeedupPct()})
}
