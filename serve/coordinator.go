package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"preexec"
	"preexec/internal/fleet"
	"preexec/internal/obs"
)

// FleetConfig tunes coordinator mode (enabled by WithBackends). The zero
// value selects every default.
type FleetConfig struct {
	// Fleet holds the retry, backoff, ejection, and per-attempt timeout
	// parameters (see fleet.Config; zero fields take the fleet defaults).
	Fleet fleet.Config
	// ProbeInterval is the period of the background health probe against
	// each backend's /v1/stats (0 = 2s). A negative interval disables
	// probing entirely: ejected backends are then never re-admitted, which
	// is what deterministic tests want.
	ProbeInterval time.Duration
	// Client performs the backend HTTP requests (nil = a dedicated default
	// client).
	Client *http.Client
}

const (
	defaultProbeInterval = 2 * time.Second
	// probeTimeout bounds one health probe independently of the loop
	// period, so a black-holing backend cannot stall the probe cycle.
	probeTimeout = 5 * time.Second
	// remoteBodyLimit bounds how much of a backend response the coordinator
	// will buffer; a single-cell SweepResult is a few KB.
	remoteBodyLimit = 16 << 20
)

// coordinator fans /v1/sweep grids out across backend preexecds. Each cell
// is routed by its stage-cache identity on a consistent-hash ring, so every
// base timing run and profile lands on exactly one backend's StageCache; the
// fleet package supplies retry, backoff, health ejection, and failover, and
// an all-backends-dead sweep degrades to local evaluation through the
// coordinator's own cache. Results merge in deterministic grid order and are
// bit-identical to a single-node run — the cross-node extension of the
// golden-test discipline.
type coordinator struct {
	srv           *Server
	pool          *fleet.Pool
	addrs         []string // normalized backend base URLs = pool names
	client        *http.Client
	probeInterval time.Duration
	stopProbe     context.CancelFunc
	probeDone     chan struct{}

	// remoteCells and localFallbacks are obs counters so the metrics
	// registry renders the very objects /v1/stats reads (registerFleet
	// registers them by reference).
	remoteCells    obs.Counter
	localFallbacks obs.Counter
}

func newCoordinator(s *Server, backends []string, fc FleetConfig) *coordinator {
	addrs := make([]string, len(backends))
	for i, b := range backends {
		b = strings.TrimRight(strings.TrimSpace(b), "/")
		if !strings.Contains(b, "://") {
			b = "http://" + b
		}
		addrs[i] = b
	}
	client := fc.Client
	if client == nil {
		client = &http.Client{}
	}
	interval := fc.ProbeInterval
	if interval == 0 {
		interval = defaultProbeInterval
	}
	c := &coordinator{
		srv:           s,
		pool:          fleet.New(addrs, fc.Fleet),
		addrs:         addrs,
		client:        client,
		probeInterval: interval,
		probeDone:     make(chan struct{}),
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.stopProbe = cancel
	go func() {
		defer close(c.probeDone)
		c.pool.ProbeLoop(ctx, c.probeInterval, c.probe)
	}()
	return c
}

// close stops the probe loop and waits for it to exit.
func (c *coordinator) close() {
	c.stopProbe()
	<-c.probeDone
}

// probe is the health check: a backend is healthy when its /v1/stats
// answers with a decodable body. The reported load — simulation-gate
// in-flight plus queued — orders failover preference toward idle backends.
func (c *coordinator) probe(ctx context.Context, backend int) (int, error) {
	ctx, cancel := context.WithTimeout(ctx, probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.addrs[backend]+"/v1/stats", nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("probe: status %d", resp.StatusCode)
	}
	var st struct {
		Gate struct {
			InFlight int   `json:"in_flight"`
			Queued   int64 `json:"queued"`
		} `json:"gate"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		return 0, fmt.Errorf("probe: %w", err)
	}
	return st.Gate.InFlight + int(st.Gate.Queued), nil
}

// stageKeys names the memoized stages a cell needs — base timing run,
// profile, and (when the run is small enough to record) base-run trace — in
// the same terms the StageCache keys them. The rendering is
// preexec.StageKeys, the single shared key source, so routing identity
// cannot drift from local memoization: program pointers cannot cross
// processes, so (benchmark name, scale) stands in for the program identity —
// servers build programs once per (workload, scale), so the substitution is
// exact.
func stageKeys(bench string, scale int, cfg preexec.Config) preexec.StageKeySet {
	return preexec.StageKeys(bench, scale, cfg)
}

// coordCell is one grid cell as the coordinator schedules it.
type coordCell struct {
	bench string
	point string
	scale int
	// raw is the point's submitted config fragment, forwarded verbatim so
	// the backend decodes it exactly as a direct client would.
	raw json.RawMessage
	// cfg is the decoded configuration, for the local-fallback engine.
	cfg  preexec.Config
	prog *preexec.Program
	// routeKey concatenates the base and profile stage keys: cells sharing
	// all their stage work land on one backend's cache together. The trace
	// key never adds routing information — it groups identically to the base
	// key — so it stays out of the route.
	routeKey string
	keys     preexec.StageKeySet
}

// sweep evaluates the grid across the fleet and merges the result in grid
// order. raws aligns with points (the submitted config fragments; nil for
// the implicit default point). The merged CacheStats are modeled, not
// summed: BaseRuns is the number of distinct base-stage groups in the grid
// and BaseHits the cells beyond the first of each group (likewise profiles,
// and traces over the traceable cells only) — exactly the counters a fresh
// single-node cache reports. Summing backend deltas would drift under
// faults (a truncated response loses a counted run, a retry recounts one),
// silently breaking byte-identity with the single-node golden.
func (c *coordinator) sweep(ctx context.Context, benches []preexec.SweepBench, points []preexec.ConfigPoint, raws []json.RawMessage, scale, workers int, progress func(preexec.SuiteEvent)) (*preexec.SweepResult, error) {
	cells := make([]coordCell, 0, len(benches)*len(points))
	baseGroups := make(map[string]bool)
	profGroups := make(map[string]bool)
	traceGroups := make(map[string]bool)
	traceableCells := 0
	for _, b := range benches {
		name := b.Name
		if name == "" {
			name = b.Program.Name
		}
		for pi, pt := range points {
			ks := stageKeys(name, scale, pt.Config)
			baseGroups[ks.Base] = true
			profGroups[ks.Profile] = true
			// Every traceable cell performs exactly one trace lookup (its
			// selection-dependent run replays); untraceable cells simulate in
			// full and touch the trace stage not at all. This mirrors the
			// local-fallback path too: fallback cells run through the
			// coordinator's own engine, whose replay gating uses the same
			// Traceable predicate the key rendering does.
			if ks.Trace != "" {
				traceGroups[ks.Trace] = true
				traceableCells++
			}
			cells = append(cells, coordCell{
				bench:    name,
				point:    pt.Name,
				scale:    scale,
				raw:      raws[pi],
				cfg:      pt.Config,
				prog:     b.Program,
				routeKey: ks.Base + "\x00" + ks.Profile,
				keys:     ks,
			})
		}
	}

	res := &preexec.SweepResult{Cells: make([]preexec.SweepCell, len(cells))}
	for i, cl := range cells {
		res.Cells[i] = preexec.SweepCell{Bench: cl.bench, Point: cl.point, Err: preexec.ErrJobNotRun}
	}
	res.Cache = preexec.CacheStats{
		BaseRuns:    int64(len(baseGroups)),
		BaseHits:    int64(len(cells) - len(baseGroups)),
		ProfileRuns: int64(len(profGroups)),
		ProfileHits: int64(len(cells) - len(profGroups)),
		TraceRuns:   int64(len(traceGroups)),
		TraceHits:   int64(traceableCells - len(traceGroups)),
	}

	var (
		mu   sync.Mutex // guards done and progress calls
		done int
	)
	err := preexec.ParallelEach(ctx, workers, len(cells), func(ctx context.Context, i int) error {
		rep, err := c.runCell(ctx, cells[i])
		if err == nil {
			res.Cells[i].Report = rep
		}
		res.Cells[i].Err = err
		mu.Lock()
		done++
		if progress != nil {
			ev := preexec.SuiteEvent{Index: i, Total: len(cells), Done: done, Name: cells[i].bench + "/" + cells[i].point, Err: err}
			if err == nil {
				ev.Report = &res.Cells[i].Report
			}
			//lint:ignore lockscope progress is documented as serialized (the Suite.Progress contract); the mutex provides exactly that, and the callback must not call back into the coordinator.
			progress(ev)
		}
		mu.Unlock()
		return err
	})
	return res, err
}

// runCell evaluates one cell: remotely on its home backend with retry,
// backoff, and failover; locally through the coordinator's own engine and
// StageCache when no backend is live (graceful degradation) or when the
// fleet deterministically rejected the cell (e.g. a workload registered
// only on the coordinator).
//
// When the request carries recording trace context, the cell's scheduling
// unfolds as spans: one "route" span per cell, one "forward" child per
// remote attempt (the attempt's backend as an attribute, its span ID
// propagated in the X-Preexec-Trace header so the backend's own spans
// stitch underneath), and a "local-fallback" child when the coordinator
// evaluates the cell itself. With tracing off every span below is nil and
// each call a no-op.
func (c *coordinator) runCell(ctx context.Context, cell coordCell) (preexec.Report, error) {
	tc := obs.TraceFrom(ctx)
	if !tc.Record {
		tc.Trace = ""
	}
	tr := c.srv.obs.tracer
	route := tr.StartSpan(tc.Trace, tc.Parent, "route")
	route.SetAttr("cell", cell.bench+"/"+cell.point)
	defer route.End()
	rep, st, err := fleet.Do(ctx, c.pool, cell.routeKey, func(ctx context.Context, backend int) (preexec.Report, error) {
		fw := tr.StartSpan(tc.Trace, route.SpanID(), "forward")
		fw.SetAttr("backend", c.addrs[backend])
		var hdr string
		if tc.Trace != "" {
			hdr = obs.FormatTraceHeader(tc.Trace, fw.SpanID())
		}
		rep, err := c.remoteCell(ctx, backend, cell, hdr)
		if err != nil {
			fw.SetAttr("error", err.Error())
		}
		fw.End()
		return rep, err
	})
	route.SetAttr("attempts", obs.AttrInt(st.Attempts))
	if st.FailedOver {
		route.SetAttr("failed_over", "true")
	}
	switch {
	case err == nil:
		c.remoteCells.Inc()
		return rep, nil
	case errors.Is(err, fleet.ErrNoBackends), fleet.IsPermanent(err):
		c.localFallbacks.Inc()
		lf := tr.StartSpan(tc.Trace, route.SpanID(), "local-fallback")
		defer lf.End()
		return c.srv.engine(cell.cfg).Evaluate(ctx, cell.prog)
	default:
		return preexec.Report{}, err
	}
}

// collectSpans stitches a cross-node trace after a traced sweep: each
// backend's /v1/spans is queried for the trace and its spans imported into
// the coordinator's tracer tagged with the backend address. Best effort — a
// dead backend simply contributes no spans (its cells' forward spans carry
// the error already).
func (c *coordinator) collectSpans(ctx context.Context, trace string) {
	for _, addr := range c.addrs {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/spans?trace="+trace, nil)
		if err != nil {
			continue
		}
		resp, err := c.client.Do(req)
		if err != nil {
			continue
		}
		spans, _ := obs.ReadNDJSON(io.LimitReader(resp.Body, remoteBodyLimit))
		resp.Body.Close()
		for _, sp := range spans {
			if sp.Trace != trace {
				continue
			}
			sp.Node = addr
			c.srv.obs.tracer.Import(sp)
		}
	}
}

// remoteCell runs one cell on one backend as a single-cell /v1/sweep and
// validates the payload hard: a short, garbled, or mislabeled response is an
// ordinary retryable failure, never a value. Only a decodable 4xx rejection
// is permanent — it is the request's own fault and retrying elsewhere
// cannot change it. traceHdr, when non-empty, is the X-Preexec-Trace value
// linking the backend's spans under this attempt's forward span.
func (c *coordinator) remoteCell(ctx context.Context, backend int, cell coordCell, traceHdr string) (preexec.Report, error) {
	var zero preexec.Report
	body, err := json.Marshal(struct {
		Benches []string     `json:"benches"`
		Scale   int          `json:"scale,omitempty"`
		Points  []sweepPoint `json:"points"`
		Workers int          `json:"workers"`
	}{
		Benches: []string{cell.bench},
		Scale:   cell.scale,
		Points:  []sweepPoint{{Name: cell.point, Config: cell.raw}},
		Workers: 1,
	})
	if err != nil {
		return zero, fleet.Permanent(err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.addrs[backend]+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		return zero, fleet.Permanent(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceHdr != "" {
		req.Header.Set(obs.TraceHeader, traceHdr)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return zero, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, remoteBodyLimit))
	if err != nil {
		return zero, fmt.Errorf("cell %s/%s: reading response: %w", cell.bench, cell.point, err)
	}
	if resp.StatusCode != http.StatusOK {
		msg := fmt.Errorf("cell %s/%s: backend status %d: %.200s", cell.bench, cell.point, resp.StatusCode, raw)
		if resp.StatusCode >= 400 && resp.StatusCode < 500 && json.Valid(raw) {
			return zero, fleet.Permanent(msg)
		}
		return zero, msg
	}
	var remote struct {
		Cells []struct {
			Bench  string         `json:"bench"`
			Point  string         `json:"point"`
			Report preexec.Report `json:"report"`
			Error  string         `json:"error"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(raw, &remote); err != nil {
		return zero, fmt.Errorf("cell %s/%s: garbled response: %w", cell.bench, cell.point, err)
	}
	if len(remote.Cells) != 1 {
		return zero, fmt.Errorf("cell %s/%s: backend returned %d cells, want 1", cell.bench, cell.point, len(remote.Cells))
	}
	rc := remote.Cells[0]
	if rc.Bench != cell.bench || rc.Point != cell.point {
		return zero, fmt.Errorf("cell %s/%s: backend returned cell %s/%s", cell.bench, cell.point, rc.Bench, rc.Point)
	}
	if rc.Error != "" {
		// The grid was validated before fan-out, so a per-cell failure under
		// a valid configuration is backend trouble (a draining or saturated
		// node), not a property of the cell: retryable.
		return zero, fmt.Errorf("cell %s/%s: backend cell error: %s", cell.bench, cell.point, rc.Error)
	}
	if rc.Report.Program == "" || rc.Report.Base.Retired == 0 {
		return zero, fmt.Errorf("cell %s/%s: backend returned an empty report", cell.bench, cell.point)
	}
	return rc.Report, nil
}

// fleetStats is the coordinator section of /v1/stats.
type fleetStats struct {
	// Backends is each backend's health, in -backends order.
	Backends []fleet.BackendStatus `json:"backends"`
	// Retries counts remote cell attempts beyond each cell's first;
	// Failovers counts cells served away from their home backend.
	Retries   int64 `json:"retries"`
	Failovers int64 `json:"failovers"`
	// RemoteCells counts cells completed on a backend; LocalFallbacks
	// counts cells the coordinator evaluated itself.
	RemoteCells    int64 `json:"remote_cells"`
	LocalFallbacks int64 `json:"local_fallbacks"`
}

func (c *coordinator) stats() *fleetStats {
	retries, failovers := c.pool.Stats()
	return &fleetStats{
		Backends:       c.pool.Snapshot(),
		Retries:        retries,
		Failovers:      failovers,
		RemoteCells:    c.remoteCells.Value(),
		LocalFallbacks: c.localFallbacks.Value(),
	}
}
