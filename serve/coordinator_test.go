package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"preexec"
	"preexec/internal/fleet"
	"preexec/internal/fleet/chaos"
	"preexec/internal/sweepio"
	"preexec/serve"
)

// coordGridBenches / coordGridPoints define the grid the coordinator tests
// sweep: 3 benchmarks x 3 points, where points "a" and "c" share their
// stage keys (they differ only in a selection switch) so the modeled merged
// cache counters must report cross-point hits, and point "b" differs in the
// measured window so it needs its own base run and profile.
var coordGridBenches = []string{"crafty", "gap", "mcf"}

var coordGridPoints = []struct{ name, cfg string }{
	{"a", smallCfg},
	{"b", `{"machine": {"warm_insts": 2000, "measure_insts": 9000}}`},
	{"c", `{"machine": {"warm_insts": 2000, "measure_insts": 8000}, "selection": {"optimize": false}}`},
}

func coordGridRequest(stream bool, format string) string {
	var pts []string
	for _, p := range coordGridPoints {
		pts = append(pts, fmt.Sprintf(`{"name": %q, "config": %s}`, p.name, p.cfg))
	}
	req := fmt.Sprintf(`{"benches": ["%s"], "points": [%s]`,
		strings.Join(coordGridBenches, `", "`), strings.Join(pts, ", "))
	if stream {
		req += `, "stream": true`
	}
	if format != "" {
		req += fmt.Sprintf(`, "format": %q`, format)
	}
	return req + `}`
}

// coordGridConfigs decodes the grid's points exactly as the handler does.
func coordGridConfigs(t *testing.T) []preexec.ConfigPoint {
	t.Helper()
	points := make([]preexec.ConfigPoint, len(coordGridPoints))
	for i, p := range coordGridPoints {
		cfg := preexec.DefaultConfig()
		if err := json.Unmarshal([]byte(p.cfg), &cfg); err != nil {
			t.Fatal(err)
		}
		points[i] = preexec.ConfigPoint{Name: p.name, Config: cfg}
	}
	return points
}

// singleNodeGolden renders the grid through a direct preexec.Sweep run with
// a fresh cache — the byte-exact reference every coordinator merge must hit.
func singleNodeGolden(t *testing.T, names []string, points []preexec.ConfigPoint) []byte {
	t.Helper()
	benches, err := preexec.SweepBenches(names, 1)
	if err != nil {
		t.Fatal(err)
	}
	sweep := &preexec.Sweep{Workers: 2}
	res, err := sweep.Run(context.Background(), benches, points)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := sweepio.Emit(&want, res, sweepio.Options{JSON: true, Point: true}); err != nil {
		t.Fatal(err)
	}
	return want.Bytes()
}

// coordFleet builds n backend servers (each behind a chaos proxy, initially
// pass-through) and a coordinator over them with probing disabled, so tests
// control fault determinism entirely through the proxies.
func coordFleet(t *testing.T, n int, fc serve.FleetConfig) (coordURL string, coord *serve.Server, proxies map[string]*chaos.Proxy) {
	t.Helper()
	proxies = make(map[string]*chaos.Proxy)
	var urls []string
	for i := 0; i < n; i++ {
		p := chaos.New(serve.New(serve.WithWorkers(2)), chaos.Schedule{})
		ts := httptest.NewServer(p)
		t.Cleanup(ts.Close)
		proxies[ts.URL] = p
		urls = append(urls, ts.URL)
	}
	coord = serve.New(serve.WithWorkers(2), serve.WithBackends(urls...), serve.WithFleetConfig(fc))
	t.Cleanup(coord.Close)
	cts := httptest.NewServer(coord)
	t.Cleanup(cts.Close)
	return cts.URL, coord, proxies
}

func coordFleetStats(t *testing.T, coordURL string) (st struct {
	Backends []struct {
		Name      string `json:"name"`
		Live      bool   `json:"live"`
		Ejections int64  `json:"ejections"`
	} `json:"backends"`
	Retries        int64 `json:"retries"`
	Failovers      int64 `json:"failovers"`
	RemoteCells    int64 `json:"remote_cells"`
	LocalFallbacks int64 `json:"local_fallbacks"`
}) {
	t.Helper()
	raw := serverStats(t, coordURL)
	if raw["fleet"] == nil {
		t.Fatal("/v1/stats has no fleet section in coordinator mode")
	}
	if err := json.Unmarshal(raw["fleet"], &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestCoordinatorSweepBitIdentical is the no-fault half of the acceptance
// criterion: a 3-backend coordinator sweep merges to the exact bytes of a
// single-node preexec.Sweep run — reports, cell order, and the modeled
// cache counters all included.
func TestCoordinatorSweepBitIdentical(t *testing.T) {
	coordURL, _, _ := coordFleet(t, 3, serve.FleetConfig{ProbeInterval: -1})
	status, got := post(t, coordURL+"/v1/sweep", coordGridRequest(false, ""))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}
	want := singleNodeGolden(t, coordGridBenches, coordGridConfigs(t))
	if !bytes.Equal(got, want) {
		t.Fatalf("coordinator sweep differs from the single-node run\ncoord:  %s\nsingle: %s",
			firstDiffContext(got, want), firstDiffContext(want, got))
	}

	st := coordFleetStats(t, coordURL)
	cells := int64(len(coordGridBenches) * len(coordGridPoints))
	if st.RemoteCells != cells || st.LocalFallbacks != 0 {
		t.Errorf("remote_cells %d local_fallbacks %d, want %d remote and 0 local", st.RemoteCells, st.LocalFallbacks, cells)
	}
	if st.Retries != 0 || st.Failovers != 0 {
		t.Errorf("fault-free sweep recorded retries=%d failovers=%d", st.Retries, st.Failovers)
	}
	for _, b := range st.Backends {
		if !b.Live {
			t.Errorf("backend %s not live after a fault-free sweep", b.Name)
		}
	}
}

// TestCoordinatorChaosEjectionGolden is the acceptance criterion's fault
// half: one of three backends starts killing connections mid-grid (its
// first request passes, everything after dies), gets ejected after the
// consecutive-failure threshold, and its cells fail over to live backends —
// with the merged output still byte-identical to the single-node run and
// the retry/failover counters visible in the coordinator's stats.
func TestCoordinatorChaosEjectionGolden(t *testing.T) {
	coordURL, coord, proxies := coordFleet(t, 3, serve.FleetConfig{
		ProbeInterval: -1,
		Fleet: fleet.Config{
			BackoffBase: time.Millisecond,
			BackoffMax:  5 * time.Millisecond,
		},
	})

	// Pick the fault target deterministically: the backend that is home to
	// the most cells (>= 2 by pigeonhole over 9 cells), so at least one of
	// its requests is scheduled to die.
	points := coordGridConfigs(t)
	homes := make(map[string]int)
	for _, bench := range coordGridBenches {
		for _, pt := range points {
			homes[coord.CoordinatorHome(bench, 1, pt.Config)]++
		}
	}
	target, max := "", 0
	for addr, n := range homes {
		if n > max {
			target, max = addr, n
		}
	}
	if max < 2 {
		t.Fatalf("routing map %v has no backend with >= 2 cells", homes)
	}
	// Mid-grid failure: the target's first request completes, every later
	// one kills the connection. Order-insensitive beyond index 0, so the
	// coordinator's concurrency cannot perturb the schedule.
	proxies[target].SetSchedule(chaos.Schedule{
		Plan: []chaos.Fault{{Kind: chaos.None}},
		Then: chaos.Fault{Kind: chaos.Kill},
	})

	status, got := post(t, coordURL+"/v1/sweep", coordGridRequest(false, ""))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}
	want := singleNodeGolden(t, coordGridBenches, points)
	if !bytes.Equal(got, want) {
		t.Fatalf("chaos sweep differs from the single-node run\ncoord:  %s\nsingle: %s",
			firstDiffContext(got, want), firstDiffContext(want, got))
	}

	st := coordFleetStats(t, coordURL)
	cells := int64(len(coordGridBenches) * len(coordGridPoints))
	if st.RemoteCells != cells || st.LocalFallbacks != 0 {
		t.Errorf("remote_cells %d local_fallbacks %d, want every cell served remotely", st.RemoteCells, st.LocalFallbacks)
	}
	// Ejection takes exactly EjectAfter (3) failed attempts, each of which
	// forces a retry, and at least one cell must have been re-homed.
	if st.Retries < 3 {
		t.Errorf("retries %d, want >= 3 (the ejection threshold)", st.Retries)
	}
	if st.Failovers < 1 {
		t.Errorf("failovers %d, want >= 1", st.Failovers)
	}
	for _, b := range st.Backends {
		if b.Name == target {
			if b.Live || b.Ejections != 1 {
				t.Errorf("chaos backend %+v, want ejected exactly once", b)
			}
		} else if !b.Live {
			t.Errorf("healthy backend %s was ejected", b.Name)
		}
	}
}

// TestCoordinatorAllBackendsDeadLocalFallback: with every backend
// unreachable from the first request, the sweep still completes — the
// coordinator evaluates every cell through its own engine and StageCache —
// and still matches the single-node bytes.
func TestCoordinatorAllBackendsDeadLocalFallback(t *testing.T) {
	// Two dead addresses: bind-then-close guarantees a connection-refused
	// port rather than a hanging one.
	var dead []string
	for i := 0; i < 2; i++ {
		ts := httptest.NewServer(http.NotFoundHandler())
		dead = append(dead, ts.URL)
		ts.Close()
	}
	coord := serve.New(serve.WithWorkers(2),
		serve.WithBackends(dead...),
		serve.WithFleetConfig(serve.FleetConfig{
			ProbeInterval: -1,
			Fleet: fleet.Config{
				EjectAfter:  1,
				RetryBudget: 3,
				BackoffBase: time.Millisecond,
				BackoffMax:  2 * time.Millisecond,
			},
		}))
	t.Cleanup(coord.Close)
	cts := httptest.NewServer(coord)
	t.Cleanup(cts.Close)

	body := fmt.Sprintf(`{"benches": ["crafty"], "points": [{"name": "a", "config": %s}]}`, smallCfg)
	status, got := post(t, cts.URL+"/v1/sweep", body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}
	cfg := preexec.DefaultConfig()
	if err := json.Unmarshal([]byte(smallCfg), &cfg); err != nil {
		t.Fatal(err)
	}
	want := singleNodeGolden(t, []string{"crafty"}, []preexec.ConfigPoint{{Name: "a", Config: cfg}})
	if !bytes.Equal(got, want) {
		t.Fatalf("all-dead sweep differs from the single-node run\ncoord:  %s\nsingle: %s",
			firstDiffContext(got, want), firstDiffContext(want, got))
	}

	st := coordFleetStats(t, cts.URL)
	if st.LocalFallbacks != 1 || st.RemoteCells != 0 {
		t.Errorf("local_fallbacks %d remote_cells %d, want the one cell evaluated locally", st.LocalFallbacks, st.RemoteCells)
	}
	for _, b := range st.Backends {
		if b.Live {
			t.Errorf("unreachable backend %s still live", b.Name)
		}
	}
}

// TestCoordinatorStreaming: the NDJSON contract holds in coordinator mode —
// one cell event per completed cell, then the merged result.
func TestCoordinatorStreaming(t *testing.T) {
	coordURL, _, _ := coordFleet(t, 2, serve.FleetConfig{ProbeInterval: -1})
	body := fmt.Sprintf(`{"benches": ["crafty", "gap"], "stream": true,
		"points": [{"name": "base", "config": %s}]}`, smallCfg)
	resp, err := http.Post(coordURL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	var cells int
	var sawResult bool
	for {
		var ev struct {
			Event string
			Cell  struct {
				Name  string
				Done  int
				Total int
				Error string
			}
			Error  string
			Result *preexec.SweepResult
		}
		if err := dec.Decode(&ev); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		switch ev.Event {
		case "cell":
			cells++
			if ev.Cell.Total != 2 || ev.Cell.Name == "" || ev.Cell.Error != "" {
				t.Errorf("bad cell event %+v", ev.Cell)
			}
		case "result":
			sawResult = true
			if len(ev.Result.Cells) != 2 {
				t.Errorf("result has %d cells, want 2", len(ev.Result.Cells))
			}
			for _, c := range ev.Result.Cells {
				if c.Report.Base.Retired == 0 {
					t.Errorf("cell %s/%s has an empty report", c.Bench, c.Point)
				}
			}
		default:
			t.Errorf("unexpected event %q", ev.Event)
		}
	}
	if cells != 2 || !sawResult {
		t.Fatalf("stream had %d cell events (want 2), result %v", cells, sawResult)
	}
}

// TestGateStats: /v1/stats exposes the simulation gate's shape — the
// saturation signal coordinators probe for failover preference.
func TestGateStats(t *testing.T) {
	ts := newTestServer(t, serve.WithWorkers(3))
	stats := serverStats(t, ts.URL)
	var gate struct {
		Workers  int   `json:"workers"`
		InFlight int   `json:"in_flight"`
		Queued   int64 `json:"queued"`
	}
	if stats["gate"] == nil {
		t.Fatal("/v1/stats has no gate section")
	}
	if err := json.Unmarshal(stats["gate"], &gate); err != nil {
		t.Fatal(err)
	}
	if gate.Workers != 3 {
		t.Errorf("gate.workers = %d, want 3", gate.Workers)
	}
	if gate.InFlight != 0 || gate.Queued != 0 {
		t.Errorf("idle server reports in_flight=%d queued=%d", gate.InFlight, gate.Queued)
	}
}
