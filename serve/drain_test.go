package serve_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"

	"preexec/serve"
)

// TestDrainDuringStream pins the shutdown contract for NDJSON sweeps: when
// the server's base context is cancelled mid-stream (what cmd/preexecd does
// on SIGTERM), the client sees an explicit {"event":"error"} line — never a
// silently truncated stream that looks like a short but successful sweep,
// and never a result event assembled from partial work.
func TestDrainDuringStream(t *testing.T) {
	baseCtx, drain := context.WithCancel(context.Background())
	defer drain()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{
		Handler:     serve.New(serve.WithWorkers(1)),
		BaseContext: func(net.Listener) context.Context { return baseCtx },
	}
	go func() { _ = hs.Serve(ln) }()
	t.Cleanup(func() { _ = hs.Close() })

	// A 9-cell grid on a 1-worker server: plenty of stream left to drain
	// into after the first cell arrives.
	body := fmt.Sprintf(`{"benches": ["crafty", "gap", "mcf"], "stream": true, "workers": 1,
		"points": [{"name": "a", "config": %s},
		           {"name": "b", "config": %s},
		           {"name": "c", "config": %s}]}`, smallCfg, smallCfg, smallCfg)
	resp, err := http.Post("http://"+ln.Addr().String()+"/v1/sweep", "application/json",
		strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatalf("stream ended before the first event: %v", sc.Err())
	}
	first := sc.Bytes()
	var ev struct {
		Event string `json:"event"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(first, &ev); err != nil {
		t.Fatalf("first stream line %q: %v", first, err)
	}
	if ev.Event != "cell" {
		t.Fatalf("first event %q, want cell", ev.Event)
	}

	// SIGTERM arrives: the serving process cancels its base context, which
	// every in-flight request context inherits.
	drain()

	var sawError, sawResult bool
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		ev.Event, ev.Error = "", ""
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("stream line %q: %v", line, err)
		}
		switch ev.Event {
		case "cell":
			// Cells already finished may still flush; fine.
		case "error":
			sawError = true
			if ev.Error == "" {
				t.Error("error event with an empty message")
			}
		case "result":
			sawResult = true
		default:
			t.Errorf("unexpected event %q", ev.Event)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading drained stream: %v", err)
	}
	if sawResult {
		t.Error("drained stream emitted a result event")
	}
	if !sawError {
		t.Error("drained stream ended without an explicit error event")
	}
}
