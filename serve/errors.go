package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"preexec"
)

// errorResponse is the uniform JSON error body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the client is gone if this fails; nothing to do
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	// Load-limit responses carry Retry-After so fleet clients (and the sweep
	// coordinator's backoff) can pace themselves instead of hot-looping: the
	// 429 upload cap is a slow-moving budget, the 413 body bound something a
	// client can fix and resubmit promptly.
	switch status {
	case http.StatusTooManyRequests:
		w.Header().Set("Retry-After", "60")
	case http.StatusRequestEntityTooLarge:
		w.Header().Set("Retry-After", "10")
	}
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// statusFor maps a pipeline error onto an HTTP status: unknown workloads are
// 404 (the name is the resource), registry collisions 409, oversized bodies
// 413, and everything else — validation failures surfaced by the library
// entry points — 400.
func statusFor(err error) int {
	var tooBig *http.MaxBytesError
	switch {
	case errors.Is(err, preexec.ErrUnknownWorkload):
		return http.StatusNotFound
	case errors.Is(err, preexec.ErrDuplicateWorkload):
		return http.StatusConflict
	case errors.As(err, &tooBig):
		return http.StatusRequestEntityTooLarge
	default:
		return http.StatusBadRequest
	}
}

// cancelled reports whether the request failed because its context ended —
// a client disconnect or the server draining for shutdown. The handler
// cannot tell the two apart, so it always answers 503: a disconnected
// client never sees it, and a still-connected client during shutdown gets
// an honest error instead of an empty 200.
func cancelled(ctx context.Context, err error) bool {
	return ctx.Err() != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}

// decodeBody strictly decodes the request body into dst: unknown fields,
// malformed JSON, trailing garbage, and oversize bodies are all 4xx errors
// the caller reports with the field context it has. The trailing check
// needs both probes: More() catches a second value, Token() catches a
// stray closing delimiter More() does not consider "another element".
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("request body: %w", err)
	}
	if dec.More() {
		return errors.New("request body: trailing data after JSON object")
	}
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		return errors.New("request body: trailing data after JSON object")
	}
	return nil
}

// decodeConfig decodes an optional configuration fragment over the paper's
// defaults: absent fields keep their DefaultConfig values, so a request can
// say only what it changes (and the zero-Config pitfall — Optimize/Merge
// silently off — cannot happen over HTTP).
func decodeConfig(raw json.RawMessage) (preexec.Config, error) {
	cfg := preexec.DefaultConfig()
	if len(raw) == 0 {
		return cfg, nil
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return preexec.DefaultConfig(), err
	}
	return cfg, nil
}
