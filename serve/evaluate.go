package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"preexec"
)

// evaluateRequest is one benchmark x one configuration. Config is decoded
// over preexec.DefaultConfig, so it only needs the fields that differ from
// the paper's base flow.
type evaluateRequest struct {
	Workload string          `json:"workload"`
	Scale    int             `json:"scale,omitempty"`
	Config   json.RawMessage `json:"config,omitempty"`
}

// evalKey canonicalizes a request for the single-flight layer: identical
// (workload, scale, configuration) triples share one in-flight evaluation.
// The configuration is keyed by its canonical JSON — field order is fixed by
// the struct, so semantically identical requests collide as intended.
func evalKey(name string, scale int, cfg preexec.Config) string {
	raw, err := json.Marshal(cfg)
	if err != nil {
		// Config is a plain data struct; this cannot fail. Degrade to an
		// unshared key rather than panicking in a request handler.
		return fmt.Sprintf("%s|%d|nocoalesce-%p", name, scale, &cfg)
	}
	return strings.ToLower(name) + "|" + fmt.Sprint(scale) + "|" + string(raw)
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req evaluateRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, statusFor(err), "%v", err)
		return
	}
	if req.Workload == "" {
		writeError(w, http.StatusBadRequest, "workload: a benchmark name is required")
		return
	}
	scale := req.Scale
	if scale == 0 {
		scale = 1
	}
	if scale < 1 {
		writeError(w, http.StatusBadRequest, "scale: %d, want >= 1", req.Scale)
		return
	}
	cfg, err := decodeConfig(req.Config)
	if err != nil {
		writeError(w, http.StatusBadRequest, "config: %v", err)
		return
	}
	ctx := r.Context()
	bench, err := s.bench(ctx, req.Workload, scale)
	if err != nil {
		if cancelled(ctx, err) {
			writeError(w, http.StatusServiceUnavailable, "request cancelled: %v", err)
			return
		}
		// The library error already names the workload domain; no prefix.
		writeError(w, statusFor(err), "%v", err)
		return
	}

	rep, _, err := s.flights.Do(ctx, evalKey(bench.Name, scale, cfg), func() (preexec.Report, error) {
		return s.engine(cfg).Evaluate(ctx, bench.Program)
	})
	if err != nil {
		if cancelled(ctx, err) {
			// A disconnected client never reads this; a connected one (the
			// server is draining) must not see an empty 200.
			writeError(w, http.StatusServiceUnavailable, "evaluation cancelled: %v", err)
			return
		}
		writeError(w, http.StatusInternalServerError, "evaluate %s: %v", bench.Name, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}
