package serve

import "preexec"

// CoordinatorHome returns the backend address the coordinator routes the
// (bench, scale, cfg) cell to — a test hook that lets the chaos tests pick
// their fault target deterministically even though httptest backends get
// random ports (and therefore random ring placement) per run.
func (s *Server) CoordinatorHome(bench string, scale int, cfg preexec.Config) string {
	ks := stageKeys(bench, scale, cfg)
	return s.coord.addrs[s.coord.pool.Order(ks.Base + "\x00" + ks.Profile)[0]]
}
