package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"testing"

	"preexec"
	"preexec/internal/sweepio"
	"preexec/serve"
)

// TestSweepGoldenBitIdentical replays the recorded /v1/sweep request in
// testdata/sweep_golden.json — 3 workloads x 4 selection configurations —
// against a fresh server and requires the HTTP response to be byte-for-byte
// identical to a direct preexec.Sweep run rendered through the same
// internal/sweepio encoder: the serving layer adds no numeric drift, no
// field reordering, and no cache-counter skew.
func TestSweepGoldenBitIdentical(t *testing.T) {
	raw, err := os.ReadFile("testdata/sweep_golden.json")
	if err != nil {
		t.Fatal(err)
	}

	ts := newTestServer(t, serve.WithWorkers(2))
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got bytes.Buffer
	if _, err := got.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got.Bytes())
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q, want application/json", ct)
	}

	// The same grid through the library: decoded exactly as the handler
	// decodes it (point configurations merge over DefaultConfig).
	var req struct {
		Benches []string `json:"benches"`
		Scale   int      `json:"scale"`
		Workers int      `json:"workers"`
		Points  []struct {
			Name   string          `json:"name"`
			Config json.RawMessage `json:"config"`
		} `json:"points"`
	}
	if err := json.Unmarshal(raw, &req); err != nil {
		t.Fatal(err)
	}
	if len(req.Benches) != 3 || len(req.Points) != 4 {
		t.Fatalf("golden request is %dx%d, want 3x4", len(req.Benches), len(req.Points))
	}
	benches, err := preexec.SweepBenches(req.Benches, req.Scale)
	if err != nil {
		t.Fatal(err)
	}
	points := make([]preexec.ConfigPoint, len(req.Points))
	for i, pt := range req.Points {
		cfg := preexec.DefaultConfig()
		if err := json.Unmarshal(pt.Config, &cfg); err != nil {
			t.Fatal(err)
		}
		points[i] = preexec.ConfigPoint{Name: pt.Name, Config: cfg}
	}
	sweep := &preexec.Sweep{Workers: req.Workers}
	res, err := sweep.Run(context.Background(), benches, points)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := sweepio.Emit(&want, res, sweepio.Options{JSON: true, Point: true}); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("HTTP sweep response differs from the direct library run\nhttp:    %s\nlibrary: %s",
			firstDiffContext(got.Bytes(), want.Bytes()), firstDiffContext(want.Bytes(), got.Bytes()))
	}
}

// firstDiffContext trims a to a window around its first difference from b,
// keeping the failure message readable on multi-KB payloads.
func firstDiffContext(a, b []byte) []byte {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	start, end := i-80, i+80
	if start < 0 {
		start = 0
	}
	if end > len(a) {
		end = len(a)
	}
	return a[start:end]
}
