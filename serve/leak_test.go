package serve

import (
	"net/http/httptest"
	"runtime"
	"testing"
	"time"
)

// TestCloseJoinsProbeLoop pins the coordinator's goroutine lifecycle — the
// dynamic twin of the static goroutine-analyzer proof: Server.Close must
// block until the health-probe goroutine has exited (not merely signal it),
// a second Close must be a safe no-op, and tearing the coordinator down must
// return the process to its pre-coordinator goroutine count.
func TestCloseJoinsProbeLoop(t *testing.T) {
	backend := httptest.NewServer(New(WithWorkers(1)))
	defer backend.Close()

	before := runtime.NumGoroutine()
	s := New(WithBackends(backend.URL),
		WithFleetConfig(FleetConfig{ProbeInterval: time.Millisecond}))

	// The probe loop is live before Close.
	select {
	case <-s.coord.probeDone:
		t.Fatal("probe goroutine exited before Close")
	default:
	}

	// Let it complete at least one probe round against the real backend.
	time.Sleep(5 * time.Millisecond)

	s.Close()
	// Close's contract is a join, not a signal: by the time it returns the
	// goroutine must be gone.
	select {
	case <-s.coord.probeDone:
	default:
		t.Fatal("Close returned but the probe goroutine is still running")
	}
	s.Close() // idempotent

	// No leak: once the backend's keep-alive connections are torn down, the
	// goroutine count returns to the pre-coordinator baseline.
	backend.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d goroutines before the coordinator, %d after Close",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
