package serve

import (
	"net/http"

	"preexec"
	"preexec/internal/obs"
)

// serverObs is the server's observability state: one metrics registry that
// GET /metrics renders and /v1/stats reads, one tracer every span records
// into, and the stage-latency histograms fed through the engine's
// StageObserver hook. All counters the registry renders are the same objects
// the rest of the server mutates — /v1/stats and /metrics cannot drift.
type serverObs struct {
	reg    *obs.Registry
	tracer *obs.Tracer
	clock  obs.Clock

	requestsInFlight  *obs.Gauge
	requestsCompleted *obs.Counter

	// stage maps stage names to their latency histograms. Read-only after
	// construction, so StageStart needs no lock.
	stage map[string]*obs.Histogram
}

// obsStages are the stage labels carrying latency histograms: the engine
// pipeline stages (including the trace-replay pair) plus the server's
// program-build stage.
var obsStages = []string{"build", "base", "profile", "select", "sim", "trace", "replay"}

// tracerSeed seeds the span-ID sequence. Trace and span IDs are identity,
// not randomness: a fixed seed keeps them reproducible across runs without
// touching the process random source.
const tracerSeed = 1

func lbl(k, v string) obs.Label { return obs.Label{Key: k, Value: v} }

// newServerObs builds the registry and registers every non-fleet metric.
// The registered closures read the server's own objects lazily at render
// time, so nothing is double-counted.
func newServerObs(s *Server) *serverObs {
	o := &serverObs{
		reg:    obs.NewRegistry(),
		tracer: obs.NewTracer(tracerSeed, obs.SystemClock),
		clock:  obs.SystemClock,
		stage:  make(map[string]*obs.Histogram, len(obsStages)),
	}
	r := o.reg

	for _, st := range obsStages {
		o.stage[st] = r.Histogram("preexec_stage_duration_seconds",
			"Latency of pipeline stage executions; cache hits are never observed.",
			obs.LatencyBuckets, lbl("stage", st))
	}

	cache := func(f func(preexec.CacheStats) int64) func() int64 {
		return func() int64 { return f(s.cache.Stats()) }
	}
	r.CounterFunc("preexec_stage_cache_runs_total",
		"Stage computations actually executed by the shared StageCache.",
		cache(func(c preexec.CacheStats) int64 { return c.BaseRuns }), lbl("stage", "base"))
	r.CounterFunc("preexec_stage_cache_runs_total", "",
		cache(func(c preexec.CacheStats) int64 { return c.ProfileRuns }), lbl("stage", "profile"))
	r.CounterFunc("preexec_stage_cache_runs_total", "",
		cache(func(c preexec.CacheStats) int64 { return c.TraceRuns }), lbl("stage", "trace"))
	r.CounterFunc("preexec_stage_cache_hits_total",
		"Stage requests served from the shared StageCache.",
		cache(func(c preexec.CacheStats) int64 { return c.BaseHits }), lbl("stage", "base"))
	r.CounterFunc("preexec_stage_cache_hits_total", "",
		cache(func(c preexec.CacheStats) int64 { return c.ProfileHits }), lbl("stage", "profile"))
	r.CounterFunc("preexec_stage_cache_hits_total", "",
		cache(func(c preexec.CacheStats) int64 { return c.TraceHits }), lbl("stage", "trace"))
	r.CounterFunc("preexec_stage_cache_evictions_total",
		"Cache entries dropped by the LRU bound (all stages).",
		cache(func(c preexec.CacheStats) int64 { return c.Evictions }))
	r.GaugeFunc("preexec_stage_cache_entries",
		"Cache entries currently held per stage.",
		func() int64 { base, _, _ := s.cache.Len(); return int64(base) }, lbl("stage", "base"))
	r.GaugeFunc("preexec_stage_cache_entries", "",
		func() int64 { _, prof, _ := s.cache.Len(); return int64(prof) }, lbl("stage", "profile"))
	r.GaugeFunc("preexec_stage_cache_entries", "",
		func() int64 { _, _, trace := s.cache.Len(); return int64(trace) }, lbl("stage", "trace"))

	r.CounterFunc("preexec_flights_started_total",
		"Evaluations actually computed by the request-coalescing layer.",
		func() int64 { started, _ := s.flights.Stats(); return started })
	r.CounterFunc("preexec_flights_coalesced_total",
		"Requests served by another request's in-flight evaluation.",
		func() int64 { _, coalesced := s.flights.Stats(); return coalesced })
	r.GaugeFunc("preexec_flights_waiting",
		"Requests currently blocked on another request's flight.",
		s.flights.Waiting)

	r.GaugeFunc("preexec_gate_workers",
		"Server-wide bound on concurrently running expensive stages.",
		func() int64 { return int64(s.workers) })
	r.GaugeFunc("preexec_gate_in_flight",
		"Expensive stages currently holding a worker slot.",
		func() int64 { return int64(s.gate.inFlight()) })
	r.GaugeFunc("preexec_gate_queued",
		"Stages blocked waiting for a worker slot.",
		s.gate.queueDepth)

	r.GaugeFunc("preexec_programs_cached",
		"Built (workload, scale) programs held for cross-request cache identity.",
		func() int64 { return int64(s.cachedPrograms()) })
	r.GaugeFunc("preexec_workloads",
		"Registry size: built-in workloads plus run-time registrations.",
		func() int64 { return int64(len(preexec.WorkloadNames())) })
	r.GaugeFunc("preexec_uploads",
		"Run-time workload registrations accepted over POST /v1/workloads.",
		s.uploads.Load)

	o.requestsInFlight = r.Gauge("preexec_requests_in_flight",
		"HTTP requests currently being served (includes the scrape itself).")
	o.requestsCompleted = &obs.Counter{}
	r.RegisterCounter("preexec_requests_completed_total",
		"HTTP requests completed since start.", o.requestsCompleted)

	return o
}

// registerFleet adds coordinator-mode metrics: the fleet pool's own retry,
// failover, and per-backend health counters (registered by reference — the
// pool mutates them, the registry renders them), plus the coordinator's
// remote-cell and local-fallback counters.
func (o *serverObs) registerFleet(c *coordinator) {
	r := o.reg
	retries, failovers := c.pool.Counters()
	r.RegisterCounter("preexec_fleet_retries_total",
		"Remote cell attempts beyond each cell's first.", retries)
	r.RegisterCounter("preexec_fleet_failovers_total",
		"Cells served away from their home backend.", failovers)
	r.RegisterCounter("preexec_fleet_remote_cells_total",
		"Sweep cells completed on a backend.", &c.remoteCells)
	r.RegisterCounter("preexec_fleet_local_fallbacks_total",
		"Sweep cells the coordinator evaluated itself.", &c.localFallbacks)
	for i, addr := range c.addrs {
		failures, successes, ejections, readmissions := c.pool.BackendCounters(i)
		b := lbl("backend", addr)
		r.RegisterCounter("preexec_fleet_backend_failures_total",
			"Failed attempts against the backend.", failures, b)
		r.RegisterCounter("preexec_fleet_backend_successes_total",
			"Successful attempts against the backend.", successes, b)
		r.RegisterCounter("preexec_fleet_backend_ejections_total",
			"Times the backend was ejected for consecutive failures.", ejections, b)
		r.RegisterCounter("preexec_fleet_backend_readmissions_total",
			"Times the health probe re-admitted the backend.", readmissions, b)
		i := i
		r.GaugeFunc("preexec_fleet_backend_live",
			"1 when the backend is currently routable, 0 when ejected.",
			func() int64 {
				if c.pool.Snapshot()[i].Live {
					return 1
				}
				return 0
			}, b)
		r.GaugeFunc("preexec_fleet_backend_load",
			"Backend load as last reported by the health probe.",
			func() int64 { return int64(c.pool.Snapshot()[i].Load) }, b)
	}
}

// noopEnd keeps StageStart allocation-free for unknown stage names.
func noopEnd() {}

// StageStart implements preexec.StageObserver: each stage execution's
// latency lands in the matching histogram. Spans are not recorded here —
// this observer is shared by every request, so per-request span tracing
// installs its own obs.SpanStages alongside (see tracedEngine).
func (o *serverObs) StageStart(stage, bench string) func() {
	h := o.stage[stage]
	if h == nil {
		return noopEnd
	}
	start := o.clock.Now()
	return func() { h.Observe(o.clock.Now().Sub(start)) }
}

// stageFanout forwards stage callbacks to two observers — the server's
// histograms plus a per-request span recorder.
type stageFanout struct {
	a, b preexec.StageObserver
}

func (f stageFanout) StageStart(stage, bench string) func() {
	ea := f.a.StageStart(stage, bench)
	eb := f.b.StageStart(stage, bench)
	return func() { eb(); ea() }
}

// tracedEngine builds a sweep engine over the shared gated backends whose
// observer records per-stage spans under the request's trace in addition to
// feeding the latency histograms.
func (s *Server) tracedEngine(trace, parent string) *preexec.Engine {
	return preexec.New(
		preexec.WithProfiler(s.profiler),
		preexec.WithSelector(s.selector),
		preexec.WithSimulator(s.simulator),
		preexec.WithStageObserver(stageFanout{
			a: s.obs,
			b: &obs.SpanStages{Tracer: s.obs.tracer, Trace: trace, Parent: parent},
		}),
	)
}

// handleMetrics serves GET /metrics: the registry in Prometheus text
// exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.obs.reg.WriteText(w)
}

// handleSpans serves GET /v1/spans?trace=<id>: the recorded spans of one
// trace as NDJSON. This is the span side channel — spans never ride in
// response bodies of the deterministic API surface, so traced sweeps stay
// byte-identical; a coordinator stitches cross-node traces by querying this
// endpoint on its backends.
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	trace := r.URL.Query().Get("trace")
	if trace == "" {
		writeError(w, http.StatusBadRequest, "trace: required")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = obs.WriteNDJSON(w, s.obs.tracer.Collect(trace))
}
