package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"preexec"
	"preexec/internal/fleet"
	"preexec/internal/fleet/chaos"
	"preexec/internal/obs"
	"preexec/serve"
)

// tracedSweep posts a sweep with ?trace=1 and returns the response status,
// body, and the trace ID echoed on the X-Preexec-Trace header.
func tracedSweep(t *testing.T, base, body string) (int, []byte, string) {
	t.Helper()
	resp, err := http.Post(base+"/v1/sweep?trace=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes(), resp.Header.Get(obs.TraceHeader)
}

// fetchSpans reads GET /v1/spans?trace= as parsed spans.
func fetchSpans(t *testing.T, base, trace string) []obs.Span {
	t.Helper()
	resp, err := http.Get(base + "/v1/spans?trace=" + trace)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/spans: status %d", resp.StatusCode)
	}
	spans, err := obs.ReadNDJSON(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return spans
}

// TestSweepGoldenBitIdenticalTraced is the tracing half of the golden
// discipline: a sweep with span recording on returns the exact bytes of a
// direct library run — spans travel only through the header/endpoint side
// channel — and that side channel actually carries the stage timeline.
func TestSweepGoldenBitIdenticalTraced(t *testing.T) {
	ts := newTestServer(t, serve.WithWorkers(2))
	body := fmt.Sprintf(`{"benches": ["crafty", "mcf"], "points": [{"name": "a", "config": %s}]}`, smallCfg)
	status, got, trace := tracedSweep(t, ts.URL, body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}
	if trace == "" {
		t.Fatal("traced sweep response has no X-Preexec-Trace header")
	}

	cfg := preexec.DefaultConfig()
	if err := json.Unmarshal([]byte(smallCfg), &cfg); err != nil {
		t.Fatal(err)
	}
	want := singleNodeGolden(t, []string{"crafty", "mcf"}, []preexec.ConfigPoint{{Name: "a", Config: cfg}})
	if !bytes.Equal(got, want) {
		t.Fatalf("traced sweep differs from the untraced library run\ntraced: %s\nplain:  %s",
			firstDiffContext(got, want), firstDiffContext(want, got))
	}

	spans := fetchSpans(t, ts.URL, trace)
	byName := make(map[string]int)
	for _, sp := range spans {
		if sp.Trace != trace {
			t.Errorf("span %s belongs to trace %s, asked for %s", sp.ID, sp.Trace, trace)
		}
		byName[sp.Name]++
	}
	if byName["sweep"] != 1 {
		t.Errorf("spans %v: want exactly one sweep root", byName)
	}
	// Two previously-unseen benchmarks, one point: one base run, one
	// profile, one selection, and — the runs are small enough to trace — one
	// trace recording plus one replayed p-thread run each. No cell simulates
	// a p-thread run in full, so no stage:sim span exists.
	for _, stage := range []string{"stage:base", "stage:profile", "stage:select", "stage:trace", "stage:replay"} {
		if byName[stage] != 2 {
			t.Errorf("spans %v: want 2 %s spans", byName, stage)
		}
	}
	if byName["stage:sim"] != 0 {
		t.Errorf("spans %v: replayed cells must record no full-simulation span", byName)
	}

	// An untraced request must record nothing: same server, no ?trace=1.
	status, _ = post(t, ts.URL+"/v1/sweep", body)
	if status != http.StatusOK {
		t.Fatalf("untraced sweep status %d", status)
	}
	if n := len(spans); len(fetchSpans(t, ts.URL, trace)) != n {
		t.Error("untraced sweep recorded spans into an old trace")
	}
}

// TestMetricsEndpoint checks GET /metrics renders the core families with
// values consistent with the work the server just did, and agrees with
// /v1/stats (both read the same objects).
func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t, serve.WithWorkers(3))
	body := fmt.Sprintf(`{"benches": ["crafty"], "points": [{"name": "a", "config": %s}]}`, smallCfg)
	if status, out := post(t, ts.URL+"/v1/sweep", body); status != http.StatusOK {
		t.Fatalf("sweep status %d: %s", status, out)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain exposition", ct)
	}
	text := buf.String()

	metric := func(series string) int64 {
		t.Helper()
		for _, line := range strings.Split(text, "\n") {
			if rest, ok := strings.CutPrefix(line, series+" "); ok {
				v, err := strconv.ParseInt(rest, 10, 64)
				if err != nil {
					t.Fatalf("series %s: value %q: %v", series, rest, err)
				}
				return v
			}
		}
		t.Fatalf("series %s not rendered:\n%s", series, text)
		return 0
	}

	if got := metric(`preexec_stage_duration_seconds_count{stage="base"}`); got != 1 {
		t.Errorf("base stage count = %d, want 1", got)
	}
	// The p-thread run rides the trace-replay fast path: one recording, one
	// replay, and no full simulation.
	if got := metric(`preexec_stage_duration_seconds_count{stage="trace"}`); got != 1 {
		t.Errorf("trace stage count = %d, want 1", got)
	}
	if got := metric(`preexec_stage_duration_seconds_count{stage="replay"}`); got != 1 {
		t.Errorf("replay stage count = %d, want 1", got)
	}
	if got := metric(`preexec_stage_duration_seconds_count{stage="sim"}`); got != 0 {
		t.Errorf("sim stage count = %d, want 0 (replay served the p-thread run)", got)
	}
	if got := metric(`preexec_stage_cache_runs_total{stage="base"}`); got != 1 {
		t.Errorf("base cache runs = %d, want 1", got)
	}
	if got := metric(`preexec_stage_cache_runs_total{stage="trace"}`); got != 1 {
		t.Errorf("trace cache runs = %d, want 1", got)
	}
	if got := metric(`preexec_gate_workers`); got != 3 {
		t.Errorf("gate workers = %d, want 3", got)
	}
	if got := metric(`preexec_programs_cached`); got != 1 {
		t.Errorf("programs cached = %d, want 1", got)
	}
	// The completed counter must match /v1/stats' requests.completed read a
	// moment later: 1 sweep + 1 /metrics, then the stats request itself is
	// still in flight when it reads the gauge.
	completedAtScrape := metric(`preexec_requests_completed_total`)
	if completedAtScrape < 1 {
		t.Errorf("requests completed = %d after a sweep", completedAtScrape)
	}
	stats := serverStats(t, ts.URL)
	var reqs struct {
		InFlight  int64 `json:"in_flight"`
		Completed int64 `json:"completed"`
	}
	if err := json.Unmarshal(stats["requests"], &reqs); err != nil {
		t.Fatal(err)
	}
	if reqs.Completed != completedAtScrape+1 || reqs.InFlight != 1 {
		t.Errorf("stats requests = %+v, want completed %d and the stats request itself in flight",
			reqs, completedAtScrape+1)
	}
}

// TestCoordinatorTraceStitchingChaos drives the ejection-golden fault
// scenario with tracing on: the merged bytes still match the single-node
// run, and the collected trace shows the full cross-node story — a route
// span per cell, retried forwards under the faulty backend, and the
// backends' own spans imported with their node tags.
func TestCoordinatorTraceStitchingChaos(t *testing.T) {
	coordURL, coord, proxies := coordFleet(t, 3, serve.FleetConfig{
		ProbeInterval: -1,
		Fleet: fleet.Config{
			BackoffBase: time.Millisecond,
			BackoffMax:  5 * time.Millisecond,
		},
	})

	points := coordGridConfigs(t)
	homes := make(map[string]int)
	for _, bench := range coordGridBenches {
		for _, pt := range points {
			homes[coord.CoordinatorHome(bench, 1, pt.Config)]++
		}
	}
	target, max := "", 0
	for addr, n := range homes {
		if n > max {
			target, max = addr, n
		}
	}
	if max < 2 {
		t.Fatalf("routing map %v has no backend with >= 2 cells", homes)
	}
	proxies[target].SetSchedule(chaos.Schedule{
		Plan: []chaos.Fault{{Kind: chaos.None}},
		Then: chaos.Fault{Kind: chaos.Kill},
	})

	status, got, trace := tracedSweep(t, coordURL, coordGridRequest(false, ""))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}
	if trace == "" {
		t.Fatal("no trace ID on the response")
	}
	want := singleNodeGolden(t, coordGridBenches, points)
	if !bytes.Equal(got, want) {
		t.Fatalf("traced chaos sweep differs from the single-node run\ncoord:  %s\nsingle: %s",
			firstDiffContext(got, want), firstDiffContext(want, got))
	}

	spans := fetchSpans(t, coordURL, trace)
	routes := make(map[string]obs.Span) // route span ID -> span
	forwardsPerRoute := make(map[string]int)
	var sweepRoot obs.Span
	backendSweeps := 0
	stitchedNodes := make(map[string]bool)
	for _, sp := range spans {
		switch {
		case sp.Name == "sweep" && sp.Node == "":
			sweepRoot = sp
		case sp.Name == "route":
			routes[sp.ID] = sp
		case sp.Name == "forward":
			forwardsPerRoute[sp.Parent]++
			if sp.Attrs["backend"] == "" {
				t.Errorf("forward span %s has no backend attribute", sp.ID)
			}
		case sp.Node != "":
			stitchedNodes[sp.Node] = true
			if sp.Name == "sweep" {
				backendSweeps++
			}
		}
	}
	cells := len(coordGridBenches) * len(coordGridPoints)
	if sweepRoot.ID == "" {
		t.Fatal("no coordinator sweep root span")
	}
	if len(routes) != cells {
		t.Fatalf("%d route spans, want one per cell (%d)", len(routes), cells)
	}
	retriedCells := 0
	for id, rt := range routes {
		if rt.Parent != sweepRoot.ID {
			t.Errorf("route %s parented to %q, want the sweep root %s", id, rt.Parent, sweepRoot.ID)
		}
		n := forwardsPerRoute[id]
		if n < 1 {
			t.Errorf("route %s (%s) has no forward spans", id, rt.Attrs["cell"])
		}
		if n > 1 {
			retriedCells++
		}
		if rt.Attrs["attempts"] != obs.AttrInt(n) {
			t.Errorf("route %s records attempts=%q but has %d forward spans", id, rt.Attrs["attempts"], n)
		}
	}
	// The chaos backend killed at least its second request, so at least one
	// cell needed a second forward.
	if retriedCells == 0 {
		t.Error("chaos run produced no multi-forward route span")
	}
	// Every live backend served at least one cell of this 9-cell grid (the
	// dead one may or may not have completed its first before the kill), so
	// stitching must have imported spans from at least the two survivors,
	// each wrapped in that backend's own sweep span.
	if len(stitchedNodes) < 2 {
		t.Errorf("stitched spans from %v, want at least the two live backends", stitchedNodes)
	}
	if backendSweeps < 2 {
		t.Errorf("%d imported backend sweep spans, want >= 2", backendSweeps)
	}
	for node := range stitchedNodes {
		if _, ok := proxies[node]; !ok {
			t.Errorf("stitched span node %q is not a backend address", node)
		}
	}
}

// TestSpansEndpointValidation: the span endpoint requires a trace parameter
// and answers an unknown trace with an empty body rather than an error.
func TestSpansEndpointValidation(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/spans")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing trace param: status %d, want 400", resp.StatusCode)
	}
	if spans := fetchSpans(t, ts.URL, "deadbeef"); len(spans) != 0 {
		t.Errorf("unknown trace returned %d spans", len(spans))
	}
}
