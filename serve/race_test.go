package serve_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"preexec"
	"preexec/serve"
)

// TestSharedCacheStress hammers one LRU-bounded StageCache from both sides
// at once — library Sweep.Run callers and serve HTTP handlers — and then
// checks the cache's books balance: with no failed flights, every stage run
// either still resides in the cache or was evicted, so
//
//	BaseRuns + ProfileRuns == base entries + profile entries + Evictions
//
// and each stage holds at most the configured bound. Run under -race (the
// CI race step includes this package) it doubles as the concurrency soak
// for the request scheduler, the single-flight layer, and the eviction
// list.
func TestSharedCacheStress(t *testing.T) {
	const limit = 2
	cache := preexec.NewStageCache(preexec.WithStageCacheLimit(limit))
	ts := newTestServer(t, serve.WithStageCache(cache), serve.WithWorkers(4))

	// Two machine variants so the HTTP side alone produces four distinct
	// base keys (2 workloads x 2 memory latencies) against a 2-entry bound.
	cfgs := [2]string{
		`{"machine": {"warm_insts": 2000, "measure_insts": 6000}}`,
		`{"machine": {"warm_insts": 2000, "measure_insts": 6000, "mem_lat": 90}}`,
	}
	names := [2]string{"crafty", "gap"}

	var wg sync.WaitGroup
	errc := make(chan error, 64)

	// HTTP side: 4 clients x 4 evaluations over the workload/config matrix.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				body := fmt.Sprintf(`{"workload": %q, "config": %s}`,
					names[(g+i)%2], cfgs[i%2])
				resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("client %d req %d: status %d: %s", g, i, resp.StatusCode, raw)
					return
				}
			}
		}(g)
	}

	// Library side: 2 concurrent sweeps sharing the same cache. Each builds
	// its own programs (distinct pointers), adding eviction churn on top of
	// the server's pointer-stable entries.
	cfg := preexec.DefaultConfig()
	cfg.Machine.WarmInsts, cfg.Machine.MeasureInsts = 2000, 6000
	cfgRaw := cfg
	cfgRaw.Selection.Optimize, cfgRaw.Selection.Merge = false, false
	points := []preexec.ConfigPoint{{Name: "base", Config: cfg}, {Name: "raw", Config: cfgRaw}}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			benches, err := preexec.SweepBenches([]string{"bzip2", "mcf"}, 1)
			if err != nil {
				errc <- err
				return
			}
			sweep := &preexec.Sweep{Cache: cache, Workers: 2}
			if _, err := sweep.Run(context.Background(), benches, points); err != nil {
				errc <- err
			}
		}()
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	st := cache.Stats()
	base, prof, trace := cache.Len()
	if base > limit || prof > limit || trace > limit {
		t.Fatalf("cache holds %d/%d/%d entries, want <= %d each", base, prof, trace, limit)
	}
	if got, want := st.BaseRuns+st.ProfileRuns+st.TraceRuns, int64(base+prof+trace)+st.Evictions; got != want {
		t.Fatalf("eviction books don't balance: %d stage runs != %d resident + %d evicted",
			got, base+prof+trace, st.Evictions)
	}
	// The workload x config matrix exceeds the bound many times over, so the
	// LRU policy must actually have fired.
	if st.Evictions == 0 {
		t.Error("stress produced no evictions; the LRU bound never engaged")
	}
	if st.BaseRuns == 0 || st.ProfileRuns == 0 {
		t.Errorf("stress stats %+v recorded no stage runs", st)
	}
}
