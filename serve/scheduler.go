package serve

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"

	"preexec"
)

// gate is the server-wide worker pool: a counting semaphore bounding how
// many expensive pipeline stages run at once. Requests queue here instead of
// oversubscribing the simulator, so N concurrent clients cost bounded CPU
// and memory. Acquisition is context-aware: a disconnected client stops
// waiting for a slot. The in-flight and queued gauges feed /v1/stats — the
// saturation signal a sweep coordinator's health probe steers failover by.
type gate struct {
	slots  chan struct{}
	queued atomic.Int64
}

func newGate(n int) *gate { return &gate{slots: make(chan struct{}, n)} }

func (g *gate) acquire(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		return nil
	default:
	}
	g.queued.Add(1)
	defer g.queued.Add(-1)
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *gate) release() { <-g.slots }

// inFlight is the number of expensive stages currently holding a slot.
func (g *gate) inFlight() int { return len(g.slots) }

// queueDepth is the number of stages blocked waiting for a slot.
func (g *gate) queueDepth() int64 { return g.queued.Load() }

// gatedProfiler runs the wrapped profiling backend inside a worker slot.
// Only the computation acquires: requests coalesced onto a cached flight
// never enter the gate.
type gatedProfiler struct {
	g *gate
	p preexec.Profiler
}

func (gp gatedProfiler) Profile(ctx context.Context, p *preexec.Program, opts preexec.ProfileOptions) ([]preexec.ProfileRegion, error) {
	if err := gp.g.acquire(ctx); err != nil {
		return nil, err
	}
	defer gp.g.release()
	return gp.p.Profile(ctx, p, opts)
}

// gatedSimulator runs the wrapped timing backend inside a worker slot. It
// forwards the TraceReplayer extension — gated the same way — when the
// wrapped backend implements it, so server engines keep the trace-replay
// fast path without any stage escaping the worker pool.
type gatedSimulator struct {
	g *gate
	s preexec.Simulator
}

func (gs gatedSimulator) Simulate(ctx context.Context, p *preexec.Program, pts []*preexec.PThread, cfg preexec.TimingConfig) (preexec.Stats, error) {
	if err := gs.g.acquire(ctx); err != nil {
		return preexec.Stats{}, err
	}
	defer gs.g.release()
	return gs.s.Simulate(ctx, p, pts, cfg)
}

func (gs gatedSimulator) RecordTrace(ctx context.Context, p *preexec.Program, cfg preexec.TimingConfig) (*preexec.Trace, error) {
	tr, ok := gs.s.(preexec.TraceReplayer)
	if !ok {
		return nil, fmt.Errorf("serve: simulator %T does not support trace replay", gs.s)
	}
	if err := gs.g.acquire(ctx); err != nil {
		return nil, err
	}
	defer gs.g.release()
	return tr.RecordTrace(ctx, p, cfg)
}

func (gs gatedSimulator) Replay(ctx context.Context, t *preexec.Trace, pts []*preexec.PThread, cfg preexec.TimingConfig) (preexec.Stats, error) {
	tr, ok := gs.s.(preexec.TraceReplayer)
	if !ok {
		return preexec.Stats{}, fmt.Errorf("serve: simulator %T does not support trace replay", gs.s)
	}
	if err := gs.g.acquire(ctx); err != nil {
		return preexec.Stats{}, err
	}
	defer gs.g.release()
	return tr.Replay(ctx, t, pts, cfg)
}

// progKey identifies one built benchmark: canonical lower-case name plus the
// workload scale.
type progKey struct {
	name  string
	scale int
}

// programCacheLimit bounds the built-program cache: (workload, scale) is a
// client-controlled axis, so without a bound a scale-scanning client could
// grow server memory without limit. 64 entries cover any practical registry
// x scale working set; the least-recently-used entry is evicted beyond
// that. An evicted program is rebuilt on re-request with a new pointer, so
// its StageCache entries go dead — under heavy multi-scale traffic pair
// this with -cachelimit so the dead entries evict too.
const programCacheLimit = 64

// progEntry is one cached build; use orders LRU eviction.
type progEntry struct {
	bench preexec.SweepBench
	use   int64
}

// lookupProgram returns the cached benchmark for key, refreshing its LRU
// position.
func (s *Server) lookupProgram(key progKey) (preexec.SweepBench, bool) {
	s.progMu.Lock()
	defer s.progMu.Unlock()
	e, ok := s.programs[key]
	if !ok {
		return preexec.SweepBench{}, false
	}
	s.progTick++
	e.use = s.progTick
	return e.bench, true
}

// storeProgram inserts a built benchmark, evicting the least recently used
// entry beyond the bound.
func (s *Server) storeProgram(key progKey, b preexec.SweepBench) {
	s.progMu.Lock()
	defer s.progMu.Unlock()
	s.progTick++
	s.programs[key] = &progEntry{bench: b, use: s.progTick}
	if len(s.programs) > programCacheLimit {
		var oldest progKey
		min := int64(1<<63 - 1)
		for k, e := range s.programs {
			if e.use < min {
				min, oldest = e.use, k
			}
		}
		delete(s.programs, oldest)
	}
}

// bench resolves a workload name and returns its benchmark built at the
// given scale, reusing a previous build when one exists. Pointer-stable
// programs are what let the StageCache coalesce identical stage work across
// requests — a rebuilt program would never hit. Builds are single-flighted
// per key, run outside the cache lock inside a worker-gate slot (large
// generated programs are real work, so they count against -workers), and
// honour the requesting client's context; a cancelled builder's waiters
// retry under their own contexts, like every other flight.
func (s *Server) bench(ctx context.Context, name string, scale int) (preexec.SweepBench, error) {
	w, err := preexec.WorkloadByName(name)
	if err != nil {
		return preexec.SweepBench{}, err
	}
	key := progKey{name: strings.ToLower(w.Name), scale: scale}
	if b, ok := s.lookupProgram(key); ok {
		return b, nil
	}
	b, _, err := s.builds.Do(ctx, key, func() (preexec.SweepBench, error) {
		// A racer may have stored the build between the miss and the flight.
		if b, ok := s.lookupProgram(key); ok {
			return b, nil
		}
		if err := s.gate.acquire(ctx); err != nil {
			return preexec.SweepBench{}, err
		}
		defer s.gate.release()
		// No Test build: only ConfigPoint.Derive consumes it, and Derive is
		// a Go func no HTTP request can set — an eager BuildTest would
		// double both the build cost and the cache's memory for nothing.
		stop := s.obs.StageStart("build", w.Name)
		b := preexec.SweepBench{Name: w.Name, Program: w.Build(scale)}
		stop()
		s.storeProgram(key, b)
		return b, nil
	})
	return b, err
}

// benchesFor resolves a request's benchmark list (all registered workloads
// when empty) at the given scale. A failed lookup reports which list entry
// was bad.
func (s *Server) benchesFor(ctx context.Context, names []string, scale int) ([]preexec.SweepBench, error) {
	if len(names) == 0 {
		names = preexec.WorkloadNames()
	}
	benches := make([]preexec.SweepBench, len(names))
	for i, name := range names {
		b, err := s.bench(ctx, name, scale)
		if err != nil {
			return nil, fmt.Errorf("benches[%d]: %w", i, err)
		}
		benches[i] = b
	}
	return benches, nil
}

// cachedPrograms returns the number of built (workload, scale) programs held
// for cross-request stage-cache identity.
func (s *Server) cachedPrograms() int {
	s.progMu.Lock()
	defer s.progMu.Unlock()
	return len(s.programs)
}
