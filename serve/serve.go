// Package serve exposes the pre-execution evaluation pipeline as a
// long-running HTTP/JSON service — the scaling layer that lets many clients
// share one process, one workload registry, and one StageCache instead of
// each linking the library and paying cold-start per process.
//
// Endpoints (all JSON unless noted):
//
//	GET  /v1/workloads   registry listing: benchmarks + synth families
//	POST /v1/workloads   upload a .prx source or synth.Spec, register it
//	POST /v1/evaluate    one benchmark x one configuration -> Report
//	POST /v1/sweep       grid request -> SweepResult (JSON or CSV; optional
//	                     NDJSON progress stream)
//	GET  /v1/stats       cache + request + single-flight counters
//	GET  /v1/spans       one trace's recorded spans as NDJSON
//	GET  /metrics        the same counters in Prometheus text format
//
// The scheduling core layers three mechanisms over the library:
//
//   - Request coalescing: identical in-flight /v1/evaluate requests are
//     single-flighted (preexec.FlightGroup) above the StageCache, so N
//     concurrent clients asking for the same cell cost one full evaluation.
//   - Stage memoization: all requests share one StageCache, and programs are
//     built once per (workload, scale) and reused by pointer, so the cache's
//     program-identity keys hit across requests. N sequential identical
//     evaluations still perform exactly one base timing run and one profile.
//   - Bounded compute: the expensive stages (timing simulation, functional
//     profiling) of every request pass through one server-wide worker gate,
//     so request count bounds neither simulator concurrency nor memory.
//
// Per-request contexts propagate into the simulation hot loops: a client
// disconnect cancels its evaluation promptly. A cancelled computation is
// returned only to the client that owned it; coalesced waiters retry.
package serve

import (
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"

	"preexec"
	"preexec/internal/obs"
)

// defaultMaxBody bounds request bodies (a generated .prx for a 4M-word
// footprint disassembles to tens of MB; anything bigger is abuse and is
// answered 413).
const defaultMaxBody = 64 << 20

// uploadLimit caps the run-time workload registrations a server accepts
// over POST /v1/workloads. The registry is process-global and every entry
// pins its program forever, so the HTTP surface — unlike a trusted embedder
// using the library — must bound it (429 beyond the cap).
const uploadLimit = 256

// Server is the evaluation service. Build one with New; it serves HTTP via
// its Handler (or directly: *Server implements http.Handler).
type Server struct {
	workers int
	maxBody int64

	cache      *preexec.StageCache
	cacheLimit int

	// The stage backends shared by every request-built engine: the reference
	// implementations with the expensive stages gated through the worker
	// pool. Sharing one backend set keeps the StageCache contract (all
	// engines on one cache must use the same backends).
	profiler  preexec.Profiler
	selector  preexec.Selector
	simulator preexec.Simulator
	// base carries the shared backends into Sweep.Plan.
	base *preexec.Engine

	// flights coalesces identical in-flight evaluate requests.
	flights preexec.FlightGroup[string, preexec.Report]

	// gate is the server-wide worker pool every expensive unit — timing
	// runs, profiles, program builds — passes through.
	gate *gate

	// programs holds the benchmarks built so far, keyed by (canonical name,
	// scale), LRU-bounded to programCacheLimit entries. Pointer-stable
	// programs are what make the StageCache hit across requests. Entries
	// are never invalidated by name: the HTTP surface can only add registry
	// names (uploads reject duplicates), so a cached program can never
	// belong to a name that since changed meaning. Embedders sharing the
	// process must honour the same invariant — re-binding a name via
	// preexec.UnregisterWorkload + RegisterWorkload while a Server is live
	// would serve the old program until LRU pressure evicts it; start a new
	// Server (they are cheap) after re-binding instead. builds
	// single-flights construction per key, outside the lock.
	progMu   sync.Mutex
	programs map[progKey]*progEntry
	progTick int64
	builds   preexec.FlightGroup[progKey, preexec.SweepBench]

	uploads atomic.Int64

	// obs bundles the metrics registry, tracer, and stage-latency
	// histograms behind GET /metrics, /v1/spans, and /v1/stats.
	obs *serverObs

	// Coordinator mode (WithBackends): /v1/sweep fans out across backend
	// preexecds instead of evaluating locally; every other endpoint still
	// serves locally, which is also the sweep's graceful-degradation path.
	backendAddrs []string
	fleetCfg     FleetConfig
	coord        *coordinator
	closeOnce    sync.Once

	mux *http.ServeMux
}

// Option customizes a Server.
type Option func(*Server)

// WithWorkers bounds the server-wide concurrency of the expensive pipeline
// stages (<= 0 = GOMAXPROCS). Every evaluate request and sweep cell acquires
// a slot around each timing run or profile, so the bound holds regardless of
// how many requests are in flight.
func WithWorkers(n int) Option { return func(s *Server) { s.workers = n } }

// WithCacheLimit bounds the server's StageCache to n entries per stage via
// the LRU policy of preexec.WithStageCacheLimit (<= 0 = unlimited, the
// default). Ignored when WithStageCache supplies the cache.
func WithCacheLimit(n int) Option { return func(s *Server) { s.cacheLimit = n } }

// WithStageCache shares an externally-owned stage cache instead of building
// one — for embedding the server next to library sweeps that should reuse
// the same memoized stages, and for tests asserting cache behaviour.
func WithStageCache(c *preexec.StageCache) Option { return func(s *Server) { s.cache = c } }

// WithBackends turns the server into a sweep coordinator over the given
// backend preexecd addresses (host:port or full base URLs): /v1/sweep cells
// are consistent-hashed by their stage-cache identity across the fleet,
// retried with backoff on failure, failed over from ejected backends, and
// merged in deterministic grid order — byte-identical to a single-node run.
// Call Server.Close when done to stop the background health probe.
func WithBackends(addrs ...string) Option {
	return func(s *Server) { s.backendAddrs = addrs }
}

// WithFleetConfig tunes coordinator mode (ignored without WithBackends).
func WithFleetConfig(fc FleetConfig) Option {
	return func(s *Server) { s.fleetCfg = fc }
}

// New builds a Server ready to serve.
func New(opts ...Option) *Server {
	s := &Server{
		workers:  runtime.GOMAXPROCS(0),
		maxBody:  defaultMaxBody,
		programs: make(map[progKey]*progEntry),
	}
	for _, o := range opts {
		o(s)
	}
	if s.workers <= 0 {
		s.workers = runtime.GOMAXPROCS(0)
	}
	if s.cache == nil {
		if s.cacheLimit > 0 {
			s.cache = preexec.NewStageCache(preexec.WithStageCacheLimit(s.cacheLimit))
		} else {
			s.cache = preexec.NewStageCache()
		}
	}
	s.gate = newGate(s.workers)
	s.obs = newServerObs(s)
	profiler, selector, simulator := preexec.ReferenceStages()
	s.profiler = gatedProfiler{g: s.gate, p: profiler}
	s.selector = selector // selection is cheap and stays ungated
	s.simulator = gatedSimulator{g: s.gate, s: simulator}
	s.base = preexec.New(
		preexec.WithProfiler(s.profiler),
		preexec.WithSelector(s.selector),
		preexec.WithSimulator(s.simulator),
		preexec.WithStageObserver(s.obs),
	)
	if len(s.backendAddrs) > 0 {
		s.coord = newCoordinator(s, s.backendAddrs, s.fleetCfg)
		s.obs.registerFleet(s.coord)
	}

	// One route table drives both the mux registrations and the catch-all's
	// 405 map, so the two can never drift apart.
	routes := []struct {
		method, path string
		handler      http.HandlerFunc
	}{
		{"GET", "/v1/workloads", s.handleWorkloadsList},
		{"POST", "/v1/workloads", s.handleWorkloadsUpload},
		{"POST", "/v1/evaluate", s.handleEvaluate},
		{"POST", "/v1/sweep", s.handleSweep},
		{"GET", "/v1/stats", s.handleStats},
		{"GET", "/v1/spans", s.handleSpans},
		{"GET", "/metrics", s.handleMetrics},
	}
	s.mux = http.NewServeMux()
	allowed := make(map[string]string)
	for _, rt := range routes {
		s.mux.HandleFunc(rt.method+" "+rt.path, rt.handler)
		if allowed[rt.path] != "" {
			allowed[rt.path] += ", "
		}
		allowed[rt.path] += rt.method
	}
	// The catch-all keeps errors JSON. It sees wrong-method requests to real
	// endpoints too (the "/" pattern matches every method), so it answers
	// those with 405 + Allow rather than a misleading 404.
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if allow, ok := allowed[r.URL.Path]; ok {
			w.Header().Set("Allow", allow)
			writeError(w, http.StatusMethodNotAllowed, "%s does not allow %s (allowed: %s)",
				r.URL.Path, r.Method, allow)
			return
		}
		writeError(w, http.StatusNotFound, "no such endpoint %q", r.URL.Path)
	})
	return s
}

// ServeHTTP implements http.Handler. It tracks the in-flight and completed
// request series reported by /v1/stats and /metrics (the in-flight count
// includes the request reading it), and establishes trace context: a valid
// X-Preexec-Trace request header joins the caller's trace (span recording
// on — this is how a coordinator's backends stitch into its trace), anything
// else gets a fresh ID with recording off until an endpoint opts in. The
// trace ID is always echoed on the response header.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.obs.requestsInFlight.Add(1)
	defer func() {
		s.obs.requestsInFlight.Add(-1)
		s.obs.requestsCompleted.Inc()
	}()
	trace, parent := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader))
	record := trace != ""
	if trace == "" {
		trace = s.obs.tracer.NewTraceID()
	}
	w.Header().Set(obs.TraceHeader, trace)
	ctx := obs.WithTrace(r.Context(), obs.TraceContext{Trace: trace, Parent: parent, Record: record})
	s.mux.ServeHTTP(w, r.WithContext(ctx))
}

// Workers returns the server-wide stage-concurrency bound.
func (s *Server) Workers() int { return s.workers }

// Close releases the server's background resources — the coordinator's
// health-probe loop. It is a no-op for non-coordinator servers and safe to
// call more than once; the HTTP surface itself holds no resources to close.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.coord != nil {
			s.coord.close()
		}
	})
}

// Cache returns the server's shared stage cache.
func (s *Server) Cache() *preexec.StageCache { return s.cache }

// engine builds the per-request engine: the submitted configuration over the
// shared gated backends and the shared stage cache.
func (s *Server) engine(cfg preexec.Config) *preexec.Engine {
	return preexec.New(
		preexec.WithConfig(cfg),
		preexec.WithProfiler(s.profiler),
		preexec.WithSelector(s.selector),
		preexec.WithSimulator(s.simulator),
		preexec.WithStageCache(s.cache),
		preexec.WithStageObserver(s.obs),
	)
}
