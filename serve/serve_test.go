package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"preexec"
	"preexec/serve"
)

// smallCfg is the evaluation configuration the endpoint tests submit: the
// paper's defaults with windows small enough to keep tests fast. It decodes
// over DefaultConfig, so only the machine windows are spelled out.
const smallCfg = `{"machine": {"warm_insts": 2000, "measure_insts": 8000}}`

func newTestServer(t *testing.T, opts ...serve.Option) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(serve.New(opts...))
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: read body: %v", url, err)
	}
	return resp.StatusCode, raw
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, raw
}

func serverStats(t *testing.T, base string) map[string]json.RawMessage {
	t.Helper()
	status, raw := get(t, base+"/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("/v1/stats: status %d: %s", status, raw)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("/v1/stats: %v", err)
	}
	return m
}

func TestWorkloadsList(t *testing.T) {
	ts := newTestServer(t)
	status, raw := get(t, ts.URL+"/v1/workloads")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	var resp struct {
		Workloads []struct{ Name, Description string }
		Families  []struct{ Name string }
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	for _, w := range resp.Workloads {
		names[w.Name] = true
	}
	for _, want := range []string{"mcf", "vpr.p", "crafty"} {
		if !names[want] {
			t.Errorf("listing is missing builtin %q", want)
		}
	}
	fams := make(map[string]bool)
	for _, f := range resp.Families {
		fams[f.Name] = true
	}
	if !fams["chase"] || !fams["stride"] {
		t.Errorf("listing is missing synth families, got %v", fams)
	}
}

// TestEvaluateCoalescesIdenticalRequests is the PR's acceptance criterion:
// N concurrent identical /v1/evaluate requests perform exactly one base
// timing run and one functional profile between them, asserted through the
// /v1/stats cache counters, and every client receives byte-identical
// reports.
func TestEvaluateCoalescesIdenticalRequests(t *testing.T) {
	ts := newTestServer(t, serve.WithWorkers(4))
	const n = 8
	body := fmt.Sprintf(`{"workload": "crafty", "config": %s}`, smallCfg)

	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	codes := make([]int, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			bodies[i], errs[i] = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d: response differs from request 0", i)
		}
	}
	var rep preexec.Report
	if err := json.Unmarshal(bodies[0], &rep); err != nil {
		t.Fatalf("response is not a report: %v", err)
	}
	if rep.Program != "crafty" || rep.Base.Retired == 0 {
		t.Fatalf("unexpected report: program %q, base retired %d", rep.Program, rep.Base.Retired)
	}

	stats := serverStats(t, ts.URL)
	var cache preexec.CacheStats
	if err := json.Unmarshal(stats["cache"], &cache); err != nil {
		t.Fatal(err)
	}
	if cache.BaseRuns != 1 || cache.ProfileRuns != 1 {
		t.Errorf("%d identical requests cost %d base runs and %d profiles, want exactly 1 + 1",
			n, cache.BaseRuns, cache.ProfileRuns)
	}
	var flights struct{ Started, Coalesced int64 }
	if err := json.Unmarshal(stats["flights"], &flights); err != nil {
		t.Fatal(err)
	}
	if flights.Started+flights.Coalesced != n {
		t.Errorf("flights started %d + coalesced %d != %d requests",
			flights.Started, flights.Coalesced, n)
	}
	var reqs struct{ Completed int64 }
	if err := json.Unmarshal(stats["requests"], &reqs); err != nil {
		t.Fatal(err)
	}
	if reqs.Completed < n {
		t.Errorf("completed gauge %d, want >= %d", reqs.Completed, n)
	}
}

// TestEvaluateErrorMapping pins the 4xx contract: unknown workloads are 404
// with the offending field named, invalid scales and configurations 400, and
// non-POST methods 405.
func TestEvaluateErrorMapping(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		name     string
		body     string
		status   int
		contains []string
	}{
		{"unknown workload", `{"workload": "nosuch"}`, http.StatusNotFound,
			[]string{"workload:", "nosuch", "valid:"}},
		{"bad scale", `{"workload": "mcf", "scale": -3}`, http.StatusBadRequest,
			[]string{"scale:", "-3"}},
		{"missing workload", `{}`, http.StatusBadRequest, []string{"workload:"}},
		{"unknown config field", `{"workload": "mcf", "config": {"machina": {}}}`,
			http.StatusBadRequest, []string{"config:", "machina"}},
		{"malformed body", `{"workload": `, http.StatusBadRequest, []string{"request body"}},
		{"trailing delimiter", `{"workload": "mcf"}]`, http.StatusBadRequest, []string{"trailing"}},
		{"unknown request field", `{"workload": "mcf", "bogus": 1}`,
			http.StatusBadRequest, []string{"bogus"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, raw := post(t, ts.URL+"/v1/evaluate", tc.body)
			if status != tc.status {
				t.Fatalf("status %d, want %d (%s)", status, tc.status, raw)
			}
			var e struct{ Error string }
			if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
				t.Fatalf("error body %q not of the form {\"error\": ...}", raw)
			}
			for _, want := range tc.contains {
				if !strings.Contains(e.Error, want) {
					t.Errorf("error %q does not mention %q", e.Error, want)
				}
			}
		})
	}

	resp, err := http.Get(ts.URL + "/v1/evaluate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/evaluate: status %d, want 405", resp.StatusCode)
	}
	status, _ := get(t, ts.URL+"/v1/bogus")
	if status != http.StatusNotFound {
		t.Errorf("GET /v1/bogus: status %d, want 404", status)
	}
}

// TestUploadPRX pins the upload path end to end: a .prx source registers,
// lists, and evaluates; the 4xx mapping covers malformed sources, duplicate
// names, and contradictory bodies.
func TestUploadPRX(t *testing.T) {
	ts := newTestServer(t)
	const name = "serve.test.upload"
	t.Cleanup(func() { preexec.UnregisterWorkload(name) })

	prx := ".name " + name + `\n.data 0\n.word 5, 6, 7\nstart:\n\tli r1, 0\n\tli r2, 500\n\tli r4, 0\nloop:\n\tld r3, 0(r4)\n\taddi r1, r1, 1\n\tblt r1, r2, loop\n\thalt\n`
	status, raw := post(t, ts.URL+"/v1/workloads", `{"prx": "`+prx+`"}`)
	if status != http.StatusCreated {
		t.Fatalf("upload: status %d: %s", status, raw)
	}
	var up struct{ Name, Description string }
	if err := json.Unmarshal(raw, &up); err != nil || up.Name != name {
		t.Fatalf("upload response %s, want name %q", raw, name)
	}

	// Registered: listed and evaluable.
	if _, raw := get(t, ts.URL+"/v1/workloads"); !bytes.Contains(raw, []byte(name)) {
		t.Errorf("uploaded workload %q not in listing", name)
	}
	status, raw = post(t, ts.URL+"/v1/evaluate",
		fmt.Sprintf(`{"workload": %q, "config": %s}`, name, smallCfg))
	if status != http.StatusOK {
		t.Fatalf("evaluate uploaded: status %d: %s", status, raw)
	}
	var rep preexec.Report
	if err := json.Unmarshal(raw, &rep); err != nil || rep.Program != name {
		t.Fatalf("evaluate uploaded: report %s", raw)
	}

	// Duplicate name: 409.
	if status, raw = post(t, ts.URL+"/v1/workloads", `{"prx": "`+prx+`"}`); status != http.StatusConflict {
		t.Errorf("duplicate upload: status %d, want 409 (%s)", status, raw)
	}
	// Malformed source: 400 with the line diagnostic.
	status, raw = post(t, ts.URL+"/v1/workloads", `{"prx": "bogus r1, r2\n"}`)
	if status != http.StatusBadRequest || !bytes.Contains(raw, []byte("prx:1")) {
		t.Errorf("malformed .prx: status %d body %s, want 400 naming prx:1", status, raw)
	}
	// A source without .name cannot register.
	status, raw = post(t, ts.URL+"/v1/workloads", `{"prx": "halt\n"}`)
	if status != http.StatusBadRequest || !bytes.Contains(raw, []byte(".name")) {
		t.Errorf("nameless .prx: status %d body %s, want 400 naming .name", status, raw)
	}
	// Contradictory and empty bodies.
	if status, _ = post(t, ts.URL+"/v1/workloads", `{"prx": "halt\n", "spec": {"family": "chase"}}`); status != http.StatusBadRequest {
		t.Errorf("prx+spec: status %d, want 400", status)
	}
	if status, _ = post(t, ts.URL+"/v1/workloads", `{}`); status != http.StatusBadRequest {
		t.Errorf("empty upload: status %d, want 400", status)
	}
}

// TestUploadLimitAndOversizeBody pins the two abuse bounds of the upload
// path: the per-server registration cap answers 429, and an over-limit
// request body answers 413 (not a retryable-looking 400). Both backpressure
// responses carry Retry-After so fleet clients can pace themselves instead
// of hammering a saturated backend.
func TestUploadLimitAndOversizeBody(t *testing.T) {
	ts := newTestServer(t)

	// postResp is post() plus header access, for the Retry-After asserts.
	postResp := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/workloads", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	// Oversize body: just past the 64MB reader limit.
	huge := `{"prx": "` + strings.Repeat("; filler\\n", 8<<20) + `halt\n"}`
	resp := postResp(huge)
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize body: status %d, want 413 (%.120s)", resp.StatusCode, raw)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("413 response has no Retry-After header")
	}

	// Registration cap: exhaust the per-server budget with tiny uploads.
	var registered []string
	t.Cleanup(func() {
		for _, name := range registered {
			preexec.UnregisterWorkload(name)
		}
	})
	for i := 0; ; i++ {
		name := fmt.Sprintf("serve.test.cap%d", i)
		resp := postResp(fmt.Sprintf(`{"prx": ".name %s\nhalt\n"}`, name))
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode == http.StatusCreated {
			registered = append(registered, name)
			if len(registered) > 300 {
				t.Fatal("no upload cap engaged after 300 registrations")
			}
			continue
		}
		if resp.StatusCode != http.StatusTooManyRequests || !bytes.Contains(raw, []byte("upload limit")) {
			t.Fatalf("upload %d: status %d body %s, want 429 naming the upload limit",
				i, resp.StatusCode, raw)
		}
		if ra := resp.Header.Get("Retry-After"); ra == "" {
			t.Error("429 response has no Retry-After header")
		}
		break
	}
	if len(registered) != 256 {
		t.Errorf("cap engaged after %d uploads, want 256", len(registered))
	}
}

// TestUploadSpec registers a synth.Spec and sweeps it together with a
// builtin.
func TestUploadSpec(t *testing.T) {
	ts := newTestServer(t)
	const name = "serve.test.spec"
	t.Cleanup(func() { preexec.UnregisterWorkload(name) })

	status, raw := post(t, ts.URL+"/v1/workloads",
		fmt.Sprintf(`{"spec": {"name": %q, "family": "stride", "seed": 3, "footprint_words": 8192, "iters": 3000}}`, name))
	if status != http.StatusCreated {
		t.Fatalf("spec upload: status %d: %s", status, raw)
	}
	// Invalid knobs surface the synth validation message.
	status, raw = post(t, ts.URL+"/v1/workloads",
		`{"spec": {"family": "stride", "seed": 1, "footprint_words": 100, "iters": 10}}`)
	if status != http.StatusBadRequest || !bytes.Contains(raw, []byte("FootprintWords")) {
		t.Errorf("invalid spec: status %d body %s, want 400 naming FootprintWords", status, raw)
	}
	// Unknown spec fields are rejected, not ignored.
	status, raw = post(t, ts.URL+"/v1/workloads", `{"spec": {"family": "stride", "bogus_knob": 1}}`)
	if status != http.StatusBadRequest || !bytes.Contains(raw, []byte("bogus_knob")) {
		t.Errorf("unknown spec field: status %d body %s, want 400 naming bogus_knob", status, raw)
	}

	body := fmt.Sprintf(`{"benches": [%q, "crafty"], "points": [{"name": "base", "config": %s}]}`, name, smallCfg)
	status, raw = post(t, ts.URL+"/v1/sweep", body)
	if status != http.StatusOK {
		t.Fatalf("sweep with uploaded spec: status %d: %s", status, raw)
	}
	var res preexec.SweepResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 || res.Cells[0].Bench != name {
		t.Fatalf("sweep cells %v, want 2 cells starting with %q", res.Cells, name)
	}
}

func TestSweepErrorMapping(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		name     string
		body     string
		status   int
		contains string
	}{
		{"unknown bench", `{"benches": ["crafty", "nosuch"]}`, http.StatusNotFound, "benches[1]"},
		{"bad scale", `{"benches": ["crafty"], "scale": -1}`, http.StatusBadRequest, "scale:"},
		{"unnamed point", `{"benches": ["crafty"], "points": [{"config": {}}]}`,
			http.StatusBadRequest, "points[0].name"},
		{"bad point config", `{"benches": ["crafty"], "points": [{"name": "x", "config": {"bogus": 1}}]}`,
			http.StatusBadRequest, "points[0].config"},
		{"bad format", `{"benches": ["crafty"], "format": "xml"}`, http.StatusBadRequest, "format"},
		{"csv stream", `{"benches": ["crafty"], "format": "csv", "stream": true}`,
			http.StatusBadRequest, "stream"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, raw := post(t, ts.URL+"/v1/sweep", tc.body)
			if status != tc.status {
				t.Fatalf("status %d, want %d (%s)", status, tc.status, raw)
			}
			if !bytes.Contains(raw, []byte(tc.contains)) {
				t.Errorf("error %s does not mention %q", raw, tc.contains)
			}
		})
	}
}

// TestSweepStreaming reads the NDJSON progress stream: one cell event per
// completed cell, then the full result.
func TestSweepStreaming(t *testing.T) {
	ts := newTestServer(t, serve.WithWorkers(2))
	body := fmt.Sprintf(`{"benches": ["crafty", "gap"], "stream": true,
		"points": [{"name": "base", "config": %s}]}`, smallCfg)
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q, want application/x-ndjson", ct)
	}
	dec := json.NewDecoder(resp.Body)
	var cells int
	var sawResult bool
	for {
		var ev struct {
			Event string
			Cell  struct {
				Name  string
				Done  int
				Total int
				Error string
			}
			Error  string
			Result *preexec.SweepResult
		}
		if err := dec.Decode(&ev); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		switch ev.Event {
		case "cell":
			cells++
			if ev.Cell.Total != 2 || ev.Cell.Name == "" || ev.Cell.Error != "" {
				t.Errorf("bad cell event %+v", ev.Cell)
			}
		case "result":
			sawResult = true
			if len(ev.Result.Cells) != 2 {
				t.Errorf("result has %d cells, want 2", len(ev.Result.Cells))
			}
		default:
			t.Errorf("unexpected event %q", ev.Event)
		}
	}
	if cells != 2 || !sawResult {
		t.Fatalf("stream had %d cell events (want 2), result %v", cells, sawResult)
	}
}

// TestProgramCacheBounded: the (workload, scale) program cache is a
// client-controlled axis, so it must stay bounded — scanning scales cannot
// grow server memory without limit.
func TestProgramCacheBounded(t *testing.T) {
	ts := newTestServer(t)
	// Well past the bound: 70 distinct scales of one workload. Tiny windows
	// keep each (cached-after-first-stage) evaluation cheap.
	for scale := 1; scale <= 70; scale++ {
		body := fmt.Sprintf(`{"workload": "crafty", "scale": %d, "config": {"machine": {"warm_insts": 500, "measure_insts": 1500}}}`, scale)
		if status, raw := post(t, ts.URL+"/v1/evaluate", body); status != http.StatusOK {
			t.Fatalf("scale %d: status %d: %s", scale, status, raw)
		}
	}
	stats := serverStats(t, ts.URL)
	var programs int
	if err := json.Unmarshal(stats["programs_cached"], &programs); err != nil {
		t.Fatal(err)
	}
	if programs > 64 {
		t.Fatalf("program cache holds %d entries, want <= 64", programs)
	}
	if programs < 32 {
		t.Fatalf("program cache holds %d entries; expected it near its bound after 70 scales", programs)
	}
}

func TestSweepCSV(t *testing.T) {
	ts := newTestServer(t)
	body := fmt.Sprintf(`{"benches": ["crafty"], "format": "csv",
		"points": [{"name": "base", "config": %s}]}`, smallCfg)
	status, raw := post(t, ts.URL+"/v1/sweep", body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "bench,point,base_ipc") {
		t.Fatalf("csv output %q, want header + one row", raw)
	}
	if !strings.HasPrefix(lines[1], "crafty,base,") {
		t.Errorf("csv row %q, want crafty,base,...", lines[1])
	}
}
