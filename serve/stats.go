package serve

import (
	"net/http"

	"preexec"
)

// statsResponse is the GET /v1/stats body: the shared cache's counters plus
// the request and single-flight gauges.
type statsResponse struct {
	// Cache is the shared StageCache's cumulative hit/run/eviction counters.
	Cache preexec.CacheStats `json:"cache"`
	// CacheEntries is the entry count currently held per stage (bounded by
	// the configured cache limit, if any).
	CacheEntries struct {
		Base    int `json:"base"`
		Profile int `json:"profile"`
		Trace   int `json:"trace"`
	} `json:"cache_entries"`
	// Requests gauges HTTP traffic; InFlight includes the stats request
	// reporting it.
	Requests struct {
		InFlight  int64 `json:"in_flight"`
		Completed int64 `json:"completed"`
	} `json:"requests"`
	// Flights counts the evaluate endpoint's request coalescing: Started is
	// evaluations actually computed, Coalesced is requests served by another
	// request's in-flight evaluation, Waiting gauges requests currently
	// blocked on one.
	Flights struct {
		Started   int64 `json:"started"`
		Coalesced int64 `json:"coalesced"`
		Waiting   int64 `json:"waiting"`
	} `json:"flights"`
	// ProgramsCached counts the (workload, scale) programs built and held
	// for cross-request cache identity.
	ProgramsCached int `json:"programs_cached"`
	// Workloads is the registry size (builtins + run-time registrations).
	Workloads int `json:"workloads"`
	// Workers is the server-wide stage-concurrency bound.
	Workers int `json:"workers"`
	// Gate is the simulation gate's saturation: slots held by running
	// stages and stages queued behind them. A sweep coordinator's health
	// probe reads this to prefer idle backends for failover.
	Gate struct {
		Workers  int   `json:"workers"`
		InFlight int   `json:"in_flight"`
		Queued   int64 `json:"queued"`
	} `json:"gate"`
	// Fleet is present only in coordinator mode: per-backend health plus
	// the retry, failover, and fallback counters.
	Fleet *fleetStats `json:"fleet,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var resp statsResponse
	resp.Cache = s.cache.Stats()
	resp.CacheEntries.Base, resp.CacheEntries.Profile, resp.CacheEntries.Trace = s.cache.Len()
	resp.Requests.InFlight = s.obs.requestsInFlight.Value()
	resp.Requests.Completed = s.obs.requestsCompleted.Value()
	resp.Flights.Started, resp.Flights.Coalesced = s.flights.Stats()
	resp.Flights.Waiting = s.flights.Waiting()
	resp.ProgramsCached = s.cachedPrograms()
	resp.Workloads = len(preexec.WorkloadNames())
	resp.Workers = s.workers
	resp.Gate.Workers = s.workers
	resp.Gate.InFlight = s.gate.inFlight()
	resp.Gate.Queued = s.gate.queueDepth()
	if s.coord != nil {
		resp.Fleet = s.coord.stats()
	}
	writeJSON(w, http.StatusOK, resp)
}
