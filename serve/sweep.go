package serve

import (
	"encoding/json"
	"net/http"

	"preexec"
	"preexec/internal/obs"
	"preexec/internal/sweepio"
)

// sweepRequest is an externally-submitted evaluation grid: benchmarks x
// named configuration points, evaluated through the shared memoized sweep
// subsystem.
type sweepRequest struct {
	// Benches names the grid's benchmarks (empty = every registered
	// workload).
	Benches []string `json:"benches,omitempty"`
	Scale   int      `json:"scale,omitempty"`
	// Points are the grid's configuration points; empty means the single
	// paper-default "base" point.
	Points []sweepPoint `json:"points,omitempty"`
	// Workers bounds this request's concurrent cells; it is clamped to the
	// server-wide stage gate either way (<= 0 = the server bound).
	Workers int `json:"workers,omitempty"`
	// Format selects the response rendering: "json" (default, the full
	// SweepResult) or "csv" (per-cell rows, the cmd/tsweep columns).
	Format string `json:"format,omitempty"`
	// Stream switches the response to NDJSON chunks: one
	// {"event":"cell",...} line per completed cell as it finishes, then a
	// final {"event":"result",...} (or {"event":"error",...}) line.
	Stream bool `json:"stream,omitempty"`
	// Trace turns on span recording for this sweep (equivalent to the
	// ?trace=1 query parameter). The response body is byte-identical either
	// way: spans travel only through the side channels — the
	// X-Preexec-Trace response header names the trace, GET /v1/spans
	// returns its spans, and streaming responses append trailing
	// {"event":"span",...} lines after the result event.
	Trace bool `json:"trace,omitempty"`
}

// sweepPoint mirrors preexec.ConfigPoint for requests: Config decodes over
// DefaultConfig like the evaluate endpoint's.
type sweepPoint struct {
	Name   string          `json:"name"`
	Config json.RawMessage `json:"config,omitempty"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, statusFor(err), "%v", err)
		return
	}
	switch req.Format {
	case "", "json", "csv":
	default:
		writeError(w, http.StatusBadRequest, "format: %q, want json or csv", req.Format)
		return
	}
	if req.Stream && req.Format == "csv" {
		writeError(w, http.StatusBadRequest, "stream: only the json format can stream")
		return
	}
	scale := req.Scale
	if scale == 0 {
		scale = 1
	}
	if scale < 1 {
		writeError(w, http.StatusBadRequest, "scale: %d, want >= 1", req.Scale)
		return
	}
	ctx := r.Context()
	benches, err := s.benchesFor(ctx, req.Benches, scale)
	if err != nil {
		if cancelled(ctx, err) {
			writeError(w, http.StatusServiceUnavailable, "request cancelled: %v", err)
			return
		}
		writeError(w, statusFor(err), "%v", err)
		return
	}
	points := make([]preexec.ConfigPoint, 0, len(req.Points))
	// rawCfgs aligns with points: the submitted config fragments, which the
	// coordinator forwards verbatim so backends decode exactly what a direct
	// client would have sent (nil for the implicit default point).
	rawCfgs := make([]json.RawMessage, 0, len(req.Points))
	if len(req.Points) == 0 {
		points = append(points, preexec.ConfigPoint{Name: "base", Config: preexec.DefaultConfig()})
		rawCfgs = append(rawCfgs, nil)
	}
	for i, pt := range req.Points {
		if err := ctx.Err(); err != nil {
			writeError(w, statusFor(err), "%v", err)
			return
		}
		if pt.Name == "" {
			writeError(w, http.StatusBadRequest, "points[%d].name: required", i)
			return
		}
		cfg, err := decodeConfig(pt.Config)
		if err != nil {
			writeError(w, http.StatusBadRequest, "points[%d].config: %v", i, err)
			return
		}
		points = append(points, preexec.ConfigPoint{Name: pt.Name, Config: cfg})
		rawCfgs = append(rawCfgs, pt.Config)
	}

	// A coordinator's cells run on backend worker pools, not the local
	// simulation gate, so its concurrency bound scales with the fleet.
	maxWorkers := s.workers
	if s.coord != nil {
		maxWorkers = s.workers * len(s.coord.addrs)
	}
	workers := req.Workers
	if workers <= 0 || workers > maxWorkers {
		workers = maxWorkers
	}

	// Validate the grid while a status code can still be chosen — once a
	// stream starts, errors can only be trailing events. Run plans again
	// internally; planning is cheap next to one simulated cell.
	if _, err := (&preexec.Sweep{Engine: s.base}).Plan(benches, points, nil); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Span recording turns on when the client asked (?trace=1 or the
	// request's trace field) or when an upstream coordinator forwarded its
	// trace header. traceID stays empty with recording off, which makes
	// every span below a no-op.
	tc := obs.TraceFrom(ctx)
	tc.Record = tc.Record || req.Trace || r.URL.Query().Get("trace") == "1"
	var traceID string
	if tc.Record {
		traceID = tc.Trace
	}

	// run is the one evaluation path both renderings share: fanned out
	// across the fleet in coordinator mode, through the local memoized
	// sweep otherwise. A traced run wraps the whole grid in a "sweep" span
	// that parents the coordinator's routing spans or the local engine's
	// stage spans.
	run := func(progress func(preexec.SuiteEvent)) (*preexec.SweepResult, error) {
		sweepSpan := s.obs.tracer.StartSpan(traceID, tc.Parent, "sweep")
		defer sweepSpan.End()
		if s.coord != nil {
			cctx := obs.WithTrace(ctx, obs.TraceContext{Trace: tc.Trace, Parent: sweepSpan.SpanID(), Record: tc.Record})
			res, err := s.coord.sweep(cctx, benches, points, rawCfgs, scale, workers, progress)
			if traceID != "" {
				s.coord.collectSpans(ctx, traceID)
			}
			return res, err
		}
		engine := s.base
		if traceID != "" {
			engine = s.tracedEngine(traceID, sweepSpan.SpanID())
		}
		sweep := &preexec.Sweep{Engine: engine, Workers: workers, Cache: s.cache, Progress: progress}
		return sweep.Run(ctx, benches, points)
	}

	if !req.Stream {
		res, err := run(nil)
		if err != nil {
			if cancelled(ctx, err) {
				writeError(w, http.StatusServiceUnavailable, "sweep cancelled: %v", err)
				return
			}
			writeError(w, http.StatusInternalServerError, "sweep: %v", err)
			return
		}
		if req.Format == "csv" {
			w.Header().Set("Content-Type", "text/csv")
			_ = sweepio.Emit(w, res, sweepio.Options{CSV: true, Point: true})
			return
		}
		// The JSON rendering is the library's own (internal/sweepio), so a
		// served sweep is byte-identical to a direct preexec.Sweep run —
		// pinned by the golden test.
		w.Header().Set("Content-Type", "application/json")
		_ = sweepio.Emit(w, res, sweepio.Options{JSON: true, Point: true})
		return
	}

	// Streaming: progress events flush as cells complete. Suite.Progress
	// calls are serialized, and the final event is written only after Run
	// returns, so the encoder is never written concurrently.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	res, err := run(func(ev preexec.SuiteEvent) {
		_ = enc.Encode(struct {
			Event string             `json:"event"`
			Cell  preexec.SuiteEvent `json:"cell"`
		}{"cell", ev})
		if flusher != nil {
			flusher.Flush()
		}
	})
	if err != nil {
		_ = enc.Encode(struct {
			Event string `json:"event"`
			Error string `json:"error"`
		}{"error", err.Error()})
		return
	}
	_ = enc.Encode(struct {
		Event  string               `json:"event"`
		Result *preexec.SweepResult `json:"result"`
	}{"result", res})
	// Traced streams get the spans appended after the result event — extra
	// trailing lines, so consumers of the pinned event sequence are
	// unaffected unless they opted into tracing.
	if traceID != "" {
		for _, sp := range s.obs.tracer.Collect(traceID) {
			if ctx.Err() != nil {
				return
			}
			_ = enc.Encode(struct {
				Event string   `json:"event"`
				Span  obs.Span `json:"span"`
			}{"span", sp})
		}
	}
}
