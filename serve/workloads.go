package serve

import (
	"encoding/json"
	"net/http"

	"preexec"
	"preexec/synth"
)

// workloadInfo is one registry entry of the listing.
type workloadInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// familyInfo describes one synth pattern family accepted by spec uploads.
type familyInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Knobs       string `json:"knobs"`
}

// workloadsResponse is the GET /v1/workloads body.
type workloadsResponse struct {
	// Workloads lists every evaluable benchmark: the ten builtins plus
	// everything registered at run time (uploads included), in name order.
	Workloads []workloadInfo `json:"workloads"`
	// Families lists the synth spec families a POST can instantiate.
	Families []familyInfo `json:"families"`
}

func (s *Server) handleWorkloadsList(w http.ResponseWriter, r *http.Request) {
	var resp workloadsResponse
	for _, wl := range preexec.Workloads() {
		resp.Workloads = append(resp.Workloads, workloadInfo{Name: wl.Name, Description: wl.Description})
	}
	for _, f := range synth.Families() {
		resp.Families = append(resp.Families, familyInfo{Name: f.Name, Description: f.Description, Knobs: f.Knobs})
	}
	writeJSON(w, http.StatusOK, resp)
}

// uploadRequest registers a new workload: exactly one of PRX (a textual .prx
// program, which must carry a .name directive) or Spec (a synth.Spec JSON
// object) must be given.
type uploadRequest struct {
	PRX  string          `json:"prx,omitempty"`
	Spec json.RawMessage `json:"spec,omitempty"`
}

// uploadResponse names what was registered.
type uploadResponse struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

func (s *Server) handleWorkloadsUpload(w http.ResponseWriter, r *http.Request) {
	var req uploadRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, statusFor(err), "%v", err)
		return
	}
	var (
		wl  preexec.Workload
		err error
	)
	switch {
	case req.PRX != "" && len(req.Spec) > 0:
		writeError(w, http.StatusBadRequest, "prx and spec are mutually exclusive")
		return
	case req.PRX != "":
		if wl, err = synth.WorkloadFromPRX([]byte(req.PRX)); err != nil {
			writeError(w, http.StatusBadRequest, "prx: %v", err)
			return
		}
	case len(req.Spec) > 0:
		var spec synth.Spec
		if spec, err = synth.SpecFromJSON(req.Spec); err == nil {
			wl, err = spec.Workload()
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, "spec: %v", err)
			return
		}
	default:
		writeError(w, http.StatusBadRequest, "give prx (a .prx source) or spec (a synth.Spec object)")
		return
	}
	// The registry is process-global and every registration pins its
	// program for the server's lifetime, so the HTTP surface caps how many
	// it will add — without a bound, looping uploads would grow memory
	// monotonically (the same reasoning that bounds the program cache).
	if n := s.uploads.Add(1); n > uploadLimit {
		s.uploads.Add(-1)
		writeError(w, http.StatusTooManyRequests,
			"upload limit reached: this server registers at most %d uploaded workloads", uploadLimit)
		return
	}
	if err := preexec.RegisterWorkload(wl); err != nil {
		s.uploads.Add(-1)
		writeError(w, statusFor(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, uploadResponse{Name: wl.Name, Description: wl.Description})
}
