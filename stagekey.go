package preexec

import (
	"fmt"

	"preexec/internal/timing"
)

// This file is the single source of stage-key normalization: the identity
// under which the memoized stages — base timing runs, profiles, and recorded
// base-run traces — are shared. StageCache keys structs with the normalized
// values directly; the distributed sweep coordinator renders the same values
// as routing strings (program pointers cannot cross processes, so the
// benchmark name and scale stand in for program identity). Both derive from
// the helpers here, so the identities cannot drift between local memoization
// and cross-node routing.

// normalizeBaseTiming reduces a timing configuration to the identity of the
// base run (and recorded trace) it shares: the injection throttle only gates
// p-thread bursts, so ablation cells share the base run, and the p-thread
// mode is irrelevant to both the unassisted run and the recorded front-end
// stream, so every mode maps onto the ModeBase identity.
func normalizeBaseTiming(cfg TimingConfig) TimingConfig {
	cfg.NoRSThrottle = false
	cfg.Mode = timing.ModeBase
	return cfg
}

// StageKeySet names the memoized stages one evaluation needs, in the same
// terms the StageCache keys them. Trace is empty when the configuration's
// run is too large to record (see the replay notes on Simulator) — an
// untraceable cell performs no trace-stage work.
type StageKeySet struct {
	Base    string
	Profile string
	Trace   string
}

// StageKeys renders the stage identities of evaluating bench at the given
// scale under cfg. Two cells with equal keys perform identical stage work:
// servers build programs once per (workload, scale), so the (bench, scale)
// pair substitutes exactly for the *Program pointer in StageCache's keys.
func StageKeys(bench string, scale int, cfg Config) StageKeySet {
	n := cfg.core().WithDefaults()
	tc := normalizeBaseTiming(n.TimingConfig(timing.ModeBase))
	ks := StageKeySet{
		Base: fmt.Sprintf("base|%s|%d|w%d|l%d|wi%d|mi%d",
			bench, scale, tc.Width, tc.MemLat, tc.WarmInsts, tc.MaxInsts),
		Profile: fmt.Sprintf("prof|%s|%d|wi%d|pi%d|sc%d|ml%d|ri%d",
			bench, scale, n.WarmInsts, n.SelectInsts, n.Scope, n.MaxLen, n.RegionInsts),
	}
	if timing.Traceable(tc) {
		// The simulator fingerprint is part of the trace identity, so a
		// timing-core change invalidates routed traces exactly as it
		// invalidates locally cached ones.
		ks.Trace = fmt.Sprintf("trace|%s|%d|w%d|l%d|wi%d|mi%d|%s",
			bench, scale, tc.Width, tc.MemLat, tc.WarmInsts, tc.MaxInsts, timing.TraceVersion)
	}
	return ks
}
