package preexec

import (
	"strings"
	"testing"

	"preexec/internal/timing"
)

// stagekeyGrid crosses every axis cmd/tsweep exposes (scope, maxlen, opt,
// merge, region, memlat, selmemlat, width, selwidth) with a default and a
// variant value: 512 configurations covering every combination of
// stage-feeding and stage-irrelevant knobs.
func stagekeyGrid() []Config {
	type mut struct {
		name  string
		apply func(*Config)
	}
	axes := [][]mut{
		{{"scope=1024", nil}, {"scope=512", func(c *Config) { c.Selection.Scope = 512 }}},
		{{"maxlen=32", nil}, {"maxlen=16", func(c *Config) { c.Selection.MaxLen = 16 }}},
		{{"opt=true", nil}, {"opt=false", func(c *Config) { c.Selection.Optimize = false }}},
		{{"merge=true", nil}, {"merge=false", func(c *Config) { c.Selection.Merge = false }}},
		{{"region=0", nil}, {"region=5000", func(c *Config) { c.Selection.RegionInsts = 5000 }}},
		{{"memlat=70", nil}, {"memlat=140", func(c *Config) { c.Machine.MemLat = 140 }}},
		{{"selmemlat=0", nil}, {"selmemlat=140", func(c *Config) { c.Selection.MemLat = 140 }}},
		{{"width=8", nil}, {"width=4", func(c *Config) { c.Machine.Width = 4 }}},
		{{"selwidth=0", nil}, {"selwidth=4", func(c *Config) { c.Selection.Width = 4 }}},
	}
	cfgs := []Config{DefaultConfig()}
	for _, ax := range axes {
		next := make([]Config, 0, len(cfgs)*len(ax))
		for _, cfg := range cfgs {
			for _, m := range ax {
				c := cfg
				if m.apply != nil {
					m.apply(&c)
				}
				next = append(next, c)
			}
		}
		cfgs = next
	}
	return cfgs
}

// localStageIdentity is the StageCache's view of one configuration: the
// exact struct keys its stages group entries by (program identity held
// fixed). The timing config is derived precisely the way the engine derives
// it for the cached stages — core normalization, ModeBase, then the shared
// base-run reduction.
func localStageIdentity(cfg Config) (base TimingConfig, prof ProfileOptions, traceable bool) {
	n := cfg.core().WithDefaults()
	base = normalizeBaseTiming(n.TimingConfig(timing.ModeBase))
	prof = ProfileOptions{
		WarmInsts:   n.WarmInsts,
		MaxInsts:    n.SelectInsts,
		Scope:       n.Scope,
		MaxSlice:    n.MaxLen,
		RegionInsts: n.RegionInsts,
	}
	return base, prof, timing.Traceable(base)
}

// TestStageKeysMatchLocalCacheIdentity is the single-source regression for
// the key renderer: across the full cmd/tsweep axis cross product, two cells
// share a rendered stage key exactly when the StageCache would group them
// onto one entry. The serve coordinator routes by these rendered keys
// (serve's stageKeys delegates to StageKeys), so any drift between routing
// identity and local memoization — a knob rendered into the string but not
// the struct key, or vice versa — fails here for the axis that drifted.
func TestStageKeysMatchLocalCacheIdentity(t *testing.T) {
	cfgs := stagekeyGrid()
	keys := make([]StageKeySet, len(cfgs))
	bases := make([]TimingConfig, len(cfgs))
	profs := make([]ProfileOptions, len(cfgs))
	for i, cfg := range cfgs {
		keys[i] = StageKeys("bench", 1, cfg)
		var traceable bool
		bases[i], profs[i], traceable = localStageIdentity(cfg)
		if (keys[i].Trace != "") != traceable {
			t.Fatalf("config %d: trace key %q, Traceable=%v", i, keys[i].Trace, traceable)
		}
	}
	for i := range cfgs {
		for j := i + 1; j < len(cfgs); j++ {
			if got, want := keys[i].Base == keys[j].Base, bases[i] == bases[j]; got != want {
				t.Errorf("configs %d/%d: base keys equal=%v, cache identity equal=%v\n i: %s\n j: %s",
					i, j, got, want, keys[i].Base, keys[j].Base)
			}
			if got, want := keys[i].Profile == keys[j].Profile, profs[i] == profs[j]; got != want {
				t.Errorf("configs %d/%d: profile keys equal=%v, cache identity equal=%v\n i: %s\n j: %s",
					i, j, got, want, keys[i].Profile, keys[j].Profile)
			}
			// The trace stage groups exactly like the base stage: the
			// recorded stream depends only on the base-run identity.
			if got, want := keys[i].Trace == keys[j].Trace, bases[i] == bases[j]; got != want {
				t.Errorf("configs %d/%d: trace keys equal=%v, base identity equal=%v\n i: %s\n j: %s",
					i, j, got, want, keys[i].Trace, keys[j].Trace)
			}
		}
	}
}

// TestStageKeysDisambiguate pins the key namespace: benchmark, scale, and
// stage prefix must each separate otherwise-identical cells, and the trace
// key must embed the simulator fingerprint so a timing-core version bump
// invalidates routed traces.
func TestStageKeysDisambiguate(t *testing.T) {
	cfg := DefaultConfig()
	a := StageKeys("crafty", 1, cfg)
	if b := StageKeys("mcf", 1, cfg); b.Base == a.Base || b.Profile == a.Profile || b.Trace == a.Trace {
		t.Errorf("different benchmarks share a stage key: %+v vs %+v", a, b)
	}
	if b := StageKeys("crafty", 2, cfg); b.Base == a.Base || b.Profile == a.Profile || b.Trace == a.Trace {
		t.Errorf("different scales share a stage key: %+v vs %+v", a, b)
	}
	set := map[string]bool{a.Base: true, a.Profile: true, a.Trace: true}
	if len(set) != 3 {
		t.Errorf("stage keys collide across stages: %+v", a)
	}
	if !strings.HasSuffix(a.Trace, "|"+timing.TraceVersion) {
		t.Errorf("trace key %q does not end in the simulator fingerprint %q", a.Trace, timing.TraceVersion)
	}

	// An untraceable run (too large to record) renders no trace key.
	big := cfg
	big.Machine.MeasureInsts = 1 << 40
	if ks := StageKeys("crafty", 1, big); ks.Trace != "" {
		t.Errorf("untraceable run rendered trace key %q", ks.Trace)
	}
}
