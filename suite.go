package preexec

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Job is one unit of suite work: a program evaluated under an engine.
type Job struct {
	// Name labels the job in progress events (default: Program.Name).
	Name    string
	Program *Program
	// Engine overrides the suite's engine for this job (nil = the suite's).
	// Per-job engines are how experiment sweeps evaluate one benchmark under
	// many configurations concurrently.
	Engine *Engine
}

// SuiteEvent is one streaming progress notification.
type SuiteEvent struct {
	// Index is the job's position in the input slice; Total the job count.
	Index int
	Total int
	// Done is the number of jobs completed so far, including this one.
	Done int
	Name string
	// Report is the job's result; nil when Err is non-nil, and for
	// progress sources (e.g. the experiment tables) whose unit of work is
	// not a full evaluation.
	Report *Report
	Err    error
}

// ParallelEach runs fn(i) for every i in [0, n) across a bounded worker
// pool (workers <= 0 selects GOMAXPROCS). The first error cancels the
// context passed to the remaining calls and is returned once the pool
// drains; index association is the caller's (write results[i] inside fn).
// Suite.Run and the experiment tables are built on it.
func ParallelEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		rootErr error
	)
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := fn(ctx, i); err != nil {
					mu.Lock()
					if rootErr == nil {
						rootErr = err
					}
					mu.Unlock()
					cancel()
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if rootErr != nil {
		return rootErr
	}
	return ctx.Err()
}

// Suite evaluates many jobs concurrently across a bounded worker pool.
// Results are returned in input order regardless of completion order, and —
// because every evaluation is hermetic (each simulation clones its own
// architectural state) — are bit-for-bit identical to a serial run.
type Suite struct {
	// Engine is the default engine (nil = New()).
	Engine *Engine
	// Workers bounds concurrent evaluations (<= 0 = GOMAXPROCS).
	Workers int
	// Progress, if non-nil, is called once per completed job. Calls are
	// serialized and may come from any worker goroutine.
	Progress func(SuiteEvent)
}

func (s *Suite) workers(n int) int {
	w := s.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run evaluates every job and returns their reports in input order. The
// first failure cancels the jobs still in flight and is returned after all
// workers drain; reports of jobs that completed before the failure are
// still filled in. Cancelling ctx stops the suite the same way.
func (s *Suite) Run(ctx context.Context, jobs []Job) ([]Report, error) {
	if len(jobs) == 0 {
		return nil, ctx.Err()
	}
	def := s.Engine
	if def == nil {
		def = New()
	}

	reports := make([]Report, len(jobs))
	var (
		mu   sync.Mutex // guards done and Progress calls
		done int
	)
	err := ParallelEach(ctx, s.workers(len(jobs)), len(jobs), func(ctx context.Context, i int) error {
		job := jobs[i]
		eng := job.Engine
		if eng == nil {
			eng = def
		}
		name := job.Name
		if name == "" && job.Program != nil {
			name = job.Program.Name
		}
		var (
			rep Report
			err error
		)
		if job.Program == nil {
			err = fmt.Errorf("preexec: suite job %d (%q) has no program", i, name)
		} else {
			rep, err = eng.Evaluate(ctx, job.Program)
		}
		if err == nil {
			reports[i] = rep
		}
		mu.Lock()
		done++
		if s.Progress != nil {
			ev := SuiteEvent{Index: i, Total: len(jobs), Done: done, Name: name, Err: err}
			if err == nil {
				ev.Report = &reports[i]
			}
			s.Progress(ev)
		}
		mu.Unlock()
		return err
	})
	return reports, err
}

// Evaluate runs the full pipeline on each program concurrently and returns
// the reports in input order.
func (s *Suite) Evaluate(ctx context.Context, progs ...*Program) ([]Report, error) {
	return s.Run(ctx, jobsFor(progs))
}

func jobsFor(progs []*Program) []Job {
	jobs := make([]Job, len(progs))
	for i, p := range progs {
		jobs[i] = Job{Program: p}
	}
	return jobs
}

// EvaluateSuite is the one-call convenience: it builds every named
// benchmark at the given scale (all of them when names is empty) and
// evaluates the suite concurrently under eng.
func EvaluateSuite(ctx context.Context, eng *Engine, names []string, scale int, workers int, progress func(SuiteEvent)) ([]Report, error) {
	if len(names) == 0 {
		names = WorkloadNames()
	}
	if scale < 1 {
		scale = 1
	}
	progs := make([]*Program, len(names))
	for i, name := range names {
		w, err := WorkloadByName(name)
		if err != nil {
			return nil, err
		}
		progs[i] = w.Build(scale)
	}
	s := &Suite{Engine: eng, Workers: workers, Progress: progress}
	return s.Evaluate(ctx, progs...)
}
