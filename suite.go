package preexec

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// ErrJobNotRun marks the per-job error slot of a suite job that never
// started because an earlier failure (or the caller's context) stopped the
// suite. It distinguishes "never ran" from a job's own failure and from a
// completed zero report.
var ErrJobNotRun = errors.New("preexec: suite job not run (suite stopped early)")

// Job is one unit of suite work: a program evaluated under an engine.
type Job struct {
	// Name labels the job in progress events (default: Program.Name).
	Name    string
	Program *Program
	// Engine overrides the suite's engine for this job (nil = the suite's).
	// Per-job engines are how experiment sweeps evaluate one benchmark under
	// many configurations concurrently.
	Engine *Engine
}

// SuiteEvent is one streaming progress notification. It marshals to JSON —
// with Err rendered as an "error" string and the full report omitted — as
// the per-cell event format of the serve package's streamed sweeps.
type SuiteEvent struct {
	// Index is the job's position in the input slice; Total the job count.
	Index int `json:"index"`
	Total int `json:"total"`
	// Done is the number of jobs completed so far, including this one.
	Done int    `json:"done"`
	Name string `json:"name"`
	// Report is the job's result; nil when Err is non-nil, and for
	// progress sources (e.g. the experiment tables) whose unit of work is
	// not a full evaluation.
	Report *Report `json:"-"`
	Err    error   `json:"-"`
}

// MarshalJSON renders the event compactly for progress streams: the
// positional counters plus Err as a string; the report itself is omitted
// (streamed consumers read it from the final result).
func (ev SuiteEvent) MarshalJSON() ([]byte, error) {
	type plain SuiteEvent // avoid recursing into this method
	out := struct {
		plain
		Error string `json:"error,omitempty"`
	}{plain: plain(ev)}
	if ev.Err != nil {
		out.Error = ev.Err.Error()
	}
	return json.Marshal(out)
}

// ParallelEach runs fn(i) for every i in [0, n) across a bounded worker
// pool (workers <= 0 selects GOMAXPROCS). The first error cancels the
// context passed to the remaining calls and is returned once the pool
// drains; index association is the caller's (write results[i] inside fn).
// Suite.Run and the experiment tables are built on it.
func ParallelEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		rootErr error
	)
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := fn(ctx, i); err != nil {
					mu.Lock()
					if rootErr == nil {
						rootErr = err
					}
					mu.Unlock()
					cancel()
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if rootErr != nil {
		return rootErr
	}
	return ctx.Err()
}

// Suite evaluates many jobs concurrently across a bounded worker pool.
// Results are returned in input order regardless of completion order, and —
// because every evaluation is hermetic (each simulation clones its own
// architectural state) — are bit-for-bit identical to a serial run.
type Suite struct {
	// Engine is the default engine (nil = New()).
	Engine *Engine
	// Workers bounds concurrent evaluations (<= 0 = GOMAXPROCS).
	Workers int
	// Progress, if non-nil, is called once per completed job. Calls are
	// serialized and may come from any worker goroutine.
	Progress func(SuiteEvent)
}

func (s *Suite) workers(n int) int {
	w := s.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run evaluates every job and returns their reports in input order. The
// first failure cancels the jobs still in flight and is returned as the
// summary error after all workers drain; reports of jobs that completed
// before the failure are still filled in, and the per-job error slice says
// which is which: nil for a completed job, the job's own error for a failed
// or cancelled one, and ErrJobNotRun for a job the suite never started.
// Cancelling ctx stops the suite the same way.
//
// A job without a program is rejected up front — before any job runs —
// with an error naming the job's index and name.
func (s *Suite) Run(ctx context.Context, jobs []Job) ([]Report, []error, error) {
	if len(jobs) == 0 {
		return nil, nil, ctx.Err()
	}
	for i, job := range jobs {
		if job.Program == nil {
			return nil, nil, fmt.Errorf("preexec: suite job %d (%q) has no program", i, job.Name)
		}
	}
	def := s.Engine
	if def == nil {
		def = New()
	}

	reports := make([]Report, len(jobs))
	errs := make([]error, len(jobs))
	for i := range errs {
		errs[i] = ErrJobNotRun
	}
	var (
		mu   sync.Mutex // guards done and Progress calls
		done int
	)
	err := ParallelEach(ctx, s.workers(len(jobs)), len(jobs), func(ctx context.Context, i int) error {
		job := jobs[i]
		eng := job.Engine
		if eng == nil {
			eng = def
		}
		name := job.Name
		if name == "" {
			name = job.Program.Name
		}
		rep, err := eng.Evaluate(ctx, job.Program)
		if err == nil {
			reports[i] = rep
		}
		errs[i] = err
		mu.Lock()
		done++
		if s.Progress != nil {
			ev := SuiteEvent{Index: i, Total: len(jobs), Done: done, Name: name, Err: err}
			if err == nil {
				ev.Report = &reports[i]
			}
			//lint:ignore lockscope Progress is documented as serialized; the mutex is what provides that contract, and the callback must not call back into the Suite.
			s.Progress(ev)
		}
		mu.Unlock()
		return err
	})
	return reports, errs, err
}

// Evaluate runs the full pipeline on each program concurrently and returns
// the reports in input order. It keeps only the summary error; use Run for
// per-job errors.
func (s *Suite) Evaluate(ctx context.Context, progs ...*Program) ([]Report, error) {
	reports, _, err := s.Run(ctx, jobsFor(progs))
	return reports, err
}

func jobsFor(progs []*Program) []Job {
	jobs := make([]Job, len(progs))
	for i, p := range progs {
		jobs[i] = Job{Program: p}
	}
	return jobs
}

// EvaluateSuite is the one-call convenience: it builds every named
// benchmark at the given scale (all of them when names is empty) and
// evaluates the suite concurrently under eng. Every name and the scale are
// validated before any program is built; scale must be at least 1.
func EvaluateSuite(ctx context.Context, eng *Engine, names []string, scale int, workers int, progress func(SuiteEvent)) ([]Report, error) {
	ws, err := workloadsByName(names)
	if err != nil {
		return nil, err
	}
	if scale < 1 {
		return nil, fmt.Errorf("preexec: suite scale %d, want >= 1", scale)
	}
	progs := make([]*Program, len(ws))
	for i, w := range ws {
		progs[i] = w.Build(scale)
	}
	s := &Suite{Engine: eng, Workers: workers, Progress: progress}
	return s.Evaluate(ctx, progs...)
}
