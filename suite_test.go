package preexec_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"preexec"
)

func suiteBenches(t testing.TB, names ...string) []*preexec.Program {
	t.Helper()
	progs := make([]*preexec.Program, len(names))
	for i, n := range names {
		progs[i] = buildBench(t, n)
	}
	return progs
}

// TestSuiteParallelMatchesSerial is the acceptance check for the concurrent
// runner: the worker pool must produce reports bit-for-bit identical to a
// serial run, in the same (input) order.
func TestSuiteParallelMatchesSerial(t *testing.T) {
	progs := suiteBenches(t, "vpr.p", "crafty", "vpr.r", "bzip2")
	eng := preexec.New(preexec.WithMachine(testMachine()))

	serial, err := (&preexec.Suite{Engine: eng, Workers: 1}).Evaluate(t.Context(), progs...)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := (&preexec.Suite{Engine: eng, Workers: 4}).Evaluate(t.Context(), progs...)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(progs) || len(parallel) != len(progs) {
		t.Fatalf("lengths: serial %d parallel %d, want %d", len(serial), len(parallel), len(progs))
	}
	for i := range serial {
		if serial[i].Program != progs[i].Name {
			t.Errorf("result %d out of order: %s, want %s", i, serial[i].Program, progs[i].Name)
		}
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("%s: parallel report diverges from serial", progs[i].Name)
		}
	}
}

// TestSuiteProgressStreaming checks the streaming callback: one event per
// job, serialized, with a monotonically increasing Done counter.
func TestSuiteProgressStreaming(t *testing.T) {
	progs := suiteBenches(t, "vpr.p", "crafty", "vpr.r")
	var events []preexec.SuiteEvent
	s := &preexec.Suite{
		Engine:   preexec.New(preexec.WithMachine(testMachine())),
		Workers:  3,
		Progress: func(ev preexec.SuiteEvent) { events = append(events, ev) },
	}
	if _, err := s.Evaluate(t.Context(), progs...); err != nil {
		t.Fatal(err)
	}
	if len(events) != len(progs) {
		t.Fatalf("events = %d, want %d", len(events), len(progs))
	}
	seen := map[int]bool{}
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != len(progs) {
			t.Errorf("event %d: Done/Total = %d/%d, want %d/%d", i, ev.Done, ev.Total, i+1, len(progs))
		}
		if ev.Err != nil || ev.Report == nil {
			t.Errorf("event %d: err=%v report=%v", i, ev.Err, ev.Report)
		}
		if seen[ev.Index] {
			t.Errorf("index %d reported twice", ev.Index)
		}
		seen[ev.Index] = true
		if ev.Report != nil && ev.Report.Program != progs[ev.Index].Name {
			t.Errorf("event %d: report for %s at index %d (%s)", i, ev.Report.Program, ev.Index, progs[ev.Index].Name)
		}
	}
}

// failingSimulator errors on a chosen program to exercise suite error
// propagation and cancellation of in-flight jobs.
type failingSimulator struct {
	failOn string
	inner  preexec.Simulator
}

type passthroughSimulator struct{}

func (passthroughSimulator) Simulate(ctx context.Context, p *preexec.Program, pts []*preexec.PThread, cfg preexec.TimingConfig) (preexec.Stats, error) {
	eng := preexec.New()
	_ = cfg
	return eng.Simulate(ctx, p, pts, cfg.Mode)
}

func (f *failingSimulator) Simulate(ctx context.Context, p *preexec.Program, pts []*preexec.PThread, cfg preexec.TimingConfig) (preexec.Stats, error) {
	if p.Name == f.failOn {
		return preexec.Stats{}, fmt.Errorf("injected failure for %s", p.Name)
	}
	return f.inner.Simulate(ctx, p, pts, cfg)
}

func TestSuiteErrorPropagates(t *testing.T) {
	progs := suiteBenches(t, "vpr.p", "crafty", "vpr.r")
	eng := preexec.New(
		preexec.WithMachine(testMachine()),
		preexec.WithSimulator(&failingSimulator{failOn: "crafty", inner: passthroughSimulator{}}),
	)
	_, err := (&preexec.Suite{Engine: eng, Workers: 2}).Evaluate(t.Context(), progs...)
	if err == nil || !strings.Contains(err.Error(), "injected failure") {
		t.Fatalf("err = %v, want injected failure", err)
	}
}

// TestSuiteNilProgram checks a job without a program is rejected at plan
// time — before any job runs — with the job's index and name in the error.
func TestSuiteNilProgram(t *testing.T) {
	var events int
	s := &preexec.Suite{Progress: func(preexec.SuiteEvent) { events++ }}
	jobs := []preexec.Job{{Name: "ok", Program: buildBench(t, "crafty")}, {Name: "empty"}}
	reports, errs, err := s.Run(t.Context(), jobs)
	if err == nil || !strings.Contains(err.Error(), "has no program") {
		t.Fatalf("err = %v, want no-program error", err)
	}
	if !strings.Contains(err.Error(), "job 1") || !strings.Contains(err.Error(), `"empty"`) {
		t.Errorf("err = %v, want the job index and name", err)
	}
	if reports != nil || errs != nil {
		t.Error("plan-time rejection should not return reports or per-job errors")
	}
	if events != 0 {
		t.Errorf("plan-time rejection ran %d jobs, want 0", events)
	}
}

// TestSuitePartialFailure is the regression test for the partial-failure
// reporting contract: after a mid-suite failure, callers can tell completed
// jobs (nil per-job error, report filled in) from the failed job (its own
// error) and from jobs the suite never started (ErrJobNotRun) — a completed
// zero-report is no longer ambiguous.
func TestSuitePartialFailure(t *testing.T) {
	progs := suiteBenches(t, "vpr.p", "crafty", "vpr.r")
	eng := preexec.New(
		preexec.WithMachine(testMachine()),
		preexec.WithSimulator(&failingSimulator{failOn: "crafty", inner: passthroughSimulator{}}),
	)
	jobs := make([]preexec.Job, len(progs))
	for i, p := range progs {
		jobs[i] = preexec.Job{Program: p}
	}
	// One worker: vpr.p completes before crafty fails; vpr.r never completes.
	reports, errs, err := (&preexec.Suite{Engine: eng, Workers: 1}).Run(t.Context(), jobs)
	if err == nil || !strings.Contains(err.Error(), "injected failure") {
		t.Fatalf("summary err = %v, want the first failure", err)
	}
	if len(reports) != 3 || len(errs) != 3 {
		t.Fatalf("lengths: %d reports, %d errs, want 3 each", len(reports), len(errs))
	}
	if errs[0] != nil {
		t.Errorf("completed job err = %v, want nil", errs[0])
	}
	if reports[0].Program != "vpr.p" || reports[0].Base.Retired == 0 {
		t.Errorf("completed job's report missing: %+v", reports[0])
	}
	if errs[1] == nil || !strings.Contains(errs[1].Error(), "injected failure") {
		t.Errorf("failed job err = %v, want injected failure", errs[1])
	}
	// The trailing job either never started (ErrJobNotRun) or was cancelled
	// mid-flight — never a silent nil beside a zero report.
	if errs[2] == nil {
		t.Error("unstarted job err = nil, indistinguishable from success")
	}
	if !errors.Is(errs[2], preexec.ErrJobNotRun) && !errors.Is(errs[2], context.Canceled) {
		t.Errorf("unstarted job err = %v, want ErrJobNotRun or context.Canceled", errs[2])
	}
	if reports[2].Program != "" {
		t.Errorf("unstarted job has a report: %+v", reports[2])
	}
}

// TestEvaluateSuiteValidatesUpFront pins the up-front validation contract:
// a bad scale and a bad trailing name both fail before any program is
// evaluated.
func TestEvaluateSuiteValidatesUpFront(t *testing.T) {
	eng := preexec.New(preexec.WithMachine(testMachine()))
	if _, err := preexec.EvaluateSuite(t.Context(), eng, []string{"crafty"}, 0, 1, nil); err == nil ||
		!strings.Contains(err.Error(), "scale") {
		t.Errorf("scale 0: err = %v, want scale error", err)
	}
	if _, err := preexec.EvaluateSuite(t.Context(), eng, []string{"crafty"}, -3, 1, nil); err == nil {
		t.Error("scale -3 should error, not clamp to 1")
	}
	var events int
	_, err := preexec.EvaluateSuite(t.Context(), eng, []string{"crafty", "nope"}, 1, 1,
		func(preexec.SuiteEvent) { events++ })
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("bad trailing name: err = %v, want unknown-benchmark error", err)
	}
	if events != 0 {
		t.Errorf("bad trailing name still evaluated %d jobs, want 0", events)
	}
}

// TestSuiteCancellation proves cancelling the suite context stops the pool
// promptly and surfaces context.Canceled.
func TestSuiteCancellation(t *testing.T) {
	// Large evaluations so cancellation lands mid-flight.
	var progs []*preexec.Program
	for _, n := range []string{"mcf", "gcc", "parser", "vortex"} {
		w, err := preexec.WorkloadByName(n)
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, w.Build(4))
	}
	machine := preexec.DefaultMachine()
	machine.MeasureInsts = 4_000_000
	eng := preexec.New(preexec.WithMachine(machine))

	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Bool
	go func() {
		for !started.Load() {
			time.Sleep(time.Millisecond)
		}
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	started.Store(true)
	start := time.Now()
	_, err := (&preexec.Suite{Engine: eng, Workers: 2}).Evaluate(ctx, progs...)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("suite cancellation took %v, want prompt return", elapsed)
	}
}

// TestEvaluateSuiteConvenience exercises the one-call helper end to end.
func TestEvaluateSuiteConvenience(t *testing.T) {
	eng := preexec.New(preexec.WithMachine(testMachine()))
	reps, err := preexec.EvaluateSuite(t.Context(), eng, []string{"vpr.p", "crafty"}, 1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 || reps[0].Program != "vpr.p" || reps[1].Program != "crafty" {
		t.Fatalf("unexpected reports: %+v", reps)
	}
	if _, err := preexec.EvaluateSuite(t.Context(), eng, []string{"nope"}, 1, 1, nil); err == nil {
		t.Error("unknown benchmark should error")
	}
}
