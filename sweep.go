package preexec

import (
	"context"
	"encoding/json"
	"fmt"
)

// SweepBench is one benchmark of a sweep grid: the evaluated program plus
// an optional alternate-input build for config points that profile on a
// different input (the paper's Figure 7 static scenario).
type SweepBench struct {
	// Name labels the benchmark in cells and progress events (default:
	// Program.Name).
	Name    string
	Program *Program
	// Test is the benchmark's alternate ("test") input, available to
	// ConfigPoint.Derive; nil when no point needs it.
	Test *Program
}

// label is the benchmark's display name — the one rule shared by job names,
// progress events, and cell labels.
func (b SweepBench) label() string {
	if b.Name != "" {
		return b.Name
	}
	return b.Program.Name
}

// SweepBenches builds the named workloads at the given scale into sweep
// benchmarks (all ten when names is empty), train and test inputs both.
// Every name is validated before any program is built, and scale must be
// at least 1.
func SweepBenches(names []string, scale int) ([]SweepBench, error) {
	ws, err := workloadsByName(names)
	if err != nil {
		return nil, err
	}
	if scale < 1 {
		return nil, fmt.Errorf("preexec: sweep scale %d, want >= 1", scale)
	}
	benches := make([]SweepBench, len(ws))
	for i, w := range ws {
		benches[i] = SweepBench{Name: w.Name, Program: w.Build(scale), Test: w.BuildTest(scale)}
	}
	return benches, nil
}

// ConfigPoint is one named point of a sweep grid.
type ConfigPoint struct {
	Name string
	// Config is the point's evaluation configuration. Note the zero Config
	// is NOT the paper's base flow (Optimize/Merge default off); start from
	// DefaultConfig.
	Config Config
	// Derive, if non-nil, computes the cell configuration per benchmark —
	// for points that reference the benchmark's programs (e.g. profiling on
	// the test input). It takes precedence over Config.
	Derive func(bench SweepBench) Config
}

// SweepCell is one completed (benchmark, config point) evaluation.
type SweepCell struct {
	Bench  string `json:"bench"`
	Point  string `json:"point"`
	Report Report `json:"report"`
	// Err is the cell's own failure, nil for completed cells. Cells never
	// started because the sweep stopped early carry ErrJobNotRun.
	Err error `json:"-"`
}

// MarshalJSON renders Err as an "error" string so failed cells stay
// distinguishable from completed zero reports in machine-readable output.
func (c SweepCell) MarshalJSON() ([]byte, error) {
	type plain SweepCell // avoid recursing into this method
	out := struct {
		plain
		Error string `json:"error,omitempty"`
	}{plain: plain(c)}
	if c.Err != nil {
		out.Error = c.Err.Error()
	}
	return json.Marshal(out)
}

// SweepResult is a completed sweep: cells in benchmark-major, grid order
// (the same cell order Plan produces), plus the stage cache's counters.
type SweepResult struct {
	Cells []SweepCell `json:"cells"`
	// Cache counts this run's stage work — the delta of the cache's
	// counters around the run, so a shared Sweep.Cache reports per-run
	// numbers (attribution is approximate if other sweeps hit the same
	// cache concurrently). Zero when the cache is disabled. For a
	// selection-only grid over N previously-unseen benchmarks, BaseRuns
	// and ProfileRuns are exactly N.
	Cache CacheStats `json:"cache"`
}

// Sweep evaluates a (benchmark x configuration) grid over the Suite worker
// pool, memoizing the selection-independent stages in a StageCache so cells
// that differ only in selection or ablation knobs share base timing runs
// and profiles. Cell reports are bit-for-bit identical to uncached
// evaluation.
type Sweep struct {
	// Engine supplies the stage backends (profiler/selector/simulator) the
	// cells run on (nil = the reference implementations). Its configuration
	// is ignored: each cell evaluates under its ConfigPoint's.
	Engine *Engine
	// Workers bounds concurrent cell evaluations (<= 0 = GOMAXPROCS).
	Workers int
	// Progress, if non-nil, is called once per completed cell with
	// Name = "<bench>/<point>".
	Progress func(SuiteEvent)
	// NoCache disables stage memoization: every cell recomputes its own
	// base run and profile (the -cache=off escape hatch of cmd/tsweep).
	NoCache bool
	// Cache, if non-nil, is used (and shared) instead of a fresh per-Run
	// cache — for sweeps issued in several Run calls over the same
	// *Program values (entries are keyed by program pointer and retained
	// for the cache's lifetime; rebuilt programs never hit). Ignored when
	// NoCache is set.
	Cache *StageCache
}

// Plan validates the grid and lays out its cells as suite jobs in
// benchmark-major order: every benchmark must have a program and every
// point a name, rejected with the offending index up front rather than
// failing per-job at run time. The returned jobs carry per-cell engines
// that share the given stage cache (nil = uncached).
func (s *Sweep) Plan(benches []SweepBench, points []ConfigPoint, cache *StageCache) ([]Job, error) {
	if len(benches) == 0 {
		return nil, fmt.Errorf("preexec: sweep has no benchmarks")
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("preexec: sweep has no config points")
	}
	for i, b := range benches {
		if b.Program == nil {
			return nil, fmt.Errorf("preexec: sweep benchmark %d (%q) has no program", i, b.Name)
		}
	}
	for i, pt := range points {
		if pt.Name == "" {
			return nil, fmt.Errorf("preexec: sweep config point %d has no name", i)
		}
	}
	base := s.Engine
	if base == nil {
		base = New()
	}
	jobs := make([]Job, 0, len(benches)*len(points))
	for _, b := range benches {
		for _, pt := range points {
			cfg := pt.Config
			if pt.Derive != nil {
				cfg = pt.Derive(b)
			}
			jobs = append(jobs, Job{
				Name:    b.label() + "/" + pt.Name,
				Program: b.Program,
				Engine: New(
					WithConfig(cfg),
					WithProfiler(base.profiler),
					WithSelector(base.selector),
					WithSimulator(base.simulator),
					WithStageCache(cache),
					WithReplay(base.replay),
					WithStageObserver(base.observer),
				),
			})
		}
	}
	return jobs, nil
}

// Run plans and evaluates the grid. The first failure cancels the cells
// still in flight and is returned as the summary error; the result is
// still returned with every cell's report or per-cell error filled in
// (completed cells keep their reports, unstarted cells carry ErrJobNotRun).
func (s *Sweep) Run(ctx context.Context, benches []SweepBench, points []ConfigPoint) (*SweepResult, error) {
	cache := s.Cache
	if s.NoCache {
		cache = nil
	} else if cache == nil {
		cache = NewStageCache()
	}
	jobs, err := s.Plan(benches, points, cache)
	if err != nil {
		return nil, err
	}
	var before CacheStats
	if cache != nil {
		before = cache.Stats()
	}
	suite := &Suite{Workers: s.Workers, Progress: s.Progress}
	reports, errs, err := suite.Run(ctx, jobs)

	res := &SweepResult{Cells: make([]SweepCell, len(jobs))}
	for i := range jobs {
		bi, pi := i/len(points), i%len(points)
		cell := SweepCell{Bench: benches[bi].label(), Point: points[pi].Name}
		if errs != nil {
			cell.Err = errs[i]
		}
		if reports != nil && cell.Err == nil {
			cell.Report = reports[i]
		}
		res.Cells[i] = cell
	}
	if cache != nil {
		res.Cache = cache.Stats().sub(before)
	}
	return res, err
}

// workloadsByName resolves benchmark names (all registered when empty),
// validating every name before returning. A failed lookup is wrapped with
// the offending list position so callers resolving externally-submitted
// name lists (a -bench flag, a /v1/sweep "benches" array) can report which
// entry was bad; the cause still matches ErrUnknownWorkload.
func workloadsByName(names []string) ([]Workload, error) {
	if len(names) == 0 {
		return Workloads(), nil
	}
	ws := make([]Workload, len(names))
	for i, name := range names {
		w, err := WorkloadByName(name)
		if err != nil {
			return nil, fmt.Errorf("preexec: benchmark %d of %d: %w", i+1, len(names), err)
		}
		ws[i] = w
	}
	return ws, nil
}
