package preexec_test

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"preexec"
)

// sweepConfig returns the paper's base configuration with test-sized
// windows.
func sweepConfig(warm, measure int64) preexec.Config {
	cfg := preexec.DefaultConfig()
	cfg.Machine.WarmInsts, cfg.Machine.MeasureInsts = warm, measure
	return cfg
}

// selectionPoints is a Figure-5-style selection-only grid: the four
// optimization/merging variants. None of these knobs feed the profile or
// the base timing run, so a memoized sweep shares both across all four.
func selectionPoints(warm, measure int64) []preexec.ConfigPoint {
	points := make([]preexec.ConfigPoint, 0, 4)
	for _, name := range []string{"none", "merge", "opt", "opt+merge"} {
		cfg := sweepConfig(warm, measure)
		cfg.Selection.Optimize = name == "opt" || name == "opt+merge"
		cfg.Selection.Merge = name == "merge" || name == "opt+merge"
		points = append(points, preexec.ConfigPoint{Name: name, Config: cfg})
	}
	return points
}

func runSweep(t *testing.T, s *preexec.Sweep, benches []preexec.SweepBench, points []preexec.ConfigPoint) *preexec.SweepResult {
	t.Helper()
	res, err := s.Run(t.Context(), benches, points)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(benches)*len(points) {
		t.Fatalf("cells = %d, want %d", len(res.Cells), len(benches)*len(points))
	}
	return res
}

// assertCellsEqual checks two sweep results are bit-for-bit identical,
// cell by cell.
func assertCellsEqual(t *testing.T, cached, uncached *preexec.SweepResult) {
	t.Helper()
	for i := range cached.Cells {
		c, u := cached.Cells[i], uncached.Cells[i]
		if c.Bench != u.Bench || c.Point != u.Point {
			t.Fatalf("cell %d label mismatch: %s/%s vs %s/%s", i, c.Bench, c.Point, u.Bench, u.Point)
		}
		if !reflect.DeepEqual(c.Report, u.Report) {
			t.Errorf("%s/%s: cached report diverges from uncached", c.Bench, c.Point)
		}
	}
}

// TestSweepSelectionGridCacheCounts is the tentpole acceptance test: a
// four-point selection-only sweep (Figure 5's opt/merge grid — the knobs
// feed neither the profile nor the base run) over the full ten-benchmark
// suite performs exactly ten profile runs and ten base timing runs — one
// per benchmark, shared by all four points — and every cell's report is
// bit-for-bit identical to the uncached path.
func TestSweepSelectionGridCacheCounts(t *testing.T) {
	benches, err := preexec.SweepBenches(nil, 1) // all ten
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 10 {
		t.Fatalf("benches = %d, want the full ten-benchmark suite", len(benches))
	}
	points := selectionPoints(10_000, 30_000)

	cached := runSweep(t, &preexec.Sweep{}, benches, points)
	uncached := runSweep(t, &preexec.Sweep{NoCache: true}, benches, points)

	want := preexec.CacheStats{
		BaseRuns: 10, BaseHits: 30,
		ProfileRuns: 10, ProfileHits: 30,
		TraceRuns: 10, TraceHits: 30,
	}
	if cached.Cache != want {
		t.Errorf("cache stats = %+v, want %+v", cached.Cache, want)
	}
	if uncached.Cache != (preexec.CacheStats{}) {
		t.Errorf("uncached sweep reports cache activity: %+v", uncached.Cache)
	}
	assertCellsEqual(t, cached, uncached)
	for _, cell := range cached.Cells {
		if cell.Err != nil {
			t.Errorf("%s/%s: %v", cell.Bench, cell.Point, cell.Err)
		}
		if cell.Report.Base.Retired == 0 {
			t.Errorf("%s/%s: empty report", cell.Bench, cell.Point)
		}
	}
}

// TestSweepMixedGridKeySeparation pins the cache key structure: points
// that change profile inputs (scope) or the machine (memory latency) get
// their own stage runs, while selection (merge) and ablation (RS throttle)
// knobs share — and all of it stays bit-identical to uncached evaluation.
func TestSweepMixedGridKeySeparation(t *testing.T) {
	benches, err := preexec.SweepBenches([]string{"vpr.p", "crafty"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	base := sweepConfig(10_000, 30_000)
	mk := func(name string, mutate func(cfg *preexec.Config)) preexec.ConfigPoint {
		cfg := base
		mutate(&cfg)
		return preexec.ConfigPoint{Name: name, Config: cfg}
	}
	points := []preexec.ConfigPoint{
		mk("base", func(cfg *preexec.Config) {}),
		mk("nomerge", func(cfg *preexec.Config) { cfg.Selection.Merge = false }),
		mk("scope512", func(cfg *preexec.Config) { cfg.Selection.Scope = 512 }),
		mk("ml140", func(cfg *preexec.Config) { cfg.Machine.MemLat = 140 }),
		mk("nothrottle", func(cfg *preexec.Config) { cfg.Ablation.NoRSThrottle = true }),
	}

	cached := runSweep(t, &preexec.Sweep{}, benches, points)
	uncached := runSweep(t, &preexec.Sweep{NoCache: true}, benches, points)
	assertCellsEqual(t, cached, uncached)

	// Per benchmark: base/nomerge/scope512/nothrottle share one base run
	// (scope and the p-thread-only throttle don't feed it), ml140 needs its
	// own; base/nomerge/ml140/nothrottle share one profile (memory latency
	// doesn't feed it), scope512 needs its own. Traces group exactly like
	// base runs (the recorded stream is selection-independent).
	want := preexec.CacheStats{
		BaseRuns: 4, BaseHits: 6,
		ProfileRuns: 4, ProfileHits: 6,
		TraceRuns: 4, TraceHits: 6,
	}
	if cached.Cache != want {
		t.Errorf("cache stats = %+v, want %+v", cached.Cache, want)
	}
}

// TestSweepSharedCacheAcrossRuns proves a caller-owned cache carries stage
// results across Run calls over the same programs, and that each result
// reports its own run's stage work (a counter delta, not the cumulative
// cache totals).
func TestSweepSharedCacheAcrossRuns(t *testing.T) {
	benches, err := preexec.SweepBenches([]string{"vpr.r"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cache := preexec.NewStageCache()
	s := &preexec.Sweep{Cache: cache}
	first := runSweep(t, s, benches, selectionPoints(10_000, 30_000)[:2])
	second := runSweep(t, s, benches, selectionPoints(10_000, 30_000)[2:])
	wantFirst := preexec.CacheStats{
		BaseRuns: 1, BaseHits: 1,
		ProfileRuns: 1, ProfileHits: 1,
		TraceRuns: 1, TraceHits: 1,
	}
	if first.Cache != wantFirst {
		t.Errorf("first run stats = %+v, want %+v", first.Cache, wantFirst)
	}
	// The second run's stages are all warm: zero runs, per-run hit counts.
	wantSecond := preexec.CacheStats{BaseHits: 2, ProfileHits: 2, TraceHits: 2}
	if second.Cache != wantSecond {
		t.Errorf("second run stats = %+v, want %+v", second.Cache, wantSecond)
	}
	wantTotal := preexec.CacheStats{
		BaseRuns: 1, BaseHits: 3,
		ProfileRuns: 1, ProfileHits: 3,
		TraceRuns: 1, TraceHits: 3,
	}
	if got := cache.Stats(); got != wantTotal {
		t.Errorf("cumulative cache stats = %+v, want %+v", got, wantTotal)
	}
}

// TestSweepCacheConcurrentRuns hammers one stage cache from two concurrent
// sweeps, each across the full worker pool (run under -race in CI). The
// same-key flights must coalesce: stage run counts stay per-key-unique.
func TestSweepCacheConcurrentRuns(t *testing.T) {
	benches, err := preexec.SweepBenches([]string{"vpr.p", "crafty", "gcc", "mcf"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	points := selectionPoints(5_000, 15_000)
	cache := preexec.NewStageCache()
	results := make([]*preexec.SweepResult, 2)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := &preexec.Sweep{Cache: cache, Workers: 0} // full pool
			res, err := s.Run(context.Background(), benches, points)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	assertCellsEqual(t, results[0], results[1])
	stats := cache.Stats()
	if stats.BaseRuns != 4 || stats.ProfileRuns != 4 {
		t.Errorf("concurrent sweeps duplicated stage work: %+v", stats)
	}
	if got, want := stats.BaseHits+stats.BaseRuns, int64(2*len(benches)*len(points)); got != want {
		t.Errorf("base lookups = %d, want %d", got, want)
	}
}

// blockingFirstSimulator parks its first call until the call's context is
// cancelled (signalling started first); later calls delegate to the real
// simulator. It orchestrates a cache flight that fails with one caller's
// cancellation while another caller waits on it.
type blockingFirstSimulator struct {
	once    sync.Once
	started chan struct{}
	inner   preexec.Simulator
}

func (s *blockingFirstSimulator) Simulate(ctx context.Context, p *preexec.Program, pts []*preexec.PThread, cfg preexec.TimingConfig) (preexec.Stats, error) {
	first := false
	s.once.Do(func() { first = true })
	if first {
		close(s.started)
		<-ctx.Done()
		return preexec.Stats{}, ctx.Err()
	}
	return s.inner.Simulate(ctx, p, pts, cfg)
}

// TestStageCacheFailedFlightDoesNotPoisonWaiters is the regression test for
// shared-cache isolation: when the computing caller's context is cancelled
// mid-flight, a waiter coalesced onto that flight must retry with its own
// (alive) context and succeed, not adopt the canceller's error.
func TestStageCacheFailedFlightDoesNotPoisonWaiters(t *testing.T) {
	prog := buildBench(t, "crafty")
	cache := preexec.NewStageCache()
	sim := &blockingFirstSimulator{started: make(chan struct{}), inner: passthroughSimulator{}}
	mkEngine := func() *preexec.Engine {
		return preexec.New(preexec.WithMachine(testMachine()),
			preexec.WithSimulator(sim), preexec.WithStageCache(cache))
	}

	ctxA, cancelA := context.WithCancel(context.Background())
	aErr := make(chan error, 1)
	go func() {
		_, err := mkEngine().Evaluate(ctxA, prog)
		aErr <- err
	}()
	<-sim.started // A is mid base-run compute

	bErr := make(chan error, 1)
	var bRep preexec.Report
	go func() {
		rep, err := mkEngine().Evaluate(context.Background(), prog)
		bRep = rep
		bErr <- err
	}()
	// Let B coalesce onto A's flight, then cancel A out from under it.
	for i := 0; i < 100 && cache.Stats().BaseHits == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	cancelA()

	if err := <-aErr; !errors.Is(err, context.Canceled) {
		t.Errorf("canceller's err = %v, want context.Canceled", err)
	}
	if err := <-bErr; err != nil {
		t.Fatalf("waiter adopted the canceller's failure: %v", err)
	}
	// The uncached reference goes through the same simulator backend
	// (passthroughSimulator re-derives its own timing config).
	want, err := preexec.New(preexec.WithMachine(testMachine()),
		preexec.WithSimulator(passthroughSimulator{})).Evaluate(t.Context(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bRep, want) {
		t.Error("waiter's retried report diverges from a plain evaluation")
	}
}

// TestSweepCellJSONCarriesError pins the machine-readable partial-failure
// contract: a failed cell marshals with an "error" field, so JSON consumers
// can tell it from a completed zero report.
func TestSweepCellJSONCarriesError(t *testing.T) {
	benches, err := preexec.SweepBenches([]string{"vpr.p", "crafty"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng := preexec.New(preexec.WithSimulator(&failingSimulator{failOn: "crafty", inner: passthroughSimulator{}}))
	s := &preexec.Sweep{Engine: eng, Workers: 1}
	res, err := s.Run(t.Context(), benches, selectionPoints(5_000, 10_000)[:1])
	if err == nil || res == nil {
		t.Fatalf("want partial failure with result, got err=%v res=%v", err, res)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"error":"core: base run: injected failure for crafty"`) &&
		!strings.Contains(string(data), "injected failure") {
		t.Errorf("JSON output hides the failed cell's error:\n%s", data)
	}
	var decoded struct {
		Cells []struct {
			Bench string `json:"bench"`
			Error string `json:"error"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, c := range decoded.Cells {
		if c.Bench == "crafty" && c.Error == "" {
			t.Error("crafty's failed cell marshalled without an error field")
		}
		if c.Bench == "vpr.p" && c.Error != "" {
			t.Errorf("completed cell carries error %q", c.Error)
		}
	}
}

// TestSweepPlanValidation pins plan-time rejection: nil programs and
// unnamed points fail with their index before any cell runs.
func TestSweepPlanValidation(t *testing.T) {
	prog := buildBench(t, "crafty")
	points := selectionPoints(5_000, 10_000)[:1]
	s := &preexec.Sweep{}

	_, err := s.Run(t.Context(), []preexec.SweepBench{{Name: "ok", Program: prog}, {Name: "ghost"}}, points)
	if err == nil || !strings.Contains(err.Error(), "benchmark 1") || !strings.Contains(err.Error(), `"ghost"`) {
		t.Errorf("nil program: err = %v, want the benchmark index and name", err)
	}
	_, err = s.Run(t.Context(), []preexec.SweepBench{{Name: "ok", Program: prog}},
		[]preexec.ConfigPoint{{Config: points[0].Config}})
	if err == nil || !strings.Contains(err.Error(), "point 0") {
		t.Errorf("unnamed point: err = %v, want the point index", err)
	}
	if _, err := s.Run(t.Context(), nil, points); err == nil {
		t.Error("empty benchmark set should error")
	}
	if _, err := s.Run(t.Context(), []preexec.SweepBench{{Name: "ok", Program: prog}}, nil); err == nil {
		t.Error("empty grid should error")
	}
}

// TestSweepBenchesValidation pins SweepBenches' up-front checks.
func TestSweepBenchesValidation(t *testing.T) {
	// An unknown name reports its position in the submitted list (the
	// context HTTP and CLI callers surface) and wraps the sentinel the
	// serve package maps onto 404.
	_, err := preexec.SweepBenches([]string{"vpr.p", "nope"}, 1)
	if err == nil || !strings.Contains(err.Error(), "nope") ||
		!strings.Contains(err.Error(), "benchmark 2 of 2") {
		t.Errorf("bad name: err = %v, want position context", err)
	}
	if !errors.Is(err, preexec.ErrUnknownWorkload) {
		t.Errorf("bad name: err = %v does not wrap ErrUnknownWorkload", err)
	}
	if _, err := preexec.SweepBenches([]string{"vpr.p"}, 0); err == nil ||
		!strings.Contains(err.Error(), "scale") {
		t.Errorf("scale 0: err = %v", err)
	}
	benches, err := preexec.SweepBenches([]string{"twolf"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 1 || benches[0].Program == nil || benches[0].Test == nil {
		t.Fatalf("twolf bench incomplete: %+v", benches)
	}
}

// TestSweepPartialFailure checks a failing cell surfaces per-cell while the
// rest of the result is still returned.
func TestSweepPartialFailure(t *testing.T) {
	benches, err := preexec.SweepBenches([]string{"vpr.p", "crafty"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng := preexec.New(preexec.WithSimulator(&failingSimulator{failOn: "crafty", inner: passthroughSimulator{}}))
	s := &preexec.Sweep{Engine: eng, Workers: 1}
	res, err := s.Run(t.Context(), benches, selectionPoints(5_000, 10_000)[:2])
	if err == nil || !strings.Contains(err.Error(), "injected failure") {
		t.Fatalf("summary err = %v, want injected failure", err)
	}
	if res == nil {
		t.Fatal("partial failure must still return the result")
	}
	var completed, failed int
	for _, cell := range res.Cells {
		switch {
		case cell.Err == nil && cell.Report.Base.Retired > 0:
			completed++
		case cell.Err != nil:
			failed++
		default:
			t.Errorf("%s/%s: nil error beside an empty report", cell.Bench, cell.Point)
		}
	}
	if completed == 0 || failed == 0 {
		t.Errorf("completed = %d, failed = %d; want both populated", completed, failed)
	}
}

// TestSweepCustomBackendCached proves the cache wraps whatever stage
// backends the sweep's engine carries — a counting profiler sees one call
// per benchmark, not one per cell.
func TestSweepCustomBackendCached(t *testing.T) {
	benches, err := preexec.SweepBenches([]string{"vpr.p"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	inner := preexec.New(preexec.WithMachine(testMachine()))
	cp := &countingProfiler{inner: defaultProfiler{inner}}
	s := &preexec.Sweep{Engine: preexec.New(preexec.WithProfiler(cp)), Workers: 1}
	if _, err := s.Run(t.Context(), benches, selectionPoints(20_000, 60_000)); err != nil {
		t.Fatal(err)
	}
	if cp.calls != 1 {
		t.Errorf("custom profiler ran %d times for 4 cells, want 1", cp.calls)
	}
}

// TestEngineStageCacheOption exercises WithStageCache outside a sweep: two
// engines sharing a cache perform the base run and profile once.
func TestEngineStageCacheOption(t *testing.T) {
	prog := buildBench(t, "vpr.p")
	cache := preexec.NewStageCache()
	plain := preexec.New(preexec.WithMachine(testMachine()))
	a := preexec.New(preexec.WithMachine(testMachine()), preexec.WithStageCache(cache))
	cfgB := preexec.DefaultConfig()
	cfgB.Machine = testMachine()
	cfgB.Selection.Merge = false
	b := preexec.New(preexec.WithConfig(cfgB), preexec.WithStageCache(cache))

	repA, err := a.Evaluate(t.Context(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Evaluate(t.Context(), prog); err != nil {
		t.Fatal(err)
	}
	want := preexec.CacheStats{
		BaseRuns: 1, BaseHits: 1,
		ProfileRuns: 1, ProfileHits: 1,
		TraceRuns: 1, TraceHits: 1,
	}
	if got := cache.Stats(); got != want {
		t.Errorf("cache stats = %+v, want %+v", got, want)
	}
	plainRep, err := plain.Evaluate(t.Context(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(repA, plainRep) {
		t.Error("cached evaluation diverges from uncached")
	}
}

// TestSweepProgressEvents checks per-cell progress streaming carries the
// bench/point cell names.
func TestSweepProgressEvents(t *testing.T) {
	benches, err := preexec.SweepBenches([]string{"crafty"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var names []string
	s := &preexec.Sweep{Progress: func(ev preexec.SuiteEvent) {
		mu.Lock()
		names = append(names, ev.Name)
		mu.Unlock()
	}}
	if _, err := s.Run(t.Context(), benches, selectionPoints(5_000, 10_000)[:2]); err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("events = %d, want 2", len(names))
	}
	for _, n := range names {
		if !strings.HasPrefix(n, "crafty/") {
			t.Errorf("event name %q, want crafty/<point>", n)
		}
	}
}
