package synth

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"preexec"
	"preexec/internal/isa"
	"preexec/internal/mem"
	"preexec/internal/program"
)

// The PRX text format. One instruction, label, or directive per line;
// comments run from ';' or '#' to end of line.
//
//	.name vpr.mini        ; program name (required for registry use)
//	.entry start          ; optional entry label (default: instruction 0)
//	.data 0x10000         ; set the data cursor (byte address, 8-aligned)
//	.word 7, 0x20, -3     ; write words at the cursor, advancing it
//
//	start:
//	        li   r1, 0
//	loop:   bge  r1, r2, done
//	        ld   r3, 8(r4)
//	        addi r1, r1, 1
//	        j    loop
//	done:   halt
//
// Operand forms follow the disassembly: three-register ALU ops
// ("add r1, r2, r3"), register-immediate ops ("addi r1, r2, -4"),
// "mov rd, rs", "li rd, imm", loads/stores with displacement addressing
// ("ld rd, disp(rbase)", "st rdata, disp(rbase)"), branches and jumps with
// label or absolute-index targets, and bare "nop"/"halt". Registers are
// r0..r31; immediates accept decimal or 0x hex, with optional sign.

// LineError is one assembly diagnostic tied to a 1-based source line.
// Assemble returns every diagnostic joined into a single error; unwrap with
// errors.As to recover lines programmatically.
type LineError struct {
	Line int
	Msg  string
}

func (e *LineError) Error() string { return fmt.Sprintf("prx:%d: %s", e.Line, e.Msg) }

// opFormat is an operand syntax class.
type opFormat uint8

const (
	fmtNone opFormat = iota // nop, halt
	fmtR3                   // op rd, rs1, rs2
	fmtRI                   // op rd, rs1, imm
	fmtMov                  // mov rd, rs1
	fmtLi                   // li rd, imm
	fmtLd                   // ld rd, disp(rbase)
	fmtSt                   // st rdata, disp(rbase)
	fmtBr                   // op rs1, rs2, target
	fmtJ                    // j target
	fmtJal                  // jal rd, target
	fmtJr                   // jr rs1
)

var mnemonics = map[string]struct {
	op isa.Op
	f  opFormat
}{
	"nop": {isa.NOP, fmtNone}, "halt": {isa.HALT, fmtNone},
	"add": {isa.ADD, fmtR3}, "sub": {isa.SUB, fmtR3}, "mul": {isa.MUL, fmtR3},
	"div": {isa.DIV, fmtR3}, "and": {isa.AND, fmtR3}, "or": {isa.OR, fmtR3},
	"xor": {isa.XOR, fmtR3}, "sll": {isa.SLL, fmtR3}, "srl": {isa.SRL, fmtR3},
	"sra": {isa.SRA, fmtR3}, "slt": {isa.SLT, fmtR3},
	"addi": {isa.ADDI, fmtRI}, "andi": {isa.ANDI, fmtRI}, "ori": {isa.ORI, fmtRI},
	"xori": {isa.XORI, fmtRI}, "slli": {isa.SLLI, fmtRI}, "srli": {isa.SRLI, fmtRI},
	"srai": {isa.SRAI, fmtRI}, "slti": {isa.SLTI, fmtRI},
	"mov": {isa.MOV, fmtMov}, "li": {isa.LI, fmtLi},
	"ld": {isa.LD, fmtLd}, "st": {isa.ST, fmtSt},
	"beq": {isa.BEQ, fmtBr}, "bne": {isa.BNE, fmtBr},
	"blt": {isa.BLT, fmtBr}, "bge": {isa.BGE, fmtBr},
	"j": {isa.J, fmtJ}, "jal": {isa.JAL, fmtJal}, "jr": {isa.JR, fmtJr},
}

type fixup struct {
	inst   int    // instruction awaiting its Target
	label  string // referenced label (empty for numeric targets)
	target int    // absolute target (when label is empty)
	line   int    // source line of the reference
}

type assembler struct {
	name      string
	insts     []isa.Inst
	labels    map[string]int
	labelLine map[string]int
	fixups    []fixup
	data      *mem.Memory
	cursor    int64
	haveData  bool
	entry     string // .entry operand (label or index), resolved at the end
	entryLine int
	errs      []error
}

// Assemble parses PRX source into a program. Every diagnostic carries its
// 1-based source line (see LineError); on success the program's Labels map
// holds the source labels and Name the .name directive (empty if none —
// LoadPRX fills it from the file name).
func Assemble(src []byte) (*preexec.Program, error) {
	a := &assembler{
		labels:    make(map[string]int),
		labelLine: make(map[string]int),
		data:      mem.New(),
	}
	for i, line := range strings.Split(string(src), "\n") {
		a.parseLine(i+1, line)
	}
	a.resolve()
	entry := a.resolveEntry()
	if len(a.errs) > 0 {
		return nil, errors.Join(a.errs...)
	}
	return &program.Program{
		Name:   a.name,
		Insts:  a.insts,
		Labels: a.labels,
		Data:   a.data,
		Entry:  entry,
	}, nil
}

func (a *assembler) errf(line int, format string, args ...any) {
	a.errs = append(a.errs, &LineError{Line: line, Msg: fmt.Sprintf(format, args...)})
}

func (a *assembler) parseLine(line int, text string) {
	// Comments run to end of line; neither ';' nor '#' appears in any
	// operand form.
	if i := strings.IndexAny(text, ";#"); i >= 0 {
		text = text[:i]
	}
	text = strings.TrimSpace(text)

	// Leading "label:" definitions, possibly followed by an instruction.
	// A candidate with whitespace or a leading '.' is not a label (it is a
	// directive operand or malformed instruction, diagnosed below).
	for {
		i := strings.Index(text, ":")
		if i < 0 {
			break
		}
		name := text[:i]
		if name == "" || strings.ContainsAny(name, " \t") || strings.HasPrefix(name, ".") {
			break
		}
		if !validLabel(name) {
			a.errf(line, "malformed label %q", text[:i+1])
			return
		}
		if _, dup := a.labels[name]; dup {
			a.errf(line, "duplicate label %q (first defined on line %d)", name, a.labelLine[name])
		} else {
			a.labels[name] = len(a.insts)
			a.labelLine[name] = line
		}
		text = strings.TrimSpace(text[i+1:])
	}
	if text == "" {
		return
	}
	if strings.HasPrefix(text, ".") {
		a.parseDirective(line, text)
		return
	}
	a.parseInst(line, text)
}

func validLabel(s string) bool {
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.', r == '$':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// cutField splits off the first whitespace-delimited field (space or tab).
func cutField(s string) (field, rest string) {
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		return s[:i], strings.TrimSpace(s[i+1:])
	}
	return s, ""
}

func (a *assembler) parseDirective(line int, text string) {
	dir, rest := cutField(text)
	switch dir {
	case ".name":
		if rest == "" {
			a.errf(line, ".name needs a value")
			return
		}
		a.name = rest
	case ".entry":
		if rest == "" {
			a.errf(line, ".entry needs a label or instruction index")
			return
		}
		a.entry, a.entryLine = rest, line
	case ".data":
		v, err := strconv.ParseInt(rest, 0, 64)
		if err != nil || v < 0 {
			a.errf(line, ".data address %q: want a non-negative integer", rest)
			return
		}
		if v%8 != 0 {
			a.errf(line, ".data address %d not 8-byte aligned", v)
			return
		}
		a.cursor, a.haveData = v, true
	case ".word":
		if !a.haveData {
			a.errf(line, ".word before any .data directive")
			return
		}
		if rest == "" {
			a.errf(line, ".word needs at least one value")
			return
		}
		for _, f := range strings.Split(rest, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(f), 0, 64)
			if err != nil {
				a.errf(line, ".word value %q: %v", strings.TrimSpace(f), parseIntErr(err))
				return
			}
			// The cursor must stay a valid non-negative byte address after
			// every write: a .data directive near the top of the address
			// space followed by enough words would otherwise wrap the cursor
			// negative, producing an image the disassembler cannot render as
			// re-assemblable .data/.word runs (found by FuzzAssemble).
			if a.cursor < 0 {
				a.errf(line, ".word data cursor overflowed the address space")
				return
			}
			a.data.Write(a.cursor, v)
			a.cursor += 8
		}
	default:
		a.errf(line, "unknown directive %q", dir)
	}
}

// parseIntErr strips the strconv boilerplate down to the reason.
func parseIntErr(err error) string {
	var ne *strconv.NumError
	if errors.As(err, &ne) {
		return ne.Err.Error()
	}
	return err.Error()
}

func (a *assembler) parseInst(line int, text string) {
	mn, rest := cutField(text)
	mn = strings.ToLower(mn)
	spec, ok := mnemonics[mn]
	if !ok {
		a.errf(line, "unknown mnemonic %q", mn)
		return
	}
	ops := splitOperands(rest)
	in := isa.Inst{Op: spec.op}
	need := map[opFormat]int{
		fmtNone: 0, fmtR3: 3, fmtRI: 3, fmtMov: 2, fmtLi: 2,
		fmtLd: 2, fmtSt: 2, fmtBr: 3, fmtJ: 1, fmtJal: 2, fmtJr: 1,
	}[spec.f]
	if len(ops) != need {
		a.errf(line, "%s takes %d operands, got %d", mn, need, len(ops))
		return
	}
	reg := func(s string) (isa.Reg, bool) {
		r, err := parseReg(s)
		if err != nil {
			a.errf(line, "%s: %v", mn, err)
			return 0, false
		}
		return r, true
	}
	imm := func(s string) (int64, bool) {
		v, err := strconv.ParseInt(s, 0, 64)
		if err != nil {
			a.errf(line, "%s: immediate %q: %s", mn, s, parseIntErr(err))
			return 0, false
		}
		return v, true
	}
	target := func(s string) bool {
		// Both label and numeric targets resolve at the end (numeric range
		// checks need the final instruction count), each carrying its line.
		if v, err := strconv.ParseInt(s, 0, 32); err == nil {
			a.fixups = append(a.fixups, fixup{inst: len(a.insts), target: int(v), line: line})
			return true
		}
		if !validLabel(s) {
			a.errf(line, "%s: malformed target %q", mn, s)
			return false
		}
		a.fixups = append(a.fixups, fixup{inst: len(a.insts), label: s, line: line})
		return true
	}
	okAll := true
	switch spec.f {
	case fmtNone:
	case fmtR3:
		in.Rd, okAll = reg(ops[0])
		if okAll {
			in.Rs1, okAll = reg(ops[1])
		}
		if okAll {
			in.Rs2, okAll = reg(ops[2])
		}
	case fmtRI:
		in.Rd, okAll = reg(ops[0])
		if okAll {
			in.Rs1, okAll = reg(ops[1])
		}
		if okAll {
			in.Imm, okAll = imm(ops[2])
		}
	case fmtMov:
		in.Rd, okAll = reg(ops[0])
		if okAll {
			in.Rs1, okAll = reg(ops[1])
		}
	case fmtLi:
		in.Rd, okAll = reg(ops[0])
		if okAll {
			in.Imm, okAll = imm(ops[1])
		}
	case fmtLd, fmtSt:
		var rd isa.Reg
		rd, okAll = reg(ops[0])
		if okAll {
			var disp int64
			var base isa.Reg
			disp, base, okAll = a.parseMemOperand(line, mn, ops[1])
			if spec.f == fmtLd {
				in.Rd, in.Rs1, in.Imm = rd, base, disp
			} else {
				in.Rs2, in.Rs1, in.Imm = rd, base, disp // st data, disp(base)
			}
		}
	case fmtBr:
		in.Rs1, okAll = reg(ops[0])
		if okAll {
			in.Rs2, okAll = reg(ops[1])
		}
		if okAll {
			okAll = target(ops[2])
		}
	case fmtJ:
		okAll = target(ops[0])
	case fmtJal:
		in.Rd, okAll = reg(ops[0])
		if okAll {
			okAll = target(ops[1])
		}
	case fmtJr:
		in.Rs1, okAll = reg(ops[0])
	}
	if !okAll {
		return
	}
	a.insts = append(a.insts, in)
}

// splitOperands splits "r1, 8(r2)" into trimmed fields; empty input yields
// none.
func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseReg(s string) (isa.Reg, error) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, fmt.Errorf("bad register %q (want r0..r%d)", s, isa.NumRegs-1)
	}
	v, err := strconv.Atoi(s[1:])
	if err != nil || v < 0 || v >= isa.NumRegs {
		return 0, fmt.Errorf("bad register %q (want r0..r%d)", s, isa.NumRegs-1)
	}
	return isa.Reg(v), nil
}

// parseMemOperand parses "disp(rbase)"; a bare "(rbase)" means
// displacement 0.
func (a *assembler) parseMemOperand(line int, mn, s string) (int64, isa.Reg, bool) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		a.errf(line, "%s: malformed address %q (want disp(rbase))", mn, s)
		return 0, 0, false
	}
	var disp int64
	if d := strings.TrimSpace(s[:open]); d != "" {
		v, err := strconv.ParseInt(d, 0, 64)
		if err != nil {
			a.errf(line, "%s: displacement %q: %s", mn, d, parseIntErr(err))
			return 0, 0, false
		}
		disp = v
	}
	r, err := parseReg(strings.TrimSpace(s[open+1 : len(s)-1]))
	if err != nil {
		a.errf(line, "%s: %v", mn, err)
		return 0, 0, false
	}
	return disp, r, true
}

// resolve patches label targets into the assembled instructions.
func (a *assembler) resolve() {
	if len(a.insts) == 0 && len(a.errs) == 0 {
		a.errs = append(a.errs, errors.New("prx: program has no instructions"))
	}
	for _, f := range a.fixups {
		pc := f.target
		if f.label != "" {
			var ok bool
			pc, ok = a.labels[f.label]
			if !ok {
				a.errf(f.line, "undefined label %q", f.label)
				continue
			}
		} else if pc < 0 || pc > len(a.insts) {
			a.errf(f.line, "target %d out of range [0, %d]", pc, len(a.insts))
			continue
		}
		a.insts[f.inst].Target = pc
	}
}

// resolveEntry turns the .entry operand into an instruction index.
func (a *assembler) resolveEntry() int {
	if a.entry == "" {
		return 0
	}
	if pc, ok := a.labels[a.entry]; ok {
		return pc
	}
	if v, err := strconv.ParseInt(a.entry, 0, 32); err == nil && v >= 0 && int(v) < len(a.insts) {
		return int(v)
	}
	a.errf(a.entryLine, ".entry %q: no such label or instruction index", a.entry)
	return 0
}
