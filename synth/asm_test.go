package synth

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"

	"preexec/internal/cpu"
	"preexec/internal/workload"
)

const sumSrc = `
; sum the three words at 0x10000 into r3
.name sum3
.entry start
.data 0x10000
.word 5, 0x10, -2

dead:	halt            ; skipped: entry is below
start:
	li   r1, 65536  ; base
	li   r2, 3      ; count
	li   r3, 0
loop:	beq  r2, r0, done
	ld   r4, 0(r1)
	add  r3, r3, r4
	addi r1, r1, 8
	addi r2, r2, -1
	j    loop
done:	halt
`

func TestAssembleExecutes(t *testing.T) {
	p, err := Assemble([]byte(sumSrc))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "sum3" {
		t.Errorf("name = %q, want sum3", p.Name)
	}
	if p.Entry != p.Labels["start"] || p.Entry == 0 {
		t.Errorf("entry = %d, want label start (%d)", p.Entry, p.Labels["start"])
	}
	st := cpu.New(p)
	for !st.Halted {
		if _, err := st.Step(); err != nil {
			t.Fatal(err)
		}
		if st.Count > 1000 {
			t.Fatal("did not halt")
		}
	}
	if got := st.Regs[3]; got != 5+16-2 {
		t.Errorf("r3 = %d, want %d", got, 5+16-2)
	}
}

// TestAssembleErrors pins the line-precision of every diagnostic class.
func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		line int
		want string
	}{
		{"unknown mnemonic", "nop\nfoo r1, r2\nhalt", 2, "unknown mnemonic"},
		{"bad register", "nop\nadd r1, r2, r99\nhalt", 2, "bad register"},
		{"operand count", "nop\nnop\nadd r1, r2\nhalt", 3, "takes 3 operands"},
		{"bad immediate", "li r1, xyz\nhalt", 1, "immediate"},
		{"malformed address", "ld r1, r2\nhalt", 1, "malformed address"},
		{"undefined label", "nop\nj nowhere\nhalt", 2, `undefined label "nowhere"`},
		{"duplicate label", "a:\nnop\na:\nhalt", 3, "duplicate label"},
		{"word before data", ".word 1\nhalt", 1, ".word before any .data"},
		{"unaligned data", ".data 12\nhalt", 1, "not 8-byte aligned"},
		{"unknown directive", ".frob 1\nhalt", 1, "unknown directive"},
		{"bad entry", ".entry nowhere\nhalt", 1, ".entry"},
		{"malformed target", "nop\nbeq r1, r2, 1x2\nhalt", 2, "malformed target"},
		{"target out of range", "nop\nj 5\nhalt", 2, "out of range"},
		// A .data directive at the top of the address space must not let
		// .word wrap the cursor to negative addresses: the resulting image
		// would disassemble into source that cannot re-assemble (the fuzz
		// targets' round-trip property).
		{"data cursor overflow", ".data 0x7ffffffffffffff8\n.word 1, 2\nhalt", 2, "overflow"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble([]byte(c.src))
			if err == nil {
				t.Fatalf("Assemble(%q) succeeded, want error", c.src)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
			var le *LineError
			if !errors.As(err, &le) {
				t.Fatalf("error %q carries no LineError", err)
			}
			if le.Line != c.line {
				t.Errorf("error line = %d, want %d (%q)", le.Line, c.line, le)
			}
		})
	}
	if _, err := Assemble([]byte("; nothing\n")); err == nil {
		t.Error("empty program assembled, want error")
	}
}

// TestAssembleTabSeparators pins tab-indented, tab-separated source (the
// natural editor style) assembling identically to space-separated source.
func TestAssembleTabSeparators(t *testing.T) {
	spaces := ".name tabs\n.data 0x100\n.word 5\nli r1, 256\nld r2, 0(r1)\nhalt\n"
	tabs := ".name\ttabs\n.data\t0x100\n.word\t5\n\tli\tr1, 256\n\tld\tr2, 0(r1)\n\thalt\n"
	p1, err := Assemble([]byte(spaces))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Assemble([]byte(tabs))
	if err != nil {
		t.Fatalf("tab-separated source failed to assemble: %v", err)
	}
	sameProgram(t, p1, p2)
}

// TestAssembleCollectsAllErrors checks one pass reports every bad line.
func TestAssembleCollectsAllErrors(t *testing.T) {
	_, err := Assemble([]byte("foo\nbar\nhalt"))
	if err == nil {
		t.Fatal("want errors")
	}
	if !strings.Contains(err.Error(), "prx:1") || !strings.Contains(err.Error(), "prx:2") {
		t.Errorf("error %q should report both bad lines", err)
	}
}

// TestRoundTrip pins assemble -> disassemble -> assemble byte-stability on
// hand-written source, every generator family, and builtin workloads.
func TestRoundTrip(t *testing.T) {
	check := func(t *testing.T, src []byte) {
		p1, err := Assemble(src)
		if err != nil {
			t.Fatal(err)
		}
		t1 := Disassemble(p1)
		p2, err := Assemble(t1)
		if err != nil {
			t.Fatalf("re-assembling disassembly: %v\n%s", err, t1)
		}
		sameProgram(t, p1, p2)
		t2 := Disassemble(p2)
		if !bytes.Equal(t1, t2) {
			t.Fatalf("disassembly not byte-stable:\n--- first\n%s\n--- second\n%s", t1, t2)
		}
	}
	t.Run("hand-written", func(t *testing.T) { check(t, []byte(sumSrc)) })
	for _, s := range smallSpecs() {
		s := s
		t.Run(s.Family, func(t *testing.T) {
			p := MustGenerate(s)
			text := Disassemble(p)
			p2, err := Assemble(text)
			if err != nil {
				t.Fatalf("disassembly of generated %s does not re-assemble: %v", s.Family, err)
			}
			// The re-assembled program must run the generator's program
			// exactly: same instructions, same data (labels are
			// canonicalized, so compare structurally), and the canonical
			// text must be byte-stable.
			if len(p2.Insts) != len(p.Insts) {
				t.Fatalf("instruction count %d, want %d", len(p2.Insts), len(p.Insts))
			}
			for i := range p.Insts {
				if p.Insts[i] != p2.Insts[i] {
					t.Fatalf("instruction %d: %v, want %v", i, p2.Insts[i], p.Insts[i])
				}
			}
			check(t, text)
		})
	}
	for _, name := range []string{"mcf", "vpr.p", "crafty"} {
		name := name
		t.Run(name, func(t *testing.T) {
			w, err := workload.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			check(t, Disassemble(w.Build(1)))
		})
	}
}

func TestLoadPRXNamesFromFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/mini.prx"
	if err := os.WriteFile(path, []byte("\tli r1, 1\n\thalt\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := LoadPRX(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "mini" {
		t.Errorf("name = %q, want mini (from the file name)", p.Name)
	}
	if _, err := LoadPRX(dir + "/missing.prx"); err == nil {
		t.Error("LoadPRX of a missing file should fail")
	}
	if err := os.WriteFile(dir+"/bad.prx", []byte("frob\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadPRX(dir + "/bad.prx")
	if err == nil || !strings.Contains(err.Error(), "bad.prx") {
		t.Errorf("LoadPRX error %v should name the file", err)
	}
}
