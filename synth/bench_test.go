package synth

import "testing"

// benchSpec is the mid-size scenario benchsnap snapshots: a 512KB clustered
// chase (ring construction + 64K data words is representative generator
// work).
var benchSpec = Spec{Family: "chase", Seed: 1, FootprintWords: 1 << 16, Iters: 30_000, Clusters: 256}

func BenchmarkSynthGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(benchSpec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAssemble(b *testing.B) {
	src := Disassemble(MustGenerate(benchSpec))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Assemble(src); err != nil {
			b.Fatal(err)
		}
	}
}
