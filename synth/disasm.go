package synth

import (
	"fmt"
	"strings"

	"preexec"
	"preexec/internal/isa"
)

// Disassemble renders a program as canonical PRX source: a .name directive,
// an optional .entry, labelled instructions (control targets become
// "L<index>" labels), and the data image as .data/.word runs. The output
// re-assembles into an equivalent program — identical instructions, entry,
// and memory contents — and is byte-stable: disassembling the re-assembled
// program reproduces it exactly. Zero data words are indistinguishable from
// unmapped memory (reads of both return 0), so they are omitted.
func Disassemble(p *preexec.Program) []byte {
	var sb strings.Builder
	if p.Name != "" {
		fmt.Fprintf(&sb, ".name %s\n", p.Name)
	}

	// Label every control target (and the entry, if non-zero).
	labels := make(map[int]string)
	for _, in := range p.Insts {
		if isa.ClassOf(in.Op) == isa.ClassBranch || in.Op == isa.J || in.Op == isa.JAL {
			labels[in.Target] = ""
		}
	}
	if p.Entry != 0 {
		labels[p.Entry] = ""
	}
	for pc := range labels {
		labels[pc] = fmt.Sprintf("L%d", pc)
	}
	if p.Entry != 0 {
		fmt.Fprintf(&sb, ".entry %s\n", labels[p.Entry])
	}
	sb.WriteByte('\n')

	for pc, in := range p.Insts {
		if l, ok := labels[pc]; ok {
			sb.WriteString(l)
			sb.WriteString(":\n")
		}
		sb.WriteByte('\t')
		sb.WriteString(instText(in, labels))
		sb.WriteByte('\n')
	}
	// A target one past the last instruction (fall through to halt-by-end)
	// still needs its label defined.
	if l, ok := labels[len(p.Insts)]; ok {
		sb.WriteString(l)
		sb.WriteString(":\n")
	}

	runs := p.Data.Runs()
	if len(runs) > 0 {
		sb.WriteByte('\n')
	}
	for _, r := range runs {
		fmt.Fprintf(&sb, ".data 0x%x\n", r.Base)
		for off := 0; off < len(r.Vals); off += 8 {
			end := off + 8
			if end > len(r.Vals) {
				end = len(r.Vals)
			}
			sb.WriteString(".word ")
			for i, v := range r.Vals[off:end] {
				if i > 0 {
					sb.WriteString(", ")
				}
				fmt.Fprintf(&sb, "%d", v)
			}
			sb.WriteByte('\n')
		}
	}
	return []byte(sb.String())
}

// instText renders one instruction in assembler syntax, substituting labels
// for control targets.
func instText(in isa.Inst, labels map[int]string) string {
	switch in.Op {
	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE:
		return fmt.Sprintf("%s r%d, r%d, %s", in.Op, in.Rs1, in.Rs2, labels[in.Target])
	case isa.J:
		return fmt.Sprintf("j %s", labels[in.Target])
	case isa.JAL:
		return fmt.Sprintf("jal r%d, %s", in.Rd, labels[in.Target])
	default:
		// Every other form already prints in assembler syntax.
		return in.String()
	}
}
